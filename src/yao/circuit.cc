#include "yao/circuit.h"

namespace ppstats {

Result<std::vector<bool>> EvaluateCircuit(
    const Circuit& circuit, const std::vector<bool>& garbler_bits,
    const std::vector<bool>& evaluator_bits) {
  if (garbler_bits.size() != circuit.garbler_inputs.size()) {
    return Status::InvalidArgument("wrong garbler input arity");
  }
  if (evaluator_bits.size() != circuit.evaluator_inputs.size()) {
    return Status::InvalidArgument("wrong evaluator input arity");
  }
  std::vector<bool> wires(circuit.num_wires, false);
  for (size_t i = 0; i < garbler_bits.size(); ++i) {
    wires[circuit.garbler_inputs[i]] = garbler_bits[i];
  }
  for (size_t i = 0; i < evaluator_bits.size(); ++i) {
    wires[circuit.evaluator_inputs[i]] = evaluator_bits[i];
  }
  for (const Gate& g : circuit.gates) {
    if (g.a >= circuit.num_wires || g.b >= circuit.num_wires ||
        g.out >= circuit.num_wires) {
      return Status::InvalidArgument("gate references unknown wire");
    }
    bool a = wires[g.a];
    bool b = wires[g.b];
    wires[g.out] = g.type == GateType::kXor ? (a != b) : (a && b);
  }
  std::vector<bool> out;
  out.reserve(circuit.outputs.size());
  for (WireId w : circuit.outputs) {
    if (w >= circuit.num_wires) {
      return Status::InvalidArgument("output references unknown wire");
    }
    out.push_back(wires[w]);
  }
  return out;
}

WireId CircuitBuilder::AddGarblerInput() {
  WireId w = NewWire();
  circuit_.garbler_inputs.push_back(w);
  return w;
}

WireId CircuitBuilder::AddEvaluatorInput() {
  WireId w = NewWire();
  circuit_.evaluator_inputs.push_back(w);
  return w;
}

WireId CircuitBuilder::Xor(WireId a, WireId b) {
  WireId out = NewWire();
  circuit_.gates.push_back(Gate{GateType::kXor, a, b, out});
  return out;
}

WireId CircuitBuilder::And(WireId a, WireId b) {
  WireId out = NewWire();
  circuit_.gates.push_back(Gate{GateType::kAnd, a, b, out});
  return out;
}

void CircuitBuilder::MarkOutput(WireId w) { circuit_.outputs.push_back(w); }

std::vector<WireId> CircuitBuilder::MaskWith(const std::vector<WireId>& bits,
                                             WireId bit) {
  std::vector<WireId> out;
  out.reserve(bits.size());
  for (WireId b : bits) out.push_back(And(b, bit));
  return out;
}

std::vector<WireId> CircuitBuilder::AddInto(const std::vector<WireId>& acc,
                                            const std::vector<WireId>& addend,
                                            size_t max_width) {
  std::vector<WireId> out;
  out.reserve(acc.size() + 1);
  WireId carry = 0;
  bool have_carry = false;
  for (size_t i = 0; i < acc.size(); ++i) {
    if (i < addend.size()) {
      WireId a = acc[i];
      WireId b = addend[i];
      WireId axb = Xor(a, b);
      if (!have_carry) {
        // Half adder.
        out.push_back(axb);
        carry = And(a, b);
        have_carry = true;
      } else {
        // Full adder: sum = a^b^c; carry' = (a&b) ^ (c & (a^b)).
        out.push_back(Xor(axb, carry));
        WireId ab = And(a, b);
        WireId ct = And(carry, axb);
        carry = Xor(ab, ct);
      }
    } else {
      // Addend bit is implicitly 0: sum = a ^ c; carry' = a & c.
      if (!have_carry) {
        out.push_back(acc[i]);
      } else {
        out.push_back(Xor(acc[i], carry));
        carry = And(acc[i], carry);
      }
    }
  }
  if (have_carry && out.size() < max_width) out.push_back(carry);
  if (out.size() > max_width) out.resize(max_width);
  return out;
}

Circuit CircuitBuilder::Build() && { return std::move(circuit_); }

}  // namespace ppstats
