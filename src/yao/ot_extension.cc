#include "yao/ot_extension.h"

#include "common/stopwatch.h"
#include "crypto/chacha20_rng.h"
#include "crypto/sha256.h"

namespace ppstats {

namespace {

// PRG: expands a 128-bit seed label into `bytes` pseudorandom bytes.
Bytes ExpandSeed(const Label& seed, size_t bytes) {
  // Derive a 256-bit ChaCha key from the seed.
  Sha256::Digest key_digest = Sha256::Hash(seed.bytes);
  std::array<uint8_t, 32> key;
  std::copy(key_digest.begin(), key_digest.end(), key.begin());
  ChaCha20Rng prg(key, std::array<uint8_t, 12>{});
  Bytes out(bytes);
  prg.Fill(out);
  return out;
}

// H(i, row): the IKNP output mask for transfer i.
Label RowHash(uint64_t index, const Label& row) {
  Sha256 h;
  uint8_t idx[8];
  for (int b = 0; b < 8; ++b) {
    idx[b] = static_cast<uint8_t>(index >> (56 - 8 * b));
  }
  h.Update(idx);
  h.Update(row.bytes);
  Sha256::Digest d = h.Finish();
  Label out;
  std::copy(d.begin(), d.begin() + 16, out.bytes.begin());
  return out;
}

bool GetBit(const Bytes& bits, size_t i) {
  return (bits[i / 8] >> (i % 8)) & 1;
}

void XorInto(Bytes& acc, const Bytes& other) {
  for (size_t i = 0; i < acc.size(); ++i) acc[i] ^= other[i];
}

}  // namespace

Result<OtBatchResult> RunIknpObliviousTransfer(
    const std::vector<std::pair<Label, Label>>& messages,
    const std::vector<bool>& choices, RandomSource& rng,
    const OtGroup& group) {
  if (messages.size() != choices.size()) {
    return Status::InvalidArgument("OT messages/choices arity mismatch");
  }
  const size_t m = messages.size();
  const size_t k = kOtExtensionWidth;
  OtBatchResult result;
  if (m == 0) return result;
  const size_t column_bytes = (m + 7) / 8;

  // --- Receiver: seed pairs; Sender: secret s (base-OT choices). ------
  Stopwatch receiver_timer;
  std::vector<std::pair<Label, Label>> seeds;
  seeds.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    seeds.emplace_back(Label::Random(rng), Label::Random(rng));
  }
  result.receiver_seconds += receiver_timer.ElapsedSeconds();

  Stopwatch sender_timer;
  Label s_secret = Label::Random(rng);
  std::vector<bool> s_bits(k);
  for (size_t j = 0; j < k; ++j) {
    s_bits[j] = (s_secret.bytes[j / 8] >> (j % 8)) & 1;
  }
  result.sender_seconds += sender_timer.ElapsedSeconds();

  // Base OTs with roles swapped: the extension's RECEIVER acts as base
  // sender of the seed pairs; the extension's SENDER receives K_j^{s_j}.
  PPSTATS_ASSIGN_OR_RETURN(
      OtBatchResult base,
      RunBatchObliviousTransfer(seeds, s_bits, rng, group));
  // Base-OT traffic flows in swapped directions.
  result.receiver_to_sender += base.sender_to_receiver;
  result.sender_to_receiver += base.receiver_to_sender;
  result.receiver_seconds += base.sender_seconds;
  result.sender_seconds += base.receiver_seconds;

  // --- Receiver: choice-bit vector r, matrix columns, u_j. -------------
  receiver_timer.Reset();
  Bytes r_bits(column_bytes, 0);
  for (size_t i = 0; i < m; ++i) {
    if (choices[i]) r_bits[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  std::vector<Bytes> t_columns(k);
  uint64_t u_traffic = 0;
  std::vector<Bytes> u_columns(k);
  for (size_t j = 0; j < k; ++j) {
    t_columns[j] = ExpandSeed(seeds[j].first, column_bytes);
    Bytes u = t_columns[j];
    XorInto(u, ExpandSeed(seeds[j].second, column_bytes));
    XorInto(u, r_bits);
    u_traffic += u.size();
    u_columns[j] = std::move(u);
  }
  result.receiver_seconds += receiver_timer.ElapsedSeconds();
  result.receiver_to_sender.Record(u_traffic);

  // --- Sender: q columns, output masks, y pairs. -----------------------
  sender_timer.Reset();
  std::vector<Bytes> q_columns(k);
  for (size_t j = 0; j < k; ++j) {
    q_columns[j] = ExpandSeed(s_bits[j] ? seeds[j].second : seeds[j].first,
                              column_bytes);
    if (s_bits[j]) XorInto(q_columns[j], u_columns[j]);
  }
  // Transpose rows on demand and encrypt both messages per transfer.
  std::vector<std::pair<Label, Label>> y_pairs(m);
  for (size_t i = 0; i < m; ++i) {
    Label q_row{};
    for (size_t j = 0; j < k; ++j) {
      if (GetBit(q_columns[j], i)) q_row.bytes[j / 8] |= 1u << (j % 8);
    }
    y_pairs[i].first = messages[i].first ^ RowHash(i, q_row);
    y_pairs[i].second = messages[i].second ^ RowHash(i, q_row ^ s_secret);
  }
  result.sender_seconds += sender_timer.ElapsedSeconds();
  result.sender_to_receiver.Record(m * 2 * sizeof(Label));

  // --- Receiver: recover the chosen message of each pair. --------------
  receiver_timer.Reset();
  result.received.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    Label t_row{};
    for (size_t j = 0; j < k; ++j) {
      if (GetBit(t_columns[j], i)) t_row.bytes[j / 8] |= 1u << (j % 8);
    }
    const Label& y = choices[i] ? y_pairs[i].second : y_pairs[i].first;
    result.received.push_back(y ^ RowHash(i, t_row));
  }
  result.receiver_seconds += receiver_timer.ElapsedSeconds();
  return result;
}

}  // namespace ppstats
