// 128-bit wire labels for garbled circuits.

#ifndef PPSTATS_YAO_LABEL_H_
#define PPSTATS_YAO_LABEL_H_

#include <array>
#include <cstdint>

#include "common/random.h"

namespace ppstats {

/// A 128-bit garbled-circuit wire label. The least-significant bit of
/// byte 0 doubles as the point-and-permute bit.
struct Label {
  std::array<uint8_t, 16> bytes{};

  static Label Random(RandomSource& rng) {
    Label l;
    rng.Fill(l.bytes);
    return l;
  }

  /// The point-and-permute (color) bit.
  bool PermuteBit() const { return bytes[0] & 1; }

  friend Label operator^(const Label& a, const Label& b) {
    Label out;
    for (size_t i = 0; i < 16; ++i) out.bytes[i] = a.bytes[i] ^ b.bytes[i];
    return out;
  }
  Label& operator^=(const Label& other) {
    for (size_t i = 0; i < 16; ++i) bytes[i] ^= other.bytes[i];
    return *this;
  }
  friend bool operator==(const Label& a, const Label& b) = default;
};

}  // namespace ppstats

#endif  // PPSTATS_YAO_LABEL_H_
