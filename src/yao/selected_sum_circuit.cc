#include "yao/selected_sum_circuit.h"

#include <bit>

#include "common/stopwatch.h"
#include "yao/garble.h"
#include "yao/ot.h"

namespace ppstats {

size_t SelectedSumCircuitSpec::EffectiveSumBits() const {
  if (sum_bits != 0) return sum_bits;
  size_t extra =
      std::bit_width(num_values > 0 ? num_values - 1 : size_t{0});
  return std::min<size_t>(value_bits + extra + 1, 64);
}

Circuit BuildSelectedSumCircuit(const SelectedSumCircuitSpec& spec) {
  CircuitBuilder builder;
  const size_t sum_width = spec.EffectiveSumBits();

  // Inputs: data bits per value (garbler), then selection bits (evaluator).
  std::vector<std::vector<WireId>> value_bits(spec.num_values);
  for (size_t i = 0; i < spec.num_values; ++i) {
    value_bits[i].reserve(spec.value_bits);
    for (size_t b = 0; b < spec.value_bits; ++b) {
      value_bits[i].push_back(builder.AddGarblerInput());
    }
  }
  std::vector<WireId> selection_bits(spec.num_values);
  for (size_t i = 0; i < spec.num_values; ++i) {
    selection_bits[i] = builder.AddEvaluatorInput();
  }

  // acc = x_0 & s_0; acc += x_i & s_i. The accumulator grows one bit per
  // addition (carry-out becomes the new MSB), capped at sum_width.
  std::vector<WireId> acc =
      builder.MaskWith(value_bits[0], selection_bits[0]);
  for (size_t i = 1; i < spec.num_values; ++i) {
    std::vector<WireId> masked =
        builder.MaskWith(value_bits[i], selection_bits[i]);
    acc = builder.AddInto(acc, masked, sum_width);
  }
  for (WireId w : acc) builder.MarkOutput(w);
  return std::move(builder).Build();
}

std::vector<bool> EncodeDatabaseBits(const Database& db,
                                     const SelectedSumCircuitSpec& spec) {
  std::vector<bool> bits;
  bits.reserve(spec.num_values * spec.value_bits);
  for (size_t i = 0; i < spec.num_values; ++i) {
    uint64_t v = db.value(i);
    for (size_t b = 0; b < spec.value_bits; ++b) {
      bits.push_back((v >> b) & 1);
    }
  }
  return bits;
}

uint64_t DecodeSumBits(const std::vector<bool>& bits) {
  uint64_t out = 0;
  for (size_t i = 0; i < bits.size() && i < 64; ++i) {
    if (bits[i]) out |= uint64_t{1} << i;
  }
  return out;
}

double YaoRunResult::TotalSeconds(const ExecutionEnvironment& env) const {
  return garble_seconds * env.server_cpu_scale +
         ot_sender_seconds * env.server_cpu_scale +
         evaluate_seconds * env.client_cpu_scale +
         ot_receiver_seconds * env.client_cpu_scale +
         env.network.TransferSeconds(server_to_client) +
         env.network.TransferSeconds(client_to_server);
}

Result<YaoRunResult> RunYaoSelectedSum(const Database& db,
                                       const SelectionVector& selection,
                                       RandomSource& rng, size_t sum_bits,
                                       GarbleScheme scheme) {
  if (selection.empty() || selection.size() > db.size()) {
    return Status::InvalidArgument(
        "selection must cover 1..db.size() leading rows");
  }
  SelectedSumCircuitSpec spec;
  spec.num_values = selection.size();
  spec.value_bits = 32;
  spec.sum_bits = sum_bits;

  YaoRunResult result;
  Circuit circuit = BuildSelectedSumCircuit(spec);
  result.total_gates = circuit.gates.size();
  result.and_gates = circuit.AndGateCount();

  // Server garbles.
  Stopwatch garble_timer;
  PPSTATS_ASSIGN_OR_RETURN(auto garbled_pair,
                           GarbleCircuit(circuit, rng, scheme));
  GarbledCircuit& garbled = garbled_pair.first;
  GarblerSecrets& secrets = garbled_pair.second;

  // Server's own (data) input labels.
  std::vector<bool> data_bits = EncodeDatabaseBits(db, spec);
  std::vector<Label> garbler_labels;
  garbler_labels.reserve(data_bits.size());
  for (size_t i = 0; i < data_bits.size(); ++i) {
    garbler_labels.push_back(secrets.GarblerInputLabel(i, data_bits[i]));
  }
  result.garble_seconds = garble_timer.ElapsedSeconds();

  // Tables + decode + garbler labels travel server -> client.
  result.server_to_client.Record(garbled.WireSize());
  result.server_to_client.Record(garbler_labels.size() * sizeof(Label));

  // Client obtains its selection-bit labels by OT.
  std::vector<std::pair<Label, Label>> ot_messages;
  ot_messages.reserve(spec.num_values);
  for (size_t i = 0; i < spec.num_values; ++i) {
    ot_messages.push_back(secrets.EvaluatorInputLabels(i));
  }
  std::vector<bool> choices(selection.begin(),
                            selection.begin() + spec.num_values);
  PPSTATS_ASSIGN_OR_RETURN(OtBatchResult ot,
                           RunBatchObliviousTransfer(ot_messages, choices,
                                                     rng));
  result.ot_sender_seconds = ot.sender_seconds;
  result.ot_receiver_seconds = ot.receiver_seconds;
  result.client_to_server += ot.receiver_to_sender;
  result.server_to_client += ot.sender_to_receiver;

  // Client evaluates.
  Stopwatch eval_timer;
  PPSTATS_ASSIGN_OR_RETURN(
      std::vector<bool> out_bits,
      EvaluateGarbled(circuit, garbled, garbler_labels, ot.received));
  result.evaluate_seconds = eval_timer.ElapsedSeconds();
  result.sum = DecodeSumBits(out_bits);
  return result;
}

}  // namespace ppstats
