// 1-out-of-2 oblivious transfer (Bellare-Micali construction) over a
// classic MODP group, used to deliver the evaluator's input labels in
// the Yao baseline without revealing the selection bits.
//
// Protocol, per transferred pair (m0, m1) with receiver choice b:
//   Sender:   publishes a random group element C with unknown discrete log.
//   Receiver: picks k, sets PK_b = g^k, PK_{1-b} = C * PK_b^{-1}; sends PK_0.
//   Sender:   derives PK_1 = C * PK_0^{-1}; for i in {0,1} picks r_i and
//             sends (g^{r_i}, H(i, PK_i^{r_i}) XOR m_i).
//   Receiver: recovers m_b = H(b, (g^{r_b})^k) XOR c_b.
//
// The receiver cannot know the discrete log of both PK_0 and PK_1 (that
// would give the discrete log of C), so it learns exactly one message;
// the sender sees only PK_0, which is a uniformly random group element
// either way, so it learns nothing about b.

#ifndef PPSTATS_YAO_OT_H_
#define PPSTATS_YAO_OT_H_

#include <memory>
#include <vector>

#include "bigint/montgomery.h"
#include "common/random.h"
#include "net/channel.h"
#include "yao/label.h"

namespace ppstats {

/// A multiplicative group modulo a large prime, with a fixed generator.
struct OtGroup {
  BigInt p;
  BigInt g;
  std::shared_ptr<const MontgomeryContext> mont;

  size_t ElementBytes() const { return (p.BitLength() + 7) / 8; }

  /// The 1024-bit MODP group from RFC 2409 (Oakley group 2), generator 2.
  static const OtGroup& Rfc2409Group2();
};

/// Outcome and cost of a batch of OTs.
struct OtBatchResult {
  std::vector<Label> received;    ///< message b_i of pair i
  TrafficStats receiver_to_sender;
  TrafficStats sender_to_receiver;
  double sender_seconds = 0;
  double receiver_seconds = 0;
};

/// Runs `choices.size()` independent 1-of-2 OTs. `messages[i]` is the
/// sender's pair, `choices[i]` the receiver's bit. The real group math
/// and real serialized messages are used; both roles run in-process with
/// per-role timing.
[[nodiscard]] Result<OtBatchResult> RunBatchObliviousTransfer(
    const std::vector<std::pair<Label, Label>>& messages,
    const std::vector<bool>& choices, RandomSource& rng,
    const OtGroup& group = OtGroup::Rfc2409Group2());

}  // namespace ppstats

#endif  // PPSTATS_YAO_OT_H_
