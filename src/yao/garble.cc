#include "yao/garble.h"

#include "crypto/sha256.h"

namespace ppstats {

namespace {

// H(a, b, gate_id) truncated to a label: the row key for garbled tables.
Label GateHash(const Label& a, const Label& b, uint32_t gate_id) {
  Sha256 h;
  h.Update(a.bytes);
  h.Update(b.bytes);
  uint8_t id_bytes[4] = {
      static_cast<uint8_t>(gate_id >> 24), static_cast<uint8_t>(gate_id >> 16),
      static_cast<uint8_t>(gate_id >> 8), static_cast<uint8_t>(gate_id)};
  h.Update(id_bytes);
  Sha256::Digest d = h.Finish();
  Label out;
  std::copy(d.begin(), d.begin() + 16, out.bytes.begin());
  return out;
}

// Single-label hash H(a, tweak) used by the half-gates construction.
Label HalfGateHash(const Label& a, uint64_t tweak) {
  Sha256 h;
  h.Update(a.bytes);
  uint8_t id_bytes[8];
  for (int i = 0; i < 8; ++i) {
    id_bytes[i] = static_cast<uint8_t>(tweak >> (56 - 8 * i));
  }
  h.Update(id_bytes);
  Sha256::Digest d = h.Finish();
  Label out;
  std::copy(d.begin(), d.begin() + 16, out.bytes.begin());
  return out;
}

Label MaybeXor(const Label& a, const Label& b, bool condition) {
  return condition ? a ^ b : a;
}

}  // namespace

Result<std::pair<GarbledCircuit, GarblerSecrets>> GarbleCircuit(
    const Circuit& circuit, RandomSource& rng, GarbleScheme scheme) {
  GarbledCircuit garbled;
  garbled.scheme = scheme;
  GarblerSecrets secrets;

  secrets.delta = Label::Random(rng);
  secrets.delta.bytes[0] |= 1;  // permute bit of delta must be 1

  // FALSE label of every wire.
  std::vector<Label> false_label(circuit.num_wires);
  std::vector<bool> assigned(circuit.num_wires, false);

  for (WireId w : circuit.garbler_inputs) {
    false_label[w] = Label::Random(rng);
    assigned[w] = true;
    secrets.garbler_input_false.push_back(false_label[w]);
  }
  for (WireId w : circuit.evaluator_inputs) {
    false_label[w] = Label::Random(rng);
    assigned[w] = true;
    secrets.evaluator_input_false.push_back(false_label[w]);
  }

  garbled.and_tables.reserve(circuit.AndGateCount());
  uint32_t gate_id = 0;
  for (const Gate& g : circuit.gates) {
    if (!assigned[g.a] || !assigned[g.b]) {
      return Status::InvalidArgument("circuit gates are not topological");
    }
    if (assigned[g.out]) {
      return Status::InvalidArgument("gate output wire reused");
    }
    if (g.type == GateType::kXor) {
      // Free XOR: FALSE label is the XOR of the input FALSE labels.
      false_label[g.out] = false_label[g.a] ^ false_label[g.b];
    } else if (scheme == GarbleScheme::kPointAndPermute) {
      Label out0 = Label::Random(rng);
      false_label[g.out] = out0;
      std::array<Label, 4> table;
      for (int va = 0; va < 2; ++va) {
        for (int vb = 0; vb < 2; ++vb) {
          Label la = va ? false_label[g.a] ^ secrets.delta : false_label[g.a];
          Label lb = vb ? false_label[g.b] ^ secrets.delta : false_label[g.b];
          int row = (la.PermuteBit() << 1) | lb.PermuteBit();
          Label out = (va & vb) ? out0 ^ secrets.delta : out0;
          table[row] = GateHash(la, lb, gate_id) ^ out;
        }
      }
      garbled.and_tables.push_back(table);
    } else {
      // Half gates (ZRE15): a AND b = (a AND pb) XOR (a AND (b XOR pb)).
      const Label& a0 = false_label[g.a];
      const Label& b0 = false_label[g.b];
      Label a1 = a0 ^ secrets.delta;
      Label b1 = b0 ^ secrets.delta;
      bool pa = a0.PermuteBit();
      bool pb = b0.PermuteBit();
      uint64_t j1 = uint64_t{gate_id} * 2;
      uint64_t j2 = uint64_t{gate_id} * 2 + 1;

      // Generator half gate (garbler knows pb).
      Label tg = MaybeXor(HalfGateHash(a0, j1) ^ HalfGateHash(a1, j1),
                          secrets.delta, pb);
      Label wg0 = MaybeXor(HalfGateHash(a0, j1), tg, pa);
      // Evaluator half gate (evaluator knows b XOR pb).
      Label te = HalfGateHash(b0, j2) ^ HalfGateHash(b1, j2) ^ a0;
      Label we0 = MaybeXor(HalfGateHash(b0, j2), te ^ a0, pb);

      false_label[g.out] = wg0 ^ we0;
      garbled.half_tables.push_back({tg, te});
    }
    assigned[g.out] = true;
    ++gate_id;
  }

  garbled.output_decode.reserve(circuit.outputs.size());
  for (WireId w : circuit.outputs) {
    if (!assigned[w]) {
      return Status::InvalidArgument("output wire never assigned");
    }
    garbled.output_decode.push_back(false_label[w].PermuteBit() ? 1 : 0);
  }
  return std::make_pair(std::move(garbled), std::move(secrets));
}

Result<std::vector<bool>> EvaluateGarbled(
    const Circuit& circuit, const GarbledCircuit& garbled,
    const std::vector<Label>& garbler_input_labels,
    const std::vector<Label>& evaluator_input_labels) {
  if (garbler_input_labels.size() != circuit.garbler_inputs.size() ||
      evaluator_input_labels.size() != circuit.evaluator_inputs.size()) {
    return Status::InvalidArgument("wrong input label arity");
  }
  if (garbled.output_decode.size() != circuit.outputs.size()) {
    return Status::InvalidArgument("output decode table arity mismatch");
  }

  std::vector<Label> active(circuit.num_wires);
  for (size_t i = 0; i < garbler_input_labels.size(); ++i) {
    active[circuit.garbler_inputs[i]] = garbler_input_labels[i];
  }
  for (size_t i = 0; i < evaluator_input_labels.size(); ++i) {
    active[circuit.evaluator_inputs[i]] = evaluator_input_labels[i];
  }

  size_t and_index = 0;
  uint32_t gate_id = 0;
  for (const Gate& g : circuit.gates) {
    if (g.type == GateType::kXor) {
      active[g.out] = active[g.a] ^ active[g.b];
    } else if (garbled.scheme == GarbleScheme::kPointAndPermute) {
      if (and_index >= garbled.and_tables.size()) {
        return Status::InvalidArgument("missing garbled table for AND gate");
      }
      const std::array<Label, 4>& table = garbled.and_tables[and_index++];
      int row = (active[g.a].PermuteBit() << 1) | active[g.b].PermuteBit();
      active[g.out] =
          GateHash(active[g.a], active[g.b], gate_id) ^ table[row];
    } else {
      if (and_index >= garbled.half_tables.size()) {
        return Status::InvalidArgument("missing garbled table for AND gate");
      }
      const std::array<Label, 2>& table = garbled.half_tables[and_index++];
      const Label& tg = table[0];
      const Label& te = table[1];
      uint64_t j1 = uint64_t{gate_id} * 2;
      uint64_t j2 = uint64_t{gate_id} * 2 + 1;
      bool sa = active[g.a].PermuteBit();
      bool sb = active[g.b].PermuteBit();
      Label wg = MaybeXor(HalfGateHash(active[g.a], j1), tg, sa);
      Label we = MaybeXor(HalfGateHash(active[g.b], j2), te ^ active[g.a],
                          sb);
      active[g.out] = wg ^ we;
    }
    ++gate_id;
  }

  std::vector<bool> out;
  out.reserve(circuit.outputs.size());
  for (size_t i = 0; i < circuit.outputs.size(); ++i) {
    bool bit = active[circuit.outputs[i]].PermuteBit() !=
               (garbled.output_decode[i] != 0);
    out.push_back(bit);
  }
  return out;
}

}  // namespace ppstats
