// Garbling and evaluation of boolean circuits: point-and-permute garbled
// tables for AND gates, free XOR (Kolesnikov-Schneider), SHA-256 as the
// key-derivation hash.

#ifndef PPSTATS_YAO_GARBLE_H_
#define PPSTATS_YAO_GARBLE_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "yao/circuit.h"
#include "yao/label.h"

namespace ppstats {

/// Garbled-table construction for AND gates.
enum class GarbleScheme {
  kPointAndPermute,  ///< classic 4 ciphertexts per AND gate
  kHalfGates,        ///< Zahur-Rosulek-Evans 2015: 2 ciphertexts per AND
};

/// The material the garbler ships to the evaluator (plus, via OT, the
/// evaluator's input labels).
struct GarbledCircuit {
  GarbleScheme scheme = GarbleScheme::kPointAndPermute;

  /// kPointAndPermute: one 4-row table per AND gate, in gate order.
  std::vector<std::array<Label, 4>> and_tables;

  /// kHalfGates: two ciphertexts (TG, TE) per AND gate, in gate order.
  std::vector<std::array<Label, 2>> half_tables;

  /// Permute bit of each output wire's FALSE label; the evaluator XORs
  /// it with the permute bit of the label it holds to decode the bit.
  std::vector<uint8_t> output_decode;

  /// Serialized size in bytes (tables + decode bits), for traffic
  /// accounting.
  size_t WireSize() const {
    return and_tables.size() * 4 * sizeof(Label) +
           half_tables.size() * 2 * sizeof(Label) +
           (output_decode.size() + 7) / 8;
  }
};

/// The garbler's secrets: the global free-XOR offset and the FALSE label
/// of every input wire.
struct GarblerSecrets {
  Label delta;  ///< PermuteBit(delta) == 1
  std::vector<Label> garbler_input_false;    ///< per garbler input wire
  std::vector<Label> evaluator_input_false;  ///< per evaluator input wire

  /// Active label for garbler input i carrying `bit`.
  Label GarblerInputLabel(size_t i, bool bit) const {
    return bit ? garbler_input_false[i] ^ delta : garbler_input_false[i];
  }

  /// Both labels for evaluator input i (inputs to the OT).
  std::pair<Label, Label> EvaluatorInputLabels(size_t i) const {
    return {evaluator_input_false[i], evaluator_input_false[i] ^ delta};
  }
};

/// Garbles `circuit` with fresh randomness.
[[nodiscard]] Result<std::pair<GarbledCircuit, GarblerSecrets>> GarbleCircuit(
    const Circuit& circuit, RandomSource& rng,
    GarbleScheme scheme = GarbleScheme::kPointAndPermute);

/// Evaluates a garbled circuit given the active label of every input
/// wire; returns the decoded output bits.
[[nodiscard]] Result<std::vector<bool>> EvaluateGarbled(
    const Circuit& circuit, const GarbledCircuit& garbled,
    const std::vector<Label>& garbler_input_labels,
    const std::vector<Label>& evaluator_input_labels);

}  // namespace ppstats

#endif  // PPSTATS_YAO_GARBLE_H_
