// Boolean circuits for the Yao garbled-circuit baseline.
//
// The paper argues (Section 2) that general secure two-party computation
// — e.g. Fairplay's implementation of Yao's protocol — is impractical for
// database-sized selected sums (>= 15 minutes for 100 elements). To
// reproduce that comparison we implement the general machinery: circuits
// over XOR/AND gates (free-XOR-compatible), a garbler, an evaluator, and
// oblivious transfer for the evaluator's input labels.
//
// Circuits are gate lists in topological order. Only XOR and AND are
// needed: the selected-sum circuit is built from AND masks and
// ripple-carry adders, both expressible without NOT or constants.

#ifndef PPSTATS_YAO_CIRCUIT_H_
#define PPSTATS_YAO_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ppstats {

/// Wire identifier (index into the evaluation-time wire array).
using WireId = uint32_t;

/// Gate kinds. XOR garbles for free (free-XOR); AND costs a garbled table.
enum class GateType : uint8_t { kXor, kAnd };

/// A two-input gate.
struct Gate {
  GateType type;
  WireId a;
  WireId b;
  WireId out;
};

/// A boolean circuit with two input parties.
struct Circuit {
  uint32_t num_wires = 0;
  std::vector<WireId> garbler_inputs;    ///< server-side input wires
  std::vector<WireId> evaluator_inputs;  ///< client-side input wires
  std::vector<WireId> outputs;
  std::vector<Gate> gates;               ///< topological order

  size_t AndGateCount() const {
    size_t count = 0;
    for (const Gate& g : gates) {
      if (g.type == GateType::kAnd) ++count;
    }
    return count;
  }
};

/// Evaluates `circuit` in the clear (reference semantics for tests and
/// for checking the garbled evaluation). Input bit vectors must match
/// the circuit's input arities.
[[nodiscard]] Result<std::vector<bool>> EvaluateCircuit(
    const Circuit& circuit, const std::vector<bool>& garbler_bits,
    const std::vector<bool>& evaluator_bits);

/// Incrementally builds a circuit in topological order.
class CircuitBuilder {
 public:
  /// Allocates a fresh garbler (server) input wire.
  WireId AddGarblerInput();

  /// Allocates a fresh evaluator (client) input wire.
  WireId AddEvaluatorInput();

  WireId Xor(WireId a, WireId b);
  WireId And(WireId a, WireId b);

  /// Marks a wire as a circuit output.
  void MarkOutput(WireId w);

  /// Bitwise AND of every bit in `bits` with the single wire `bit`.
  std::vector<WireId> MaskWith(const std::vector<WireId>& bits, WireId bit);

  /// Ripple-carry addition acc + addend, where addend may be narrower
  /// than acc (its high bits are implicitly zero). The carry out of the
  /// top position becomes a new most-significant bit, so the result has
  /// acc.size() + 1 bits, truncated to at most `max_width`. Bit 0 is the
  /// least significant. (Appending the carry instead of padding with
  /// constant-zero wires keeps the circuit free of constants.)
  std::vector<WireId> AddInto(const std::vector<WireId>& acc,
                              const std::vector<WireId>& addend,
                              size_t max_width);

  /// Finishes and returns the circuit.
  Circuit Build() &&;

 private:
  WireId NewWire() { return circuit_.num_wires++; }

  Circuit circuit_;
};

}  // namespace ppstats

#endif  // PPSTATS_YAO_CIRCUIT_H_
