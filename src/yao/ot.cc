#include "yao/ot.h"

#include "bigint/modarith.h"
#include "crypto/sha256.h"
#include "net/wire.h"
#include "obs/span.h"

namespace ppstats {

namespace {

constexpr char kGroup2PrimeHex[] =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

// Key-derivation: H(role byte, group element) truncated to a label.
Label DerivePad(uint8_t which, const BigInt& element, size_t width) {
  Sha256 h;
  h.Update(BytesView(&which, 1));
  Bytes bytes = element.ToBytes(width);
  h.Update(bytes);
  Sha256::Digest d = h.Finish();
  Label out;
  std::copy(d.begin(), d.begin() + 16, out.bytes.begin());
  return out;
}

}  // namespace

const OtGroup& OtGroup::Rfc2409Group2() {
  static const OtGroup* group = [] {
    auto* g = new OtGroup();
    g->p = BigInt::FromHexString(kGroup2PrimeHex).ValueOrDie();
    g->g = BigInt(2);
    g->mont = std::make_shared<MontgomeryContext>(g->p);
    return g;
  }();
  return *group;
}

Result<OtBatchResult> RunBatchObliviousTransfer(
    const std::vector<std::pair<Label, Label>>& messages,
    const std::vector<bool>& choices, RandomSource& rng,
    const OtGroup& group) {
  if (messages.size() != choices.size()) {
    return Status::InvalidArgument("OT messages/choices arity mismatch");
  }
  const size_t n = messages.size();
  const size_t width = group.ElementBytes();
  const BigInt& p = group.p;
  const MontgomeryContext& mont = *group.mont;

  OtBatchResult result;
  result.received.reserve(n);

  // --- Sender setup: random C with unknown discrete log (the exponent is
  // drawn and immediately discarded). Sent once for the whole batch.
  obs::ScopedPhaseTimer sender_timer(&result.sender_seconds, "ot.sender");
  BigInt c_exp = RandomBelow(rng, p - BigInt(1)) + BigInt(1);
  BigInt c_elem = mont.Exp(group.g, c_exp);
  WireWriter setup;
  Status st = setup.WriteFixedBigInt(c_elem, width);
  if (!st.ok()) return st;
  Bytes setup_frame = setup.Take();
  sender_timer.Stop();
  result.sender_to_receiver.Record(setup_frame.size());

  // --- Receiver: per choice, PK_b = g^k, PK_{1-b} = C / PK_b; send PK_0.
  obs::ScopedPhaseTimer receiver_timer(&result.receiver_seconds,
                                       "ot.receiver");
  std::vector<BigInt> receiver_k(n);
  WireWriter pk_msg;
  for (size_t i = 0; i < n; ++i) {
    receiver_k[i] = RandomBelow(rng, p - BigInt(1)) + BigInt(1);
    BigInt pk_b = mont.Exp(group.g, receiver_k[i]);
    PPSTATS_ASSIGN_OR_RETURN(BigInt pk_b_inv, ModInverse(pk_b, p));
    BigInt pk_other = MulMod(c_elem, pk_b_inv, p);
    const BigInt& pk0 = choices[i] ? pk_other : pk_b;
    PPSTATS_RETURN_IF_ERROR(pk_msg.WriteFixedBigInt(pk0, width));
  }
  Bytes pk_frame = pk_msg.Take();
  receiver_timer.Stop();
  result.receiver_to_sender.Record(pk_frame.size());

  // --- Sender: derive PK_1, encrypt both labels per pair.
  obs::ScopedPhaseTimer sender_timer2(&result.sender_seconds, "ot.sender");
  WireReader pk_reader(pk_frame);
  WireWriter enc_msg;
  for (size_t i = 0; i < n; ++i) {
    PPSTATS_ASSIGN_OR_RETURN(BigInt pk0, pk_reader.ReadFixedBigInt(width));
    if (pk0.IsZero() || pk0 >= p) {
      return Status::ProtocolError("invalid receiver public key");
    }
    PPSTATS_ASSIGN_OR_RETURN(BigInt pk0_inv, ModInverse(pk0, p));
    BigInt pk1 = MulMod(c_elem, pk0_inv, p);
    const BigInt* pks[2] = {&pk0, &pk1};
    for (int which = 0; which < 2; ++which) {
      BigInt r = RandomBelow(rng, p - BigInt(1)) + BigInt(1);
      BigInt g_r = mont.Exp(group.g, r);
      BigInt shared = mont.Exp(*pks[which], r);
      Label pad = DerivePad(static_cast<uint8_t>(which), shared, width);
      const Label& m = which == 0 ? messages[i].first : messages[i].second;
      Label ct = m ^ pad;
      PPSTATS_RETURN_IF_ERROR(enc_msg.WriteFixedBigInt(g_r, width));
      enc_msg.WriteBytes(ct.bytes);
    }
  }
  Bytes enc_frame = enc_msg.Take();
  sender_timer2.Stop();
  result.sender_to_receiver.Record(enc_frame.size());

  // --- Receiver: decrypt the chosen message of each pair.
  obs::ScopedPhaseTimer receiver_timer2(&result.receiver_seconds,
                                        "ot.receiver");
  WireReader enc_reader(enc_frame);
  for (size_t i = 0; i < n; ++i) {
    Label chosen{};
    for (int which = 0; which < 2; ++which) {
      PPSTATS_ASSIGN_OR_RETURN(BigInt g_r, enc_reader.ReadFixedBigInt(width));
      PPSTATS_ASSIGN_OR_RETURN(Bytes ct_bytes, enc_reader.ReadBytes());
      if (ct_bytes.size() != 16) {
        return Status::ProtocolError("bad OT ciphertext size");
      }
      if (which == static_cast<int>(choices[i])) {
        BigInt shared = mont.Exp(g_r, receiver_k[i]);
        Label pad = DerivePad(static_cast<uint8_t>(which), shared, width);
        Label ct;
        std::copy(ct_bytes.begin(), ct_bytes.end(), ct.bytes.begin());
        chosen = ct ^ pad;
      }
    }
    result.received.push_back(chosen);
  }
  PPSTATS_RETURN_IF_ERROR(enc_reader.ExpectEnd());
  receiver_timer2.Stop();

  return result;
}

}  // namespace ppstats
