// Circuit generator for the selected-sum function, and the end-to-end
// Yao protocol driver used as the general-SMC baseline.

#ifndef PPSTATS_YAO_SELECTED_SUM_CIRCUIT_H_
#define PPSTATS_YAO_SELECTED_SUM_CIRCUIT_H_

#include "common/random.h"
#include "db/database.h"
#include "net/channel.h"
#include "sim/environment.h"
#include "yao/circuit.h"
#include "yao/garble.h"

namespace ppstats {

/// Shape of a selected-sum circuit.
struct SelectedSumCircuitSpec {
  size_t num_values = 0;   ///< database rows covered
  size_t value_bits = 32;  ///< bits per database value
  size_t sum_bits = 0;     ///< accumulator width; 0 = value_bits + ceil(log2 n)

  size_t EffectiveSumBits() const;
};

/// Builds the circuit: garbler inputs are the num_values * value_bits
/// data bits (LSB-first per value, values in row order); evaluator inputs
/// are the num_values selection bits; outputs are the sum_bits of the
/// selected sum (LSB first), truncated mod 2^sum_bits.
Circuit BuildSelectedSumCircuit(const SelectedSumCircuitSpec& spec);

/// Encodes database rows [0, num_values) as garbler input bits.
std::vector<bool> EncodeDatabaseBits(const Database& db,
                                     const SelectedSumCircuitSpec& spec);

/// Decodes LSB-first output bits into an integer.
uint64_t DecodeSumBits(const std::vector<bool>& bits);

/// Result and cost of one garbled-circuit selected sum.
struct YaoRunResult {
  uint64_t sum = 0;
  size_t total_gates = 0;
  size_t and_gates = 0;

  // Server (garbler) and client (evaluator) compute time, measured.
  double garble_seconds = 0;
  double ot_sender_seconds = 0;
  double evaluate_seconds = 0;
  double ot_receiver_seconds = 0;

  TrafficStats server_to_client;  ///< tables, garbler labels, OT flows
  TrafficStats client_to_server;  ///< OT public keys

  /// Total elapsed time under `env`, serialized (garble, transfer, OT,
  /// evaluate — the shape Fairplay-era systems had).
  double TotalSeconds(const ExecutionEnvironment& env) const;
};

/// Runs the full Yao protocol for the selected sum over `db` rows
/// [0, selection.size()): the server garbles, the client receives its
/// selection labels by real OT and evaluates. The result is checked
/// against nothing — use the returned sum. `scheme` selects the AND-gate
/// construction (half gates halve the garbled material).
[[nodiscard]] Result<YaoRunResult> RunYaoSelectedSum(
    const Database& db, const SelectionVector& selection, RandomSource& rng,
    size_t sum_bits = 0,
    GarbleScheme scheme = GarbleScheme::kPointAndPermute);

}  // namespace ppstats

#endif  // PPSTATS_YAO_SELECTED_SUM_CIRCUIT_H_
