// IKNP oblivious-transfer extension (Ishai-Kilian-Nissim-Petrank 2003,
// semi-honest variant).
//
// Public-key OT costs two modular exponentiations per transfer; a
// selected-sum circuit needs one OT per database row, so base OT alone
// would dominate the Yao baseline at scale. OT extension performs k=128
// base OTs once (with the roles of sender and receiver swapped) and
// stretches them into any number m of transfers using only a PRG and a
// hash:
//
//   1. The receiver R picks k seed pairs (K_j^0, K_j^1); the sender S
//      receives K_j^{s_j} by base OT for a random secret s in {0,1}^k.
//   2. R expands T: column t_j = PRG(K_j^0) (m bits), and sends
//      u_j = PRG(K_j^0) XOR PRG(K_j^1) XOR r   (r = R's choice vector).
//   3. S computes q_j = PRG(K_j^{s_j}) XOR s_j * u_j. Row-wise this
//      gives q_i = t_i XOR r_i * s.
//   4. For pair i, S sends y_i^b = x_i^b XOR H(i, q_i XOR b*s);
//      R recovers x_i^{r_i} = y_i^{r_i} XOR H(i, t_i).
//
// Security (semi-honest): S sees only u_j, masked by the PRG output of
// the seed it does NOT know; R never learns s, so H(i, q_i XOR (1-r_i)s)
// is unpredictable to it.

#ifndef PPSTATS_YAO_OT_EXTENSION_H_
#define PPSTATS_YAO_OT_EXTENSION_H_

#include "yao/ot.h"

namespace ppstats {

/// Security parameter: base-OT count / column width.
inline constexpr size_t kOtExtensionWidth = 128;

/// Runs `choices.size()` 1-of-2 label transfers via IKNP extension over
/// `kOtExtensionWidth` Bellare-Micali base OTs. Same contract as
/// RunBatchObliviousTransfer; asymptotically the public-key work is
/// constant while base OT grows linearly in the batch size.
[[nodiscard]] Result<OtBatchResult> RunIknpObliviousTransfer(
    const std::vector<std::pair<Label, Label>>& messages,
    const std::vector<bool>& choices, RandomSource& rng,
    const OtGroup& group = OtGroup::Rfc2409Group2());

}  // namespace ppstats

#endif  // PPSTATS_YAO_OT_EXTENSION_H_
