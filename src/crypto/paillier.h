// Paillier public-key cryptosystem (Paillier, EUROCRYPT '99) with the
// additive homomorphism the selected-sum protocol relies on:
//
//   E(a) * E(b) mod n^2          = E(a + b mod n)
//   E(a)^c mod n^2               = E(a * c mod n)
//
// Implementation notes:
//  * g is fixed to n + 1, so encryption is
//      E(m; r) = (1 + m n) * r^n  mod n^2
//    which costs one |n|-bit modular exponentiation (the dominant cost the
//    paper measures for the client).
//  * Decryption uses the standard CRT acceleration over p^2 and q^2
//    (~4x faster than the direct c^lambda mod n^2); the direct path is
//    kept for the ablation benchmark.
//  * The expensive factor r^n mod n^2 is exposed separately
//    (GenerateRandomFactor / EncryptWithFactor) so the preprocessing
//    optimization of Section 3.3 can precompute it offline.
//
// Plaintext space is Z_n; callers must supply m in [0, n).

#ifndef PPSTATS_CRYPTO_PAILLIER_H_
#define PPSTATS_CRYPTO_PAILLIER_H_

#include <memory>
#include <span>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "common/random.h"
#include "common/result.h"

namespace ppstats {

/// A Paillier ciphertext: a residue modulo n^2. Wrapped in a struct so
/// ciphertexts and plaintexts cannot be confused at an API boundary.
struct PaillierCiphertext {
  BigInt value;

  friend bool operator==(const PaillierCiphertext& a,
                         const PaillierCiphertext& b) = default;
};

/// Public (encryption) key.
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  PaillierPublicKey(BigInt n, size_t modulus_bits);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }
  size_t modulus_bits() const { return modulus_bits_; }

  /// Fixed wire width of a serialized ciphertext under this key.
  size_t CiphertextBytes() const { return (2 * modulus_bits_ + 7) / 8; }

  /// Montgomery context modulo n^2 (shared, immutable).
  const MontgomeryContext& mont_n2() const { return *mont_n2_; }

  bool valid() const { return mont_n2_ != nullptr; }

 private:
  BigInt n_;
  BigInt n_squared_;
  size_t modulus_bits_ = 0;
  std::shared_ptr<const MontgomeryContext> mont_n2_;
};

/// Private (decryption) key. Embeds the matching public key.
class PaillierPrivateKey {
 public:
  PaillierPrivateKey() = default;

  /// Builds a private key from the prime factorization of n. Fails if
  /// p == q, p or q is even, or gcd(n, (p-1)(q-1)) != 1.
  [[nodiscard]] static Result<PaillierPrivateKey> FromPrimes(const BigInt& p,
                                                             const BigInt& q,
                                                             size_t modulus_bits);

  const PaillierPublicKey& public_key() const { return pub_; }
  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }
  const BigInt& lambda() const { return lambda_; }

  // Internal accessors used by the decryption routines.
  const BigInt& mu() const { return mu_; }
  const BigInt& p_squared() const { return p_squared_; }
  const BigInt& q_squared() const { return q_squared_; }
  const BigInt& hp() const { return hp_; }
  const BigInt& hq() const { return hq_; }
  const MontgomeryContext& mont_p2() const { return *mont_p2_; }
  const MontgomeryContext& mont_q2() const { return *mont_q2_; }

 private:
  PaillierPublicKey pub_;
  BigInt p_, q_;
  BigInt p_squared_, q_squared_;
  BigInt lambda_;  // lcm(p-1, q-1)
  BigInt mu_;      // lambda^{-1} mod n (g = n+1)
  BigInt hp_, hq_; // CRT decryption constants
  std::shared_ptr<const MontgomeryContext> mont_p2_, mont_q2_;
};

/// A generated key pair.
struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

/// Stateless Paillier operations.
class Paillier {
 public:
  /// Generates a key pair with an n of exactly `modulus_bits` bits
  /// (two random primes of modulus_bits/2 bits each). modulus_bits must
  /// be even and >= 16.
  [[nodiscard]] static Result<PaillierKeyPair> GenerateKeyPair(size_t modulus_bits,
                                                               RandomSource& rng);

  /// The expensive precomputable part of encryption: r^n mod n^2 for a
  /// fresh random unit r.
  static BigInt GenerateRandomFactor(const PaillierPublicKey& pub,
                                     RandomSource& rng);

  /// E(m; r) for fresh randomness. Fails if m is outside [0, n).
  [[nodiscard]] static Result<PaillierCiphertext> Encrypt(const PaillierPublicKey& pub,
                                                          const BigInt& m,
                                                          RandomSource& rng);

  /// E(m) using a precomputed factor r^n mod n^2 (see
  /// GenerateRandomFactor); the online cost is two modular
  /// multiplications.
  [[nodiscard]] static Result<PaillierCiphertext> EncryptWithFactor(
      const PaillierPublicKey& pub, const BigInt& m,
      const BigInt& r_to_n);

  /// Decrypts via CRT (the default, fast path). Fails if the ciphertext
  /// is out of range or not a unit mod n^2.
  [[nodiscard]] static Result<BigInt> Decrypt(const PaillierPrivateKey& priv,
                                              const PaillierCiphertext& ct);

  /// Direct decryption m = L(c^lambda mod n^2) * mu mod n; kept for the
  /// CRT-vs-direct ablation and as a cross-check.
  [[nodiscard]] static Result<BigInt> DecryptDirect(const PaillierPrivateKey& priv,
                                                    const PaillierCiphertext& ct);

  /// Homomorphic addition: E(a + b mod n).
  static PaillierCiphertext Add(const PaillierPublicKey& pub,
                                const PaillierCiphertext& a,
                                const PaillierCiphertext& b);

  /// Homomorphic addition of a plaintext constant: E(a + k mod n), at the
  /// cost of two modular multiplications (no exponentiation).
  [[nodiscard]] static Result<PaillierCiphertext> AddPlaintext(const PaillierPublicKey& pub,
                                                               const PaillierCiphertext& a,
                                                               const BigInt& k);

  /// Homomorphic scalar multiplication: E(a * k mod n) = a^k mod n^2.
  /// This is the server-side operation (k is a database value).
  static PaillierCiphertext ScalarMultiply(const PaillierPublicKey& pub,
                                           const PaillierCiphertext& a,
                                           const BigInt& k);

  /// Batched homomorphic fold: E(sum_i a_i * w_i mod n) =
  /// prod_i cts[i]^{weights[i]} mod n^2, via the Pippenger/Straus
  /// multi-exponentiation kernel — the server's whole per-chunk work in
  /// one call. Bit-identical to folding ScalarMultiply results with Add.
  /// Spans must have equal length; zero weights are skipped.
  static PaillierCiphertext WeightedFold(const PaillierPublicKey& pub,
                                         std::span<const PaillierCiphertext> cts,
                                         std::span<const BigInt> weights);

  /// Re-randomizes a ciphertext: same plaintext, fresh randomness.
  static PaillierCiphertext Rerandomize(const PaillierPublicKey& pub,
                                        const PaillierCiphertext& a,
                                        RandomSource& rng);

  /// Serializes a ciphertext to its fixed wire width under `pub`.
  static Bytes SerializeCiphertext(const PaillierPublicKey& pub,
                                   const PaillierCiphertext& ct);

  /// Parses and validates a ciphertext (must decode to a value < n^2).
  [[nodiscard]] static Result<PaillierCiphertext> DeserializeCiphertext(
      const PaillierPublicKey& pub, BytesView bytes);
};

}  // namespace ppstats

#endif  // PPSTATS_CRYPTO_PAILLIER_H_
