// Precomputation pools for the index-preprocessing optimization (paper
// Section 3.3).
//
// The client can precompute, offline:
//   * RandomnessPool — the expensive factors r^n mod n^2, making any later
//     encryption cost just two modular multiplications; or
//   * EncryptionPool — complete encryptions of known plaintexts (the index
//     vector needs only E(0) and E(1)), making the online phase a table
//     lookup. This models the paper's PDA scenario: limited CPU,
//     reasonable storage.

#ifndef PPSTATS_CRYPTO_POOL_H_
#define PPSTATS_CRYPTO_POOL_H_

#include <cstdint>
#include <deque>
#include <map>

#include "crypto/paillier.h"

namespace ppstats {

/// Pool of precomputed r^n mod n^2 factors for one public key.
class RandomnessPool {
 public:
  explicit RandomnessPool(PaillierPublicKey pub) : pub_(std::move(pub)) {}

  /// Precomputes `count` additional factors (offline phase).
  void Generate(size_t count, RandomSource& rng);

  /// Removes and returns one factor; ResourceExhausted when empty.
  [[nodiscard]] Result<BigInt> Take();

  /// Encrypts using a pooled factor; falls back to fresh randomness from
  /// `rng` when the pool is empty (counted in misses()).
  [[nodiscard]] Result<PaillierCiphertext> Encrypt(const BigInt& m, RandomSource& rng);

  size_t available() const { return factors_.size(); }
  size_t misses() const { return misses_; }
  const PaillierPublicKey& public_key() const { return pub_; }

 private:
  PaillierPublicKey pub_;
  std::deque<BigInt> factors_;
  size_t misses_ = 0;
};

/// Pool of complete precomputed encryptions, keyed by plaintext.
class EncryptionPool {
 public:
  explicit EncryptionPool(PaillierPublicKey pub) : pub_(std::move(pub)) {}

  /// Precomputes `count` fresh encryptions of `plaintext` (offline).
  /// Fails if the plaintext is outside [0, n).
  [[nodiscard]] Status Generate(const BigInt& plaintext, size_t count, RandomSource& rng);

  /// Removes and returns one encryption of `plaintext`; falls back to an
  /// online encryption from `rng` when none is pooled (counted in
  /// misses()).
  [[nodiscard]] Result<PaillierCiphertext> Take(const BigInt& plaintext,
                                                RandomSource& rng);

  size_t available(const BigInt& plaintext) const;
  size_t misses() const { return misses_; }
  const PaillierPublicKey& public_key() const { return pub_; }

 private:
  PaillierPublicKey pub_;
  std::map<BigInt, std::deque<PaillierCiphertext>> store_;
  size_t misses_ = 0;
};

}  // namespace ppstats

#endif  // PPSTATS_CRYPTO_POOL_H_
