// SHA-256 (FIPS 180-4). Used as the PRF / hash for garbled circuits,
// oblivious transfer key derivation, and commitment-style checks.

#ifndef PPSTATS_CRYPTO_SHA256_H_
#define PPSTATS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ppstats {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs more input.
  void Update(BytesView data);

  /// Finalizes and returns the digest. The hasher must not be reused
  /// after Finish() without Reset().
  Digest Finish();

  /// Resets to the initial state.
  void Reset();

  /// One-shot convenience.
  static Digest Hash(BytesView data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace ppstats

#endif  // PPSTATS_CRYPTO_SHA256_H_
