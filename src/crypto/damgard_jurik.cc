#include "crypto/damgard_jurik.h"

#include "bigint/modarith.h"
#include "bigint/prime.h"

namespace ppstats {

namespace {

// (1 + n)^m mod n^{s+1} via the binomial expansion
//   sum_{k=0}^{s} binom(m, k) n^k,
// which needs only s modular multiplications instead of a |n^s|-bit
// exponentiation. k! is invertible mod n^{s+1} because k <= s < p, q.
BigInt OnePlusNPow(const BigInt& n, size_t s, const BigInt& m,
                   const BigInt& n_s1) {
  BigInt result(1);
  BigInt term(1);  // binom(m, k) mod n^{s+1}, built iteratively
  BigInt n_pow(1);
  for (size_t k = 1; k <= s; ++k) {
    // term *= (m - k + 1) / k
    BigInt factor = Mod(m - BigInt(static_cast<uint64_t>(k - 1)), n_s1);
    term = MulMod(term, factor, n_s1);
    BigInt k_inv = ModInverse(BigInt(static_cast<uint64_t>(k)), n_s1)
                       .ValueOrDie();  // k < p, q => invertible
    term = MulMod(term, k_inv, n_s1);
    n_pow = n_pow * n;
    result = AddMod(result, MulMod(term, Mod(n_pow, n_s1), n_s1), n_s1);
  }
  return result;
}

// Discrete log of a = (1 + n)^i mod n^{s+1}: recovers i mod n^s.
// Damgård–Jurik (PKC 2001), Theorem 1 decryption algorithm.
BigInt LogOnePlusN(const BigInt& a, const BigInt& n, size_t s) {
  // Precompute n^j for j = 0..s+1.
  std::vector<BigInt> n_pow(s + 2);
  n_pow[0] = BigInt(1);
  for (size_t j = 1; j <= s + 1; ++j) n_pow[j] = n_pow[j - 1] * n;

  // Inverses of k! modulo n^s (valid modulo every n^j, j <= s).
  std::vector<BigInt> fact_inv(s + 1);
  fact_inv[0] = BigInt(1);
  BigInt fact(1);
  for (size_t k = 1; k <= s; ++k) {
    fact = fact * BigInt(static_cast<uint64_t>(k));
    fact_inv[k] = ModInverse(Mod(fact, n_pow[s]), n_pow[s]).ValueOrDie();
  }

  BigInt i(0);
  for (size_t j = 1; j <= s; ++j) {
    const BigInt& nj = n_pow[j];
    // L(a mod n^{j+1}) = (a mod n^{j+1} - 1) / n
    BigInt t1 = (Mod(a, n_pow[j + 1]) - BigInt(1)) / n;
    t1 = Mod(t1, nj);
    BigInt t2 = i;
    for (size_t k = 2; k <= j; ++k) {
      i = i - BigInt(1);
      t2 = MulMod(t2, Mod(i, nj), nj);
      BigInt adjust = MulMod(MulMod(t2, Mod(n_pow[k - 1], nj), nj),
                             Mod(fact_inv[k], nj), nj);
      t1 = SubMod(t1, adjust, nj);
    }
    i = t1;
  }
  return i;
}

}  // namespace

DjPublicKey::DjPublicKey(BigInt n, size_t s) : n_(std::move(n)), s_(s) {
  n_s_ = BigInt(1);
  for (size_t i = 0; i < s_; ++i) n_s_ = n_s_ * n_;
  n_s1_ = n_s_ * n_;
  mont_ = std::make_shared<MontgomeryContext>(n_s1_);
}

Result<DjPrivateKey> DjPrivateKey::FromPrimes(const BigInt& p,
                                              const BigInt& q, size_t s) {
  if (s == 0) return Status::InvalidArgument("s must be >= 1");
  if (p == q || p.IsEven() || q.IsEven()) {
    return Status::InvalidArgument("p and q must be distinct odd primes");
  }
  BigInt n = p * q;
  BigInt p1 = p - BigInt(1);
  BigInt q1 = q - BigInt(1);
  if (!Gcd(n, p1 * q1).IsOne()) {
    return Status::CryptoError("gcd(n, phi(n)) != 1; regenerate primes");
  }
  DjPrivateKey key;
  key.pub_ = DjPublicKey(n, s);
  key.lambda_ = Lcm(p1, q1);
  PPSTATS_ASSIGN_OR_RETURN(key.lambda_inv_,
                           ModInverse(key.lambda_, key.pub_.n_s()));
  return key;
}

Result<DjPrivateKey> DjPrivateKey::FromPaillier(const PaillierPrivateKey& key,
                                                size_t s) {
  return FromPrimes(key.p(), key.q(), s);
}

Result<DjKeyPair> DamgardJurik::GenerateKeyPair(size_t modulus_bits, size_t s,
                                                RandomSource& rng) {
  if (modulus_bits < 16 || modulus_bits % 2 != 0) {
    return Status::InvalidArgument(
        "modulus_bits must be even and at least 16");
  }
  for (;;) {
    auto [p, q] = GeneratePrimePair(modulus_bits / 2, rng);
    auto priv = DjPrivateKey::FromPrimes(p, q, s);
    if (!priv.ok()) continue;
    DjKeyPair pair;
    pair.private_key = std::move(priv).ValueOrDie();
    pair.public_key = pair.private_key.public_key();
    return pair;
  }
}

Result<DjCiphertext> DamgardJurik::Encrypt(const DjPublicKey& pub,
                                           const BigInt& m,
                                           RandomSource& rng) {
  if (m.IsNegative() || m >= pub.n_s()) {
    return Status::OutOfRange("plaintext must be in [0, n^s)");
  }
  BigInt gm = OnePlusNPow(pub.n(), pub.s(), m, pub.n_s1());
  BigInt r = RandomUnit(rng, pub.n());
  BigInt rn = pub.mont().Exp(r, pub.n_s());
  return DjCiphertext{MulMod(gm, rn, pub.n_s1())};
}

Result<BigInt> DamgardJurik::Decrypt(const DjPrivateKey& priv,
                                     const DjCiphertext& ct) {
  const DjPublicKey& pub = priv.public_key();
  if (ct.value.IsNegative() || ct.value >= pub.n_s1()) {
    return Status::OutOfRange("ciphertext out of range");
  }
  // c^lambda = (1+n)^{lambda m} mod n^{s+1}; extract lambda*m, divide out.
  BigInt cl = pub.mont().Exp(ct.value, priv.lambda());
  BigInt lm = LogOnePlusN(cl, pub.n(), pub.s());
  return MulMod(lm, priv.lambda_inv(), pub.n_s());
}

DjCiphertext DamgardJurik::Add(const DjPublicKey& pub, const DjCiphertext& a,
                               const DjCiphertext& b) {
  return DjCiphertext{MulMod(a.value, b.value, pub.n_s1())};
}

DjCiphertext DamgardJurik::ScalarMultiply(const DjPublicKey& pub,
                                          const DjCiphertext& a,
                                          const BigInt& k) {
  return DjCiphertext{pub.mont().Exp(a.value, Mod(k, pub.n_s()))};
}

DjCiphertext DamgardJurik::WeightedFold(const DjPublicKey& pub,
                                        std::span<const DjCiphertext> cts,
                                        std::span<const BigInt> weights) {
  std::vector<BigInt> bases;
  std::vector<BigInt> exponents;
  bases.reserve(cts.size());
  exponents.reserve(cts.size());
  for (size_t i = 0; i < cts.size(); ++i) {
    bases.push_back(cts[i].value);
    exponents.push_back(Mod(weights[i], pub.n_s()));
  }
  return DjCiphertext{pub.mont().MultiExp(bases, exponents)};
}

Result<BigInt> DamgardJurik::Pack(const DjPublicKey& pub,
                                  const std::vector<uint64_t>& values,
                                  size_t slot_bits) {
  if (slot_bits == 0 || slot_bits > 64) {
    return Status::InvalidArgument("slot_bits must be in [1, 64]");
  }
  if (values.size() * slot_bits >= pub.n_s().BitLength()) {
    return Status::OutOfRange("packed plaintext does not fit in n^s");
  }
  BigInt packed(0);
  for (size_t i = values.size(); i-- > 0;) {
    if (slot_bits < 64 && values[i] >> slot_bits) {
      return Status::OutOfRange("slot value exceeds slot width");
    }
    packed = (packed << slot_bits) + BigInt(values[i]);
  }
  return packed;
}

std::vector<uint64_t> DamgardJurik::Unpack(const BigInt& packed, size_t count,
                                           size_t slot_bits) {
  std::vector<uint64_t> out;
  out.reserve(count);
  BigInt rest = packed;
  const BigInt slot_modulus = BigInt(1) << slot_bits;
  for (size_t i = 0; i < count; ++i) {
    out.push_back((rest % slot_modulus).LowUint64());
    rest >>= slot_bits;
  }
  return out;
}

}  // namespace ppstats
