#include "crypto/zero_share.h"

#include <cstddef>

#include "bigint/modarith.h"
#include "crypto/sha256.h"

namespace ppstats {
namespace {

void AppendU32(Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void AppendU64(Bytes& out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v >> 32));
  AppendU32(out, static_cast<uint32_t>(v));
}

// v_ab for the pair a < b: a counter-mode SHA-256 expansion of
// (seed, a, b, nonce) reduced mod M. The expansion draws 64 bits more
// than M's width so the reduction bias is negligible (2^-64).
BigInt PairValue(BytesView seed, uint32_t a, uint32_t b, uint64_t nonce,
                 const BigInt& modulus) {
  static constexpr char kTag[] = "ppstats.zero-share.v1";
  const size_t want_bits = modulus.BitLength() + 64;
  const size_t blocks = (want_bits + 255) / 256;
  Bytes stream;
  stream.reserve(blocks * Sha256::kDigestSize);
  for (size_t block = 0; block < blocks; ++block) {
    Sha256 hasher;
    hasher.Update(BytesView(reinterpret_cast<const uint8_t*>(kTag),
                            sizeof(kTag) - 1));
    hasher.Update(seed);
    Bytes fields;
    AppendU32(fields, a);
    AppendU32(fields, b);
    AppendU64(fields, nonce);
    AppendU32(fields, static_cast<uint32_t>(block));
    hasher.Update(fields);
    Sha256::Digest digest = hasher.Finish();
    stream.insert(stream.end(), digest.begin(), digest.end());
  }
  return Mod(BigInt::FromBytes(stream), modulus);
}

}  // namespace

Result<BigInt> DeriveZeroShare(BytesView seed, uint32_t index, uint32_t count,
                               uint64_t nonce, const BigInt& modulus) {
  if (count == 0 || index >= count) {
    return Status::InvalidArgument("zero-share index out of range");
  }
  if (seed.empty()) {
    return Status::InvalidArgument("zero-share seed is empty");
  }
  if (modulus < BigInt(2)) {
    return Status::InvalidArgument("zero-share modulus must be >= 2");
  }
  BigInt share(0);
  for (uint32_t j = index + 1; j < count; ++j) {
    share = AddMod(share, PairValue(seed, index, j, nonce, modulus), modulus);
  }
  for (uint32_t a = 0; a < index; ++a) {
    share = SubMod(share, PairValue(seed, a, index, nonce, modulus), modulus);
  }
  return share;
}

}  // namespace ppstats
