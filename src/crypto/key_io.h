// Key serialization: a versioned wire/storage format for Paillier keys,
// so deployments can distribute public keys to servers and persist
// client key pairs (the paper's setting assumes the server knows the
// client's public key out of band — this is that band).

#ifndef PPSTATS_CRYPTO_KEY_IO_H_
#define PPSTATS_CRYPTO_KEY_IO_H_

#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "crypto/paillier.h"

namespace ppstats {

/// Encodes a public key (version, modulus bits, n).
Bytes SerializePublicKey(const PaillierPublicKey& key);

/// Decodes a public key; validates version, field consistency, and that
/// n has the claimed bit length.
[[nodiscard]] Result<PaillierPublicKey> DeserializePublicKey(BytesView bytes);

/// Encodes a private key (version, modulus bits, p, q). Handle with the
/// care the name implies.
Bytes SerializePrivateKey(const PaillierPrivateKey& key);

/// Decodes and revalidates a private key (rebuilds all derived values;
/// fails if p, q are not a valid Paillier factorization).
[[nodiscard]] Result<PaillierPrivateKey> DeserializePrivateKey(BytesView bytes);

/// Thread-safe memoization of DeserializePublicKey, keyed by the key
/// blob. Deserializing a public key builds its Montgomery context for
/// n^2 — the expensive part of accepting a session. A server that sees
/// the same client key across sessions (ServiceHost) reuses the cached
/// key, whose copies share that context.
class PublicKeyCache {
 public:
  /// Returns the cached key for `blob`, deserializing (and caching) it
  /// on first sight. Invalid blobs are not cached.
  [[nodiscard]] Result<PaillierPublicKey> Deserialize(BytesView blob);

  size_t size() const;

  /// Drops every cached key (ServiceHost::Start resets per-run state).
  void Clear();

 private:
  mutable Mutex mu_;
  std::map<Bytes, PaillierPublicKey> cache_ PPSTATS_GUARDED_BY(mu_);
};

}  // namespace ppstats

#endif  // PPSTATS_CRYPTO_KEY_IO_H_
