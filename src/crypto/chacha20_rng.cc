#include "crypto/chacha20_rng.h"

#include <bit>
#include <cstring>

namespace ppstats {

namespace {

inline uint32_t Rotl(uint32_t v, int c) { return std::rotl(v, c); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = Rotl(d, 16);
  c += d; b ^= c; b = Rotl(b, 12);
  a += b; d ^= a; d = Rotl(d, 8);
  c += d; b ^= c; b = Rotl(b, 7);
}

inline uint32_t Load32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20Rng::ChaCha20Rng(const std::array<uint8_t, 32>& key,
                         const std::array<uint8_t, 12>& nonce) {
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = Load32Le(&key[4 * i]);
  state_[12] = 0;  // block counter
  for (int i = 0; i < 3; ++i) state_[13 + i] = Load32Le(&nonce[4 * i]);
}

ChaCha20Rng::ChaCha20Rng(uint64_t seed) : ChaCha20Rng(
    [seed] {
      std::array<uint8_t, 32> key{};
      // Spread the seed through the key with a splitmix64-style expander.
      uint64_t x = seed;
      for (int i = 0; i < 4; ++i) {
        x += 0x9e3779b97f4a7c15ULL;
        uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        for (int b = 0; b < 8; ++b) key[8 * i + b] = static_cast<uint8_t>(z >> (8 * b));
      }
      return key;
    }(),
    std::array<uint8_t, 12>{}) {}

void ChaCha20Rng::RefillBlock() {
  std::array<uint32_t, 16> x = state_;
  x[12] = static_cast<uint32_t>(counter_);
  x[13] = state_[13] ^ static_cast<uint32_t>(counter_ >> 32);
  std::array<uint32_t, 16> w = x;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(w[0], w[4], w[8], w[12]);
    QuarterRound(w[1], w[5], w[9], w[13]);
    QuarterRound(w[2], w[6], w[10], w[14]);
    QuarterRound(w[3], w[7], w[11], w[15]);
    QuarterRound(w[0], w[5], w[10], w[15]);
    QuarterRound(w[1], w[6], w[11], w[12]);
    QuarterRound(w[2], w[7], w[8], w[13]);
    QuarterRound(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = w[i] + x[i];
    block_[4 * i + 0] = static_cast<uint8_t>(v);
    block_[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
  ++counter_;
  offset_ = 0;
}

void ChaCha20Rng::Fill(std::span<uint8_t> out) {
  size_t pos = 0;
  while (pos < out.size()) {
    if (offset_ == 64) RefillBlock();
    size_t take = std::min<size_t>(64 - offset_, out.size() - pos);
    std::memcpy(out.data() + pos, block_.data() + offset_, take);
    offset_ += take;
    pos += take;
  }
}

}  // namespace ppstats
