// Pairwise-PRF additive shares of zero, the blinding primitive behind
// the paper's Sec 3.5 multi-party protocol (see core/distributed.h for
// the in-process variant, which draws shares from one RNG).
//
// d parties agree on a master seed out of band. For every unordered
// pair {a, b} with a < b and a per-query nonce, both endpoints derive
// the same pseudorandom value v_ab = PRF(seed, a, b, nonce) mod M;
// party a adds it to its share and party b subtracts it. Party i's
// share
//
//   R_i = sum_{i < j} v_ij - sum_{a < i} v_ai  (mod M)
//
// then satisfies sum_i R_i = 0 (mod M) exactly: each v_ab appears once
// with each sign. A coordinator seeing blinded partials p_i + R_i mod M
// learns nothing about any individual p_i beyond the final aggregate,
// which is recovered by summing all d shares and reducing mod M.
//
// The nonce MUST be unique per query under one seed: reusing a nonce
// reuses the shares, letting an observer cancel blinding across
// queries by subtracting two blinded partials from the same shard.

#ifndef PPSTATS_CRYPTO_ZERO_SHARE_H_
#define PPSTATS_CRYPTO_ZERO_SHARE_H_

#include <cstdint>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/status.h"

namespace ppstats {

/// Derives party `index`'s additive share of zero among `count` parties
/// for the given seed/nonce, reduced into [0, modulus). The shares of
/// all `count` indices sum to 0 mod modulus. Fails when count == 0,
/// index >= count, the seed is empty, or modulus < 2.
[[nodiscard]] Result<BigInt> DeriveZeroShare(BytesView seed, uint32_t index,
                                             uint32_t count, uint64_t nonce,
                                             const BigInt& modulus);

}  // namespace ppstats

#endif  // PPSTATS_CRYPTO_ZERO_SHARE_H_
