#include "crypto/pool.h"

#include "obs/metrics.h"

namespace ppstats {

namespace {

// Pool traffic is aggregated process-wide: a miss means an online
// encryption had to pay the full exponentiation the pool exists to
// amortize, so hit/miss/refill rates tell whether the preprocessing
// phase was sized correctly.
struct PoolCounters {
  obs::Counter* hits = obs::MetricRegistry::Global().GetCounter("pool.hits");
  obs::Counter* misses =
      obs::MetricRegistry::Global().GetCounter("pool.misses");
  obs::Counter* refilled =
      obs::MetricRegistry::Global().GetCounter("pool.refilled");
};

PoolCounters& Counters() {
  static PoolCounters* counters = new PoolCounters();  // leaked on purpose
  return *counters;
}

}  // namespace

void RandomnessPool::Generate(size_t count, RandomSource& rng) {
  for (size_t i = 0; i < count; ++i) {
    factors_.push_back(Paillier::GenerateRandomFactor(pub_, rng));
  }
  Counters().refilled->Add(count);
}

Result<BigInt> RandomnessPool::Take() {
  if (factors_.empty()) {
    return Status::ResourceExhausted("randomness pool is empty");
  }
  BigInt out = std::move(factors_.front());
  factors_.pop_front();
  Counters().hits->Increment();
  return out;
}

Result<PaillierCiphertext> RandomnessPool::Encrypt(const BigInt& m,
                                                   RandomSource& rng) {
  if (factors_.empty()) {
    ++misses_;
    Counters().misses->Increment();
    return Paillier::Encrypt(pub_, m, rng);
  }
  BigInt factor = std::move(factors_.front());
  factors_.pop_front();
  Counters().hits->Increment();
  return Paillier::EncryptWithFactor(pub_, m, factor);
}

Status EncryptionPool::Generate(const BigInt& plaintext, size_t count,
                                RandomSource& rng) {
  auto& bucket = store_[plaintext];
  for (size_t i = 0; i < count; ++i) {
    PPSTATS_ASSIGN_OR_RETURN(PaillierCiphertext ct,
                             Paillier::Encrypt(pub_, plaintext, rng));
    bucket.push_back(std::move(ct));
  }
  Counters().refilled->Add(count);
  return Status::OK();
}

Result<PaillierCiphertext> EncryptionPool::Take(const BigInt& plaintext,
                                                RandomSource& rng) {
  auto it = store_.find(plaintext);
  if (it == store_.end() || it->second.empty()) {
    ++misses_;
    Counters().misses->Increment();
    return Paillier::Encrypt(pub_, plaintext, rng);
  }
  PaillierCiphertext out = std::move(it->second.front());
  it->second.pop_front();
  Counters().hits->Increment();
  return out;
}

size_t EncryptionPool::available(const BigInt& plaintext) const {
  auto it = store_.find(plaintext);
  return it == store_.end() ? 0 : it->second.size();
}

}  // namespace ppstats
