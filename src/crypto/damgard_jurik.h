// Damgård–Jurik generalization of the Paillier cryptosystem
// (Damgård & Jurik, PKC 2001).
//
// With parameter s >= 1 the plaintext space grows to Z_{n^s} while the
// ciphertext lives in Z_{n^{s+1}}:
//
//   E_s(m; r) = (1 + n)^m * r^{n^s}   mod n^{s+1}
//
// s = 1 is exactly Paillier. Larger s amortizes ciphertext expansion:
// a Paillier ciphertext carries |n| plaintext bits in 2|n| ciphertext
// bits (2x expansion), while s = 7 carries 7|n| bits in 8|n| bits
// (1.14x). For the selected-sum protocol this is the natural extension
// the paper's future work points toward: many 32-bit aggregates can be
// packed into one response ciphertext.
//
// The same additive homomorphism holds:
//   E(a) * E(b) = E(a + b mod n^s),   E(a)^c = E(a c mod n^s).

#ifndef PPSTATS_CRYPTO_DAMGARD_JURIK_H_
#define PPSTATS_CRYPTO_DAMGARD_JURIK_H_

#include <memory>
#include <span>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "common/random.h"
#include "common/result.h"
#include "crypto/paillier.h"

namespace ppstats {

/// A Damgård–Jurik ciphertext (residue modulo n^{s+1}).
struct DjCiphertext {
  BigInt value;

  friend bool operator==(const DjCiphertext& a, const DjCiphertext& b) =
      default;
};

/// Public key: the modulus n and the expansion parameter s.
class DjPublicKey {
 public:
  DjPublicKey() = default;
  DjPublicKey(BigInt n, size_t s);

  const BigInt& n() const { return n_; }
  size_t s() const { return s_; }
  /// n^s — the plaintext modulus.
  const BigInt& n_s() const { return n_s_; }
  /// n^{s+1} — the ciphertext modulus.
  const BigInt& n_s1() const { return n_s1_; }

  /// Fixed wire width of a ciphertext.
  size_t CiphertextBytes() const { return (n_s1_.BitLength() + 7) / 8; }

  const MontgomeryContext& mont() const { return *mont_; }
  bool valid() const { return mont_ != nullptr; }

 private:
  BigInt n_;
  size_t s_ = 0;
  BigInt n_s_;
  BigInt n_s1_;
  std::shared_ptr<const MontgomeryContext> mont_;
};

/// Private key; embeds the public key.
class DjPrivateKey {
 public:
  DjPrivateKey() = default;

  /// Derives a Damgård–Jurik key with parameter `s` from Paillier primes.
  [[nodiscard]] static Result<DjPrivateKey> FromPrimes(const BigInt& p, const BigInt& q,
                                                       size_t s);

  /// Derives one from an existing Paillier private key (same n).
  [[nodiscard]] static Result<DjPrivateKey> FromPaillier(const PaillierPrivateKey& key,
                                                         size_t s);

  const DjPublicKey& public_key() const { return pub_; }
  const BigInt& lambda() const { return lambda_; }
  const BigInt& lambda_inv() const { return lambda_inv_; }

 private:
  DjPublicKey pub_;
  BigInt lambda_;      // lcm(p-1, q-1)
  BigInt lambda_inv_;  // lambda^{-1} mod n^s
};

/// Key pair.
struct DjKeyPair {
  DjPublicKey public_key;
  DjPrivateKey private_key;
};

/// Stateless Damgård–Jurik operations.
class DamgardJurik {
 public:
  /// Generates a fresh key: modulus of `modulus_bits`, parameter `s`.
  [[nodiscard]] static Result<DjKeyPair> GenerateKeyPair(size_t modulus_bits, size_t s,
                                                         RandomSource& rng);

  /// E(m) for m in [0, n^s).
  [[nodiscard]] static Result<DjCiphertext> Encrypt(const DjPublicKey& pub, const BigInt& m,
                                                    RandomSource& rng);

  /// Decrypts; fails on out-of-range ciphertexts.
  [[nodiscard]] static Result<BigInt> Decrypt(const DjPrivateKey& priv,
                                              const DjCiphertext& ct);

  /// E(a + b mod n^s).
  static DjCiphertext Add(const DjPublicKey& pub, const DjCiphertext& a,
                          const DjCiphertext& b);

  /// E(a * k mod n^s).
  static DjCiphertext ScalarMultiply(const DjPublicKey& pub,
                                     const DjCiphertext& a, const BigInt& k);

  /// Batched homomorphic fold: E(sum_i a_i * w_i mod n^s) =
  /// prod_i cts[i]^{weights[i]} mod n^{s+1}, via the Pippenger/Straus
  /// multi-exponentiation kernel. Bit-identical to folding
  /// ScalarMultiply results with Add. Spans must have equal length;
  /// zero weights are skipped.
  static DjCiphertext WeightedFold(const DjPublicKey& pub,
                                   std::span<const DjCiphertext> cts,
                                   std::span<const BigInt> weights);

  /// Packs `values` (each < 2^slot_bits) into one plaintext, little-end
  /// first: sum_i values[i] * 2^(i * slot_bits). Fails if the packed
  /// plaintext would not fit in n^s.
  [[nodiscard]] static Result<BigInt> Pack(const DjPublicKey& pub,
                                           const std::vector<uint64_t>& values,
                                           size_t slot_bits);

  /// Splits a packed plaintext back into `count` slots.
  static std::vector<uint64_t> Unpack(const BigInt& packed, size_t count,
                                      size_t slot_bits);
};

}  // namespace ppstats

#endif  // PPSTATS_CRYPTO_DAMGARD_JURIK_H_
