#include "crypto/key_io.h"

#include "bigint/prime.h"
#include "crypto/chacha20_rng.h"
#include "net/wire.h"

namespace ppstats {

namespace {
constexpr uint8_t kPublicKeyTag = 0xA1;
constexpr uint8_t kPrivateKeyTag = 0xA2;
constexpr uint8_t kFormatVersion = 1;
}  // namespace

Bytes SerializePublicKey(const PaillierPublicKey& key) {
  WireWriter w;
  w.WriteU8(kPublicKeyTag);
  w.WriteU8(kFormatVersion);
  w.WriteU32(static_cast<uint32_t>(key.modulus_bits()));
  w.WriteBigInt(key.n());
  return w.Take();
}

Result<PaillierPublicKey> DeserializePublicKey(BytesView bytes) {
  WireReader r(bytes);
  PPSTATS_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
  if (tag != kPublicKeyTag) {
    return Status::SerializationError("not a public key blob");
  }
  PPSTATS_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kFormatVersion) {
    return Status::SerializationError("unsupported key format version");
  }
  PPSTATS_ASSIGN_OR_RETURN(uint32_t bits, r.ReadU32());
  PPSTATS_ASSIGN_OR_RETURN(BigInt n, r.ReadBigInt());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  if (n.BitLength() != bits) {
    return Status::SerializationError("modulus bit length mismatch");
  }
  if (n.IsEven() || n < BigInt(15)) {
    return Status::SerializationError("implausible Paillier modulus");
  }
  return PaillierPublicKey(std::move(n), bits);
}

Bytes SerializePrivateKey(const PaillierPrivateKey& key) {
  WireWriter w;
  w.WriteU8(kPrivateKeyTag);
  w.WriteU8(kFormatVersion);
  w.WriteU32(static_cast<uint32_t>(key.public_key().modulus_bits()));
  w.WriteBigInt(key.p());
  w.WriteBigInt(key.q());
  return w.Take();
}

Result<PaillierPrivateKey> DeserializePrivateKey(BytesView bytes) {
  WireReader r(bytes);
  PPSTATS_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
  if (tag != kPrivateKeyTag) {
    return Status::SerializationError("not a private key blob");
  }
  PPSTATS_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kFormatVersion) {
    return Status::SerializationError("unsupported key format version");
  }
  PPSTATS_ASSIGN_OR_RETURN(uint32_t bits, r.ReadU32());
  PPSTATS_ASSIGN_OR_RETURN(BigInt p, r.ReadBigInt());
  PPSTATS_ASSIGN_OR_RETURN(BigInt q, r.ReadBigInt());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  // Revalidate primality: a corrupted or forged blob must not yield a
  // silently-broken key.
  ChaCha20Rng mr_rng(0x6b65795f696f /* "key_io" */);
  if (!IsProbablePrime(p, mr_rng, 16) || !IsProbablePrime(q, mr_rng, 16)) {
    return Status::SerializationError("stored factors are not prime");
  }
  PPSTATS_ASSIGN_OR_RETURN(PaillierPrivateKey key,
                           PaillierPrivateKey::FromPrimes(p, q, bits));
  if (key.public_key().n().BitLength() != bits) {
    return Status::SerializationError("modulus bit length mismatch");
  }
  return key;
}

Result<PaillierPublicKey> PublicKeyCache::Deserialize(BytesView blob) {
  Bytes key_bytes(blob.begin(), blob.end());
  {
    MutexLock lock(mu_);
    auto it = cache_.find(key_bytes);
    if (it != cache_.end()) return it->second;
  }
  // Deserialize outside the lock: Montgomery-context construction is the
  // expensive part, and concurrent sessions must not serialize on it.
  PPSTATS_ASSIGN_OR_RETURN(PaillierPublicKey key,
                           DeserializePublicKey(blob));
  MutexLock lock(mu_);
  auto [it, inserted] = cache_.emplace(std::move(key_bytes), std::move(key));
  (void)inserted;  // a racing first-sight insert wins; both are identical
  return it->second;
}

size_t PublicKeyCache::size() const {
  MutexLock lock(mu_);
  return cache_.size();
}

void PublicKeyCache::Clear() {
  MutexLock lock(mu_);
  cache_.clear();
}

}  // namespace ppstats
