#include "crypto/paillier.h"

#include "bigint/modarith.h"
#include "bigint/prime.h"

namespace ppstats {

namespace {

// L(x) = (x - 1) / d, defined for x = 1 (mod d).
BigInt LFunction(const BigInt& x, const BigInt& d) {
  return (x - BigInt(1)) / d;
}

}  // namespace

PaillierPublicKey::PaillierPublicKey(BigInt n, size_t modulus_bits)
    : n_(std::move(n)),
      n_squared_(n_ * n_),
      modulus_bits_(modulus_bits),
      mont_n2_(std::make_shared<MontgomeryContext>(n_squared_)) {}

Result<PaillierPrivateKey> PaillierPrivateKey::FromPrimes(
    const BigInt& p, const BigInt& q, size_t modulus_bits) {
  if (p == q) return Status::InvalidArgument("p and q must be distinct");
  if (p.IsEven() || q.IsEven()) {
    return Status::InvalidArgument("p and q must be odd primes");
  }
  BigInt n = p * q;
  BigInt p1 = p - BigInt(1);
  BigInt q1 = q - BigInt(1);
  if (!Gcd(n, p1 * q1).IsOne()) {
    return Status::CryptoError("gcd(n, phi(n)) != 1; regenerate primes");
  }

  PaillierPrivateKey key;
  key.pub_ = PaillierPublicKey(n, modulus_bits);
  key.p_ = p;
  key.q_ = q;
  key.p_squared_ = p * p;
  key.q_squared_ = q * q;
  key.lambda_ = Lcm(p1, q1);
  PPSTATS_ASSIGN_OR_RETURN(key.mu_, ModInverse(key.lambda_, n));
  key.mont_p2_ = std::make_shared<MontgomeryContext>(key.p_squared_);
  key.mont_q2_ = std::make_shared<MontgomeryContext>(key.q_squared_);

  // CRT constants: hp = L_p(g^(p-1) mod p^2)^{-1} mod p, with g = n + 1.
  BigInt g = n + BigInt(1);
  BigInt gp = key.mont_p2_->Exp(Mod(g, key.p_squared_), p1);
  BigInt gq = key.mont_q2_->Exp(Mod(g, key.q_squared_), q1);
  PPSTATS_ASSIGN_OR_RETURN(key.hp_, ModInverse(LFunction(gp, p), p));
  PPSTATS_ASSIGN_OR_RETURN(key.hq_, ModInverse(LFunction(gq, q), q));
  return key;
}

Result<PaillierKeyPair> Paillier::GenerateKeyPair(size_t modulus_bits,
                                                  RandomSource& rng) {
  if (modulus_bits < 16 || modulus_bits % 2 != 0) {
    return Status::InvalidArgument(
        "modulus_bits must be even and at least 16");
  }
  for (;;) {
    auto [p, q] = GeneratePrimePair(modulus_bits / 2, rng);
    auto priv = PaillierPrivateKey::FromPrimes(p, q, modulus_bits);
    if (!priv.ok()) continue;  // gcd(n, phi) != 1 is possible; retry
    PaillierKeyPair pair;
    pair.private_key = std::move(priv).ValueOrDie();
    pair.public_key = pair.private_key.public_key();
    return pair;
  }
}

BigInt Paillier::GenerateRandomFactor(const PaillierPublicKey& pub,
                                      RandomSource& rng) {
  BigInt r = RandomUnit(rng, pub.n());
  return pub.mont_n2().Exp(r, pub.n());
}

Result<PaillierCiphertext> Paillier::EncryptWithFactor(
    const PaillierPublicKey& pub, const BigInt& m, const BigInt& r_to_n) {
  if (m.IsNegative() || m >= pub.n()) {
    return Status::OutOfRange("plaintext must be in [0, n)");
  }
  // (1 + m n) mod n^2  — no exponentiation needed since g = n + 1.
  BigInt gm = Mod(BigInt(1) + m * pub.n(), pub.n_squared());
  return PaillierCiphertext{MulMod(gm, r_to_n, pub.n_squared())};
}

Result<PaillierCiphertext> Paillier::Encrypt(const PaillierPublicKey& pub,
                                             const BigInt& m,
                                             RandomSource& rng) {
  return EncryptWithFactor(pub, m, GenerateRandomFactor(pub, rng));
}

Result<BigInt> Paillier::DecryptDirect(const PaillierPrivateKey& priv,
                                       const PaillierCiphertext& ct) {
  const PaillierPublicKey& pub = priv.public_key();
  if (ct.value.IsNegative() || ct.value >= pub.n_squared()) {
    return Status::OutOfRange("ciphertext out of range");
  }
  BigInt u = pub.mont_n2().Exp(ct.value, priv.lambda());
  return MulMod(LFunction(u, pub.n()), priv.mu(), pub.n());
}

Result<BigInt> Paillier::Decrypt(const PaillierPrivateKey& priv,
                                 const PaillierCiphertext& ct) {
  const PaillierPublicKey& pub = priv.public_key();
  if (ct.value.IsNegative() || ct.value >= pub.n_squared()) {
    return Status::OutOfRange("ciphertext out of range");
  }
  // CRT decryption over p^2 and q^2.
  BigInt p1 = priv.p() - BigInt(1);
  BigInt q1 = priv.q() - BigInt(1);
  BigInt cp = priv.mont_p2().Exp(Mod(ct.value, priv.p_squared()), p1);
  BigInt cq = priv.mont_q2().Exp(Mod(ct.value, priv.q_squared()), q1);
  BigInt mp = MulMod(LFunction(cp, priv.p()), priv.hp(), priv.p());
  BigInt mq = MulMod(LFunction(cq, priv.q()), priv.hq(), priv.q());
  return CrtCombine(mp, priv.p(), mq, priv.q());
}

PaillierCiphertext Paillier::Add(const PaillierPublicKey& pub,
                                 const PaillierCiphertext& a,
                                 const PaillierCiphertext& b) {
  return PaillierCiphertext{MulMod(a.value, b.value, pub.n_squared())};
}

Result<PaillierCiphertext> Paillier::AddPlaintext(
    const PaillierPublicKey& pub, const PaillierCiphertext& a,
    const BigInt& k) {
  BigInt km = Mod(k, pub.n());
  BigInt gk = Mod(BigInt(1) + km * pub.n(), pub.n_squared());
  return PaillierCiphertext{MulMod(a.value, gk, pub.n_squared())};
}

PaillierCiphertext Paillier::ScalarMultiply(const PaillierPublicKey& pub,
                                            const PaillierCiphertext& a,
                                            const BigInt& k) {
  return PaillierCiphertext{pub.mont_n2().Exp(a.value, Mod(k, pub.n()))};
}

PaillierCiphertext Paillier::WeightedFold(
    const PaillierPublicKey& pub, std::span<const PaillierCiphertext> cts,
    std::span<const BigInt> weights) {
  std::vector<BigInt> bases;
  std::vector<BigInt> exponents;
  bases.reserve(cts.size());
  exponents.reserve(cts.size());
  for (size_t i = 0; i < cts.size(); ++i) {
    bases.push_back(cts[i].value);
    exponents.push_back(Mod(weights[i], pub.n()));
  }
  return PaillierCiphertext{pub.mont_n2().MultiExp(bases, exponents)};
}

PaillierCiphertext Paillier::Rerandomize(const PaillierPublicKey& pub,
                                         const PaillierCiphertext& a,
                                         RandomSource& rng) {
  BigInt factor = GenerateRandomFactor(pub, rng);
  return PaillierCiphertext{MulMod(a.value, factor, pub.n_squared())};
}

Bytes Paillier::SerializeCiphertext(const PaillierPublicKey& pub,
                                    const PaillierCiphertext& ct) {
  return ct.value.ToBytes(pub.CiphertextBytes());
}

Result<PaillierCiphertext> Paillier::DeserializeCiphertext(
    const PaillierPublicKey& pub, BytesView bytes) {
  if (bytes.size() != pub.CiphertextBytes()) {
    return Status::SerializationError("ciphertext has wrong wire width");
  }
  BigInt v = BigInt::FromBytes(bytes);
  if (v >= pub.n_squared()) {
    return Status::SerializationError("ciphertext >= n^2");
  }
  return PaillierCiphertext{std::move(v)};
}

}  // namespace ppstats
