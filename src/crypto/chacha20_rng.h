// Deterministic CSPRNG based on the ChaCha20 stream cipher (RFC 8439
// block function) running in counter mode.
//
// Determinism matters for this reproduction: every experiment seeds its
// generators so that runs are bit-for-bit repeatable. The generator is a
// cryptographic PRG, so Paillier randomness drawn from it is
// computationally indistinguishable from true randomness — the property
// the protocol's privacy argument needs.

#ifndef PPSTATS_CRYPTO_CHACHA20_RNG_H_
#define PPSTATS_CRYPTO_CHACHA20_RNG_H_

#include <array>
#include <cstdint>

#include "common/random.h"

namespace ppstats {

/// Seedable ChaCha20-based random source.
class ChaCha20Rng : public RandomSource {
 public:
  /// Constructs from a 256-bit key and 96-bit nonce.
  ChaCha20Rng(const std::array<uint8_t, 32>& key,
              const std::array<uint8_t, 12>& nonce);

  /// Convenience: expands a 64-bit seed into a key (nonce fixed). Two
  /// generators with different seeds produce independent-looking streams.
  explicit ChaCha20Rng(uint64_t seed);

  void Fill(std::span<uint8_t> out) override;

  /// Number of 64-byte blocks generated so far (for tests).
  uint64_t blocks_generated() const { return counter_; }

 private:
  void RefillBlock();

  std::array<uint32_t, 16> state_;   // initial block state (counter at [12])
  std::array<uint8_t, 64> block_;    // current keystream block
  size_t offset_ = 64;               // consumed bytes within block_
  uint64_t counter_ = 0;             // blocks generated
};

}  // namespace ppstats

#endif  // PPSTATS_CRYPTO_CHACHA20_RNG_H_
