#include "obs/span.h"

namespace ppstats {
namespace obs {

namespace {

thread_local SpanContext g_context;

/// Shared tail of ObsSpan / ScopedPhaseTimer: histogram + trace.
void RecordSpan(const char* name, MetricRegistry* registry,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end) {
  auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count();
  if (ns < 0) ns = 0;
  registry->GetHistogram(std::string(kSpanMetricPrefix) + name)
      ->Record(static_cast<uint64_t>(ns));
  TraceLog& trace = TraceLog::Global();
  if (trace.enabled()) {
    TraceEvent event;
    event.name = name;
    event.session_id = g_context.session_id;
    event.query_id = g_context.query_id;
    event.duration_s = static_cast<double>(ns) * 1e-9;
    event.start_s = trace.Now() - event.duration_s;
    trace.Record(std::move(event));
  }
}

}  // namespace

const SpanContext& CurrentContext() { return g_context; }

void RecordSpanSeconds(const char* name, double seconds,
                       MetricRegistry* registry) {
  if (!Enabled()) return;
  if (seconds < 0) seconds = 0;
  uint64_t ns = static_cast<uint64_t>(seconds * 1e9);
  registry->GetHistogram(std::string(kSpanMetricPrefix) + name)->Record(ns);
  TraceLog& trace = TraceLog::Global();
  if (trace.enabled()) {
    TraceEvent event;
    event.name = name;
    event.session_id = g_context.session_id;
    event.query_id = g_context.query_id;
    event.duration_s = seconds;
    event.start_s = trace.Now();
    trace.Record(std::move(event));
  }
}

ScopedSpanContext::ScopedSpanContext(SpanContext context)
    : previous_(g_context) {
  g_context = context;
}

ScopedSpanContext::~ScopedSpanContext() { g_context = previous_; }

TraceLog& TraceLog::Global() {
  static TraceLog* global = new TraceLog();  // leaked on purpose
  return *global;
}

void TraceLog::Enable() {
  MutexLock lock(mu_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceLog::Disable() { enabled_.store(false, std::memory_order_relaxed); }

double TraceLog::Now() const {
  std::chrono::steady_clock::time_point epoch;
  {
    MutexLock lock(mu_);
    epoch = epoch_;
  }
  if (epoch == std::chrono::steady_clock::time_point{}) return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

void TraceLog::Record(TraceEvent event) {
  MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceLog::Drain() {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

ObsSpan::ObsSpan(const char* name, MetricRegistry* registry)
    : name_(name), registry_(registry), active_(Enabled()) {
  if (active_) start_ = std::chrono::steady_clock::now();
}

ObsSpan::~ObsSpan() { Stop(); }

double ObsSpan::Stop() {
  if (!active_) return 0;
  active_ = false;
  auto end = std::chrono::steady_clock::now();
  RecordSpan(name_, registry_, start_, end);
  return std::chrono::duration<double>(end - start_).count();
}

ScopedPhaseTimer::ScopedPhaseTimer(double* seconds, const char* span_name,
                                   MetricRegistry* registry)
    : seconds_(seconds),
      span_name_(span_name),
      registry_(registry),
      active_(true),
      start_(std::chrono::steady_clock::now()) {}

ScopedPhaseTimer::~ScopedPhaseTimer() { Stop(); }

double ScopedPhaseTimer::Stop() {
  if (!active_) return 0;
  active_ = false;
  auto end = std::chrono::steady_clock::now();
  double elapsed = std::chrono::duration<double>(end - start_).count();
  if (seconds_ != nullptr) *seconds_ += elapsed;
  if (span_name_ != nullptr && Enabled()) {
    RecordSpan(span_name_, registry_, start_, end);
  }
  return elapsed;
}

}  // namespace obs
}  // namespace ppstats
