// obs/export: serialization of metric snapshots and trace buffers.
//
// Two consumers, two formats:
//  * StatsToJson — one self-contained JSON document (validates with
//    `python3 -m json.tool`), written atomically so a reader never sees
//    a half-rewritten file. Used by `ppstats_server --stats-json`.
//  * TraceToJsonl — one JSON object per line, append-friendly. Used by
//    `ppstats_client --trace-json`.
//  * StatsToText — the human-readable dump for terminals and logs.

#ifndef PPSTATS_OBS_EXPORT_H_
#define PPSTATS_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace ppstats {
namespace obs {

/// Renders a snapshot as one JSON document:
///   {
///     "uptime_s": 1.5,            // only when uptime_s >= 0
///     "counters": {"net.frames_sent": 12, ...},
///     "gauges": {"threadpool.queue_depth": 0, ...},
///     "histograms": {
///       "span.fold": {"count": 3, "sum": 123, "mean": 41.0,
///                      "p50": 63, "p90": 63, "p99": 63,
///                      "buckets": [[63, 3]]}   // [upper_bound, count]
///     },
///     "spans_seconds": {"fold": 0.000000123, ...}  // sum / 1e9
///   }
/// Histogram samples are nanoseconds for span.* entries; spans_seconds
/// restates their totals in seconds so per-component totals can be
/// reconciled against the fig2 text breakdown directly.
std::string StatsToJson(const MetricsSnapshot& snapshot,
                        double uptime_s = -1.0);

/// Renders a snapshot as aligned human-readable text.
std::string StatsToText(const MetricsSnapshot& snapshot);

/// Renders trace events as JSONL, one event per line:
///   {"name":"fold","session":1,"query":2,"start_s":0.0012,"dur_s":0.0003}
std::string TraceToJsonl(const std::vector<TraceEvent>& events);

/// Writes `contents` to `path` via a temporary file + rename, so a
/// concurrent reader sees either the old document or the new one,
/// never a prefix. Returns false on any I/O failure.
bool WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace obs
}  // namespace ppstats

#endif  // PPSTATS_OBS_EXPORT_H_
