#include "obs/export.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace ppstats {
namespace obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendEscaped(out, s);
  out->push_back('"');
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", value);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t value) {
  out->append(std::to_string(value));
}

}  // namespace

std::string StatsToJson(const MetricsSnapshot& snapshot, double uptime_s) {
  std::string out = "{\n";
  if (uptime_s >= 0) {
    out += "  \"uptime_s\": ";
    AppendDouble(&out, uptime_s);
    out += ",\n";
  }

  out += "  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += (i == 0) ? "\n    " : ",\n    ";
    AppendQuoted(&out, snapshot.counters[i].first);
    out += ": ";
    AppendU64(&out, snapshot.counters[i].second);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += (i == 0) ? "\n    " : ",\n    ";
    AppendQuoted(&out, snapshot.gauges[i].first);
    out += ": ";
    out += std::to_string(snapshot.gauges[i].second);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    out += (i == 0) ? "\n    " : ",\n    ";
    AppendQuoted(&out, name);
    out += ": {\"count\": ";
    AppendU64(&out, h.count);
    out += ", \"sum\": ";
    AppendU64(&out, h.sum);
    out += ", \"mean\": ";
    AppendDouble(&out, h.Mean());
    out += ", \"p50\": ";
    AppendU64(&out, h.ApproxPercentile(50));
    out += ", \"p90\": ";
    AppendU64(&out, h.ApproxPercentile(90));
    out += ", \"p99\": ";
    AppendU64(&out, h.ApproxPercentile(99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[";
      AppendU64(&out, BucketUpperBound(b));
      out += ", ";
      AppendU64(&out, h.buckets[b]);
      out += "]";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "},\n" : "\n  },\n";

  // Restate span totals in seconds, keyed by bare span name, so the
  // four per-component totals line up with the fig text tables.
  out += "  \"spans_seconds\": {";
  bool first_span = true;
  const size_t prefix_len = std::strlen(kSpanMetricPrefix);
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.rfind(kSpanMetricPrefix, 0) != 0) continue;
    out += first_span ? "\n    " : ",\n    ";
    first_span = false;
    AppendQuoted(&out, name.substr(prefix_len));
    out += ": ";
    AppendDouble(&out, static_cast<double>(h.sum) * 1e-9);
  }
  out += first_span ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

std::string StatsToText(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[256];
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(buf, sizeof(buf), "  %-32s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += buf;
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      std::snprintf(buf, sizeof(buf), "  %-32s %lld\n", name.c_str(),
                    static_cast<long long>(value));
      out += buf;
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : snapshot.histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-32s count=%llu mean=%.1f p50=%llu p99=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    h.Mean(),
                    static_cast<unsigned long long>(h.ApproxPercentile(50)),
                    static_cast<unsigned long long>(h.ApproxPercentile(99)));
      out += buf;
    }
  }
  return out;
}

std::string TraceToJsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += "{\"name\":";
    AppendQuoted(&out, event.name);
    out += ",\"session\":";
    AppendU64(&out, event.session_id);
    out += ",\"query\":";
    AppendU64(&out, event.query_id);
    out += ",\"start_s\":";
    AppendDouble(&out, event.start_s);
    out += ",\"dur_s\":";
    AppendDouble(&out, event.duration_s);
    out += "}\n";
  }
  return out;
}

bool WriteFileAtomic(const std::string& path, const std::string& contents) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace ppstats
