#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace ppstats {
namespace obs {

namespace {

std::atomic<bool> g_enabled{true};

}  // namespace

size_t ShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t b = 0; b < kHistogramBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
}

uint64_t HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based; p=0 maps to the first
  // sample, p=100 to the last.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  rank = std::clamp<uint64_t>(rank, 1, count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kHistogramBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += n;
      out.count += n;
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

void MetricsSnapshot::Append(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const auto& c) { return c.first == name; });
    if (it == counters.end()) {
      counters.emplace_back(name, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [name, value] : other.gauges) {
    auto it = std::find_if(gauges.begin(), gauges.end(),
                           [&](const auto& g) { return g.first == name; });
    if (it == gauges.end()) {
      gauges.emplace_back(name, value);
    } else {
      it->second = value;  // gauges are levels; the newer reading wins
    }
  }
  for (const auto& [name, snapshot] : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const auto& h) { return h.first == name; });
    if (it == histograms.end()) {
      histograms.emplace_back(name, snapshot);
    } else {
      it->second.Merge(snapshot);
    }
  }
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [histogram_name, snapshot] : histograms) {
    if (histogram_name == name) return &snapshot;
  }
  return nullptr;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->Snapshot());
  }
  return out;
}

void MetricRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* global = new MetricRegistry();  // leaked on purpose
  return *global;
}

}  // namespace obs
}  // namespace ppstats
