// obs/metrics: process-wide telemetry primitives — counters, gauges, and
// log-bucketed histograms — collected in a named MetricRegistry.
//
// Hot-path cost is the design constraint: the fold loop and the channel
// send/receive path run these on every call. A Counter::Add is one
// relaxed fetch_add on a cache-line-padded, thread-local shard; a
// Histogram::Record is two. All aggregation (summing shards, merging
// buckets, percentile math) happens on the cold Snapshot() path.
//
// This library sits below everything else in the repo: it depends only
// on the standard library, so common/, crypto/, net/, and core/ can all
// link it without cycles.

#ifndef PPSTATS_OBS_METRICS_H_
#define PPSTATS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ppstats {
namespace obs {

/// Shard counts. Counters are the hottest (per-frame, per-row), so they
/// get more shards than histograms (per-span, per-chunk).
inline constexpr size_t kCounterShards = 16;
inline constexpr size_t kHistogramShards = 8;

/// Log-base-2 buckets: bucket 0 holds the value 0, bucket b in [1,64]
/// holds values in [2^(b-1), 2^b - 1]. 65 buckets cover all of uint64.
inline constexpr size_t kHistogramBuckets = 65;

/// Stable per-thread shard index (assigned once per thread, round-robin
/// across the process). Callers take it modulo their shard count.
size_t ShardSlot();

/// Bucket index for a recorded value.
inline constexpr size_t BucketOf(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

/// Largest value a bucket can hold (its reported representative).
inline constexpr uint64_t BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return UINT64_MAX;
  return (uint64_t{1} << bucket) - 1;
}

/// Monotonically increasing event count. Writers touch only their own
/// cache line; readers sum all shards.
class Counter {
 public:
  void Add(uint64_t delta) {
    cells_[ShardSlot() % kCounterShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kCounterShards> cells_;
};

/// Point-in-time level (queue depth, live sessions). A single atomic is
/// enough: gauges are updated at queue/dequeue granularity, not per-row.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Merged, immutable view of a histogram (and the unit of cross-shard /
/// cross-registry aggregation).
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  void Merge(const HistogramSnapshot& other);

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket containing the p-th percentile
  /// (p in [0, 100]). Resolution is the bucket width: a factor of 2.
  uint64_t ApproxPercentile(double p) const;
};

/// Log-bucketed histogram of uint64 samples (typically nanoseconds or
/// bytes). Record() is two relaxed adds on a thread-local shard.
class Histogram {
 public:
  void Record(uint64_t value) {
    Shard& shard = shards_[ShardSlot() % kHistogramShards];
    shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kHistogramShards> shards_;
};

/// Everything a registry knew at one instant, by name. Also the merge
/// unit: ServiceHost combines its private registry with the process
/// Global() registry before exporting.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Merges `other` in: counters/histograms with the same name add,
  /// gauges with the same name take `other`'s value (it is newer).
  void Append(const MetricsSnapshot& other);

  uint64_t CounterValue(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// Named metric instruments with stable addresses: Get* returns a
/// pointer that lives as long as the registry, so callers look a metric
/// up once and cache the pointer next to their hot loop. Reset() zeroes
/// values but never invalidates pointers.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument in place (pointers stay valid).
  void Reset();

  /// Process-wide registry used by layers with no obvious owner
  /// (ThreadPool, channels, crypto pools, client-side spans). Leaked so
  /// instrumented statics can use it during shutdown.
  static MetricRegistry& Global();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PPSTATS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PPSTATS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PPSTATS_GUARDED_BY(mu_);
};

/// Master switch for *span* instrumentation (clock reads, histogram
/// records, trace events). Counters and gauges stay live regardless —
/// ServiceHost::Stats is built on them. Defaults to enabled.
void SetEnabled(bool enabled);
bool Enabled();

}  // namespace obs
}  // namespace ppstats

#endif  // PPSTATS_OBS_METRICS_H_
