// obs/span: RAII phase timing attributed to the paper's cost model.
//
// The source paper decomposes every protocol run into four components —
// client encryption, server computation, communication, and client
// decryption — and the canonical span names below are exactly those
// components plus the protocol phases this implementation adds
// (handshake, fold, retry_attempt). An ObsSpan records its duration
// into the histogram "span.<name>" of a MetricRegistry and, when
// tracing is on, appends a TraceEvent carrying the ambient
// session/query attribution from the thread's SpanContext.
//
// ScopedPhaseTimer is the shim that replaced the repo's scattered
// Stopwatch start/stop/accumulate pattern: it *always* accumulates
// elapsed seconds into a caller-owned double (RunMetrics and the fig2–
// fig9 series depend on those), and additionally behaves like an
// ObsSpan when instrumentation is enabled.

#ifndef PPSTATS_OBS_SPAN_H_
#define PPSTATS_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace ppstats {
namespace obs {

// Canonical span names. The first four are the paper's components.
inline constexpr const char kSpanClientEncrypt[] = "client_encrypt";
inline constexpr const char kSpanServerCompute[] = "server_compute";
inline constexpr const char kSpanCommunication[] = "communication";
inline constexpr const char kSpanClientDecrypt[] = "client_decrypt";
// Protocol phases beyond the paper's model.
inline constexpr const char kSpanHandshake[] = "handshake";
inline constexpr const char kSpanFold[] = "fold";
inline constexpr const char kSpanRetryAttempt[] = "retry_attempt";
// Cluster coordinator phases (src/cluster/coordinator.h): one fan-out
// per query, one shard_query per upstream leg (all attempts included).
inline constexpr const char kSpanClusterFanout[] = "cluster_fanout";
inline constexpr const char kSpanClusterShardQuery[] = "cluster_shard_query";

/// Prefix under which span durations appear in a registry, e.g. the
/// histogram "span.fold" holds nanoseconds per fold span.
inline constexpr const char kSpanMetricPrefix[] = "span.";

/// Ambient attribution for spans recorded on this thread. Session
/// threads and client sessions install their ids here so trace events
/// can be grouped per session and per query without plumbing ids
/// through every call signature.
struct SpanContext {
  uint64_t session_id = 0;
  uint64_t query_id = 0;
};

const SpanContext& CurrentContext();

/// Installs a SpanContext for the current scope, restoring the previous
/// one on destruction (contexts nest).
class ScopedSpanContext {
 public:
  explicit ScopedSpanContext(SpanContext context);
  ~ScopedSpanContext();
  ScopedSpanContext(const ScopedSpanContext&) = delete;
  ScopedSpanContext& operator=(const ScopedSpanContext&) = delete;

 private:
  SpanContext previous_;
};

/// One completed span, timestamped in seconds since the trace epoch
/// (the Enable() call), on the steady clock.
struct TraceEvent {
  std::string name;
  uint64_t session_id = 0;
  uint64_t query_id = 0;
  double start_s = 0;
  double duration_s = 0;
};

/// Process-wide trace buffer. Off by default; the client tool enables
/// it for --trace-json. Recording takes a mutex — tracing is a
/// debugging aid, not a hot-path facility (spans end at phase
/// granularity, not per row).
class TraceLog {
 public:
  static TraceLog& Global();

  /// Clears the buffer, restarts the epoch, and starts recording.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Seconds since the epoch (0 when tracing was never enabled).
  double Now() const;

  void Record(TraceEvent event);

  /// Returns all buffered events and empties the buffer.
  std::vector<TraceEvent> Drain();

 private:
  TraceLog() = default;

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ PPSTATS_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point epoch_ PPSTATS_GUARDED_BY(mu_){};
};

/// RAII span: construction starts the clock, destruction records the
/// duration (nanoseconds) into `registry`'s "span.<name>" histogram and
/// the global TraceLog. When obs::Enabled() is false the span is
/// completely inert (no clock reads).
class ObsSpan {
 public:
  /// `name` must outlive the span (use the kSpan* constants or another
  /// string literal).
  explicit ObsSpan(const char* name,
                   MetricRegistry* registry = &MetricRegistry::Global());
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Ends the span now (idempotent); returns its duration in seconds,
  /// or 0 if the span was inert.
  double Stop();

 private:
  const char* name_;
  MetricRegistry* registry_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

/// Records an externally measured (or modeled) duration as if a span
/// named `name` had run for `seconds`. The in-process experiment runner
/// uses this for the communication component, which the paper models
/// from byte counts and link parameters instead of timing a wire.
/// No-op when obs::Enabled() is false; negative durations clamp to 0.
void RecordSpanSeconds(const char* name, double seconds,
                       MetricRegistry* registry = &MetricRegistry::Global());

/// Scoped timer that accumulates `*seconds += elapsed` on destruction —
/// the drop-in replacement for the Stopwatch start/stop/accumulate
/// pattern — and doubles as an ObsSpan when `span_name` is non-null and
/// instrumentation is enabled. The accumulation itself is
/// unconditional: deterministic experiment metrics must not change when
/// observability is toggled.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(
      double* seconds, const char* span_name = nullptr,
      MetricRegistry* registry = &MetricRegistry::Global());
  ~ScopedPhaseTimer();
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  /// Ends the timer now (idempotent); returns the elapsed seconds.
  double Stop();

 private:
  double* seconds_;
  const char* span_name_;
  MetricRegistry* registry_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace ppstats

#endif  // PPSTATS_OBS_SPAN_H_
