#include "db/workload.h"

#include <algorithm>
#include <cmath>

namespace ppstats {

Database WorkloadGenerator::UniformDatabase(size_t n, uint32_t max_value) {
  std::vector<uint32_t> values(n);
  for (auto& v : values) {
    v = static_cast<uint32_t>(
        rng_.NextBelow(static_cast<uint64_t>(max_value) + 1));
  }
  return Database("uniform", std::move(values));
}

Database WorkloadGenerator::SkewedDatabase(size_t n, uint32_t max_value) {
  std::vector<uint32_t> values(n);
  for (auto& v : values) {
    // Inverse-CDF sample of a power-law-ish distribution: u^-0.7 scaled,
    // clipped to the 32-bit range.
    double u = (static_cast<double>(rng_.NextUint64() >> 11) + 1) /
               static_cast<double>(1ULL << 53);
    double x = std::pow(u, -0.7) - 1.0;
    double scaled = x * (max_value / 100.0);
    v = static_cast<uint32_t>(std::min<double>(scaled, max_value));
  }
  return Database("skewed", std::move(values));
}

SelectionVector WorkloadGenerator::RandomSelection(size_t n, size_t m) {
  // Floyd's algorithm would avoid the shuffle, but n is small enough that
  // a partial Fisher-Yates over indices is clear and O(n).
  std::vector<uint32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  SelectionVector selection(n, false);
  size_t take = std::min(m, n);
  for (size_t i = 0; i < take; ++i) {
    size_t j = i + static_cast<size_t>(rng_.NextBelow(n - i));
    std::swap(idx[i], idx[j]);
    selection[idx[i]] = true;
  }
  return selection;
}

SelectionVector WorkloadGenerator::BernoulliSelection(size_t n, double p) {
  SelectionVector selection(n, false);
  for (size_t i = 0; i < n; ++i) {
    double u = static_cast<double>(rng_.NextUint64() >> 11) /
               static_cast<double>(1ULL << 53);
    selection[i] = u < p;
  }
  return selection;
}

WeightVector WorkloadGenerator::RandomWeights(size_t n, uint64_t max_weight) {
  WeightVector weights(n);
  for (auto& w : weights) w = rng_.NextBelow(max_weight + 1);
  return weights;
}

}  // namespace ppstats
