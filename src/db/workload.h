// Synthetic workload generation for the experiments: databases of random
// 32-bit values and random selection/weight vectors, all deterministic
// under a seed.

#ifndef PPSTATS_DB_WORKLOAD_H_
#define PPSTATS_DB_WORKLOAD_H_

#include "common/random.h"
#include "db/database.h"

namespace ppstats {

/// Generates the paper's synthetic workloads.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(RandomSource& rng) : rng_(rng) {}

  /// A database of `n` uniform values in [0, max_value].
  Database UniformDatabase(size_t n, uint32_t max_value = 0xFFFFFFFFu);

  /// A database of `n` values from a clipped zipf-like skew, which better
  /// matches aggregate queries over real measurements (salaries, counts).
  Database SkewedDatabase(size_t n, uint32_t max_value = 0xFFFFFFFFu);

  /// A selection with exactly `m` of `n` rows chosen uniformly at random.
  SelectionVector RandomSelection(size_t n, size_t m);

  /// Each row selected independently with probability `p`.
  SelectionVector BernoulliSelection(size_t n, double p);

  /// Integer weights uniform in [0, max_weight]; 0 keeps a row out of the
  /// weighted sum.
  WeightVector RandomWeights(size_t n, uint64_t max_weight);

 private:
  RandomSource& rng_;
};

}  // namespace ppstats

#endif  // PPSTATS_DB_WORKLOAD_H_
