#include "db/column_registry.h"

namespace ppstats {

Status ColumnRegistry::Register(Database db) {
  if (db.name().empty()) {
    return Status::InvalidArgument("column has no name");
  }
  std::string name = db.name();
  auto [it, inserted] = columns_.emplace(std::move(name), std::move(db));
  if (!inserted) {
    return Status::InvalidArgument("column already registered: " +
                                   it->first);
  }
  return Status::OK();
}

const Database* ColumnRegistry::Find(const std::string& name) const {
  auto it = columns_.find(name);
  return it == columns_.end() ? nullptr : &it->second;
}

std::vector<std::string> ColumnRegistry::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [name, db] : columns_) names.push_back(name);
  return names;
}

}  // namespace ppstats
