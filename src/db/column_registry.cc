#include "db/column_registry.h"

#include <algorithm>
#include <set>
#include <utility>

namespace ppstats {

Status ColumnRegistry::Register(Database db) {
  if (db.name().empty()) {
    return Status::InvalidArgument("column has no name");
  }
  std::string name = db.name();
  auto [it, inserted] = columns_.emplace(std::move(name), std::move(db));
  if (!inserted) {
    return Status::InvalidArgument("column already registered: " +
                                   it->first);
  }
  return Status::OK();
}

const Database* ColumnRegistry::Find(const std::string& name) const {
  auto it = columns_.find(name);
  return it == columns_.end() ? nullptr : &it->second;
}

std::vector<std::string> ColumnRegistry::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [name, db] : columns_) names.push_back(name);
  return names;
}

Status ColumnRegistry::SetShards(const std::string& name,
                                 std::vector<ShardDescriptor> shards) {
  if (name.empty()) {
    return Status::InvalidArgument("sharded column has no name");
  }
  if (shards.empty()) {
    return Status::InvalidArgument("shard map is empty: " + name);
  }
  if (shards_.count(name) != 0) {
    return Status::InvalidArgument("shard map already registered: " + name);
  }
  std::sort(shards.begin(), shards.end(),
            [](const ShardDescriptor& a, const ShardDescriptor& b) {
              return a.begin < b.begin;
            });
  std::set<uint32_t> ids;
  std::set<std::string> uris;
  uint64_t expected = 0;
  for (const ShardDescriptor& shard : shards) {
    if (shard.uri.empty()) {
      return Status::InvalidArgument("shard " + std::to_string(shard.id) +
                                     " has no endpoint uri");
    }
    if (shard.end <= shard.begin) {
      return Status::InvalidArgument("shard " + std::to_string(shard.id) +
                                     " covers no rows");
    }
    if (shard.begin != expected) {
      return Status::InvalidArgument(
          (shard.begin > expected ? "shard map has a gap at row "
                                  : "shard map overlaps at row ") +
          std::to_string(shard.begin));
    }
    expected = shard.end;
    if (!ids.insert(shard.id).second) {
      return Status::InvalidArgument("duplicate shard id " +
                                     std::to_string(shard.id));
    }
    if (!uris.insert(shard.uri).second) {
      return Status::InvalidArgument("duplicate shard endpoint: " + shard.uri);
    }
  }
  if (const Database* local = Find(name);
      local != nullptr && local->size() != expected) {
    return Status::InvalidArgument(
        "shard map covers " + std::to_string(expected) + " rows but column " +
        name + " has " + std::to_string(local->size()));
  }
  shards_.emplace(name, std::move(shards));
  return Status::OK();
}

const std::vector<ShardDescriptor>* ColumnRegistry::FindShards(
    const std::string& name) const {
  auto it = shards_.find(name);
  return it == shards_.end() ? nullptr : &it->second;
}

uint64_t ColumnRegistry::ShardedRows(const std::string& name) const {
  const std::vector<ShardDescriptor>* shards = FindShards(name);
  return shards == nullptr ? 0 : shards->back().end;
}

std::vector<std::string> ColumnRegistry::ShardedColumnNames() const {
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& [name, map] : shards_) names.push_back(name);
  return names;
}

}  // namespace ppstats
