#include "db/database.h"

namespace ppstats {

Result<uint64_t> Database::SelectedSum(const SelectionVector& selection) const {
  if (selection.size() != values_.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  uint64_t sum = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (selection[i]) sum += values_[i];
  }
  return sum;
}

Result<uint64_t> Database::WeightedSum(const WeightVector& weights) const {
  if (weights.size() != values_.size()) {
    return Status::InvalidArgument("weight length != database size");
  }
  uint64_t sum = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    sum += weights[i] * values_[i];
  }
  return sum;
}

Result<uint64_t> Database::SelectedSumOfSquares(
    const SelectionVector& selection) const {
  if (selection.size() != values_.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  uint64_t sum = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (selection[i]) {
      sum += static_cast<uint64_t>(values_[i]) * values_[i];
    }
  }
  return sum;
}

}  // namespace ppstats
