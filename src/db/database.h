// Database substrate: the server-side table of numeric values.
//
// The paper's server holds "a database of n numbers ... of 32 bits each".
// We model a single integer column with named metadata, plus the
// selection vectors and weight vectors clients query it with.

#ifndef PPSTATS_DB_DATABASE_H_
#define PPSTATS_DB_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ppstats {

/// A selection vector: entry i is true when row i participates in the
/// client's statistic.
using SelectionVector = std::vector<bool>;

/// Integer weights for weighted sums / averages.
using WeightVector = std::vector<uint64_t>;

/// A single-column integer database held by the server.
class Database {
 public:
  Database() = default;
  Database(std::string name, std::vector<uint32_t> values)
      : name_(std::move(name)), values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  uint32_t value(size_t i) const { return values_[i]; }
  const std::vector<uint32_t>& values() const { return values_; }

  /// Plaintext selected sum — the ground truth the private protocols are
  /// checked against. Fails if the selection length mismatches.
  [[nodiscard]] Result<uint64_t> SelectedSum(const SelectionVector& selection) const;

  /// Plaintext weighted sum: sum_i w_i * x_i.
  [[nodiscard]] Result<uint64_t> WeightedSum(const WeightVector& weights) const;

  /// Plaintext sum of squares over the selection (for variance).
  [[nodiscard]] Result<uint64_t> SelectedSumOfSquares(const SelectionVector& selection) const;

 private:
  std::string name_;
  std::vector<uint32_t> values_;
};

}  // namespace ppstats

#endif  // PPSTATS_DB_DATABASE_H_
