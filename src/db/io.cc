#include "db/io.h"

#include <fstream>
#include <sstream>

namespace ppstats {

Result<Database> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open database file: " + path);
  }
  std::vector<uint32_t> values;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Trim whitespace.
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    std::string token = line.substr(begin, end - begin + 1);
    if (token.empty() || token[0] == '#') continue;

    uint64_t value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(
            "non-numeric value at line " + std::to_string(line_number) +
            " of " + path);
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
      if (value > 0xFFFFFFFFull) {
        return Status::OutOfRange("value exceeds 32 bits at line " +
                                  std::to_string(line_number));
      }
    }
    values.push_back(static_cast<uint32_t>(value));
  }
  return Database(path, std::move(values));
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot write database file: " + path);
  }
  out << "# ppstats database, " << db.size() << " values\n";
  for (uint32_t v : db.values()) out << v << "\n";
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Result<std::vector<size_t>> ParseIndexList(const std::string& text,
                                           size_t limit) {
  std::vector<size_t> out;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) {
      return Status::InvalidArgument("empty index in list");
    }
    uint64_t value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("non-numeric index: " + token);
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
      if (value > limit) break;
    }
    if (value >= limit) {
      return Status::OutOfRange("index " + token + " out of range");
    }
    out.push_back(static_cast<size_t>(value));
  }
  if (out.empty()) {
    return Status::InvalidArgument("no indices given");
  }
  return out;
}

}  // namespace ppstats
