// Database file I/O: load/store the server's integer column as a plain
// text file (one value per line, '#' comments allowed). Used by the
// command-line tools.

#ifndef PPSTATS_DB_IO_H_
#define PPSTATS_DB_IO_H_

#include <string>

#include "db/database.h"

namespace ppstats {

/// Loads a database from a text file: one unsigned 32-bit value per
/// line; blank lines and lines starting with '#' are skipped. The
/// database name is the file path.
[[nodiscard]] Result<Database> LoadDatabaseFromFile(const std::string& path);

/// Writes a database in the same format.
[[nodiscard]] Status SaveDatabaseToFile(const Database& db, const std::string& path);

/// Parses a comma-separated index list ("3,17,42") into indices, with
/// range validation against `limit`.
[[nodiscard]] Result<std::vector<size_t>> ParseIndexList(const std::string& text,
                                                         size_t limit);

}  // namespace ppstats

#endif  // PPSTATS_DB_IO_H_
