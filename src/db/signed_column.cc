#include "db/signed_column.h"

namespace ppstats {

Database SignedColumn::Encode(std::string name,
                              const std::vector<int32_t>& values) {
  std::vector<uint32_t> encoded;
  encoded.reserve(values.size());
  for (int32_t v : values) {
    encoded.push_back(static_cast<uint32_t>(static_cast<int64_t>(v) +
                                            static_cast<int64_t>(kBias)));
  }
  return Database(std::move(name), std::move(encoded));
}

BigInt SignedColumn::DecodeSum(const BigInt& biased_sum,
                               size_t selected_count) {
  return biased_sum -
         BigInt(kBias) * BigInt(static_cast<uint64_t>(selected_count));
}

}  // namespace ppstats
