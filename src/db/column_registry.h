// ColumnRegistry: the server's catalog of named columns.
//
// The v2 session protocol lets one connection query several columns by
// name (QueryHeader frames); the registry is the server-side name ->
// Database mapping those names resolve against. Databases are stored by
// value and keyed by Database::name(); node-based storage keeps the
// addresses stable, so compiled queries may hold plain pointers for the
// lifetime of the registry.
//
// A column may also (or instead) carry a *shard map*: an ordered list of
// ShardDescriptor entries partitioning the row space [0, rows) across
// remote shard servers. The cluster coordinator resolves queries against
// the shard map rather than local row storage; a registry that only
// holds shard maps has no local columns at all.

#ifndef PPSTATS_DB_COLUMN_REGISTRY_H_
#define PPSTATS_DB_COLUMN_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"

namespace ppstats {

/// One shard of a partitioned column: the server at `uri` owns rows
/// [begin, end) of the logical column. Row indices are global; the shard
/// server itself stores its slice as rows [0, end - begin).
struct ShardDescriptor {
  uint32_t id = 0;
  std::string uri;     ///< dialable endpoint ("unix:/path" | "tcp:host:port")
  uint64_t begin = 0;  ///< first global row owned by the shard (inclusive)
  uint64_t end = 0;    ///< one past the last global row (exclusive)
};

/// Name -> column catalog served by one ServiceHost / ServerSession.
class ColumnRegistry {
 public:
  /// Adds a column under its own name. Fails on an empty name or a
  /// duplicate registration.
  [[nodiscard]] Status Register(Database db);

  /// Looks a column up by name; nullptr when absent. The pointer stays
  /// valid until the registry is destroyed.
  const Database* Find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> ColumnNames() const;

  /// Attaches a shard map to `name`. The map must tile [0, rows)
  /// contiguously (sorted here; no gaps, no overlap, first range starts
  /// at row 0), with unique shard ids and unique non-empty endpoint
  /// URIs. When a local column of the same name exists its size must
  /// match the map's total rows. Fails on a duplicate map.
  [[nodiscard]] Status SetShards(const std::string& name,
                                 std::vector<ShardDescriptor> shards);

  /// Shard map for `name`; nullptr when the column is not sharded. The
  /// pointer stays valid until the registry is destroyed.
  const std::vector<ShardDescriptor>* FindShards(const std::string& name) const;

  /// Total rows covered by `name`'s shard map, 0 when not sharded.
  uint64_t ShardedRows(const std::string& name) const;

  /// Names with shard maps, sorted.
  std::vector<std::string> ShardedColumnNames() const;

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }

 private:
  std::map<std::string, Database> columns_;
  std::map<std::string, std::vector<ShardDescriptor>> shards_;
};

}  // namespace ppstats

#endif  // PPSTATS_DB_COLUMN_REGISTRY_H_
