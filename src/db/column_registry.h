// ColumnRegistry: the server's catalog of named columns.
//
// The v2 session protocol lets one connection query several columns by
// name (QueryHeader frames); the registry is the server-side name ->
// Database mapping those names resolve against. Databases are stored by
// value and keyed by Database::name(); node-based storage keeps the
// addresses stable, so compiled queries may hold plain pointers for the
// lifetime of the registry.

#ifndef PPSTATS_DB_COLUMN_REGISTRY_H_
#define PPSTATS_DB_COLUMN_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "db/database.h"

namespace ppstats {

/// Name -> column catalog served by one ServiceHost / ServerSession.
class ColumnRegistry {
 public:
  /// Adds a column under its own name. Fails on an empty name or a
  /// duplicate registration.
  [[nodiscard]] Status Register(Database db);

  /// Looks a column up by name; nullptr when absent. The pointer stays
  /// valid until the registry is destroyed.
  const Database* Find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> ColumnNames() const;

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }

 private:
  std::map<std::string, Database> columns_;
};

}  // namespace ppstats

#endif  // PPSTATS_DB_COLUMN_REGISTRY_H_
