// Signed-value support via bias encoding.
//
// The protocol's plaintexts are non-negative (Z_n residues) and the
// Database column is uint32, but real statistics involve signed data
// (temperature deltas, profit/loss). A signed column is stored biased:
//
//   encoded_i = x_i + 2^31          (fits uint32 exactly)
//
// A selected sum over the encoded column then decodes as
//
//   sum_i x_i = biased_sum - m * 2^31
//
// where m is the selection count — which the client knows (it chose the
// selection), so no extra information crosses the protocol.

#ifndef PPSTATS_DB_SIGNED_COLUMN_H_
#define PPSTATS_DB_SIGNED_COLUMN_H_

#include "bigint/bigint.h"
#include "db/database.h"

namespace ppstats {

/// Bias-encoding helpers for signed 32-bit columns.
class SignedColumn {
 public:
  static constexpr uint64_t kBias = uint64_t{1} << 31;

  /// Encodes signed values into a protocol-ready Database.
  static Database Encode(std::string name,
                         const std::vector<int32_t>& values);

  /// Recovers one signed value from its encoded cell.
  static int32_t DecodeValue(uint32_t encoded) {
    return static_cast<int32_t>(static_cast<int64_t>(encoded) -
                                static_cast<int64_t>(kBias));
  }

  /// Decodes a selected sum over an encoded column: subtracts the bias
  /// once per selected row. `selected_count` must equal the number of
  /// rows the client selected.
  static BigInt DecodeSum(const BigInt& biased_sum, size_t selected_count);
};

}  // namespace ppstats

#endif  // PPSTATS_DB_SIGNED_COLUMN_H_
