// BigInt: arbitrary-precision signed integers on 64-bit limbs.
//
// This is the arithmetic substrate for the Paillier cryptosystem and the
// oblivious-transfer group operations. It implements schoolbook and
// Karatsuba multiplication, Knuth Algorithm D division, and byte/decimal/
// hex conversions. Modular arithmetic helpers live in modarith.h and
// montgomery.h; primality testing in prime.h.
//
// The representation is magnitude (little-endian vector of 64-bit limbs,
// normalized so the most significant limb is nonzero) plus a sign flag.
// Zero is canonical: empty limb vector, non-negative.
//
// This library targets experimental reproduction, not side-channel-hardened
// production crypto: operations are not constant-time with respect to
// operand values.

#ifndef PPSTATS_BIGINT_BIGINT_H_
#define PPSTATS_BIGINT_BIGINT_H_

#include <compare>
#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ppstats {

/// Arbitrary-precision signed integer.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from any built-in integer type.
  template <typename T>
    requires std::integral<T>
  BigInt(T value) {  // NOLINT(runtime/explicit)
    if constexpr (std::is_signed_v<T>) {
      InitSigned(static_cast<int64_t>(value));
    } else {
      InitUnsigned(static_cast<uint64_t>(value));
    }
  }

  /// Parses a decimal string, optionally prefixed with '-'.
  [[nodiscard]] static Result<BigInt> FromDecimal(std::string_view s);

  /// Parses a (case-insensitive) hex string, optionally prefixed with '-'
  /// and/or "0x".
  [[nodiscard]] static Result<BigInt> FromHexString(std::string_view s);

  /// Interprets big-endian bytes as a non-negative integer.
  static BigInt FromBytes(BytesView bytes);

  /// --- Introspection -------------------------------------------------

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return !negative_ && limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsNegative() const { return negative_; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsEven() const { return !IsOdd(); }

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  /// Number of limbs in the magnitude.
  size_t LimbCount() const { return limbs_.size(); }

  /// Value of bit `i` (little-endian bit order) of the magnitude.
  bool Bit(size_t i) const;

  /// Low 64 bits of the magnitude (0 for zero).
  uint64_t LowUint64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Whether the magnitude fits in a uint64_t.
  bool FitsUint64() const { return limbs_.size() <= 1; }

  /// --- Arithmetic ----------------------------------------------------

  BigInt operator-() const;
  BigInt Abs() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  /// Truncated division (C semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Fails on zero divisor.
  [[nodiscard]] static Result<std::pair<BigInt, BigInt>> DivRem(const BigInt& num,
                                                                const BigInt& den);

  /// Truncated quotient / remainder. Divisor must be nonzero (asserted).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  /// Left/right shift of the magnitude (sign preserved; -1 >> 10 == 0
  /// would be -0 => canonicalized to 0).
  friend BigInt operator<<(const BigInt& a, size_t bits);
  friend BigInt operator>>(const BigInt& a, size_t bits);
  BigInt& operator<<=(size_t bits) { return *this = *this << bits; }
  BigInt& operator>>=(size_t bits) { return *this = *this >> bits; }

  /// --- Comparison ----------------------------------------------------

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Compares magnitudes only: -1, 0, or +1.
  static int CompareMagnitude(const BigInt& a, const BigInt& b);

  /// --- Conversion ----------------------------------------------------

  /// Decimal representation, '-'-prefixed when negative.
  std::string ToDecimal() const;

  /// Lowercase hex representation without "0x", '-'-prefixed when negative.
  std::string ToHexString() const;

  /// Big-endian bytes of the magnitude, left-padded with zeros to at
  /// least `min_width` bytes. Always at least one byte (zero encodes as
  /// a single 0x00).
  Bytes ToBytes(size_t min_width = 0) const;

  /// Direct limb access (little-endian) for the Montgomery kernel.
  const std::vector<uint64_t>& limbs() const { return limbs_; }

  /// Builds a non-negative BigInt from little-endian limbs (normalizes).
  static BigInt FromLimbs(std::vector<uint64_t> limbs);

 private:
  friend class MontgomeryContext;

  void InitUnsigned(uint64_t value);
  void InitSigned(int64_t value);

  void Normalize();

  // Magnitude helpers (ignore sign).
  static std::vector<uint64_t> AddMag(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint64_t> SubMag(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulMag(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulSchoolbook(const std::vector<uint64_t>& a,
                                             const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulKaratsuba(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  static int CompareMag(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b);
  // Knuth Algorithm D on magnitudes; returns {quotient, remainder}.
  static std::pair<std::vector<uint64_t>, std::vector<uint64_t>> DivRemMag(
      const std::vector<uint64_t>& num, const std::vector<uint64_t>& den);

  std::vector<uint64_t> limbs_;  // little-endian, normalized
  bool negative_ = false;        // false when zero
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace ppstats

#endif  // PPSTATS_BIGINT_BIGINT_H_
