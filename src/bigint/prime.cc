#include "bigint/prime.h"

#include <array>
#include <cassert>

#include "bigint/modarith.h"
#include "bigint/montgomery.h"

namespace ppstats {

namespace {

// Primes below 256 for cheap trial division before Miller–Rabin.
constexpr std::array<uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// One Miller–Rabin round for witness a against n = d * 2^s + 1 (d odd).
// Returns true if n passes (is possibly prime).
bool MillerRabinRound(const MontgomeryContext& ctx, const BigInt& n,
                      const BigInt& n_minus_1, const BigInt& d, size_t s,
                      const BigInt& a) {
  BigInt x = ctx.Exp(a, d);
  if (x.IsOne() || x == n_minus_1) return true;
  for (size_t i = 1; i < s; ++i) {
    x = MulMod(x, x, n);
    if (x == n_minus_1) return true;
    if (x.IsOne()) return false;  // nontrivial sqrt of 1
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigInt& n, RandomSource& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (uint64_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }
  // n is odd and > 256 here.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (d.IsEven()) {
    d >>= 1;
    ++s;
  }
  MontgomeryContext ctx(n);
  // Fixed base 2 catches most composites cheaply and deterministically.
  if (!MillerRabinRound(ctx, n, n_minus_1, d, s, BigInt(2))) return false;
  for (int i = 0; i < rounds; ++i) {
    // Witness in [2, n-2].
    BigInt a = RandomBelow(rng, n - BigInt(3)) + BigInt(2);
    if (!MillerRabinRound(ctx, n, n_minus_1, d, s, a)) return false;
  }
  return true;
}

BigInt GeneratePrime(size_t bits, RandomSource& rng, int mr_rounds) {
  assert(bits >= 2);
  for (;;) {
    BigInt candidate = RandomBits(rng, bits);
    // Force the top two bits (so a product of two such primes has exactly
    // 2*bits bits, the RSA/Paillier convention) and oddness.
    if (!candidate.Bit(bits - 1)) candidate += BigInt(1) << (bits - 1);
    if (bits >= 2 && !candidate.Bit(bits - 2)) {
      candidate += BigInt(1) << (bits - 2);
    }
    if (candidate.IsEven()) candidate += 1;
    if (candidate.BitLength() != bits) continue;
    if (IsProbablePrime(candidate, rng, mr_rounds)) return candidate;
  }
}

std::pair<BigInt, BigInt> GeneratePrimePair(size_t bits, RandomSource& rng,
                                            int mr_rounds) {
  BigInt p = GeneratePrime(bits, rng, mr_rounds);
  for (;;) {
    BigInt q = GeneratePrime(bits, rng, mr_rounds);
    if (q != p) return {std::move(p), std::move(q)};
  }
}

}  // namespace ppstats
