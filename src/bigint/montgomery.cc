#include "bigint/montgomery.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <utility>

#include "bigint/modarith.h"

namespace ppstats {

namespace {
using uint128 = unsigned __int128;

// Inverse of odd x modulo 2^64 by Newton iteration; 6 steps double the
// correct low bits from 1 to 64.
uint64_t InverseMod2_64(uint64_t x) {
  assert(x & 1);
  uint64_t inv = x;  // correct to 3 bits (for odd x, x*x = 1 mod 8)
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - x * inv;
  }
  assert(inv * x == 1);
  return inv;
}

// Below this exponent width Exp uses plain square-and-multiply: the
// 4-bit window trades ~bits/4 multiplications in the ladder for 14 table
// multiplications up front, which only pays off past ~50 bits. Database
// values (the ScalarMultiply regime) are 32-128 bits wide at most.
constexpr size_t kSmallExpBits = 48;

// Bits [window * width, (window + 1) * width) of |e|, little-endian.
size_t WindowDigit(const BigInt& e, size_t window, size_t width) {
  size_t digit = 0;
  for (size_t b = 0; b < width; ++b) {
    if (e.Bit(window * width + b)) digit |= (size_t{1} << b);
  }
  return digit;
}

// Approximate multiplication counts for the two MultiExp schedules, with
// squarings weighted at 0.75 of a general multiplication (the MontSqr
// discount). Returns {window, cost}; MultiExp picks the cheaper schedule.
std::pair<size_t, double> PickStrausWindow(size_t k, size_t bits) {
  size_t best_w = 1;
  double best_cost = -1;
  for (size_t w = 1; w <= 6; ++w) {
    const double windows = static_cast<double>((bits + w - 1) / w);
    const double table = static_cast<double>(k) *
                         static_cast<double>((size_t{1} << w) - 2);
    const double cost = table + windows * static_cast<double>(k) +
                        0.75 * static_cast<double>(bits);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return {best_w, best_cost};
}

std::pair<size_t, double> PickPippengerWindow(size_t k, size_t bits) {
  size_t best_w = 1;
  double best_cost = -1;
  for (size_t w = 1; w <= 16; ++w) {
    const double windows = static_cast<double>((bits + w - 1) / w);
    // Per window: up to k bucket insertions, then the gap-walk reduction
    // over the m <= min(k, 2^w - 1) occupied buckets: ~2 mults per
    // occupied bucket plus ~1.5 * log2(gap) for each gap exponentiation
    // (gaps multiply out to at most 2^w, so the log terms total at most
    // ~m * (w - log2 m)). The one-time 2^w term charges for the bucket
    // array allocation so oversized windows lose even when the mult
    // count alone would favor them.
    const double m =
        static_cast<double>(std::min(k, (size_t{1} << w) - 1));
    const double gap_bits =
        std::max(0.0, static_cast<double>(w) - std::log2(m + 1));
    const double per_window =
        static_cast<double>(k) + 2.0 * m + 1.5 * m * gap_bits;
    const double cost = windows * per_window +
                        0.75 * static_cast<double>(bits) +
                        0.01 * static_cast<double>(size_t{1} << w);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return {best_w, best_cost};
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : modulus_(modulus) {
  assert(modulus.IsOdd());
  assert(modulus > BigInt(1));
  mod_limbs_ = modulus.limbs();
  n_ = mod_limbs_.size();
  n0_inv_ = ~InverseMod2_64(mod_limbs_[0]) + 1;  // -m^{-1} mod 2^64

  // R = 2^(64 n); r2_ = R^2 mod m computed with plain BigInt arithmetic.
  BigInt r = BigInt(1) << (64 * n_);
  BigInt r2 = (r * r) % modulus_;
  r2_ = ToFixed(r2);
  one_mont_ = ToFixed(r % modulus_);
}

MontgomeryContext::Limbs MontgomeryContext::ToFixed(const BigInt& x) const {
  assert(!x.IsNegative());
  Limbs out = x.limbs();
  assert(out.size() <= n_);
  out.resize(n_, 0);
  return out;
}

void MontgomeryContext::ReduceOnce(const std::vector<uint64_t>& t,
                                   size_t offset, Limbs* out) const {
  // The reduced value t[offset .. offset+n) plus overflow limb
  // t[offset+n] lies in [0, 2m); subtract m at most once.
  const size_t n = n_;
  bool ge = t[offset + n] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = n; i-- > 0;) {
      if (t[offset + i] != mod_limbs_[i]) {
        ge = t[offset + i] > mod_limbs_[i];
        break;
      }
    }
  }
  out->assign(t.begin() + offset, t.begin() + offset + n);
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128 d = static_cast<uint128>((*out)[i]) - mod_limbs_[i] - borrow;
      (*out)[i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) ? 1 : 0;
    }
  }
}

void MontgomeryContext::MontMul(const Limbs& a, const Limbs& b,
                                Limbs* out) const {
  // CIOS (coarsely integrated operand scanning), Koc et al. 1996.
  const size_t n = n_;
  std::vector<uint64_t> t(n + 2, 0);
  for (size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 s = static_cast<uint128>(t[n]) + carry;
    t[n] = static_cast<uint64_t>(s);
    t[n + 1] = static_cast<uint64_t>(s >> 64);

    // t += (t[0] * n0') * m; then t >>= 64
    uint64_t m = t[0] * n0_inv_;
    uint128 cur = static_cast<uint128>(m) * mod_limbs_[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < n; ++j) {
      cur = static_cast<uint128>(m) * mod_limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    s = static_cast<uint128>(t[n]) + carry;
    t[n - 1] = static_cast<uint64_t>(s);
    t[n] = t[n + 1] + static_cast<uint64_t>(s >> 64);
    t[n + 1] = 0;
  }
  ReduceOnce(t, 0, out);
}

void MontgomeryContext::MontSqr(const Limbs& a, Limbs* out) const {
  // SOS (separated operand scanning) squaring: the product phase
  // computes only the cross terms a[i]*a[j] for i < j (half the
  // multiplications of a general product), doubles them, and adds the
  // diagonal squares; the reduction phase is the standard Montgomery
  // sweep. Net ~1.3x faster than MontMul(a, a).
  const size_t n = n_;
  std::vector<uint64_t> t(2 * n + 1, 0);

  // Upper triangle: t += a[i] * a[j] for j > i.
  for (size_t i = 0; i + 1 < n; ++i) {
    uint64_t carry = 0;
    for (size_t j = i + 1; j < n; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    t[i + n] = carry;  // position i+n is untouched by earlier rows
  }

  // Double the cross terms: t <<= 1 (cannot overflow 2n limbs since
  // 2 * triangle <= a^2 - sum a[i]^2 < m^2).
  uint64_t carry = 0;
  for (size_t i = 0; i < 2 * n; ++i) {
    const uint64_t hi = t[i] >> 63;
    t[i] = (t[i] << 1) | carry;
    carry = hi;
  }

  // Add the diagonal squares a[i]^2 at bit offset 128 i.
  carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint128 sq = static_cast<uint128>(a[i]) * a[i];
    uint128 lo = static_cast<uint128>(t[2 * i]) +
                 static_cast<uint64_t>(sq) + carry;
    t[2 * i] = static_cast<uint64_t>(lo);
    uint128 hi = static_cast<uint128>(t[2 * i + 1]) +
                 static_cast<uint64_t>(sq >> 64) +
                 static_cast<uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<uint64_t>(hi);
    carry = static_cast<uint64_t>(hi >> 64);
  }
  t[2 * n] = carry;

  // Montgomery reduction: for each low limb, cancel it with a multiple
  // of m and carry into the high half.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t m = t[i] * n0_inv_;
    uint64_t c = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(m) * mod_limbs_[j] + t[i + j] + c;
      t[i + j] = static_cast<uint64_t>(cur);
      c = static_cast<uint64_t>(cur >> 64);
    }
    for (size_t k = i + n; c != 0 && k <= 2 * n; ++k) {
      uint128 cur = static_cast<uint128>(t[k]) + c;
      t[k] = static_cast<uint64_t>(cur);
      c = static_cast<uint64_t>(cur >> 64);
    }
  }
  ReduceOnce(t, n, out);
}

BigInt MontgomeryContext::ToMontgomery(const BigInt& x) const {
  Limbs out;
  MontMul(ToFixed(x), r2_, &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::FromMontgomery(const BigInt& x) const {
  Limbs one(n_, 0);
  one[0] = 1;
  Limbs out;
  MontMul(ToFixed(x), one, &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::MulMontgomery(const BigInt& a,
                                        const BigInt& b) const {
  Limbs out;
  MontMul(ToFixed(a), ToFixed(b), &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::Sqr(const BigInt& a) const {
  Limbs out;
  MontSqr(ToFixed(a), &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::OneMontgomery() const {
  return BigInt::FromLimbs(Limbs(one_mont_));
}

BigInt MontgomeryContext::Exp(const BigInt& base, const BigInt& exp) const {
  assert(!exp.IsNegative());
  if (exp.IsZero()) return BigInt(1);  // modulus > 1 by construction

  const Limbs base_m = ToFixed(ToMontgomery(Mod(base, modulus_)));
  const size_t bits = exp.BitLength();
  Limbs acc;
  Limbs tmp;

  if (bits <= kSmallExpBits) {
    // Plain left-to-right square-and-multiply: no window table.
    acc = base_m;
    for (size_t b = bits - 1; b-- > 0;) {
      MontSqr(acc, &tmp);
      acc.swap(tmp);
      if (exp.Bit(b)) {
        MontMul(acc, base_m, &tmp);
        acc.swap(tmp);
      }
    }
    return FromMontgomery(BigInt::FromLimbs(std::move(acc)));
  }

  // Precompute table[i] = base^i in Montgomery form, i in [0, 16).
  constexpr size_t kWindow = 4;
  std::vector<Limbs> table(1 << kWindow);
  table[0] = one_mont_;
  table[1] = base_m;
  for (size_t i = 2; i < table.size(); ++i) {
    MontMul(table[i - 1], base_m, &table[i]);
  }

  const size_t windows = (bits + kWindow - 1) / kWindow;
  acc = one_mont_;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (size_t s = 0; s < kWindow; ++s) {
        MontSqr(acc, &tmp);
        acc.swap(tmp);
      }
    }
    const size_t idx = WindowDigit(exp, w, kWindow);
    if (idx != 0) {
      MontMul(acc, table[idx], &tmp);
      acc.swap(tmp);
    }
  }
  return FromMontgomery(BigInt::FromLimbs(std::move(acc)));
}

MontgomeryContext::Limbs MontgomeryContext::StrausMont(
    const std::vector<Limbs>& bases, const std::vector<const BigInt*>& exps,
    size_t max_bits, size_t window) const {
  // Straus/simultaneous exponentiation: per-base window tables, one
  // shared squaring ladder. Best for small batches, where Pippenger's
  // bucket overhead (~2^w multiplications per window) dominates.
  const size_t k = bases.size();
  const size_t table_size = size_t{1} << window;
  std::vector<std::vector<Limbs>> tables(k);
  for (size_t i = 0; i < k; ++i) {
    tables[i].resize(table_size);
    tables[i][1] = bases[i];
    for (size_t j = 2; j < table_size; ++j) {
      MontMul(tables[i][j - 1], bases[i], &tables[i][j]);
    }
  }

  const size_t windows = (max_bits + window - 1) / window;
  Limbs acc = one_mont_;
  Limbs tmp;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (size_t s = 0; s < window; ++s) {
        MontSqr(acc, &tmp);
        acc.swap(tmp);
      }
    }
    for (size_t i = 0; i < k; ++i) {
      const size_t digit = WindowDigit(*exps[i], w, window);
      if (digit != 0) {
        MontMul(acc, tables[i][digit], &tmp);
        acc.swap(tmp);
      }
    }
  }
  return acc;
}

MontgomeryContext::Limbs MontgomeryContext::PippengerMont(
    const std::vector<Limbs>& bases, const std::vector<const BigInt*>& exps,
    size_t max_bits, size_t window) const {
  // Pippenger bucket method. Per window of the exponents (most
  // significant first): shift the accumulator by `window` squarings,
  // drop each base into the bucket named by its digit, then combine the
  // buckets. Writing the occupied digits in descending order
  // d_1 > ... > d_m (with d_{m+1} = 0) and S_i = prod_{j<=i} B_{d_j},
  //   prod_d B_d^d = prod_i S_i^{d_i - d_{i+1}},
  // so walking only the occupied buckets and raising the running
  // product to each gap costs ~2 mults per occupied bucket plus
  // log2(gap) squarings per hop — never a pass over all 2^w digits.
  const size_t k = bases.size();
  const size_t bucket_count = size_t{1} << window;
  const size_t windows = (max_bits + window - 1) / window;

  std::vector<Limbs> buckets(bucket_count);
  std::vector<bool> used(bucket_count, false);
  std::vector<size_t> digits;  // occupied digits of the current window
  digits.reserve(std::min(k, bucket_count));
  Limbs acc = one_mont_;
  Limbs tmp;

  // out = a^e in Montgomery form, e >= 1, by binary square-and-multiply.
  auto pow_uint = [this, &tmp](const Limbs& a, size_t e, Limbs* out) {
    *out = a;
    size_t top = 0;
    while ((e >> (top + 1)) != 0) ++top;
    for (size_t b = top; b-- > 0;) {
      MontSqr(*out, &tmp);
      out->swap(tmp);
      if ((e >> b) & 1) {
        MontMul(*out, a, &tmp);
        out->swap(tmp);
      }
    }
  };

  Limbs running;
  Limbs total;
  Limbs gap_pow;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (size_t s = 0; s < window; ++s) {
        MontSqr(acc, &tmp);
        acc.swap(tmp);
      }
    }

    for (size_t d : digits) used[d] = false;
    digits.clear();
    for (size_t i = 0; i < k; ++i) {
      const size_t digit = WindowDigit(*exps[i], w, window);
      if (digit == 0) continue;
      if (used[digit]) {
        MontMul(buckets[digit], bases[i], &tmp);
        buckets[digit].swap(tmp);
      } else {
        buckets[digit] = bases[i];
        used[digit] = true;
        digits.push_back(digit);
      }
    }
    if (digits.empty()) continue;
    std::sort(digits.begin(), digits.end(), std::greater<size_t>());

    bool have_total = false;
    for (size_t idx = 0; idx < digits.size(); ++idx) {
      const size_t d = digits[idx];
      if (idx == 0) {
        running = buckets[d];
      } else {
        MontMul(running, buckets[d], &tmp);
        running.swap(tmp);
      }
      const size_t next = idx + 1 < digits.size() ? digits[idx + 1] : 0;
      const size_t gap = d - next;
      if (!have_total) {
        pow_uint(running, gap, &total);
        have_total = true;
      } else if (gap == 1) {
        MontMul(total, running, &tmp);
        total.swap(tmp);
      } else {
        pow_uint(running, gap, &gap_pow);
        MontMul(total, gap_pow, &tmp);
        total.swap(tmp);
      }
    }
    MontMul(acc, total, &tmp);
    acc.swap(tmp);
  }
  return acc;
}

BigInt MontgomeryContext::MultiExpMontgomery(
    std::span<const BigInt> bases_mont, std::span<const BigInt> exponents,
    MultiExpSchedule schedule) const {
  assert(bases_mont.size() == exponents.size());
  std::vector<Limbs> bases;
  std::vector<const BigInt*> exps;
  bases.reserve(bases_mont.size());
  exps.reserve(exponents.size());
  size_t max_bits = 0;
  for (size_t i = 0; i < bases_mont.size(); ++i) {
    assert(!exponents[i].IsNegative());
    if (exponents[i].IsZero()) continue;  // c^0 = 1: no-op factor
    bases.push_back(ToFixed(bases_mont[i]));
    exps.push_back(&exponents[i]);
    max_bits = std::max(max_bits, exponents[i].BitLength());
  }
  if (exps.empty()) return OneMontgomery();

  const size_t k = exps.size();
  const auto [straus_w, straus_cost] = PickStrausWindow(k, max_bits);
  const auto [pip_w, pip_cost] = PickPippengerWindow(k, max_bits);
  const bool use_straus =
      schedule == MultiExpSchedule::kStraus ||
      (schedule == MultiExpSchedule::kAuto && straus_cost <= pip_cost);
  Limbs out = use_straus ? StrausMont(bases, exps, max_bits, straus_w)
                         : PippengerMont(bases, exps, max_bits, pip_w);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::MultiExp(std::span<const BigInt> bases,
                                   std::span<const BigInt> exponents,
                                   MultiExpSchedule schedule) const {
  assert(bases.size() == exponents.size());
  std::vector<BigInt> bases_mont;
  bases_mont.reserve(bases.size());
  for (const BigInt& base : bases) {
    bases_mont.push_back(ToMontgomery(Mod(base, modulus_)));
  }
  return FromMontgomery(MultiExpMontgomery(bases_mont, exponents, schedule));
}

}  // namespace ppstats
