#include "bigint/montgomery.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <utility>

#include "bigint/modarith.h"
#include "obs/metrics.h"

namespace ppstats {

namespace {

// Inverse of odd x modulo 2^64 by Newton iteration; 6 steps double the
// correct low bits from 1 to 64.
uint64_t InverseMod2_64(uint64_t x) {
  assert(x & 1);
  uint64_t inv = x;  // correct to 3 bits (for odd x, x*x = 1 mod 8)
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - x * inv;
  }
  assert(inv * x == 1);
  return inv;
}

// Below this exponent width Exp uses plain square-and-multiply: the
// 4-bit window trades ~bits/4 multiplications in the ladder for 14 table
// multiplications up front, which only pays off past ~50 bits. Database
// values (the ScalarMultiply regime) are 32-128 bits wide at most.
constexpr size_t kSmallExpBits = 48;

// Bits [window * width, (window + 1) * width) of |e|, little-endian.
size_t WindowDigit(const BigInt& e, size_t window, size_t width) {
  size_t digit = 0;
  for (size_t b = 0; b < width; ++b) {
    if (e.Bit(window * width + b)) digit |= (size_t{1} << b);
  }
  return digit;
}

// Approximate multiplication counts for the two MultiExp schedules, with
// squarings weighted at 0.75 of a general multiplication (the MontSqr
// discount). Returns {window, cost}; MultiExp picks the cheaper schedule.
std::pair<size_t, double> PickStrausWindow(size_t k, size_t bits) {
  size_t best_w = 1;
  double best_cost = -1;
  for (size_t w = 1; w <= 6; ++w) {
    const double windows = static_cast<double>((bits + w - 1) / w);
    const double table = static_cast<double>(k) *
                         static_cast<double>((size_t{1} << w) - 2);
    const double cost = table + windows * static_cast<double>(k) +
                        0.75 * static_cast<double>(bits);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return {best_w, best_cost};
}

std::pair<size_t, double> PickPippengerWindow(size_t k, size_t bits) {
  size_t best_w = 1;
  double best_cost = -1;
  for (size_t w = 1; w <= 16; ++w) {
    const double windows = static_cast<double>((bits + w - 1) / w);
    // Per window: up to k bucket insertions, then the gap-walk reduction
    // over the m <= min(k, 2^w - 1) occupied buckets: ~2 mults per
    // occupied bucket plus ~1.5 * log2(gap) for each gap exponentiation
    // (gaps multiply out to at most 2^w, so the log terms total at most
    // ~m * (w - log2 m)). The one-time 2^w term charges for the bucket
    // array allocation so oversized windows lose even when the mult
    // count alone would favor them.
    const double m =
        static_cast<double>(std::min(k, (size_t{1} << w) - 1));
    const double gap_bits =
        std::max(0.0, static_cast<double>(w) - std::log2(m + 1));
    const double per_window =
        static_cast<double>(k) + 2.0 * m + 1.5 * m * gap_bits;
    const double cost = windows * per_window +
                        0.75 * static_cast<double>(bits) +
                        0.01 * static_cast<double>(size_t{1} << w);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best_w = w;
    }
  }
  return {best_w, best_cost};
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : MontgomeryContext(modulus, MontBackendKind::kAuto) {}

MontgomeryContext::MontgomeryContext(const BigInt& modulus,
                                     MontBackendKind backend)
    : modulus_(modulus) {
  assert(modulus.IsOdd());
  assert(modulus > BigInt(1));
  mod_limbs_ = modulus.limbs();
  n_ = mod_limbs_.size();
  n0_inv_ = ~InverseMod2_64(mod_limbs_[0]) + 1;  // -m^{-1} mod 2^64
  backend_ = &SelectMontBackend(n_, backend);

  // R = 2^(64 n); r2_ = R^2 mod m computed with plain BigInt arithmetic.
  BigInt r = BigInt(1) << (64 * n_);
  BigInt r2 = (r * r) % modulus_;
  r2_ = ToFixed(r2);
  one_mont_ = ToFixed(r % modulus_);
}

MontgomeryContext::Limbs MontgomeryContext::ToFixed(const BigInt& x) const {
  assert(!x.IsNegative());
  Limbs out = x.limbs();
  assert(out.size() <= n_);
  out.resize(n_, 0);
  return out;
}

void MontgomeryContext::MontMul(const Limbs& a, const Limbs& b,
                                Limbs* out) const {
  assert(out != &a && out != &b);
  out->resize(n_);
  backend_->mul(View(), a.data(), b.data(), out->data());
  backend_->mul_ops->Increment();
}

void MontgomeryContext::MontSqr(const Limbs& a, Limbs* out) const {
  assert(out != &a);
  out->resize(n_);
  backend_->sqr(View(), a.data(), out->data());
  backend_->sqr_ops->Increment();
}

void MontgomeryContext::MontMulBatch(size_t count, const uint64_t* const* a,
                                     const uint64_t* const* b,
                                     uint64_t* const* out) const {
  backend_->mul_batch(View(), count, a, b, out);
  backend_->mul_ops->Add(count);
}

BigInt MontgomeryContext::ToMontgomery(const BigInt& x) const {
  Limbs out;
  MontMul(ToFixed(x), r2_, &out);
  return BigInt::FromLimbs(std::move(out));
}

std::vector<BigInt> MontgomeryContext::ToMontgomeryBatch(
    std::span<const BigInt> xs) const {
  const size_t k = xs.size();
  std::vector<Limbs> fixed(k);
  std::vector<Limbs> outs(k);
  std::vector<const uint64_t*> a(k);
  std::vector<const uint64_t*> b(k);
  std::vector<uint64_t*> o(k);
  for (size_t i = 0; i < k; ++i) {
    fixed[i] = ToFixed(xs[i]);
    outs[i].resize(n_);
    a[i] = fixed[i].data();
    b[i] = r2_.data();  // every conversion multiplies by the same R^2
    o[i] = outs[i].data();
  }
  MontMulBatch(k, a.data(), b.data(), o.data());
  std::vector<BigInt> result;
  result.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    result.push_back(BigInt::FromLimbs(std::move(outs[i])));
  }
  return result;
}

BigInt MontgomeryContext::FromMontgomery(const BigInt& x) const {
  Limbs one(n_, 0);
  one[0] = 1;
  Limbs out;
  MontMul(ToFixed(x), one, &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::MulMontgomery(const BigInt& a,
                                        const BigInt& b) const {
  Limbs out;
  MontMul(ToFixed(a), ToFixed(b), &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::Sqr(const BigInt& a) const {
  Limbs out;
  MontSqr(ToFixed(a), &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::OneMontgomery() const {
  return BigInt::FromLimbs(Limbs(one_mont_));
}

BigInt MontgomeryContext::Exp(const BigInt& base, const BigInt& exp) const {
  assert(!exp.IsNegative());
  if (exp.IsZero()) return BigInt(1);  // modulus > 1 by construction

  const Limbs base_m = ToFixed(ToMontgomery(Mod(base, modulus_)));
  const size_t bits = exp.BitLength();
  Limbs acc;
  Limbs tmp;

  if (bits <= kSmallExpBits) {
    // Plain left-to-right square-and-multiply: no window table.
    acc = base_m;
    for (size_t b = bits - 1; b-- > 0;) {
      MontSqr(acc, &tmp);
      acc.swap(tmp);
      if (exp.Bit(b)) {
        MontMul(acc, base_m, &tmp);
        acc.swap(tmp);
      }
    }
    return FromMontgomery(BigInt::FromLimbs(std::move(acc)));
  }

  // Precompute table[i] = base^i in Montgomery form, i in [0, 16).
  constexpr size_t kWindow = 4;
  std::vector<Limbs> table(1 << kWindow);
  table[0] = one_mont_;
  table[1] = base_m;
  for (size_t i = 2; i < table.size(); ++i) {
    MontMul(table[i - 1], base_m, &table[i]);
  }

  const size_t windows = (bits + kWindow - 1) / kWindow;
  acc = one_mont_;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (size_t s = 0; s < kWindow; ++s) {
        MontSqr(acc, &tmp);
        acc.swap(tmp);
      }
    }
    const size_t idx = WindowDigit(exp, w, kWindow);
    if (idx != 0) {
      MontMul(acc, table[idx], &tmp);
      acc.swap(tmp);
    }
  }
  return FromMontgomery(BigInt::FromLimbs(std::move(acc)));
}

MontgomeryContext::Limbs MontgomeryContext::StrausMont(
    const std::vector<Limbs>& bases, const std::vector<const BigInt*>& exps,
    size_t max_bits, size_t window) const {
  // Straus/simultaneous exponentiation: per-base window tables, one
  // shared squaring ladder. Best for small batches, where Pippenger's
  // bucket overhead (~2^w multiplications per window) dominates.
  const size_t k = bases.size();
  const size_t table_size = size_t{1} << window;
  std::vector<std::vector<Limbs>> tables(k);
  for (size_t i = 0; i < k; ++i) {
    tables[i].resize(table_size);
    tables[i][1] = bases[i];
  }
  // Table level j depends only on level j-1 of the *same* base, so one
  // batched call per level runs the k independent chains side by side
  // (the adx backend interleaves row pairs through the carry chains).
  std::vector<const uint64_t*> prev(k);
  std::vector<const uint64_t*> base_ptrs(k);
  std::vector<uint64_t*> next(k);
  for (size_t i = 0; i < k; ++i) base_ptrs[i] = bases[i].data();
  for (size_t j = 2; j < table_size; ++j) {
    for (size_t i = 0; i < k; ++i) {
      tables[i][j].resize(n_);
      prev[i] = tables[i][j - 1].data();
      next[i] = tables[i][j].data();
    }
    MontMulBatch(k, prev.data(), base_ptrs.data(), next.data());
  }

  const size_t windows = (max_bits + window - 1) / window;
  Limbs acc = one_mont_;
  Limbs tmp;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (size_t s = 0; s < window; ++s) {
        MontSqr(acc, &tmp);
        acc.swap(tmp);
      }
    }
    for (size_t i = 0; i < k; ++i) {
      const size_t digit = WindowDigit(*exps[i], w, window);
      if (digit != 0) {
        MontMul(acc, tables[i][digit], &tmp);
        acc.swap(tmp);
      }
    }
  }
  return acc;
}

MontgomeryContext::Limbs MontgomeryContext::PippengerMont(
    const std::vector<Limbs>& bases, const std::vector<const BigInt*>& exps,
    size_t max_bits, size_t window) const {
  // Pippenger bucket method. Per window of the exponents (most
  // significant first): shift the accumulator by `window` squarings,
  // drop each base into the bucket named by its digit, then combine the
  // buckets. Writing the occupied digits in descending order
  // d_1 > ... > d_m (with d_{m+1} = 0) and S_i = prod_{j<=i} B_{d_j},
  //   prod_d B_d^d = prod_i S_i^{d_i - d_{i+1}},
  // so walking only the occupied buckets and raising the running
  // product to each gap costs ~2 mults per occupied bucket plus
  // log2(gap) squarings per hop — never a pass over all 2^w digits.
  const size_t k = bases.size();
  const size_t bucket_count = size_t{1} << window;
  const size_t windows = (max_bits + window - 1) / window;

  std::vector<Limbs> buckets(bucket_count);
  std::vector<bool> used(bucket_count, false);
  std::vector<size_t> digits;  // occupied digits of the current window
  digits.reserve(std::min(k, bucket_count));
  // Deferred second-and-later bucket inserts, batched per window:
  // (digit, base limbs) in arrival order.
  std::vector<std::pair<size_t, const uint64_t*>> pending;
  std::vector<uint8_t> in_group(bucket_count, 0);
  std::vector<const uint64_t*> group_a;
  std::vector<const uint64_t*> group_b;
  std::vector<uint64_t*> group_out;
  Limbs acc = one_mont_;
  Limbs tmp;

  // out = a^e in Montgomery form, e >= 1, by binary square-and-multiply.
  auto pow_uint = [this, &tmp](const Limbs& a, size_t e, Limbs* out) {
    *out = a;
    size_t top = 0;
    while ((e >> (top + 1)) != 0) ++top;
    for (size_t b = top; b-- > 0;) {
      MontSqr(*out, &tmp);
      out->swap(tmp);
      if ((e >> b) & 1) {
        MontMul(*out, a, &tmp);
        out->swap(tmp);
      }
    }
  };

  Limbs running;
  Limbs total;
  Limbs gap_pow;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (size_t s = 0; s < window; ++s) {
        MontSqr(acc, &tmp);
        acc.swap(tmp);
      }
    }

    for (size_t d : digits) used[d] = false;
    digits.clear();
    pending.clear();
    for (size_t i = 0; i < k; ++i) {
      const size_t digit = WindowDigit(*exps[i], w, window);
      if (digit == 0) continue;
      if (used[digit]) {
        pending.emplace_back(digit, bases[i].data());
      } else {
        buckets[digit] = bases[i];
        used[digit] = true;
        digits.push_back(digit);
      }
    }
    // Flush the deferred bucket multiplies in batches: inserts into
    // *distinct* buckets are independent products, so consecutive
    // pending entries run as one batched call until a digit repeats —
    // that boundary preserves the per-bucket multiply order, keeping
    // the result bit-identical to the serial insert loop.
    for (size_t start = 0; start < pending.size();) {
      size_t end = start;
      while (end < pending.size() && !in_group[pending[end].first]) {
        in_group[pending[end].first] = 1;
        ++end;
      }
      group_a.clear();
      group_b.clear();
      group_out.clear();
      for (size_t p = start; p < end; ++p) {
        const size_t d = pending[p].first;
        in_group[d] = 0;
        group_a.push_back(buckets[d].data());
        group_b.push_back(pending[p].second);
        group_out.push_back(buckets[d].data());
      }
      MontMulBatch(group_a.size(), group_a.data(), group_b.data(),
                   group_out.data());
      start = end;
    }
    if (digits.empty()) continue;
    std::sort(digits.begin(), digits.end(), std::greater<size_t>());

    bool have_total = false;
    for (size_t idx = 0; idx < digits.size(); ++idx) {
      const size_t d = digits[idx];
      if (idx == 0) {
        running = buckets[d];
      } else {
        MontMul(running, buckets[d], &tmp);
        running.swap(tmp);
      }
      const size_t next = idx + 1 < digits.size() ? digits[idx + 1] : 0;
      const size_t gap = d - next;
      if (!have_total) {
        pow_uint(running, gap, &total);
        have_total = true;
      } else if (gap == 1) {
        MontMul(total, running, &tmp);
        total.swap(tmp);
      } else {
        pow_uint(running, gap, &gap_pow);
        MontMul(total, gap_pow, &tmp);
        total.swap(tmp);
      }
    }
    MontMul(acc, total, &tmp);
    acc.swap(tmp);
  }
  return acc;
}

BigInt MontgomeryContext::MultiExpMontgomery(
    std::span<const BigInt> bases_mont, std::span<const BigInt> exponents,
    MultiExpSchedule schedule) const {
  assert(bases_mont.size() == exponents.size());
  std::vector<Limbs> bases;
  std::vector<const BigInt*> exps;
  bases.reserve(bases_mont.size());
  exps.reserve(exponents.size());
  size_t max_bits = 0;
  for (size_t i = 0; i < bases_mont.size(); ++i) {
    assert(!exponents[i].IsNegative());
    if (exponents[i].IsZero()) continue;  // c^0 = 1: no-op factor
    bases.push_back(ToFixed(bases_mont[i]));
    exps.push_back(&exponents[i]);
    max_bits = std::max(max_bits, exponents[i].BitLength());
  }
  if (exps.empty()) return OneMontgomery();

  const size_t k = exps.size();
  const auto [straus_w, straus_cost] = PickStrausWindow(k, max_bits);
  const auto [pip_w, pip_cost] = PickPippengerWindow(k, max_bits);
  const bool use_straus =
      schedule == MultiExpSchedule::kStraus ||
      (schedule == MultiExpSchedule::kAuto && straus_cost <= pip_cost);
  Limbs out = use_straus ? StrausMont(bases, exps, max_bits, straus_w)
                         : PippengerMont(bases, exps, max_bits, pip_w);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::MultiExp(std::span<const BigInt> bases,
                                   std::span<const BigInt> exponents,
                                   MultiExpSchedule schedule) const {
  assert(bases.size() == exponents.size());
  std::vector<BigInt> reduced;
  reduced.reserve(bases.size());
  for (const BigInt& base : bases) {
    reduced.push_back(Mod(base, modulus_));
  }
  const std::vector<BigInt> bases_mont = ToMontgomeryBatch(reduced);
  return FromMontgomery(MultiExpMontgomery(bases_mont, exponents, schedule));
}

}  // namespace ppstats
