#include "bigint/montgomery.h"

#include <cassert>

#include "bigint/modarith.h"

namespace ppstats {

namespace {
using uint128 = unsigned __int128;

// Inverse of odd x modulo 2^64 by Newton iteration; 6 steps double the
// correct low bits from 1 to 64.
uint64_t InverseMod2_64(uint64_t x) {
  assert(x & 1);
  uint64_t inv = x;  // correct to 3 bits (for odd x, x*x = 1 mod 8)
  for (int i = 0; i < 5; ++i) {
    inv *= 2 - x * inv;
  }
  assert(inv * x == 1);
  return inv;
}
}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : modulus_(modulus) {
  assert(modulus.IsOdd());
  assert(modulus > BigInt(1));
  mod_limbs_ = modulus.limbs();
  n_ = mod_limbs_.size();
  n0_inv_ = ~InverseMod2_64(mod_limbs_[0]) + 1;  // -m^{-1} mod 2^64

  // R = 2^(64 n); r2_ = R^2 mod m computed with plain BigInt arithmetic.
  BigInt r = BigInt(1) << (64 * n_);
  BigInt r2 = (r * r) % modulus_;
  r2_ = ToFixed(r2);
  one_mont_ = ToFixed(r % modulus_);
}

MontgomeryContext::Limbs MontgomeryContext::ToFixed(const BigInt& x) const {
  assert(!x.IsNegative());
  Limbs out = x.limbs();
  assert(out.size() <= n_);
  out.resize(n_, 0);
  return out;
}

void MontgomeryContext::MontMul(const Limbs& a, const Limbs& b,
                                Limbs* out) const {
  // CIOS (coarsely integrated operand scanning), Koc et al. 1996.
  const size_t n = n_;
  std::vector<uint64_t> t(n + 2, 0);
  for (size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 s = static_cast<uint128>(t[n]) + carry;
    t[n] = static_cast<uint64_t>(s);
    t[n + 1] = static_cast<uint64_t>(s >> 64);

    // t += (t[0] * n0') * m; then t >>= 64
    uint64_t m = t[0] * n0_inv_;
    uint128 cur = static_cast<uint128>(m) * mod_limbs_[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < n; ++j) {
      cur = static_cast<uint128>(m) * mod_limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    s = static_cast<uint128>(t[n]) + carry;
    t[n - 1] = static_cast<uint64_t>(s);
    t[n] = t[n + 1] + static_cast<uint64_t>(s >> 64);
    t[n + 1] = 0;
  }

  // Conditional final subtraction: t may be in [0, 2m).
  t.resize(n + 1);
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = n; i-- > 0;) {
      if (t[i] != mod_limbs_[i]) {
        ge = t[i] > mod_limbs_[i];
        break;
      }
    }
  }
  out->assign(t.begin(), t.begin() + n);
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128 d = static_cast<uint128>((*out)[i]) - mod_limbs_[i] - borrow;
      (*out)[i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) ? 1 : 0;
    }
  }
}

BigInt MontgomeryContext::ToMontgomery(const BigInt& x) const {
  Limbs out;
  MontMul(ToFixed(x), r2_, &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::FromMontgomery(const BigInt& x) const {
  Limbs one(n_, 0);
  one[0] = 1;
  Limbs out;
  MontMul(ToFixed(x), one, &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::MulMontgomery(const BigInt& a,
                                        const BigInt& b) const {
  Limbs out;
  MontMul(ToFixed(a), ToFixed(b), &out);
  return BigInt::FromLimbs(std::move(out));
}

BigInt MontgomeryContext::Exp(const BigInt& base, const BigInt& exp) const {
  assert(!exp.IsNegative());
  if (exp.IsZero()) return BigInt(1);  // modulus > 1 by construction

  // Precompute table[i] = base^i in Montgomery form, i in [0, 16).
  constexpr size_t kWindow = 4;
  Limbs base_m = ToFixed(ToMontgomery(Mod(base, modulus_)));
  std::vector<Limbs> table(1 << kWindow);
  table[0] = one_mont_;
  table[1] = base_m;
  for (size_t i = 2; i < table.size(); ++i) {
    MontMul(table[i - 1], base_m, &table[i]);
  }

  const size_t bits = exp.BitLength();
  const size_t windows = (bits + kWindow - 1) / kWindow;
  Limbs acc = one_mont_;
  Limbs tmp;
  for (size_t w = windows; w-- > 0;) {
    if (w != windows - 1) {
      for (size_t s = 0; s < kWindow; ++s) {
        MontMul(acc, acc, &tmp);
        acc.swap(tmp);
      }
    }
    size_t idx = 0;
    for (size_t b = 0; b < kWindow; ++b) {
      size_t bit = w * kWindow + b;
      if (bit < bits && exp.Bit(bit)) idx |= (1u << b);
    }
    if (idx != 0) {
      MontMul(acc, table[idx], &tmp);
      acc.swap(tmp);
    }
  }
  return FromMontgomery(BigInt::FromLimbs(std::move(acc)));
}

}  // namespace ppstats
