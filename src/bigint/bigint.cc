#include "bigint/bigint.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <ostream>

namespace ppstats {

namespace {

using uint128 = unsigned __int128;

constexpr size_t kKaratsubaThreshold = 24;  // limbs

// 10^19 is the largest power of ten below 2^64.
constexpr uint64_t kDecChunkBase = 10000000000000000000ULL;
constexpr int kDecChunkDigits = 19;

}  // namespace

void BigInt::InitUnsigned(uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

void BigInt::InitSigned(int64_t value) {
  if (value < 0) {
    negative_ = true;
    // Avoid UB on INT64_MIN.
    limbs_.push_back(static_cast<uint64_t>(-(value + 1)) + 1);
  } else if (value > 0) {
    limbs_.push_back(static_cast<uint64_t>(value));
  }
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::FromLimbs(std::vector<uint64_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) +
         (64 - static_cast<size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

// --- magnitude primitives ---------------------------------------------

int BigInt::CompareMag(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  return CompareMag(a.limbs_, b.limbs_);
}

std::vector<uint64_t> BigInt::AddMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  const std::vector<uint64_t>& big = a.size() >= b.size() ? a : b;
  const std::vector<uint64_t>& small = a.size() >= b.size() ? b : a;
  std::vector<uint64_t> out(big.size() + 1, 0);
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < small.size(); ++i) {
    uint128 s = static_cast<uint128>(big[i]) + small[i] + carry;
    out[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  for (; i < big.size(); ++i) {
    uint128 s = static_cast<uint128>(big[i]) + carry;
    out[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  out[i] = carry;
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::SubMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  assert(CompareMag(a, b) >= 0);
  std::vector<uint64_t> out(a.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bi = i < b.size() ? b[i] : 0;
    uint128 d = static_cast<uint128>(a[i]) - bi - borrow;
    out[i] = static_cast<uint64_t>(d);
    borrow = (d >> 64) ? 1 : 0;  // underflow wraps; high bits set on borrow
  }
  assert(borrow == 0);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulSchoolbook(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint64_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    if (ai == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      uint128 cur = static_cast<uint128>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + b.size()] += carry;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulKaratsuba(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  size_t n = std::max(a.size(), b.size());
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  size_t half = n / 2;
  auto split = [half](const std::vector<uint64_t>& v)
      -> std::pair<std::vector<uint64_t>, std::vector<uint64_t>> {
    if (v.size() <= half) return {v, {}};
    std::vector<uint64_t> lo(v.begin(), v.begin() + half);
    std::vector<uint64_t> hi(v.begin() + half, v.end());
    while (!lo.empty() && lo.back() == 0) lo.pop_back();
    return {lo, hi};
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);

  std::vector<uint64_t> z0 = MulKaratsuba(a0, b0);
  std::vector<uint64_t> z2 = MulKaratsuba(a1, b1);
  std::vector<uint64_t> sa = AddMag(a0, a1);
  std::vector<uint64_t> sb = AddMag(b0, b1);
  std::vector<uint64_t> z1 = MulKaratsuba(sa, sb);
  z1 = SubMag(z1, AddMag(z0, z2));

  // result = z2 << (2*half) + z1 << half + z0
  std::vector<uint64_t> out(std::max({z0.size(), z1.size() + half,
                                      z2.size() + 2 * half}) + 1, 0);
  auto add_at = [&out](const std::vector<uint64_t>& v, size_t off) {
    uint64_t carry = 0;
    size_t i = 0;
    for (; i < v.size(); ++i) {
      uint128 s = static_cast<uint128>(out[off + i]) + v[i] + carry;
      out[off + i] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
    for (; carry != 0; ++i) {
      uint128 s = static_cast<uint128>(out[off + i]) + carry;
      out[off + i] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
  };
  add_at(z0, 0);
  add_at(z1, half);
  add_at(z2, 2 * half);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulMag(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  return MulKaratsuba(a, b);
}

std::pair<std::vector<uint64_t>, std::vector<uint64_t>> BigInt::DivRemMag(
    const std::vector<uint64_t>& num, const std::vector<uint64_t>& den) {
  assert(!den.empty());
  if (CompareMag(num, den) < 0) return {{}, num};

  // Single-limb divisor: straightforward 128/64 division.
  if (den.size() == 1) {
    uint64_t d = den[0];
    std::vector<uint64_t> q(num.size(), 0);
    uint64_t rem = 0;
    for (size_t i = num.size(); i-- > 0;) {
      uint128 cur = (static_cast<uint128>(rem) << 64) | num[i];
      q[i] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    while (!q.empty() && q.back() == 0) q.pop_back();
    std::vector<uint64_t> r;
    if (rem != 0) r.push_back(rem);
    return {q, r};
  }

  // Knuth TAoCP vol 2, Algorithm D.
  const size_t n = den.size();
  const size_t m = num.size() - n;
  const int shift = std::countl_zero(den.back());

  // Normalized divisor vn and dividend un (un has one extra limb).
  std::vector<uint64_t> vn(n);
  for (size_t i = n; i-- > 1;) {
    vn[i] = shift == 0 ? den[i]
                       : (den[i] << shift) | (den[i - 1] >> (64 - shift));
  }
  vn[0] = den[0] << shift;

  std::vector<uint64_t> un(num.size() + 1);
  un[num.size()] =
      shift == 0 ? 0 : num.back() >> (64 - shift);
  for (size_t i = num.size(); i-- > 1;) {
    un[i] = shift == 0 ? num[i]
                       : (num[i] << shift) | (num[i - 1] >> (64 - shift));
  }
  un[0] = num[0] << shift;

  std::vector<uint64_t> q(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    uint128 numerator = (static_cast<uint128>(un[j + n]) << 64) | un[j + n - 1];
    uint128 qhat = numerator / vn[n - 1];
    uint128 rhat = numerator % vn[n - 1];

    while (qhat >= (static_cast<uint128>(1) << 64) ||
           qhat * vn[n - 2] >
               ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= (static_cast<uint128>(1) << 64)) break;
    }

    // Multiply and subtract: un[j..j+n] -= qhat * vn.
    uint64_t qh = static_cast<uint64_t>(qhat);
    uint64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128 p = static_cast<uint128>(qh) * vn[i] + carry;
      carry = static_cast<uint64_t>(p >> 64);
      uint64_t plo = static_cast<uint64_t>(p);
      uint128 d = static_cast<uint128>(un[j + i]) - plo - borrow;
      un[j + i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) ? 1 : 0;
    }
    uint128 d = static_cast<uint128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<uint64_t>(d);
    bool negative = (d >> 64) != 0;

    q[j] = qh;
    if (negative) {
      // Add back (rare branch, probability ~2/2^64).
      --q[j];
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint128 s = static_cast<uint128>(un[j + i]) + vn[i] + c;
        un[j + i] = static_cast<uint64_t>(s);
        c = static_cast<uint64_t>(s >> 64);
      }
      un[j + n] += c;
    }
  }

  // Denormalize remainder.
  std::vector<uint64_t> r(n);
  for (size_t i = 0; i < n - 1; ++i) {
    r[i] = shift == 0 ? un[i] : (un[i] >> shift) | (un[i + 1] << (64 - shift));
  }
  r[n - 1] = un[n - 1] >> shift;

  while (!q.empty() && q.back() == 0) q.pop_back();
  while (!r.empty() && r.back() == 0) r.pop_back();
  return {q, r};
}

// --- signed arithmetic -------------------------------------------------

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.negative_ == b.negative_) {
    out.limbs_ = BigInt::AddMag(a.limbs_, b.limbs_);
    out.negative_ = a.negative_;
  } else {
    int cmp = BigInt::CompareMag(a.limbs_, b.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = BigInt::SubMag(a.limbs_, b.limbs_);
      out.negative_ = a.negative_;
    } else {
      out.limbs_ = BigInt::SubMag(b.limbs_, a.limbs_);
      out.negative_ = b.negative_;
    }
  }
  out.Normalize();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_ = BigInt::MulMag(a.limbs_, b.limbs_);
  out.negative_ = !out.limbs_.empty() && (a.negative_ != b.negative_);
  return out;
}

Result<std::pair<BigInt, BigInt>> BigInt::DivRem(const BigInt& num,
                                                 const BigInt& den) {
  if (den.IsZero()) return Status::InvalidArgument("division by zero");
  auto [qm, rm] = DivRemMag(num.limbs_, den.limbs_);
  BigInt q, r;
  q.limbs_ = std::move(qm);
  r.limbs_ = std::move(rm);
  q.negative_ = !q.limbs_.empty() && (num.negative_ != den.negative_);
  r.negative_ = !r.limbs_.empty() && num.negative_;
  return std::make_pair(std::move(q), std::move(r));
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  auto res = BigInt::DivRem(a, b);
  assert(res.ok() && "division by zero");
  return std::move(res).ValueOrDie().first;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  auto res = BigInt::DivRem(a, b);
  assert(res.ok() && "division by zero");
  return std::move(res).ValueOrDie().second;
}

BigInt operator<<(const BigInt& a, size_t bits) {
  if (a.IsZero() || bits == 0) {
    BigInt out = a;
    return out;
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  std::vector<uint64_t> out(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? a.limbs_[i]
                                          : a.limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
    }
  }
  BigInt r;
  r.limbs_ = std::move(out);
  r.negative_ = a.negative_;
  r.Normalize();
  return r;
}

BigInt operator>>(const BigInt& a, size_t bits) {
  if (a.IsZero() || bits == 0) return a;
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= a.limbs_.size()) return BigInt();
  std::vector<uint64_t> out(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = bit_shift == 0 ? a.limbs_[i + limb_shift]
                            : a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      out[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  BigInt r;
  r.limbs_ = std::move(out);
  r.negative_ = a.negative_;
  r.Normalize();
  return r;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
  int cmp = BigInt::CompareMag(a.limbs_, b.limbs_);
  if (a.negative_) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

// --- conversions -------------------------------------------------------

Result<BigInt> BigInt::FromDecimal(std::string_view s) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) return Status::InvalidArgument("empty decimal string");
  BigInt out;
  size_t i = 0;
  while (i < s.size()) {
    size_t take = std::min<size_t>(kDecChunkDigits, s.size() - i);
    uint64_t chunk = 0;
    uint64_t scale = 1;
    for (size_t j = 0; j < take; ++j) {
      char c = s[i + j];
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("non-digit in decimal string");
      }
      chunk = chunk * 10 + static_cast<uint64_t>(c - '0');
      scale *= 10;
    }
    out = out * BigInt(scale) + BigInt(chunk);
    i += take;
  }
  if (negative && !out.IsZero()) out.negative_ = true;
  return out;
}

Result<BigInt> BigInt::FromHexString(std::string_view s) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
  }
  if (s.empty()) return Status::InvalidArgument("empty hex string");
  BigInt out;
  std::vector<uint64_t> limbs((s.size() + 15) / 16, 0);
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[s.size() - 1 - i];
    uint64_t v;
    if (c >= '0' && c <= '9') v = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<uint64_t>(c - 'A' + 10);
    else return Status::InvalidArgument("non-hex character");
    limbs[i / 16] |= v << (4 * (i % 16));
  }
  out.limbs_ = std::move(limbs);
  out.Normalize();
  if (negative && !out.IsZero()) out.negative_ = true;
  return out;
}

BigInt BigInt::FromBytes(BytesView bytes) {
  BigInt out;
  std::vector<uint64_t> limbs((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes are big-endian; byte i has weight 8*(size-1-i) bits.
    size_t bitpos = 8 * (bytes.size() - 1 - i);
    limbs[bitpos / 64] |= static_cast<uint64_t>(bytes[i]) << (bitpos % 64);
  }
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  std::vector<uint64_t> chunks;
  std::vector<uint64_t> cur = limbs_;
  std::vector<uint64_t> base = {kDecChunkBase};
  while (!cur.empty()) {
    auto [q, r] = DivRemMag(cur, base);
    chunks.push_back(r.empty() ? 0 : r[0]);
    cur = std::move(q);
  }
  std::string out;
  if (negative_) out.push_back('-');
  out += std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(kDecChunkDigits - part.size(), '0');
    out += part;
  }
  return out;
}

std::string BigInt::ToHexString() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  if (negative_) out.push_back('-');
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      uint64_t v = (limbs_[i] >> (4 * nib)) & 0xF;
      if (leading && v == 0) continue;
      leading = false;
      out.push_back(kDigits[v]);
    }
  }
  return out;
}

Bytes BigInt::ToBytes(size_t min_width) const {
  size_t nbytes = (BitLength() + 7) / 8;
  if (nbytes == 0) nbytes = 1;
  if (nbytes < min_width) nbytes = min_width;
  Bytes out(nbytes, 0);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t bitpos = 8 * i;  // weight of out[nbytes-1-i]
    if (bitpos / 64 < limbs_.size()) {
      out[nbytes - 1 - i] =
          static_cast<uint8_t>(limbs_[bitpos / 64] >> (bitpos % 64));
    }
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToDecimal();
}

}  // namespace ppstats
