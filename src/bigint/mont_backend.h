// Pluggable Montgomery-multiplication backends.
//
// Every homomorphic fold bottoms out in the Montgomery product of two
// n-limb operands, so MontgomeryContext routes its inner loops through
// one of three interchangeable kernels:
//
//   generic  variable-width CIOS multiply / SOS squaring over a
//            per-thread scratch buffer. Works for every odd modulus and
//            is the reference the other backends are differentially
//            tested against.
//   fixed    width-specialized CIOS with the limb count baked in as a
//            template parameter and scratch on the stack — zero heap
//            traffic and a constant-trip inner loop the compiler can
//            unroll. Covers the widths Paillier / Damgård–Jurik
//            actually produce (4..64 limbs).
//   adx      x86-64 kernel built on MULX with dual ADCX/ADOX carry
//            chains (two independent carry flags, so the two additions
//            per limb pipeline instead of serializing). Requires BMI2 +
//            ADX, probed once at startup.
//
// All kernels produce the same canonical residue bit for bit: the
// Montgomery product of canonical inputs is a unique value < m, so the
// choice of backend can never change a protocol transcript.
//
// Selection is automatic (best supported backend for the width) and can
// be overridden with PPSTATS_FORCE_BACKEND=generic|fixed|adx for
// benchmarks, differential tests, and fleet debugging.

#ifndef PPSTATS_BIGINT_MONT_BACKEND_H_
#define PPSTATS_BIGINT_MONT_BACKEND_H_

#include <cstddef>
#include <cstdint>

namespace ppstats {

namespace obs {
class Counter;
}  // namespace obs

/// Backend identities. kAuto is a *request* (resolve per the dispatch
/// order, honoring PPSTATS_FORCE_BACKEND); a resolved context always
/// reports one of the concrete kinds.
enum class MontBackendKind {
  kAuto,     ///< dispatcher's choice (env override, then best supported)
  kGeneric,  ///< variable-width CIOS, per-thread scratch
  kFixed,    ///< width-templated CIOS, stack scratch
  kAdx,      ///< x86-64 MULX/ADCX/ADOX dual carry chains
};

/// Stable lowercase name ("auto", "generic", "fixed", "adx").
const char* MontBackendKindName(MontBackendKind kind);

/// The modulus constants a kernel needs, borrowed from the owning
/// MontgomeryContext: n limbs of m plus n0' = -m^{-1} mod 2^64.
struct MontModulusView {
  const uint64_t* mod;
  size_t n;
  uint64_t n0_inv;
};

/// One backend's entry points. All operands are n-limb little-endian
/// arrays; `out` is written only after the inputs are fully consumed,
/// so an output may alias its own operation's inputs. Within mul_batch
/// the products are independent: an output must not alias another
/// product's input (callers batch distinct accumulators only).
struct MontBackendOps {
  MontBackendKind kind;
  const char* name;
  void (*mul)(const MontModulusView& m, const uint64_t* a, const uint64_t* b,
              uint64_t* out);
  void (*sqr)(const MontModulusView& m, const uint64_t* a, uint64_t* out);
  void (*mul_batch)(const MontModulusView& m, size_t count,
                    const uint64_t* const* a, const uint64_t* const* b,
                    uint64_t* const* out);
  /// Per-backend op counters (mont.mul_ops.<name> / mont.sqr_ops.<name>
  /// in the global registry), cached here so the hot path never takes
  /// the registry lock.
  obs::Counter* mul_ops;
  obs::Counter* sqr_ops;
};

/// CPU features relevant to backend dispatch, probed once per process.
struct MontCpuFeatures {
  bool bmi2 = false;  ///< MULX
  bool adx = false;   ///< ADCX/ADOX
};
const MontCpuFeatures& DetectMontCpuFeatures();

/// True when `kind` can serve n_limbs-limb operands on this host:
/// generic always; fixed for the specialized widths {4, 8, 16, 24, 32,
/// 48, 64}; adx on x86-64 with BMI2+ADX for any positive multiple of 4.
bool MontBackendSupports(MontBackendKind kind, size_t n_limbs);

/// Resolves a backend for n_limbs-limb moduli. A kAuto request first
/// honors PPSTATS_FORCE_BACKEND (values generic / fixed / adx, with
/// "intrinsics" accepted as an alias for adx), then picks the best
/// supported kind in the order adx > fixed > generic. A concrete
/// request (or override) that this host/width cannot serve falls back
/// down the same order, so a forced backend can never produce a context
/// that fails — only a slower one.
const MontBackendOps& SelectMontBackend(
    size_t n_limbs, MontBackendKind requested = MontBackendKind::kAuto);

}  // namespace ppstats

#endif  // PPSTATS_BIGINT_MONT_BACKEND_H_
