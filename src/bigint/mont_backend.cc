#include "bigint/mont_backend.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"

// The adx kernel is inline asm (GCC 12 does not emit dual carry chains
// from the _addcarryx_u64 intrinsics), assembled unconditionally on
// x86-64 — no -madx compile flags needed — and gated at runtime by the
// CPUID probe in DetectMontCpuFeatures().
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PPSTATS_MONT_HAVE_ADX 1
#else
#define PPSTATS_MONT_HAVE_ADX 0
#endif

namespace ppstats {

namespace {

using uint128 = unsigned __int128;

// ---------------------------------------------------------------------
// Shared pieces.

// Per-thread scratch for the variable-width kernels. MontgomeryContext
// objects are shared across ThreadPool workers (SlicedFoldMontgomery
// hands one context to every slice), so the scratch that replaced the
// old per-call std::vector allocation must be thread-local rather than
// context-owned — each worker grows its own buffer once and the
// kernels stay lock-free with nothing for the thread-safety analysis
// to guard.
uint64_t* MontScratch(size_t limbs) {
  thread_local std::vector<uint64_t> scratch;
  if (scratch.size() < limbs) scratch.resize(limbs);
  return scratch.data();
}

// Final conditional subtraction: `t` holds n limbs plus an overflow
// limb t[n], together a value in [0, 2m); writes the canonical residue
// to `out`. out may alias any kernel input — by this point the inputs
// are dead.
void ReduceOnceRaw(const uint64_t* t, const uint64_t* mod, size_t n,
                   uint64_t* out) {
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = n; i-- > 0;) {
      if (t[i] != mod[i]) {
        ge = t[i] > mod[i];
        break;
      }
    }
  }
  if (!ge) {
    std::copy(t, t + n, out);
    return;
  }
  uint64_t borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    uint128 d = static_cast<uint128>(t[i]) - mod[i] - borrow;
    out[i] = static_cast<uint64_t>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
}

// ---------------------------------------------------------------------
// Generic backend: the CIOS multiply and SOS squaring formerly inside
// MontgomeryContext, on raw limb pointers with per-thread scratch.

void GenericMontMul(const MontModulusView& mv, const uint64_t* a,
                    const uint64_t* b, uint64_t* out) {
  // CIOS (coarsely integrated operand scanning), Koc et al. 1996.
  const size_t n = mv.n;
  const uint64_t* mod = mv.mod;
  uint64_t* t = MontScratch(n + 2);
  std::fill(t, t + n + 2, 0);
  for (size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 s = static_cast<uint128>(t[n]) + carry;
    t[n] = static_cast<uint64_t>(s);
    t[n + 1] = static_cast<uint64_t>(s >> 64);

    // t += (t[0] * n0') * m; then t >>= 64
    uint64_t m = t[0] * mv.n0_inv;
    uint128 cur = static_cast<uint128>(m) * mod[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < n; ++j) {
      cur = static_cast<uint128>(m) * mod[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    s = static_cast<uint128>(t[n]) + carry;
    t[n - 1] = static_cast<uint64_t>(s);
    t[n] = t[n + 1] + static_cast<uint64_t>(s >> 64);
    t[n + 1] = 0;
  }
  ReduceOnceRaw(t, mod, n, out);
}

void GenericMontSqr(const MontModulusView& mv, const uint64_t* a,
                    uint64_t* out) {
  // SOS (separated operand scanning) squaring: the product phase
  // computes only the cross terms a[i]*a[j] for i < j (half the
  // multiplications of a general product), doubles them, and adds the
  // diagonal squares; the reduction phase is the standard Montgomery
  // sweep. Net ~1.3x faster than GenericMontMul(a, a).
  const size_t n = mv.n;
  const uint64_t* mod = mv.mod;
  uint64_t* t = MontScratch(2 * n + 1);
  std::fill(t, t + 2 * n + 1, 0);

  // Upper triangle: t += a[i] * a[j] for j > i.
  for (size_t i = 0; i + 1 < n; ++i) {
    uint64_t carry = 0;
    for (size_t j = i + 1; j < n; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    t[i + n] = carry;  // position i+n is untouched by earlier rows
  }

  // Double the cross terms: t <<= 1 (cannot overflow 2n limbs since
  // 2 * triangle <= a^2 - sum a[i]^2 < m^2).
  uint64_t carry = 0;
  for (size_t i = 0; i < 2 * n; ++i) {
    const uint64_t hi = t[i] >> 63;
    t[i] = (t[i] << 1) | carry;
    carry = hi;
  }

  // Add the diagonal squares a[i]^2 at bit offset 128 i.
  carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint128 sq = static_cast<uint128>(a[i]) * a[i];
    uint128 lo = static_cast<uint128>(t[2 * i]) +
                 static_cast<uint64_t>(sq) + carry;
    t[2 * i] = static_cast<uint64_t>(lo);
    uint128 hi = static_cast<uint128>(t[2 * i + 1]) +
                 static_cast<uint64_t>(sq >> 64) +
                 static_cast<uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<uint64_t>(hi);
    carry = static_cast<uint64_t>(hi >> 64);
  }
  t[2 * n] = carry;

  // Montgomery reduction: for each low limb, cancel it with a multiple
  // of m and carry into the high half.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t m = t[i] * mv.n0_inv;
    uint64_t c = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(m) * mod[j] + t[i + j] + c;
      t[i + j] = static_cast<uint64_t>(cur);
      c = static_cast<uint64_t>(cur >> 64);
    }
    for (size_t k = i + n; c != 0 && k <= 2 * n; ++k) {
      uint128 cur = static_cast<uint128>(t[k]) + c;
      t[k] = static_cast<uint64_t>(cur);
      c = static_cast<uint64_t>(cur >> 64);
    }
  }
  ReduceOnceRaw(t + n, mod, n, out);
}

void GenericMontMulBatch(const MontModulusView& mv, size_t count,
                         const uint64_t* const* a, const uint64_t* const* b,
                         uint64_t* const* out) {
  for (size_t i = 0; i < count; ++i) GenericMontMul(mv, a[i], b[i], out[i]);
}

// ---------------------------------------------------------------------
// Fixed-width backend: the same CIOS recurrence with the limb count a
// compile-time constant. The scratch lives on the stack (zero heap
// traffic per multiply) and every inner loop has a constant trip count
// the compiler unrolls and schedules flat.

template <size_t N>
void FixedMontMul(const MontModulusView& mv, const uint64_t* a,
                  const uint64_t* b, uint64_t* out) {
  assert(mv.n == N);
  const uint64_t* mod = mv.mod;
  uint64_t t[N + 2] = {};
  for (size_t i = 0; i < N; ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < N; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 s = static_cast<uint128>(t[N]) + carry;
    t[N] = static_cast<uint64_t>(s);
    t[N + 1] = static_cast<uint64_t>(s >> 64);

    const uint64_t m = t[0] * mv.n0_inv;
    uint128 cur = static_cast<uint128>(m) * mod[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < N; ++j) {
      cur = static_cast<uint128>(m) * mod[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    s = static_cast<uint128>(t[N]) + carry;
    t[N - 1] = static_cast<uint64_t>(s);
    t[N] = t[N + 1] + static_cast<uint64_t>(s >> 64);
    t[N + 1] = 0;
  }
  ReduceOnceRaw(t, mod, N, out);
}

template <size_t N>
void FixedMontSqr(const MontModulusView& mv, const uint64_t* a,
                  uint64_t* out) {
  // The width-specialized multiply already beats the generic triangle
  // squaring (carry-chain latency, not multiplication count, is the
  // bottleneck at these widths), so squaring is just mul(a, a).
  FixedMontMul<N>(mv, a, a, out);
}

template <size_t N>
void FixedMontMulBatch(const MontModulusView& mv, size_t count,
                       const uint64_t* const* a, const uint64_t* const* b,
                       uint64_t* const* out) {
  for (size_t i = 0; i < count; ++i) FixedMontMul<N>(mv, a[i], b[i], out[i]);
}

// ---------------------------------------------------------------------
// adx backend (x86-64): MULX with dual ADCX/ADOX carry chains.

#if PPSTATS_MONT_HAVE_ADX

// t[0..n] += x * s[0..n-1]; returns the carry destined for t[n+1].
// n must be a positive multiple of 4. The even products ride the CF
// (adcx) chain and the odd halves the OF (adox) chain, so the two
// per-limb additions issue in parallel instead of serializing on one
// flag. Loop control must not clobber either flag mid-chain: lea and
// jrcxz preserve both (dec would clobber OF), with the count pinned to
// rcx for jrcxz.
uint64_t MulAccRowAdx(uint64_t* t, const uint64_t* s, uint64_t x, size_t n) {
  uint64_t acc;
  uint64_t c_out;
  size_t count = n / 4;
  __asm__ volatile(
      "xorl %%r11d, %%r11d\n\t"  // clear CF and OF
      "movq (%[t]), %[acc]\n\t"
      "1:\n\t"
      "mulxq (%[s]), %%r8, %%r9\n\t"
      "adcxq %%r8, %[acc]\n\t"
      "movq %[acc], (%[t])\n\t"
      "movq 8(%[t]), %[acc]\n\t"
      "adoxq %%r9, %[acc]\n\t"
      "mulxq 8(%[s]), %%r8, %%r9\n\t"
      "adcxq %%r8, %[acc]\n\t"
      "movq %[acc], 8(%[t])\n\t"
      "movq 16(%[t]), %[acc]\n\t"
      "adoxq %%r9, %[acc]\n\t"
      "mulxq 16(%[s]), %%r8, %%r9\n\t"
      "adcxq %%r8, %[acc]\n\t"
      "movq %[acc], 16(%[t])\n\t"
      "movq 24(%[t]), %[acc]\n\t"
      "adoxq %%r9, %[acc]\n\t"
      "mulxq 24(%[s]), %%r8, %%r9\n\t"
      "adcxq %%r8, %[acc]\n\t"
      "movq %[acc], 24(%[t])\n\t"
      "movq 32(%[t]), %[acc]\n\t"
      "adoxq %%r9, %[acc]\n\t"
      "leaq 32(%[t]), %[t]\n\t"
      "leaq 32(%[s]), %[s]\n\t"
      "leaq -1(%[count]), %[count]\n\t"
      "jrcxz 2f\n\t"
      "jmp 1b\n\t"
      "2:\n\t"
      // Tail: the last adox's OF is a carry *out of* position n (it
      // belongs at t[n+1], not in acc), so capture it before folding
      // CF into acc. setc/seto preserve both flags.
      "movl $0, %%r8d\n\t"
      "movl $0, %%r9d\n\t"
      "seto %%r9b\n\t"
      "adcxq %%r8, %[acc]\n\t"
      "setc %%r8b\n\t"
      "movq %[acc], (%[t])\n\t"
      "leaq (%%r8, %%r9), %[c_out]\n\t"
      : [t] "+r"(t), [s] "+r"(s), [acc] "=&r"(acc), [c_out] "=&r"(c_out),
        [count] "+c"(count)
      : "d"(x)
      : "r8", "r9", "r11", "cc", "memory");
  return c_out;
}

// SOS Montgomery multiply on the adx row primitive: full 2n-limb
// product, then n reduction rows. `t` is caller scratch of 2n+2 zeroed
// limbs; the reduced (pre-subtraction) value lands at t[n..2n].
void AdxMontMulInto(const MontModulusView& mv, const uint64_t* a,
                    const uint64_t* b, uint64_t* t) {
  const size_t n = mv.n;
  for (size_t i = 0; i < n; ++i) {
    // Rows land in order, so t[i+n+1] is still zero: assign, not add.
    t[i + n + 1] = MulAccRowAdx(t + i, b, a[i], n);
  }
  for (size_t i = 0; i < n; ++i) {
    const uint64_t m = t[i] * mv.n0_inv;
    uint64_t c = MulAccRowAdx(t + i, mv.mod, m, n);
    for (size_t k = i + n + 1; c != 0; ++k) {
      assert(k < 2 * n + 2);
      const uint64_t prev = t[k];
      t[k] = prev + c;
      c = t[k] < prev ? 1 : 0;
    }
  }
  assert(t[2 * n + 1] == 0);  // result < 2m fits n+1 limbs at t[n..2n]
}

void AdxMontMul(const MontModulusView& mv, const uint64_t* a,
                const uint64_t* b, uint64_t* out) {
  const size_t n = mv.n;
  uint64_t* t = MontScratch(2 * n + 2);
  std::fill(t, t + 2 * n + 2, 0);
  AdxMontMulInto(mv, a, b, t);
  ReduceOnceRaw(t + n, mv.mod, n, out);
}

void AdxMontSqr(const MontModulusView& mv, const uint64_t* a, uint64_t* out) {
  AdxMontMul(mv, a, a, out);
}

// Two independent products with their rows interleaved: while product
// 0's carry chain for row i retires, product 1's row i issues, keeping
// the multiplier ports fed across the chain-latency bubbles. Both
// outputs are written only after both products complete.
void AdxMontMulPair(const MontModulusView& mv, const uint64_t* a0,
                    const uint64_t* b0, uint64_t* out0, const uint64_t* a1,
                    const uint64_t* b1, uint64_t* out1) {
  const size_t n = mv.n;
  const size_t width = 2 * n + 2;
  uint64_t* t0 = MontScratch(2 * width);
  uint64_t* t1 = t0 + width;
  std::fill(t0, t0 + 2 * width, 0);
  for (size_t i = 0; i < n; ++i) {
    t0[i + n + 1] = MulAccRowAdx(t0 + i, b0, a0[i], n);
    t1[i + n + 1] = MulAccRowAdx(t1 + i, b1, a1[i], n);
  }
  for (size_t i = 0; i < n; ++i) {
    const uint64_t m0 = t0[i] * mv.n0_inv;
    uint64_t c0 = MulAccRowAdx(t0 + i, mv.mod, m0, n);
    const uint64_t m1 = t1[i] * mv.n0_inv;
    uint64_t c1 = MulAccRowAdx(t1 + i, mv.mod, m1, n);
    for (size_t k = i + n + 1; c0 != 0; ++k) {
      const uint64_t prev = t0[k];
      t0[k] = prev + c0;
      c0 = t0[k] < prev ? 1 : 0;
    }
    for (size_t k = i + n + 1; c1 != 0; ++k) {
      const uint64_t prev = t1[k];
      t1[k] = prev + c1;
      c1 = t1[k] < prev ? 1 : 0;
    }
  }
  ReduceOnceRaw(t0 + n, mv.mod, n, out0);
  ReduceOnceRaw(t1 + n, mv.mod, n, out1);
}

void AdxMontMulBatch(const MontModulusView& mv, size_t count,
                     const uint64_t* const* a, const uint64_t* const* b,
                     uint64_t* const* out) {
  size_t i = 0;
  for (; i + 1 < count; i += 2) {
    AdxMontMulPair(mv, a[i], b[i], out[i], a[i + 1], b[i + 1], out[i + 1]);
  }
  if (i < count) AdxMontMul(mv, a[i], b[i], out[i]);
}

#endif  // PPSTATS_MONT_HAVE_ADX

// ---------------------------------------------------------------------
// Registry and dispatch.

const MontBackendOps& GenericOps() {
  static const MontBackendOps ops = {
      MontBackendKind::kGeneric,
      "generic",
      GenericMontMul,
      GenericMontSqr,
      GenericMontMulBatch,
      obs::MetricRegistry::Global().GetCounter("mont.mul_ops.generic"),
      obs::MetricRegistry::Global().GetCounter("mont.sqr_ops.generic")};
  return ops;
}

template <size_t N>
const MontBackendOps& FixedOps() {
  static const MontBackendOps ops = {
      MontBackendKind::kFixed,
      "fixed",
      FixedMontMul<N>,
      FixedMontSqr<N>,
      FixedMontMulBatch<N>,
      obs::MetricRegistry::Global().GetCounter("mont.mul_ops.fixed"),
      obs::MetricRegistry::Global().GetCounter("mont.sqr_ops.fixed")};
  return ops;
}

// The widths Paillier and Damgård–Jurik contexts actually instantiate:
// mod-n^2 / mod-p^2 / mod-n^(s+1) moduli for 512..2048-bit keys.
const MontBackendOps* FixedOpsFor(size_t n_limbs) {
  switch (n_limbs) {
    case 4: return &FixedOps<4>();
    case 8: return &FixedOps<8>();
    case 16: return &FixedOps<16>();
    case 24: return &FixedOps<24>();
    case 32: return &FixedOps<32>();
    case 48: return &FixedOps<48>();
    case 64: return &FixedOps<64>();
    default: return nullptr;
  }
}

#if PPSTATS_MONT_HAVE_ADX
const MontBackendOps& AdxOps() {
  static const MontBackendOps ops = {
      MontBackendKind::kAdx,
      "adx",
      AdxMontMul,
      AdxMontSqr,
      AdxMontMulBatch,
      obs::MetricRegistry::Global().GetCounter("mont.mul_ops.adx"),
      obs::MetricRegistry::Global().GetCounter("mont.sqr_ops.adx")};
  return ops;
}
#endif

// PPSTATS_FORCE_BACKEND, parsed per context construction (cold path)
// so tests can flip it with setenv between contexts.
MontBackendKind ForcedBackendFromEnv() {
  const char* env = std::getenv("PPSTATS_FORCE_BACKEND");
  if (env == nullptr || env[0] == '\0') return MontBackendKind::kAuto;
  const std::string value(env);
  if (value == "generic") return MontBackendKind::kGeneric;
  if (value == "fixed") return MontBackendKind::kFixed;
  if (value == "adx" || value == "intrinsics") return MontBackendKind::kAdx;
  return MontBackendKind::kAuto;  // unknown values mean "don't force"
}

}  // namespace

const char* MontBackendKindName(MontBackendKind kind) {
  switch (kind) {
    case MontBackendKind::kAuto: return "auto";
    case MontBackendKind::kGeneric: return "generic";
    case MontBackendKind::kFixed: return "fixed";
    case MontBackendKind::kAdx: return "adx";
  }
  return "unknown";
}

const MontCpuFeatures& DetectMontCpuFeatures() {
  static const MontCpuFeatures features = [] {
    MontCpuFeatures f;
#if PPSTATS_MONT_HAVE_ADX
    f.bmi2 = __builtin_cpu_supports("bmi2") != 0;
    f.adx = __builtin_cpu_supports("adx") != 0;
#endif
    return f;
  }();
  return features;
}

bool MontBackendSupports(MontBackendKind kind, size_t n_limbs) {
  switch (kind) {
    case MontBackendKind::kAuto:
      return n_limbs > 0;
    case MontBackendKind::kGeneric:
      return n_limbs > 0;
    case MontBackendKind::kFixed:
      return FixedOpsFor(n_limbs) != nullptr;
    case MontBackendKind::kAdx: {
      const MontCpuFeatures& cpu = DetectMontCpuFeatures();
      return cpu.bmi2 && cpu.adx && n_limbs >= 4 && n_limbs % 4 == 0;
    }
  }
  return false;
}

const MontBackendOps& SelectMontBackend(size_t n_limbs,
                                        MontBackendKind requested) {
  MontBackendKind kind =
      requested == MontBackendKind::kAuto ? ForcedBackendFromEnv() : requested;
  if (kind == MontBackendKind::kAuto || !MontBackendSupports(kind, n_limbs)) {
    // Auto dispatch and the fallback for unsupported requests share one
    // preference order; generic always supports the width.
    const MontBackendKind order[] = {MontBackendKind::kAdx,
                                     MontBackendKind::kFixed,
                                     MontBackendKind::kGeneric};
    for (MontBackendKind candidate : order) {
      if (candidate > kind && kind != MontBackendKind::kAuto) continue;
      if (MontBackendSupports(candidate, n_limbs)) {
        kind = candidate;
        break;
      }
    }
  }
  switch (kind) {
    case MontBackendKind::kFixed: {
      const MontBackendOps* ops = FixedOpsFor(n_limbs);
      assert(ops != nullptr);
      return *ops;
    }
    case MontBackendKind::kAdx:
#if PPSTATS_MONT_HAVE_ADX
      return AdxOps();
#else
      break;
#endif
    default:
      break;
  }
  return GenericOps();
}

}  // namespace ppstats
