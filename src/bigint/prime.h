// Primality testing and random prime generation.

#ifndef PPSTATS_BIGINT_PRIME_H_
#define PPSTATS_BIGINT_PRIME_H_

#include "bigint/bigint.h"
#include "common/random.h"

namespace ppstats {

/// Miller–Rabin probabilistic primality test with `rounds` random bases
/// (plus a fixed base-2 round). Error probability <= 4^-rounds for
/// composites. n < 2 and even n > 2 are composite; 2 is prime.
bool IsProbablePrime(const BigInt& n, RandomSource& rng, int rounds = 32);

/// Generates a random probable prime with exactly `bits` bits. The top
/// two bits are forced to 1, so a product of two such primes has exactly
/// 2*bits bits (the RSA/Paillier modulus convention). Requires bits >= 2.
BigInt GeneratePrime(size_t bits, RandomSource& rng, int mr_rounds = 32);

/// Generates two distinct probable primes of `bits` bits each, as needed
/// for a Paillier / RSA modulus.
std::pair<BigInt, BigInt> GeneratePrimePair(size_t bits, RandomSource& rng,
                                            int mr_rounds = 32);

}  // namespace ppstats

#endif  // PPSTATS_BIGINT_PRIME_H_
