#include "bigint/modarith.h"

#include <cassert>

#include "bigint/montgomery.h"

namespace ppstats {

BigInt Mod(const BigInt& a, const BigInt& m) {
  assert(!m.IsZero() && !m.IsNegative());
  BigInt r = a % m;
  if (r.IsNegative()) r += m;
  return r;
}

BigInt AddMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a + b;
  if (s >= m) s -= m;
  return s;
}

BigInt SubMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a - b;
  if (s.IsNegative()) s += m;
  return s;
}

BigInt MulMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return Mod(a * b, m);
}

BigInt Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  // Euclid; BigInt division is fast enough at our sizes, and the binary
  // variant saves little once limb-level division exists.
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

ExtendedGcdResult ExtendedGcd(const BigInt& a, const BigInt& b) {
  // Iterative extended Euclid on the given (possibly negative) inputs.
  BigInt old_r = a, r = b;
  BigInt old_s = 1, s = 0;
  BigInt old_t = 0, t = 1;
  while (!r.IsZero()) {
    BigInt q = old_r / r;
    BigInt tmp = old_r - q * r;
    old_r = std::move(r);
    r = std::move(tmp);
    tmp = old_s - q * s;
    old_s = std::move(s);
    s = std::move(tmp);
    tmp = old_t - q * t;
    old_t = std::move(t);
    t = std::move(tmp);
  }
  if (old_r.IsNegative()) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  return {std::move(old_r), std::move(old_s), std::move(old_t)};
}

Result<BigInt> ModInverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) return Status::InvalidArgument("modulus must be > 1");
  ExtendedGcdResult e = ExtendedGcd(Mod(a, m), m);
  if (!e.g.IsOne()) {
    return Status::CryptoError("value is not invertible modulo m");
  }
  return Mod(e.x, m);
}

BigInt ModExpPlain(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!exp.IsNegative());
  assert(!m.IsZero() && !m.IsNegative());
  if (m.IsOne()) return BigInt();
  BigInt result(1);
  BigInt b = Mod(base, m);
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = MulMod(result, result, m);
    if (exp.Bit(i)) result = MulMod(result, b, m);
  }
  return result;
}

BigInt ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!exp.IsNegative());
  assert(!m.IsZero() && !m.IsNegative());
  if (m.IsOne()) return BigInt();
  if (m.IsOdd()) {
    MontgomeryContext ctx(m);
    return ctx.Exp(Mod(base, m), exp);
  }
  return ModExpPlain(base, exp, m);
}

Result<BigInt> CrtCombine(const BigInt& r1, const BigInt& m1,
                          const BigInt& r2, const BigInt& m2) {
  // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2)
  PPSTATS_ASSIGN_OR_RETURN(BigInt m1_inv, ModInverse(m1, m2));
  BigInt diff = Mod(r2 - r1, m2);
  BigInt t = MulMod(diff, m1_inv, m2);
  return Mod(r1, m1) + m1 * t;
}

BigInt RandomBits(RandomSource& rng, size_t bits) {
  if (bits == 0) return BigInt();
  Bytes buf((bits + 7) / 8);
  rng.Fill(buf);
  // Mask excess high bits.
  size_t excess = buf.size() * 8 - bits;
  buf[0] &= static_cast<uint8_t>(0xFF >> excess);
  return BigInt::FromBytes(buf);
}

BigInt RandomBelow(RandomSource& rng, const BigInt& bound) {
  assert(!bound.IsZero() && !bound.IsNegative());
  size_t bits = bound.BitLength();
  for (;;) {
    BigInt candidate = RandomBits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

BigInt RandomUnit(RandomSource& rng, const BigInt& m) {
  assert(m > BigInt(1));
  for (;;) {
    BigInt candidate = RandomBelow(rng, m);
    if (candidate.IsZero()) continue;
    if (Gcd(candidate, m).IsOne()) return candidate;
  }
}

}  // namespace ppstats
