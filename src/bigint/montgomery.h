// Montgomery multiplication and fixed-window modular exponentiation.
//
// A MontgomeryContext is bound to one odd modulus and caches the values
// (n0', R^2 mod m) needed for CIOS Montgomery multiplication. Modular
// exponentiation with a 4-bit fixed window over Montgomery residues is
// the workhorse of Paillier encryption/decryption and accounts for nearly
// all CPU time in the reproduced experiments.

#ifndef PPSTATS_BIGINT_MONTGOMERY_H_
#define PPSTATS_BIGINT_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"

namespace ppstats {

/// Precomputed context for arithmetic modulo a fixed odd modulus.
class MontgomeryContext {
 public:
  /// Builds a context for odd `modulus` > 1.
  explicit MontgomeryContext(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// Converts a canonical residue (0 <= x < m) to Montgomery form.
  BigInt ToMontgomery(const BigInt& x) const;

  /// Converts a Montgomery-form value back to a canonical residue.
  BigInt FromMontgomery(const BigInt& x) const;

  /// Montgomery product of two Montgomery-form values.
  BigInt MulMontgomery(const BigInt& a, const BigInt& b) const;

  /// base^exp mod m for canonical base in [0, m) and exp >= 0, via 4-bit
  /// fixed-window exponentiation. Returns a canonical residue.
  BigInt Exp(const BigInt& base, const BigInt& exp) const;

 private:
  using Limbs = std::vector<uint64_t>;

  // CIOS Montgomery multiplication on n-limb operands.
  void MontMul(const Limbs& a, const Limbs& b, Limbs* out) const;

  Limbs ToFixed(const BigInt& x) const;  // pad/truncate to n limbs

  BigInt modulus_;
  Limbs mod_limbs_;     // n limbs
  size_t n_;            // limb count of modulus
  uint64_t n0_inv_;     // -m^{-1} mod 2^64
  Limbs r2_;            // R^2 mod m, R = 2^(64 n)
  Limbs one_mont_;      // R mod m (Montgomery form of 1)
};

}  // namespace ppstats

#endif  // PPSTATS_BIGINT_MONTGOMERY_H_
