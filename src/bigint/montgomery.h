// Montgomery multiplication, squaring, fixed-window modular
// exponentiation, and batched multi-exponentiation.
//
// A MontgomeryContext is bound to one odd modulus and caches the values
// (n0', R^2 mod m) needed for CIOS Montgomery multiplication. The
// per-limb kernels themselves live behind the pluggable backend layer
// (bigint/mont_backend.h): the context resolves a backend for its width
// at construction — generic CIOS, width-specialized CIOS, or the
// x86-64 MULX/ADX kernel — and every multiply, square, and batched
// conversion routes through it. Modular exponentiation with a 4-bit
// fixed window over Montgomery residues is the workhorse of Paillier
// encryption/decryption, and the batched MultiExp kernel (Pippenger
// buckets with a Straus fallback for small batches) is the workhorse of
// the server's homomorphic fold prod_i c_i^{e_i} mod m — the component
// the paper measures as dominant at every database size.

#ifndef PPSTATS_BIGINT_MONTGOMERY_H_
#define PPSTATS_BIGINT_MONTGOMERY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/mont_backend.h"

namespace ppstats {

/// Schedule used by MultiExp. kAuto picks by a multiplication-count cost
/// model; the explicit values exist for benchmarks and differential tests.
enum class MultiExpSchedule {
  kAuto,       ///< cheaper of Straus / Pippenger by the cost model
  kStraus,     ///< per-base window tables, shared squaring ladder
  kPippenger,  ///< per-window bucket accumulation
};

/// Precomputed context for arithmetic modulo a fixed odd modulus.
class MontgomeryContext {
 public:
  /// Builds a context for odd `modulus` > 1, resolving the
  /// multiplication backend automatically (PPSTATS_FORCE_BACKEND
  /// override, then best supported for the width).
  explicit MontgomeryContext(const BigInt& modulus);

  /// Same, but pins the backend (benchmarks and differential tests).
  /// A kind this host/width cannot serve falls back down the dispatch
  /// order, so construction always succeeds.
  MontgomeryContext(const BigInt& modulus, MontBackendKind backend);

  const BigInt& modulus() const { return modulus_; }

  /// The backend this context resolved to (never kAuto).
  MontBackendKind backend_kind() const { return backend_->kind; }
  const char* backend_name() const { return backend_->name; }

  /// Converts a canonical residue (0 <= x < m) to Montgomery form.
  BigInt ToMontgomery(const BigInt& x) const;

  /// Batched ToMontgomery: element-for-element identical results, but
  /// the conversions run through the backend's batch entry point so
  /// independent multiplies can interleave (the fold engine's per-row
  /// conversion path).
  std::vector<BigInt> ToMontgomeryBatch(std::span<const BigInt> xs) const;

  /// Converts a Montgomery-form value back to a canonical residue.
  BigInt FromMontgomery(const BigInt& x) const;

  /// Montgomery product of two Montgomery-form values.
  BigInt MulMontgomery(const BigInt& a, const BigInt& b) const;

  /// Montgomery square of a Montgomery-form value. Same reduction
  /// invariants as MulMontgomery but ~1.3x faster: the product phase
  /// computes only the upper triangle and doubles it.
  BigInt Sqr(const BigInt& a) const;

  /// Montgomery form of 1 — the identity for MulMontgomery, and the
  /// correct initial value for a Montgomery-form fold accumulator.
  BigInt OneMontgomery() const;

  /// base^exp mod m for base >= 0 (reduced internally) and exp >= 0.
  /// Small exponents (< ~48 bits, the ScalarMultiply regime) use plain
  /// square-and-multiply, skipping the 16-entry window table whose
  /// construction would dominate; larger exponents use the 4-bit fixed
  /// window. Returns a canonical residue.
  BigInt Exp(const BigInt& base, const BigInt& exp) const;

  /// prod_i bases[i]^exponents[i] mod m for bases >= 0 (reduced
  /// internally) and exponents >= 0. Spans must have equal length;
  /// zero-exponent terms are skipped. Returns a canonical residue equal
  /// bit-for-bit to the naive per-term Exp/MulMod fold.
  BigInt MultiExp(std::span<const BigInt> bases,
                  std::span<const BigInt> exponents,
                  MultiExpSchedule schedule = MultiExpSchedule::kAuto) const;

  /// MultiExp over bases already in Montgomery form; the result stays in
  /// Montgomery form so callers can chain chunks into a Montgomery-form
  /// accumulator and convert back exactly once.
  BigInt MultiExpMontgomery(
      std::span<const BigInt> bases_mont, std::span<const BigInt> exponents,
      MultiExpSchedule schedule = MultiExpSchedule::kAuto) const;

 private:
  using Limbs = std::vector<uint64_t>;

  // The modulus constants the backend kernels consume.
  MontModulusView View() const { return {mod_limbs_.data(), n_, n0_inv_}; }

  // Montgomery product / square of n-limb operands via the resolved
  // backend. `out` is resized to n limbs and must not alias a or b
  // (resizing could invalidate their storage); internal callers keep a
  // separate tmp and swap.
  void MontMul(const Limbs& a, const Limbs& b, Limbs* out) const;
  void MontSqr(const Limbs& a, Limbs* out) const;

  // Batched Montgomery products out[i] = a[i] * b[i] over already-sized
  // n-limb arrays. An output may alias its own product's inputs, never
  // another product's (the backend may interleave products).
  void MontMulBatch(size_t count, const uint64_t* const* a,
                    const uint64_t* const* b, uint64_t* const* out) const;

  // Multi-exponentiation backends over gathered nonzero terms. `bases`
  // are n-limb Montgomery-form operands; both return Montgomery form.
  Limbs StrausMont(const std::vector<Limbs>& bases,
                   const std::vector<const BigInt*>& exps, size_t max_bits,
                   size_t window) const;
  Limbs PippengerMont(const std::vector<Limbs>& bases,
                      const std::vector<const BigInt*>& exps, size_t max_bits,
                      size_t window) const;

  Limbs ToFixed(const BigInt& x) const;  // pad/truncate to n limbs

  BigInt modulus_;
  Limbs mod_limbs_;     // n limbs
  size_t n_;            // limb count of modulus
  uint64_t n0_inv_;     // -m^{-1} mod 2^64
  Limbs r2_;            // R^2 mod m, R = 2^(64 n)
  Limbs one_mont_;      // R mod m (Montgomery form of 1)
  // Resolved multiplication backend; points at a process-lifetime ops
  // table (bigint/mont_backend.cc), so copies of the context stay valid.
  const MontBackendOps* backend_ = nullptr;
};

}  // namespace ppstats

#endif  // PPSTATS_BIGINT_MONTGOMERY_H_
