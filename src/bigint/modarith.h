// Modular arithmetic helpers on BigInt: reduction, modular inverse, GCD,
// modular exponentiation, CRT combination, and uniform random residues.

#ifndef PPSTATS_BIGINT_MODARITH_H_
#define PPSTATS_BIGINT_MODARITH_H_

#include "bigint/bigint.h"
#include "common/random.h"
#include "common/result.h"

namespace ppstats {

/// Canonical residue of `a` modulo `m` in [0, m). Requires m > 0.
BigInt Mod(const BigInt& a, const BigInt& m);

/// (a + b) mod m for canonical residues a, b in [0, m).
BigInt AddMod(const BigInt& a, const BigInt& b, const BigInt& m);

/// (a - b) mod m for canonical residues a, b in [0, m).
BigInt SubMod(const BigInt& a, const BigInt& b, const BigInt& m);

/// (a * b) mod m.
BigInt MulMod(const BigInt& a, const BigInt& b, const BigInt& m);

/// Greatest common divisor of |a| and |b|.
BigInt Gcd(const BigInt& a, const BigInt& b);

/// Least common multiple of |a| and |b| (0 if either is 0).
BigInt Lcm(const BigInt& a, const BigInt& b);

/// Extended GCD: returns g = gcd(a, b) and Bezout coefficients x, y with
/// a*x + b*y = g.
struct ExtendedGcdResult {
  BigInt g;
  BigInt x;
  BigInt y;
};
ExtendedGcdResult ExtendedGcd(const BigInt& a, const BigInt& b);

/// Multiplicative inverse of a modulo m (m > 1). Fails with CryptoError if
/// gcd(a, m) != 1.
[[nodiscard]] Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

/// base^exp mod m for exp >= 0, m > 0. Uses Montgomery fixed-window
/// exponentiation for odd moduli and square-and-multiply otherwise.
BigInt ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);

/// Plain left-to-right square-and-multiply modular exponentiation; exposed
/// for the "slow mode" ablation benchmark and cross-checking Montgomery.
BigInt ModExpPlain(const BigInt& base, const BigInt& exp, const BigInt& m);

/// Chinese Remainder Theorem for two coprime moduli: the unique x in
/// [0, m1*m2) with x = r1 (mod m1) and x = r2 (mod m2). Fails if the
/// moduli are not coprime.
[[nodiscard]] Result<BigInt> CrtCombine(const BigInt& r1, const BigInt& m1,
                                        const BigInt& r2, const BigInt& m2);

/// Uniform random integer in [0, 2^bits).
BigInt RandomBits(RandomSource& rng, size_t bits);

/// Uniform random integer in [0, bound) for bound > 0, by rejection.
BigInt RandomBelow(RandomSource& rng, const BigInt& bound);

/// Uniform random unit modulo m: r in [1, m) with gcd(r, m) = 1.
BigInt RandomUnit(RandomSource& rng, const BigInt& m);

}  // namespace ppstats

#endif  // PPSTATS_BIGINT_MODARITH_H_
