// NetworkModel: analytic model of a communication medium.
//
// The paper measures communication time over two real media: a high-
// performance cluster switch (Figures 2, 4, 5, 7, 9) and a 56 Kbps
// dial-up modem between Chicago and Hoboken (Figures 3 and 6). We do not
// have those links; we substitute an analytic model
//
//   time(bytes, messages) = messages * per_message_overhead
//                           + bytes * 8 / bandwidth_bps
//                           + latency_s                     (pipeline fill)
//
// applied to byte-exact traffic recorded from the real protocol
// execution. This is the same quantity the paper plots (transfer time of
// the protocol's messages over the medium), so the figure shapes are
// preserved (see DESIGN.md, substitutions).

#ifndef PPSTATS_NET_NETWORK_MODEL_H_
#define PPSTATS_NET_NETWORK_MODEL_H_

#include <string>

#include "net/channel.h"

namespace ppstats {

/// Analytic model of a network link.
struct NetworkModel {
  std::string name;
  double bandwidth_bps = 0;        ///< payload bandwidth, bits per second
  double one_way_latency_s = 0;    ///< propagation delay, seconds
  double per_message_overhead_s = 0;  ///< per-message software/framing cost
  size_t per_message_header_bytes = 0;  ///< TCP/IP-style header estimate

  /// Seconds to move `bytes` of payload split over `messages` messages,
  /// streamed in one direction (single pipeline-fill latency).
  double TransferSeconds(uint64_t bytes, uint64_t messages) const;

  /// Link occupancy only: serialization + per-message overhead, without
  /// the propagation latency. This is the per-chunk stage cost in a
  /// pipelined schedule, where the stream pays the latency once.
  double SerializationSeconds(uint64_t bytes, uint64_t messages) const;

  /// Seconds for the given directional traffic counters.
  double TransferSeconds(const TrafficStats& stats) const {
    return TransferSeconds(stats.bytes, stats.messages);
  }

  /// The paper's short-distance environment: processes on a high-
  /// performance cluster connected by the Stevens HPC switch. Modeled as
  /// a gigabit-class host link (the 64 Gbps switch fabric is not the
  /// bottleneck; host NICs were ~1 Gbps) with LAN latency.
  static NetworkModel LanSwitch();

  /// The paper's long-distance environment: 56 Kbps dial-up between
  /// Chicago, IL and Hoboken, NJ (~80 ms propagation + modem latency).
  static NetworkModel Modem56k();

  /// An ideal infinitely fast link (isolates computation time).
  static NetworkModel Ideal();
};

}  // namespace ppstats

#endif  // PPSTATS_NET_NETWORK_MODEL_H_
