// SocketChannel: the Channel interface over a real kernel socket pair
// (AF_UNIX, SOCK_STREAM) with 4-byte length framing.
//
// The in-memory DuplexPipe is enough for measurements; this exists so
// the protocol stack is exercised over actual file descriptors — partial
// reads, kernel buffering, EOF semantics — as a deployment would see.

#ifndef PPSTATS_NET_SOCKET_CHANNEL_H_
#define PPSTATS_NET_SOCKET_CHANNEL_H_

#include <memory>
#include <optional>
#include <string>

#include "net/channel.h"

namespace ppstats {

/// Puts `fd` into non-blocking, close-on-exec mode (reactor sockets).
[[nodiscard]] Status SetSocketNonBlocking(int fd);

/// Creates a connected pair of socket-backed channels (socketpair(2)).
/// Each endpoint owns its file descriptor; destruction closes it, which
/// surfaces as a ProtocolError on the peer's next Receive.
Result<std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>>
CreateSocketChannelPair();

/// Wraps an existing connected stream socket as a Channel. Takes
/// ownership of `fd`. Messages are framed with a 4-byte big-endian
/// length; a frame larger than `max_message_bytes` is rejected without
/// allocation (protects against corrupt or hostile peers).
std::unique_ptr<Channel> WrapSocket(int fd,
                                    size_t max_message_bytes = 1 << 28);

/// Listens on a filesystem AF_UNIX socket path (the path is unlinked on
/// bind and on destruction). Used by the command-line server tool.
class SocketListener {
 public:
  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&& other) noexcept;
  SocketListener(const SocketListener&) = delete;
  ~SocketListener();

  /// Binds and listens; fails if the path is too long or bind fails.
  /// `backlog` is the kernel listen(2) queue depth — connections beyond
  /// it are refused by the kernel before accept() ever sees them.
  [[nodiscard]] static Result<SocketListener> Bind(const std::string& path,
                                                   int backlog = 16);

  /// Blocks for the next client connection. The failure code tells the
  /// caller whether retrying makes sense: ResourceExhausted for
  /// transient fd/memory pressure (EMFILE/ENFILE/ENOBUFS/ENOMEM — back
  /// off and retry), FailedPrecondition once the listener is shut down.
  /// Per-connection aborts (ECONNABORTED) are retried internally.
  [[nodiscard]] Result<std::unique_ptr<Channel>> Accept();

  /// Accepts the next pending connection as a raw fd (caller owns it).
  /// Returns std::nullopt when the listener is non-blocking and no
  /// connection is queued (EAGAIN). Error codes follow Accept():
  /// ResourceExhausted for transient fd/memory pressure,
  /// FailedPrecondition once the listener is shut down; EINTR and
  /// ECONNABORTED are retried internally. Used by the reactor host,
  /// which frames and buffers the socket itself.
  [[nodiscard]] Result<std::optional<int>> AcceptFd();

  /// The listening descriptor, for event-loop registration. The
  /// listener retains ownership.
  int fd() const { return fd_; }

  /// Shuts the listening socket down, unblocking a concurrent Accept
  /// (which then fails). Safe to call from another thread; the fd itself
  /// is closed by the destructor. Used by ServiceHost::Stop.
  void Close();

 private:
  SocketListener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening AF_UNIX socket path.
[[nodiscard]] Result<std::unique_ptr<Channel>> ConnectUnixSocket(const std::string& path);

}  // namespace ppstats

#endif  // PPSTATS_NET_SOCKET_CHANNEL_H_
