// SocketChannel: the Channel interface over a real kernel socket
// (AF_UNIX or TCP, SOCK_STREAM) with 4-byte length framing.
//
// The in-memory DuplexPipe is enough for measurements; this exists so
// the protocol stack is exercised over actual file descriptors — partial
// reads, kernel buffering, EOF semantics — as a deployment would see.
//
// Addresses are Endpoints, written as URIs:
//   unix:/tmp/pp.sock     filesystem AF_UNIX socket
//   tcp:127.0.0.1:7000    TCP over IPv4 (port 0 binds an ephemeral port)
//   tcp:[::1]:7000        TCP over IPv6 (host in brackets)
//   /tmp/pp.sock          bare path, kept as an AF_UNIX shorthand
// Framing and protocol are identical over both families; TCP sockets
// get TCP_NODELAY so small frames are not Nagle-delayed.

#ifndef PPSTATS_NET_SOCKET_CHANNEL_H_
#define PPSTATS_NET_SOCKET_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/channel.h"

namespace ppstats {

/// Builds "<prefix>: <strerror> (errno <n>)" with the given code. The
/// numeric errno rides along with the human text so a log line is
/// greppable against errno tables even when strerror wording differs
/// across libcs. Call sites pass `err` explicitly (capture errno before
/// anything that might clobber it).
[[nodiscard]] Status ErrnoStatus(StatusCode code, const std::string& prefix,
                                 int err);

/// Address family of an Endpoint.
enum class EndpointKind : uint8_t { kUnix, kTcp };

/// A listen/connect address: a filesystem socket path or a TCP
/// host:port. Produced by ParseEndpoint, consumed by SocketListener and
/// the connectors.
struct Endpoint {
  EndpointKind kind = EndpointKind::kUnix;
  std::string path;   ///< kUnix: filesystem socket path
  std::string host;   ///< kTcp: numeric address or hostname
  uint16_t port = 0;  ///< kTcp: port (0 = kernel-assigned ephemeral)

  /// Canonical URI form ("unix:/p", "tcp:host:port", "tcp:[v6]:port").
  [[nodiscard]] std::string ToUri() const;
};

/// Parses "unix:<path>", "tcp:<host>:<port>" (IPv6 hosts in brackets),
/// or a bare filesystem path (treated as unix, the historical form).
[[nodiscard]] Result<Endpoint> ParseEndpoint(const std::string& uri);

/// Listener tuning beyond the address.
struct ListenOptions {
  /// Kernel listen(2) queue depth — connections beyond it are refused
  /// by the kernel before accept() ever sees them.
  int backlog = 16;

  /// TCP only: bind with SO_REUSEPORT so several listeners can share
  /// one port and the kernel load-balances accepts across them
  /// (per-reactor-shard listeners).
  bool reuse_port = false;

  /// When > 0, every accepted socket gets SO_SNDBUF set to this many
  /// bytes. A test knob: a tiny send buffer forces partial writes and
  /// EAGAIN mid-frame, exercising the backpressure paths.
  int sndbuf_bytes = 0;
};

/// Puts `fd` into non-blocking, close-on-exec mode (reactor sockets).
[[nodiscard]] Status SetSocketNonBlocking(int fd);

/// Creates a connected pair of socket-backed channels (socketpair(2)).
/// Each endpoint owns its file descriptor; destruction closes it, which
/// surfaces as a ProtocolError on the peer's next Receive.
Result<std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>>
CreateSocketChannelPair();

/// Wraps an existing connected stream socket as a Channel. Takes
/// ownership of `fd`. Messages are framed with a 4-byte big-endian
/// length; a frame larger than `max_message_bytes` is rejected without
/// allocation (protects against corrupt or hostile peers).
std::unique_ptr<Channel> WrapSocket(int fd,
                                    size_t max_message_bytes = 1 << 28);

/// Listens on an Endpoint: a filesystem AF_UNIX socket path (unlinked
/// on destruction) or a TCP host:port. Used by ServiceHost and the
/// command-line server tool.
class SocketListener {
 public:
  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&& other) noexcept;
  SocketListener(const SocketListener&) = delete;
  ~SocketListener();

  /// Binds and listens on `endpoint`. A unix path that a live server
  /// still answers on fails with AlreadyExists (the socket is in use —
  /// never steal it); a stale socket file (nothing accepting) is
  /// replaced. A TCP endpoint with port 0 binds an ephemeral port;
  /// endpoint() reports the resolved one.
  [[nodiscard]] static Result<SocketListener> Bind(
      const Endpoint& endpoint, const ListenOptions& options = {});

  /// Historical form: binds an AF_UNIX path (or any endpoint URI).
  [[nodiscard]] static Result<SocketListener> Bind(const std::string& path,
                                                   int backlog = 16);

  /// Duplicates the listener: the copy shares the same open file
  /// description (dup(2)), so both see the same accept queue. Used for
  /// per-reactor-shard accept on AF_UNIX, where SO_REUSEPORT does not
  /// apply; the duplicate never unlinks the socket path (the original
  /// owns it).
  [[nodiscard]] Result<SocketListener> Duplicate() const;

  /// Blocks for the next client connection. The failure code tells the
  /// caller whether retrying makes sense: ResourceExhausted for
  /// transient fd/memory pressure (EMFILE/ENFILE/ENOBUFS/ENOMEM — back
  /// off and retry), FailedPrecondition once the listener is shut down.
  /// Per-connection aborts (ECONNABORTED) are retried internally.
  [[nodiscard]] Result<std::unique_ptr<Channel>> Accept();

  /// Accepts the next pending connection as a raw fd (caller owns it).
  /// Returns std::nullopt when the listener is non-blocking and no
  /// connection is queued (EAGAIN). Error codes follow Accept():
  /// ResourceExhausted for transient fd/memory pressure,
  /// FailedPrecondition once the listener is shut down; EINTR and
  /// ECONNABORTED are retried internally. Accepted TCP sockets get
  /// TCP_NODELAY; ListenOptions::sndbuf_bytes applies here. Used by the
  /// reactor host, which frames and buffers the socket itself.
  [[nodiscard]] Result<std::optional<int>> AcceptFd();

  /// The listening descriptor, for event-loop registration. The
  /// listener retains ownership.
  int fd() const { return fd_; }

  /// The bound address. For a TCP bind to port 0 this carries the
  /// kernel-assigned port, so endpoint().ToUri() is always dialable.
  const Endpoint& endpoint() const { return endpoint_; }

  /// Shuts the listening socket down, unblocking a concurrent Accept
  /// (which then fails). Safe to call from another thread; the fd itself
  /// is closed by the destructor. Used by ServiceHost::Stop.
  void Close();

 private:
  SocketListener(int fd, Endpoint endpoint, bool owns_path, int sndbuf)
      : fd_(fd),
        endpoint_(std::move(endpoint)),
        owns_path_(owns_path),
        sndbuf_bytes_(sndbuf) {}

  int fd_ = -1;
  Endpoint endpoint_;
  /// Unix only: this listener unlinks the socket path on destruction.
  /// Duplicates leave that to the original.
  bool owns_path_ = false;
  int sndbuf_bytes_ = 0;
};

/// Connects to an Endpoint (either family). TCP connections get
/// TCP_NODELAY. `connect_deadline_ms` bounds the connect handshake
/// itself: 0 keeps the historical blocking connect (bounded only by
/// the kernel, which can be minutes against a blackholed host); > 0
/// fails with DeadlineExceeded — retryable under net/retry — once the
/// budget elapses, so a dialer's backoff schedule stays in charge.
[[nodiscard]] Result<std::unique_ptr<Channel>> ConnectEndpoint(
    const Endpoint& endpoint, uint32_t connect_deadline_ms = 0);

/// Connects to an endpoint URI ("unix:/p", "tcp:host:port", bare path).
[[nodiscard]] Result<std::unique_ptr<Channel>> ConnectChannel(
    const std::string& uri, uint32_t connect_deadline_ms = 0);

/// Connects to a listening AF_UNIX socket path.
[[nodiscard]] Result<std::unique_ptr<Channel>> ConnectUnixSocket(const std::string& path);

}  // namespace ppstats

#endif  // PPSTATS_NET_SOCKET_CHANNEL_H_
