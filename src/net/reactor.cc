#include "net/reactor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <string>

#include "net/socket_channel.h"

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define PPSTATS_REACTOR_HAS_EPOLL 1
#endif

namespace ppstats {

namespace {

/// Reserved gen for the wakeup fd in backend event payloads.
constexpr uint64_t kWakeGen = 0;

[[maybe_unused]] Status SetNonBlockingCloexec(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus(StatusCode::kInternal, "fcntl(O_NONBLOCK)", errno);
  }
  int fdflags = fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return ErrnoStatus(StatusCode::kInternal, "fcntl(FD_CLOEXEC)", errno);
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// TimerWheel

TimerWheel::TimerWheel(std::chrono::milliseconds tick, size_t slots,
                       Clock::time_point now)
    : tick_(tick.count() > 0 ? tick : std::chrono::milliseconds(1)),
      slots_(std::max<size_t>(slots, 2)),
      cursor_time_(now) {}

TimerWheel::TimerId TimerWheel::Arm(Clock::time_point expiry,
                                    std::function<void()> fn) {
  // Slot k counts ticks ahead of the cursor; entries keep their
  // absolute expiry, so a slot visited before the expiry (wrap-around)
  // simply leaves the entry for a later revolution.
  int64_t ticks_ahead = 1;
  if (expiry > cursor_time_) {
    const auto delta = expiry - cursor_time_;
    ticks_ahead = std::max<int64_t>(1, (delta + tick_ - std::chrono::nanoseconds(1)) / tick_);
  }
  const size_t slot =
      (cursor_ + static_cast<size_t>(ticks_ahead)) % slots_.size();
  const TimerId id = next_id_++;
  slots_[slot].push_back(Entry{id, expiry, std::move(fn)});
  index_.emplace(id, std::make_pair(slot, std::prev(slots_[slot].end())));
  return id;
}

bool TimerWheel::Cancel(TimerId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  slots_[it->second.first].erase(it->second.second);
  index_.erase(it);
  return true;
}

size_t TimerWheel::FireDue(size_t slot, Clock::time_point now) {
  // Two passes: snapshot due ids first, then fire through the index so
  // a callback cancelling a timer due in this same batch wins the race.
  std::vector<TimerId> due;
  for (const Entry& entry : slots_[slot]) {
    if (entry.expiry <= now) due.push_back(entry.id);
  }
  size_t fired = 0;
  for (TimerId id : due) {
    auto it = index_.find(id);
    if (it == index_.end()) continue;  // cancelled by an earlier callback
    std::function<void()> fn = std::move(it->second.second->fn);
    slots_[it->second.first].erase(it->second.second);
    index_.erase(it);
    fn();
    ++fired;
  }
  return fired;
}

size_t TimerWheel::Advance(Clock::time_point now) {
  if (now < cursor_time_ + tick_) return 0;
  const int64_t steps = (now - cursor_time_) / tick_;
  size_t fired = 0;
  if (steps >= static_cast<int64_t>(slots_.size())) {
    // Idle catch-up: one sweep over every slot covers all windows the
    // cursor would have visited.
    for (size_t s = 0; s < slots_.size(); ++s) fired += FireDue(s, now);
    cursor_time_ += tick_ * steps;
    cursor_ = (cursor_ + static_cast<size_t>(steps)) % slots_.size();
    return fired;
  }
  for (int64_t s = 0; s < steps; ++s) {
    cursor_ = (cursor_ + 1) % slots_.size();
    cursor_time_ += tick_;
    fired += FireDue(cursor_, now);
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Reactor

Reactor::Reactor(ReactorOptions options)
    : options_(options),
      wheel_(options.timer_tick, options.timer_slots,
             TimerWheel::Clock::now()) {
  obs::MetricRegistry& reg =
      options_.registry ? *options_.registry : obs::MetricRegistry::Global();
  wakeups_ = reg.GetCounter("reactor.wakeups");
  completions_ = reg.GetCounter("reactor.completions");
  timer_fires_ = reg.GetCounter("reactor.timer_fires");
  ready_events_ = reg.GetHistogram("reactor.ready_events");
}

Result<std::unique_ptr<Reactor>> Reactor::Create(ReactorOptions options) {
  if (options.max_events <= 0) {
    return Status::InvalidArgument("reactor max_events must be positive");
  }
  std::unique_ptr<Reactor> reactor(new Reactor(options));
  Status init = reactor->Init();
  if (!init.ok()) return init;
  return reactor;
}

Status Reactor::Init() {
#if defined(PPSTATS_REACTOR_HAS_EPOLL)
  if (!options_.force_poll_backend) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return ErrnoStatus(StatusCode::kInternal, "epoll_create1", errno);
    }
  }
  wake_read_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_read_fd_ < 0) {
    return ErrnoStatus(StatusCode::kInternal, "eventfd", errno);
  }
  wake_write_fd_ = wake_read_fd_;
#else
  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    return ErrnoStatus(StatusCode::kInternal, "pipe", errno);
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  Status rd = SetNonBlockingCloexec(wake_read_fd_);
  if (!rd.ok()) return rd;
  Status wr = SetNonBlockingCloexec(wake_write_fd_);
  if (!wr.ok()) return wr;
#endif
#if defined(PPSTATS_REACTOR_HAS_EPOLL)
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeGen;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) < 0) {
      return ErrnoStatus(StatusCode::kInternal, "epoll_ctl(wake)", errno);
    }
  }
#endif
  return Status::OK();
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    close(wake_write_fd_);
  }
}

Status Reactor::BackendAdd(int fd, uint32_t interest, uint64_t gen) {
#if defined(PPSTATS_REACTOR_HAS_EPOLL)
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLET;
    if (interest & kReactorReadable) ev.events |= EPOLLIN | EPOLLRDHUP;
    if (interest & kReactorWritable) ev.events |= EPOLLOUT;
    ev.data.u64 = gen;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return ErrnoStatus(StatusCode::kInternal, "epoll_ctl(ADD)", errno);
    }
  }
#else
  (void)fd;
  (void)interest;
  (void)gen;
#endif
  return Status::OK();  // the poll backend rebuilds its fd set per wait
}

Status Reactor::BackendModify(int fd, uint32_t interest, uint64_t gen) {
#if defined(PPSTATS_REACTOR_HAS_EPOLL)
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLET;
    if (interest & kReactorReadable) ev.events |= EPOLLIN | EPOLLRDHUP;
    if (interest & kReactorWritable) ev.events |= EPOLLOUT;
    ev.data.u64 = gen;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return ErrnoStatus(StatusCode::kInternal, "epoll_ctl(MOD)", errno);
    }
  }
#else
  (void)fd;
  (void)interest;
  (void)gen;
#endif
  return Status::OK();
}

void Reactor::BackendRemove(int fd) {
#if defined(PPSTATS_REACTOR_HAS_EPOLL)
  if (epoll_fd_ >= 0) {
    struct epoll_event ev;  // non-null for pre-2.6.9 kernel ABI
    memset(&ev, 0, sizeof(ev));
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
  }
#else
  (void)fd;
#endif
}

Status Reactor::Add(int fd, uint32_t interest, FdCallback callback) {
  if (fd < 0) return Status::InvalidArgument("reactor: negative fd");
  if (registrations_.count(fd) != 0) {
    return Status::FailedPrecondition("reactor: fd already registered");
  }
  Registration reg;
  reg.gen = next_gen_++;
  reg.interest = interest;
  reg.callback = std::make_shared<FdCallback>(std::move(callback));
  Status added = BackendAdd(fd, interest, reg.gen);
  if (!added.ok()) return added;
  fd_by_gen_.emplace(reg.gen, fd);
  registrations_.emplace(fd, std::move(reg));
  return Status::OK();
}

Status Reactor::Modify(int fd, uint32_t interest) {
  auto it = registrations_.find(fd);
  if (it == registrations_.end()) {
    return Status::NotFound("reactor: fd not registered");
  }
  if (it->second.interest == interest) return Status::OK();
  Status modified = BackendModify(fd, interest, it->second.gen);
  if (!modified.ok()) return modified;
  it->second.interest = interest;
  return Status::OK();
}

void Reactor::Remove(int fd) {
  auto it = registrations_.find(fd);
  if (it == registrations_.end()) return;
  fd_by_gen_.erase(it->second.gen);
  registrations_.erase(it);
  BackendRemove(fd);
}

Reactor::TimerId Reactor::ArmTimer(std::chrono::milliseconds delay,
                                   std::function<void()> fn) {
  return wheel_.Arm(TimerWheel::Clock::now() + delay, std::move(fn));
}

bool Reactor::CancelTimer(TimerId id) { return wheel_.Cancel(id); }

void Reactor::Post(std::function<void()> fn) {
  bool need_wake = false;
  {
    MutexLock lock(post_mu_);
    posted_.push_back(std::move(fn));
    if (!wake_pending_) {
      wake_pending_ = true;
      need_wake = true;
    }
  }
  if (need_wake) {
    const uint64_t one = 1;
    ssize_t n;
    do {
      n = write(wake_write_fd_, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
    // EAGAIN means the counter/pipe is already non-zero: the reactor
    // is guaranteed to wake, which is all we need.
  }
}

void Reactor::Stop() {
  Post([this] { stop_requested_ = true; });
}

void Reactor::DrainWakeFd() {
#if defined(PPSTATS_REACTOR_HAS_EPOLL)
  uint64_t value;
  ssize_t n;
  do {
    n = read(wake_read_fd_, &value, sizeof(value));
  } while (n < 0 && errno == EINTR);
#else
  char buf[256];
  for (;;) {
    ssize_t n = read(wake_read_fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || static_cast<size_t>(n) < sizeof(buf)) break;
  }
#endif
}

void Reactor::RunPosted() {
  std::deque<std::function<void()>> batch;
  {
    MutexLock lock(post_mu_);
    batch.swap(posted_);
    wake_pending_ = false;
  }
  for (std::function<void()>& fn : batch) {
    fn();
    completions_->Increment();
  }
}

void Reactor::Dispatch(uint64_t gen, uint32_t ready) {
  if (gen == kWakeGen) {
    DrainWakeFd();
    return;  // posted work is drained once per iteration in Run()
  }
  auto gen_it = fd_by_gen_.find(gen);
  if (gen_it == fd_by_gen_.end()) return;  // removed earlier in this batch
  auto reg_it = registrations_.find(gen_it->second);
  if (reg_it == registrations_.end() || reg_it->second.gen != gen) return;
  // Hold the callback alive across the call: it may Remove() its own fd.
  std::shared_ptr<FdCallback> callback = reg_it->second.callback;
  (*callback)(ready);
}

int Reactor::WaitTimeoutMs() const {
  if (stop_requested_) return 0;
  if (wheel_.empty()) return -1;
  return static_cast<int>(std::max<int64_t>(1, options_.timer_tick.count()));
}

void Reactor::WaitAndDispatch(int timeout_ms) {
#if defined(PPSTATS_REACTOR_HAS_EPOLL)
  if (epoll_fd_ >= 0) {
    std::vector<struct epoll_event> events(
        static_cast<size_t>(options_.max_events));
    int n = epoll_wait(epoll_fd_, events.data(), options_.max_events,
                       timeout_ms);
    if (n < 0) n = 0;  // EINTR (or transient error): treat as timeout
    wakeups_->Increment();
    ready_events_->Record(static_cast<uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      uint32_t ready = 0;
      if (events[i].events & (EPOLLIN | EPOLLPRI | EPOLLRDHUP)) {
        ready |= kReactorReadable;
      }
      if (events[i].events & EPOLLOUT) ready |= kReactorWritable;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        ready |= kReactorClosed | kReactorReadable;
      }
      Dispatch(events[i].data.u64, ready);
    }
    return;
  }
#endif
  std::vector<struct pollfd> pfds;
  std::vector<uint64_t> gens;
  pfds.reserve(registrations_.size() + 1);
  gens.reserve(registrations_.size() + 1);
  pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  gens.push_back(kWakeGen);
  for (const auto& [fd, reg] : registrations_) {
    short events = 0;
    if (reg.interest & kReactorReadable) events |= POLLIN;
    if (reg.interest & kReactorWritable) events |= POLLOUT;
    pfds.push_back(pollfd{fd, events, 0});
    gens.push_back(reg.gen);
  }
  int n = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (n < 0) n = 0;  // EINTR: treat as timeout
  wakeups_->Increment();
  uint64_t ready_count = 0;
  for (const struct pollfd& p : pfds) {
    if (p.revents != 0) ++ready_count;
  }
  ready_events_->Record(ready_count);
  if (n == 0) return;
  for (size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    uint32_t ready = 0;
    if (pfds[i].revents & (POLLIN | POLLPRI)) ready |= kReactorReadable;
    if (pfds[i].revents & POLLOUT) ready |= kReactorWritable;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
      ready |= kReactorClosed | kReactorReadable;
    }
    Dispatch(gens[i], ready);
  }
}

void Reactor::Run() {
  while (!stop_requested_) {
    WaitAndDispatch(WaitTimeoutMs());
    RunPosted();
    const size_t fired = wheel_.Advance(TimerWheel::Clock::now());
    if (fired > 0) timer_fires_->Add(fired);
  }
  // One final drain so completions posted just before Stop() are not
  // silently dropped.
  RunPosted();
}

}  // namespace ppstats
