// Wire format: length- and type-safe serialization for protocol messages.
//
// All multi-byte integers are big-endian. Variable-size fields are
// length-prefixed with a u32. Every protocol message starts with a one-
// byte message type tag so a peer can reject unexpected messages with a
// ProtocolError instead of misparsing them.

#ifndef PPSTATS_NET_WIRE_H_
#define PPSTATS_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/result.h"

namespace ppstats {

/// Appends typed values to a byte buffer.
class WireWriter {
 public:
  WireWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);

  /// Writes a u32 length prefix followed by the raw bytes.
  void WriteBytes(BytesView bytes);

  /// Writes a non-negative BigInt as length-prefixed big-endian bytes.
  void WriteBigInt(const BigInt& v);

  /// Writes a non-negative BigInt as exactly `width` big-endian bytes
  /// with no length prefix (for fixed-width ciphertexts).
  [[nodiscard]] Status WriteFixedBigInt(const BigInt& v, size_t width);

  const Bytes& bytes() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Reads typed values from a byte buffer, with bounds checking.
class WireReader {
 public:
  explicit WireReader(BytesView data) : data_(data) {}

  [[nodiscard]] Result<uint8_t> ReadU8();
  [[nodiscard]] Result<uint32_t> ReadU32();
  [[nodiscard]] Result<uint64_t> ReadU64();
  [[nodiscard]] Result<Bytes> ReadBytes();
  [[nodiscard]] Result<BigInt> ReadBigInt();
  [[nodiscard]] Result<BigInt> ReadFixedBigInt(size_t width);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// Fails unless the whole buffer has been consumed.
  [[nodiscard]] Status ExpectEnd() const;

 private:
  [[nodiscard]] Result<BytesView> Take(size_t count);

  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace ppstats

#endif  // PPSTATS_NET_WIRE_H_
