#include "net/socket_channel.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

namespace ppstats {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

/// Polls `fd` for `events` until ready or `deadline` passes. The
/// deadline is absolute: every retry (EINTR included) recomputes the
/// remaining budget from it, so a signal storm cannot stretch the
/// wait. Rounds the poll timeout up to the next millisecond so the
/// deadline is never declared early by sub-millisecond truncation.
Status PollUntilDeadline(int fd, short events,
                         const std::optional<TimePoint>& deadline) {
  for (;;) {
    int timeout_ms = -1;  // no deadline: block until ready
    if (deadline.has_value()) {
      auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("channel i/o ran past the deadline");
      }
      timeout_ms = static_cast<int>(
          std::min<int64_t>(remaining.count(), INT_MAX));
    }
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return Status::OK();  // readable/writable or HUP/ERR,
                                         // which recv/send will surface
    if (ready == 0) {
      return Status::DeadlineExceeded("channel i/o ran past the deadline");
    }
    if (errno != EINTR) {
      return ErrnoStatus(StatusCode::kProtocolError, "poll failed", errno);
    }
  }
}

class SocketChannel : public Channel {
 public:
  SocketChannel(int fd, size_t max_message_bytes)
      : fd_(fd), max_message_bytes_(max_message_bytes) {}

  ~SocketChannel() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Send(BytesView message) override {
    if (message.size() > max_message_bytes_) {
      return Status::InvalidArgument("message exceeds the frame limit");
    }
    // One deadline covers the whole frame (header + payload), so a peer
    // draining one byte per backoff cannot stretch a Send indefinitely.
    std::optional<TimePoint> deadline = AbsoluteDeadline(write_deadline_);
    uint8_t header[4];
    uint32_t len = static_cast<uint32_t>(message.size());
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<uint8_t>(len >> (24 - 8 * i));
    }
    Status written = [&] {
      PPSTATS_RETURN_IF_ERROR(WriteAll(header, 4, deadline));
      return WriteAll(message.data(), message.size(), deadline);
    }();
    if (!written.ok()) {
      if (written.code() == StatusCode::kDeadlineExceeded) {
        ChannelMetrics::Get().deadline_expirations->Increment();
      }
      return written;
    }
    // Charge the length prefix too: it is on the wire, and channel.cc
    // charges the same so both transports report comparable bytes.
    stats_.Record(message.size() + kFrameOverheadBytes);
    ChannelMetrics& metrics = ChannelMetrics::Get();
    metrics.frames_sent->Increment();
    metrics.bytes_sent->Add(message.size() + kFrameOverheadBytes);
    return Status::OK();
  }

  Result<Bytes> Receive() override {
    Result<Bytes> out = ReceiveFrame();
    ChannelMetrics& metrics = ChannelMetrics::Get();
    if (out.ok()) {
      metrics.frames_received->Increment();
      metrics.bytes_received->Add(out->size() + kFrameOverheadBytes);
    } else if (out.status().code() == StatusCode::kDeadlineExceeded) {
      metrics.deadline_expirations->Increment();
    }
    return out;
  }

  TrafficStats sent() const override { return stats_; }

  void set_read_deadline(std::chrono::milliseconds deadline) override {
    read_deadline_ = deadline;
  }
  void set_write_deadline(std::chrono::milliseconds deadline) override {
    write_deadline_ = deadline;
  }

 private:
  Result<Bytes> ReceiveFrame() {
    std::optional<TimePoint> deadline = AbsoluteDeadline(read_deadline_);
    uint8_t header[4];
    PPSTATS_RETURN_IF_ERROR(ReadAll(header, 4, deadline));
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len = (len << 8) | header[i];
    if (len > max_message_bytes_) {
      return Status::ProtocolError("incoming frame exceeds the limit");
    }
    Bytes out(len);
    PPSTATS_RETURN_IF_ERROR(ReadAll(out.data(), out.size(), deadline));
    return out;
  }

  static std::optional<TimePoint> AbsoluteDeadline(
      std::chrono::milliseconds deadline) {
    if (deadline.count() <= 0) return std::nullopt;
    return std::chrono::steady_clock::now() + deadline;
  }

  // Blocks until the fd is ready for `events` or the deadline passes.
  // With no deadline the subsequent recv/send blocks instead.
  Status WaitReady(short events, const std::optional<TimePoint>& deadline) {
    if (!deadline.has_value()) return Status::OK();
    return PollUntilDeadline(fd_, events, deadline);
  }

  Status WriteAll(const uint8_t* data, size_t size,
                  const std::optional<TimePoint>& deadline) {
    // Under a deadline, send non-blocking: a blocking send of a large
    // frame would queue bytes as space appears and overshoot the
    // deadline even though poll() reported the buffer merely non-full.
    const int flags =
        MSG_NOSIGNAL | (deadline.has_value() ? MSG_DONTWAIT : 0);
    size_t done = 0;
    while (done < size) {
      PPSTATS_RETURN_IF_ERROR(WaitReady(POLLOUT, deadline));
      ssize_t n = ::send(fd_, data + done, size - done, flags);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return ErrnoStatus(StatusCode::kProtocolError, "send failed", errno);
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status ReadAll(uint8_t* data, size_t size,
                 const std::optional<TimePoint>& deadline) {
    const int flags = deadline.has_value() ? MSG_DONTWAIT : 0;
    size_t done = 0;
    while (done < size) {
      PPSTATS_RETURN_IF_ERROR(WaitReady(POLLIN, deadline));
      ssize_t n = ::recv(fd_, data + done, size - done, flags);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return ErrnoStatus(StatusCode::kProtocolError, "recv failed", errno);
      }
      if (n == 0) {
        return Status::ProtocolError("peer closed the channel");
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  int fd_;
  size_t max_message_bytes_;
  std::chrono::milliseconds read_deadline_{0};
  std::chrono::milliseconds write_deadline_{0};
  TrafficStats stats_;
};

/// Fills a sockaddr_un for `path`, rejecting over-long paths.
Status FillUnixAddr(const std::string& path, sockaddr_un* addr) {
  *addr = {};
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

/// Disables Nagle on a connected or accepted TCP socket; small protocol
/// frames (hellos, query headers) must not wait for a delayed ACK.
void SetTcpNoDelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// getaddrinfo for a numeric-or-named TCP host. `passive` requests a
/// bindable (wildcard-capable) address.
Result<std::unique_ptr<addrinfo, void (*)(addrinfo*)>> ResolveTcp(
    const Endpoint& endpoint, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  addrinfo* found = nullptr;
  const std::string service = std::to_string(endpoint.port);
  int rc = ::getaddrinfo(endpoint.host.empty() ? nullptr
                                               : endpoint.host.c_str(),
                         service.c_str(), &hints, &found);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve " + endpoint.ToUri() +
                                   ": " + ::gai_strerror(rc));
  }
  return std::unique_ptr<addrinfo, void (*)(addrinfo*)>(found,
                                                        ::freeaddrinfo);
}

/// Reads the kernel-assigned port back after binding port 0.
Status ResolveBoundPort(int fd, Endpoint* endpoint) {
  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return ErrnoStatus(StatusCode::kInternal, "getsockname failed", errno);
  }
  if (bound.ss_family == AF_INET) {
    endpoint->port =
        ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
  } else if (bound.ss_family == AF_INET6) {
    endpoint->port =
        ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
  }
  return Status::OK();
}

/// Completes a connect() that returned EINTR: POSIX says the connect
/// finishes asynchronously, so reissuing it would fail — wait for
/// writability and read the outcome from SO_ERROR.
Status FinishInterruptedConnect(int fd) {
  pollfd pfd{fd, POLLOUT, 0};
  int ready;
  do {
    ready = ::poll(&pfd, 1, -1);
  } while (ready < 0 && errno == EINTR);
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (ready < 0 ||
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    return ErrnoStatus(StatusCode::kInternal, "connect failed",
                       so_error != 0 ? so_error : errno);
  }
  return Status::OK();
}

/// Connects `fd` to `addr` with an upper bound of `deadline_ms` on the
/// handshake (0 = plain blocking connect, bounded only by the kernel's
/// own timeout — minutes against a blackholed host). The bounded path
/// connects non-blocking, waits for writability, reads the outcome from
/// SO_ERROR, and restores blocking mode on success, so callers get the
/// same kind of channel either way. A timeout maps to DeadlineExceeded,
/// which net/retry treats as retryable.
Status ConnectWithDeadline(int fd, const sockaddr* addr, socklen_t addr_len,
                           uint32_t deadline_ms) {
  if (deadline_ms == 0) {
    if (::connect(fd, addr, addr_len) != 0) {
      if (errno == EINTR) return FinishInterruptedConnect(fd);
      return ErrnoStatus(StatusCode::kInternal, "connect failed", errno);
    }
    return Status::OK();
  }
  PPSTATS_RETURN_IF_ERROR(SetSocketNonBlocking(fd));
  if (::connect(fd, addr, addr_len) != 0) {
    if (errno != EINPROGRESS && errno != EINTR && errno != EAGAIN) {
      return ErrnoStatus(StatusCode::kInternal, "connect failed", errno);
    }
    const TimePoint deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(deadline_ms);
    Status ready =
        PollUntilDeadline(fd, POLLOUT, std::optional<TimePoint>(deadline));
    if (!ready.ok()) {
      return ready.code() == StatusCode::kDeadlineExceeded
                 ? Status::DeadlineExceeded("connect ran past the deadline")
                 : ready;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      return ErrnoStatus(StatusCode::kInternal, "connect failed",
                         so_error != 0 ? so_error : errno);
    }
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    return ErrnoStatus(StatusCode::kInternal, "fcntl failed", errno);
  }
  return Status::OK();
}

/// True when something is accepting on the unix socket at `path`. Used
/// by Bind to distinguish a live server (never steal its socket) from a
/// stale file left by a crashed one. The probe connects non-blocking: a
/// listener answers immediately (or yields EAGAIN when its backlog is
/// full — still alive); a stale file refuses the connection.
bool UnixSocketIsLive(const std::string& path) {
  sockaddr_un addr{};
  if (!FillUnixAddr(path, &addr).ok()) return false;
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return false;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  const bool live =
      rc == 0 || errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  ::close(fd);
  return live;
}

}  // namespace

Status ErrnoStatus(StatusCode code, const std::string& prefix, int err) {
  // The one place strerror may appear in src/net: this helper IS the
  // ErrnoStatus discipline the errno-status lint check enforces.
  return Status(code, prefix + ": " + std::strerror(err) +  // ppstats-lint: allow(errno-status)
                          " (errno " +
                          std::to_string(err) + ")");
}

std::string Endpoint::ToUri() const {
  if (kind == EndpointKind::kUnix) return "unix:" + path;
  const bool v6 = host.find(':') != std::string::npos;
  return "tcp:" + (v6 ? "[" + host + "]" : host) + ":" +
         std::to_string(port);
}

Result<Endpoint> ParseEndpoint(const std::string& uri) {
  if (uri.empty()) return Status::InvalidArgument("empty endpoint");
  Endpoint out;
  if (uri.rfind("unix:", 0) == 0) {
    out.kind = EndpointKind::kUnix;
    out.path = uri.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("unix endpoint has no path: " + uri);
    }
    return out;
  }
  if (uri.rfind("tcp:", 0) == 0) {
    out.kind = EndpointKind::kTcp;
    std::string rest = uri.substr(4);
    size_t port_sep;
    if (!rest.empty() && rest.front() == '[') {
      const size_t close = rest.find(']');
      if (close == std::string::npos || close + 1 >= rest.size() ||
          rest[close + 1] != ':') {
        return Status::InvalidArgument("malformed tcp endpoint: " + uri);
      }
      out.host = rest.substr(1, close - 1);
      port_sep = close + 1;
    } else {
      port_sep = rest.rfind(':');
      if (port_sep == std::string::npos) {
        return Status::InvalidArgument("tcp endpoint has no port: " + uri);
      }
      out.host = rest.substr(0, port_sep);
    }
    if (out.host.empty()) {
      return Status::InvalidArgument("tcp endpoint has no host: " + uri);
    }
    const std::string port_str = rest.substr(port_sep + 1);
    if (port_str.empty() ||
        port_str.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("malformed tcp port in: " + uri);
    }
    const unsigned long port = std::strtoul(port_str.c_str(), nullptr, 10);
    if (port > 65535) {
      return Status::InvalidArgument("tcp port out of range in: " + uri);
    }
    out.port = static_cast<uint16_t>(port);
    return out;
  }
  // Bare filesystem path: the historical AF_UNIX shorthand.
  out.kind = EndpointKind::kUnix;
  out.path = uri;
  return out;
}

Status SetSocketNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus(StatusCode::kInternal, "fcntl(O_NONBLOCK)", errno);
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return ErrnoStatus(StatusCode::kInternal, "fcntl(FD_CLOEXEC)", errno);
  }
  return Status::OK();
}

std::unique_ptr<Channel> WrapSocket(int fd, size_t max_message_bytes) {
  return std::make_unique<SocketChannel>(fd, max_message_bytes);
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(other.fd_),
      endpoint_(std::move(other.endpoint_)),
      owns_path_(other.owns_path_),
      sndbuf_bytes_(other.sndbuf_bytes_) {
  other.fd_ = -1;
  other.owns_path_ = false;
  other.endpoint_ = Endpoint{};
}

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      if (owns_path_ && !endpoint_.path.empty()) {
        ::unlink(endpoint_.path.c_str());
      }
    }
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    owns_path_ = other.owns_path_;
    sndbuf_bytes_ = other.sndbuf_bytes_;
    other.fd_ = -1;
    other.owns_path_ = false;
    other.endpoint_ = Endpoint{};
  }
  return *this;
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (owns_path_ && !endpoint_.path.empty()) {
      ::unlink(endpoint_.path.c_str());
    }
  }
}

namespace {

/// A bound, listening socket plus the facts SocketListener's private
/// constructor needs; the public Bind() wraps it.
struct BoundSocket {
  int fd = -1;
  Endpoint endpoint;
  bool owns_path = false;
};

Result<BoundSocket> BindUnix(const Endpoint& endpoint,
                             const ListenOptions& options) {
  sockaddr_un addr{};
  PPSTATS_RETURN_IF_ERROR(FillUnixAddr(endpoint.path, &addr));

  // Never steal the socket out from under a live server: probe first,
  // and only replace the file when nothing is accepting on it (a stale
  // leftover from a crash).
  if (UnixSocketIsLive(endpoint.path)) {
    return Status::AlreadyExists("socket path already in use by a live "
                                 "server: " +
                                 endpoint.path);
  }

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus(StatusCode::kInternal, "socket failed", errno);
  }
  ::unlink(endpoint.path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus(StatusCode::kInternal, "bind failed", err);
  }
  if (::listen(fd, options.backlog) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(endpoint.path.c_str());
    return ErrnoStatus(StatusCode::kInternal, "listen failed", err);
  }
  return BoundSocket{fd, endpoint, /*owns_path=*/true};
}

Result<BoundSocket> BindTcp(Endpoint endpoint, const ListenOptions& options) {
  PPSTATS_ASSIGN_OR_RETURN(auto resolved,
                           ResolveTcp(endpoint, /*passive=*/true));
  Status last = Status::Internal("no usable address for " + endpoint.ToUri());
  for (const addrinfo* ai = resolved.get(); ai != nullptr;
       ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus(StatusCode::kInternal, "socket failed", errno);
      continue;
    }
    int one = 1;
    // REUSEADDR so a restart does not trip over TIME_WAIT; REUSEPORT
    // (opt-in) so per-shard listeners can share the port and the kernel
    // load-balances accepts across them.
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (options.reuse_port) {
      if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
        const int err = errno;
        ::close(fd);
        return ErrnoStatus(StatusCode::kInternal, "setsockopt(SO_REUSEPORT)",
                           err);
      }
    }
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = ErrnoStatus(StatusCode::kInternal, "bind failed", errno);
      ::close(fd);
      continue;
    }
    if (::listen(fd, options.backlog) != 0) {
      last = ErrnoStatus(StatusCode::kInternal, "listen failed", errno);
      ::close(fd);
      continue;
    }
    if (Status port = ResolveBoundPort(fd, &endpoint); !port.ok()) {
      ::close(fd);
      return port;
    }
    return BoundSocket{fd, std::move(endpoint), /*owns_path=*/false};
  }
  return last;
}

}  // namespace

Result<SocketListener> SocketListener::Bind(const Endpoint& endpoint,
                                            const ListenOptions& options) {
  if (options.backlog <= 0) {
    return Status::InvalidArgument("listen backlog must be positive");
  }
  PPSTATS_ASSIGN_OR_RETURN(BoundSocket bound,
                           endpoint.kind == EndpointKind::kUnix
                               ? BindUnix(endpoint, options)
                               : BindTcp(endpoint, options));
  return SocketListener(bound.fd, std::move(bound.endpoint), bound.owns_path,
                        options.sndbuf_bytes);
}

Result<SocketListener> SocketListener::Bind(const std::string& path,
                                            int backlog) {
  PPSTATS_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(path));
  ListenOptions options;
  options.backlog = backlog;
  return Bind(endpoint, options);
}

Result<SocketListener> SocketListener::Duplicate() const {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  int fd = ::dup(fd_);
  if (fd < 0) {
    return ErrnoStatus(StatusCode::kResourceExhausted, "dup failed", errno);
  }
  // The duplicate shares the original's open file description (accept
  // queue, O_NONBLOCK), but must never unlink the path.
  return SocketListener(fd, endpoint_, /*owns_path=*/false, sndbuf_bytes_);
}

void SocketListener::Close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<std::optional<int>> SocketListener::AcceptFd() {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  for (;;) {
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      if (endpoint_.kind == EndpointKind::kTcp) SetTcpNoDelay(client);
      if (sndbuf_bytes_ > 0) {
        (void)::setsockopt(client, SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes_,
                           sizeof(sndbuf_bytes_));
      }
      return std::optional<int>(client);
    }
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // that one connection died; the listener is fine
        continue;
      case EAGAIN:  // non-blocking listener with an empty queue
#if EAGAIN != EWOULDBLOCK
      case EWOULDBLOCK:
#endif
        return std::optional<int>(std::nullopt);
      case EMFILE:  // transient resource pressure: the caller should
      case ENFILE:  // back off and call Accept again once fds/memory
      case ENOBUFS:  // free up, instead of tearing the server down
      case ENOMEM:
        return ErrnoStatus(StatusCode::kResourceExhausted, "accept failed",
                           errno);
      default:
        // EINVAL/EBADF after Close()/shutdown, or an unexpected kernel
        // error: either way this listener will never accept again.
        return ErrnoStatus(StatusCode::kFailedPrecondition, "accept failed",
                           errno);
    }
  }
}

Result<std::unique_ptr<Channel>> SocketListener::Accept() {
  for (;;) {
    Result<std::optional<int>> client = AcceptFd();
    if (!client.ok()) return client.status();
    // A blocking listener never yields EAGAIN; loop anyway for safety.
    if (client->has_value()) return WrapSocket(**client);
  }
}

Result<std::unique_ptr<Channel>> ConnectEndpoint(const Endpoint& endpoint,
                                                 uint32_t connect_deadline_ms) {
  if (endpoint.kind == EndpointKind::kUnix) {
    sockaddr_un addr{};
    PPSTATS_RETURN_IF_ERROR(FillUnixAddr(endpoint.path, &addr));
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoStatus(StatusCode::kInternal, "socket failed", errno);
    }
    if (Status c = ConnectWithDeadline(fd, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr), connect_deadline_ms);
        !c.ok()) {
      ::close(fd);
      return c;
    }
    return WrapSocket(fd);
  }

  PPSTATS_ASSIGN_OR_RETURN(auto resolved,
                           ResolveTcp(endpoint, /*passive=*/false));
  Status last =
      Status::Internal("no usable address for " + endpoint.ToUri());
  for (const addrinfo* ai = resolved.get(); ai != nullptr;
       ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus(StatusCode::kInternal, "socket failed", errno);
      continue;
    }
    if (Status c = ConnectWithDeadline(fd, ai->ai_addr, ai->ai_addrlen,
                                       connect_deadline_ms);
        !c.ok()) {
      ::close(fd);
      last = std::move(c);
      continue;
    }
    SetTcpNoDelay(fd);
    return WrapSocket(fd);
  }
  return last;
}

Result<std::unique_ptr<Channel>> ConnectChannel(const std::string& uri,
                                                uint32_t connect_deadline_ms) {
  PPSTATS_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(uri));
  return ConnectEndpoint(endpoint, connect_deadline_ms);
}

Result<std::unique_ptr<Channel>> ConnectUnixSocket(const std::string& path) {
  Endpoint endpoint;
  endpoint.kind = EndpointKind::kUnix;
  endpoint.path = path;
  return ConnectEndpoint(endpoint);
}

Result<std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>>
CreateSocketChannelPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return ErrnoStatus(StatusCode::kInternal, "socketpair failed", errno);
  }
  return std::make_pair(WrapSocket(fds[0]), WrapSocket(fds[1]));
}

}  // namespace ppstats
