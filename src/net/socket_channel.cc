#include "net/socket_channel.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <optional>
#include <string>
#include <cstring>

namespace ppstats {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

/// Polls `fd` for `events` until ready or `deadline` passes. The
/// deadline is absolute: every retry (EINTR included) recomputes the
/// remaining budget from it, so a signal storm cannot stretch the
/// wait. Rounds the poll timeout up to the next millisecond so the
/// deadline is never declared early by sub-millisecond truncation.
Status PollUntilDeadline(int fd, short events,
                         const std::optional<TimePoint>& deadline) {
  for (;;) {
    int timeout_ms = -1;  // no deadline: block until ready
    if (deadline.has_value()) {
      auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
          *deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("channel i/o ran past the deadline");
      }
      timeout_ms = static_cast<int>(
          std::min<int64_t>(remaining.count(), INT_MAX));
    }
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return Status::OK();  // readable/writable or HUP/ERR,
                                         // which recv/send will surface
    if (ready == 0) {
      return Status::DeadlineExceeded("channel i/o ran past the deadline");
    }
    if (errno != EINTR) {
      return Status::ProtocolError(std::string("poll failed: ") +
                                   std::strerror(errno));
    }
  }
}

class SocketChannel : public Channel {
 public:
  SocketChannel(int fd, size_t max_message_bytes)
      : fd_(fd), max_message_bytes_(max_message_bytes) {}

  ~SocketChannel() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Send(BytesView message) override {
    if (message.size() > max_message_bytes_) {
      return Status::InvalidArgument("message exceeds the frame limit");
    }
    // One deadline covers the whole frame (header + payload), so a peer
    // draining one byte per backoff cannot stretch a Send indefinitely.
    std::optional<TimePoint> deadline = AbsoluteDeadline(write_deadline_);
    uint8_t header[4];
    uint32_t len = static_cast<uint32_t>(message.size());
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<uint8_t>(len >> (24 - 8 * i));
    }
    Status written = [&] {
      PPSTATS_RETURN_IF_ERROR(WriteAll(header, 4, deadline));
      return WriteAll(message.data(), message.size(), deadline);
    }();
    if (!written.ok()) {
      if (written.code() == StatusCode::kDeadlineExceeded) {
        ChannelMetrics::Get().deadline_expirations->Increment();
      }
      return written;
    }
    // Charge the length prefix too: it is on the wire, and channel.cc
    // charges the same so both transports report comparable bytes.
    stats_.Record(message.size() + kFrameOverheadBytes);
    ChannelMetrics& metrics = ChannelMetrics::Get();
    metrics.frames_sent->Increment();
    metrics.bytes_sent->Add(message.size() + kFrameOverheadBytes);
    return Status::OK();
  }

  Result<Bytes> Receive() override {
    Result<Bytes> out = ReceiveFrame();
    ChannelMetrics& metrics = ChannelMetrics::Get();
    if (out.ok()) {
      metrics.frames_received->Increment();
      metrics.bytes_received->Add(out->size() + kFrameOverheadBytes);
    } else if (out.status().code() == StatusCode::kDeadlineExceeded) {
      metrics.deadline_expirations->Increment();
    }
    return out;
  }

  TrafficStats sent() const override { return stats_; }

  void set_read_deadline(std::chrono::milliseconds deadline) override {
    read_deadline_ = deadline;
  }
  void set_write_deadline(std::chrono::milliseconds deadline) override {
    write_deadline_ = deadline;
  }

 private:
  Result<Bytes> ReceiveFrame() {
    std::optional<TimePoint> deadline = AbsoluteDeadline(read_deadline_);
    uint8_t header[4];
    PPSTATS_RETURN_IF_ERROR(ReadAll(header, 4, deadline));
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len = (len << 8) | header[i];
    if (len > max_message_bytes_) {
      return Status::ProtocolError("incoming frame exceeds the limit");
    }
    Bytes out(len);
    PPSTATS_RETURN_IF_ERROR(ReadAll(out.data(), out.size(), deadline));
    return out;
  }

  static std::optional<TimePoint> AbsoluteDeadline(
      std::chrono::milliseconds deadline) {
    if (deadline.count() <= 0) return std::nullopt;
    return std::chrono::steady_clock::now() + deadline;
  }

  // Blocks until the fd is ready for `events` or the deadline passes.
  // With no deadline the subsequent recv/send blocks instead.
  Status WaitReady(short events, const std::optional<TimePoint>& deadline) {
    if (!deadline.has_value()) return Status::OK();
    return PollUntilDeadline(fd_, events, deadline);
  }

  Status WriteAll(const uint8_t* data, size_t size,
                  const std::optional<TimePoint>& deadline) {
    // Under a deadline, send non-blocking: a blocking send of a large
    // frame would queue bytes as space appears and overshoot the
    // deadline even though poll() reported the buffer merely non-full.
    const int flags =
        MSG_NOSIGNAL | (deadline.has_value() ? MSG_DONTWAIT : 0);
    size_t done = 0;
    while (done < size) {
      PPSTATS_RETURN_IF_ERROR(WaitReady(POLLOUT, deadline));
      ssize_t n = ::send(fd_, data + done, size - done, flags);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return Status::ProtocolError(std::string("send failed: ") +
                                     std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status ReadAll(uint8_t* data, size_t size,
                 const std::optional<TimePoint>& deadline) {
    const int flags = deadline.has_value() ? MSG_DONTWAIT : 0;
    size_t done = 0;
    while (done < size) {
      PPSTATS_RETURN_IF_ERROR(WaitReady(POLLIN, deadline));
      ssize_t n = ::recv(fd_, data + done, size - done, flags);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        return Status::ProtocolError(std::string("recv failed: ") +
                                     std::strerror(errno));
      }
      if (n == 0) {
        return Status::ProtocolError("peer closed the channel");
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  int fd_;
  size_t max_message_bytes_;
  std::chrono::milliseconds read_deadline_{0};
  std::chrono::milliseconds write_deadline_{0};
  TrafficStats stats_;
};

}  // namespace

Status SetSocketNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            std::strerror(errno));
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return Status::Internal(std::string("fcntl(FD_CLOEXEC): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

std::unique_ptr<Channel> WrapSocket(int fd, size_t max_message_bytes) {
  return std::make_unique<SocketChannel>(fd, max_message_bytes);
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      if (!path_.empty()) ::unlink(path_.c_str());
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

Result<SocketListener> SocketListener::Bind(const std::string& path,
                                            int backlog) {
  if (backlog <= 0) {
    return Status::InvalidArgument("listen backlog must be positive");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(std::string("bind failed: ") +
                            std::strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Internal(std::string("listen failed: ") +
                            std::strerror(errno));
  }
  return SocketListener(fd, path);
}

void SocketListener::Close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<std::optional<int>> SocketListener::AcceptFd() {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  for (;;) {
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return std::optional<int>(client);
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // that one connection died; the listener is fine
        continue;
      case EAGAIN:  // non-blocking listener with an empty queue
#if EAGAIN != EWOULDBLOCK
      case EWOULDBLOCK:
#endif
        return std::optional<int>(std::nullopt);
      case EMFILE:  // transient resource pressure: the caller should
      case ENFILE:  // back off and call Accept again once fds/memory
      case ENOBUFS:  // free up, instead of tearing the server down
      case ENOMEM:
        return Status::ResourceExhausted(std::string("accept failed: ") +
                                         std::strerror(errno));
      default:
        // EINVAL/EBADF after Close()/shutdown, or an unexpected kernel
        // error: either way this listener will never accept again.
        return Status::FailedPrecondition(std::string("accept failed: ") +
                                          std::strerror(errno));
    }
  }
}

Result<std::unique_ptr<Channel>> SocketListener::Accept() {
  for (;;) {
    Result<std::optional<int>> client = AcceptFd();
    if (!client.ok()) return client.status();
    // A blocking listener never yields EAGAIN; loop anyway for safety.
    if (client->has_value()) return WrapSocket(**client);
  }
}

Result<std::unique_ptr<Channel>> ConnectUnixSocket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) {
      // POSIX: a connect interrupted by a signal completes
      // asynchronously. Reissuing it would fail; wait for writability
      // and read the outcome from SO_ERROR instead.
      pollfd pfd{fd, POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, -1);
      } while (ready < 0 && errno == EINTR);
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (ready < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        if (so_error != 0) errno = so_error;
        ::close(fd);
        return Status::Internal(std::string("connect failed: ") +
                                std::strerror(errno));
      }
    } else {
      ::close(fd);
      return Status::Internal(std::string("connect failed: ") +
                              std::strerror(errno));
    }
  }
  return WrapSocket(fd);
}

Result<std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>>
CreateSocketChannelPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Internal(std::string("socketpair failed: ") +
                            std::strerror(errno));
  }
  return std::make_pair(WrapSocket(fds[0]), WrapSocket(fds[1]));
}

}  // namespace ppstats
