#include "net/socket_channel.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <cstring>

namespace ppstats {

namespace {

class SocketChannel : public Channel {
 public:
  SocketChannel(int fd, size_t max_message_bytes)
      : fd_(fd), max_message_bytes_(max_message_bytes) {}

  ~SocketChannel() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Send(BytesView message) override {
    if (message.size() > max_message_bytes_) {
      return Status::InvalidArgument("message exceeds the frame limit");
    }
    uint8_t header[4];
    uint32_t len = static_cast<uint32_t>(message.size());
    for (int i = 0; i < 4; ++i) {
      header[i] = static_cast<uint8_t>(len >> (24 - 8 * i));
    }
    PPSTATS_RETURN_IF_ERROR(WriteAll(header, 4));
    PPSTATS_RETURN_IF_ERROR(WriteAll(message.data(), message.size()));
    // Charge the length prefix too: it is on the wire, and channel.cc
    // charges the same so both transports report comparable bytes.
    stats_.Record(message.size() + kFrameOverheadBytes);
    return Status::OK();
  }

  Result<Bytes> Receive() override {
    uint8_t header[4];
    PPSTATS_RETURN_IF_ERROR(ReadAll(header, 4));
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len = (len << 8) | header[i];
    if (len > max_message_bytes_) {
      return Status::ProtocolError("incoming frame exceeds the limit");
    }
    Bytes out(len);
    PPSTATS_RETURN_IF_ERROR(ReadAll(out.data(), out.size()));
    return out;
  }

  TrafficStats sent() const override { return stats_; }

 private:
  Status WriteAll(const uint8_t* data, size_t size) {
    size_t done = 0;
    while (done < size) {
      ssize_t n = ::send(fd_, data + done, size - done, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::ProtocolError(std::string("send failed: ") +
                                     std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status ReadAll(uint8_t* data, size_t size) {
    size_t done = 0;
    while (done < size) {
      ssize_t n = ::recv(fd_, data + done, size - done, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::ProtocolError(std::string("recv failed: ") +
                                     std::strerror(errno));
      }
      if (n == 0) {
        return Status::ProtocolError("peer closed the channel");
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  int fd_;
  size_t max_message_bytes_;
  TrafficStats stats_;
};

}  // namespace

std::unique_ptr<Channel> WrapSocket(int fd, size_t max_message_bytes) {
  return std::make_unique<SocketChannel>(fd, max_message_bytes);
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      if (!path_.empty()) ::unlink(path_.c_str());
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (!path_.empty()) ::unlink(path_.c_str());
  }
}

Result<SocketListener> SocketListener::Bind(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(std::string("bind failed: ") +
                            std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Internal(std::string("listen failed: ") +
                            std::strerror(errno));
  }
  return SocketListener(fd, path);
}

void SocketListener::Close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<std::unique_ptr<Channel>> SocketListener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  for (;;) {
    int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("accept failed: ") +
                              std::strerror(errno));
    }
    return WrapSocket(client);
  }
}

Result<std::unique_ptr<Channel>> ConnectUnixSocket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(std::string("connect failed: ") +
                            std::strerror(errno));
  }
  return WrapSocket(fd);
}

Result<std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>>
CreateSocketChannelPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Internal(std::string("socketpair failed: ") +
                            std::strerror(errno));
  }
  return std::make_pair(WrapSocket(fds[0]), WrapSocket(fds[1]));
}

}  // namespace ppstats
