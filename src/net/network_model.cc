#include "net/network_model.h"

namespace ppstats {

double NetworkModel::SerializationSeconds(uint64_t bytes,
                                          uint64_t messages) const {
  if (messages == 0) return 0;
  double total_bits =
      8.0 * (static_cast<double>(bytes) +
             static_cast<double>(messages) * per_message_header_bytes);
  double serialization = bandwidth_bps > 0 ? total_bits / bandwidth_bps : 0;
  return serialization + per_message_overhead_s * messages;
}

double NetworkModel::TransferSeconds(uint64_t bytes,
                                     uint64_t messages) const {
  if (messages == 0) return 0;
  return SerializationSeconds(bytes, messages) + one_way_latency_s;
}

NetworkModel NetworkModel::LanSwitch() {
  return NetworkModel{
      .name = "lan-switch",
      .bandwidth_bps = 1e9,            // gigabit host link on the HPC switch
      .one_way_latency_s = 50e-6,      // 50 us switch+stack latency
      .per_message_overhead_s = 5e-6,  // per-message syscall/framing cost
      .per_message_header_bytes = 66,  // Ethernet + IP + TCP
  };
}

NetworkModel NetworkModel::Modem56k() {
  return NetworkModel{
      .name = "modem-56k",
      .bandwidth_bps = 56e3,
      .one_way_latency_s = 0.12,        // modem + WAN propagation (NJ<->IL)
      .per_message_overhead_s = 1e-4,
      .per_message_header_bytes = 48,   // IP + TCP with compression
  };
}

NetworkModel NetworkModel::Ideal() {
  return NetworkModel{
      .name = "ideal",
      .bandwidth_bps = 0,  // treated as infinite
      .one_way_latency_s = 0,
      .per_message_overhead_s = 0,
      .per_message_header_bytes = 0,
  };
}

}  // namespace ppstats
