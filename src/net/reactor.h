// net/reactor: a single-threaded readiness event loop (epoll on Linux,
// poll(2) everywhere) with a timer wheel and a cross-thread completion
// queue.
//
// One Reactor owns a set of non-blocking fds. Run() loops on the
// backend's wait call, dispatches readiness callbacks, drains posted
// completions, and advances the timer wheel. The epoll backend is
// edge-triggered: a callback MUST drain its fd (read/write until
// EAGAIN) before returning, or the event is lost until the next edge.
// The poll backend is level-triggered, but callbacks that honor the
// drain contract behave identically under both.
//
// Thread model:
//   - Run() executes on exactly one thread (the "reactor thread").
//   - Add / Modify / Remove / ArmTimer / CancelTimer must be called on
//     the reactor thread, or before Run() starts.
//   - Post() and Stop() are safe from any thread; posted functions run
//     on the reactor thread (an eventfd — self-pipe off Linux — wakes
//     the wait call).
//
// Metrics (recorded into ReactorOptions::registry, default Global()):
//   reactor.wakeups        counter   backend wait() returns
//   reactor.ready_events   histogram fds ready per wakeup
//   reactor.completions    counter   posted functions executed
//   reactor.timer_fires    counter   timer callbacks fired

#ifndef PPSTATS_NET_REACTOR_H_
#define PPSTATS_NET_REACTOR_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace ppstats {

/// Readiness bits passed to fd callbacks.
inline constexpr uint32_t kReactorReadable = 1u << 0;
inline constexpr uint32_t kReactorWritable = 1u << 1;
/// The peer hung up or the fd errored; a read will observe EOF/errno.
inline constexpr uint32_t kReactorClosed = 1u << 2;

struct ReactorOptions {
  /// Backend wait batch size (epoll_wait maxevents).
  int max_events = 64;
  /// Use the portable poll(2) backend even where epoll is available
  /// (exercised by tests; also the only backend off Linux).
  bool force_poll_backend = false;
  /// Timer wheel resolution. Timer callbacks fire within one tick of
  /// their deadline.
  std::chrono::milliseconds timer_tick{10};
  /// Timer wheel slot count (spans slots × tick before wrapping).
  size_t timer_slots = 512;
  /// Metrics sink; nullptr means obs::MetricRegistry::Global().
  obs::MetricRegistry* registry = nullptr;
};

/// Hashed timing wheel: O(1) arm/cancel, deadlines fire within one tick.
/// Single-threaded — owned and driven by the reactor thread. Exposed
/// here so tests can drive it with synthetic clocks.
class TimerWheel {
 public:
  using TimerId = uint64_t;
  using Clock = std::chrono::steady_clock;

  TimerWheel(std::chrono::milliseconds tick, size_t slots,
             Clock::time_point now);

  /// Schedules `fn` to run at `expiry` (clamped at least one tick out).
  /// Returns an id usable with Cancel(). Ids are never reused.
  TimerId Arm(Clock::time_point expiry, std::function<void()> fn);

  /// Cancels a pending timer. Returns false if it already fired or was
  /// already cancelled.
  bool Cancel(TimerId id);

  /// Fires every timer whose expiry is <= now. Fired callbacks may Arm
  /// and Cancel freely (including cancelling timers due in this same
  /// batch). Returns the number of callbacks fired.
  size_t Advance(Clock::time_point now);

  size_t live() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

 private:
  struct Entry {
    TimerId id = 0;
    Clock::time_point expiry;
    std::function<void()> fn;
  };
  using SlotList = std::list<Entry>;

  size_t FireDue(size_t slot, Clock::time_point now);

  std::chrono::milliseconds tick_;
  std::vector<SlotList> slots_;
  size_t cursor_ = 0;
  Clock::time_point cursor_time_;  // wheel has been advanced up to here
  TimerId next_id_ = 1;
  std::unordered_map<TimerId, std::pair<size_t, SlotList::iterator>> index_;
};

/// The event loop. See the file comment for the thread model.
class Reactor {
 public:
  using FdCallback = std::function<void(uint32_t ready)>;
  using TimerId = TimerWheel::TimerId;

  /// Opens the backend (epoll unless forced/unavailable, else poll)
  /// and the wakeup fd.
  static Result<std::unique_ptr<Reactor>> Create(ReactorOptions options = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` (must be non-blocking) for the `interest` bits
  /// (kReactorReadable/kReactorWritable). `callback` runs on the
  /// reactor thread with the ready bits. Reactor-thread-only.
  [[nodiscard]] Status Add(int fd, uint32_t interest, FdCallback callback);

  /// Replaces the interest set of a registered fd. Reactor-thread-only.
  [[nodiscard]] Status Modify(int fd, uint32_t interest);

  /// Deregisters `fd`. Pending events already harvested for it in the
  /// current batch are dropped. Does not close the fd.
  /// Reactor-thread-only.
  void Remove(int fd);

  /// Schedules `fn` on the reactor thread after `delay` (resolution:
  /// one timer tick). Reactor-thread-only.
  TimerId ArmTimer(std::chrono::milliseconds delay, std::function<void()> fn);

  /// Cancels a pending timer; false if it already fired.
  /// Reactor-thread-only.
  bool CancelTimer(TimerId id);

  /// Enqueues `fn` to run on the reactor thread. Safe from any thread;
  /// this is how pool workers hand completions back to the loop.
  void Post(std::function<void()> fn);

  /// Runs the loop on the calling thread until Stop().
  void Run();

  /// Requests Run() to return after the current iteration. Safe from
  /// any thread; idempotent.
  void Stop();

  bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  struct Registration {
    uint64_t gen = 0;
    uint32_t interest = 0;
    // shared_ptr so a dispatch can hold the callback alive while the
    // callback itself calls Remove() on its own fd.
    std::shared_ptr<FdCallback> callback;
  };

  explicit Reactor(ReactorOptions options);
  [[nodiscard]] Status Init();
  [[nodiscard]] Status BackendAdd(int fd, uint32_t interest, uint64_t gen);
  [[nodiscard]] Status BackendModify(int fd, uint32_t interest, uint64_t gen);
  void BackendRemove(int fd);
  int WaitTimeoutMs() const;
  void WaitAndDispatch(int timeout_ms);
  void Dispatch(uint64_t gen, uint32_t ready);
  void DrainWakeFd();
  void RunPosted();

  ReactorOptions options_;
  int epoll_fd_ = -1;       // -1 when the poll backend is active
  int wake_read_fd_ = -1;   // eventfd on Linux (read == write fd)
  int wake_write_fd_ = -1;
  uint64_t next_gen_ = 1;   // 0 is reserved for the wakeup fd
  std::map<int, Registration> registrations_;         // by fd
  std::unordered_map<uint64_t, int> fd_by_gen_;       // live gens only
  TimerWheel wheel_;
  bool stop_requested_ = false;  // reactor thread only; set via Post

  Mutex post_mu_;
  std::deque<std::function<void()>> posted_ PPSTATS_GUARDED_BY(post_mu_);
  bool wake_pending_ PPSTATS_GUARDED_BY(post_mu_) = false;

  obs::Counter* wakeups_;
  obs::Counter* completions_;
  obs::Counter* timer_fires_;
  obs::Histogram* ready_events_;
};

}  // namespace ppstats

#endif  // PPSTATS_NET_REACTOR_H_
