#include "net/fault_injection.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

namespace ppstats {

FrameFaultPlanner::FrameFaultPlanner(FaultInjectionOptions options,
                                     RandomSource& rng)
    : options_(options), rng_(&rng) {}

bool FrameFaultPlanner::ShouldFault() {
  if (counters_.frames <= options_.skip_frames) return false;
  if (counters_.faults() >= options_.max_faults) return false;
  double rate = std::clamp(options_.fault_rate, 0.0, 1.0);
  // Fixed-point comparison so the draw consumes exactly one uint64 from
  // the deterministic stream regardless of the rate.
  constexpr uint64_t kScale = uint64_t{1} << 32;
  return rng_->NextBelow(kScale) < static_cast<uint64_t>(rate * kScale);
}

FaultKind FrameFaultPlanner::PickKind() {
  std::vector<FaultKind> enabled;
  if (options_.delay) enabled.push_back(FaultKind::kDelay);
  if (options_.truncate) enabled.push_back(FaultKind::kTruncate);
  if (options_.garble) enabled.push_back(FaultKind::kGarble);
  if (options_.drop) enabled.push_back(FaultKind::kDrop);
  if (options_.disconnect) enabled.push_back(FaultKind::kDisconnect);
  if (enabled.empty()) return FaultKind::kDelay;  // delay is benign
  return enabled[rng_->NextBelow(enabled.size())];
}

FaultPlan FrameFaultPlanner::Plan(BytesView message) {
  FaultPlan plan;
  ++counters_.frames;
  if (!ShouldFault()) return plan;

  switch (PickKind()) {
    case FaultKind::kDelay:
      ++counters_.delays;
      plan.kind = FaultKind::kDelay;
      plan.delay_ms = options_.delay_ms;
      return plan;
    case FaultKind::kTruncate: {
      if (message.empty()) {
        ++counters_.drops;  // nothing to truncate; losing it is a drop
        plan.kind = FaultKind::kDrop;
        return plan;
      }
      ++counters_.truncations;
      plan.kind = FaultKind::kTruncate;
      size_t keep = static_cast<size_t>(rng_->NextBelow(message.size()));
      plan.payload.assign(message.begin(), message.begin() + keep);
      return plan;
    }
    case FaultKind::kGarble: {
      ++counters_.garbles;
      plan.kind = FaultKind::kGarble;
      plan.payload.assign(message.begin(), message.end());
      if (!plan.payload.empty()) {
        size_t flips = 1 + static_cast<size_t>(rng_->NextBelow(8));
        for (size_t i = 0; i < flips; ++i) {
          size_t at =
              static_cast<size_t>(rng_->NextBelow(plan.payload.size()));
          plan.payload[at] ^= static_cast<uint8_t>(1 + rng_->NextBelow(255));
        }
      }
      return plan;
    }
    case FaultKind::kDrop:
      ++counters_.drops;
      plan.kind = FaultKind::kDrop;
      return plan;
    case FaultKind::kDisconnect:
      ++counters_.disconnects;
      plan.kind = FaultKind::kDisconnect;
      return plan;
  }
  plan.kind = FaultKind::kDrop;  // unreachable
  return plan;
}

FaultInjectingChannel::FaultInjectingChannel(std::unique_ptr<Channel> inner,
                                             FaultInjectionOptions options,
                                             RandomSource& rng)
    : inner_(std::move(inner)), planner_(options, rng) {}

Status FaultInjectingChannel::Send(BytesView message) {
  if (inner_ == nullptr) {
    return Status::ProtocolError("channel closed by injected disconnect");
  }
  FaultPlan plan = planner_.Plan(message);
  if (!plan.kind.has_value()) return inner_->Send(message);
  switch (*plan.kind) {
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
      return inner_->Send(message);
    case FaultKind::kTruncate:
    case FaultKind::kGarble:
      return inner_->Send(plan.payload);
    case FaultKind::kDrop:
      return Status::OK();  // the peer waits for a frame that never comes
    case FaultKind::kDisconnect:
      final_stats_ = inner_->sent();
      inner_.reset();  // closes the transport; the peer sees EOF
      return Status::ProtocolError("channel closed by injected disconnect");
  }
  return Status::Internal("unreachable fault kind");
}

Result<Bytes> FaultInjectingChannel::Receive() {
  if (inner_ == nullptr) {
    return Status::ProtocolError("channel closed by injected disconnect");
  }
  return inner_->Receive();
}

TrafficStats FaultInjectingChannel::sent() const {
  return inner_ != nullptr ? inner_->sent() : final_stats_;
}

void FaultInjectingChannel::set_read_deadline(
    std::chrono::milliseconds deadline) {
  read_deadline_ = deadline;
  if (inner_ != nullptr) inner_->set_read_deadline(deadline);
}

void FaultInjectingChannel::set_write_deadline(
    std::chrono::milliseconds deadline) {
  write_deadline_ = deadline;
  if (inner_ != nullptr) inner_->set_write_deadline(deadline);
}

}  // namespace ppstats
