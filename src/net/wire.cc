#include "net/wire.h"

namespace ppstats {

void WireWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void WireWriter::WriteU32(uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::WriteU64(uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::WriteBytes(BytesView bytes) {
  WriteU32(static_cast<uint32_t>(bytes.size()));
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void WireWriter::WriteBigInt(const BigInt& v) {
  WriteBytes(v.ToBytes());
}

Status WireWriter::WriteFixedBigInt(const BigInt& v, size_t width) {
  if (v.IsNegative()) {
    return Status::InvalidArgument("cannot serialize negative BigInt");
  }
  if ((v.BitLength() + 7) / 8 > width) {
    return Status::OutOfRange("BigInt does not fit fixed width");
  }
  Bytes b = v.ToBytes(width);
  buffer_.insert(buffer_.end(), b.begin(), b.end());
  return Status::OK();
}

Result<BytesView> WireReader::Take(size_t count) {
  if (data_.size() - pos_ < count) {
    return Status::SerializationError("unexpected end of message");
  }
  BytesView out = data_.subspan(pos_, count);
  pos_ += count;
  return out;
}

Result<uint8_t> WireReader::ReadU8() {
  PPSTATS_ASSIGN_OR_RETURN(BytesView b, Take(1));
  return b[0];
}

Result<uint32_t> WireReader::ReadU32() {
  PPSTATS_ASSIGN_OR_RETURN(BytesView b, Take(4));
  uint32_t v = 0;
  for (uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

Result<uint64_t> WireReader::ReadU64() {
  PPSTATS_ASSIGN_OR_RETURN(BytesView b, Take(8));
  uint64_t v = 0;
  for (uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

Result<Bytes> WireReader::ReadBytes() {
  PPSTATS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  PPSTATS_ASSIGN_OR_RETURN(BytesView b, Take(len));
  return Bytes(b.begin(), b.end());
}

Result<BigInt> WireReader::ReadBigInt() {
  PPSTATS_ASSIGN_OR_RETURN(Bytes b, ReadBytes());
  return BigInt::FromBytes(b);
}

Result<BigInt> WireReader::ReadFixedBigInt(size_t width) {
  PPSTATS_ASSIGN_OR_RETURN(BytesView b, Take(width));
  return BigInt::FromBytes(b);
}

Status WireReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::SerializationError("trailing bytes after message");
  }
  return Status::OK();
}

}  // namespace ppstats
