// FaultInjectingChannel: a Channel decorator that injects transport
// faults — delays, truncations, garbled bytes, dropped frames, and
// mid-stream disconnects — into the send path of the wrapped channel.
//
// The paper's experiments assume both parties and the link stay healthy
// for the whole run; a deployed service cannot. This decorator is how
// the chaos tests prove the session stack turns every transport failure
// into a typed Status (never a hang, never a crash): wrap either
// endpoint, drive the protocol, and assert both sides terminate.
//
// Faults are drawn from a caller-provided RandomSource, so a seeded
// ChaCha20Rng makes every chaos run bit-for-bit reproducible.

#ifndef PPSTATS_NET_FAULT_INJECTION_H_
#define PPSTATS_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/random.h"
#include "net/channel.h"

namespace ppstats {

/// Frame-level fault kinds the decorator can inject on Send.
enum class FaultKind : uint8_t {
  kDelay,       ///< stall for delay_ms, then deliver the frame intact
  kTruncate,    ///< deliver only a strict prefix of the frame
  kGarble,      ///< flip a few random bytes of the frame
  kDrop,        ///< silently discard the frame (peer waits -> deadline)
  kDisconnect,  ///< close the underlying transport mid-stream
};

/// Configuration for a FaultInjectingChannel.
struct FaultInjectionOptions {
  /// Per-frame fault probability in [0, 1] once armed.
  double fault_rate = 0.01;

  /// Length of a kDelay stall.
  uint32_t delay_ms = 20;

  /// Frames to pass through untouched before arming. This is how a test
  /// targets a protocol phase: frame 0 of a client is its ClientHello,
  /// frame 1 the first QueryHeader, frames 2..k the chunk stream.
  uint64_t skip_frames = 0;

  /// Stop injecting after this many faults (a one-shot fault is
  /// max_faults = 1 with fault_rate = 1.0).
  uint64_t max_faults = UINT64_MAX;

  /// Which kinds may be drawn (uniformly among the enabled ones).
  bool delay = true;
  bool truncate = true;
  bool garble = true;
  bool drop = true;
  bool disconnect = true;
};

/// Counters for what was actually injected.
struct FaultCounters {
  uint64_t frames = 0;  ///< frames offered to Send
  uint64_t delays = 0;
  uint64_t truncations = 0;
  uint64_t garbles = 0;
  uint64_t drops = 0;
  uint64_t disconnects = 0;

  uint64_t faults() const {
    return delays + truncations + garbles + drops + disconnects;
  }
};

/// One frame's fate, as decided by FrameFaultPlanner::Plan.
struct FaultPlan {
  /// nullopt = deliver the frame untouched.
  std::optional<FaultKind> kind;
  /// For kDelay: how long to stall before delivering.
  uint32_t delay_ms = 0;
  /// For kTruncate/kGarble: the transformed payload to deliver instead.
  Bytes payload;
};

/// The fault decision core, decoupled from any transport so blocking
/// (FaultInjectingChannel) and event-driven (core/reactor_host) send
/// paths inject identically distributed faults from the same seeded
/// stream. Each Plan() call advances the frame counter and draws from
/// the RNG exactly as FaultInjectingChannel::Send always has; the
/// caller applies the plan however its transport requires (a reactor
/// arms a timer where a blocking channel would sleep). Not thread-safe:
/// confine each planner to one thread or one event loop.
class FrameFaultPlanner {
 public:
  /// `rng` must outlive the planner.
  FrameFaultPlanner(FaultInjectionOptions options, RandomSource& rng);

  /// Decides what happens to the next outbound frame.
  FaultPlan Plan(BytesView message);

  const FaultCounters& counters() const { return counters_; }

 private:
  bool ShouldFault();
  FaultKind PickKind();

  FaultInjectionOptions options_;
  RandomSource* rng_;
  FaultCounters counters_;
};

/// Decorates a Channel with send-side fault injection. Receive passes
/// through (wrap both endpoints to fault both directions). After an
/// injected disconnect the wrapped channel is destroyed — the peer sees
/// "peer closed" and local calls fail with ProtocolError — exactly the
/// lifecycle of a crashed process. `rng` must outlive the channel.
class FaultInjectingChannel : public Channel {
 public:
  FaultInjectingChannel(std::unique_ptr<Channel> inner,
                        FaultInjectionOptions options, RandomSource& rng);

  [[nodiscard]] Status Send(BytesView message) override;
  [[nodiscard]] Result<Bytes> Receive() override;
  TrafficStats sent() const override;
  void set_read_deadline(std::chrono::milliseconds deadline) override;
  void set_write_deadline(std::chrono::milliseconds deadline) override;

  const FaultCounters& counters() const { return planner_.counters(); }

 private:
  std::unique_ptr<Channel> inner_;
  FrameFaultPlanner planner_;
  TrafficStats final_stats_;  // snapshot once inner_ is torn down
  std::chrono::milliseconds read_deadline_{0};
  std::chrono::milliseconds write_deadline_{0};
};

}  // namespace ppstats

#endif  // PPSTATS_NET_FAULT_INJECTION_H_
