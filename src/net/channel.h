// Message channels: reliable, ordered, message-oriented transport between
// protocol endpoints, with byte/message accounting.
//
// Two implementations:
//  * QueueChannel / DuplexPipe — thread-safe in-memory queues connecting
//    two endpoints running on real threads (used by the end-to-end
//    integration tests).
//  * RecordingChannel — a single-threaded mailbox used by the sans-IO
//    protocol runner; messages are delivered by the runner, which charges
//    their cost to a NetworkModel.

#ifndef PPSTATS_NET_CHANNEL_H_
#define PPSTATS_NET_CHANNEL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace ppstats {

/// Per-message framing overhead a Channel charges to TrafficStats: the
/// 4-byte length prefix a stream transport (socket_channel.h) actually
/// puts on the wire. Message transports (DuplexPipe) charge the same
/// amount so simulated and real runs report identical byte counts for
/// identical frame sequences.
inline constexpr size_t kFrameOverheadBytes = 4;

/// Counters for traffic sent in one direction.
struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;

  void Record(size_t message_bytes) {
    ++messages;
    bytes += message_bytes;
  }

  TrafficStats& operator+=(const TrafficStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    return *this;
  }
};

/// Process-wide wire counters shared by every Channel implementation
/// (sockets and in-memory pipes alike), registered in the Global
/// MetricRegistry. Pointers are resolved once at first use.
struct ChannelMetrics {
  obs::Counter* frames_sent;
  obs::Counter* bytes_sent;
  obs::Counter* frames_received;
  obs::Counter* bytes_received;
  obs::Counter* deadline_expirations;

  static ChannelMetrics& Get();
};

/// Abstract reliable, ordered, message-oriented channel endpoint.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one message to the peer.
  [[nodiscard]] virtual Status Send(BytesView message) = 0;

  /// Receives the next message (blocking for threaded channels).
  [[nodiscard]] virtual Result<Bytes> Receive() = 0;

  /// Traffic sent from this endpoint.
  virtual TrafficStats sent() const = 0;

  /// Caps how long each subsequent Receive may block, measured from the
  /// start of that call. A call that runs past the deadline fails with
  /// DeadlineExceeded instead of blocking forever — this is what evicts
  /// a stalled or hostile peer. Zero (the default) means no deadline.
  /// Transports that never block (RecordingChannel) ignore it.
  virtual void set_read_deadline(std::chrono::milliseconds /*deadline*/) {}

  /// Same cap for each subsequent Send. Only meaningful on transports
  /// with bounded buffering (sockets); the in-memory pipe's queue is
  /// unbounded, so its Send never blocks and the deadline is moot.
  virtual void set_write_deadline(std::chrono::milliseconds /*deadline*/) {}
};

/// Creates a connected pair of thread-safe in-memory channel endpoints.
/// Closing either endpoint (destruction) unblocks the peer's Receive with
/// a ProtocolError.
struct DuplexPipe {
  static std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
  Create();
};

}  // namespace ppstats

#endif  // PPSTATS_NET_CHANNEL_H_
