#include "net/channel.h"

namespace ppstats {

namespace {

// One direction of a duplex in-memory pipe.
struct Queue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Bytes> messages;
  bool closed = false;

  void Push(BytesView msg) {
    {
      std::lock_guard<std::mutex> lock(mu);
      messages.emplace_back(msg.begin(), msg.end());
    }
    cv.notify_one();
  }

  Result<Bytes> Pop(std::chrono::milliseconds deadline) {
    std::unique_lock<std::mutex> lock(mu);
    auto ready = [this] { return !messages.empty() || closed; };
    if (deadline.count() > 0) {
      if (!cv.wait_for(lock, deadline, ready)) {
        return Status::DeadlineExceeded("receive ran past the deadline");
      }
    } else {
      cv.wait(lock, ready);
    }
    if (messages.empty()) {
      return Status::ProtocolError("peer closed the channel");
    }
    Bytes out = std::move(messages.front());
    messages.pop_front();
    return out;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class PipeEndpoint : public Channel {
 public:
  PipeEndpoint(std::shared_ptr<Queue> outgoing, std::shared_ptr<Queue> incoming)
      : outgoing_(std::move(outgoing)), incoming_(std::move(incoming)) {}

  ~PipeEndpoint() override { outgoing_->Close(); }

  Status Send(BytesView message) override {
    {
      std::lock_guard<std::mutex> lock(outgoing_->mu);
      if (outgoing_->closed) {
        return Status::ProtocolError("channel is closed");
      }
    }
    stats_.Record(message.size() + kFrameOverheadBytes);
    outgoing_->Push(message);
    return Status::OK();
  }

  Result<Bytes> Receive() override { return incoming_->Pop(read_deadline_); }

  TrafficStats sent() const override { return stats_; }

  void set_read_deadline(std::chrono::milliseconds deadline) override {
    read_deadline_ = deadline;
  }
  // The outgoing queue is unbounded, so Send never blocks and the write
  // deadline is intentionally a no-op (see channel.h).

 private:
  std::shared_ptr<Queue> outgoing_;
  std::shared_ptr<Queue> incoming_;
  std::chrono::milliseconds read_deadline_{0};
  TrafficStats stats_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
DuplexPipe::Create() {
  auto a_to_b = std::make_shared<Queue>();
  auto b_to_a = std::make_shared<Queue>();
  return {std::make_unique<PipeEndpoint>(a_to_b, b_to_a),
          std::make_unique<PipeEndpoint>(b_to_a, a_to_b)};
}

}  // namespace ppstats
