#include "net/channel.h"

#include <deque>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ppstats {

ChannelMetrics& ChannelMetrics::Get() {
  static ChannelMetrics* metrics = [] {  // leaked on purpose
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    auto* m = new ChannelMetrics();
    m->frames_sent = registry.GetCounter("net.frames_sent");
    m->bytes_sent = registry.GetCounter("net.bytes_sent");
    m->frames_received = registry.GetCounter("net.frames_received");
    m->bytes_received = registry.GetCounter("net.bytes_received");
    m->deadline_expirations =
        registry.GetCounter("net.deadline_expirations");
    return m;
  }();
  return *metrics;
}

namespace {

// One direction of a duplex in-memory pipe.
struct Queue {
  Mutex mu;
  CondVar cv;
  std::deque<Bytes> messages PPSTATS_GUARDED_BY(mu);
  bool closed PPSTATS_GUARDED_BY(mu) = false;

  void Push(BytesView msg) PPSTATS_EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      messages.emplace_back(msg.begin(), msg.end());
    }
    cv.NotifyOne();
  }

  Result<Bytes> Pop(std::chrono::milliseconds deadline) PPSTATS_EXCLUDES(mu) {
    MutexLock lock(mu);
    if (deadline.count() > 0) {
      const auto until = std::chrono::steady_clock::now() + deadline;
      while (messages.empty() && !closed) {
        if (!cv.WaitUntil(mu, until) && messages.empty() && !closed) {
          return Status::DeadlineExceeded("receive ran past the deadline");
        }
      }
    } else {
      while (messages.empty() && !closed) cv.Wait(mu);
    }
    if (messages.empty()) {
      return Status::ProtocolError("peer closed the channel");
    }
    Bytes out = std::move(messages.front());
    messages.pop_front();
    return out;
  }

  bool SendClosed() PPSTATS_EXCLUDES(mu) {
    MutexLock lock(mu);
    return closed;
  }

  void Close() PPSTATS_EXCLUDES(mu) {
    {
      MutexLock lock(mu);
      closed = true;
    }
    cv.NotifyAll();
  }
};

class PipeEndpoint : public Channel {
 public:
  PipeEndpoint(std::shared_ptr<Queue> outgoing, std::shared_ptr<Queue> incoming)
      : outgoing_(std::move(outgoing)), incoming_(std::move(incoming)) {}

  ~PipeEndpoint() override { outgoing_->Close(); }

  Status Send(BytesView message) override {
    if (outgoing_->SendClosed()) {
      return Status::ProtocolError("channel is closed");
    }
    stats_.Record(message.size() + kFrameOverheadBytes);
    ChannelMetrics& metrics = ChannelMetrics::Get();
    metrics.frames_sent->Increment();
    metrics.bytes_sent->Add(message.size() + kFrameOverheadBytes);
    outgoing_->Push(message);
    return Status::OK();
  }

  Result<Bytes> Receive() override {
    Result<Bytes> out = incoming_->Pop(read_deadline_);
    ChannelMetrics& metrics = ChannelMetrics::Get();
    if (out.ok()) {
      metrics.frames_received->Increment();
      metrics.bytes_received->Add(out->size() + kFrameOverheadBytes);
    } else if (out.status().code() == StatusCode::kDeadlineExceeded) {
      metrics.deadline_expirations->Increment();
    }
    return out;
  }

  TrafficStats sent() const override { return stats_; }

  void set_read_deadline(std::chrono::milliseconds deadline) override {
    read_deadline_ = deadline;
  }
  // The outgoing queue is unbounded, so Send never blocks and the write
  // deadline is intentionally a no-op (see channel.h).

 private:
  std::shared_ptr<Queue> outgoing_;
  std::shared_ptr<Queue> incoming_;
  std::chrono::milliseconds read_deadline_{0};
  TrafficStats stats_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
DuplexPipe::Create() {
  auto a_to_b = std::make_shared<Queue>();
  auto b_to_a = std::make_shared<Queue>();
  return {std::make_unique<PipeEndpoint>(a_to_b, b_to_a),
          std::make_unique<PipeEndpoint>(b_to_a, a_to_b)};
}

}  // namespace ppstats
