#include "net/retry.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/socket_channel.h"

namespace ppstats {

uint32_t RetryBackoffMs(size_t retry, const RetryOptions& options,
                        RandomSource& rng) {
  if (retry == 0) return 0;
  uint64_t backoff = options.initial_backoff_ms;
  for (size_t i = 1; i < retry && backoff < options.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<uint64_t>(backoff, options.max_backoff_ms);
  double jitter = std::clamp(options.jitter, 0.0, 1.0);
  uint64_t window = static_cast<uint64_t>(backoff * jitter);
  uint64_t fixed = backoff - window;
  if (window > 0) fixed += rng.NextBelow(window + 1);
  return static_cast<uint32_t>(fixed);
}

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kProtocolError:       // transport died or spoke garbage
    case StatusCode::kSerializationError:  // corrupted frame in transit
    case StatusCode::kDeadlineExceeded:    // peer or link stalled
    case StatusCode::kResourceExhausted:   // peer over capacity: try later
    case StatusCode::kInternal:            // dial failed (connect/socket)
      return true;
    default:
      return false;
  }
}

DialFn UriDialer(std::string uri, uint32_t io_deadline_ms,
                 uint32_t connect_deadline_ms) {
  return [uri = std::move(uri), io_deadline_ms,
          connect_deadline_ms]() -> Result<std::unique_ptr<Channel>> {
    Result<std::unique_ptr<Channel>> channel =
        ConnectChannel(uri, connect_deadline_ms);
    if (channel.ok() && io_deadline_ms > 0) {
      const std::chrono::milliseconds deadline(io_deadline_ms);
      (*channel)->set_read_deadline(deadline);
      (*channel)->set_write_deadline(deadline);
    }
    return channel;
  };
}

}  // namespace ppstats
