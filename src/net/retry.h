// Retry policy for client-side connection establishment: exponential
// backoff with randomized jitter, plus the classification of which
// failures are safe to retry.
//
// Retrying is only sound for operations that commit no server-side
// state: dialing, the hello exchange, and (for this protocol) whole
// queries, which are pure reads. The session layer (core/session.h)
// applies this policy; the math and the classification live here so
// they are testable in isolation.

#ifndef PPSTATS_NET_RETRY_H_
#define PPSTATS_NET_RETRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "net/channel.h"

namespace ppstats {

/// Client retry configuration.
struct RetryOptions {
  /// Total attempts including the first (1 = never retry).
  size_t max_attempts = 1;

  /// Backoff before the first retry; doubles per retry after that.
  uint32_t initial_backoff_ms = 10;

  /// Cap on any single backoff.
  uint32_t max_backoff_ms = 2000;

  /// Fraction of each backoff drawn uniformly at random, so a burst of
  /// clients rejected together does not reconnect in lockstep: the wait
  /// is backoff * (1 - jitter) + uniform[0, backoff * jitter].
  double jitter = 0.5;
};

/// Per-attempt counters, for tests and tool output.
struct RetryMetrics {
  uint64_t attempts = 0;         ///< attempts started
  uint64_t retryable_failures = 0;  ///< attempts that ended retryably
  uint64_t backoff_ms_total = 0;    ///< total time slept between attempts
};

/// Backoff before retry number `retry` (1-based: 1 after the first
/// failure). Exponential with cap, jittered via `rng`.
uint32_t RetryBackoffMs(size_t retry, const RetryOptions& options,
                        RandomSource& rng);

/// True when `status` reports a transport-level or capacity failure
/// that is safe to retry on a fresh connection: the peer never acted on
/// anything, or rejected us before doing so (ResourceExhausted from an
/// over-capacity server). Semantic rejections (InvalidArgument,
/// NotFound, FailedPrecondition, version mismatches) will fail the same
/// way every time and are not retryable.
bool IsRetryableStatus(const Status& status);

/// A reusable dial closure: each call opens a fresh connection. The type
/// matches core/session.h's ChannelFactory, so a dialer plugs straight
/// into ConnectWithRetry/RunWithRetry.
using DialFn = std::function<Result<std::unique_ptr<Channel>>()>;

/// Builds a dialer for an endpoint URI ("unix:/path", "tcp:host:port",
/// or a bare socket path). When io_deadline_ms > 0 every dialed channel
/// gets that read and write deadline. When connect_deadline_ms > 0 each
/// connect attempt itself is bounded too — without it, a TCP connect to
/// a blackholed host blocks on the kernel's own timeout (minutes) and
/// starves the backoff schedule; with it, the attempt fails
/// DeadlineExceeded (retryable) on time. The URI is validated lazily,
/// per dial — a bad URI fails with InvalidArgument (not retryable).
[[nodiscard]] DialFn UriDialer(std::string uri, uint32_t io_deadline_ms = 0,
                               uint32_t connect_deadline_ms = 0);

}  // namespace ppstats

#endif  // PPSTATS_NET_RETRY_H_
