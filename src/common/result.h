// Result<T>: a value or a Status, in the style of arrow::Result.
//
// Library functions that produce a value return Result<T>; callers check
// ok() before dereferencing, or use PPSTATS_ASSIGN_OR_RETURN.

#ifndef PPSTATS_COMMON_RESULT_H_
#define PPSTATS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ppstats {

/// Holds either a value of type T or an error Status.
///
/// Like Status, Result is class-level [[nodiscard]]: discarding a
/// Result-returning call is a compile warning (-Werror in CI). Use
/// IgnoreError() where draining a value best-effort is intentional.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  [[nodiscard]] const Status& status() const { return status_; }

  /// Explicitly discards this result (value and error alike). Use only
  /// where ignoring the outcome is deliberate, e.g. draining a peer's
  /// final frame on a teardown path.
  void IgnoreError() const {}

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// Moves the value out. Requires ok().
  T ValueOrDie() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ has a value
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error to the caller. `lhs` may include a declaration:
///   PPSTATS_ASSIGN_OR_RETURN(auto key, Keygen(512));
#define PPSTATS_ASSIGN_OR_RETURN(lhs, expr)                     \
  PPSTATS_ASSIGN_OR_RETURN_IMPL_(                               \
      PPSTATS_RESULT_CONCAT_(_ppstats_result_, __LINE__), lhs, expr)

#define PPSTATS_RESULT_CONCAT_INNER_(a, b) a##b
#define PPSTATS_RESULT_CONCAT_(a, b) PPSTATS_RESULT_CONCAT_INNER_(a, b)
#define PPSTATS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace ppstats

#endif  // PPSTATS_COMMON_RESULT_H_
