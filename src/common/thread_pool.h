// Persistent worker-thread pool for data-parallel folds and
// fire-and-forget tasks.
//
// The server-side homomorphic product, the PIR row folds, and the
// micro-benchmarks all split an associative fold into per-thread slices.
// Spawning a std::thread per chunk (the seed implementation) costs a
// clone/join round trip on every request; this pool keeps the workers
// alive for the lifetime of the process and hands them task indices.
//
// Run() is cooperative: the calling thread executes task indices
// alongside the workers, so a Run() issued from inside a pool worker
// cannot deadlock — in the worst case the caller simply executes every
// index itself.
//
// Submit()/TrySubmit() feed a work-stealing scheduler layered on the
// same workers: each worker owns a deque, submissions land round-robin,
// a worker pops its own deque front-first (FIFO) and steals from the
// back of a sibling's deque when its own is empty. The reactor host
// (core/reactor_host.h) posts per-session protocol work here so the
// event loop never blocks on crypto; TrySubmit's queue_depth bound is
// its load-shedding valve.

#ifndef PPSTATS_COMMON_THREAD_POOL_H_
#define PPSTATS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ppstats {

/// Fixed-size pool of worker threads executing indexed task batches and
/// fire-and-forget tasks.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Starts `threads` workers (0 = no workers; Run() and Submit()
  /// execute inline on the calling thread).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Runs fn(0) .. fn(n-1) across the pool and the calling thread,
  /// returning once every invocation has completed. Concurrent Run()
  /// calls from different threads are safe and share the workers.
  void Run(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues a fire-and-forget task on one worker's deque (round-robin
  /// placement; idle workers steal). Pending tasks are drained before
  /// the destructor returns. With zero workers the task runs inline.
  void Submit(Task task);

  /// Like Submit(), but fails with ResourceExhausted when `queue_depth`
  /// tasks are already waiting (the task is not enqueued). The bound is
  /// approximate under concurrent submitters — it is a load-shedding
  /// valve, not an exact semaphore. queue_depth 0 means unbounded.
  [[nodiscard]] Status TrySubmit(Task task, size_t queue_depth);

  /// Tasks submitted but not yet picked up by a worker.
  size_t QueuedTasks() const {
    return pending_tasks_.load(std::memory_order_relaxed);
  }

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& Shared();

 private:
  // One batch submitted to Run(): workers atomically claim indices until
  // `next` passes `count`, then the last finisher signals the waiter.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex m;  // serializes the done_cv handshake only; counters are atomic
    CondVar done_cv;
  };

  // A submitted task plus its enqueue timestamp (sched.dispatch_ns).
  struct TaskItem {
    Task fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  // One worker's deque. The owner pops the front; thieves take the
  // back. Each deque has its own lock so stealing never serializes the
  // whole pool; a thread holds at most one deque lock at a time.
  struct TaskQueue {
    Mutex mu;
    std::deque<TaskItem> tasks PPSTATS_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  static void ExecuteFrom(Job& job);
  /// Pops one task (own front, else steal a sibling's back) and runs
  /// it. Returns false if every deque was empty.
  bool RunOneTask(size_t self);
  void Enqueue(TaskItem item);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<TaskQueue>> queues_;  // one per worker
  std::atomic<size_t> pending_tasks_{0};
  std::atomic<size_t> submit_cursor_{0};  // round-robin placement
  Mutex mu_;
  std::deque<std::shared_ptr<Job>> jobs_ PPSTATS_GUARDED_BY(mu_);
  bool stop_ PPSTATS_GUARDED_BY(mu_) = false;
  CondVar cv_;
};

}  // namespace ppstats

#endif  // PPSTATS_COMMON_THREAD_POOL_H_
