// Persistent worker-thread pool for data-parallel folds.
//
// The server-side homomorphic product, the PIR row folds, and the
// micro-benchmarks all split an associative fold into per-thread slices.
// Spawning a std::thread per chunk (the seed implementation) costs a
// clone/join round trip on every request; this pool keeps the workers
// alive for the lifetime of the process and hands them task indices.
//
// Run() is cooperative: the calling thread executes task indices
// alongside the workers, so a Run() issued from inside a pool worker
// cannot deadlock — in the worst case the caller simply executes every
// index itself.

#ifndef PPSTATS_COMMON_THREAD_POOL_H_
#define PPSTATS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ppstats {

/// Fixed-size pool of worker threads executing indexed task batches.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 = no workers; Run() executes inline).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Runs fn(0) .. fn(n-1) across the pool and the calling thread,
  /// returning once every invocation has completed. Concurrent Run()
  /// calls from different threads are safe and share the workers.
  void Run(size_t n, const std::function<void(size_t)>& fn);

  /// Process-wide pool sized to the hardware; created on first use.
  static ThreadPool& Shared();

 private:
  // One batch submitted to Run(): workers atomically claim indices until
  // `next` passes `count`, then the last finisher signals the waiter.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex m;  // serializes the done_cv handshake only; counters are atomic
    CondVar done_cv;
  };

  void WorkerLoop();
  static void ExecuteFrom(Job& job);

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::deque<std::shared_ptr<Job>> jobs_ PPSTATS_GUARDED_BY(mu_);
  bool stop_ PPSTATS_GUARDED_BY(mu_) = false;
  CondVar cv_;
};

}  // namespace ppstats

#endif  // PPSTATS_COMMON_THREAD_POOL_H_
