// Stopwatch: thin steady_clock wrapper used to attribute protocol time to
// the paper's four components (client encryption, server computation,
// communication, client decryption).

#ifndef PPSTATS_COMMON_STOPWATCH_H_
#define PPSTATS_COMMON_STOPWATCH_H_

#include <chrono>

namespace ppstats {

/// Measures wall-clock time in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppstats

#endif  // PPSTATS_COMMON_STOPWATCH_H_
