// RandomSource: abstract interface for random byte generation.
//
// The bigint layer (prime generation, random residues) consumes this
// interface; the crypto layer provides the concrete deterministic CSPRNG
// (ChaCha20Rng). Keeping the interface here avoids a dependency cycle
// between bigint and crypto.

#ifndef PPSTATS_COMMON_RANDOM_H_
#define PPSTATS_COMMON_RANDOM_H_

#include <cstdint>
#include <span>

namespace ppstats {

/// Produces uniformly random bytes. Implementations may be deterministic
/// (seeded) for reproducible experiments or backed by OS entropy.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with random bytes.
  virtual void Fill(std::span<uint8_t> out) = 0;

  /// Returns a uniformly random 64-bit value.
  uint64_t NextUint64() {
    uint8_t buf[8];
    Fill(buf);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | buf[i];
    return v;
  }

  /// Returns a uniformly random value in [0, bound) for bound > 0, via
  /// rejection sampling.
  uint64_t NextBelow(uint64_t bound) {
    // Rejection sampling over the largest multiple of `bound` below 2^64.
    uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      uint64_t v = NextUint64();
      if (v >= threshold) return v % bound;
    }
  }
};

}  // namespace ppstats

#endif  // PPSTATS_COMMON_RANDOM_H_
