#include "common/status.h"

namespace ppstats {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kSerializationError:
      return "SerializationError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ppstats
