// Status: lightweight error propagation for library code.
//
// Following the RocksDB / Arrow convention used across database systems,
// public library entry points return Status (or Result<T>, see result.h)
// instead of throwing exceptions. Exceptions remain disabled by policy in
// all core code paths.
//
// Status is class-level [[nodiscard]]: any call that returns a Status by
// value and ignores it is a compile warning (-Werror in CI). Where
// dropping a status is intentional — best-effort teardown, shutdown
// paths — say so explicitly with IgnoreError():
//
//   channel->Send(goodbye).IgnoreError();  // peer may already be gone

#ifndef PPSTATS_COMMON_STATUS_H_
#define PPSTATS_COMMON_STATUS_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ppstats {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed a malformed or out-of-range value
  kFailedPrecondition,///< object not in a state where the call is legal
  kOutOfRange,        ///< value outside representable / plaintext space
  kCryptoError,       ///< a cryptographic operation failed (e.g. no inverse)
  kProtocolError,     ///< peer sent an unexpected or malformed message
  kSerializationError,///< wire bytes could not be decoded
  kNotFound,          ///< requested entity does not exist
  kResourceExhausted, ///< a pool or buffer ran out
  kInternal,          ///< invariant violation inside the library
  kDeadlineExceeded,  ///< a blocking operation ran past its deadline
  kAlreadyExists,     ///< the entity (socket path, name) is already taken
};

/// Number of StatusCode values. Keep in sync when adding a code: the
/// status test walks [0, kStatusCodeCount) and fails if StatusCodeName
/// does not know every code (switch-exhaustiveness tripwire).
inline constexpr size_t kStatusCodeCount = 12;

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
[[nodiscard]] std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: either OK or a code plus a message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// message string only on error. Use the PPSTATS_RETURN_IF_ERROR macro to
/// propagate.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status SerializationError(std::string msg) {
    return Status(StatusCode::kSerializationError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Explicitly discards this status. Use only where ignoring a failure
  /// is a deliberate decision (best-effort teardown, already-failing
  /// paths), so the intent survives code review and grep.
  void IgnoreError() const {}

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller. Evaluates `expr` once.
#define PPSTATS_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::ppstats::Status _ppstats_status = (expr);      \
    if (!_ppstats_status.ok()) return _ppstats_status; \
  } while (0)

}  // namespace ppstats

#endif  // PPSTATS_COMMON_STATUS_H_
