#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace ppstats {

namespace {

// Metric pointers are resolved once and cached: the pool's hot path
// must not take the registry map lock per task.
struct PoolMetrics {
  obs::Counter* jobs =
      obs::MetricRegistry::Global().GetCounter("threadpool.jobs");
  obs::Counter* tasks =
      obs::MetricRegistry::Global().GetCounter("threadpool.tasks");
  obs::Gauge* queue_depth =
      obs::MetricRegistry::Global().GetGauge("threadpool.queue_depth");
  obs::Gauge* busy_workers =
      obs::MetricRegistry::Global().GetGauge("threadpool.busy_workers");
  // Work-stealing scheduler (Submit/TrySubmit) instruments.
  obs::Counter* submitted =
      obs::MetricRegistry::Global().GetCounter("sched.submitted");
  obs::Counter* steals =
      obs::MetricRegistry::Global().GetCounter("sched.steals");
  obs::Counter* rejected =
      obs::MetricRegistry::Global().GetCounter("sched.rejected");
  obs::Histogram* dispatch_ns =
      obs::MetricRegistry::Global().GetHistogram("sched.dispatch_ns");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();  // leaked on purpose
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  queues_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ExecuteFrom(Job& job) {
  size_t executed = 0;
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    (*job.fn)(i);
    ++executed;
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      // Take the job mutex so the waiter cannot miss the notification
      // between its predicate check and its wait.
      MutexLock lock(job.m);
      job.done_cv.NotifyAll();
    }
  }
  if (executed > 0) Metrics().tasks->Add(executed);
}

bool ThreadPool::RunOneTask(size_t self) {
  TaskItem item;
  bool stolen = false;
  {
    MutexLock lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      item = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
    }
  }
  if (!item.fn) {
    // Own deque empty: steal from the back of the first non-empty
    // sibling (back-stealing keeps the victim's front cache-warm).
    for (size_t k = 1; k < queues_.size() && !item.fn; ++k) {
      const size_t victim = (self + k) % queues_.size();
      MutexLock lock(queues_[victim]->mu);
      if (!queues_[victim]->tasks.empty()) {
        item = std::move(queues_[victim]->tasks.back());
        queues_[victim]->tasks.pop_back();
        stolen = true;
      }
    }
  }
  if (!item.fn) return false;
  pending_tasks_.fetch_sub(1, std::memory_order_relaxed);
  if (stolen) Metrics().steals->Increment();
  const auto now = std::chrono::steady_clock::now();
  Metrics().dispatch_ns->Record(static_cast<uint64_t>(
      std::max<int64_t>(0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                               now - item.enqueued)
                               .count())));
  Metrics().busy_workers->Add(1);
  item.fn();
  Metrics().busy_workers->Add(-1);
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (RunOneTask(self)) continue;
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && jobs_.empty() &&
             pending_tasks_.load(std::memory_order_acquire) == 0) {
        cv_.Wait(mu_);
      }
      if (pending_tasks_.load(std::memory_order_acquire) > 0) {
        continue;  // re-scan the task deques outside mu_
      }
      if (jobs_.empty()) return;  // stop_ set and nothing left to help with
      job = jobs_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->count) {
        // Exhausted batch still parked at the front; retire it.
        jobs_.pop_front();
        Metrics().queue_depth->Set(static_cast<int64_t>(jobs_.size()));
        continue;
      }
    }
    Metrics().busy_workers->Add(1);
    ExecuteFrom(*job);
    Metrics().busy_workers->Add(-1);
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    Metrics().tasks->Add(n);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = n;
  {
    MutexLock lock(mu_);
    jobs_.push_back(job);
    Metrics().queue_depth->Set(static_cast<int64_t>(jobs_.size()));
  }
  Metrics().jobs->Increment();
  cv_.NotifyAll();

  // Participate, then wait for workers still inside their last index.
  ExecuteFrom(*job);
  {
    MutexLock lock(job->m);
    while (job->done.load(std::memory_order_acquire) != job->count) {
      job->done_cv.Wait(job->m);
    }
  }
  // Retire the batch if a worker has not already done so.
  MutexLock lock(mu_);
  auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
  Metrics().queue_depth->Set(static_cast<int64_t>(jobs_.size()));
}

void ThreadPool::Enqueue(TaskItem item) {
  // Increment before the push: a worker that pops the task decrements
  // after observing the push (same deque lock), so the counter can
  // never underflow, and TrySubmit's bound counts in-flight enqueues.
  pending_tasks_.fetch_add(1, std::memory_order_release);
  const size_t target =
      submit_cursor_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    MutexLock lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(item));
  }
  Metrics().submitted->Increment();
  {
    // Empty critical section: pairs with the worker's predicate check
    // under mu_ so a worker cannot park between our push and notify.
    MutexLock lock(mu_);
  }
  cv_.NotifyOne();
}

void ThreadPool::Submit(Task task) {
  if (workers_.empty()) {
    Metrics().submitted->Increment();
    task();
    return;
  }
  Enqueue(TaskItem{std::move(task), std::chrono::steady_clock::now()});
}

Status ThreadPool::TrySubmit(Task task, size_t queue_depth) {
  if (workers_.empty()) {
    Metrics().submitted->Increment();
    task();
    return Status::OK();
  }
  if (queue_depth > 0 &&
      pending_tasks_.load(std::memory_order_acquire) >= queue_depth) {
    Metrics().rejected->Increment();
    return Status::ResourceExhausted("thread pool task queue is full");
  }
  Enqueue(TaskItem{std::move(task), std::chrono::steady_clock::now()});
  return Status::OK();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace ppstats
