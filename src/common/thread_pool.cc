#include "common/thread_pool.h"

#include <algorithm>

namespace ppstats {

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ExecuteFrom(Job& job) {
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    (*job.fn)(i);
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      // Take the job mutex so the waiter cannot miss the notification
      // between its predicate check and its wait.
      std::lock_guard<std::mutex> lock(job.m);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and nothing left to help with
      job = jobs_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->count) {
        // Exhausted batch still parked at the front; retire it.
        jobs_.pop_front();
        continue;
      }
    }
    ExecuteFrom(*job);
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  cv_.notify_all();

  // Participate, then wait for workers still inside their last index.
  ExecuteFrom(*job);
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->count;
    });
  }
  // Retire the batch if a worker has not already done so.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace ppstats
