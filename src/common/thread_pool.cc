#include "common/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ppstats {

namespace {

// Metric pointers are resolved once and cached: the pool's hot path
// must not take the registry map lock per task.
struct PoolMetrics {
  obs::Counter* jobs =
      obs::MetricRegistry::Global().GetCounter("threadpool.jobs");
  obs::Counter* tasks =
      obs::MetricRegistry::Global().GetCounter("threadpool.tasks");
  obs::Gauge* queue_depth =
      obs::MetricRegistry::Global().GetGauge("threadpool.queue_depth");
  obs::Gauge* busy_workers =
      obs::MetricRegistry::Global().GetGauge("threadpool.busy_workers");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();  // leaked on purpose
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ExecuteFrom(Job& job) {
  size_t executed = 0;
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    (*job.fn)(i);
    ++executed;
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      // Take the job mutex so the waiter cannot miss the notification
      // between its predicate check and its wait.
      MutexLock lock(job.m);
      job.done_cv.NotifyAll();
    }
  }
  if (executed > 0) Metrics().tasks->Add(executed);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && jobs_.empty()) cv_.Wait(mu_);
      if (jobs_.empty()) return;  // stop_ set and nothing left to help with
      job = jobs_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->count) {
        // Exhausted batch still parked at the front; retire it.
        jobs_.pop_front();
        Metrics().queue_depth->Set(static_cast<int64_t>(jobs_.size()));
        continue;
      }
    }
    Metrics().busy_workers->Add(1);
    ExecuteFrom(*job);
    Metrics().busy_workers->Add(-1);
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    Metrics().tasks->Add(n);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = n;
  {
    MutexLock lock(mu_);
    jobs_.push_back(job);
    Metrics().queue_depth->Set(static_cast<int64_t>(jobs_.size()));
  }
  Metrics().jobs->Increment();
  cv_.NotifyAll();

  // Participate, then wait for workers still inside their last index.
  ExecuteFrom(*job);
  {
    MutexLock lock(job->m);
    while (job->done.load(std::memory_order_acquire) != job->count) {
      job->done_cv.Wait(job->m);
    }
  }
  // Retire the batch if a worker has not already done so.
  MutexLock lock(mu_);
  auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
  Metrics().queue_depth->Set(static_cast<int64_t>(jobs_.size()));
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace ppstats
