// Clang thread-safety annotation macros (Abseil-style).
//
// These expand to Clang's `capability` attributes when compiling with
// Clang, turning the locking discipline into something the compiler
// checks on every build (-Wthread-safety, promoted to an error in the
// CI `analyze` job). Under GCC and other compilers they expand to
// nothing, so annotated code stays portable.
//
// Use them on the wrapper types in common/mutex.h and on the data they
// protect:
//
//   Mutex mu_;
//   std::vector<Job> jobs_ PPSTATS_GUARDED_BY(mu_);
//
//   void Drain() PPSTATS_REQUIRES(mu_);   // caller must hold mu_
//   void Stop() PPSTATS_EXCLUDES(mu_);    // caller must NOT hold mu_
//
// This is a *static* race detector: unlike the TSan CI job, which only
// sees interleavings the tests happen to produce, these annotations
// reject any code path that touches guarded state without the lock —
// including paths no test exercises.

#ifndef PPSTATS_COMMON_THREAD_ANNOTATIONS_H_
#define PPSTATS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PPSTATS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PPSTATS_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define PPSTATS_CAPABILITY(x) PPSTATS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define PPSTATS_SCOPED_CAPABILITY PPSTATS_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define PPSTATS_GUARDED_BY(x) PPSTATS_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member is protected
/// by the given capability (the pointer itself is not).
#define PPSTATS_PT_GUARDED_BY(x) PPSTATS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function may only be called while holding the given
/// capabilities (and does not release them).
#define PPSTATS_REQUIRES(...) \
  PPSTATS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that a function may only be called while *not* holding the
/// given capabilities (it acquires and releases them itself).
#define PPSTATS_EXCLUDES(...) \
  PPSTATS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that a function acquires the given capabilities and holds
/// them on return.
#define PPSTATS_ACQUIRE(...) \
  PPSTATS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the given capabilities, which the
/// caller must hold on entry.
#define PPSTATS_RELEASE(...) \
  PPSTATS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that a function attempts to acquire the capability and
/// returns `result` (true/false) on success.
#define PPSTATS_TRY_ACQUIRE(...) \
  PPSTATS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability
/// (lets accessors expose a member mutex without losing analysis).
#define PPSTATS_RETURN_CAPABILITY(x) \
  PPSTATS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant
/// (see docs/STATIC_ANALYSIS.md).
#define PPSTATS_NO_THREAD_SAFETY_ANALYSIS \
  PPSTATS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PPSTATS_COMMON_THREAD_ANNOTATIONS_H_
