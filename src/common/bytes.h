// Byte-buffer aliases and hex encoding helpers shared across modules.

#ifndef PPSTATS_COMMON_BYTES_H_
#define PPSTATS_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace ppstats {

/// Owned byte buffer used for wire messages and key material.
using Bytes = std::vector<uint8_t>;

/// Non-owning view of bytes.
using BytesView = std::span<const uint8_t>;

/// Encodes bytes as lowercase hex ("deadbeef").
std::string ToHex(BytesView bytes);

/// Decodes lowercase/uppercase hex into bytes. Fails on odd length or
/// non-hex characters.
[[nodiscard]] Result<Bytes> FromHex(std::string_view hex);

/// Constant-time byte equality (length leaks; contents do not).
bool ConstantTimeEqual(BytesView a, BytesView b);

}  // namespace ppstats

#endif  // PPSTATS_COMMON_BYTES_H_
