// Annotated mutex wrappers: the types the thread-safety analysis can see.
//
// Clang's -Wthread-safety tracks lock state through attribute-annotated
// types only; std::mutex and std::lock_guard carry no annotations, so
// code using them directly gets no static checking. These thin wrappers
// delegate to the standard primitives (zero behavioral difference —
// fig2–fig9 determinism is untouched) while exposing the capability
// attributes from common/thread_annotations.h:
//
//   Mutex mu_;
//   size_t pending_ PPSTATS_GUARDED_BY(mu_);
//   CondVar cv_;
//
//   {
//     MutexLock lock(mu_);
//     while (pending_ == 0) cv_.Wait(mu_);   // analyzable wait loop
//     --pending_;
//   }
//
// CondVar deliberately has no predicate-taking Wait overload: the
// analysis cannot see through a lambda that touches guarded state, so
// wait loops are written out at the call site (`while (!pred) Wait`),
// where every guarded access is visible to the checker.

#ifndef PPSTATS_COMMON_MUTEX_H_
#define PPSTATS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace ppstats {

/// A std::mutex annotated as a capability. Prefer MutexLock over manual
/// Lock/Unlock pairs.
class PPSTATS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PPSTATS_ACQUIRE() { mu_.lock(); }
  void Unlock() PPSTATS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() PPSTATS_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope over a Mutex (std::lock_guard with annotations).
class PPSTATS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PPSTATS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PPSTATS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Wait/WaitUntil atomically
/// release the mutex while blocking and reacquire it before returning,
/// exactly like std::condition_variable — the annotations say the
/// caller holds the mutex across the call, which is the net effect.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). Callers loop on their
  /// predicate: `while (!ready_) cv_.Wait(mu_);`
  void Wait(Mutex& mu) PPSTATS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still logically holds mu
  }

  /// Blocks until notified or `deadline` passes. Returns false on
  /// timeout. Spurious wakeups return true; callers loop on their
  /// predicate either way.
  [[nodiscard]] bool WaitUntil(Mutex& mu,
                               std::chrono::steady_clock::time_point deadline)
      PPSTATS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Blocks for at most `timeout`. Returns false on timeout.
  [[nodiscard]] bool WaitFor(Mutex& mu, std::chrono::milliseconds timeout)
      PPSTATS_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ppstats

#endif  // PPSTATS_COMMON_MUTEX_H_
