#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "core/messages.h"
#include "core/query.h"
#include "core/session.h"
#include "crypto/chacha20_rng.h"
#include "crypto/paillier.h"
#include "net/channel.h"
#include "obs/span.h"

namespace ppstats {

/// Per-session fan-out router. One instance serves one client session:
/// it remembers the client's key blob from the handshake (shards must
/// encrypt against the same key) and keeps one persistent connection
/// per shard endpoint, dialed lazily on first use and redialed after
/// any failure.
///
/// Locking: conn_mu_ only guards the *map structure* (find/insert of
/// nodes). The channel inside a node is touched exclusively by the one
/// fan-out leg working that endpoint — shard URIs are unique within a
/// shard map and a session runs one query at a time — so dialing and
/// I/O happen outside the lock and legs never serialize on each other.
class CoordinatorRouter : public QueryRouter {
 public:
  explicit CoordinatorRouter(ShardCoordinator* coordinator)
      : coordinator_(coordinator) {}

  ~CoordinatorRouter() override {
    // Best-effort clean goodbye so shard hosts count these sessions as
    // finished rather than vanished.
    MutexLock lock(conn_mu_);
    for (auto& [uri, conn] : conns_) {
      if (conn.channel != nullptr) {
        (void)conn.channel->Send(GoodbyeMessage{}.Encode());
      }
    }
  }

  bool HasDefault() const override {
    return !coordinator_->DefaultName().empty();
  }

  uint64_t DefaultRows() const override {
    const std::string name = coordinator_->DefaultName();
    return name.empty() ? 0 : coordinator_->registry_->ShardedRows(name);
  }

  [[nodiscard]] Status OnClientHello(BytesView key_blob,
                                     const PaillierPublicKey& pub) override {
    (void)pub;
    key_blob_.assign(key_blob.begin(), key_blob.end());
    return Status::OK();
  }

  [[nodiscard]] Result<OpenedQuery> Open(const QueryHeaderMessage& header,
                                         const PaillierPublicKey& pub) override;

  [[nodiscard]] Result<OpenedQuery> OpenDefault(
      const PaillierPublicKey& pub) override {
    // The v1 implicit query: a plain sum over the default column.
    QueryHeaderMessage header;
    header.kind = static_cast<uint8_t>(StatisticKind::kSum);
    return Open(header, pub);
  }

  /// The live channel to `uri`, dialing and handshaking a new session
  /// if none is cached. The returned pointer stays valid until
  /// DropUpstream(uri) or destruction.
  [[nodiscard]] Result<Channel*> UpstreamChannel(const std::string& uri)
      PPSTATS_EXCLUDES(conn_mu_) {
    ShardConn* conn = Slot(uri);
    if (conn->channel != nullptr) return conn->channel.get();
    coordinator_->upstream_redials_->Increment();
    const CoordinatorOptions& opt = coordinator_->options_;
    PPSTATS_ASSIGN_OR_RETURN(
        std::unique_ptr<Channel> channel,
        UriDialer(uri, opt.shard_io_deadline_ms, opt.connect_deadline_ms)());
    ClientHelloMessage hello;
    hello.protocol_version = kSessionProtocolV2;
    hello.public_key_blob = key_blob_;
    PPSTATS_RETURN_IF_ERROR(channel->Send(hello.Encode()));
    PPSTATS_ASSIGN_OR_RETURN(Bytes frame, channel->Receive());
    PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(frame));
    if (type == MessageType::kError) return StatusFromErrorFrame(frame);
    PPSTATS_ASSIGN_OR_RETURN(ServerHelloMessage server_hello,
                             ServerHelloMessage::Decode(frame));
    if (server_hello.protocol_version != kSessionProtocolV2) {
      return Status::ProtocolError(
          "shard server negotiated an unexpected version");
    }
    conn->channel = std::move(channel);
    return conn->channel.get();
  }

  /// Forgets the cached connection to `uri` (after any failure: the
  /// session on it is in an unknown protocol state, so the next attempt
  /// redials from scratch).
  void DropUpstream(const std::string& uri) PPSTATS_EXCLUDES(conn_mu_) {
    Slot(uri)->channel.reset();
  }

 private:
  struct ShardConn {
    std::unique_ptr<Channel> channel;
  };

  ShardConn* Slot(const std::string& uri) PPSTATS_EXCLUDES(conn_mu_) {
    MutexLock lock(conn_mu_);
    return &conns_[uri];  // map nodes are stable across inserts
  }

  ShardCoordinator* coordinator_;
  Bytes key_blob_;
  Mutex conn_mu_;
  /// Map *structure* only — see the class comment: node contents are
  /// used outside the lock through the stable ShardConn* that Slot()
  /// hands out, which the annotation (deliberately) does not track.
  std::map<std::string, ShardConn> conns_ PPSTATS_GUARDED_BY(conn_mu_);
};

/// One fan-out query: buffers the client's encrypted index vector in
/// global row order, then scatters slices to the shards and gathers
/// their encrypted partials into one response frame.
class ClusterExecution : public QueryExecution {
 public:
  ClusterExecution(CoordinatorRouter* router, ShardCoordinator* coordinator,
                   StatisticKind kind, std::string column, std::string column2,
                   std::vector<ShardDescriptor> shards, PaillierPublicKey pub,
                   uint64_t rows)
      : router_(router),
        coordinator_(coordinator),
        kind_(kind),
        column_(std::move(column)),
        column2_(std::move(column2)),
        shards_(std::move(shards)),
        pub_(std::move(pub)),
        rows_(rows) {
    weights_.reserve(rows_);
  }

  [[nodiscard]] Result<std::optional<Bytes>> HandleRequest(
      BytesView frame) override {
    // Mirrors the FoldEngine contract (and its error strings) so a
    // client cannot tell a coordinator from a plain server.
    if (finished_) {
      return Status::FailedPrecondition("response already produced");
    }
    PPSTATS_ASSIGN_OR_RETURN(IndexBatchMessage batch,
                             IndexBatchMessage::Decode(pub_, frame));
    if (batch.start_index != weights_.size()) {
      return Status::ProtocolError("out-of-order index chunk");
    }
    if (batch.start_index + batch.ciphertexts.size() > rows_) {
      return Status::ProtocolError("index chunk overruns the database");
    }
    for (PaillierCiphertext& ct : batch.ciphertexts) {
      weights_.push_back(std::move(ct));
    }
    if (weights_.size() < rows_) return std::optional<Bytes>(std::nullopt);
    PPSTATS_ASSIGN_OR_RETURN(Bytes response, FanOut());
    return std::optional<Bytes>(std::move(response));
  }

  bool Finished() const override { return finished_; }
  double compute_seconds() const override { return compute_seconds_; }

 private:
  struct ShardOutcome {
    Status status = Status::OK();
    std::optional<PaillierCiphertext> sum;
  };

  [[nodiscard]] Result<Bytes> FanOut();
  [[nodiscard]] Status QueryShard(size_t i, uint64_t nonce,
                                  PaillierCiphertext* out);
  [[nodiscard]] Status QueryShardOnce(size_t i, uint64_t nonce,
                                      PaillierCiphertext* out);

  CoordinatorRouter* router_;
  ShardCoordinator* coordinator_;
  StatisticKind kind_;
  std::string column_;
  std::string column2_;
  std::vector<ShardDescriptor> shards_;
  PaillierPublicKey pub_;
  uint64_t rows_;
  /// Client ciphertexts E(w_i), indexed by global row.
  std::vector<PaillierCiphertext> weights_;
  bool finished_ = false;
  double compute_seconds_ = 0;
};

Result<OpenedQuery> CoordinatorRouter::Open(const QueryHeaderMessage& header,
                                            const PaillierPublicKey& pub) {
  PPSTATS_ASSIGN_OR_RETURN(StatisticKind kind,
                           StatisticKindFromWire(header.kind));
  if (header.blind_partial) {
    // The extension is coordinator->shard only; a client asking the
    // coordinator for blinded partials is confused (or probing).
    return Status::InvalidArgument(
        "blind_partial is not accepted from clients");
  }
  std::string column = header.column;
  if (column.empty()) {
    column = coordinator_->DefaultName();
    if (column.empty()) {
      return Status::FailedPrecondition("server has no default column");
    }
  }
  const std::vector<ShardDescriptor>* shards =
      coordinator_->registry_->FindShards(column);
  if (shards == nullptr) return Status::NotFound("unknown column: " + column);
  if (kind == StatisticKind::kProduct && header.column2.empty()) {
    return Status::InvalidArgument("product query needs a second column");
  }
  if (kind != StatisticKind::kProduct && !header.column2.empty()) {
    return Status::InvalidArgument(
        "second column given for a single-column statistic");
  }
  const CoordinatorOptions& opt = coordinator_->options_;
  if (opt.blind_partials) {
    // Raw decrypted totals are sum + k*M for k < d (d = shard count);
    // they must not wrap the plaintext space mod n.
    if (BigInt(static_cast<uint64_t>(shards->size() + 1)) *
            opt.blind_modulus >
        pub.n()) {
      return Status::InvalidArgument(
          "blinding modulus too large for the key: need (d+1)M <= n");
    }
  }
  OpenedQuery opened;
  opened.rows = shards->back().end;
  opened.execution = std::make_unique<ClusterExecution>(
      this, coordinator_, kind, column, header.column2, *shards, pub,
      opened.rows);
  return opened;
}

Result<Bytes> ClusterExecution::FanOut() {
  finished_ = true;
  coordinator_->fanouts_->Increment();
  obs::ObsSpan fanout(obs::kSpanClusterFanout, coordinator_->metrics_);
  const CoordinatorOptions& opt = coordinator_->options_;
  const uint64_t nonce =
      opt.blind_partials ? coordinator_->NextNonce() : 0;

  std::vector<ShardOutcome> outcomes(shards_.size());
  coordinator_->pool_->Run(shards_.size(), [&](size_t i) {
    PaillierCiphertext sum;
    Status status = QueryShard(i, nonce, &sum);
    if (status.ok()) outcomes[i].sum = std::move(sum);
    outcomes[i].status = std::move(status);
  });

  // Gather: multiply the encrypted partials (plaintext addition).
  double merge_s = 0;
  std::optional<PaillierCiphertext> merged;
  uint64_t responded = 0;
  uint64_t rows_covered = 0;
  std::optional<Status> first_failure;
  {
    obs::ScopedPhaseTimer timer(&merge_s, obs::kSpanServerCompute,
                                coordinator_->metrics_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (!outcomes[i].status.ok()) {
        if (!first_failure.has_value()) {
          first_failure = Status(
              outcomes[i].status.code(),
              "shard " + std::to_string(shards_[i].id) + " (" +
                  shards_[i].uri + ") failed: " +
                  outcomes[i].status.message());
        }
        continue;
      }
      ++responded;
      rows_covered += shards_[i].end - shards_[i].begin;
      merged = merged.has_value()
                   ? Paillier::Add(pub_, *merged, *outcomes[i].sum)
                   : std::move(*outcomes[i].sum);
    }
  }
  compute_seconds_ += merge_s;

  if (!first_failure.has_value()) {
    SumResponseMessage response;
    response.sum = std::move(*merged);
    return response.Encode(pub_);
  }
  // A non-retryable failure (a shard rejecting the query as malformed)
  // would reject identically on every shard: report it rather than
  // dress it up as partial coverage.
  const bool serve_partial =
      opt.partial_policy == PartialResultPolicy::kPartial && responded > 0 &&
      IsRetryableStatus(*first_failure);
  if (!serve_partial) return *first_failure;
  coordinator_->partials_served_->Increment();
  PartialResultMessage partial;
  partial.sum = std::move(*merged);
  partial.shards_total = shards_.size();
  partial.shards_responded = responded;
  partial.rows_covered = rows_covered;
  return partial.Encode(pub_);
}

Status ClusterExecution::QueryShard(size_t i, uint64_t nonce,
                                    PaillierCiphertext* out) {
  obs::ObsSpan span(obs::kSpanClusterShardQuery, coordinator_->metrics_);
  const CoordinatorOptions& opt = coordinator_->options_;
  // Deterministic per-(query, shard) jitter stream: fan-outs stay
  // reproducible under a fixed nonce sequence.
  ChaCha20Rng backoff_rng(nonce * 1000003 + shards_[i].id);
  Status last = Status::OK();
  for (size_t attempt = 1; attempt <= opt.shard_attempts; ++attempt) {
    if (attempt > 1) {
      coordinator_->upstream_retries_->Increment();
      const uint32_t backoff_ms =
          RetryBackoffMs(attempt - 1, opt.retry, backoff_rng);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    last = QueryShardOnce(i, nonce, out);
    if (last.ok()) {
      coordinator_->shard_queries_ok_->Increment();
      return last;
    }
    // The upstream session is in an unknown state; redial next attempt.
    router_->DropUpstream(shards_[i].uri);
    if (!IsRetryableStatus(last)) break;
  }
  coordinator_->shard_queries_failed_->Increment();
  return last;
}

Status ClusterExecution::QueryShardOnce(size_t i, uint64_t nonce,
                                        PaillierCiphertext* out) {
  const ShardDescriptor& shard = shards_[i];
  PPSTATS_ASSIGN_OR_RETURN(Channel * channel,
                           router_->UpstreamChannel(shard.uri));

  QueryHeaderMessage header;
  header.kind = static_cast<uint8_t>(kind_);
  header.column = column_;
  header.column2 = column2_;
  if (coordinator_->options_.blind_partials) {
    header.blind_partial = true;
    header.blind_nonce = nonce;
  }
  PPSTATS_RETURN_IF_ERROR(channel->Send(header.Encode()));
  PPSTATS_ASSIGN_OR_RETURN(Bytes accept_frame, channel->Receive());
  PPSTATS_ASSIGN_OR_RETURN(MessageType accept_type,
                           PeekMessageType(accept_frame));
  if (accept_type == MessageType::kError) {
    return StatusFromErrorFrame(accept_frame);
  }
  PPSTATS_ASSIGN_OR_RETURN(QueryAcceptMessage accept,
                           QueryAcceptMessage::Decode(accept_frame));
  const uint64_t shard_rows = shard.end - shard.begin;
  if (accept.rows != shard_rows) {
    return Status::ProtocolError(
        "shard row count does not match its shard map range");
  }

  // Upload the shard's slice of the index vector, re-based to local
  // row 0 (a shard stores rows [begin, end) as [0, end - begin)).
  const uint64_t chunk = coordinator_->options_.chunk_size == 0
                             ? shard_rows
                             : coordinator_->options_.chunk_size;
  for (uint64_t off = 0; off < shard_rows; off += chunk) {
    IndexBatchMessage batch;
    batch.start_index = off;
    const uint64_t count = std::min<uint64_t>(chunk, shard_rows - off);
    const auto first =
        weights_.begin() + static_cast<ptrdiff_t>(shard.begin + off);
    batch.ciphertexts.assign(first, first + static_cast<ptrdiff_t>(count));
    PPSTATS_RETURN_IF_ERROR(channel->Send(batch.Encode(pub_)));
  }

  PPSTATS_ASSIGN_OR_RETURN(Bytes response_frame, channel->Receive());
  PPSTATS_ASSIGN_OR_RETURN(MessageType response_type,
                           PeekMessageType(response_frame));
  if (response_type == MessageType::kError) {
    return StatusFromErrorFrame(response_frame);
  }
  PPSTATS_ASSIGN_OR_RETURN(SumResponseMessage response,
                           SumResponseMessage::Decode(pub_, response_frame));
  *out = std::move(response.sum);
  return Status::OK();
}

ShardCoordinator::ShardCoordinator(const ColumnRegistry* registry,
                                   CoordinatorOptions options)
    : registry_(registry), options_(std::move(options)) {
  pool_ = options_.pool != nullptr ? options_.pool : &ThreadPool::Shared();
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : &obs::MetricRegistry::Global();
  fanouts_ = metrics_->GetCounter("cluster.fanouts");
  shard_queries_ok_ = metrics_->GetCounter("cluster.shard_queries_ok");
  shard_queries_failed_ = metrics_->GetCounter("cluster.shard_queries_failed");
  upstream_retries_ = metrics_->GetCounter("cluster.upstream_retries");
  upstream_redials_ = metrics_->GetCounter("cluster.upstream_redials");
  partials_served_ = metrics_->GetCounter("cluster.partials_served");
}

std::string ShardCoordinator::DefaultName() const {
  if (!options_.default_column.empty()) return options_.default_column;
  std::vector<std::string> names = registry_->ShardedColumnNames();
  if (names.size() == 1) return names.front();
  return std::string();
}

Status ShardCoordinator::Validate() const {
  if (registry_ == nullptr || registry_->ShardedColumnNames().empty()) {
    return Status::FailedPrecondition("coordinator has no sharded columns");
  }
  if (!options_.default_column.empty() &&
      registry_->FindShards(options_.default_column) == nullptr) {
    return Status::FailedPrecondition("default column has no shard map: " +
                                      options_.default_column);
  }
  if (options_.shard_attempts == 0) {
    return Status::InvalidArgument("shard_attempts must be >= 1");
  }
  if (options_.blind_partials) {
    if (options_.blind_seed.empty()) {
      return Status::InvalidArgument("blinded partials need a blinding seed");
    }
    if (options_.blind_modulus < BigInt(2)) {
      return Status::InvalidArgument("blinding modulus must be >= 2");
    }
    if (options_.partial_policy == PartialResultPolicy::kPartial) {
      return Status::InvalidArgument(
          "partial results cannot be served with blinded partials: the "
          "missing shards' zero-shares would not cancel");
    }
  }
  return Status::OK();
}

std::function<std::shared_ptr<QueryRouter>()>
ShardCoordinator::RouterFactory() {
  return [this]() -> std::shared_ptr<QueryRouter> {
    return std::make_shared<CoordinatorRouter>(this);
  };
}

}  // namespace ppstats
