// Sharded cluster coordinator: homomorphic scatter-gather over real
// shard servers.
//
// A ShardCoordinator serves the ordinary protocol-v2 client session
// (through ServiceHost's router_factory seam) but owns no column data
// itself. Its ColumnRegistry carries *shard maps* instead
// (ColumnRegistry::SetShards): per column, an ordered list of
// {shard id, endpoint uri, [begin, end) global row range}. When a
// client finishes uploading its encrypted index vector, the
// coordinator fans the query out concurrently to every shard's
// ppstats_server over persistent upstream connections — each shard
// folds its slice of the vector against its local rows — and merges
// the encrypted partial sums homomorphically (Paillier ciphertext
// multiply = plaintext add) into the single SumResponse the client
// expects. The client cannot tell a coordinator from a plain server
// on the happy path.
//
// Privacy: the coordinator decrypts nothing — partials and the merged
// total are ciphertexts under the client's key. To also hide each
// shard's *partial* from a coordinator colluding with the client's
// key holder, blind_partials makes every fan-out carry a fresh nonce
// and each shard adds its pairwise-PRF zero-share to the fold
// (crypto/zero_share.h): individual partials are uniformly blinded,
// yet the shares cancel in the merged sum (mod the shared blinding
// modulus M, which the client reduces by).
//
// Failure story: each shard leg is retried per CoordinatorOptions
// (bounded connects via net/retry's connect deadline, per-attempt
// backoff); when a shard stays down, partial_policy picks between
// failing the query and answering with an explicit PartialResult
// frame that declares exactly which fraction of the row space the
// sum covers. Blinded partials force the fail policy: a missing
// shard's zero-share would not cancel, leaving garbage.
//
// Everything is observable under cluster.* counters and the
// span.cluster_* histograms in the chosen MetricRegistry.

#ifndef PPSTATS_CLUSTER_COORDINATOR_H_
#define PPSTATS_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/query_exec.h"
#include "db/column_registry.h"
#include "net/retry.h"
#include "obs/metrics.h"

namespace ppstats {

class CoordinatorRouter;
class ClusterExecution;

/// What the coordinator answers when shards fail past their retry
/// budget.
enum class PartialResultPolicy : uint8_t {
  /// Propagate the first shard failure to the client as an Error frame.
  kFail,
  /// Answer with a PartialResult frame: the merged fold over the
  /// responsive shards, flagged with how many shards and rows it
  /// covers. Requires blind_partials off (see file comment).
  kPartial,
};

/// Coordinator configuration.
struct CoordinatorOptions {
  /// Column served to v1 clients and unnamed v2 queries. Empty picks
  /// the registry's sole sharded column when it has exactly one.
  std::string default_column;

  /// Attempts per shard per query, including the first (>= 1). Each
  /// retry redials the shard (the cached upstream connection is
  /// dropped on any failure).
  size_t shard_attempts = 2;

  /// Read/write deadline on every upstream channel; a shard that
  /// stalls longer mid-query fails that attempt with DeadlineExceeded.
  /// 0 = block forever.
  uint32_t shard_io_deadline_ms = 0;

  /// Bound on each upstream connect() itself (net/socket_channel.h);
  /// without it a blackholed shard pins a fan-out leg on the kernel's
  /// own timeout. 0 = kernel default.
  uint32_t connect_deadline_ms = 0;

  /// Backoff parameters between shard attempts (max_attempts is
  /// ignored here; shard_attempts is the budget).
  RetryOptions retry;

  /// Failure policy once a shard exhausts its attempts.
  PartialResultPolicy partial_policy = PartialResultPolicy::kFail;

  /// Blind shard partials with pairwise zero-shares. All shard servers
  /// must run with the matching ShardBlindConfig (same seed, count,
  /// modulus); clients reduce decrypted totals mod blind_modulus.
  bool blind_partials = false;
  Bytes blind_seed;
  BigInt blind_modulus = BigInt(1) << 64;

  /// Ciphertexts per upstream IndexBatch frame; 0 sends each shard its
  /// whole slice in one frame.
  size_t chunk_size = 0;

  /// Pool the fan-out legs run on; null uses ThreadPool::Shared().
  ThreadPool* pool = nullptr;

  /// Registry for cluster.* counters and span histograms; null uses
  /// the process-wide registry. A ServiceHost's own registry makes the
  /// counters show up in its stats JSON dumps.
  obs::MetricRegistry* metrics = nullptr;
};

/// The coordinator: one per process, shared by every client session
/// through RouterFactory(). `registry` must outlive the coordinator
/// and stay unmodified while serving; only its shard maps are used.
class ShardCoordinator {
 public:
  ShardCoordinator(const ColumnRegistry* registry, CoordinatorOptions options);

  /// Checks the registry/options combination before serving: at least
  /// one sharded column, a sharded default, a sane retry budget, and a
  /// coherent blinding configuration.
  [[nodiscard]] Status Validate() const;

  /// Plugs into ServiceHostOptions::router_factory: every session gets
  /// a fresh CoordinatorRouter holding its own upstream connections.
  /// The coordinator must outlive the host it is plugged into.
  [[nodiscard]] std::function<std::shared_ptr<QueryRouter>()> RouterFactory();

  /// The default column name ("" when none can be resolved).
  std::string DefaultName() const;

 private:
  friend class CoordinatorRouter;
  friend class ClusterExecution;

  /// Fresh per-query blinding nonce. Uniqueness under one seed is what
  /// keeps zero-shares one-time (crypto/zero_share.h); a process-wide
  /// atomic is enough because all sessions share this coordinator.
  uint64_t NextNonce() {
    return nonce_.fetch_add(1, std::memory_order_relaxed);
  }

  const ColumnRegistry* registry_;
  CoordinatorOptions options_;
  ThreadPool* pool_;                 ///< resolved from options
  obs::MetricRegistry* metrics_;     ///< resolved from options
  std::atomic<uint64_t> nonce_{1};

  // cluster.* counters, resolved once (registry counter pointers stay
  // valid across MetricRegistry::Reset).
  obs::Counter* fanouts_;             ///< cluster.fanouts
  obs::Counter* shard_queries_ok_;    ///< cluster.shard_queries_ok
  obs::Counter* shard_queries_failed_;///< cluster.shard_queries_failed
  obs::Counter* upstream_retries_;    ///< cluster.upstream_retries
  obs::Counter* upstream_redials_;    ///< cluster.upstream_redials
  obs::Counter* partials_served_;     ///< cluster.partials_served
};

}  // namespace ppstats

#endif  // PPSTATS_CLUSTER_COORDINATOR_H_
