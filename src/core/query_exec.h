// The query execution seam between the session protocol drivers and
// whatever actually answers a query.
//
// Both server engines (the blocking ServerSession loop and the reactor
// ServerProtocolFsm) speak the same v1/v2 frame protocol but used to be
// hard-wired to a local SumServer fold. This header splits that
// dependency in two:
//
//  * QueryRouter — per-session policy object: resolves a QueryHeader
//    (or the v1 implicit default query) into an opened query. The
//    default LocalQueryRouter compiles against the session's
//    ColumnRegistry and executes locally; the cluster coordinator
//    (src/cluster) substitutes a router that fans the query out to
//    shard servers instead.
//  * QueryExecution — per-query object: consumes the client's request
//    frames and eventually yields one encoded response frame, exactly
//    the SumServer::HandleRequest contract.
//
// ServiceHostOptions::router_factory plugs a custom router into every
// session of a host; sessions without one build a LocalQueryRouter.

#ifndef PPSTATS_CORE_QUERY_EXEC_H_
#define PPSTATS_CORE_QUERY_EXEC_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/status.h"
#include "core/messages.h"
#include "core/selected_sum.h"
#include "crypto/paillier.h"
#include "db/column_registry.h"

namespace ppstats {

/// Shard-side zero-share blinding (crypto/zero_share.h): this server is
/// party `shard_index` of `shard_count`, sharing `seed` and `modulus`
/// with its peers. When a QueryHeader requests blinded partials, the
/// local router adds the derived share to the fold so the coordinator
/// only ever sees p_i + R_i mod the key. All shards of one deployment
/// must agree on seed, count, and modulus.
struct ShardBlindConfig {
  uint32_t shard_index = 0;
  uint32_t shard_count = 0;
  Bytes seed;
  BigInt modulus = BigInt(1) << 64;
};

/// One in-flight query: frames in, at most one response frame out.
/// Mirrors SumServer::HandleRequest so local and remote execution are
/// interchangeable to the protocol drivers.
///
/// Threading: like its QueryRouter, an execution belongs to exactly
/// one session and is only ever driven from that session's driver
/// thread (the blocking ServerSession loop or the reactor shard that
/// owns the connection), so implementations hold no locks. Anything
/// an implementation fans out to other threads internally (e.g. the
/// SumServer worker pool) must be joined before HandleRequest returns.
class QueryExecution {
 public:
  virtual ~QueryExecution() = default;

  /// Consumes one request frame. Returns the encoded response frame
  /// once the query is complete, std::nullopt before that.
  [[nodiscard]] virtual Result<std::optional<Bytes>> HandleRequest(
      BytesView frame) = 0;

  /// True once the response has been produced.
  virtual bool Finished() const = 0;

  /// Compute time attributable to this query (drives the host's
  /// server_compute_ns counter).
  virtual double compute_seconds() const = 0;
};

/// A successfully opened query: the row count to advertise in
/// QueryAccept (or ServerHello for v1) plus its execution.
struct OpenedQuery {
  uint64_t rows = 0;
  std::unique_ptr<QueryExecution> execution;
};

/// Per-session query resolution policy. One router instance serves one
/// session; calls arrive in protocol order from a single driver thread.
class QueryRouter {
 public:
  virtual ~QueryRouter() = default;

  /// True when the session has a default column (required by v1, used
  /// by v2 headers with an empty column name).
  virtual bool HasDefault() const = 0;

  /// Rows of the default column (the ServerHello database_size field);
  /// 0 without a default.
  virtual uint64_t DefaultRows() const = 0;

  /// Observes the client handshake. `pub` is the already-validated key
  /// the responses must be encrypted against; `key_blob` is its wire
  /// serialization (a fan-out router forwards the blob upstream).
  [[nodiscard]] virtual Status OnClientHello(BytesView key_blob,
                                             const PaillierPublicKey& pub) = 0;

  /// Opens the query described by a v2 QueryHeader.
  [[nodiscard]] virtual Result<OpenedQuery> Open(
      const QueryHeaderMessage& header, const PaillierPublicKey& pub) = 0;

  /// Opens the v1 implicit query: a plain sum over the default column.
  [[nodiscard]] virtual Result<OpenedQuery> OpenDefault(
      const PaillierPublicKey& pub) = 0;
};

/// Wraps a CompiledQuery + SumServer fold as a QueryExecution.
class LocalQueryExecution : public QueryExecution {
 public:
  LocalQueryExecution(const PaillierPublicKey& pub, const CompiledQuery& query,
                      size_t worker_threads)
      : server_(pub, query, worker_threads) {}

  [[nodiscard]] Result<std::optional<Bytes>> HandleRequest(
      BytesView frame) override {
    return server_.HandleRequest(frame);
  }
  bool Finished() const override { return server_.Finished(); }
  double compute_seconds() const override { return server_.compute_seconds(); }

 private:
  SumServer server_;
};

/// Everything LocalQueryRouter needs besides the registry (mirrors the
/// corresponding ServerSessionOptions fields).
struct LocalRouterConfig {
  const Database* default_column = nullptr;
  size_t worker_threads = 1;
  std::optional<ShardBlindConfig> shard_blind;
};

/// The classic in-process path: compile the header against the
/// registry, fold locally. `registry` may be null (default-column-only
/// servers).
class LocalQueryRouter : public QueryRouter {
 public:
  LocalQueryRouter(const ColumnRegistry* registry, LocalRouterConfig config)
      : registry_(registry), config_(std::move(config)) {}

  bool HasDefault() const override {
    return config_.default_column != nullptr;
  }
  uint64_t DefaultRows() const override;
  [[nodiscard]] Status OnClientHello(BytesView key_blob,
                                     const PaillierPublicKey& pub) override;
  [[nodiscard]] Result<OpenedQuery> Open(const QueryHeaderMessage& header,
                                         const PaillierPublicKey& pub) override;
  [[nodiscard]] Result<OpenedQuery> OpenDefault(
      const PaillierPublicKey& pub) override;

 private:
  const ColumnRegistry* registry_;
  LocalRouterConfig config_;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_QUERY_EXEC_H_
