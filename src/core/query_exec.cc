#include "core/query_exec.h"

#include <utility>

#include "core/query.h"
#include "crypto/zero_share.h"

namespace ppstats {

uint64_t LocalQueryRouter::DefaultRows() const {
  return config_.default_column == nullptr ? 0 : config_.default_column->size();
}

Status LocalQueryRouter::OnClientHello(BytesView key_blob,
                                       const PaillierPublicKey& pub) {
  (void)key_blob;
  (void)pub;
  return Status::OK();
}

Result<OpenedQuery> LocalQueryRouter::Open(const QueryHeaderMessage& header,
                                           const PaillierPublicKey& pub) {
  PPSTATS_ASSIGN_OR_RETURN(StatisticKind kind,
                           StatisticKindFromWire(header.kind));
  QuerySpec spec;
  spec.kind = kind;
  spec.column = header.column;
  spec.column2 = header.column2;
  static const ColumnRegistry kEmptyRegistry;
  const ColumnRegistry& registry =
      registry_ == nullptr ? kEmptyRegistry : *registry_;
  PPSTATS_ASSIGN_OR_RETURN(
      CompiledQuery query,
      CompileQuery(spec, registry, config_.default_column));
  if (query.rows() == 0) {
    // An empty cover would mean QueryAccept rows=0 and an immediate
    // response with no chunks; simpler and clearer to reject it.
    return Status::InvalidArgument("query covers no rows");
  }
  if (header.blind_partial) {
    if (!config_.shard_blind.has_value()) {
      return Status::FailedPrecondition(
          "blinded partials requested but shard blinding is not configured");
    }
    const ShardBlindConfig& blind = *config_.shard_blind;
    if ((blind.modulus << 1) > pub.n()) {
      return Status::InvalidArgument(
          "blinding modulus too large for the key: need 2M <= n");
    }
    PPSTATS_ASSIGN_OR_RETURN(
        BigInt share,
        DeriveZeroShare(blind.seed, blind.shard_index, blind.shard_count,
                        header.blind_nonce, blind.modulus));
    query.blinding = std::move(share);
  }
  OpenedQuery opened;
  opened.rows = query.rows();
  opened.execution = std::make_unique<LocalQueryExecution>(
      pub, query, config_.worker_threads);
  return opened;
}

Result<OpenedQuery> LocalQueryRouter::OpenDefault(
    const PaillierPublicKey& pub) {
  QuerySpec spec;
  PPSTATS_ASSIGN_OR_RETURN(CompiledQuery query,
                           CompileQuery(spec, config_.default_column));
  OpenedQuery opened;
  opened.rows = query.rows();
  opened.execution = std::make_unique<LocalQueryExecution>(
      pub, query, config_.worker_threads);
  return opened;
}

}  // namespace ppstats
