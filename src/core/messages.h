// Protocol messages for the selected-sum protocol (paper Figure 1) and
// its multi-client extension (Figure 8).
//
// Every frame starts with a one-byte type tag. Ciphertexts travel at the
// fixed wire width implied by the public key, exactly as a real
// implementation would, so the recorded traffic is byte-accurate.

#ifndef PPSTATS_CORE_MESSAGES_H_
#define PPSTATS_CORE_MESSAGES_H_

#include <vector>

#include "crypto/paillier.h"
#include "net/wire.h"

namespace ppstats {

/// Frame type tags.
enum class MessageType : uint8_t {
  kIndexBatch = 1,      ///< client -> server: chunk of encrypted indices
  kSumResponse = 2,     ///< server -> client: encrypted (blinded) sum
  kRingPartial = 3,     ///< client -> client: running blinded partial sum
  kRingBroadcast = 4,   ///< final client -> all: unblinded total
  kClientHello = 5,     ///< session handshake: version + public key
  kServerHello = 6,     ///< session handshake: version + database size
  kError = 7,           ///< either direction: abort with a reason
  kQueryHeader = 8,     ///< v2: statistic kind + named column(s) for one query
  kQueryAccept = 9,     ///< v2: server accepts a query, announces its rows
  kGoodbye = 10,        ///< v2: client ends the session cleanly
  kPartialResult = 11,  ///< coordinator -> client: sum over responsive shards only
};

/// A chunk of the encrypted index vector covering rows
/// [start_index, start_index + ciphertexts.size()).
struct IndexBatchMessage {
  uint64_t start_index = 0;
  std::vector<PaillierCiphertext> ciphertexts;

  Bytes Encode(const PaillierPublicKey& pub) const;
  [[nodiscard]] static Result<IndexBatchMessage> Decode(const PaillierPublicKey& pub,
                                                        BytesView frame);
};

/// The server's single response: the encrypted selected sum.
struct SumResponseMessage {
  PaillierCiphertext sum;

  Bytes Encode(const PaillierPublicKey& pub) const;
  [[nodiscard]] static Result<SumResponseMessage> Decode(const PaillierPublicKey& pub,
                                                         BytesView frame);
};

/// Multi-client phase 2: running sum of blinded partials around the ring.
struct RingPartialMessage {
  BigInt running_sum;

  Bytes Encode() const;
  [[nodiscard]] static Result<RingPartialMessage> Decode(BytesView frame);
};

/// Multi-client phase 2: the final unblinded total, broadcast to all.
struct RingBroadcastMessage {
  BigInt total;

  Bytes Encode() const;
  [[nodiscard]] static Result<RingBroadcastMessage> Decode(BytesView frame);
};

/// Session handshake: the client announces its protocol version and the
/// public key the server must encrypt against.
struct ClientHelloMessage {
  uint16_t protocol_version = 0;
  Bytes public_key_blob;  ///< see crypto/key_io.h

  Bytes Encode() const;
  [[nodiscard]] static Result<ClientHelloMessage> Decode(BytesView frame);
};

/// Session handshake reply: the server's version and table size (the
/// client needs the size to shape its index vector).
struct ServerHelloMessage {
  uint16_t protocol_version = 0;
  uint64_t database_size = 0;

  Bytes Encode() const;
  [[nodiscard]] static Result<ServerHelloMessage> Decode(BytesView frame);
};

/// Abort frame: carries a status code and a human-readable reason.
struct ErrorMessage {
  uint8_t code = 0;  ///< a StatusCode value
  std::string reason;

  Bytes Encode() const;
  [[nodiscard]] static Result<ErrorMessage> Decode(BytesView frame);
};

/// Encodes `status` as an Error frame (the abort both session drivers
/// send before giving up on a peer).
Bytes EncodeErrorFrame(const Status& status);

/// Translates a received Error frame into a local Status ("peer
/// aborted: <reason>"); an undecodable frame becomes a ProtocolError.
[[nodiscard]] Status StatusFromErrorFrame(BytesView frame);

/// v2 sessions: opens one query on an established connection. The kind
/// is a StatisticKind wire value (validated by the server, not the
/// decoder, so an unknown kind travels and is answered with an Error
/// frame); column names resolve against the server's ColumnRegistry. An
/// empty primary name means the server's default column; column2 is
/// only meaningful for two-column statistics.
///
/// The header carries an optional extension block (absent on old
/// encoders, so the wire stays backward compatible): a coordinator
/// fanning a query out sets blind_partial so each shard adds its
/// zero-share of the per-query nonce to the partial fold (see
/// crypto/zero_share.h). Ordinary clients never set it; a server
/// without shard-blinding configuration rejects it with an Error frame.
struct QueryHeaderMessage {
  uint8_t kind = 0;  ///< StatisticKind wire value
  std::string column;
  std::string column2;
  bool blind_partial = false;
  uint64_t blind_nonce = 0;  ///< unique per query under one blinding seed

  Bytes Encode() const;
  [[nodiscard]] static Result<QueryHeaderMessage> Decode(BytesView frame);
};

/// v2 sessions: the server's acceptance of a QueryHeader, carrying the
/// resolved column's row count (the client shapes its index vector
/// accordingly, as it does from ServerHello in v1).
struct QueryAcceptMessage {
  uint64_t rows = 0;

  Bytes Encode() const;
  [[nodiscard]] static Result<QueryAcceptMessage> Decode(BytesView frame);
};

/// v2 sessions: clean end-of-session marker, so the server can tell a
/// finished client from a vanished one.
struct GoodbyeMessage {
  Bytes Encode() const;
  [[nodiscard]] static Result<GoodbyeMessage> Decode(BytesView frame);
};

/// Cluster sessions: a coordinator answers with this instead of
/// SumResponse when some shards failed but the per-query policy allows
/// serving the merged fold over the responsive ones. The flag fields
/// tell the client exactly how much of the row space the sum covers, so
/// a partial answer can never masquerade as a complete one.
struct PartialResultMessage {
  PaillierCiphertext sum;         ///< merged fold over responsive shards
  uint64_t shards_total = 0;      ///< shards in the column's shard map
  uint64_t shards_responded = 0;  ///< shards whose partial is included
  uint64_t rows_covered = 0;      ///< global rows the sum covers

  Bytes Encode(const PaillierPublicKey& pub) const;
  [[nodiscard]] static Result<PartialResultMessage> Decode(
      const PaillierPublicKey& pub, BytesView frame);
};

/// Reads the type tag without consuming the frame.
[[nodiscard]] Result<MessageType> PeekMessageType(BytesView frame);

}  // namespace ppstats

#endif  // PPSTATS_CORE_MESSAGES_H_
