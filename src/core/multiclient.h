// Multi-client parallel selected sum (paper Section 3.5, Figure 8).
//
// k clients each take a 1/k partition of the database and run the
// selected-sum protocol in parallel, each under its own key. To protect
// database privacy, the server adds a random blinding term R_i (with
// sum_i R_i = 0 mod M) to each partial sum before responding. In phase
// two the clients pass their blinded partials around a ring; the final
// client's total is sum_i (P_i + R_i) = sum_i P_i (mod M), which it
// broadcasts.
//
// M (the blinding modulus) must satisfy 2M <= n_i for every client key
// (so blinded partials never wrap the plaintext space), and the true sum
// must be < M for the result to be exact.

#ifndef PPSTATS_CORE_MULTICLIENT_H_
#define PPSTATS_CORE_MULTICLIENT_H_

#include <vector>

#include "core/runner.h"

namespace ppstats {

/// Configuration for a multi-client execution.
struct MultiClientConfig {
  /// Blinding modulus M. The default (2^64) comfortably bounds sums of
  /// 32-bit values over any realistic database.
  BigInt blind_modulus = BigInt(1) << 64;

  /// Per-client protocol options (chunking, preprocessing pools are not
  /// shared across clients and must be null here).
  size_t chunk_size = 0;

  /// Worker slices for each partition server's homomorphic fold; the
  /// slices run on the process-wide persistent ThreadPool, shared with
  /// the single-client and PIR servers. 0 or 1 = single-threaded.
  size_t server_worker_threads = 1;
};

/// Result and metrics of one multi-client execution.
struct MultiClientRunResult {
  BigInt total;  ///< unblinded selected sum (mod M)

  /// Phase-1 metrics, one entry per client (client i covered partition i).
  std::vector<RunMetrics> client_metrics;

  /// Phase-2 ring + broadcast traffic (client-to-client).
  TrafficStats ring_traffic;
  uint64_t ring_sequential_messages = 0;  ///< messages on the critical path

  /// Elapsed time with all k clients working in parallel: the slowest
  /// client's phase 1, plus the sequential ring, under `env`.
  double ParallelSeconds(const ExecutionEnvironment& env) const;

  /// Sum of all clients' work as if one client did everything (the
  /// baseline the paper's Figure 9 compares against).
  double SequentialSeconds(const ExecutionEnvironment& env) const;
};

/// Runs the full two-phase multi-client protocol with `keys.size()`
/// clients. `selection` covers the whole database; client i handles the
/// i-th contiguous partition. Fails unless every key satisfies
/// 2M <= n_i and there are at least 2 clients.
[[nodiscard]] Result<MultiClientRunResult> RunMultiClientSum(
    const std::vector<const PaillierPrivateKey*>& keys, const Database& db,
    const SelectionVector& selection, const MultiClientConfig& config,
    RandomSource& rng);

}  // namespace ppstats

#endif  // PPSTATS_CORE_MULTICLIENT_H_
