#include "core/multiclient.h"

#include <algorithm>

#include "bigint/modarith.h"

namespace ppstats {

double MultiClientRunResult::ParallelSeconds(
    const ExecutionEnvironment& env) const {
  double slowest = 0;
  for (const RunMetrics& m : client_metrics) {
    slowest = std::max(slowest, m.SequentialSeconds(env));
  }
  // The ring is sequential: each hop is one small message.
  double per_hop = env.network.TransferSeconds(
      ring_traffic.messages == 0
          ? 0
          : ring_traffic.bytes / ring_traffic.messages,
      1);
  return slowest + per_hop * static_cast<double>(ring_sequential_messages);
}

double MultiClientRunResult::SequentialSeconds(
    const ExecutionEnvironment& env) const {
  double total = 0;
  for (const RunMetrics& m : client_metrics) {
    total += m.SequentialSeconds(env);
  }
  return total;
}

Result<MultiClientRunResult> RunMultiClientSum(
    const std::vector<const PaillierPrivateKey*>& keys, const Database& db,
    const SelectionVector& selection, const MultiClientConfig& config,
    RandomSource& rng) {
  const size_t k = keys.size();
  if (k < 2) {
    return Status::InvalidArgument("multi-client protocol needs >= 2 clients");
  }
  if (selection.size() != db.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  if (db.size() < k) {
    return Status::InvalidArgument("database smaller than client count");
  }
  const BigInt& m_mod = config.blind_modulus;
  if (m_mod < BigInt(2)) {
    return Status::InvalidArgument("blinding modulus must be >= 2");
  }
  for (const PaillierPrivateKey* key : keys) {
    if ((m_mod << 1) > key->public_key().n()) {
      return Status::InvalidArgument(
          "blinding modulus too large for a client key: need 2M <= n");
    }
  }

  // Server chooses blindings R_1..R_k with sum = 0 (mod M).
  std::vector<BigInt> blindings;
  blindings.reserve(k);
  BigInt blinding_sum(0);
  for (size_t i = 0; i + 1 < k; ++i) {
    BigInt r = RandomBelow(rng, m_mod);
    blinding_sum = AddMod(blinding_sum, r, m_mod);
    blindings.push_back(std::move(r));
  }
  blindings.push_back(SubMod(BigInt(0), blinding_sum, m_mod));

  // Phase 1: each client runs the blinded selected-sum protocol on its
  // partition (conceptually in parallel; we execute them in turn and
  // report parallel elapsed time as the per-client maximum).
  MultiClientRunResult result;
  result.client_metrics.reserve(k);
  std::vector<BigInt> blinded_partials;
  blinded_partials.reserve(k);

  const size_t base = db.size() / k;
  const size_t extra = db.size() % k;
  size_t begin = 0;
  for (size_t i = 0; i < k; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    const size_t end = begin + len;

    WeightVector weights(len);
    for (size_t j = 0; j < len; ++j) weights[j] = selection[begin + j] ? 1 : 0;

    SumClientOptions client_options;
    client_options.chunk_size = config.chunk_size;
    client_options.index_offset = begin;
    SumClient client(*keys[i], std::move(weights), client_options, rng);

    QuerySpec spec;
    spec.partition = std::make_pair(begin, end);
    spec.blinding = blindings[i];
    PPSTATS_ASSIGN_OR_RETURN(CompiledQuery query, CompileQuery(spec, &db));
    SumServer server(keys[i]->public_key(), query,
                     config.server_worker_threads);

    PPSTATS_ASSIGN_OR_RETURN(SumRunResult run,
                             RunSelectedSum(client, server));
    blinded_partials.push_back(std::move(run.sum));
    result.client_metrics.push_back(std::move(run.metrics));
    begin = end;
  }

  // Phase 2: ring combine. C_1 -> C_2 -> ... -> C_k, then C_k broadcasts.
  BigInt running(0);
  for (size_t i = 0; i < k; ++i) {
    running += blinded_partials[i];
    if (i + 1 < k) {
      RingPartialMessage msg{running};
      Bytes frame = msg.Encode();
      result.ring_traffic.Record(frame.size());
      ++result.ring_sequential_messages;
      // The next client decodes what the previous one sent.
      PPSTATS_ASSIGN_OR_RETURN(RingPartialMessage decoded,
                               RingPartialMessage::Decode(frame));
      running = decoded.running_sum;
    }
  }
  result.total = Mod(running, m_mod);

  // Broadcast of the final total to the other k-1 clients (one hop on
  // the critical path; the k-1 sends fan out in parallel).
  RingBroadcastMessage broadcast{result.total};
  Bytes frame = broadcast.Encode();
  for (size_t i = 0; i + 1 < k; ++i) {
    result.ring_traffic.Record(frame.size());
  }
  ++result.ring_sequential_messages;

  return result;
}

}  // namespace ppstats
