// StreamingSumServer: the selected-sum server with O(chunk) memory.
//
// The paper's Section 3.2 notes that batching "also reduces the memory
// requirements of both the client and server. ... the server need only
// hold a single database chunk in memory at one time." This server
// variant substantiates that claim: the table lives in a binary column
// file, and each incoming IndexBatch triggers a read of exactly the rows
// that batch covers. Resident state is one chunk of values plus the
// single accumulator ciphertext, independent of n.

#ifndef PPSTATS_CORE_STREAMING_SERVER_H_
#define PPSTATS_CORE_STREAMING_SERVER_H_

#include <fstream>
#include <optional>
#include <string>

#include "core/messages.h"
#include "db/database.h"

namespace ppstats {

/// Writes a database as the binary column file the streaming server
/// reads: u32 row count, then row values as little-endian u32.
Status WriteColumnFile(const Database& db, const std::string& path);

/// Selected-sum server streaming its column from disk chunk by chunk.
class StreamingSumServer {
 public:
  /// Opens `path` (see WriteColumnFile). Fails if the file is missing
  /// or malformed.
  static Result<StreamingSumServer> Open(PaillierPublicKey pub,
                                         const std::string& path);

  /// Same contract as SumServer::HandleRequest: consumes one IndexBatch,
  /// returns the encoded response after the final row.
  Result<std::optional<Bytes>> HandleRequest(BytesView frame);

  bool Finished() const { return finished_; }
  size_t row_count() const { return row_count_; }

  /// Largest number of row values resident at once so far (the memory
  /// claim under test).
  size_t peak_resident_rows() const { return peak_resident_rows_; }

 private:
  StreamingSumServer(PaillierPublicKey pub, std::ifstream file,
                     size_t row_count)
      : pub_(std::move(pub)),
        file_(std::move(file)),
        row_count_(row_count),
        accumulator_{BigInt(1)} {}

  PaillierPublicKey pub_;
  std::ifstream file_;
  size_t row_count_ = 0;
  size_t next_expected_ = 0;
  bool finished_ = false;
  PaillierCiphertext accumulator_;
  size_t peak_resident_rows_ = 0;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_STREAMING_SERVER_H_
