// StreamingSumServer: the selected-sum server with O(chunk) memory.
//
// The paper's Section 3.2 notes that batching "also reduces the memory
// requirements of both the client and server. ... the server need only
// hold a single database chunk in memory at one time." This server
// variant substantiates that claim: the table lives in a binary column
// file, and each incoming IndexBatch triggers a read of exactly the rows
// that batch covers. Resident state is one chunk of values plus the
// single accumulator ciphertext, independent of n.
//
// The fold itself is the shared FoldEngine over a FileRowSource — the
// same implementation the in-memory SumServer uses, just with a
// different row source.

#ifndef PPSTATS_CORE_STREAMING_SERVER_H_
#define PPSTATS_CORE_STREAMING_SERVER_H_

#include <optional>
#include <string>

#include "core/fold_engine.h"
#include "core/messages.h"
#include "db/database.h"

namespace ppstats {

/// Writes a database as the binary column file the streaming server
/// reads: u32 row count, then row values as little-endian u32.
[[nodiscard]] Status WriteColumnFile(const Database& db, const std::string& path);

/// Selected-sum server streaming its column from disk chunk by chunk.
class StreamingSumServer {
 public:
  /// Opens `path` (see WriteColumnFile). Fails if the file is missing
  /// or malformed.
  [[nodiscard]] static Result<StreamingSumServer> Open(PaillierPublicKey pub,
                                                       const std::string& path);

  /// Same contract as SumServer::HandleRequest: consumes one IndexBatch,
  /// returns the encoded response after the final row.
  [[nodiscard]] Result<std::optional<Bytes>> HandleRequest(BytesView frame);

  bool Finished() const { return finished_; }
  size_t row_count() const { return engine_.row_count(); }

  /// Largest number of row values resident at once so far (the memory
  /// claim under test).
  size_t peak_resident_rows() const { return engine_.peak_resident_rows(); }

 private:
  StreamingSumServer(PaillierPublicKey pub, FoldEngine engine)
      : pub_(std::move(pub)), engine_(std::move(engine)) {}

  PaillierPublicKey pub_;
  FoldEngine engine_;
  bool finished_ = false;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_STREAMING_SERVER_H_
