#include "core/streaming_server.h"

#include <algorithm>

namespace ppstats {

namespace {

uint32_t ReadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Status WriteColumnFile(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot write column file: " + path);
  uint32_t count = static_cast<uint32_t>(db.size());
  uint8_t header[4] = {
      static_cast<uint8_t>(count), static_cast<uint8_t>(count >> 8),
      static_cast<uint8_t>(count >> 16), static_cast<uint8_t>(count >> 24)};
  out.write(reinterpret_cast<const char*>(header), 4);
  for (uint32_t v : db.values()) {
    uint8_t cell[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                       static_cast<uint8_t>(v >> 16),
                       static_cast<uint8_t>(v >> 24)};
    out.write(reinterpret_cast<const char*>(cell), 4);
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<StreamingSumServer> StreamingSumServer::Open(PaillierPublicKey pub,
                                                    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open column file: " + path);
  uint8_t header[4];
  file.read(reinterpret_cast<char*>(header), 4);
  if (!file) return Status::SerializationError("column file too short");
  size_t rows = ReadU32Le(header);

  file.seekg(0, std::ios::end);
  auto size = static_cast<uint64_t>(file.tellg());
  if (size != 4 + 4 * static_cast<uint64_t>(rows)) {
    return Status::SerializationError("column file size mismatch");
  }
  file.seekg(4);
  return StreamingSumServer(std::move(pub), std::move(file), rows);
}

Result<std::optional<Bytes>> StreamingSumServer::HandleRequest(
    BytesView frame) {
  if (finished_) {
    return Status::FailedPrecondition("response already produced");
  }
  PPSTATS_ASSIGN_OR_RETURN(IndexBatchMessage msg,
                           IndexBatchMessage::Decode(pub_, frame));
  if (msg.start_index != next_expected_) {
    return Status::ProtocolError("out-of-order index chunk");
  }
  if (msg.start_index + msg.ciphertexts.size() > row_count_) {
    return Status::ProtocolError("index chunk overruns the column");
  }

  // Read exactly this chunk's rows from disk.
  const size_t count = msg.ciphertexts.size();
  std::vector<uint8_t> raw(count * 4);
  file_.seekg(4 + 4 * static_cast<std::streamoff>(msg.start_index));
  file_.read(reinterpret_cast<char*>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
  if (!file_) return Status::Internal("column file read failed");
  peak_resident_rows_ = std::max(peak_resident_rows_, count);

  // One batched multi-exponentiation per chunk instead of a per-row
  // ScalarMultiply + Add ladder; resident state stays one chunk plus the
  // accumulator.
  std::vector<BigInt> weights;
  weights.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    weights.push_back(BigInt(ReadU32Le(raw.data() + 4 * i)));
  }
  accumulator_ = Paillier::Add(
      pub_, accumulator_,
      Paillier::WeightedFold(pub_, msg.ciphertexts, weights));

  next_expected_ += count;
  if (next_expected_ < row_count_) return std::optional<Bytes>();
  finished_ = true;
  SumResponseMessage response;
  response.sum = accumulator_;
  return std::optional<Bytes>(response.Encode(pub_));
}

}  // namespace ppstats
