#include "core/streaming_server.h"

namespace ppstats {

Status WriteColumnFile(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot write column file: " + path);
  uint32_t count = static_cast<uint32_t>(db.size());
  uint8_t header[4] = {
      static_cast<uint8_t>(count), static_cast<uint8_t>(count >> 8),
      static_cast<uint8_t>(count >> 16), static_cast<uint8_t>(count >> 24)};
  out.write(reinterpret_cast<const char*>(header), 4);
  for (uint32_t v : db.values()) {
    uint8_t cell[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                       static_cast<uint8_t>(v >> 16),
                       static_cast<uint8_t>(v >> 24)};
    out.write(reinterpret_cast<const char*>(cell), 4);
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<StreamingSumServer> StreamingSumServer::Open(PaillierPublicKey pub,
                                                    const std::string& path) {
  PPSTATS_ASSIGN_OR_RETURN(std::unique_ptr<FileRowSource> rows,
                           FileRowSource::Open(path));
  const size_t row_count = rows->size();
  FoldEngine engine(pub, std::move(rows), ExponentTransform::Identity(),
                    /*begin=*/0, /*end=*/row_count);
  return StreamingSumServer(std::move(pub), std::move(engine));
}

Result<std::optional<Bytes>> StreamingSumServer::HandleRequest(
    BytesView frame) {
  if (finished_) {
    return Status::FailedPrecondition("response already produced");
  }
  PPSTATS_ASSIGN_OR_RETURN(IndexBatchMessage msg,
                           IndexBatchMessage::Decode(pub_, frame));
  PPSTATS_RETURN_IF_ERROR(
      engine_.FoldChunk(msg.start_index, msg.ciphertexts));
  if (!engine_.done()) return std::optional<Bytes>();

  finished_ = true;
  PPSTATS_ASSIGN_OR_RETURN(PaillierCiphertext accumulator,
                           engine_.Finish(std::nullopt));
  SumResponseMessage response;
  response.sum = accumulator;
  return std::optional<Bytes>(response.Encode(pub_));
}

}  // namespace ppstats
