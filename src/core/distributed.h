// Multiple distributed databases (paper Section 1: "this protocol ...
// can easily be extended to work for multiple distributed databases").
//
// d servers each hold a horizontal partition of the logical table. The
// client runs the selected-sum protocol against every server with the
// same key and adds the decrypted results.
//
// Database privacy across servers: if the client simply decrypted each
// server's response it would learn d partial sums, more than "the sum".
// Servers therefore blind their responses with shares R_1..R_d of zero
// (sum_i R_i = 0 mod M), agreed among servers out of band (in practice,
// pairwise PRF seeds; here a seeded RandomSource stands in). The
// blinding cancels only in the client's final addition, exactly as in
// the multi-client protocol of Section 3.5 — with the roles flipped.

#ifndef PPSTATS_CORE_DISTRIBUTED_H_
#define PPSTATS_CORE_DISTRIBUTED_H_

#include <vector>

#include "core/runner.h"

namespace ppstats {

/// Configuration for a distributed-sum execution.
struct DistributedConfig {
  /// Blind per-server partial sums (recommended; see header comment).
  bool blind_partials = true;

  /// Blinding modulus M; must satisfy 2M <= n and exceed any real sum.
  BigInt blind_modulus = BigInt(1) << 64;

  /// Per-server request chunking.
  size_t chunk_size = 0;
};

/// Result and metrics of a distributed-sum execution.
struct DistributedRunResult {
  BigInt total;  ///< selected sum across all partitions (mod M if blinded)

  /// One protocol execution per server, in partition order.
  std::vector<RunMetrics> server_metrics;

  /// Elapsed time if the client talks to all servers concurrently
  /// (encryption is still sequential on the single client; transfers and
  /// server work overlap). Approximated as client work + slowest server.
  double ParallelSeconds(const ExecutionEnvironment& env) const;

  /// Elapsed time talking to servers one at a time.
  double SequentialSeconds(const ExecutionEnvironment& env) const;
};

/// Runs the protocol against `servers` (horizontal partitions, in
/// order). `selection` covers the concatenated logical table and is
/// split at partition boundaries.
[[nodiscard]] Result<DistributedRunResult> RunDistributedSum(
    const PaillierPrivateKey& key, const std::vector<const Database*>& servers,
    const SelectionVector& selection, const DistributedConfig& config,
    RandomSource& rng);

}  // namespace ppstats

#endif  // PPSTATS_CORE_DISTRIBUTED_H_
