#include "core/service_host.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "core/messages.h"
#include "core/reactor_host.h"
#include "crypto/chacha20_rng.h"
#include "obs/export.h"
#include "obs/span.h"

namespace ppstats {

namespace {

/// Cap on the accept-failure backoff. Transient fd exhaustion usually
/// clears in milliseconds; anything longer and we still want the host
/// probing regularly rather than sleeping through recovery.
constexpr uint32_t kMaxAcceptBackoffMs = 100;

/// Write deadline for the over-capacity Error frame: the frame is tiny
/// and the socket buffer empty, so this only guards against a client
/// that connects and immediately stops reading.
constexpr uint32_t kRejectWriteDeadlineMs = 100;

}  // namespace

ServiceHost::ServiceHost(const ColumnRegistry* registry,
                         ServiceHostOptions options)
    : registry_(registry),
      options_(std::move(options)),
      sessions_accepted_(metric_registry_.GetCounter("host.sessions_accepted")),
      sessions_ok_(metric_registry_.GetCounter("host.sessions_ok")),
      sessions_failed_(metric_registry_.GetCounter("host.sessions_failed")),
      sessions_rejected_(metric_registry_.GetCounter("host.sessions_rejected")),
      sessions_evicted_(metric_registry_.GetCounter("host.sessions_evicted")),
      queries_served_(metric_registry_.GetCounter("host.queries_served")),
      compute_ns_(metric_registry_.GetCounter("host.server_compute_ns")),
      active_gauge_(metric_registry_.GetGauge("host.active_sessions")) {}

ServiceHost::~ServiceHost() { Stop(); }

Status ServiceHost::Start(const std::string& uri) {
  if (running()) {
    return Status::FailedPrecondition("service host already running");
  }
  // A routed host (cluster coordinator) resolves queries through its
  // router factory and needs no local columns at all.
  const bool routed = options_.router_factory != nullptr;
  if (!routed && (registry_ == nullptr || registry_->empty())) {
    return Status::FailedPrecondition("service host has no columns");
  }
  PPSTATS_ASSIGN_OR_RETURN(Endpoint endpoint, ParseEndpoint(uri));
  if (!routed && !options_.default_column.empty()) {
    default_column_ = registry_->Find(options_.default_column);
    if (default_column_ == nullptr) {
      return Status::NotFound("default column not in the registry: " +
                              options_.default_column);
    }
  } else if (!routed && registry_->size() == 1) {
    default_column_ = registry_->Find(registry_->ColumnNames().front());
  }

  if (options_.engine == ServiceEngine::kReactor) {
    {
      MutexLock lock(mu_);
      stopping_ = false;
      draining_ = false;
      metric_registry_.Reset();
      key_cache_.Clear();
    }
    // The engine bumps the host's own registry counters, so every
    // stats/metrics accessor below works unchanged under either engine.
    auto engine = std::make_unique<ReactorEngine>(
        registry_, default_column_, options_,
        ReactorEngine::HostCounters{sessions_accepted_, sessions_ok_,
                                    sessions_failed_, sessions_rejected_,
                                    sessions_evicted_, queries_served_,
                                    compute_ns_, active_gauge_},
        &key_cache_, &metric_registry_);
    PPSTATS_RETURN_IF_ERROR(engine->Start(endpoint));
    reactor_engine_ = std::move(engine);
    bound_endpoint_ = reactor_engine_->endpoint();
    started_at_ = std::chrono::steady_clock::now();
    if (!options_.stats_json_path.empty() && options_.stats_interval_ms > 0) {
      dumper_thread_ = std::thread([this] { DumperLoop(); });
    }
    return Status::OK();
  }

  ListenOptions listen_options;
  listen_options.backlog = options_.accept_backlog;
  listen_options.sndbuf_bytes = options_.so_sndbuf;
  PPSTATS_ASSIGN_OR_RETURN(SocketListener listener,
                           SocketListener::Bind(endpoint, listen_options));
  listener_.emplace(std::move(listener));
  bound_endpoint_ = listener_->endpoint();
  {
    MutexLock lock(mu_);
    stopping_ = false;
    draining_ = false;
    // Per-run state: a restarted host must not report the previous
    // run's counters or keep serving from its key cache. Reset keeps
    // every cached counter pointer valid.
    metric_registry_.Reset();
    key_cache_.Clear();
  }
  started_at_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  reaper_thread_ = std::thread([this] { ReaperLoop(); });
  if (!options_.stats_json_path.empty() && options_.stats_interval_ms > 0) {
    dumper_thread_ = std::thread([this] { DumperLoop(); });
  }
  return Status::OK();
}

void ServiceHost::Stop() {
  const bool was_running = running();
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  dumper_cv_.NotifyAll();
  if (dumper_thread_.joinable()) dumper_thread_.join();
  if (reactor_engine_ != nullptr) {
    // Stops accepting, drains in-flight sessions, joins the reactor
    // threads — the engine's analogue of the listener/accept/reaper
    // teardown below.
    reactor_engine_->Stop();
    reactor_engine_.reset();
    if (was_running && !options_.stats_json_path.empty()) WriteStatsJson();
    return;
  }
  if (listener_.has_value()) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    MutexLock lock(mu_);
    draining_ = true;  // no new sessions can appear past this point
  }
  reaper_cv_.NotifyAll();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  listener_.reset();
  // Final snapshot, after every session has drained, so a consumer that
  // waits for the host to exit sees the complete run.
  if (was_running && !options_.stats_json_path.empty()) WriteStatsJson();
}

size_t ServiceHost::active_sessions() const {
  if (reactor_engine_ != nullptr) return reactor_engine_->active_sessions();
  MutexLock lock(mu_);
  return sessions_.size();
}

ServiceHost::Stats ServiceHost::SnapshotStats() const {
  // A pure counter read: no host mutex, so this cannot contend with the
  // accept loop or session threads (PublicKeyCache::size locks its own
  // internal mutex).
  Stats out;
  out.sessions_accepted = sessions_accepted_->Value();
  out.sessions_ok = sessions_ok_->Value();
  out.sessions_failed = sessions_failed_->Value();
  out.sessions_rejected = sessions_rejected_->Value();
  out.sessions_evicted = sessions_evicted_->Value();
  out.queries_served = queries_served_->Value();
  out.server_compute_s = static_cast<double>(compute_ns_->Value()) * 1e-9;
  out.distinct_client_keys = key_cache_.size();
  return out;
}

obs::MetricsSnapshot ServiceHost::SnapshotMetrics() const {
  obs::MetricsSnapshot merged = metric_registry_.Snapshot();
  merged.Append(obs::MetricRegistry::Global().Snapshot());
  return merged;
}

void ServiceHost::WriteStatsJson() const {
  double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  (void)obs::WriteFileAtomic(options_.stats_json_path,
                             obs::StatsToJson(SnapshotMetrics(), uptime_s));
}

void ServiceHost::DumperLoop() {
  const std::chrono::milliseconds interval(options_.stats_interval_ms);
  for (;;) {
    {
      MutexLock lock(mu_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      bool timed_out = false;
      while (!stopping_ && !timed_out) {
        timed_out = !dumper_cv_.WaitUntil(mu_, deadline);
      }
      if (stopping_) {
        return;  // Stop() writes the final snapshot after draining
      }
    }
    WriteStatsJson();
  }
}

void ServiceHost::AcceptLoop() {
  uint32_t backoff_ms = 1;
  for (;;) {
    Result<std::unique_ptr<Channel>> channel =
        [this]() -> Result<std::unique_ptr<Channel>> {
      if (options_.accept_fault_hook) {
        PPSTATS_RETURN_IF_ERROR(options_.accept_fault_hook());
      }
      return listener_->Accept();
    }();
    {
      MutexLock lock(mu_);
      if (stopping_) return;
    }
    if (!channel.ok()) {
      // Transient resource exhaustion (EMFILE and friends): back off
      // with a capped exponential delay and keep accepting. Anything
      // else means the listener itself is dead.
      if (channel.status().code() != StatusCode::kResourceExhausted) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, kMaxAcceptBackoffMs);
      continue;
    }
    backoff_ms = 1;

    std::unique_ptr<Channel> accepted = std::move(*channel);
    if (options_.io_deadline_ms > 0) {
      std::chrono::milliseconds deadline(options_.io_deadline_ms);
      accepted->set_read_deadline(deadline);
      accepted->set_write_deadline(deadline);
    }

    bool reject = false;
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      if (options_.max_sessions > 0 &&
          sessions_.size() >= options_.max_sessions) {
        sessions_rejected_->Increment();
        reject = true;
      } else {
        sessions_accepted_->Increment();
        uint64_t id = next_session_id_++;
        // The session thread's last act takes mu_, so it cannot outrun
        // this emplace: its handle is in sessions_ before it can move it
        // out.
        sessions_.emplace(
            id, std::thread([this, id, ch = std::move(accepted)]() mutable {
              // Attribute every span recorded on this thread (handshake,
              // fold, ...) to the 1-based session id.
              obs::ScopedSpanContext span_context({id + 1, 0});
              if (options_.fault_injection.has_value()) {
                ChaCha20Rng fault_rng(options_.fault_seed + id);
                FaultInjectingChannel faulty(std::move(ch),
                                             *options_.fault_injection,
                                             fault_rng);
                ServeOne(faulty);
              } else {
                ServeOne(*ch);
              }
              ch.reset();  // close the transport before the thread is reaped
              MutexLock lock(mu_);
              auto it = sessions_.find(id);
              finished_.push_back(std::move(it->second));
              sessions_.erase(it);
              active_gauge_->Set(static_cast<int64_t>(sessions_.size()));
              reaper_cv_.NotifyAll();
            }));
        active_gauge_->Set(static_cast<int64_t>(sessions_.size()));
      }
    }
    if (reject) {
      RejectOverCapacity(std::move(accepted));
      continue;
    }
  }
}

void ServiceHost::ReaperLoop() {
  for (;;) {
    std::thread done;
    {
      MutexLock lock(mu_);
      while (finished_.empty() && !(draining_ && sessions_.empty())) {
        reaper_cv_.Wait(mu_);
      }
      if (finished_.empty()) {
        return;  // draining and no live or finished sessions remain
      }
      done = std::move(finished_.back());
      finished_.pop_back();
    }
    done.join();  // the thread already left ServeOne; this is prompt
  }
}

void ServiceHost::RejectOverCapacity(std::unique_ptr<Channel> channel) {
  std::chrono::milliseconds deadline(kRejectWriteDeadlineMs);
  channel->set_read_deadline(deadline);
  channel->set_write_deadline(deadline);
  // Drain the ClientHello (best effort) before answering, so the client
  // never races its hello against our close: it always gets to read the
  // Error frame instead of dying on a broken pipe mid-send.
  channel->Receive().IgnoreError();
  ErrorMessage msg;
  msg.code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
  msg.reason = "server at capacity; retry later";
  channel->Send(msg.Encode()).IgnoreError();  // best effort; then close
}

void ServiceHost::ServeOne(Channel& channel) {
  ServerSessionOptions session_options;
  session_options.default_column = default_column_;
  session_options.worker_threads = options_.worker_threads;
  session_options.key_cache = &key_cache_;
  session_options.registry = &metric_registry_;
  // The session bumps these itself, before each query's response frame
  // is sent — that is what keeps SnapshotStats() live instead of
  // stale-until-Stop.
  session_options.queries_counter = queries_served_;
  session_options.compute_ns_counter = compute_ns_;
  session_options.shard_blind = options_.shard_blind;
  if (options_.router_factory != nullptr) {
    session_options.router = options_.router_factory();
  }
  ServerSession session(registry_, session_options);
  Status status = session.Serve(channel);
  if (status.code() == StatusCode::kDeadlineExceeded) {
    // The client stalled past the I/O deadline. Tell it why it is being
    // evicted (best effort — it may well be gone).
    ErrorMessage msg;
    msg.code = static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
    msg.reason = "session i/o deadline exceeded";
    channel.Send(msg.Encode()).IgnoreError();
  }

  if (status.ok()) {
    sessions_ok_->Increment();
  } else {
    sessions_failed_->Increment();
    if (status.code() == StatusCode::kDeadlineExceeded) {
      sessions_evicted_->Increment();
    }
  }
}

}  // namespace ppstats
