#include "core/service_host.h"

#include <utility>

namespace ppstats {

ServiceHost::ServiceHost(const ColumnRegistry* registry,
                         ServiceHostOptions options)
    : registry_(registry), options_(std::move(options)) {}

ServiceHost::~ServiceHost() { Stop(); }

Status ServiceHost::Start(const std::string& socket_path) {
  if (running()) {
    return Status::FailedPrecondition("service host already running");
  }
  if (registry_ == nullptr || registry_->empty()) {
    return Status::FailedPrecondition("service host has no columns");
  }
  if (!options_.default_column.empty()) {
    default_column_ = registry_->Find(options_.default_column);
    if (default_column_ == nullptr) {
      return Status::NotFound("default column not in the registry: " +
                              options_.default_column);
    }
  } else if (registry_->size() == 1) {
    default_column_ = registry_->Find(registry_->ColumnNames().front());
  }

  PPSTATS_ASSIGN_OR_RETURN(SocketListener listener,
                           SocketListener::Bind(socket_path));
  listener_.emplace(std::move(listener));
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ServiceHost::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  if (listener_.has_value()) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(session_threads_);
  }
  for (std::thread& t : sessions) t.join();
  listener_.reset();
}

ServiceHost::Stats ServiceHost::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.distinct_client_keys = key_cache_.size();
  return out;
}

void ServiceHost::AcceptLoop() {
  for (;;) {
    Result<std::unique_ptr<Channel>> channel = listener_->Accept();
    std::lock_guard<std::mutex> lock(mu_);
    // Accept fails once Stop shuts the listener down; it can also fail
    // spuriously, in which case retrying would spin — so any failure
    // ends the loop.
    if (stopping_ || !channel.ok()) return;
    ++stats_.sessions_accepted;
    std::unique_ptr<Channel>& slot = *channel;
    session_threads_.emplace_back(
        [this, ch = std::move(slot)]() mutable { ServeOne(std::move(ch)); });
  }
}

void ServiceHost::ServeOne(std::unique_ptr<Channel> channel) {
  ServerSessionOptions session_options;
  session_options.default_column = default_column_;
  session_options.worker_threads = options_.worker_threads;
  session_options.key_cache = &key_cache_;
  ServerSession session(registry_, session_options);
  Status status = session.Serve(*channel);

  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok()) {
    ++stats_.sessions_ok;
  } else {
    ++stats_.sessions_failed;
  }
  stats_.queries_served += session.metrics().queries;
  stats_.server_compute_s += session.metrics().server_compute_s;
}

}  // namespace ppstats
