#include "core/statistics.h"

#include <algorithm>
#include <cmath>

namespace ppstats {

namespace {

// Converts a non-negative BigInt known to fit in a double's integer range
// for our workloads (sums of 32-bit values) into a double.
double ToDouble(const BigInt& v) {
  double out = 0;
  for (size_t i = v.limbs().size(); i-- > 0;) {
    out = out * 18446744073709551616.0 + static_cast<double>(v.limbs()[i]);
  }
  return v.IsNegative() ? -out : out;
}

Result<SumRunResult> RunOnce(const PaillierPrivateKey& key,
                             const Database& db, WeightVector weights,
                             RandomSource& rng, SumClientOptions options,
                             StatisticKind kind = StatisticKind::kSum,
                             const Database* second = nullptr) {
  if (weights.size() != db.size()) {
    return Status::InvalidArgument("weight vector length != database size");
  }
  SumClient client(key, std::move(weights), options, rng);
  QuerySpec spec;
  spec.kind = kind;
  PPSTATS_ASSIGN_OR_RETURN(CompiledQuery query,
                           CompileQuery(spec, &db, second));
  SumServer server(key.public_key(), query);
  return RunSelectedSum(client, server);
}

WeightVector ToWeights(const SelectionVector& selection) {
  WeightVector weights(selection.size());
  for (size_t i = 0; i < selection.size(); ++i) {
    weights[i] = selection[i] ? 1 : 0;
  }
  return weights;
}

}  // namespace

Result<PrivateSumResult> PrivateSelectedSum(const PaillierPrivateKey& key,
                                            const Database& db,
                                            const SelectionVector& selection,
                                            RandomSource& rng,
                                            SumClientOptions options) {
  if (selection.size() != db.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  PPSTATS_ASSIGN_OR_RETURN(
      SumRunResult run, RunOnce(key, db, ToWeights(selection), rng, options));
  return PrivateSumResult{std::move(run.sum), std::move(run.metrics)};
}

Result<PrivateSumResult> PrivateWeightedSum(const PaillierPrivateKey& key,
                                            const Database& db,
                                            const WeightVector& weights,
                                            RandomSource& rng,
                                            SumClientOptions options) {
  PPSTATS_ASSIGN_OR_RETURN(SumRunResult run,
                           RunOnce(key, db, weights, rng, options));
  return PrivateSumResult{std::move(run.sum), std::move(run.metrics)};
}

Result<PrivateMeanResult> PrivateMean(const PaillierPrivateKey& key,
                                      const Database& db,
                                      const SelectionVector& selection,
                                      RandomSource& rng,
                                      SumClientOptions options) {
  size_t count = 0;
  for (bool s : selection) count += s ? 1 : 0;
  if (count == 0) {
    return Status::InvalidArgument("selection is empty; mean is undefined");
  }
  PPSTATS_ASSIGN_OR_RETURN(
      PrivateSumResult sum_result,
      PrivateSelectedSum(key, db, selection, rng, options));
  PrivateMeanResult out;
  out.count = count;
  out.mean = ToDouble(sum_result.sum) / static_cast<double>(count);
  out.sum = std::move(sum_result.sum);
  out.metrics = std::move(sum_result.metrics);
  return out;
}

Result<PrivateVarianceResult> PrivateVariance(const PaillierPrivateKey& key,
                                              const Database& db,
                                              const SelectionVector& selection,
                                              RandomSource& rng,
                                              SumClientOptions options) {
  size_t count = 0;
  for (bool s : selection) count += s ? 1 : 0;
  if (count == 0) {
    return Status::InvalidArgument(
        "selection is empty; variance is undefined");
  }
  if (selection.size() != db.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  PPSTATS_ASSIGN_OR_RETURN(
      SumRunResult sum_run,
      RunOnce(key, db, ToWeights(selection), rng, options));
  PPSTATS_ASSIGN_OR_RETURN(
      SumRunResult sq_run,
      RunOnce(key, db, ToWeights(selection), rng, options,
              StatisticKind::kSumOfSquares));

  PrivateVarianceResult out;
  out.count = count;
  double m = static_cast<double>(count);
  out.mean = ToDouble(sum_run.sum) / m;
  out.variance = ToDouble(sq_run.sum) / m - out.mean * out.mean;
  if (out.variance < 0) out.variance = 0;  // numerical guard
  out.sum = std::move(sum_run.sum);
  out.sum_of_squares = std::move(sq_run.sum);
  out.metrics = std::move(sum_run.metrics);
  out.metrics.Merge(sq_run.metrics);
  return out;
}

Result<PrivateCovarianceResult> PrivateCovariance(
    const PaillierPrivateKey& key, const Database& x, const Database& y,
    const SelectionVector& selection, RandomSource& rng,
    SumClientOptions options) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("columns have different sizes");
  }
  if (selection.size() != x.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  size_t count = 0;
  for (bool s : selection) count += s ? 1 : 0;
  if (count == 0) {
    return Status::InvalidArgument(
        "selection is empty; covariance is undefined");
  }

  WeightVector weights = ToWeights(selection);
  PPSTATS_ASSIGN_OR_RETURN(SumRunResult x_run,
                           RunOnce(key, x, weights, rng, options));
  PPSTATS_ASSIGN_OR_RETURN(SumRunResult y_run,
                           RunOnce(key, y, weights, rng, options));
  PPSTATS_ASSIGN_OR_RETURN(
      SumRunResult xy_run,
      RunOnce(key, x, weights, rng, options, StatisticKind::kProduct,
              /*second=*/&y));

  PrivateCovarianceResult out;
  out.count = count;
  double m = static_cast<double>(count);
  out.mean_x = ToDouble(x_run.sum) / m;
  out.mean_y = ToDouble(y_run.sum) / m;
  out.covariance = ToDouble(xy_run.sum) / m - out.mean_x * out.mean_y;
  out.sum_x = std::move(x_run.sum);
  out.sum_y = std::move(y_run.sum);
  out.sum_xy = std::move(xy_run.sum);
  out.metrics = std::move(x_run.metrics);
  out.metrics.Merge(y_run.metrics);
  out.metrics.Merge(xy_run.metrics);
  return out;
}

Result<PrivateCorrelationResult> PrivateCorrelation(
    const PaillierPrivateKey& key, const Database& x, const Database& y,
    const SelectionVector& selection, RandomSource& rng,
    SumClientOptions options) {
  PPSTATS_ASSIGN_OR_RETURN(
      PrivateCovarianceResult cov,
      PrivateCovariance(key, x, y, selection, rng, options));
  // Two more executions for the squared sums.
  WeightVector weights = ToWeights(selection);
  PPSTATS_ASSIGN_OR_RETURN(
      SumRunResult x_sq,
      RunOnce(key, x, weights, rng, options, StatisticKind::kSumOfSquares));
  PPSTATS_ASSIGN_OR_RETURN(
      SumRunResult y_sq,
      RunOnce(key, y, weights, rng, options, StatisticKind::kSumOfSquares));

  PrivateCorrelationResult out;
  double m = static_cast<double>(cov.count);
  out.variance_x =
      std::max(0.0, ToDouble(x_sq.sum) / m - cov.mean_x * cov.mean_x);
  out.variance_y =
      std::max(0.0, ToDouble(y_sq.sum) / m - cov.mean_y * cov.mean_y);
  double denom = std::sqrt(out.variance_x) * std::sqrt(out.variance_y);
  out.correlation = denom > 0 ? cov.covariance / denom : 0.0;
  out.metrics = cov.metrics;
  out.metrics.Merge(x_sq.metrics);
  out.metrics.Merge(y_sq.metrics);
  out.covariance = std::move(cov);
  return out;
}

Result<PrivateWeightedAverageResult> PrivateWeightedAverage(
    const PaillierPrivateKey& key, const Database& db,
    const WeightVector& weights, RandomSource& rng,
    SumClientOptions options) {
  BigInt total_weight(0);
  for (uint64_t w : weights) total_weight += BigInt(w);
  if (total_weight.IsZero()) {
    return Status::InvalidArgument(
        "all weights are zero; weighted average is undefined");
  }
  PPSTATS_ASSIGN_OR_RETURN(SumRunResult run,
                           RunOnce(key, db, weights, rng, options));
  PrivateWeightedAverageResult out;
  out.average = ToDouble(run.sum) / ToDouble(total_weight);
  out.weighted_sum = std::move(run.sum);
  out.total_weight = std::move(total_weight);
  out.metrics = std::move(run.metrics);
  return out;
}

}  // namespace ppstats
