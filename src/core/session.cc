#include "core/session.h"

#include <chrono>
#include <thread>
#include <utility>

#include "bigint/modarith.h"
#include "core/messages.h"
#include "obs/span.h"

namespace ppstats {

namespace {

// Process-wide retry counters, shared by every retrying entry point.
struct RetryCounters {
  obs::Counter* attempts =
      obs::MetricRegistry::Global().GetCounter("retry.attempts");
  obs::Counter* retryable_failures =
      obs::MetricRegistry::Global().GetCounter("retry.retryable_failures");
  obs::Counter* backoff_ms =
      obs::MetricRegistry::Global().GetCounter("retry.backoff_ms");
};

RetryCounters& Retries() {
  static RetryCounters* counters = new RetryCounters();  // leaked on purpose
  return *counters;
}

// Sends an Error frame; returns the original status for propagation.
Status AbortWith(Channel& channel, Status status) {
  // Best effort; the session is dead either way.
  channel.Send(EncodeErrorFrame(status)).IgnoreError();
  return status;
}

// Translates a received Error frame into a local Status.
Status FromErrorFrame(BytesView frame) { return StatusFromErrorFrame(frame); }

// Drives one SumClient execution over the channel (shared by the v1 and
// v2 client paths; the per-query framing around it differs).
// The communication spans cover time spent inside channel calls only:
// encryption (NextRequest) and decryption (HandleResponse) keep their
// own component spans. Note the receive leg necessarily includes the
// wait for the server's fold — the wire cannot tell propagation from
// peer compute (docs/OBSERVABILITY.md discusses reconciliation).
Result<BigInt> RunClientQuery(Channel& channel, SumClient& client,
                              const PaillierPublicKey& pub,
                              bool accept_partial,
                              std::optional<PartialResultInfo>* partial_out) {
  while (!client.RequestsDone()) {
    PPSTATS_ASSIGN_OR_RETURN(Bytes request, client.NextRequest());
    obs::ObsSpan send_span(obs::kSpanCommunication);
    PPSTATS_RETURN_IF_ERROR(channel.Send(request));
    send_span.Stop();
  }
  obs::ObsSpan recv_span(obs::kSpanCommunication);
  Result<Bytes> response = channel.Receive();
  recv_span.Stop();
  PPSTATS_RETURN_IF_ERROR(response.status());
  PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(*response));
  if (type == MessageType::kError) return FromErrorFrame(*response);
  if (type == MessageType::kPartialResult) {
    if (!accept_partial) {
      return AbortWith(channel,
                       Status::FailedPrecondition(
                           "server answered with a partial result; set "
                           "accept_partial to use it"));
    }
    PPSTATS_ASSIGN_OR_RETURN(PartialResultMessage partial,
                             PartialResultMessage::Decode(pub, *response));
    if (partial_out != nullptr) {
      *partial_out = PartialResultInfo{partial.shards_total,
                                       partial.shards_responded,
                                       partial.rows_covered};
    }
    SumResponseMessage as_sum;
    as_sum.sum = partial.sum;
    return client.HandleResponse(as_sum.Encode(pub));
  }
  return client.HandleResponse(*response);
}

}  // namespace

ClientSession::ClientSession(const PaillierPrivateKey& key,
                             SelectionVector selection,
                             ClientSessionOptions options, RandomSource& rng)
    : key_(&key),
      selection_(std::move(selection)),
      options_(options),
      rng_(&rng) {}

Result<BigInt> ClientSession::Run(Channel& channel) {
  if (ran_) {
    return Status::FailedPrecondition(
        "session already ran; a ClientSession is single-shot");
  }
  ran_ = true;
  return RunOnce(channel);
}

Result<BigInt> ClientSession::RunWithRetry(const ChannelFactory& dial,
                                           const RetryOptions& retry) {
  if (ran_) {
    return Status::FailedPrecondition(
        "session already ran; a ClientSession is single-shot");
  }
  ran_ = true;
  retry_metrics_ = {};
  size_t max_attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  Status last = Status::Internal("no connection attempt was made");
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      uint32_t backoff = RetryBackoffMs(attempt - 1, retry, *rng_);
      retry_metrics_.backoff_ms_total += backoff;
      Retries().backoff_ms->Add(backoff);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    ++retry_metrics_.attempts;
    Retries().attempts->Increment();
    obs::ObsSpan attempt_span(obs::kSpanRetryAttempt);
    Result<std::unique_ptr<Channel>> channel = dial();
    Result<BigInt> sum = channel.ok() ? RunOnce(**channel) : channel.status();
    attempt_span.Stop();
    if (sum.ok() || !IsRetryableStatus(sum.status())) return sum;
    ++retry_metrics_.retryable_failures;
    Retries().retryable_failures->Increment();
    last = sum.status();
  }
  return last;
}

Result<BigInt> ClientSession::RunWithRetry(const std::string& uri,
                                           const RetryOptions& retry,
                                           uint32_t io_deadline_ms,
                                           uint32_t connect_deadline_ms) {
  return RunWithRetry(UriDialer(uri, io_deadline_ms, connect_deadline_ms),
                      retry);
}

Result<BigInt> ClientSession::RunOnce(Channel& channel) {
  // Handshake.
  obs::ObsSpan handshake(obs::kSpanHandshake);
  ClientHelloMessage hello;
  hello.protocol_version = kSessionProtocolV1;
  hello.public_key_blob = SerializePublicKey(key_->public_key());
  PPSTATS_RETURN_IF_ERROR(channel.Send(hello.Encode()));

  PPSTATS_ASSIGN_OR_RETURN(Bytes reply, channel.Receive());
  handshake.Stop();
  PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(reply));
  if (type == MessageType::kError) return FromErrorFrame(reply);
  PPSTATS_ASSIGN_OR_RETURN(ServerHelloMessage server_hello,
                           ServerHelloMessage::Decode(reply));
  if (server_hello.protocol_version != kSessionProtocolV1) {
    return Status::ProtocolError("server speaks a different version");
  }
  if (server_hello.database_size != selection_.size()) {
    return AbortWith(channel,
                     Status::InvalidArgument(
                         "selection length != server database size"));
  }

  // Query.
  SumClientOptions client_options;
  client_options.chunk_size = options_.chunk_size;
  SumClient client(*key_, selection_, client_options, *rng_);
  return RunClientQuery(channel, client, key_->public_key(),
                        /*accept_partial=*/false, nullptr);
}

QuerySession::QuerySession(const PaillierPrivateKey& key, RandomSource& rng,
                           ClientSessionOptions options)
    : key_(&key), rng_(&rng), options_(options) {}

Status QuerySession::Connect(Channel& channel) {
  if (channel_ != nullptr) {
    return Status::FailedPrecondition("session already connected");
  }
  obs::ObsSpan handshake(obs::kSpanHandshake);
  ClientHelloMessage hello;
  hello.protocol_version = kSessionProtocolVersion;
  hello.public_key_blob = SerializePublicKey(key_->public_key());
  PPSTATS_RETURN_IF_ERROR(channel.Send(hello.Encode()));

  PPSTATS_ASSIGN_OR_RETURN(Bytes reply, channel.Receive());
  handshake.Stop();
  PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(reply));
  if (type == MessageType::kError) return FromErrorFrame(reply);
  PPSTATS_ASSIGN_OR_RETURN(ServerHelloMessage server_hello,
                           ServerHelloMessage::Decode(reply));
  if (server_hello.protocol_version < kSessionProtocolV1 ||
      server_hello.protocol_version > kSessionProtocolVersion) {
    return Status::ProtocolError("server negotiated an unknown version");
  }
  version_ = static_cast<uint16_t>(server_hello.protocol_version);
  server_rows_ = server_hello.database_size;
  channel_ = &channel;
  return Status::OK();
}

Status QuerySession::ConnectWithRetry(const ChannelFactory& dial,
                                      const RetryOptions& retry) {
  if (channel_ != nullptr) {
    return Status::FailedPrecondition("session already connected");
  }
  retry_metrics_ = {};
  size_t max_attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  Status last = Status::Internal("no connection attempt was made");
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      uint32_t backoff = RetryBackoffMs(attempt - 1, retry, *rng_);
      retry_metrics_.backoff_ms_total += backoff;
      Retries().backoff_ms->Add(backoff);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    ++retry_metrics_.attempts;
    Retries().attempts->Increment();
    obs::ObsSpan attempt_span(obs::kSpanRetryAttempt);
    Result<std::unique_ptr<Channel>> channel = dial();
    Status status = channel.ok() ? Connect(**channel) : channel.status();
    attempt_span.Stop();
    if (status.ok()) {
      owned_channel_ = std::move(*channel);  // keep the dialed transport
      return status;
    }
    if (!IsRetryableStatus(status)) return status;
    ++retry_metrics_.retryable_failures;
    Retries().retryable_failures->Increment();
    last = status;
  }
  return last;
}

Status QuerySession::ConnectWithRetry(const std::string& uri,
                                      const RetryOptions& retry,
                                      uint32_t io_deadline_ms,
                                      uint32_t connect_deadline_ms) {
  return ConnectWithRetry(UriDialer(uri, io_deadline_ms, connect_deadline_ms),
                          retry);
}

Result<BigInt> QuerySession::RunQuery(const QuerySpec& spec,
                                      const SelectionVector& selection) {
  WeightVector weights(selection.size());
  for (size_t i = 0; i < selection.size(); ++i) {
    weights[i] = selection[i] ? 1 : 0;
  }
  return RunWeighted(spec, std::move(weights));
}

Result<BigInt> QuerySession::RunWeighted(const QuerySpec& spec,
                                         WeightVector weights) {
  if (channel_ == nullptr) {
    return Status::FailedPrecondition("session is not connected");
  }
  if (finished_) {
    return Status::FailedPrecondition("session already finished");
  }
  if (spec.blinding.has_value() || spec.partition.has_value()) {
    // Those are serving-side options (multi-client / distributed
    // embeddings); the session wire does not carry them.
    return Status::InvalidArgument(
        "blinding/partition cannot be requested over a session");
  }

  uint64_t rows = server_rows_;
  if (version_ == kSessionProtocolV1) {
    if (queries_run_ > 0) {
      return Status::FailedPrecondition(
          "a v1 server serves one query per session");
    }
    if (spec.kind != StatisticKind::kSum || !spec.column.empty() ||
        !spec.column2.empty()) {
      return Status::FailedPrecondition(
          "a v1 server only serves plain sums over its default column");
    }
  } else {
    QueryHeaderMessage header;
    header.kind = static_cast<uint8_t>(spec.kind);
    header.column = spec.column;
    header.column2 = spec.column2;
    PPSTATS_RETURN_IF_ERROR(channel_->Send(header.Encode()));

    PPSTATS_ASSIGN_OR_RETURN(Bytes reply, channel_->Receive());
    PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(reply));
    if (type == MessageType::kError) return FromErrorFrame(reply);
    PPSTATS_ASSIGN_OR_RETURN(QueryAcceptMessage accept,
                             QueryAcceptMessage::Decode(reply));
    rows = accept.rows;
  }
  if (weights.size() != rows) {
    return AbortWith(*channel_, Status::InvalidArgument(
                                    "weights length != query row count"));
  }

  SumClientOptions client_options;
  client_options.chunk_size = options_.chunk_size;
  SumClient client(*key_, std::move(weights), client_options, *rng_);
  // Attribute this query's spans (encrypt, communication, decrypt) to
  // its 1-based index within the session.
  obs::ScopedSpanContext context({obs::CurrentContext().session_id,
                                  static_cast<uint64_t>(queries_run_ + 1)});
  last_partial_.reset();
  PPSTATS_ASSIGN_OR_RETURN(
      BigInt value,
      RunClientQuery(*channel_, client, key_->public_key(),
                     options_.accept_partial, &last_partial_));
  if (options_.result_modulus.has_value()) {
    value = Mod(value, *options_.result_modulus);
  }
  ++queries_run_;
  if (version_ == kSessionProtocolV1) finished_ = true;  // one query only
  return value;
}

Status QuerySession::Finish() {
  if (channel_ == nullptr) {
    return Status::FailedPrecondition("session is not connected");
  }
  if (finished_) return Status::OK();
  finished_ = true;
  if (version_ == kSessionProtocolV2) {
    return channel_->Send(GoodbyeMessage{}.Encode());
  }
  return Status::OK();
}

Status ServerSession::Serve(Channel& channel) {
  std::shared_ptr<QueryRouter> router = options_.router;
  if (router == nullptr) {
    if (registry_ == nullptr && options_.default_column == nullptr) {
      return Status::FailedPrecondition("server has no database");
    }
    LocalRouterConfig config;
    config.default_column = options_.default_column;
    config.worker_threads = options_.worker_threads;
    config.shard_blind = options_.shard_blind;
    router = std::make_shared<LocalQueryRouter>(registry_, std::move(config));
  }
  obs::MetricRegistry* metric_registry =
      options_.registry != nullptr ? options_.registry
                                   : &obs::MetricRegistry::Global();

  // Handshake.
  obs::ObsSpan handshake(obs::kSpanHandshake, metric_registry);
  PPSTATS_ASSIGN_OR_RETURN(Bytes first, channel.Receive());
  Result<ClientHelloMessage> hello = ClientHelloMessage::Decode(first);
  if (!hello.ok()) return AbortWith(channel, hello.status());
  if (hello->protocol_version != kSessionProtocolV1 &&
      hello->protocol_version != kSessionProtocolV2) {
    return AbortWith(channel, Status::ProtocolError(
                                  "unsupported protocol version"));
  }
  const uint16_t version = static_cast<uint16_t>(hello->protocol_version);
  if (version == kSessionProtocolV1 && !router->HasDefault()) {
    return AbortWith(channel, Status::FailedPrecondition(
                                  "server has no default column"));
  }
  Result<PaillierPublicKey> pub =
      options_.key_cache != nullptr
          ? options_.key_cache->Deserialize(hello->public_key_blob)
          : DeserializePublicKey(hello->public_key_blob);
  if (!pub.ok()) return AbortWith(channel, pub.status());
  Status hello_status = router->OnClientHello(hello->public_key_blob, *pub);
  if (!hello_status.ok()) return AbortWith(channel, hello_status);
  metrics_.negotiated_version = version;

  ServerHelloMessage server_hello;
  server_hello.protocol_version = version;
  server_hello.database_size = router->DefaultRows();
  PPSTATS_RETURN_IF_ERROR(channel.Send(server_hello.Encode()));
  handshake.Stop();

  return version == kSessionProtocolV1 ? ServeV1(channel, *pub, *router)
                                       : ServeV2(channel, *pub, *router);
}

Status ServerSession::ServeV1(Channel& channel, const PaillierPublicKey& pub,
                              QueryRouter& router) {
  // The v1 implicit query: a plain sum over the whole default column.
  Result<OpenedQuery> query = router.OpenDefault(pub);
  if (!query.ok()) return AbortWith(channel, query.status());
  return RunServerQuery(channel, *query->execution);
}

Status ServerSession::ServeV2(Channel& channel, const PaillierPublicKey& pub,
                              QueryRouter& router) {
  for (;;) {
    PPSTATS_ASSIGN_OR_RETURN(Bytes frame, channel.Receive());
    PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(frame));
    if (type == MessageType::kGoodbye) return Status::OK();
    if (type == MessageType::kError) return FromErrorFrame(frame);
    Result<QueryHeaderMessage> header = QueryHeaderMessage::Decode(frame);
    if (!header.ok()) return AbortWith(channel, header.status());

    // Resolution (unknown kind/column, zero-row cover — a zero-row
    // query would deadlock: the client has no chunks to send and the
    // server would wait for one) happens inside the router.
    Result<OpenedQuery> query = router.Open(*header, pub);
    if (!query.ok()) return AbortWith(channel, query.status());

    QueryAcceptMessage accept;
    accept.rows = query->rows;
    PPSTATS_RETURN_IF_ERROR(channel.Send(accept.Encode()));
    PPSTATS_RETURN_IF_ERROR(RunServerQuery(channel, *query->execution));
  }
}

Status ServerSession::RunServerQuery(Channel& channel,
                                     QueryExecution& execution) {
  // Attribute this query's fold spans to its 1-based index within the
  // session (the session id comes from the enclosing ServiceHost).
  obs::ScopedSpanContext context({obs::CurrentContext().session_id,
                                  static_cast<uint64_t>(metrics_.queries + 1)});
  while (!execution.Finished()) {
    PPSTATS_ASSIGN_OR_RETURN(Bytes frame, channel.Receive());
    PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(frame));
    if (type == MessageType::kError) return FromErrorFrame(frame);
    Result<std::optional<Bytes>> response = execution.HandleRequest(frame);
    if (!response.ok()) return AbortWith(channel, response.status());
    if (response->has_value()) {
      // Account the query *before* its SumResponse reaches the wire: a
      // client that has seen its answer is guaranteed to find the query
      // in the host's live stats (no stale-until-Stop window).
      ++metrics_.queries;
      metrics_.server_compute_s += execution.compute_seconds();
      if (options_.queries_counter != nullptr) {
        options_.queries_counter->Increment();
      }
      if (options_.compute_ns_counter != nullptr) {
        options_.compute_ns_counter->Add(
            static_cast<uint64_t>(execution.compute_seconds() * 1e9));
      }
      PPSTATS_RETURN_IF_ERROR(channel.Send(**response));
    }
  }
  return Status::OK();
}

}  // namespace ppstats
