#include "core/session.h"

#include "core/messages.h"
#include "crypto/key_io.h"

namespace ppstats {

namespace {

// Sends an Error frame; returns the original status for propagation.
Status AbortWith(Channel& channel, Status status) {
  ErrorMessage msg;
  msg.code = static_cast<uint8_t>(status.code());
  msg.reason = status.message();
  (void)channel.Send(msg.Encode());  // best effort; the session is dead
  return status;
}

// Translates a received Error frame into a local Status.
Status FromErrorFrame(BytesView frame) {
  Result<ErrorMessage> msg = ErrorMessage::Decode(frame);
  if (!msg.ok()) return Status::ProtocolError("undecodable error frame");
  return Status(static_cast<StatusCode>(msg->code),
                "peer aborted: " + msg->reason);
}

}  // namespace

ClientSession::ClientSession(const PaillierPrivateKey& key,
                             SelectionVector selection,
                             ClientSessionOptions options, RandomSource& rng)
    : key_(&key),
      selection_(std::move(selection)),
      options_(options),
      rng_(&rng) {}

Result<BigInt> ClientSession::Run(Channel& channel) {
  // Handshake.
  ClientHelloMessage hello;
  hello.protocol_version = kSessionProtocolVersion;
  hello.public_key_blob = SerializePublicKey(key_->public_key());
  PPSTATS_RETURN_IF_ERROR(channel.Send(hello.Encode()));

  PPSTATS_ASSIGN_OR_RETURN(Bytes reply, channel.Receive());
  PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(reply));
  if (type == MessageType::kError) return FromErrorFrame(reply);
  PPSTATS_ASSIGN_OR_RETURN(ServerHelloMessage server_hello,
                           ServerHelloMessage::Decode(reply));
  if (server_hello.protocol_version != kSessionProtocolVersion) {
    return Status::ProtocolError("server speaks a different version");
  }
  if (server_hello.database_size != selection_.size()) {
    return AbortWith(channel,
                     Status::InvalidArgument(
                         "selection length != server database size"));
  }

  // Query.
  SumClientOptions client_options;
  client_options.chunk_size = options_.chunk_size;
  SumClient client(*key_, selection_, client_options, *rng_);
  while (!client.RequestsDone()) {
    PPSTATS_ASSIGN_OR_RETURN(Bytes request, client.NextRequest());
    PPSTATS_RETURN_IF_ERROR(channel.Send(request));
  }
  PPSTATS_ASSIGN_OR_RETURN(Bytes response, channel.Receive());
  PPSTATS_ASSIGN_OR_RETURN(MessageType response_type,
                           PeekMessageType(response));
  if (response_type == MessageType::kError) return FromErrorFrame(response);
  return client.HandleResponse(response);
}

Status ServerSession::Serve(Channel& channel) {
  if (db_ == nullptr) {
    return Status::FailedPrecondition("server has no database");
  }

  // Handshake.
  PPSTATS_ASSIGN_OR_RETURN(Bytes first, channel.Receive());
  Result<ClientHelloMessage> hello = ClientHelloMessage::Decode(first);
  if (!hello.ok()) return AbortWith(channel, hello.status());
  if (hello->protocol_version != kSessionProtocolVersion) {
    return AbortWith(channel, Status::ProtocolError(
                                  "unsupported protocol version"));
  }
  Result<PaillierPublicKey> pub =
      DeserializePublicKey(hello->public_key_blob);
  if (!pub.ok()) return AbortWith(channel, pub.status());

  ServerHelloMessage server_hello;
  server_hello.protocol_version = kSessionProtocolVersion;
  server_hello.database_size = db_->size();
  PPSTATS_RETURN_IF_ERROR(channel.Send(server_hello.Encode()));

  // Query.
  SumServer server(*pub, db_);
  while (!server.Finished()) {
    PPSTATS_ASSIGN_OR_RETURN(Bytes frame, channel.Receive());
    PPSTATS_ASSIGN_OR_RETURN(MessageType type, PeekMessageType(frame));
    if (type == MessageType::kError) return FromErrorFrame(frame);
    Result<std::optional<Bytes>> response = server.HandleRequest(frame);
    if (!response.ok()) return AbortWith(channel, response.status());
    if (response->has_value()) {
      PPSTATS_RETURN_IF_ERROR(channel.Send(**response));
    }
  }
  return Status::OK();
}

}  // namespace ppstats
