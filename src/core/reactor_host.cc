#include "core/reactor_host.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <utility>

#include "common/thread_pool.h"
#include "core/messages.h"
#include "crypto/chacha20_rng.h"
#include "net/channel.h"
#include "net/fault_injection.h"

namespace ppstats {

namespace {

/// Same values as the threaded engine (core/service_host.cc).
constexpr uint32_t kMaxAcceptBackoffMs = 100;
constexpr uint32_t kRejectWriteDeadlineMs = 100;

/// Inbound frame size limit — matches WrapSocket's default, so both
/// engines reject the same hostile length prefixes.
constexpr size_t kMaxMessageBytes = size_t{1} << 28;

/// recv() scratch size per call; the read loop drains to EAGAIN anyway
/// (edge-triggered contract), this only bounds one copy.
constexpr size_t kReadChunkBytes = 64 * 1024;

/// Frames gathered into one sendmsg() when the writev outbox is on.
/// Well under IOV_MAX; one batch per syscall, re-gathered after partial
/// writes.
constexpr size_t kWritevBatchFrames = 64;

}  // namespace

/// One outbound wire frame (4-byte length prefix already applied), plus
/// the fault plan that shaped it. Frames flush strictly in order; a
/// delayed frame holds everything behind it, and a disconnect marker
/// kills the transport once every earlier frame has hit the wire —
/// exactly the ordering a blocking FaultInjectingChannel produces.
struct OutFrame {
  Bytes wire;
  uint32_t delay_ms = 0;
  bool delay_armed = false;
  bool disconnect = false;
};

struct ReactorEngine::SessionState {
  enum class Mode : uint8_t { kServing, kRejecting };

  int fd = -1;
  uint64_t id = 0;  ///< protocol session ordinal (serving mode only)
  size_t shard = 0;
  Mode mode = Mode::kServing;

  // Protocol state. The FSM is touched by exactly one thread at a time:
  // a pool worker while `processing` is true, the reactor thread
  // otherwise (the pool and Post() queues provide the handoff fences).
  std::unique_ptr<ServerProtocolFsm> fsm;
  std::unique_ptr<ChaCha20Rng> fault_rng;
  std::optional<FrameFaultPlanner> planner;

  // Read side (reactor thread only).
  Bytes read_buf;
  size_t read_pos = 0;
  std::deque<Bytes> inbox;
  Bytes current_frame;  ///< owned by the worker while processing
  bool processing = false;

  // Write side (reactor thread only).
  std::deque<OutFrame> outbox;
  size_t wire_off = 0;  ///< bytes of outbox.front().wire already sent
  bool want_write = false;
  bool transport_dead = false;
  Status flush_error = Status::OK();  ///< first send-path failure

  // Errors observed while a worker holds the FSM, applied once it
  // returns. `pending_error` (send failures) aborts immediately;
  // `read_error` (EOF/reset) only once the inbox drains, so pipelined
  // frames that arrived before the close still get served.
  std::optional<Status> pending_error;
  std::optional<Status> read_error;

  // Timers (ids into the owning reactor's wheel; 0 = unarmed).
  uint64_t read_timer = 0;
  uint64_t write_timer = 0;
  uint64_t delay_timer = 0;
  uint64_t retry_timer = 0;
  uint64_t reject_timer = 0;

  bool closing = false;  ///< terminal: flush the outbox, then close
  bool closed = false;
};

ReactorEngine::ReactorEngine(const ColumnRegistry* registry,
                             const Database* default_column,
                             const ServiceHostOptions& options,
                             HostCounters counters, PublicKeyCache* key_cache,
                             obs::MetricRegistry* metric_registry)
    : registry_(registry),
      default_column_(default_column),
      options_(options),
      counters_(counters),
      key_cache_(key_cache),
      metric_registry_(metric_registry) {}

ReactorEngine::~ReactorEngine() { Stop(); }

Status ReactorEngine::Start(const Endpoint& endpoint) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("reactor engine already running");
  }
  const size_t shard_count = std::max<size_t>(1, options_.reactor_threads);

  // One listener per shard. TCP shards each bind the same address with
  // SO_REUSEPORT (set on every listener, including the first), so the
  // kernel spreads incoming connections across shards. AF_UNIX has no
  // per-path SO_REUSEPORT balancing; extra shards dup() the first
  // listening description instead — every shard's epoll sees the edge
  // and the losers read EAGAIN.
  ListenOptions listen_options;
  listen_options.backlog = options_.accept_backlog;
  listen_options.sndbuf_bytes = options_.so_sndbuf;
  listen_options.reuse_port =
      endpoint.kind == EndpointKind::kTcp && shard_count > 1;
  PPSTATS_ASSIGN_OR_RETURN(SocketListener first,
                           SocketListener::Bind(endpoint, listen_options));
  PPSTATS_RETURN_IF_ERROR(SetSocketNonBlocking(first.fd()));
  endpoint_ = first.endpoint();  // ephemeral TCP ports resolve here

  std::vector<SocketListener> listeners;
  listeners.push_back(std::move(first));
  for (size_t i = 1; i < shard_count; ++i) {
    if (endpoint_.kind == EndpointKind::kTcp) {
      PPSTATS_ASSIGN_OR_RETURN(SocketListener extra,
                               SocketListener::Bind(endpoint_, listen_options));
      PPSTATS_RETURN_IF_ERROR(SetSocketNonBlocking(extra.fd()));
      listeners.push_back(std::move(extra));
    } else {
      // Shares the first listener's file description (and its
      // O_NONBLOCK flag); only the first owns the socket path.
      PPSTATS_ASSIGN_OR_RETURN(SocketListener dup, listeners[0].Duplicate());
      listeners.push_back(std::move(dup));
    }
  }

  shards_.clear();
  shards_.resize(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    ReactorOptions reactor_options;
    reactor_options.max_events = options_.max_events;
    reactor_options.force_poll_backend = options_.force_poll_backend;
    reactor_options.registry = metric_registry_;
    Result<std::unique_ptr<Reactor>> reactor = Reactor::Create(reactor_options);
    if (!reactor.ok()) {
      shards_.clear();
      return reactor.status();
    }
    shards_[i].reactor = std::move(*reactor);
    shards_[i].listener.emplace(std::move(listeners[i]));
    shards_[i].accepts =
        metric_registry_->GetCounter("net.accepts." + std::to_string(i));
  }
  writev_calls_ = metric_registry_->GetCounter("net.writev_calls");
  writev_frames_ = metric_registry_->GetCounter("net.writev_frames");

  // Register every listener before the loops run (Add is reactor-
  // thread-only once Run() starts).
  for (size_t i = 0; i < shard_count; ++i) {
    Shard& shard = shards_[i];
    Status added =
        shard.reactor->Add(shard.listener->fd(), kReactorReadable,
                           [this, i](uint32_t) { AcceptPass(i); });
    if (!added.ok()) {
      shards_.clear();
      return added;
    }
    shard.listener_registered = true;
    shard.accept_backoff_ms = 1;
  }
  next_session_id_.store(0, std::memory_order_relaxed);
  stopping_.store(false, std::memory_order_release);

  // Folds dispatch to the shared pool; creating it here keeps worker
  // threads out of the per-session accounting observers see after
  // Start() returns.
  (void)ThreadPool::Shared().thread_count();

  for (Shard& shard : shards_) {
    shard.thread = std::thread([r = shard.reactor.get()] { r->Run(); });
  }
  // Kick one accept pass per shard immediately: connections (or
  // injected accept faults) that predate the epoll registration produce
  // no edge, and edge-triggered listeners only wake on new arrivals.
  for (size_t i = 0; i < shard_count; ++i) {
    shards_[i].reactor->Post([this, i] { AcceptPass(i); });
  }
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void ReactorEngine::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  for (Shard& shard : shards_) {
    if (shard.listener.has_value()) shard.listener->Close();
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].reactor->Post([this, i] { RemoveListener(i); });
  }
  {
    // Drain: sessions in flight run to completion (bounded by the I/O
    // deadline when one is set), exactly like the threaded engine's
    // reaper join. Worker completions keep landing on the reactors
    // until the last session finalizes, so the loops must stay up.
    MutexLock lock(drain_mu_);
    while (live_sessions_ > 0) drain_cv_.Wait(drain_mu_);
  }
  for (Shard& shard : shards_) shard.reactor->Stop();
  for (Shard& shard : shards_) {
    if (shard.thread.joinable()) shard.thread.join();
  }
  shards_.clear();
  running_.store(false, std::memory_order_release);
}

void ReactorEngine::RemoveListener(size_t shard) {
  Shard& sh = shards_[shard];
  if (!sh.listener_registered) return;
  sh.listener_registered = false;
  sh.reactor->Remove(sh.listener->fd());
}

void ReactorEngine::AcceptPass(size_t shard) {
  Shard& sh = shards_[shard];
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    Result<std::optional<int>> next = [&]() -> Result<std::optional<int>> {
      // The hook may be consulted from any shard's reactor thread;
      // hooks that keep state must use atomics.
      if (options_.accept_fault_hook) {
        PPSTATS_RETURN_IF_ERROR(options_.accept_fault_hook());
      }
      return sh.listener->AcceptFd();
    }();
    if (!next.ok()) {
      if (next.status().code() != StatusCode::kResourceExhausted) {
        // The listener is dead (shutdown or a hard kernel error); stop
        // accepting on this shard, like the threaded accept loop
        // returning.
        RemoveListener(shard);
        return;
      }
      // Transient fd/memory pressure: capped exponential backoff. The
      // retry timer re-runs this pass, which also re-drains any
      // connections that queued while we were backing off (the
      // edge-triggered backend will not re-announce them).
      const uint32_t backoff = sh.accept_backoff_ms;
      sh.accept_backoff_ms =
          std::min(sh.accept_backoff_ms * 2, kMaxAcceptBackoffMs);
      sh.reactor->ArmTimer(std::chrono::milliseconds(backoff),
                           [this, shard] { AcceptPass(shard); });
      return;
    }
    if (!next->has_value()) return;  // queue drained (EAGAIN)
    sh.accept_backoff_ms = 1;
    sh.accepts->Increment();

    const int fd = **next;
    if (Status nb = SetSocketNonBlocking(fd); !nb.ok()) {
      ::close(fd);
      continue;
    }
    const bool reject =
        options_.max_sessions > 0 &&
        serving_count_.load(std::memory_order_acquire) >= options_.max_sessions;
    OpenSession(shard, fd, reject);
  }
}

void ReactorEngine::OpenSession(size_t shard, int fd, bool reject) {
  auto session = std::make_shared<SessionState>();
  session->fd = fd;
  // Sessions stay on the shard whose listener accepted them: the
  // registration below runs inline on this shard's own reactor thread,
  // with no cross-shard handoff.
  session->shard = shard;
  if (reject) {
    counters_.rejected->Increment();
    session->mode = SessionState::Mode::kRejecting;
  } else {
    counters_.accepted->Increment();
    // Ids count accepted sessions only, like the threaded engine — so
    // fault_seed + id addresses the same session under either engine
    // whenever the accept order is deterministic (single-client chaos
    // tests; multi-shard runs only promise id uniqueness).
    session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    serving_count_.fetch_add(1, std::memory_order_acq_rel);
    counters_.active->Set(
        static_cast<int64_t>(serving_count_.load(std::memory_order_acquire)));

    ServerSessionOptions session_options;
    session_options.default_column = default_column_;
    session_options.worker_threads = options_.worker_threads;
    session_options.key_cache = key_cache_;
    session_options.registry = metric_registry_;
    session_options.queries_counter = counters_.queries;
    session_options.compute_ns_counter = counters_.compute_ns;
    session_options.shard_blind = options_.shard_blind;
    if (options_.router_factory != nullptr) {
      session_options.router = options_.router_factory();
    }
    session->fsm = std::make_unique<ServerProtocolFsm>(
        registry_, session_options, session->id + 1);
    if (options_.fault_injection.has_value()) {
      session->fault_rng =
          std::make_unique<ChaCha20Rng>(options_.fault_seed + session->id);
      session->planner.emplace(*options_.fault_injection, *session->fault_rng);
    }
  }
  {
    MutexLock lock(drain_mu_);
    ++live_sessions_;
  }
  RegisterSession(shard, std::move(session));
}

void ReactorEngine::RegisterSession(size_t shard,
                                    std::shared_ptr<SessionState> session) {
  Shard& sh = shards_[shard];
  sh.sessions.emplace(session->fd, session);
  Status added =
      sh.reactor->Add(session->fd, kReactorReadable,
                      [this, shard, session](uint32_t ready) {
                        OnSessionEvent(shard, session, ready);
                      });
  if (!added.ok()) {
    if (session->mode == SessionState::Mode::kServing) {
      session->fsm->OnTransportError(added);
    }
    FinalizeSession(shard, session);
    return;
  }
  if (session->mode == SessionState::Mode::kRejecting) {
    // Best-effort hello drain before the Error frame, bounded like the
    // threaded engine's 100ms reject read deadline.
    session->reject_timer = sh.reactor->ArmTimer(
        std::chrono::milliseconds(kRejectWriteDeadlineMs),
        [this, shard, session] {
          session->reject_timer = 0;
          if (!session->closed && !session->closing) {
            BeginReject(shard, session);
          }
        });
  } else {
    ArmReadTimer(shard, session);  // the hello is due within the deadline
  }
}

void ReactorEngine::OnSessionEvent(size_t shard,
                                   const std::shared_ptr<SessionState>& s,
                                   uint32_t ready) {
  if (s->closed) return;
  if (ready & (kReactorReadable | kReactorClosed)) ReadPass(shard, s);
  if (s->closed) return;
  if (ready & kReactorWritable) Flush(shard, s);
}

void ReactorEngine::ReadPass(size_t shard,
                             const std::shared_ptr<SessionState>& s) {
  if (s->transport_dead || s->read_error.has_value()) return;
  for (;;) {
    uint8_t buf[kReadChunkBytes];
    const ssize_t n = ::recv(s->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      // A closing session drains and discards (it owes the peer nothing
      // more); an open one accumulates for the frame parser.
      if (!s->closing) s->read_buf.insert(s->read_buf.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      ParseFrames(shard, s);  // bytes before the EOF may complete frames
      if (!s->closed && !s->read_error.has_value()) {
        HandleReadFailure(shard, s,
                          Status::ProtocolError("peer closed the channel"));
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    const int recv_errno = errno;  // ParseFrames may clobber errno
    ParseFrames(shard, s);
    if (!s->closed && !s->read_error.has_value()) {
      HandleReadFailure(shard, s,
                        ErrnoStatus(StatusCode::kProtocolError, "recv failed",
                                    recv_errno));
    }
    return;
  }
  ParseFrames(shard, s);
}

void ReactorEngine::ParseFrames(size_t shard,
                                const std::shared_ptr<SessionState>& s) {
  while (!s->closed && !s->closing && !s->read_error.has_value()) {
    const size_t avail = s->read_buf.size() - s->read_pos;
    if (avail < kFrameOverheadBytes) break;
    uint32_t len = 0;
    for (size_t i = 0; i < kFrameOverheadBytes; ++i) {
      len = (len << 8) | s->read_buf[s->read_pos + i];
    }
    if (len > kMaxMessageBytes) {
      HandleReadFailure(
          shard, s, Status::ProtocolError("incoming frame exceeds the limit"));
      break;
    }
    if (avail < kFrameOverheadBytes + len) break;
    const auto frame_begin =
        s->read_buf.begin() +
        static_cast<ptrdiff_t>(s->read_pos + kFrameOverheadBytes);
    Bytes frame(frame_begin, frame_begin + static_cast<ptrdiff_t>(len));
    s->read_pos += kFrameOverheadBytes + len;
    ChannelMetrics& metrics = ChannelMetrics::Get();
    metrics.frames_received->Increment();
    metrics.bytes_received->Add(len + kFrameOverheadBytes);
    OnFrameParsed(shard, s, std::move(frame));
  }
  if (s->read_pos > 0) {
    s->read_buf.erase(s->read_buf.begin(),
                      s->read_buf.begin() + static_cast<ptrdiff_t>(s->read_pos));
    s->read_pos = 0;
  }
}

void ReactorEngine::OnFrameParsed(size_t shard,
                                  const std::shared_ptr<SessionState>& s,
                                  Bytes frame) {
  if (s->mode == SessionState::Mode::kRejecting) {
    // The hello arrived (content irrelevant): answer and close.
    if (!s->closing) BeginReject(shard, s);
    return;
  }
  // A complete frame is what satisfies the whole-frame deadline; partial
  // bytes never reset it (Slowloris-proof).
  CancelSessionTimer(shard, s->read_timer);
  s->inbox.push_back(std::move(frame));
  PumpProcessing(shard, s);
}

void ReactorEngine::PumpProcessing(size_t shard,
                                   const std::shared_ptr<SessionState>& s) {
  if (s->processing || s->closed || s->closing || s->inbox.empty()) return;
  if (s->fsm->done()) {
    s->inbox.clear();  // late frames are noise; the session is over
    return;
  }
  s->current_frame = std::move(s->inbox.front());
  s->inbox.pop_front();
  s->processing = true;
  // The worker exclusively owns fsm + current_frame until its
  // completion posts back; the reactor thread will not touch either
  // while `processing` is set.
  auto task = [this, shard, s] {
    ServerFsmOutput out = s->fsm->OnFrame(s->current_frame);
    shards_[shard].reactor->Post([this, shard, s, out = std::move(out)]() mutable {
      HandleFsmOutput(shard, s, std::move(out));
    });
  };
  if (options_.fold_queue_depth > 0) {
    Status submitted =
        ThreadPool::Shared().TrySubmit(task, options_.fold_queue_depth);
    if (!submitted.ok()) {
      // Pool saturated: backpressure. The frame goes back to the inbox
      // and a short timer retries; the read deadline stays cancelled
      // because the client is not the one stalling.
      s->processing = false;
      s->inbox.push_front(std::move(s->current_frame));
      s->current_frame.clear();
      if (s->retry_timer == 0) {
        s->retry_timer = shards_[shard].reactor->ArmTimer(
            std::chrono::milliseconds(1), [this, shard, s] {
              s->retry_timer = 0;
              if (!s->closed) PumpProcessing(shard, s);
            });
      }
      return;
    }
  } else {
    // ppstats-analyze: allow(reactor-blocking): Submit() only takes the
    // pool mutex to enqueue (never waits for the task); unbounded mode
    // is the operator's explicit opt-out of TrySubmit backpressure.
    ThreadPool::Shared().Submit(task);
  }
}

void ReactorEngine::HandleFsmOutput(size_t shard,
                                    const std::shared_ptr<SessionState>& s,
                                    ServerFsmOutput out) {
  s->processing = false;
  s->current_frame.clear();
  if (s->closed) return;
  for (const Bytes& frame : out.frames) {
    AppendOutbound(s, frame, /*faultable=*/true);
  }
  Flush(shard, s);
  if (s->closed) return;
  if (s->pending_error.has_value()) {
    // A send failed while the worker held the FSM; the session cannot
    // continue (the blocking engine would have returned mid-Serve).
    if (!s->fsm->done()) s->fsm->OnTransportError(*s->pending_error);
    FinalizeSession(shard, s);
    return;
  }
  if (!s->inbox.empty() && !s->fsm->done()) {
    PumpProcessing(shard, s);
    return;
  }
  if (s->read_error.has_value() && !s->fsm->done()) {
    // EOF/reset observed earlier; every pipelined frame has now been
    // served, so the error finally lands.
    s->fsm->OnTransportError(*s->read_error);
  }
  if (s->fsm->done()) {
    BeginClose(shard, s);
    return;
  }
  ArmReadTimer(shard, s);  // back to waiting on the client
}

void ReactorEngine::AppendOutbound(const std::shared_ptr<SessionState>& s,
                                   BytesView payload, bool faultable) {
  if (s->transport_dead) return;
  uint32_t delay_ms = 0;
  Bytes body;
  if (faultable && s->planner.has_value()) {
    FaultPlan plan = s->planner->Plan(payload);
    if (plan.kind.has_value()) {
      switch (*plan.kind) {
        case FaultKind::kDelay:
          delay_ms = plan.delay_ms;
          body.assign(payload.begin(), payload.end());
          break;
        case FaultKind::kTruncate:
        case FaultKind::kGarble:
          body = std::move(plan.payload);
          break;
        case FaultKind::kDrop:
          return;  // the peer waits for a frame that never comes
        case FaultKind::kDisconnect: {
          OutFrame marker;
          marker.disconnect = true;
          s->outbox.push_back(std::move(marker));
          return;
        }
      }
    } else {
      body.assign(payload.begin(), payload.end());
    }
  } else {
    body.assign(payload.begin(), payload.end());
  }
  OutFrame frame;
  frame.delay_ms = delay_ms;
  frame.wire.reserve(kFrameOverheadBytes + body.size());
  const uint32_t len = static_cast<uint32_t>(body.size());
  for (size_t i = 0; i < kFrameOverheadBytes; ++i) {
    frame.wire.push_back(
        static_cast<uint8_t>(len >> (8 * (kFrameOverheadBytes - 1 - i))));
  }
  frame.wire.insert(frame.wire.end(), body.begin(), body.end());
  s->outbox.push_back(std::move(frame));
}

void ReactorEngine::Flush(size_t shard, const std::shared_ptr<SessionState>& s) {
  if (s->closed || s->transport_dead) return;
  while (!s->outbox.empty()) {
    OutFrame& head = s->outbox.front();
    if (head.disconnect) {
      // Injected disconnect: everything before the marker is on the
      // wire; kill the transport so the peer sees EOF, like the
      // blocking FaultInjectingChannel closing its inner channel.
      ::shutdown(s->fd, SHUT_RDWR);
      HandleSendFailure(
          shard, s,
          Status::ProtocolError("channel closed by injected disconnect"));
      return;
    }
    if (head.delay_ms > 0) {
      if (!head.delay_armed) {
        head.delay_armed = true;
        s->delay_timer = shards_[shard].reactor->ArmTimer(
            std::chrono::milliseconds(head.delay_ms), [this, shard, s] {
              s->delay_timer = 0;
              if (s->closed || s->outbox.empty()) return;
              s->outbox.front().delay_ms = 0;
              Flush(shard, s);
            });
      }
      break;  // later frames must not overtake the delayed one
    }
    ssize_t n;
    if (options_.outbox_writev) {
      // Gather every flushable frame behind the head into one
      // sendmsg(): the batch stops at a delay barrier or disconnect
      // marker, which later frames must not overtake.
      struct iovec iov[kWritevBatchFrames];
      size_t iov_count = 0;
      for (const OutFrame& f : s->outbox) {
        if (iov_count == kWritevBatchFrames || f.disconnect || f.delay_ms > 0) {
          break;
        }
        const size_t off = iov_count == 0 ? s->wire_off : 0;
        iov[iov_count].iov_base =
            const_cast<uint8_t*>(f.wire.data() + off);
        iov[iov_count].iov_len = f.wire.size() - off;
        ++iov_count;
      }
      struct msghdr msg = {};
      msg.msg_iov = iov;
      msg.msg_iovlen = iov_count;
      n = ::sendmsg(s->fd, &msg, MSG_NOSIGNAL);
      if (n >= 0) writev_calls_->Increment();
    } else {
      n = ::send(s->fd, head.wire.data() + s->wire_off,
                 head.wire.size() - s->wire_off, MSG_NOSIGNAL);
    }
    if (n >= 0) {
      // Advance across the batch: whole frames pop (a gathered call can
      // complete several at once), a partial tail resumes at wire_off.
      size_t sent = static_cast<size_t>(n);
      do {
        OutFrame& front = s->outbox.front();
        const size_t remaining = front.wire.size() - s->wire_off;
        if (sent < remaining) {
          s->wire_off += sent;
          break;
        }
        sent -= remaining;
        ChannelMetrics& metrics = ChannelMetrics::Get();
        metrics.frames_sent->Increment();
        metrics.bytes_sent->Add(front.wire.size());
        if (options_.outbox_writev) writev_frames_->Increment();
        s->wire_off = 0;
        s->outbox.pop_front();
      } while (sent > 0 && !s->outbox.empty());
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SetWriteInterest(shard, s, true);
      ArmWriteTimer(shard, s);
      return;
    }
    // Same "send failed" prefix on both paths, for parity with the
    // threaded engine's SocketChannel::Send.
    HandleSendFailure(
        shard, s, ErrnoStatus(StatusCode::kProtocolError, "send failed", errno));
    return;
  }
  // Outbox drained (or holding for a delay, which keeps its own timer).
  if (s->outbox.empty()) {
    CancelSessionTimer(shard, s->write_timer);
    SetWriteInterest(shard, s, false);
    if (s->closing) FinalizeSession(shard, s);
  }
}

void ReactorEngine::ArmReadTimer(size_t shard,
                                 const std::shared_ptr<SessionState>& s) {
  if (options_.io_deadline_ms == 0 || s->read_timer != 0 || s->closing ||
      s->closed) {
    return;
  }
  s->read_timer = shards_[shard].reactor->ArmTimer(
      std::chrono::milliseconds(options_.io_deadline_ms),
      [this, shard, s] {
        s->read_timer = 0;
        OnReadDeadline(shard, s);
      });
}

void ReactorEngine::ArmWriteTimer(size_t shard,
                                  const std::shared_ptr<SessionState>& s) {
  // Same guard as ArmReadTimer: the steady-state timer never arms on a
  // session that is tearing down. A closing session's final flush is
  // still bounded — BeginClose/BeginReject arm the flush deadline
  // explicitly via ArmFlushDeadline.
  if (s->closing || s->closed) return;
  ArmFlushDeadline(shard, s);
}

void ReactorEngine::ArmFlushDeadline(size_t shard,
                                     const std::shared_ptr<SessionState>& s) {
  const uint32_t deadline_ms = s->mode == SessionState::Mode::kRejecting
                                   ? kRejectWriteDeadlineMs
                                   : options_.io_deadline_ms;
  if (deadline_ms == 0 || s->write_timer != 0) return;
  s->write_timer = shards_[shard].reactor->ArmTimer(
      std::chrono::milliseconds(deadline_ms), [this, shard, s] {
        s->write_timer = 0;
        if (s->closed) return;
        ChannelMetrics::Get().deadline_expirations->Increment();
        HandleSendFailure(
            shard, s,
            Status::DeadlineExceeded("channel i/o ran past the deadline"));
      });
}

void ReactorEngine::CancelSessionTimer(size_t shard, uint64_t& id) {
  if (id == 0) return;
  shards_[shard].reactor->CancelTimer(id);
  id = 0;
}

void ReactorEngine::SetWriteInterest(size_t shard,
                                     const std::shared_ptr<SessionState>& s,
                                     bool enable) {
  if (s->want_write == enable) return;
  s->want_write = enable;
  uint32_t interest = kReactorReadable;
  if (enable) interest |= kReactorWritable;
  shards_[shard].reactor->Modify(s->fd, interest).IgnoreError();
}

void ReactorEngine::BeginReject(size_t shard,
                                const std::shared_ptr<SessionState>& s) {
  CancelSessionTimer(shard, s->reject_timer);
  // The rejection frame bypasses fault injection, like the threaded
  // engine's RejectOverCapacity writing to the raw accepted channel.
  AppendOutbound(
      s,
      EncodeErrorFrame(
          Status::ResourceExhausted("server at capacity; retry later")),
      /*faultable=*/false);
  s->closing = true;
  Flush(shard, s);
  // Closing sessions get their flush bound here (ArmWriteTimer refuses
  // to arm once closing), so a peer that never drains cannot pin the
  // rejection through Stop().
  if (!s->closed && !s->outbox.empty()) ArmFlushDeadline(shard, s);
}

void ReactorEngine::BeginClose(size_t shard,
                               const std::shared_ptr<SessionState>& s) {
  s->closing = true;
  CancelSessionTimer(shard, s->read_timer);
  Flush(shard, s);  // finalizes once the outbox drains
  if (!s->closed && !s->outbox.empty()) ArmFlushDeadline(shard, s);
}

void ReactorEngine::OnReadDeadline(size_t shard,
                                   const std::shared_ptr<SessionState>& s) {
  // The timer is only armed while the session idles waiting on the
  // client, so the FSM is safe to touch here.
  if (s->closed || s->closing || s->processing) return;
  ChannelMetrics::Get().deadline_expirations->Increment();
  ServerFsmOutput out = s->fsm->OnDeadline();
  for (const Bytes& frame : out.frames) {
    AppendOutbound(s, frame, /*faultable=*/true);
  }
  BeginClose(shard, s);
}

void ReactorEngine::HandleReadFailure(size_t shard,
                                      const std::shared_ptr<SessionState>& s,
                                      Status error) {
  CancelSessionTimer(shard, s->read_timer);
  if (s->mode == SessionState::Mode::kRejecting) {
    // Parity with RejectOverCapacity: the hello drain is best-effort
    // (Receive().IgnoreError()); the Error frame is sent regardless.
    if (!s->closing) BeginReject(shard, s);
    return;
  }
  s->read_error = std::move(error);
  if (s->processing || !s->inbox.empty()) return;  // applied after drain
  if (!s->fsm->done()) s->fsm->OnTransportError(*s->read_error);
  BeginClose(shard, s);
}

void ReactorEngine::HandleSendFailure(size_t shard,
                                      const std::shared_ptr<SessionState>& s,
                                      Status error) {
  s->transport_dead = true;
  if (s->flush_error.ok()) s->flush_error = error;
  s->outbox.clear();
  s->wire_off = 0;
  CancelSessionTimer(shard, s->write_timer);
  CancelSessionTimer(shard, s->delay_timer);
  if (s->mode == SessionState::Mode::kRejecting) {
    FinalizeSession(shard, s);
    return;
  }
  if (s->processing) {
    s->pending_error = std::move(error);  // applied when the worker returns
    return;
  }
  if (!s->fsm->done()) s->fsm->OnTransportError(std::move(error));
  FinalizeSession(shard, s);
}

void ReactorEngine::FinalizeSession(size_t shard,
                                    const std::shared_ptr<SessionState>& s) {
  if (s->closed) return;
  s->closed = true;
  CancelSessionTimer(shard, s->read_timer);
  CancelSessionTimer(shard, s->write_timer);
  CancelSessionTimer(shard, s->delay_timer);
  CancelSessionTimer(shard, s->retry_timer);
  CancelSessionTimer(shard, s->reject_timer);
  shards_[shard].reactor->Remove(s->fd);
  ::close(s->fd);
  shards_[shard].sessions.erase(s->fd);

  if (s->mode == SessionState::Mode::kServing) {
    // Same outcome mapping as the threaded ServeOne: the FSM's own
    // abort status wins; a send-path failure only surfaces when the
    // protocol itself ended cleanly.
    Status status = s->fsm->final_status();
    if (status.ok() && !s->fsm->done()) {
      status = Status::Internal("session closed before completion");
    }
    if (status.ok() && !s->flush_error.ok()) status = s->flush_error;
    if (status.ok()) {
      counters_.ok->Increment();
    } else {
      counters_.failed->Increment();
      if (status.code() == StatusCode::kDeadlineExceeded) {
        counters_.evicted->Increment();
      }
    }
    serving_count_.fetch_sub(1, std::memory_order_acq_rel);
    counters_.active->Set(
        static_cast<int64_t>(serving_count_.load(std::memory_order_acquire)));
  }
  {
    MutexLock lock(drain_mu_);
    --live_sessions_;
  }
  drain_cv_.NotifyAll();
}

}  // namespace ppstats
