#include "core/selected_sum.h"

#include <algorithm>

#include "obs/span.h"

namespace ppstats {

namespace {

WeightVector SelectionToWeights(const SelectionVector& selection) {
  WeightVector weights(selection.size());
  for (size_t i = 0; i < selection.size(); ++i) {
    weights[i] = selection[i] ? 1 : 0;
  }
  return weights;
}

CompiledQuery WholeColumnSum(const Database* db) {
  CompiledQuery query;
  query.column = db;
  query.transform = ExponentTransform::Identity();
  query.begin = 0;
  query.end = db->size();
  return query;
}

}  // namespace

SumClient::SumClient(const PaillierPrivateKey& key, WeightVector weights,
                     SumClientOptions options, RandomSource& rng)
    : key_(&key),
      weights_(std::move(weights)),
      options_(options),
      rng_(&rng) {}

SumClient::SumClient(const PaillierPrivateKey& key,
                     const SelectionVector& selection,
                     SumClientOptions options, RandomSource& rng)
    : SumClient(key, SelectionToWeights(selection), options, rng) {}

size_t SumClient::TotalChunks() const {
  if (weights_.empty()) return 0;
  size_t chunk = options_.chunk_size == 0 ? weights_.size()
                                          : options_.chunk_size;
  return (weights_.size() + chunk - 1) / chunk;
}

Result<Bytes> SumClient::NextRequest() {
  if (RequestsDone()) {
    return Status::FailedPrecondition("all request chunks already produced");
  }
  const size_t chunk = options_.chunk_size == 0 ? weights_.size()
                                                : options_.chunk_size;
  const size_t begin = next_index_;
  const size_t end = std::min(begin + chunk, weights_.size());

  IndexBatchMessage msg;
  msg.start_index = options_.index_offset + begin;
  msg.ciphertexts.reserve(end - begin);

  const PaillierPublicKey& pub = key_->public_key();
  double elapsed = 0;
  {
    obs::ScopedPhaseTimer timer(&elapsed, obs::kSpanClientEncrypt);
    for (size_t i = begin; i < end; ++i) {
      BigInt plaintext(weights_[i]);
      Result<PaillierCiphertext> ct =
          options_.encryption_pool != nullptr
              ? options_.encryption_pool->Take(plaintext, *rng_)
              : (options_.randomness_pool != nullptr
                     ? options_.randomness_pool->Encrypt(plaintext, *rng_)
                     : Paillier::Encrypt(pub, plaintext, *rng_));
      if (!ct.ok()) return ct.status();
      msg.ciphertexts.push_back(std::move(ct).ValueOrDie());
    }
  }
  encrypt_seconds_ += elapsed;
  chunk_encrypt_seconds_.push_back(elapsed);

  next_index_ = end;
  return msg.Encode(pub);
}

Result<BigInt> SumClient::HandleResponse(BytesView frame) {
  if (response_handled_) {
    return Status::FailedPrecondition(
        "response already handled; a SumClient runs one execution");
  }
  const PaillierPublicKey& pub = key_->public_key();
  PPSTATS_ASSIGN_OR_RETURN(SumResponseMessage msg,
                           SumResponseMessage::Decode(pub, frame));
  Result<BigInt> sum = [&] {
    obs::ScopedPhaseTimer timer(&decrypt_seconds_, obs::kSpanClientDecrypt);
    return Paillier::Decrypt(*key_, msg.sum);
  }();
  if (sum.ok()) response_handled_ = true;
  return sum;
}

SumServer::SumServer(PaillierPublicKey pub, const Database* db)
    : SumServer(std::move(pub), WholeColumnSum(db)) {}

SumServer::SumServer(PaillierPublicKey pub, const CompiledQuery& query,
                     size_t worker_threads)
    : pub_(std::move(pub)),
      engine_(pub_, std::make_unique<ColumnRowSource>(query.column),
              query.transform, query.begin, query.end, worker_threads),
      blinding_(query.blinding) {}

Result<std::optional<Bytes>> SumServer::HandleRequest(BytesView frame) {
  if (finished_) {
    return Status::FailedPrecondition("response already produced");
  }
  PPSTATS_ASSIGN_OR_RETURN(IndexBatchMessage msg,
                           IndexBatchMessage::Decode(pub_, frame));

  double elapsed = 0;
  {
    obs::ScopedPhaseTimer timer(&elapsed, obs::kSpanServerCompute);
    PPSTATS_RETURN_IF_ERROR(
        engine_.FoldChunk(msg.start_index, msg.ciphertexts));
  }
  compute_seconds_ += elapsed;
  chunk_compute_seconds_.push_back(elapsed);

  if (!engine_.done()) return std::optional<Bytes>();

  // All rows processed: the engine leaves Montgomery form (the only
  // conversion in the whole session), blinds if requested, and we
  // respond.
  obs::ScopedPhaseTimer finish_timer(&compute_seconds_,
                                     obs::kSpanServerCompute);
  PPSTATS_ASSIGN_OR_RETURN(PaillierCiphertext accumulator,
                           engine_.Finish(blinding_));
  finish_timer.Stop();
  finished_ = true;
  SumResponseMessage response;
  response.sum = accumulator;
  return std::optional<Bytes>(response.Encode(pub_));
}

}  // namespace ppstats
