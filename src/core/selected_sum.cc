#include "core/selected_sum.h"

#include <algorithm>

#include "bigint/modarith.h"
#include "common/thread_pool.h"

namespace ppstats {

namespace {

WeightVector SelectionToWeights(const SelectionVector& selection) {
  WeightVector weights(selection.size());
  for (size_t i = 0; i < selection.size(); ++i) {
    weights[i] = selection[i] ? 1 : 0;
  }
  return weights;
}

}  // namespace

SumClient::SumClient(const PaillierPrivateKey& key, WeightVector weights,
                     SumClientOptions options, RandomSource& rng)
    : key_(&key),
      weights_(std::move(weights)),
      options_(options),
      rng_(&rng) {}

SumClient::SumClient(const PaillierPrivateKey& key,
                     const SelectionVector& selection,
                     SumClientOptions options, RandomSource& rng)
    : SumClient(key, SelectionToWeights(selection), options, rng) {}

size_t SumClient::TotalChunks() const {
  if (weights_.empty()) return 0;
  size_t chunk = options_.chunk_size == 0 ? weights_.size()
                                          : options_.chunk_size;
  return (weights_.size() + chunk - 1) / chunk;
}

Result<Bytes> SumClient::NextRequest() {
  if (RequestsDone()) {
    return Status::FailedPrecondition("all request chunks already produced");
  }
  const size_t chunk = options_.chunk_size == 0 ? weights_.size()
                                                : options_.chunk_size;
  const size_t begin = next_index_;
  const size_t end = std::min(begin + chunk, weights_.size());

  IndexBatchMessage msg;
  msg.start_index = options_.index_offset + begin;
  msg.ciphertexts.reserve(end - begin);

  const PaillierPublicKey& pub = key_->public_key();
  Stopwatch timer;
  for (size_t i = begin; i < end; ++i) {
    BigInt plaintext(weights_[i]);
    Result<PaillierCiphertext> ct =
        options_.encryption_pool != nullptr
            ? options_.encryption_pool->Take(plaintext, *rng_)
            : (options_.randomness_pool != nullptr
                   ? options_.randomness_pool->Encrypt(plaintext, *rng_)
                   : Paillier::Encrypt(pub, plaintext, *rng_));
    if (!ct.ok()) return ct.status();
    msg.ciphertexts.push_back(std::move(ct).ValueOrDie());
  }
  double elapsed = timer.ElapsedSeconds();
  encrypt_seconds_ += elapsed;
  chunk_encrypt_seconds_.push_back(elapsed);

  next_index_ = end;
  return msg.Encode(pub);
}

Result<BigInt> SumClient::HandleResponse(BytesView frame) {
  const PaillierPublicKey& pub = key_->public_key();
  PPSTATS_ASSIGN_OR_RETURN(SumResponseMessage msg,
                           SumResponseMessage::Decode(pub, frame));
  Stopwatch timer;
  Result<BigInt> sum = Paillier::Decrypt(*key_, msg.sum);
  decrypt_seconds_ += timer.ElapsedSeconds();
  return sum;
}

SumServer::SumServer(PaillierPublicKey pub, const Database* db,
                     SumServerOptions options)
    : pub_(std::move(pub)),
      db_(db),
      options_(std::move(options)),
      accumulator_mont_(pub_.mont_n2().OneMontgomery()) {
  begin_ = 0;
  end_ = db_->size();
  if (options_.partition.has_value()) {
    begin_ = options_.partition->first;
    end_ = options_.partition->second;
  }
  next_expected_ = begin_;
}

Result<std::optional<Bytes>> SumServer::HandleRequest(BytesView frame) {
  if (finished_) {
    return Status::FailedPrecondition("response already produced");
  }
  if (options_.product_with != nullptr &&
      options_.product_with->size() != db_->size()) {
    return Status::InvalidArgument(
        "product column size != primary database size");
  }
  PPSTATS_ASSIGN_OR_RETURN(IndexBatchMessage msg,
                           IndexBatchMessage::Decode(pub_, frame));
  if (msg.start_index != next_expected_) {
    return Status::ProtocolError("out-of-order index chunk");
  }
  if (msg.start_index + msg.ciphertexts.size() > end_) {
    return Status::ProtocolError("index chunk overruns the database");
  }

  Stopwatch timer;
  const MontgomeryContext& mont = pub_.mont_n2();

  // One Pippenger multi-exponentiation per slice: gather the chunk's
  // nonzero (ciphertext, exponent) pairs, convert the bases to
  // Montgomery form once, and fold prod_i E(I_i)^{x_i} in one batched
  // kernel call. The partial stays in Montgomery form.
  auto fold_range = [this, &msg, &mont](size_t begin, size_t end) -> BigInt {
    std::vector<BigInt> bases;
    std::vector<BigInt> exponents;
    bases.reserve(end - begin);
    exponents.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const size_t row = msg.start_index + i;
      const uint64_t value = db_->value(row);
      // The per-row exponent is a BigInt product, so x_i^2 and x_i*y_i
      // never wrap a fixed-width integer regardless of column width.
      BigInt exponent(value);
      if (options_.square_values) {
        exponent = BigInt(value) * BigInt(value);
      } else if (options_.product_with != nullptr) {
        exponent = BigInt(value) * BigInt(options_.product_with->value(row));
      }
      if (exponent.IsZero()) continue;  // E(I)^0 == 1: no-op factor
      bases.push_back(mont.ToMontgomery(msg.ciphertexts[i].value));
      exponents.push_back(Mod(exponent, pub_.n()));
    }
    return mont.MultiExpMontgomery(bases, exponents);
  };

  const size_t count = msg.ciphertexts.size();
  const size_t threads =
      std::min(options_.worker_threads == 0 ? 1 : options_.worker_threads,
               count == 0 ? size_t{1} : count);
  if (threads <= 1) {
    accumulator_mont_ = mont.MulMontgomery(accumulator_mont_, fold_range(0, count));
  } else {
    std::vector<BigInt> partials(threads);
    const size_t stride = (count + threads - 1) / threads;
    ThreadPool::Shared().Run(threads, [&partials, &fold_range, stride,
                                       count](size_t t) {
      const size_t begin = std::min(t * stride, count);
      const size_t end = std::min(begin + stride, count);
      partials[t] = fold_range(begin, end);
    });
    for (const BigInt& partial : partials) {
      accumulator_mont_ = mont.MulMontgomery(accumulator_mont_, partial);
    }
  }
  double elapsed = timer.ElapsedSeconds();
  compute_seconds_ += elapsed;
  chunk_compute_seconds_.push_back(elapsed);

  next_expected_ = msg.start_index + msg.ciphertexts.size();
  if (next_expected_ < end_) return std::optional<Bytes>();

  // All rows processed: leave Montgomery form (the only conversion in
  // the whole session), blind if requested, and respond.
  Stopwatch finish_timer;
  PaillierCiphertext accumulator{mont.FromMontgomery(accumulator_mont_)};
  if (options_.blinding.has_value()) {
    PPSTATS_ASSIGN_OR_RETURN(
        accumulator,
        Paillier::AddPlaintext(pub_, accumulator, *options_.blinding));
  }
  compute_seconds_ += finish_timer.ElapsedSeconds();
  finished_ = true;
  SumResponseMessage response;
  response.sum = accumulator;
  return std::optional<Bytes>(response.Encode(pub_));
}

}  // namespace ppstats
