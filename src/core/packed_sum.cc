#include "core/packed_sum.h"

#include "bigint/modarith.h"
#include "common/stopwatch.h"
#include "core/fold_engine.h"

namespace ppstats {

size_t MinimumSForQueries(size_t modulus_bits, size_t num_queries,
                          size_t slot_bits) {
  size_t needed_bits = num_queries * slot_bits;
  // n^s provides s * modulus_bits - 1 usable bits (conservatively).
  size_t s = 1;
  while (s * modulus_bits - 1 < needed_bits) ++s;
  return s;
}

Result<PackedSumResult> RunPackedMultiSum(
    const DjPrivateKey& key, const Database& db,
    const std::vector<SelectionVector>& queries,
    const PackedSumConfig& config, RandomSource& rng) {
  const DjPublicKey& pub = key.public_key();
  const size_t num_queries = queries.size();
  if (num_queries == 0) {
    return Status::InvalidArgument("need at least one query");
  }
  if (db.empty()) {
    return Status::InvalidArgument("database is empty");
  }
  if (config.slot_bits == 0 || config.slot_bits > 62) {
    return Status::InvalidArgument("slot_bits must be in [1, 62]");
  }
  for (const SelectionVector& q : queries) {
    if (q.size() != db.size()) {
      return Status::InvalidArgument("query length != database size");
    }
  }
  if (BigInt(1) << (num_queries * config.slot_bits) >= pub.n_s()) {
    return Status::OutOfRange(
        "queries * slot_bits exceed the plaintext space; raise s");
  }

  PackedSumResult result;

  // --- Client: encrypt one packed indicator per row. -------------------
  Stopwatch client_timer;
  std::vector<DjCiphertext> encrypted_rows;
  encrypted_rows.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    BigInt packed(0);
    for (size_t b = num_queries; b-- > 0;) {
      packed <<= config.slot_bits;
      if (queries[b][i]) packed += BigInt(1);
    }
    PPSTATS_ASSIGN_OR_RETURN(DjCiphertext ct,
                             DamgardJurik::Encrypt(pub, packed, rng));
    encrypted_rows.push_back(std::move(ct));
  }
  result.client_encrypt_s = client_timer.ElapsedSeconds();
  result.client_to_server.Record(db.size() * pub.CiphertextBytes());

  // --- Server: the usual product with database exponents, through the
  // shared sliced fold kernel over the Damgård–Jurik modulus n^{s+1}. ---
  Stopwatch server_timer;
  const MontgomeryContext& mont = pub.mont();
  BigInt acc_mont = SlicedFoldMontgomery(
      mont, encrypted_rows.size(), /*worker_threads=*/1,
      [&mont, &encrypted_rows, &db, &pub](size_t begin, size_t end,
                                          std::vector<BigInt>* bases,
                                          std::vector<BigInt>* exps) {
        for (size_t i = begin; i < end; ++i) {
          BigInt weight(db.value(i));
          if (weight.IsZero()) continue;
          bases->push_back(mont.ToMontgomery(encrypted_rows[i].value));
          exps->push_back(Mod(weight, pub.n_s()));
        }
      });
  DjCiphertext acc{mont.FromMontgomery(acc_mont)};
  result.server_compute_s = server_timer.ElapsedSeconds();
  result.server_to_client.Record(pub.CiphertextBytes());

  // --- Client: decrypt once, unpack B sums. ----------------------------
  client_timer.Reset();
  PPSTATS_ASSIGN_OR_RETURN(BigInt packed_sums,
                           DamgardJurik::Decrypt(key, acc));
  result.sums.reserve(num_queries);
  BigInt rest = packed_sums;
  const BigInt slot_modulus = BigInt(1) << config.slot_bits;
  for (size_t b = 0; b < num_queries; ++b) {
    result.sums.push_back(rest % slot_modulus);
    rest >>= config.slot_bits;
  }
  result.client_decrypt_s = client_timer.ElapsedSeconds();
  return result;
}

}  // namespace ppstats
