#include "core/trivial_baselines.h"

#include "common/stopwatch.h"
#include "net/wire.h"

namespace ppstats {

double BaselineRunResult::TotalSeconds(const ExecutionEnvironment& env) const {
  return client_seconds * env.client_cpu_scale +
         server_seconds * env.server_cpu_scale +
         env.network.TransferSeconds(client_to_server) +
         env.network.TransferSeconds(server_to_client);
}

Result<BaselineRunResult> RunNonPrivateIndexSum(
    const Database& db, const SelectionVector& selection) {
  if (selection.size() != db.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  BaselineRunResult result;

  // Client: serialize the selected indices in the clear.
  Stopwatch client_timer;
  WireWriter request;
  uint32_t count = 0;
  for (size_t i = 0; i < selection.size(); ++i) {
    if (selection[i]) ++count;
  }
  request.WriteU32(count);
  for (size_t i = 0; i < selection.size(); ++i) {
    if (selection[i]) request.WriteU64(i);
  }
  Bytes request_bytes = request.Take();
  result.client_seconds += client_timer.ElapsedSeconds();
  result.client_to_server.Record(request_bytes.size());

  // Server: parse and sum.
  Stopwatch server_timer;
  WireReader reader(request_bytes);
  PPSTATS_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  uint64_t sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    PPSTATS_ASSIGN_OR_RETURN(uint64_t idx, reader.ReadU64());
    if (idx >= db.size()) {
      return Status::ProtocolError("index out of range");
    }
    sum += db.value(idx);
  }
  WireWriter response;
  response.WriteU64(sum);
  Bytes response_bytes = response.Take();
  result.server_seconds += server_timer.ElapsedSeconds();
  result.server_to_client.Record(response_bytes.size());

  // Client: read the sum.
  client_timer.Reset();
  WireReader response_reader(response_bytes);
  PPSTATS_ASSIGN_OR_RETURN(result.sum, response_reader.ReadU64());
  result.client_seconds += client_timer.ElapsedSeconds();
  return result;
}

Result<BaselineRunResult> RunFullTransferSum(const Database& db,
                                             const SelectionVector& selection) {
  if (selection.size() != db.size()) {
    return Status::InvalidArgument("selection length != database size");
  }
  BaselineRunResult result;

  // Client request: a one-byte "send everything".
  result.client_to_server.Record(1);

  // Server: serialize the whole table.
  Stopwatch server_timer;
  WireWriter response;
  response.WriteU32(static_cast<uint32_t>(db.size()));
  for (size_t i = 0; i < db.size(); ++i) {
    response.WriteU32(db.value(i));
  }
  Bytes response_bytes = response.Take();
  result.server_seconds += server_timer.ElapsedSeconds();
  result.server_to_client.Record(response_bytes.size());

  // Client: parse and sum the selected rows.
  Stopwatch client_timer;
  WireReader reader(response_bytes);
  PPSTATS_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  if (n != db.size()) {
    return Status::ProtocolError("row count mismatch");
  }
  uint64_t sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    PPSTATS_ASSIGN_OR_RETURN(uint32_t v, reader.ReadU32());
    if (selection[i]) sum += v;
  }
  result.sum = sum;
  result.client_seconds += client_timer.ElapsedSeconds();
  return result;
}

}  // namespace ppstats
