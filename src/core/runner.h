// Protocol runner: pumps frames between a SumClient and a SumServer,
// records byte-accurate traffic and per-component compute time, and maps
// them onto an ExecutionEnvironment to report the paper's metrics.
//
// The runner executes the real cryptographic protocol in-process; only
// the link is modeled (see net/network_model.h). Two schedules are
// reported:
//   * SequentialSeconds — the unoptimized protocol of Figures 2/3: the
//     client encrypts everything, then traffic moves, then the server
//     computes, then the response returns;
//   * PipelinedSeconds — the batched protocol of Figure 4: per-chunk
//     encrypt/transfer/compute stages overlap.

#ifndef PPSTATS_CORE_RUNNER_H_
#define PPSTATS_CORE_RUNNER_H_

#include "core/selected_sum.h"
#include "sim/environment.h"

namespace ppstats {

/// The paper's four runtime components, in seconds, under a given
/// execution environment.
struct ComponentBreakdown {
  double client_encrypt_s = 0;
  double server_compute_s = 0;
  double communication_s = 0;
  double client_decrypt_s = 0;

  double Total() const {
    return client_encrypt_s + server_compute_s + communication_s +
           client_decrypt_s;
  }
};

/// Raw measurements from one protocol run.
struct RunMetrics {
  // Measured compute time on this machine (unscaled).
  double client_encrypt_s = 0;
  double server_compute_s = 0;
  double client_decrypt_s = 0;

  // Byte-accurate traffic per direction.
  TrafficStats client_to_server;
  TrafficStats server_to_client;

  // Per-chunk detail for the pipeline schedule.
  std::vector<double> chunk_encrypt_s;
  std::vector<double> chunk_compute_s;
  std::vector<uint64_t> chunk_request_bytes;

  /// Link time for all traffic (both directions) under `model`.
  double CommunicationSeconds(const NetworkModel& model) const;

  /// Component breakdown under `env` (CPU scaling + link model).
  ComponentBreakdown Components(const ExecutionEnvironment& env) const;

  /// Total elapsed time without any overlap (unoptimized protocol).
  double SequentialSeconds(const ExecutionEnvironment& env) const;

  /// Total elapsed time with batching/pipeline parallelism (Sec 3.2):
  /// chunked encrypt/transfer/compute overlap, then the response returns
  /// and is decrypted.
  [[nodiscard]] Result<double> PipelinedSeconds(const ExecutionEnvironment& env) const;

  RunMetrics& Merge(const RunMetrics& other);
};

/// Result of a full protocol execution.
struct SumRunResult {
  BigInt sum;          ///< decrypted (possibly blinded) result
  RunMetrics metrics;
};

/// Drives `client` and `server` to completion.
[[nodiscard]] Result<SumRunResult> RunSelectedSum(SumClient& client, SumServer& server);

}  // namespace ppstats

#endif  // PPSTATS_CORE_RUNNER_H_
