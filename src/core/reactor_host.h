// ReactorEngine: the event-driven session engine behind
// ServiceHost::Start when ServiceHostOptions::engine == kReactor.
//
// Instead of one blocking thread per client, a fixed set of reactor
// threads (net/reactor.h) owns every fd non-blocking: the listeners and
// all session sockets. Every shard owns its own listener — TCP shards
// bind the same address with SO_REUSEPORT so the kernel load-balances
// connections across them; AF_UNIX shards share one listening file
// description via dup() — so a session is accepted on, and pinned to,
// the shard that will serve it, with no cross-shard handoff and no
// accept bottleneck on shard 0. Each session is driven as an explicit
// state machine:
//
//   accept ─▶ read bytes ─▶ parse length-prefixed frames ─▶ inbox
//     inbox ─▶ ThreadPool::Submit(fsm.OnFrame)   (CPU work off-loop)
//     completion ─▶ Reactor::Post ─▶ append reply frames ─▶ flush
//
// At most one worker task runs per session at a time (frames queue in
// the session's inbox), so the ServerProtocolFsm never sees concurrent
// calls; the reactor thread owns all other session state. Folds land on
// the shared work-stealing ThreadPool, so CPU parallelism stays bounded
// no matter how many clients are connected — the property that lets one
// host hold thousands of idle or slow sessions with a flat thread
// count.
//
// Parity with the threaded engine (core/service_host.cc) is a hard
// requirement — same Error frames, same counters, same eviction and
// rejection behavior:
//  * io_deadline_ms is a whole-frame deadline. The read timer arms when
//    the host starts waiting for a frame and is cancelled only by a
//    complete frame, so a client trickling single bytes (Slowloris)
//    is still evicted. Stalled writes are bounded the same way.
//  * Over-capacity connects get the ResourceExhausted Error frame after
//    a best-effort hello drain, then the socket closes.
//  * Session outcomes map onto the same host.* counters, and queries
//    are counted before their response frame reaches the wire.
//  * options.fault_injection applies the same per-send fault plan
//    (FrameFaultPlanner) in the same RNG draw order, so chaos seeds
//    reproduce identical fault sequences under either engine.

#ifndef PPSTATS_CORE_REACTOR_HOST_H_
#define PPSTATS_CORE_REACTOR_HOST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/service_host.h"
#include "core/session_fsm.h"
#include "net/reactor.h"
#include "net/socket_channel.h"
#include "obs/metrics.h"

namespace ppstats {

/// See the file comment. Owned by ServiceHost; one engine per Start().
class ReactorEngine {
 public:
  /// The owning host's registry-backed counters; the engine bumps the
  /// same instruments the threaded engine does, so SnapshotStats() is
  /// engine-agnostic.
  struct HostCounters {
    obs::Counter* accepted = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* queries = nullptr;
    obs::Counter* compute_ns = nullptr;
    obs::Gauge* active = nullptr;
  };

  /// All pointers must outlive the engine. `default_column` is the
  /// host's resolved default (may be null).
  ReactorEngine(const ColumnRegistry* registry, const Database* default_column,
                const ServiceHostOptions& options, HostCounters counters,
                PublicKeyCache* key_cache,
                obs::MetricRegistry* metric_registry);
  ~ReactorEngine();

  ReactorEngine(const ReactorEngine&) = delete;
  ReactorEngine& operator=(const ReactorEngine&) = delete;

  /// Binds one listener per shard on `endpoint` (unix or tcp) and
  /// starts the reactor threads.
  [[nodiscard]] Status Start(const Endpoint& endpoint);

  /// The resolved bind address (ephemeral TCP ports filled in). Valid
  /// after a successful Start() until the next Start().
  const Endpoint& endpoint() const { return endpoint_; }

  /// Stops accepting, waits for in-flight sessions to drain (bounded by
  /// io_deadline_ms when set, exactly like the threaded engine), then
  /// stops and joins every reactor thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Sessions currently being served (rejected connects excluded).
  size_t active_sessions() const {
    return serving_count_.load(std::memory_order_acquire);
  }

 private:
  struct SessionState;  // defined in the .cc; reactor-thread-owned

  /// One reactor thread plus its listener and the sessions pinned to it
  /// (keyed by fd). Everything but `reactor` and `thread` is touched
  /// only on the shard's reactor thread (or before the threads start).
  struct Shard {
    std::unique_ptr<Reactor> reactor;
    std::thread thread;
    std::unordered_map<int, std::shared_ptr<SessionState>> sessions;
    std::optional<SocketListener> listener;
    bool listener_registered = false;
    uint32_t accept_backoff_ms = 1;
    obs::Counter* accepts = nullptr;  ///< net.accepts.<shard>
  };

  // Accept path (each shard's own reactor thread only).
  void AcceptPass(size_t shard);
  void RemoveListener(size_t shard);
  void OpenSession(size_t shard, int fd, bool reject);

  // Session path (the owning shard's reactor thread only).
  void RegisterSession(size_t shard, std::shared_ptr<SessionState> session);
  void OnSessionEvent(size_t shard, const std::shared_ptr<SessionState>& s,
                      uint32_t ready);
  void ReadPass(size_t shard, const std::shared_ptr<SessionState>& s);
  void ParseFrames(size_t shard, const std::shared_ptr<SessionState>& s);
  void OnFrameParsed(size_t shard, const std::shared_ptr<SessionState>& s,
                     Bytes frame);
  void PumpProcessing(size_t shard, const std::shared_ptr<SessionState>& s);
  void HandleFsmOutput(size_t shard, const std::shared_ptr<SessionState>& s,
                       ServerFsmOutput out);
  void AppendOutbound(const std::shared_ptr<SessionState>& s, BytesView payload,
                      bool faultable);
  void Flush(size_t shard, const std::shared_ptr<SessionState>& s);
  void ArmReadTimer(size_t shard, const std::shared_ptr<SessionState>& s);
  void ArmWriteTimer(size_t shard, const std::shared_ptr<SessionState>& s);
  void ArmFlushDeadline(size_t shard, const std::shared_ptr<SessionState>& s);
  void CancelSessionTimer(size_t shard, uint64_t& id);
  void SetWriteInterest(size_t shard, const std::shared_ptr<SessionState>& s,
                        bool enable);
  void BeginReject(size_t shard, const std::shared_ptr<SessionState>& s);
  void BeginClose(size_t shard, const std::shared_ptr<SessionState>& s);
  void OnReadDeadline(size_t shard, const std::shared_ptr<SessionState>& s);
  void HandleReadFailure(size_t shard, const std::shared_ptr<SessionState>& s,
                         Status error);
  void HandleSendFailure(size_t shard, const std::shared_ptr<SessionState>& s,
                         Status error);
  void FinalizeSession(size_t shard, const std::shared_ptr<SessionState>& s);

  const ColumnRegistry* registry_;
  const Database* default_column_;
  ServiceHostOptions options_;
  HostCounters counters_;
  PublicKeyCache* key_cache_;
  obs::MetricRegistry* metric_registry_;

  std::vector<Shard> shards_;
  Endpoint endpoint_;  ///< resolved bind address (set by Start)
  // Session ids count accepted sessions across all shards; atomic
  // because every shard's reactor thread assigns ids during accept.
  std::atomic<uint64_t> next_session_id_{0};
  obs::Counter* writev_calls_ = nullptr;   ///< net.writev_calls
  obs::Counter* writev_frames_ = nullptr;  ///< net.writev_frames

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> serving_count_{0};

  // Stop() blocks here until every session (serving and rejecting) has
  // been finalized by its reactor thread.
  mutable Mutex drain_mu_;
  size_t live_sessions_ PPSTATS_GUARDED_BY(drain_mu_) = 0;
  CondVar drain_cv_;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_REACTOR_HOST_H_
