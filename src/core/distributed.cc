#include "core/distributed.h"

#include <algorithm>

#include "bigint/modarith.h"

namespace ppstats {

double DistributedRunResult::ParallelSeconds(
    const ExecutionEnvironment& env) const {
  // The single client must encrypt every partition's index vector
  // itself; server computation and transfers overlap across servers.
  double client = 0;
  double slowest_server = 0;
  for (const RunMetrics& m : server_metrics) {
    client += (m.client_encrypt_s + m.client_decrypt_s) * env.client_cpu_scale;
    double server_side = m.server_compute_s * env.server_cpu_scale +
                         m.CommunicationSeconds(env.network);
    slowest_server = std::max(slowest_server, server_side);
  }
  return client + slowest_server;
}

double DistributedRunResult::SequentialSeconds(
    const ExecutionEnvironment& env) const {
  double total = 0;
  for (const RunMetrics& m : server_metrics) {
    total += m.SequentialSeconds(env);
  }
  return total;
}

Result<DistributedRunResult> RunDistributedSum(
    const PaillierPrivateKey& key, const std::vector<const Database*>& servers,
    const SelectionVector& selection, const DistributedConfig& config,
    RandomSource& rng) {
  if (servers.empty()) {
    return Status::InvalidArgument("need at least one server");
  }
  size_t total_rows = 0;
  for (const Database* db : servers) {
    if (db == nullptr) return Status::InvalidArgument("null server database");
    if (db->empty()) {
      return Status::InvalidArgument("server partitions must be non-empty");
    }
    total_rows += db->size();
  }
  if (selection.size() != total_rows) {
    return Status::InvalidArgument(
        "selection length != total size of all partitions");
  }
  const BigInt& m_mod = config.blind_modulus;
  if (config.blind_partials) {
    if (m_mod < BigInt(2)) {
      return Status::InvalidArgument("blinding modulus must be >= 2");
    }
    if ((m_mod << 1) > key.public_key().n()) {
      return Status::InvalidArgument(
          "blinding modulus too large for the key: need 2M <= n");
    }
  }

  // Servers agree on blinding shares summing to zero mod M.
  std::vector<BigInt> blindings(servers.size(), BigInt(0));
  if (config.blind_partials && servers.size() > 1) {
    BigInt sum(0);
    for (size_t i = 0; i + 1 < servers.size(); ++i) {
      blindings[i] = RandomBelow(rng, m_mod);
      sum = AddMod(sum, blindings[i], m_mod);
    }
    blindings.back() = SubMod(BigInt(0), sum, m_mod);
  }

  DistributedRunResult result;
  result.server_metrics.reserve(servers.size());
  BigInt total(0);
  size_t offset = 0;
  for (size_t i = 0; i < servers.size(); ++i) {
    const Database* db = servers[i];
    WeightVector weights(db->size());
    for (size_t j = 0; j < db->size(); ++j) {
      weights[j] = selection[offset + j] ? 1 : 0;
    }

    SumClientOptions client_options;
    client_options.chunk_size = config.chunk_size;
    SumClient client(key, std::move(weights), client_options, rng);

    QuerySpec spec;
    if (config.blind_partials) spec.blinding = blindings[i];
    PPSTATS_ASSIGN_OR_RETURN(CompiledQuery query, CompileQuery(spec, db));
    SumServer server(key.public_key(), query);

    PPSTATS_ASSIGN_OR_RETURN(SumRunResult run,
                             RunSelectedSum(client, server));
    total += run.sum;
    result.server_metrics.push_back(std::move(run.metrics));
    offset += db->size();
  }
  result.total = config.blind_partials ? Mod(total, m_mod) : total;
  return result;
}

}  // namespace ppstats
