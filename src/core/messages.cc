#include "core/messages.h"

namespace ppstats {

namespace {

Status ExpectType(WireReader& reader, MessageType expected) {
  PPSTATS_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  if (tag != static_cast<uint8_t>(expected)) {
    return Status::ProtocolError("unexpected message type");
  }
  return Status::OK();
}

}  // namespace

Result<MessageType> PeekMessageType(BytesView frame) {
  if (frame.empty()) {
    return Status::SerializationError("empty frame");
  }
  uint8_t tag = frame[0];
  if (tag < static_cast<uint8_t>(MessageType::kIndexBatch) ||
      tag > static_cast<uint8_t>(MessageType::kPartialResult)) {
    return Status::ProtocolError("unknown message type tag");
  }
  return static_cast<MessageType>(tag);
}

Bytes IndexBatchMessage::Encode(const PaillierPublicKey& pub) const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kIndexBatch));
  w.WriteU64(start_index);
  w.WriteU32(static_cast<uint32_t>(ciphertexts.size()));
  for (const PaillierCiphertext& ct : ciphertexts) {
    // Ciphertexts are < n^2 by construction; fixed width cannot fail.
    w.WriteFixedBigInt(ct.value, pub.CiphertextBytes()).IgnoreError();
  }
  return w.Take();
}

Result<IndexBatchMessage> IndexBatchMessage::Decode(
    const PaillierPublicKey& pub, BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kIndexBatch));
  IndexBatchMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.start_index, r.ReadU64());
  PPSTATS_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  // Validate the claimed count against the actual payload before
  // allocating anything: a hostile count must not drive allocation.
  if (static_cast<uint64_t>(count) * pub.CiphertextBytes() != r.remaining()) {
    return Status::SerializationError("ciphertext count/payload mismatch");
  }
  msg.ciphertexts.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PPSTATS_ASSIGN_OR_RETURN(BigInt v,
                             r.ReadFixedBigInt(pub.CiphertextBytes()));
    if (v >= pub.n_squared()) {
      return Status::ProtocolError("index ciphertext >= n^2");
    }
    msg.ciphertexts.push_back(PaillierCiphertext{std::move(v)});
  }
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes SumResponseMessage::Encode(const PaillierPublicKey& pub) const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kSumResponse));
  // Ciphertexts are < n^2 by construction; fixed width cannot fail.
  w.WriteFixedBigInt(sum.value, pub.CiphertextBytes()).IgnoreError();
  return w.Take();
}

Result<SumResponseMessage> SumResponseMessage::Decode(
    const PaillierPublicKey& pub, BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kSumResponse));
  SumResponseMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.sum.value,
                           r.ReadFixedBigInt(pub.CiphertextBytes()));
  if (msg.sum.value >= pub.n_squared()) {
    return Status::ProtocolError("sum ciphertext >= n^2");
  }
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes RingPartialMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kRingPartial));
  w.WriteBigInt(running_sum);
  return w.Take();
}

Result<RingPartialMessage> RingPartialMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kRingPartial));
  RingPartialMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.running_sum, r.ReadBigInt());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes ClientHelloMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kClientHello));
  w.WriteU32(protocol_version);
  w.WriteBytes(public_key_blob);
  return w.Take();
}

Result<ClientHelloMessage> ClientHelloMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kClientHello));
  ClientHelloMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version > 0xFFFF) {
    return Status::ProtocolError("implausible protocol version");
  }
  msg.protocol_version = static_cast<uint16_t>(version);
  PPSTATS_ASSIGN_OR_RETURN(msg.public_key_blob, r.ReadBytes());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes ServerHelloMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kServerHello));
  w.WriteU32(protocol_version);
  w.WriteU64(database_size);
  return w.Take();
}

Result<ServerHelloMessage> ServerHelloMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kServerHello));
  ServerHelloMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version > 0xFFFF) {
    return Status::ProtocolError("implausible protocol version");
  }
  msg.protocol_version = static_cast<uint16_t>(version);
  PPSTATS_ASSIGN_OR_RETURN(msg.database_size, r.ReadU64());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes ErrorMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kError));
  w.WriteU8(code);
  w.WriteBytes(BytesView(reinterpret_cast<const uint8_t*>(reason.data()),
                         reason.size()));
  return w.Take();
}

Result<ErrorMessage> ErrorMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kError));
  ErrorMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.code, r.ReadU8());
  PPSTATS_ASSIGN_OR_RETURN(Bytes reason_bytes, r.ReadBytes());
  msg.reason.assign(reason_bytes.begin(), reason_bytes.end());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes EncodeErrorFrame(const Status& status) {
  ErrorMessage msg;
  msg.code = static_cast<uint8_t>(status.code());
  msg.reason = status.message();
  return msg.Encode();
}

Status StatusFromErrorFrame(BytesView frame) {
  Result<ErrorMessage> msg = ErrorMessage::Decode(frame);
  if (!msg.ok()) return Status::ProtocolError("undecodable error frame");
  return Status(static_cast<StatusCode>(msg->code),
                "peer aborted: " + msg->reason);
}

namespace {

// QueryHeader extension flag bits. The extension block is only encoded
// when a flag is set, so frames from old encoders (no block) and new
// encoders (no blinding requested) stay byte-identical.
constexpr uint8_t kQueryHeaderBlindPartial = 0x01;

}  // namespace

Bytes QueryHeaderMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kQueryHeader));
  w.WriteU8(kind);
  w.WriteBytes(BytesView(reinterpret_cast<const uint8_t*>(column.data()),
                         column.size()));
  w.WriteBytes(BytesView(reinterpret_cast<const uint8_t*>(column2.data()),
                         column2.size()));
  if (blind_partial) {
    w.WriteU8(kQueryHeaderBlindPartial);
    w.WriteU64(blind_nonce);
  }
  return w.Take();
}

Result<QueryHeaderMessage> QueryHeaderMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kQueryHeader));
  QueryHeaderMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.kind, r.ReadU8());
  PPSTATS_ASSIGN_OR_RETURN(Bytes column, r.ReadBytes());
  msg.column.assign(column.begin(), column.end());
  PPSTATS_ASSIGN_OR_RETURN(Bytes column2, r.ReadBytes());
  msg.column2.assign(column2.begin(), column2.end());
  if (r.remaining() > 0) {
    PPSTATS_ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
    if (flags != kQueryHeaderBlindPartial) {
      return Status::ProtocolError("unknown query header extension flags");
    }
    msg.blind_partial = true;
    PPSTATS_ASSIGN_OR_RETURN(msg.blind_nonce, r.ReadU64());
  }
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes QueryAcceptMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kQueryAccept));
  w.WriteU64(rows);
  return w.Take();
}

Result<QueryAcceptMessage> QueryAcceptMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kQueryAccept));
  QueryAcceptMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.rows, r.ReadU64());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes GoodbyeMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kGoodbye));
  return w.Take();
}

Result<GoodbyeMessage> GoodbyeMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kGoodbye));
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return GoodbyeMessage{};
}

Bytes PartialResultMessage::Encode(const PaillierPublicKey& pub) const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kPartialResult));
  // Ciphertexts are < n^2 by construction; fixed width cannot fail.
  w.WriteFixedBigInt(sum.value, pub.CiphertextBytes()).IgnoreError();
  w.WriteU64(shards_total);
  w.WriteU64(shards_responded);
  w.WriteU64(rows_covered);
  return w.Take();
}

Result<PartialResultMessage> PartialResultMessage::Decode(
    const PaillierPublicKey& pub, BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kPartialResult));
  PartialResultMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.sum.value,
                           r.ReadFixedBigInt(pub.CiphertextBytes()));
  if (msg.sum.value >= pub.n_squared()) {
    return Status::ProtocolError("sum ciphertext >= n^2");
  }
  PPSTATS_ASSIGN_OR_RETURN(msg.shards_total, r.ReadU64());
  PPSTATS_ASSIGN_OR_RETURN(msg.shards_responded, r.ReadU64());
  PPSTATS_ASSIGN_OR_RETURN(msg.rows_covered, r.ReadU64());
  if (msg.shards_responded == 0 || msg.shards_responded > msg.shards_total) {
    return Status::ProtocolError("implausible partial-result shard counts");
  }
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Bytes RingBroadcastMessage::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kRingBroadcast));
  w.WriteBigInt(total);
  return w.Take();
}

Result<RingBroadcastMessage> RingBroadcastMessage::Decode(BytesView frame) {
  WireReader r(frame);
  PPSTATS_RETURN_IF_ERROR(ExpectType(r, MessageType::kRingBroadcast));
  RingBroadcastMessage msg;
  PPSTATS_ASSIGN_OR_RETURN(msg.total, r.ReadBigInt());
  PPSTATS_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

}  // namespace ppstats
