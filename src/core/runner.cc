#include "core/runner.h"

#include "obs/metrics.h"
#include "sim/pipeline.h"

namespace ppstats {

double RunMetrics::CommunicationSeconds(const NetworkModel& model) const {
  return model.TransferSeconds(client_to_server) +
         model.TransferSeconds(server_to_client);
}

ComponentBreakdown RunMetrics::Components(
    const ExecutionEnvironment& env) const {
  return ComponentBreakdown{
      .client_encrypt_s = client_encrypt_s * env.client_cpu_scale,
      .server_compute_s = server_compute_s * env.server_cpu_scale,
      .communication_s = CommunicationSeconds(env.network),
      .client_decrypt_s = client_decrypt_s * env.client_cpu_scale,
  };
}

double RunMetrics::SequentialSeconds(const ExecutionEnvironment& env) const {
  return Components(env).Total();
}

Result<double> RunMetrics::PipelinedSeconds(
    const ExecutionEnvironment& env) const {
  if (chunk_encrypt_s.size() != chunk_request_bytes.size() ||
      chunk_compute_s.size() != chunk_encrypt_s.size()) {
    return Status::Internal("per-chunk metric vectors are inconsistent");
  }
  std::vector<std::vector<double>> stages(3);
  stages[0].reserve(chunk_encrypt_s.size());
  stages[1].reserve(chunk_encrypt_s.size());
  stages[2].reserve(chunk_encrypt_s.size());
  for (size_t i = 0; i < chunk_encrypt_s.size(); ++i) {
    stages[0].push_back(chunk_encrypt_s[i] * env.client_cpu_scale);
    // A chunk's transfer stage occupies the link for its serialization
    // time; the stream pays the propagation latency once, below.
    stages[1].push_back(
        env.network.SerializationSeconds(chunk_request_bytes[i], 1));
    stages[2].push_back(chunk_compute_s[i] * env.server_cpu_scale);
  }
  PPSTATS_ASSIGN_OR_RETURN(double makespan, PipelineSchedule::Makespan(stages));
  // One pipeline-fill latency, then the response returns and is decrypted.
  return makespan + env.network.one_way_latency_s +
         env.network.TransferSeconds(server_to_client) +
         client_decrypt_s * env.client_cpu_scale;
}

RunMetrics& RunMetrics::Merge(const RunMetrics& other) {
  client_encrypt_s += other.client_encrypt_s;
  server_compute_s += other.server_compute_s;
  client_decrypt_s += other.client_decrypt_s;
  client_to_server += other.client_to_server;
  server_to_client += other.server_to_client;
  chunk_encrypt_s.insert(chunk_encrypt_s.end(), other.chunk_encrypt_s.begin(),
                         other.chunk_encrypt_s.end());
  chunk_compute_s.insert(chunk_compute_s.end(), other.chunk_compute_s.begin(),
                         other.chunk_compute_s.end());
  chunk_request_bytes.insert(chunk_request_bytes.end(),
                             other.chunk_request_bytes.begin(),
                             other.chunk_request_bytes.end());
  return *this;
}

Result<SumRunResult> RunSelectedSum(SumClient& client, SumServer& server) {
  if (client.RequestsDone()) {
    return Status::InvalidArgument("client has an empty index vector");
  }
  SumRunResult result;
  std::optional<Bytes> response;

  while (!client.RequestsDone()) {
    PPSTATS_ASSIGN_OR_RETURN(Bytes request, client.NextRequest());
    result.metrics.client_to_server.Record(request.size());
    result.metrics.chunk_request_bytes.push_back(request.size());
    PPSTATS_ASSIGN_OR_RETURN(response, server.HandleRequest(request));
    if (response.has_value() && !client.RequestsDone()) {
      return Status::ProtocolError("server responded before the last chunk");
    }
  }
  if (!response.has_value()) {
    return Status::ProtocolError("server produced no response");
  }
  result.metrics.server_to_client.Record(response->size());
  PPSTATS_ASSIGN_OR_RETURN(result.sum, client.HandleResponse(*response));

  result.metrics.client_encrypt_s = client.encrypt_seconds();
  result.metrics.server_compute_s = server.compute_seconds();
  result.metrics.client_decrypt_s = client.decrypt_seconds();
  result.metrics.chunk_encrypt_s = client.chunk_encrypt_seconds();
  result.metrics.chunk_compute_s = server.chunk_compute_seconds();

  // The RunMetrics struct stays the deterministic snapshot the figures
  // consume; the registry gets the same run in aggregate counters (the
  // component spans were already recorded inside SumClient/SumServer).
  static obs::Counter* const runs =
      obs::MetricRegistry::Global().GetCounter("run.queries");
  static obs::Counter* const bytes_up =
      obs::MetricRegistry::Global().GetCounter("run.bytes_to_server");
  static obs::Counter* const bytes_down =
      obs::MetricRegistry::Global().GetCounter("run.bytes_to_client");
  runs->Increment();
  bytes_up->Add(result.metrics.client_to_server.bytes);
  bytes_down->Add(result.metrics.server_to_client.bytes);
  return result;
}

}  // namespace ppstats
