// Session layer: a deployable client/server wrapper around the
// selected-sum protocol with a real handshake.
//
// The measured experiments assume the server already knows the client's
// public key (as the paper does). A deployment needs the exchange:
//
//   C -> S : ClientHello { version, public key }
//   S -> C : ServerHello { version, database size }   (or Error)
//   C -> S : IndexBatch*                              (or Error)
//   S -> C : SumResponse                              (or Error)
//
// Version mismatches, malformed frames, and arity mismatches abort the
// session with an Error frame carrying a status code, so the peer gets a
// diagnosable failure instead of a hang.

#ifndef PPSTATS_CORE_SESSION_H_
#define PPSTATS_CORE_SESSION_H_

#include "core/selected_sum.h"
#include "net/channel.h"

namespace ppstats {

/// Version of the session protocol spoken by this library.
inline constexpr uint16_t kSessionProtocolVersion = 1;

/// Client-side session options.
struct ClientSessionOptions {
  size_t chunk_size = 0;  ///< index-batch chunking, as in SumClientOptions
};

/// One private-sum query over a channel, with handshake.
class ClientSession {
 public:
  /// The selection length must match the server's database size (checked
  /// against the ServerHello).
  ClientSession(const PaillierPrivateKey& key, SelectionVector selection,
                ClientSessionOptions options, RandomSource& rng);

  /// Runs the full session; blocks on the channel. Returns the decrypted
  /// sum, or the peer's error translated into a Status.
  Result<BigInt> Run(Channel& channel);

 private:
  const PaillierPrivateKey* key_;
  SelectionVector selection_;
  ClientSessionOptions options_;
  RandomSource* rng_;
};

/// Serves private-sum queries from one database.
class ServerSession {
 public:
  explicit ServerSession(const Database* db) : db_(db) {}

  /// Handles exactly one client session on the channel. Protocol
  /// failures are reported to the peer (Error frame) and returned.
  Status Serve(Channel& channel);

 private:
  const Database* db_;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_SESSION_H_
