// Session layer: a deployable client/server wrapper around the
// selected-sum protocol with a real handshake.
//
// The measured experiments assume the server already knows the client's
// public key (as the paper does). A deployment needs the exchange:
//
//   C -> S : ClientHello { max version, public key }
//   S -> C : ServerHello { negotiated version, default db size }  (or Error)
//
// Version negotiation: the client advertises the version it wants to
// speak; the server accepts any version it implements (up to
// kSessionProtocolVersion), echoes it back, and both sides continue at
// that version. Unknown versions are rejected with an Error frame, so
// v1 clients keep working against v2 servers unchanged.
//
// v1 (one query per connection):
//   C -> S : IndexBatch*                                          (or Error)
//   S -> C : SumResponse                                          (or Error)
//
// v2 (N queries per connection, named columns):
//   repeat:
//     C -> S : QueryHeader { kind, column, column2 }              (or Error)
//     S -> C : QueryAccept { rows }                               (or Error)
//     C -> S : IndexBatch*
//     S -> C : SumResponse
//   C -> S : Goodbye
//
// Version mismatches, malformed frames, unknown statistic kinds, bad
// column names, and arity mismatches abort the session with an Error
// frame carrying a status code, so the peer gets a diagnosable failure
// instead of a hang.

#ifndef PPSTATS_CORE_SESSION_H_
#define PPSTATS_CORE_SESSION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/query.h"
#include "core/query_exec.h"
#include "core/selected_sum.h"
#include "crypto/key_io.h"
#include "net/channel.h"
#include "net/retry.h"

namespace ppstats {

/// Protocol versions. A server speaks every version up to
/// kSessionProtocolVersion; clients pick what they advertise.
inline constexpr uint16_t kSessionProtocolV1 = 1;
inline constexpr uint16_t kSessionProtocolV2 = 2;

/// Highest version of the session protocol spoken by this library.
inline constexpr uint16_t kSessionProtocolVersion = kSessionProtocolV2;

/// Client-side session options.
struct ClientSessionOptions {
  size_t chunk_size = 0;  ///< index-batch chunking, as in SumClientOptions

  /// Accept flagged PartialResult frames (a cluster coordinator may
  /// answer with one when shards are down and its policy allows
  /// serving the responsive subset). Off by default: without opt-in a
  /// partial answer fails the query instead of silently passing for a
  /// complete one. See QuerySession::last_partial().
  bool accept_partial = false;

  /// When set, decrypted results are reduced mod this value. Blinded
  /// cluster deployments need it: shard zero-shares only cancel mod M,
  /// so the raw plaintext is total + kM for some 0 <= k < #shards.
  std::optional<BigInt> result_modulus;
};

/// Shard coverage of the last partial result a session accepted.
struct PartialResultInfo {
  uint64_t shards_total = 0;
  uint64_t shards_responded = 0;
  uint64_t rows_covered = 0;
};

/// Dials a fresh channel to the server, once per connection attempt
/// (e.g. a ConnectUnixSocket lambda). Used by the retrying entry points,
/// which must be able to redial after a dead transport.
using ChannelFactory =
    std::function<Result<std::unique_ptr<Channel>>()>;

/// One private-sum query over a channel, with handshake (a v1 client).
class ClientSession {
 public:
  /// The selection length must match the server's database size (checked
  /// against the ServerHello).
  ClientSession(const PaillierPrivateKey& key, SelectionVector selection,
                ClientSessionOptions options, RandomSource& rng);

  /// Runs the full session; blocks on the channel. Returns the decrypted
  /// sum, or the peer's error translated into a Status. A ClientSession
  /// is single-shot: a second Run fails with FailedPrecondition.
  [[nodiscard]] Result<BigInt> Run(Channel& channel);

  /// Like Run, but dials its own channel via `dial` and retries the
  /// whole session (fresh channel each attempt, backoff + jitter drawn
  /// from the session rng) on retryable failures — see
  /// IsRetryableStatus. Safe because a v1 query is a pure read: the
  /// server keeps no cross-session state, so replaying it is
  /// idempotent. Still single-shot overall.
  [[nodiscard]] Result<BigInt> RunWithRetry(const ChannelFactory& dial,
                                            const RetryOptions& retry);

  /// RunWithRetry against an endpoint URI ("unix:/path",
  /// "tcp:host:port", or a bare socket path), dialing a fresh channel
  /// per attempt with the given per-call I/O deadline and per-attempt
  /// connect deadline (0 = none; see UriDialer).
  [[nodiscard]] Result<BigInt> RunWithRetry(const std::string& uri,
                                            const RetryOptions& retry,
                                            uint32_t io_deadline_ms = 0,
                                            uint32_t connect_deadline_ms = 0);

  /// Per-attempt counters for the last RunWithRetry.
  const RetryMetrics& retry_metrics() const { return retry_metrics_; }

 private:
  [[nodiscard]] Result<BigInt> RunOnce(Channel& channel);

  const PaillierPrivateKey* key_;
  SelectionVector selection_;
  ClientSessionOptions options_;
  RandomSource* rng_;
  RetryMetrics retry_metrics_;
  bool ran_ = false;
};

/// A v2 client session: one connection, N queries against named columns.
/// Falls back to v1 semantics (single plain-sum query on the server's
/// default column) when the server negotiates down.
class QuerySession {
 public:
  QuerySession(const PaillierPrivateKey& key, RandomSource& rng,
               ClientSessionOptions options = {});

  /// Performs the hello exchange on `channel`, which must outlive the
  /// session. Single-shot.
  [[nodiscard]] Status Connect(Channel& channel);

  /// Dials via `dial` and performs the hello exchange, retrying with
  /// exponential backoff + jitter on retryable failures (dead transport,
  /// over-capacity rejection — see IsRetryableStatus). The hello
  /// exchange commits no server state, so redialing it is always safe.
  /// On success the session owns the dialed channel.
  [[nodiscard]] Status ConnectWithRetry(const ChannelFactory& dial,
                                        const RetryOptions& retry);

  /// ConnectWithRetry against an endpoint URI ("unix:/path",
  /// "tcp:host:port", or a bare socket path), dialing a fresh channel
  /// per attempt with the given per-call I/O deadline and per-attempt
  /// connect deadline (0 = none; see UriDialer).
  [[nodiscard]] Status ConnectWithRetry(const std::string& uri,
                                        const RetryOptions& retry,
                                        uint32_t io_deadline_ms = 0,
                                        uint32_t connect_deadline_ms = 0);

  /// Per-attempt counters for the last ConnectWithRetry.
  const RetryMetrics& retry_metrics() const { return retry_metrics_; }

  /// Version agreed with the server (valid after Connect).
  uint16_t negotiated_version() const { return version_; }

  /// Size of the server's default column, from the ServerHello (0 when
  /// the server has none).
  uint64_t server_rows() const { return server_rows_; }

  /// Runs one query; the selection/weights length must match the target
  /// column's size (the server announces it via QueryAccept). On a v1
  /// server only a single plain-sum query over the default column is
  /// possible; anything else fails with FailedPrecondition.
  [[nodiscard]] Result<BigInt> RunQuery(const QuerySpec& spec,
                                        const SelectionVector& selection);
  [[nodiscard]] Result<BigInt> RunWeighted(const QuerySpec& spec, WeightVector weights);

  /// Ends the session cleanly (v2: sends Goodbye). No queries may follow.
  [[nodiscard]] Status Finish();

  /// Coverage of the last query's answer when it was a flagged partial
  /// result (requires ClientSessionOptions::accept_partial); empty when
  /// the last answer was complete.
  const std::optional<PartialResultInfo>& last_partial() const {
    return last_partial_;
  }

 private:
  const PaillierPrivateKey* key_;
  RandomSource* rng_;
  ClientSessionOptions options_;
  std::unique_ptr<Channel> owned_channel_;  // set by ConnectWithRetry
  Channel* channel_ = nullptr;
  RetryMetrics retry_metrics_;
  std::optional<PartialResultInfo> last_partial_;
  uint16_t version_ = 0;
  uint64_t server_rows_ = 0;
  size_t queries_run_ = 0;
  bool finished_ = false;
};

/// Per-session counters reported by ServerSession::metrics().
struct SessionMetrics {
  uint16_t negotiated_version = 0;
  uint64_t queries = 0;          ///< queries answered with a SumResponse
  double server_compute_s = 0;   ///< homomorphic fold time, all queries
};

/// Server-side session options.
struct ServerSessionOptions {
  /// Column served to v1 clients and to v2 queries with an empty column
  /// name. May be null when every query names its column.
  const Database* default_column = nullptr;

  /// Fold slices per chunk on the shared ThreadPool (see SumServer).
  size_t worker_threads = 1;

  /// When set, client public keys are deserialized through this shared
  /// cache, so repeat sessions from the same client reuse the key's
  /// Montgomery context instead of rebuilding it.
  PublicKeyCache* key_cache = nullptr;

  /// Registry receiving this session's phase spans (handshake). Null
  /// uses the process-wide obs::MetricRegistry::Global(). ServiceHost
  /// points this at its per-host registry.
  obs::MetricRegistry* registry = nullptr;

  /// Live host counters (optional). They are bumped *before* the final
  /// SumResponse frame of each query is handed to the transport, so by
  /// the time a client observes its answer the host's snapshot already
  /// includes the query — this is what makes ServiceHost::SnapshotStats
  /// current while sessions are still running. compute_ns_counter
  /// accumulates fold time in integer nanoseconds.
  obs::Counter* queries_counter = nullptr;
  obs::Counter* compute_ns_counter = nullptr;

  /// Per-session query router. When null the session builds a
  /// LocalQueryRouter over its registry/default column (the classic
  /// in-process fold). A cluster coordinator installs its fan-out
  /// router here via ServiceHostOptions::router_factory.
  std::shared_ptr<QueryRouter> router;

  /// Shard-side blinding for the local router (see ShardBlindConfig);
  /// ignored when `router` is set.
  std::optional<ShardBlindConfig> shard_blind;
};

/// Serves private-sum queries from a column registry (or a single
/// database). Handles exactly one client session per Serve call; a
/// ServiceHost runs many of these concurrently.
class ServerSession {
 public:
  /// Single-column server: `db` is the default (and only) column.
  explicit ServerSession(const Database* db) { options_.default_column = db; }

  /// Multi-column server resolving v2 query names in `registry`.
  ServerSession(const ColumnRegistry* registry, ServerSessionOptions options)
      : registry_(registry), options_(options) {}

  /// Handles exactly one client session on the channel. Protocol
  /// failures are reported to the peer (Error frame) and returned.
  [[nodiscard]] Status Serve(Channel& channel);

  /// Counters for the served session (valid after Serve returns).
  const SessionMetrics& metrics() const { return metrics_; }

 private:
  [[nodiscard]] Status ServeV1(Channel& channel, const PaillierPublicKey& pub,
                               QueryRouter& router);
  [[nodiscard]] Status ServeV2(Channel& channel, const PaillierPublicKey& pub,
                               QueryRouter& router);
  [[nodiscard]] Status RunServerQuery(Channel& channel,
                                      QueryExecution& execution);

  const ColumnRegistry* registry_ = nullptr;
  ServerSessionOptions options_;
  SessionMetrics metrics_;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_SESSION_H_
