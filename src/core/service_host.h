// ServiceHost: a concurrent multi-session server over AF_UNIX sockets.
//
// One accept-loop thread hands each incoming connection to its own
// session thread (sessions do blocking channel I/O); the homomorphic
// folds inside every session share the process-wide ThreadPool via
// SumServer's worker_threads, so CPU parallelism is bounded regardless
// of how many clients connect. Client public keys are deserialized
// through one shared PublicKeyCache, so repeat sessions from the same
// client skip the Montgomery-context rebuild.
//
// This is the deployment wrapper around ServerSession; the measured
// experiment harnesses keep driving protocol objects directly.

#ifndef PPSTATS_CORE_SERVICE_HOST_H_
#define PPSTATS_CORE_SERVICE_HOST_H_

#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "db/column_registry.h"
#include "net/socket_channel.h"

namespace ppstats {

/// Host configuration.
struct ServiceHostOptions {
  /// Column served to v1 clients and unnamed v2 queries. Empty picks the
  /// registry's sole column when it has exactly one, else no default.
  std::string default_column;

  /// Fold slices per chunk on the shared ThreadPool (per query).
  size_t worker_threads = 1;
};

/// Serves ServerSessions concurrently on a filesystem socket path.
class ServiceHost {
 public:
  /// Aggregate counters across all sessions served so far.
  struct Stats {
    uint64_t sessions_accepted = 0;
    uint64_t sessions_ok = 0;      ///< sessions that ended cleanly
    uint64_t sessions_failed = 0;  ///< sessions that ended with an error
    uint64_t queries_served = 0;   ///< queries answered with a SumResponse
    double server_compute_s = 0;   ///< total homomorphic fold time
    size_t distinct_client_keys = 0;
  };

  /// `registry` must outlive the host and stay unmodified while running.
  explicit ServiceHost(const ColumnRegistry* registry,
                       ServiceHostOptions options = {});

  /// Stops and joins all threads.
  ~ServiceHost();

  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  /// Binds `socket_path` and starts accepting clients in the background.
  Status Start(const std::string& socket_path);

  /// Unblocks the accept loop and joins every thread. Sessions already
  /// in flight run to completion (their clients disconnect or finish).
  /// Idempotent.
  void Stop();

  bool running() const { return accept_thread_.joinable(); }

  Stats stats() const;

 private:
  void AcceptLoop();
  void ServeOne(std::unique_ptr<Channel> channel);

  const ColumnRegistry* registry_;
  ServiceHostOptions options_;
  const Database* default_column_ = nullptr;  // resolved at Start
  PublicKeyCache key_cache_;
  std::optional<SocketListener> listener_;
  std::thread accept_thread_;

  mutable std::mutex mu_;  // guards session_threads_ and stats_
  std::vector<std::thread> session_threads_;
  Stats stats_;
  bool stopping_ = false;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_SERVICE_HOST_H_
