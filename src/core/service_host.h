// ServiceHost: a concurrent multi-session server over AF_UNIX sockets.
//
// One accept-loop thread hands each incoming connection to its own
// session thread (sessions do blocking channel I/O); the homomorphic
// folds inside every session share the process-wide ThreadPool via
// SumServer's worker_threads, so CPU parallelism is bounded regardless
// of how many clients connect. Client public keys are deserialized
// through one shared PublicKeyCache, so repeat sessions from the same
// client skip the Montgomery-context rebuild.
//
// Robustness layer (the daemon must survive slow, crashing, and
// malformed clients):
//  * Per-session I/O deadlines (io_deadline_ms) evict a client that
//    stalls mid-protocol instead of pinning its session thread forever.
//  * A session reaper joins finished session threads promptly, so a
//    long-running daemon's thread count returns to baseline between
//    clients instead of accumulating handles until Stop().
//  * max_sessions caps concurrency; over-limit connects are answered
//    with a ResourceExhausted Error frame and closed, which clients
//    treat as retryable (net/retry.h).
//  * The accept loop survives transient accept() failures (fd
//    exhaustion, memory pressure) with capped backoff; only listener
//    shutdown stops it.
//
// Observability: every host owns a private obs::MetricRegistry. Session
// outcomes and query counts live there as registry counters (the Stats
// struct is a thin snapshot view over them), which makes SnapshotStats()
// safe to call at any moment — queries are counted by the session before
// their SumResponse reaches the wire, so live stats are never behind
// what clients have observed. When stats_json_path is set, a dumper
// thread periodically writes the merged host + process metrics as one
// JSON document (atomic rename), and Stop() writes a final snapshot.
//
// This is the deployment wrapper around ServerSession; the measured
// experiment harnesses keep driving protocol objects directly.

#ifndef PPSTATS_CORE_SERVICE_HOST_H_
#define PPSTATS_CORE_SERVICE_HOST_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/session.h"
#include "db/column_registry.h"
#include "net/fault_injection.h"
#include "net/socket_channel.h"
#include "obs/metrics.h"

namespace ppstats {

class ReactorEngine;

/// Which concurrency engine serves sessions.
enum class ServiceEngine : uint8_t {
  /// One blocking thread per session (the original host).
  kThreaded,
  /// Event-driven: a fixed set of reactor threads owns every socket
  /// non-blocking and folds run on the shared work-stealing ThreadPool
  /// (core/reactor_host.h). Thread count stays flat in the client count.
  kReactor,
};

/// Host configuration.
struct ServiceHostOptions {
  /// Column served to v1 clients and unnamed v2 queries. Empty picks the
  /// registry's sole column when it has exactly one, else no default.
  std::string default_column;

  /// Fold slices per chunk on the shared ThreadPool (per query).
  size_t worker_threads = 1;

  /// Concurrent session cap; connects beyond it are rejected with a
  /// ResourceExhausted Error frame. 0 = unlimited.
  size_t max_sessions = 0;

  /// Per-call read/write deadline on every session channel; a client
  /// that stalls longer than this mid-protocol is evicted with
  /// DeadlineExceeded. 0 = block forever (the paper's assumption).
  uint32_t io_deadline_ms = 0;

  /// Kernel listen(2) backlog for the socket listener.
  int accept_backlog = 16;

  /// When set, every session channel is wrapped in a
  /// FaultInjectingChannel seeded with fault_seed + session index, so
  /// chaos tests can inject deterministic faults into the server's send
  /// path (ServerHello / QueryAccept / SumResponse frames).
  std::optional<FaultInjectionOptions> fault_injection;
  uint64_t fault_seed = 0;

  /// Test hook, consulted before each blocking accept. A non-OK return
  /// is handled exactly like a failed accept() with that status. Chaos
  /// tests use it to simulate fd exhaustion (EMFILE/ENFILE), which
  /// cannot be forced reliably from user space: some kernels (and
  /// sandboxes) skip the RLIMIT_NOFILE check on accept's fd allocation.
  std::function<Status()> accept_fault_hook;

  /// When non-empty, the host writes its merged metrics (host registry +
  /// process-wide registry) to this path as a single JSON document —
  /// every stats_interval_ms while running, and once more on Stop().
  /// Writes go through a temp file + rename, so readers never see a
  /// partial document.
  std::string stats_json_path;

  /// Period of the stats dumper thread. 0 disables periodic dumps (the
  /// final Stop() snapshot is still written when stats_json_path is
  /// set).
  uint32_t stats_interval_ms = 0;

  /// Session concurrency engine. Both engines implement identical
  /// protocol, deadline, rejection, and counter semantics.
  ServiceEngine engine = ServiceEngine::kReactor;

  /// Reactor engine: number of event-loop threads. Every shard owns its
  /// own listener (SO_REUSEPORT for tcp, a dup()'d description for
  /// unix), and a session is served by the shard that accepted it.
  size_t reactor_threads = 1;

  /// Reactor engine: backend wait batch size (epoll_wait maxevents).
  int max_events = 64;

  /// Reactor engine: use the portable poll(2) backend even where epoll
  /// is available (exercised by tests).
  bool force_poll_backend = false;

  /// Reactor engine: bound on ThreadPool tasks queued by session frame
  /// processing. When the pool backlog reaches this depth, new frames
  /// wait in their session's inbox instead of piling onto the pool
  /// (backpressure, not rejection). 0 = unbounded.
  size_t fold_queue_depth = 0;

  /// Reactor engine: flush each session's outbox with one gathered
  /// sendmsg() over every pending frame instead of one send() per
  /// frame. Off is kept as a bench ablation axis, not a deployment
  /// choice.
  bool outbox_writev = true;

  /// SO_SNDBUF for accepted session sockets, both engines. 0 keeps the
  /// kernel default; tests set tiny values to force partial writes
  /// (the kernel clamps to its floor, ~4.6KB on Linux).
  int so_sndbuf = 0;

  /// When set, each session's query resolution/execution is delegated
  /// to a fresh router from this factory instead of the local
  /// registry + SumServer path (the cluster coordinator plugs in
  /// here; see src/cluster/coordinator.h). A host with a router
  /// factory may run without local columns: Start() skips the
  /// empty-registry check and default-column resolution.
  std::function<std::shared_ptr<QueryRouter>()> router_factory;

  /// Shard-side zero-share blinding for the local query path (see
  /// ShardBlindConfig in core/query_exec.h). Ignored when
  /// router_factory is set.
  std::optional<ShardBlindConfig> shard_blind;
};

/// Serves ServerSessions concurrently on a filesystem socket path.
class ServiceHost {
 public:
  /// Aggregate counters across all sessions served so far (reset on
  /// each Start, so a restarted host reports only its current run).
  struct Stats {
    uint64_t sessions_accepted = 0;
    uint64_t sessions_ok = 0;       ///< sessions that ended cleanly
    uint64_t sessions_failed = 0;   ///< sessions that ended with an error
    uint64_t sessions_rejected = 0; ///< connects refused over max_sessions
    uint64_t sessions_evicted = 0;  ///< sessions ended by an I/O deadline
    uint64_t queries_served = 0;    ///< queries answered with a SumResponse
    double server_compute_s = 0;    ///< total homomorphic fold time
    size_t distinct_client_keys = 0;
  };

  /// `registry` must outlive the host and stay unmodified while running.
  explicit ServiceHost(const ColumnRegistry* registry,
                       ServiceHostOptions options = {});

  /// Stops and joins all threads.
  ~ServiceHost();

  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  /// Binds `uri` — "unix:/path", "tcp:host:port" (port 0 picks an
  /// ephemeral port; see bound_uri()), or a bare socket path — and
  /// starts accepting clients in the background. Resets per-run state
  /// (stats, key cache), so Stop() + Start() serves a fresh run —
  /// including on the same address.
  [[nodiscard]] Status Start(const std::string& uri);

  /// The resolved listen address after a successful Start(): ephemeral
  /// TCP ports are filled in, bare paths normalized to "unix:...".
  /// Clients can dial this string verbatim (net/retry.h UriDialer).
  std::string bound_uri() const { return bound_endpoint_.ToUri(); }

  /// Unblocks the accept loop and drains: sessions already in flight run
  /// to completion (bounded by io_deadline_ms when set), their threads
  /// are reaped, and every host thread is joined. Idempotent.
  void Stop() PPSTATS_EXCLUDES(mu_);

  bool running() const {
    return accept_thread_.joinable() || reactor_engine_ != nullptr;
  }

  /// Sessions currently being served (live session threads). The reaper
  /// keeps this equal to the number of connected clients, so a test can
  /// assert it returns to zero between clients.
  size_t active_sessions() const PPSTATS_EXCLUDES(mu_);

  /// Live, race-free view of the host's counters: safe to call at any
  /// moment, including while sessions are mid-query. A query whose
  /// answer a client has already received is guaranteed to be counted
  /// (ServerSession accounts it before the response frame is sent).
  Stats SnapshotStats() const;

  /// Alias of SnapshotStats(), kept for existing callers.
  Stats stats() const { return SnapshotStats(); }

  /// The merged host + process-wide metrics this host's stats dumper
  /// exports (counters, gauges, and span histograms).
  obs::MetricsSnapshot SnapshotMetrics() const;

  /// This host's private metric registry (reset on every Start()).
  obs::MetricRegistry& metric_registry() { return metric_registry_; }

 private:
  void AcceptLoop() PPSTATS_EXCLUDES(mu_);
  void ReaperLoop() PPSTATS_EXCLUDES(mu_);
  void DumperLoop() PPSTATS_EXCLUDES(mu_);
  void ServeOne(Channel& channel);
  void RejectOverCapacity(std::unique_ptr<Channel> channel);
  void WriteStatsJson() const;

  const ColumnRegistry* registry_;
  ServiceHostOptions options_;
  const Database* default_column_ = nullptr;  // resolved at Start
  PublicKeyCache key_cache_;
  /// Non-null while running with engine == kReactor; created per Start.
  std::unique_ptr<ReactorEngine> reactor_engine_;
  std::optional<SocketListener> listener_;
  Endpoint bound_endpoint_;  ///< resolved listen address (set by Start)
  std::thread accept_thread_;
  std::thread reaper_thread_;
  std::thread dumper_thread_;
  std::chrono::steady_clock::time_point started_at_{};

  // Host counters, owned by metric_registry_. The pointers stay valid
  // across Reset(), so they are resolved once in the constructor.
  obs::MetricRegistry metric_registry_;
  obs::Counter* sessions_accepted_;
  obs::Counter* sessions_ok_;
  obs::Counter* sessions_failed_;
  obs::Counter* sessions_rejected_;
  obs::Counter* sessions_evicted_;
  obs::Counter* queries_served_;
  obs::Counter* compute_ns_;
  obs::Gauge* active_gauge_;

  mutable Mutex mu_;
  /// Live session threads, keyed by session id.
  std::map<uint64_t, std::thread> sessions_ PPSTATS_GUARDED_BY(mu_);
  /// Done session threads, awaiting join by the reaper.
  std::vector<std::thread> finished_ PPSTATS_GUARDED_BY(mu_);
  CondVar reaper_cv_;
  CondVar dumper_cv_;
  uint64_t next_session_id_ PPSTATS_GUARDED_BY(mu_) = 0;
  bool stopping_ PPSTATS_GUARDED_BY(mu_) = false;
  /// Accept loop gone; the reaper exits when idle.
  bool draining_ PPSTATS_GUARDED_BY(mu_) = false;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_SERVICE_HOST_H_
