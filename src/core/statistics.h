// High-level privacy-preserving statistics API.
//
// These are the operations the paper motivates: "such protocols
// immediately yield private solutions for computing means, variances,
// and weighted averages". Each is built from one or two selected-sum
// protocol executions; the client learns only the aggregate(s), the
// server learns nothing about the selection.

#ifndef PPSTATS_CORE_STATISTICS_H_
#define PPSTATS_CORE_STATISTICS_H_

#include "core/runner.h"

namespace ppstats {

/// Result of a private selected sum.
struct PrivateSumResult {
  BigInt sum;
  RunMetrics metrics;
};

/// Result of a private mean.
struct PrivateMeanResult {
  BigInt sum;
  size_t count = 0;
  double mean = 0;
  RunMetrics metrics;
};

/// Result of a private variance (population variance of the selection).
struct PrivateVarianceResult {
  BigInt sum;
  BigInt sum_of_squares;
  size_t count = 0;
  double mean = 0;
  double variance = 0;
  RunMetrics metrics;  ///< merged over the two protocol executions
};

/// Result of a private weighted average.
struct PrivateWeightedAverageResult {
  BigInt weighted_sum;
  BigInt total_weight;
  double average = 0;
  RunMetrics metrics;
};

/// Privately computes the sum of the selected rows of `db`.
[[nodiscard]] Result<PrivateSumResult> PrivateSelectedSum(const PaillierPrivateKey& key,
                                                          const Database& db,
                                                          const SelectionVector& selection,
                                                          RandomSource& rng,
                                                          SumClientOptions options = {});

/// Privately computes the weighted sum sum_i w_i x_i.
[[nodiscard]] Result<PrivateSumResult> PrivateWeightedSum(const PaillierPrivateKey& key,
                                                          const Database& db,
                                                          const WeightVector& weights,
                                                          RandomSource& rng,
                                                          SumClientOptions options = {});

/// Privately computes the mean of the selected rows. Fails on an empty
/// selection.
[[nodiscard]] Result<PrivateMeanResult> PrivateMean(const PaillierPrivateKey& key,
                                                    const Database& db,
                                                    const SelectionVector& selection,
                                                    RandomSource& rng,
                                                    SumClientOptions options = {});

/// Privately computes mean and population variance of the selected rows
/// with two protocol executions (sum and sum of squares). Fails on an
/// empty selection.
[[nodiscard]] Result<PrivateVarianceResult> PrivateVariance(const PaillierPrivateKey& key,
                                                            const Database& db,
                                                            const SelectionVector& selection,
                                                            RandomSource& rng,
                                                            SumClientOptions options = {});

/// Privately computes sum_i w_i x_i / sum_i w_i. Fails when all weights
/// are zero.
[[nodiscard]] Result<PrivateWeightedAverageResult> PrivateWeightedAverage(
    const PaillierPrivateKey& key, const Database& db,
    const WeightVector& weights, RandomSource& rng,
    SumClientOptions options = {});

/// Result of a private covariance between two columns of the same table.
struct PrivateCovarianceResult {
  BigInt sum_x;
  BigInt sum_y;
  BigInt sum_xy;
  size_t count = 0;
  double mean_x = 0;
  double mean_y = 0;
  double covariance = 0;  ///< population covariance over the selection
  RunMetrics metrics;     ///< merged over the three protocol executions
};

/// Privately computes cov(X, Y) = E[XY] - E[X]E[Y] over the selected
/// rows, with three protocol executions (sum of x, sum of y, sum of
/// x*y; the products are a local server-side transform). Both columns
/// must have the database's size. Fails on an empty selection.
[[nodiscard]] Result<PrivateCovarianceResult> PrivateCovariance(
    const PaillierPrivateKey& key, const Database& x, const Database& y,
    const SelectionVector& selection, RandomSource& rng,
    SumClientOptions options = {});

/// Result of a private Pearson correlation.
struct PrivateCorrelationResult {
  PrivateCovarianceResult covariance;
  double variance_x = 0;
  double variance_y = 0;
  double correlation = 0;  ///< in [-1, 1]; 0 when either variance is 0

  RunMetrics metrics;  ///< merged over all five protocol executions
};

/// Privately computes the Pearson correlation coefficient
/// cov(X,Y) / (sigma_X * sigma_Y) over the selected rows (five protocol
/// executions). Fails on an empty selection.
[[nodiscard]] Result<PrivateCorrelationResult> PrivateCorrelation(
    const PaillierPrivateKey& key, const Database& x, const Database& y,
    const SelectionVector& selection, RandomSource& rng,
    SumClientOptions options = {});

}  // namespace ppstats

#endif  // PPSTATS_CORE_STATISTICS_H_
