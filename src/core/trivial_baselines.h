// The two trivial, non-private baselines from the paper's Section 2:
//
//  * Index-send: the client sends its m selected indices in the clear;
//    the server returns the sum. Cheap, but the server learns the
//    client's selection (no client privacy).
//  * Full transfer: the server ships the whole database; the client sums
//    locally. Cheap computation, linear communication, and the client
//    learns everything (no database privacy).
//
// They are implemented with the same byte-accurate accounting as the
// private protocol so the benchmarks can report the price of privacy.

#ifndef PPSTATS_CORE_TRIVIAL_BASELINES_H_
#define PPSTATS_CORE_TRIVIAL_BASELINES_H_

#include "core/runner.h"

namespace ppstats {

/// Result and cost of a baseline execution.
struct BaselineRunResult {
  uint64_t sum = 0;
  double client_seconds = 0;
  double server_seconds = 0;
  TrafficStats client_to_server;
  TrafficStats server_to_client;

  /// Total elapsed time under `env` (compute + link, no overlap).
  double TotalSeconds(const ExecutionEnvironment& env) const;
};

/// Client sends selected indices in the clear; server sums. Leaks the
/// selection to the server.
[[nodiscard]] Result<BaselineRunResult> RunNonPrivateIndexSum(const Database& db,
                                                              const SelectionVector& selection);

/// Server ships the entire database; client sums locally. Leaks the
/// database to the client.
[[nodiscard]] Result<BaselineRunResult> RunFullTransferSum(const Database& db,
                                                           const SelectionVector& selection);

}  // namespace ppstats

#endif  // PPSTATS_CORE_TRIVIAL_BASELINES_H_
