// Packed multi-query selected sums over Damgård–Jurik.
//
// The paper's protocol answers ONE selected-sum query per linear pass of
// encrypted indices. With a Damgård–Jurik key (s > 1) the plaintext
// space is wide enough to pack B independent 0/1 indicators per row into
// slots of one plaintext:
//
//   P_i = sum_b I_b(i) * 2^(b * slot_bits)
//
// The server's usual product then yields, in one ciphertext,
//
//   prod_i E(P_i)^{x_i} = E( sum_b 2^(b*slot_bits) * sum_i I_b(i) x_i )
//
// i.e. all B selected sums at once, provided each per-query sum stays
// below 2^slot_bits (no carry between slots). Client encryption, server
// work, and traffic are the SAME as for a single query: B-fold
// amortization for query batches — e.g. computing a histogram (one
// selection per bucket) in one pass.

#ifndef PPSTATS_CORE_PACKED_SUM_H_
#define PPSTATS_CORE_PACKED_SUM_H_

#include <vector>

#include "crypto/damgard_jurik.h"
#include "db/database.h"
#include "net/channel.h"

namespace ppstats {

/// Configuration for a packed multi-query run.
struct PackedSumConfig {
  /// Bits per query slot. Every query's true sum must be < 2^slot_bits
  /// (sums of 32-bit values need 32 + ceil(log2 n) bits; the default
  /// fits any database up to 2^24 rows).
  size_t slot_bits = 56;
};

/// Result of a packed multi-query execution.
struct PackedSumResult {
  std::vector<BigInt> sums;  ///< one per query, in input order
  TrafficStats client_to_server;
  TrafficStats server_to_client;
  double client_encrypt_s = 0;
  double server_compute_s = 0;
  double client_decrypt_s = 0;
};

/// Runs B = queries.size() selected-sum queries in ONE protocol pass.
/// Every selection must have db.size() entries, and B * slot_bits must
/// fit in the key's plaintext space (n^s). The queries stay as hidden
/// from the server as a single query's index vector.
[[nodiscard]] Result<PackedSumResult> RunPackedMultiSum(
    const DjPrivateKey& key, const Database& db,
    const std::vector<SelectionVector>& queries,
    const PackedSumConfig& config, RandomSource& rng);

/// Smallest Damgård–Jurik s such that B queries of slot_bits each fit a
/// modulus of `modulus_bits`.
size_t MinimumSForQueries(size_t modulus_bits, size_t num_queries,
                          size_t slot_bits);

}  // namespace ppstats

#endif  // PPSTATS_CORE_PACKED_SUM_H_
