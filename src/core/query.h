// Query layer: what a client asks for, separated from how the server
// computes it.
//
// Every protocol variant in this repo — selected sum, weighted sum,
// sum-of-squares for variance, x*y for covariance, partitioned
// multi-client shares, blinded distributed partials — is the same server
// fold prod_i E(I_i)^{e_i} mod n^2 with a different per-row exponent
// e_i. A QuerySpec names the statistic and the column(s); compiling it
// lowers the statistic kind to an ExponentTransform (the e_i rule) plus
// the partition/blinding the serving side applies. The fold engine and
// SumServer only ever see compiled queries, so variance and covariance
// are no longer special cases inside the server.

#ifndef PPSTATS_CORE_QUERY_H_
#define PPSTATS_CORE_QUERY_H_

#include <optional>
#include <string>
#include <utility>

#include "bigint/bigint.h"
#include "db/column_registry.h"
#include "db/database.h"

namespace ppstats {

/// The statistic a query computes over the selected rows. Values are
/// wire tags (QueryHeader frames carry them as a u8).
enum class StatisticKind : uint8_t {
  kSum = 1,           ///< sum_i w_i x_i
  kSumOfSquares = 2,  ///< sum_i w_i x_i^2 (variance building block)
  kProduct = 3,       ///< sum_i w_i x_i y_i (covariance building block)
};

/// Validates a wire-decoded statistic kind.
[[nodiscard]] Result<StatisticKind> StatisticKindFromWire(uint8_t wire);

/// Human-readable kind name, for diagnostics.
const char* StatisticKindName(StatisticKind kind);

/// The per-row exponent rule a statistic kind lowers to: the server
/// exponentiates E(w_i) with RowExponent(i, x_i). Exponents are BigInt
/// products, so x_i^2 and x_i*y_i never wrap a fixed-width integer.
class ExponentTransform {
 public:
  ExponentTransform() = default;

  static ExponentTransform Identity();
  static ExponentTransform Square();
  /// `second` must outlive the transform and match the primary column's
  /// size (checked at compile time by CompileQuery).
  static ExponentTransform ProductWith(const Database* second);

  BigInt RowExponent(size_t row, uint64_t value) const {
    switch (kind_) {
      case StatisticKind::kSumOfSquares:
        return BigInt(value) * BigInt(value);
      case StatisticKind::kProduct:
        return BigInt(value) * BigInt(second_->value(row));
      case StatisticKind::kSum:
        break;
    }
    return BigInt(value);
  }

  StatisticKind kind() const { return kind_; }
  const Database* second_column() const { return second_; }

 private:
  StatisticKind kind_ = StatisticKind::kSum;
  const Database* second_ = nullptr;
};

/// One query as the client states it: a statistic over named column(s),
/// plus the serving-side options (blinding, partition) the multi-client
/// and distributed protocols attach. Column names are resolved against a
/// ColumnRegistry; an empty name means the server's default column.
struct QuerySpec {
  StatisticKind kind = StatisticKind::kSum;
  std::string column;   ///< primary column ("" = server default)
  std::string column2;  ///< second column, kProduct only

  /// Additive blinding folded into the response (Section 3.5 partials).
  std::optional<BigInt> blinding;

  /// Rows [first, second) this server covers; whole column by default.
  std::optional<std::pair<size_t, size_t>> partition;
};

/// A spec lowered against concrete columns: everything SumServer needs.
struct CompiledQuery {
  const Database* column = nullptr;  ///< resolved primary column
  ExponentTransform transform;       ///< lowered from QuerySpec::kind
  size_t begin = 0;                  ///< first covered row
  size_t end = 0;                    ///< one past the last covered row
  std::optional<BigInt> blinding;

  size_t rows() const { return end - begin; }
};

/// Compiles `spec` against explicitly supplied columns (the embedding
/// path used by statistics.cc and the test harnesses; names in the spec
/// are ignored). `second` is required exactly when kind == kProduct and
/// must match the primary column's size.
[[nodiscard]] Result<CompiledQuery> CompileQuery(const QuerySpec& spec,
                                                 const Database* primary,
                                                 const Database* second = nullptr);

/// Compiles `spec` by resolving its column names in `registry` (the v2
/// session path). An empty primary name resolves to `default_column`
/// when provided.
[[nodiscard]] Result<CompiledQuery> CompileQuery(const QuerySpec& spec,
                                                 const ColumnRegistry& registry,
                                                 const Database* default_column = nullptr);

}  // namespace ppstats

#endif  // PPSTATS_CORE_QUERY_H_
