#include "core/session_fsm.h"

#include <utility>

#include "core/messages.h"
#include "obs/span.h"

namespace ppstats {

namespace {

obs::MetricRegistry* ResolveRegistry(const ServerSessionOptions& options) {
  return options.registry != nullptr ? options.registry
                                     : &obs::MetricRegistry::Global();
}

}  // namespace

ServerProtocolFsm::ServerProtocolFsm(const ColumnRegistry* registry,
                                     ServerSessionOptions options,
                                     uint64_t session_ordinal)
    : registry_(registry),
      options_(options),
      session_ordinal_(session_ordinal) {}

void ServerProtocolFsm::Finish(Status status) {
  phase_ = ServerFsmPhase::kDone;
  final_status_ = std::move(status);
  execution_.reset();
}

void ServerProtocolFsm::Abort(ServerFsmOutput& out, Status status) {
  out.frames.push_back(EncodeErrorFrame(status));
  Finish(std::move(status));
}

ServerFsmOutput ServerProtocolFsm::OnFrame(BytesView frame) {
  ServerFsmOutput out;
  switch (phase_) {
    case ServerFsmPhase::kHandshake:
      OnHandshakeFrame(frame, out);
      break;
    case ServerFsmPhase::kAwaitQuery:
      OnQueryFrame(frame, out);
      break;
    case ServerFsmPhase::kAwaitChunks:
      OnChunkFrame(frame, out);
      break;
    case ServerFsmPhase::kDone:
      break;  // late frames are noise; the session is over
  }
  out.done = done();
  return out;
}

ServerFsmOutput ServerProtocolFsm::OnDeadline() {
  ServerFsmOutput out;
  if (!done()) {
    Abort(out, Status::DeadlineExceeded("session i/o deadline exceeded"));
  }
  out.done = true;
  return out;
}

void ServerProtocolFsm::OnTransportError(Status error) {
  if (!done()) Finish(std::move(error));
}

void ServerProtocolFsm::OnHandshakeFrame(BytesView frame,
                                         ServerFsmOutput& out) {
  router_ = options_.router;
  if (router_ == nullptr) {
    if (registry_ == nullptr && options_.default_column == nullptr) {
      // Same as ServerSession::Serve: a misconfigured server fails
      // locally, before it owes the peer any frame.
      Finish(Status::FailedPrecondition("server has no database"));
      return;
    }
    LocalRouterConfig config;
    config.default_column = options_.default_column;
    config.worker_threads = options_.worker_threads;
    config.shard_blind = options_.shard_blind;
    router_ = std::make_shared<LocalQueryRouter>(registry_, std::move(config));
  }
  obs::ScopedSpanContext context({session_ordinal_, 0});
  obs::ObsSpan handshake(obs::kSpanHandshake, ResolveRegistry(options_));

  Result<ClientHelloMessage> hello = ClientHelloMessage::Decode(frame);
  if (!hello.ok()) return Abort(out, hello.status());
  if (hello->protocol_version != kSessionProtocolV1 &&
      hello->protocol_version != kSessionProtocolV2) {
    return Abort(out, Status::ProtocolError("unsupported protocol version"));
  }
  const uint16_t version = static_cast<uint16_t>(hello->protocol_version);
  if (version == kSessionProtocolV1 && !router_->HasDefault()) {
    return Abort(out,
                 Status::FailedPrecondition("server has no default column"));
  }
  Result<PaillierPublicKey> pub =
      options_.key_cache != nullptr
          ? options_.key_cache->Deserialize(hello->public_key_blob)
          : DeserializePublicKey(hello->public_key_blob);
  if (!pub.ok()) return Abort(out, pub.status());
  Status hello_status = router_->OnClientHello(hello->public_key_blob, *pub);
  if (!hello_status.ok()) return Abort(out, std::move(hello_status));
  metrics_.negotiated_version = version;
  version_ = version;
  pub_ = std::move(*pub);

  ServerHelloMessage server_hello;
  server_hello.protocol_version = version;
  server_hello.database_size = router_->DefaultRows();
  out.frames.push_back(server_hello.Encode());
  handshake.Stop();

  if (version == kSessionProtocolV1) {
    OpenV1Query(out);
  } else {
    phase_ = ServerFsmPhase::kAwaitQuery;
  }
}

void ServerProtocolFsm::OpenV1Query(ServerFsmOutput& out) {
  // The v1 implicit query: a plain sum over the whole default column.
  Result<OpenedQuery> query = router_->OpenDefault(*pub_);
  if (!query.ok()) return Abort(out, query.status());
  execution_ = std::move(query->execution);
  phase_ = ServerFsmPhase::kAwaitChunks;
}

void ServerProtocolFsm::OnQueryFrame(BytesView frame, ServerFsmOutput& out) {
  Result<MessageType> type = PeekMessageType(frame);
  if (!type.ok()) return Abort(out, type.status());
  if (*type == MessageType::kGoodbye) return Finish(Status::OK());
  if (*type == MessageType::kError) return Finish(StatusFromErrorFrame(frame));
  Result<QueryHeaderMessage> header = QueryHeaderMessage::Decode(frame);
  if (!header.ok()) return Abort(out, header.status());

  // Resolution (unknown kind/column, zero-row cover — a zero-row query
  // would deadlock: the client has no chunks to send and the server
  // would wait for one) happens inside the router.
  Result<OpenedQuery> query = router_->Open(*header, *pub_);
  if (!query.ok()) return Abort(out, query.status());

  QueryAcceptMessage accept;
  accept.rows = query->rows;
  execution_ = std::move(query->execution);
  out.frames.push_back(accept.Encode());
  phase_ = ServerFsmPhase::kAwaitChunks;
}

void ServerProtocolFsm::OnChunkFrame(BytesView frame, ServerFsmOutput& out) {
  Result<MessageType> type = PeekMessageType(frame);
  if (!type.ok()) return Abort(out, type.status());
  if (*type == MessageType::kError) return Finish(StatusFromErrorFrame(frame));

  // Attribute this query's fold spans to its 1-based index within the
  // session, as ServerSession::RunServerQuery does for the whole query.
  obs::ScopedSpanContext context(
      {session_ordinal_, static_cast<uint64_t>(metrics_.queries + 1)});
  Result<std::optional<Bytes>> response = execution_->HandleRequest(frame);
  if (!response.ok()) return Abort(out, response.status());
  if (response->has_value()) {
    // Account the query *before* its SumResponse frame is handed to the
    // caller: by the time the client observes its answer, the host's
    // live stats already include the query.
    ++metrics_.queries;
    metrics_.server_compute_s += execution_->compute_seconds();
    if (options_.queries_counter != nullptr) {
      options_.queries_counter->Increment();
    }
    if (options_.compute_ns_counter != nullptr) {
      options_.compute_ns_counter->Add(
          static_cast<uint64_t>(execution_->compute_seconds() * 1e9));
    }
    out.frames.push_back(std::move(**response));
  }
  if (execution_ != nullptr && execution_->Finished()) {
    execution_.reset();
    if (version_ == kSessionProtocolV1) {
      Finish(Status::OK());
    } else {
      phase_ = ServerFsmPhase::kAwaitQuery;
    }
  }
}

}  // namespace ppstats
