// Fold engine: the one implementation of the server-side homomorphic
// fold prod_i E(I_i)^{e_i} mod n^2.
//
// Every server variant — in-memory SumServer, file-backed
// StreamingSumServer, the packed Damgård–Jurik multi-sum, the PIR row
// folds — is this fold over a different row source and exponent rule.
// The engine owns the chunk ordering, the ThreadPool slicing, and the
// Montgomery-form accumulator; rows come from a pluggable RowSource and
// exponents from the query layer's ExponentTransform.
//
// Bit-for-bit invariant: multiplication mod n^2 is associative,
// commutative, and exact, and the Montgomery conversions are exact, so
// the final canonical residue is independent of chunking and slicing —
// the engine's output is identical to a per-row exponentiate-and-
// multiply server for every transform, partition, and thread count.

#ifndef PPSTATS_CORE_FOLD_ENGINE_H_
#define PPSTATS_CORE_FOLD_ENGINE_H_

#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/query.h"
#include "crypto/paillier.h"

namespace ppstats {

/// Supplies row values to the fold engine. Implementations may hold the
/// whole column in memory or page it in per chunk.
class RowSource {
 public:
  virtual ~RowSource() = default;

  /// Total rows available.
  virtual size_t size() const = 0;

  /// Reads rows [begin, begin + out.size()) into `out`. The range is
  /// validated by the engine before the call.
  [[nodiscard]] virtual Status ReadRows(size_t begin, std::span<uint64_t> out) = 0;

  /// Largest number of row values this source has held resident at once;
  /// 0 when the source does not track residency (in-memory columns).
  virtual size_t peak_resident_rows() const { return 0; }
};

/// Rows served from an in-memory Database column.
class ColumnRowSource : public RowSource {
 public:
  explicit ColumnRowSource(const Database* db) : db_(db) {}

  size_t size() const override { return db_->size(); }
  [[nodiscard]] Status ReadRows(size_t begin, std::span<uint64_t> out) override;

 private:
  const Database* db_;
};

/// Rows paged in from a binary column file (see WriteColumnFile in
/// core/streaming_server.h): resident state is one chunk, not the table.
class FileRowSource : public RowSource {
 public:
  /// Opens `path`; fails if the file is missing, truncated, or sized
  /// inconsistently with its header.
  [[nodiscard]] static Result<std::unique_ptr<FileRowSource>> Open(const std::string& path);

  size_t size() const override { return row_count_; }
  [[nodiscard]] Status ReadRows(size_t begin, std::span<uint64_t> out) override;
  size_t peak_resident_rows() const override { return peak_resident_rows_; }

 private:
  FileRowSource(std::ifstream file, size_t row_count)
      : file_(std::move(file)), row_count_(row_count) {}

  std::ifstream file_;
  size_t row_count_ = 0;
  size_t peak_resident_rows_ = 0;
};

/// Gathers one slice's fold terms: for each index in [begin, end), a
/// Montgomery-form base and its non-negative exponent (zero-exponent
/// terms may be dropped — E(I)^0 == 1 is a no-op factor).
using FoldGatherFn = std::function<void(
    size_t begin, size_t end, std::vector<BigInt>* bases_mont,
    std::vector<BigInt>* exponents)>;

/// The shared slicing kernel: splits [0, count) into up to
/// `worker_threads` contiguous slices, folds each slice's gathered terms
/// with one batched multi-exponentiation on the shared ThreadPool, and
/// combines the Montgomery-form partials in slice order. Returns the
/// Montgomery-form product.
BigInt SlicedFoldMontgomery(const MontgomeryContext& mont, size_t count,
                            size_t worker_threads,
                            const FoldGatherFn& gather);

/// Slicing kernel over bases already in Montgomery form (the PIR row
/// fold and the packed multi-sum hold a prepared base vector). Returns
/// the Montgomery-form product prod_i bases[i]^exponents[i].
BigInt SlicedMultiExpMontgomery(const MontgomeryContext& mont,
                                std::span<const BigInt> bases_mont,
                                std::span<const BigInt> exponents,
                                size_t worker_threads);

/// The chunked fold behind every Paillier sum server: consumes index
/// ciphertext chunks in row order over [begin, end), accumulates in
/// Montgomery form, and produces the final (optionally blinded)
/// ciphertext with a single conversion out of Montgomery form.
class FoldEngine {
 public:
  /// Folds rows [begin, end) of `rows` (pass 0, rows->size() for the
  /// whole column). Per-row exponents come from `transform`; chunks are
  /// split across `worker_threads` slices of the shared ThreadPool.
  FoldEngine(const PaillierPublicKey& pub, std::unique_ptr<RowSource> rows,
             ExponentTransform transform, size_t begin, size_t end,
             size_t worker_threads = 1);

  /// Folds one chunk covering rows [start_row, start_row + cts.size()).
  /// Chunks must arrive in order with no gaps, overlap, or overrun.
  [[nodiscard]] Status FoldChunk(size_t start_row, std::span<const PaillierCiphertext> cts);

  /// True once chunks have covered every row in [begin, end).
  bool done() const { return next_expected_ >= end_; }

  /// Converts the accumulator out of Montgomery form (the only
  /// conversion in the fold's lifetime) and applies `blinding`.
  /// Requires done().
  [[nodiscard]] Result<PaillierCiphertext> Finish(const std::optional<BigInt>& blinding);

  size_t row_count() const { return rows_->size(); }
  size_t peak_resident_rows() const { return rows_->peak_resident_rows(); }

 private:
  PaillierPublicKey pub_;
  std::unique_ptr<RowSource> rows_;
  ExponentTransform transform_;
  size_t end_ = 0;
  size_t worker_threads_ = 1;
  size_t next_expected_ = 0;
  // Running product, kept in Montgomery form mod n^2 across all chunks.
  BigInt accumulator_mont_;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_FOLD_ENGINE_H_
