// ServerProtocolFsm: the server side of the session protocol as a
// sans-IO state machine.
//
// ServerSession::Serve drives the same protocol with blocking channel
// calls — one thread per client. The reactor host (core/reactor_host.h)
// cannot block, so this class re-expresses Serve as explicit
// transitions over complete frames:
//
//   kHandshake ──ClientHello──▶ kAwaitQuery          (v2)
//        │                          │  ▲
//        │ (v1)                     │QueryHeader
//        ▼                          ▼  │SumResponse
//   kAwaitChunks ◀──────────── kAwaitChunks
//        │IndexBatch*                │Goodbye/Error
//        ▼                          ▼
//      kDone ◀───────────────────kDone
//
// The caller feeds each complete inbound frame to OnFrame() and writes
// the returned frames to its transport in order; eviction and transport
// failure enter through OnDeadline()/OnTransportError(). Frame
// processing is CPU-heavy (key deserialization, homomorphic folds), so
// event loops run OnFrame on a worker pool, never on the loop thread.
//
// Semantics match ServerSession exactly: the same Error frames on the
// same inputs, v1 fallback, the zero-row rejection, and live-stats
// counter parity — queries_counter is bumped *before* the SumResponse
// frame is handed back, so a client that has its answer is guaranteed
// to find the query in the host's snapshot.

#ifndef PPSTATS_CORE_SESSION_FSM_H_
#define PPSTATS_CORE_SESSION_FSM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/query.h"
#include "core/query_exec.h"
#include "core/selected_sum.h"
#include "core/session.h"
#include "db/column_registry.h"

namespace ppstats {

/// Protocol phases of a server-side session.
enum class ServerFsmPhase : uint8_t {
  kHandshake,    ///< waiting for ClientHello
  kAwaitQuery,   ///< v2: waiting for QueryHeader / Goodbye
  kAwaitChunks,  ///< waiting for IndexBatch frames of the open query
  kDone,         ///< terminal; final_status() says how it ended
};

/// What one FSM entry point produced: frames to send, in order, and
/// whether the session reached its terminal state.
struct ServerFsmOutput {
  std::vector<Bytes> frames;
  bool done = false;
};

/// See the file comment. Not thread-safe: the owner must serialize
/// calls (the reactor host runs at most one worker task per session).
class ServerProtocolFsm {
 public:
  /// Mirrors ServerSession's constructor; `session_ordinal` becomes the
  /// 1-based session id in span contexts (0 = unattributed).
  ServerProtocolFsm(const ColumnRegistry* registry,
                    ServerSessionOptions options, uint64_t session_ordinal = 0);

  /// Consumes one complete inbound frame. CPU-heavy; run off the event
  /// loop. Frames arriving after kDone are ignored.
  ServerFsmOutput OnFrame(BytesView frame);

  /// The peer stalled past its I/O deadline: produces the eviction
  /// Error frame and moves to kDone with DeadlineExceeded.
  ServerFsmOutput OnDeadline();

  /// The transport died (EOF mid-protocol, reset, write failure): moves
  /// to kDone with `error`; nothing can be sent.
  void OnTransportError(Status error);

  ServerFsmPhase phase() const { return phase_; }
  bool done() const { return phase_ == ServerFsmPhase::kDone; }

  /// How the session ended (valid once done()): OK for a clean Goodbye
  /// (or completed v1 query), the abort status otherwise.
  const Status& final_status() const { return final_status_; }

  /// Counter parity with ServerSession::metrics().
  const SessionMetrics& metrics() const { return metrics_; }

 private:
  /// Appends an Error frame for `status` and terminates the session —
  /// the FSM's AbortWith.
  void Abort(ServerFsmOutput& out, Status status);
  void Finish(Status status);

  void OnHandshakeFrame(BytesView frame, ServerFsmOutput& out);
  void OnQueryFrame(BytesView frame, ServerFsmOutput& out);
  void OnChunkFrame(BytesView frame, ServerFsmOutput& out);
  /// Opens the v1 implicit query (plain sum over the default column).
  void OpenV1Query(ServerFsmOutput& out);

  const ColumnRegistry* registry_;
  ServerSessionOptions options_;
  uint64_t session_ordinal_;
  ServerFsmPhase phase_ = ServerFsmPhase::kHandshake;
  Status final_status_ = Status::OK();
  SessionMetrics metrics_;
  uint16_t version_ = 0;
  std::optional<PaillierPublicKey> pub_;
  std::shared_ptr<QueryRouter> router_;       // set at handshake
  std::unique_ptr<QueryExecution> execution_; // the open query, if any
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_SESSION_FSM_H_
