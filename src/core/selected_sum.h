// The selected-sum protocol of the paper (Figure 1), in sans-IO style.
//
//   Client                         Server (holds x_1..x_n)
//     E(I_1) ... E(I_n)  ------>     v = prod_i E(I_i)^{x_i} mod n^2
//                        <------     v
//     decrypt v  =>  sum_{I_i=1} x_i
//
// SumClient and SumServer produce and consume wire frames; a runner (or a
// real channel) moves the frames. Each side times its own cryptographic
// work, per chunk, so the harness can report the paper's component
// breakdown and the pipelined (batched) schedule of Section 3.2.
//
// Generalization: the client-side vector holds integer weights, not just
// 0/1 — E(w_i) yields the weighted sum sum_i w_i x_i (paper Section 2),
// from which weighted averages follow.

#ifndef PPSTATS_CORE_SELECTED_SUM_H_
#define PPSTATS_CORE_SELECTED_SUM_H_

#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "core/messages.h"
#include "crypto/pool.h"
#include "db/database.h"

namespace ppstats {

/// Client-side tuning knobs.
struct SumClientOptions {
  /// Rows per request frame. 0 sends the entire index vector in one
  /// frame (the paper's unoptimized protocol); the paper's batching
  /// experiment uses 100.
  size_t chunk_size = 0;

  /// When set, index encryptions come from this pool of precomputed
  /// encryptions (paper Section 3.3). The pool must be for the same key.
  EncryptionPool* encryption_pool = nullptr;

  /// When set (and encryption_pool is null), encryption uses precomputed
  /// r^n factors from this pool — two modular multiplications online.
  RandomnessPool* randomness_pool = nullptr;

  /// Global row index of this client's first weight. Used by the
  /// multi-client protocol, where client i covers one partition of the
  /// database and must address rows by their global position.
  size_t index_offset = 0;
};

/// Client endpoint: owns the private key and the (secret) weight vector.
class SumClient {
 public:
  /// Weighted-sum client. Weights must each be < n.
  SumClient(const PaillierPrivateKey& key, WeightVector weights,
            SumClientOptions options, RandomSource& rng);

  /// Selection (0/1-weight) client.
  SumClient(const PaillierPrivateKey& key, const SelectionVector& selection,
            SumClientOptions options, RandomSource& rng);

  /// True once every index chunk has been produced.
  bool RequestsDone() const { return next_index_ >= weights_.size(); }

  /// Encrypts and encodes the next chunk of the index vector.
  /// Fails with FailedPrecondition once RequestsDone().
  Result<Bytes> NextRequest();

  /// Decrypts the server's response; returns the (possibly blinded) sum.
  Result<BigInt> HandleResponse(BytesView frame);

  /// Number of request frames this client will send in total.
  size_t TotalChunks() const;

  // --- timing, for the experiment harness ---------------------------
  double encrypt_seconds() const { return encrypt_seconds_; }
  double decrypt_seconds() const { return decrypt_seconds_; }
  const std::vector<double>& chunk_encrypt_seconds() const {
    return chunk_encrypt_seconds_;
  }

  const PaillierPublicKey& public_key() const { return key_->public_key(); }

 private:
  const PaillierPrivateKey* key_;
  WeightVector weights_;
  SumClientOptions options_;
  RandomSource* rng_;
  size_t next_index_ = 0;
  double encrypt_seconds_ = 0;
  double decrypt_seconds_ = 0;
  std::vector<double> chunk_encrypt_seconds_;
};

/// Server-side options.
struct SumServerOptions {
  /// Additive blinding term folded into the response (multi-client
  /// protocol, Section 3.5). Empty => no blinding.
  std::optional<BigInt> blinding;

  /// Rows [partition_begin, partition_end) of the database this server
  /// session covers; {0, db->size()} by default.
  std::optional<std::pair<size_t, size_t>> partition;

  /// Exponentiate with x_i^2 instead of x_i, so the same index vector
  /// yields the selected sum of squares (for private variance). The
  /// squaring is a local server-side transform of its own data.
  bool square_values = false;

  /// Exponentiate with x_i * y_i where y_i comes from this second column
  /// (for private covariance). The second column must have the same
  /// size as the primary database. Mutually exclusive with
  /// square_values.
  const Database* product_with = nullptr;

  /// Worker slices for the per-chunk homomorphic product. The product
  /// is associative, so a chunk can be split into per-slice partial
  /// products and combined — the server-side counterpart of the paper's
  /// Section 3.5 client-side parallelization. Slices run on the shared
  /// persistent ThreadPool (no per-chunk thread spawn). 0 or 1 =
  /// single-threaded.
  size_t worker_threads = 1;
};

/// Server endpoint: owns (a partition of) the database and accumulates
/// the homomorphic product as index chunks arrive.
class SumServer {
 public:
  SumServer(PaillierPublicKey pub, const Database* db,
            SumServerOptions options = {});

  /// Consumes one request frame. Returns the encoded response frame once
  /// the last expected row has been processed, std::nullopt before that.
  Result<std::optional<Bytes>> HandleRequest(BytesView frame);

  /// True once the response has been produced.
  bool Finished() const { return finished_; }

  // --- timing --------------------------------------------------------
  double compute_seconds() const { return compute_seconds_; }
  const std::vector<double>& chunk_compute_seconds() const {
    return chunk_compute_seconds_;
  }

 private:
  size_t begin_ = 0;
  size_t end_ = 0;
  PaillierPublicKey pub_;
  const Database* db_;
  SumServerOptions options_;
  // Running product prod E(I_i)^{x_i}, kept in Montgomery form mod n^2
  // across all chunks; converted back to a canonical ciphertext exactly
  // once, when the response is produced.
  BigInt accumulator_mont_;
  size_t next_expected_ = 0;
  bool finished_ = false;
  double compute_seconds_ = 0;
  std::vector<double> chunk_compute_seconds_;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_SELECTED_SUM_H_
