// The selected-sum protocol of the paper (Figure 1), in sans-IO style.
//
//   Client                         Server (holds x_1..x_n)
//     E(I_1) ... E(I_n)  ------>     v = prod_i E(I_i)^{x_i} mod n^2
//                        <------     v
//     decrypt v  =>  sum_{I_i=1} x_i
//
// SumClient and SumServer produce and consume wire frames; a runner (or a
// real channel) moves the frames. Each side times its own cryptographic
// work, per chunk, so the harness can report the paper's component
// breakdown and the pipelined (batched) schedule of Section 3.2.
//
// Generalization: the client-side vector holds integer weights, not just
// 0/1 — E(w_i) yields the weighted sum sum_i w_i x_i (paper Section 2),
// from which weighted averages follow. On the server side, variance and
// covariance queries are not special cases here: a CompiledQuery (see
// core/query.h) carries the per-row exponent transform, partition, and
// blinding, and the fold itself lives in core/fold_engine.h.

#ifndef PPSTATS_CORE_SELECTED_SUM_H_
#define PPSTATS_CORE_SELECTED_SUM_H_

#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "core/fold_engine.h"
#include "core/messages.h"
#include "core/query.h"
#include "crypto/pool.h"
#include "db/database.h"

namespace ppstats {

/// Client-side tuning knobs.
struct SumClientOptions {
  /// Rows per request frame. 0 sends the entire index vector in one
  /// frame (the paper's unoptimized protocol); the paper's batching
  /// experiment uses 100.
  size_t chunk_size = 0;

  /// When set, index encryptions come from this pool of precomputed
  /// encryptions (paper Section 3.3). The pool must be for the same key.
  EncryptionPool* encryption_pool = nullptr;

  /// When set (and encryption_pool is null), encryption uses precomputed
  /// r^n factors from this pool — two modular multiplications online.
  RandomnessPool* randomness_pool = nullptr;

  /// Global row index of this client's first weight. Used by the
  /// multi-client protocol, where client i covers one partition of the
  /// database and must address rows by their global position.
  size_t index_offset = 0;
};

/// Client endpoint: owns the private key and the (secret) weight vector.
class SumClient {
 public:
  /// Weighted-sum client. Weights must each be < n.
  SumClient(const PaillierPrivateKey& key, WeightVector weights,
            SumClientOptions options, RandomSource& rng);

  /// Selection (0/1-weight) client.
  SumClient(const PaillierPrivateKey& key, const SelectionVector& selection,
            SumClientOptions options, RandomSource& rng);

  /// True once every index chunk has been produced.
  bool RequestsDone() const { return next_index_ >= weights_.size(); }

  /// Encrypts and encodes the next chunk of the index vector.
  /// Fails with FailedPrecondition once RequestsDone().
  [[nodiscard]] Result<Bytes> NextRequest();

  /// Decrypts the server's response; returns the (possibly blinded) sum.
  /// A SumClient runs one protocol execution: once a response has been
  /// handled, further calls fail with FailedPrecondition.
  [[nodiscard]] Result<BigInt> HandleResponse(BytesView frame);

  /// Number of request frames this client will send in total.
  size_t TotalChunks() const;

  // --- timing, for the experiment harness ---------------------------
  double encrypt_seconds() const { return encrypt_seconds_; }
  double decrypt_seconds() const { return decrypt_seconds_; }
  const std::vector<double>& chunk_encrypt_seconds() const {
    return chunk_encrypt_seconds_;
  }

  const PaillierPublicKey& public_key() const { return key_->public_key(); }

 private:
  const PaillierPrivateKey* key_;
  WeightVector weights_;
  SumClientOptions options_;
  RandomSource* rng_;
  size_t next_index_ = 0;
  bool response_handled_ = false;
  double encrypt_seconds_ = 0;
  double decrypt_seconds_ = 0;
  std::vector<double> chunk_encrypt_seconds_;
};

/// Server endpoint: executes one compiled query, accumulating the
/// homomorphic product as index chunks arrive.
class SumServer {
 public:
  /// Plain selected/weighted sum over the whole of `db` (the common
  /// case: session v1, the figure harnesses).
  SumServer(PaillierPublicKey pub, const Database* db);

  /// Executes `query` (see CompileQuery): the lowered exponent
  /// transform, partition, and blinding of any statistic kind. The
  /// referenced columns must outlive the server. `worker_threads`
  /// splits each chunk's fold across slices of the shared ThreadPool
  /// (the server-side counterpart of the paper's Section 3.5
  /// parallelization); 0 or 1 = single-threaded.
  SumServer(PaillierPublicKey pub, const CompiledQuery& query,
            size_t worker_threads = 1);

  /// Consumes one request frame. Returns the encoded response frame once
  /// the last expected row has been processed, std::nullopt before that.
  [[nodiscard]] Result<std::optional<Bytes>> HandleRequest(BytesView frame);

  /// True once the response has been produced.
  bool Finished() const { return finished_; }

  // --- timing --------------------------------------------------------
  double compute_seconds() const { return compute_seconds_; }
  const std::vector<double>& chunk_compute_seconds() const {
    return chunk_compute_seconds_;
  }

 private:
  PaillierPublicKey pub_;
  FoldEngine engine_;
  std::optional<BigInt> blinding_;
  bool finished_ = false;
  double compute_seconds_ = 0;
  std::vector<double> chunk_compute_seconds_;
};

}  // namespace ppstats

#endif  // PPSTATS_CORE_SELECTED_SUM_H_
