#include "core/query.h"

namespace ppstats {

Result<StatisticKind> StatisticKindFromWire(uint8_t wire) {
  switch (wire) {
    case static_cast<uint8_t>(StatisticKind::kSum):
      return StatisticKind::kSum;
    case static_cast<uint8_t>(StatisticKind::kSumOfSquares):
      return StatisticKind::kSumOfSquares;
    case static_cast<uint8_t>(StatisticKind::kProduct):
      return StatisticKind::kProduct;
    default:
      return Status::InvalidArgument("unknown statistic kind " +
                                     std::to_string(wire));
  }
}

const char* StatisticKindName(StatisticKind kind) {
  switch (kind) {
    case StatisticKind::kSum:
      return "sum";
    case StatisticKind::kSumOfSquares:
      return "sum-of-squares";
    case StatisticKind::kProduct:
      return "product";
  }
  return "?";
}

ExponentTransform ExponentTransform::Identity() {
  ExponentTransform t;
  t.kind_ = StatisticKind::kSum;
  return t;
}

ExponentTransform ExponentTransform::Square() {
  ExponentTransform t;
  t.kind_ = StatisticKind::kSumOfSquares;
  return t;
}

ExponentTransform ExponentTransform::ProductWith(const Database* second) {
  ExponentTransform t;
  t.kind_ = StatisticKind::kProduct;
  t.second_ = second;
  return t;
}

namespace {

// Lowering shared by both compile paths once the columns are resolved.
Result<CompiledQuery> Lower(const QuerySpec& spec, const Database* primary,
                            const Database* second) {
  if (primary == nullptr) {
    return Status::InvalidArgument("query has no primary column");
  }
  CompiledQuery query;
  query.column = primary;
  switch (spec.kind) {
    case StatisticKind::kSum:
      query.transform = ExponentTransform::Identity();
      break;
    case StatisticKind::kSumOfSquares:
      query.transform = ExponentTransform::Square();
      break;
    case StatisticKind::kProduct:
      if (second == nullptr) {
        return Status::InvalidArgument(
            "product query needs a second column");
      }
      if (second->size() != primary->size()) {
        return Status::InvalidArgument(
            "product column size != primary database size");
      }
      query.transform = ExponentTransform::ProductWith(second);
      break;
    default:
      return Status::InvalidArgument("unknown statistic kind");
  }
  if (spec.kind != StatisticKind::kProduct && second != nullptr) {
    return Status::InvalidArgument(
        "second column given for a single-column statistic");
  }
  query.begin = 0;
  query.end = primary->size();
  if (spec.partition.has_value()) {
    if (spec.partition->first > spec.partition->second ||
        spec.partition->second > primary->size()) {
      return Status::InvalidArgument("partition outside the column");
    }
    query.begin = spec.partition->first;
    query.end = spec.partition->second;
  }
  query.blinding = spec.blinding;
  return query;
}

}  // namespace

Result<CompiledQuery> CompileQuery(const QuerySpec& spec,
                                   const Database* primary,
                                   const Database* second) {
  return Lower(spec, primary, second);
}

Result<CompiledQuery> CompileQuery(const QuerySpec& spec,
                                   const ColumnRegistry& registry,
                                   const Database* default_column) {
  const Database* primary = spec.column.empty()
                                ? default_column
                                : registry.Find(spec.column);
  if (primary == nullptr) {
    return Status::NotFound(spec.column.empty()
                                ? "server has no default column"
                                : "unknown column: " + spec.column);
  }
  const Database* second = nullptr;
  if (spec.kind == StatisticKind::kProduct) {
    second = registry.Find(spec.column2);
    if (second == nullptr) {
      return Status::NotFound("unknown column: " + spec.column2);
    }
  } else if (!spec.column2.empty()) {
    return Status::InvalidArgument(
        "second column given for a single-column statistic");
  }
  return Lower(spec, primary, second);
}

}  // namespace ppstats
