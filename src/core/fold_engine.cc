#include "core/fold_engine.h"

#include <algorithm>
#include <iterator>

#include "bigint/modarith.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ppstats {

namespace {

uint32_t ReadU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Status ColumnRowSource::ReadRows(size_t begin, std::span<uint64_t> out) {
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = db_->value(begin + i);
  }
  return Status::OK();
}

Result<std::unique_ptr<FileRowSource>> FileRowSource::Open(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open column file: " + path);
  uint8_t header[4];
  file.read(reinterpret_cast<char*>(header), 4);
  if (!file) return Status::SerializationError("column file too short");
  size_t rows = ReadU32Le(header);

  file.seekg(0, std::ios::end);
  auto size = static_cast<uint64_t>(file.tellg());
  if (size != 4 + 4 * static_cast<uint64_t>(rows)) {
    return Status::SerializationError("column file size mismatch");
  }
  file.seekg(4);
  return std::unique_ptr<FileRowSource>(
      new FileRowSource(std::move(file), rows));
}

Status FileRowSource::ReadRows(size_t begin, std::span<uint64_t> out) {
  std::vector<uint8_t> raw(out.size() * 4);
  file_.seekg(4 + 4 * static_cast<std::streamoff>(begin));
  file_.read(reinterpret_cast<char*>(raw.data()),
             static_cast<std::streamsize>(raw.size()));
  if (!file_) return Status::Internal("column file read failed");
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = ReadU32Le(raw.data() + 4 * i);
  }
  peak_resident_rows_ = std::max(peak_resident_rows_, out.size());
  return Status::OK();
}

BigInt SlicedFoldMontgomery(const MontgomeryContext& mont, size_t count,
                            size_t worker_threads,
                            const FoldGatherFn& gather) {
  auto fold_range = [&mont, &gather](size_t begin, size_t end) -> BigInt {
    std::vector<BigInt> bases;
    std::vector<BigInt> exponents;
    bases.reserve(end - begin);
    exponents.reserve(end - begin);
    gather(begin, end, &bases, &exponents);
    return mont.MultiExpMontgomery(bases, exponents);
  };

  const size_t threads =
      std::min(worker_threads == 0 ? 1 : worker_threads,
               count == 0 ? size_t{1} : count);
  if (threads <= 1) return fold_range(0, count);

  std::vector<BigInt> partials(threads);
  const size_t stride = (count + threads - 1) / threads;
  ThreadPool::Shared().Run(threads, [&partials, &fold_range, stride,
                                     count](size_t t) {
    const size_t begin = std::min(t * stride, count);
    const size_t end = std::min(begin + stride, count);
    partials[t] = fold_range(begin, end);
  });
  BigInt product = partials[0];
  for (size_t t = 1; t < partials.size(); ++t) {
    product = mont.MulMontgomery(product, partials[t]);
  }
  return product;
}

BigInt SlicedMultiExpMontgomery(const MontgomeryContext& mont,
                                std::span<const BigInt> bases_mont,
                                std::span<const BigInt> exponents,
                                size_t worker_threads) {
  return SlicedFoldMontgomery(
      mont, bases_mont.size(), worker_threads,
      [&bases_mont, &exponents](size_t begin, size_t end,
                                std::vector<BigInt>* bases,
                                std::vector<BigInt>* exps) {
        for (size_t i = begin; i < end; ++i) {
          if (exponents[i].IsZero()) continue;
          bases->push_back(bases_mont[i]);
          exps->push_back(exponents[i]);
        }
      });
}

FoldEngine::FoldEngine(const PaillierPublicKey& pub,
                       std::unique_ptr<RowSource> rows,
                       ExponentTransform transform, size_t begin, size_t end,
                       size_t worker_threads)
    : pub_(pub),
      rows_(std::move(rows)),
      transform_(transform),
      end_(end),
      worker_threads_(worker_threads),
      next_expected_(begin),
      accumulator_mont_(pub_.mont_n2().OneMontgomery()) {}

Status FoldEngine::FoldChunk(size_t start_row,
                             std::span<const PaillierCiphertext> cts) {
  static obs::Counter* const chunks =
      obs::MetricRegistry::Global().GetCounter("fold.chunks");
  static obs::Counter* const rows =
      obs::MetricRegistry::Global().GetCounter("fold.rows");
  obs::ObsSpan span(obs::kSpanFold);
  if (done()) {
    return Status::FailedPrecondition("fold already covered its rows");
  }
  if (start_row != next_expected_) {
    return Status::ProtocolError("out-of-order index chunk");
  }
  if (start_row + cts.size() > end_) {
    return Status::ProtocolError("index chunk overruns the database");
  }

  std::vector<uint64_t> values(cts.size());
  PPSTATS_RETURN_IF_ERROR(rows_->ReadRows(start_row, values));

  const MontgomeryContext& mont = pub_.mont_n2();
  BigInt partial = SlicedFoldMontgomery(
      mont, cts.size(), worker_threads_,
      [this, &mont, &cts, &values, start_row](size_t begin, size_t end,
                                              std::vector<BigInt>* bases,
                                              std::vector<BigInt>* exps) {
        // Gather the slice's live rows first, then convert them to
        // Montgomery form in one batched call: the backend interleaves
        // the independent conversions instead of running one multiply
        // per row.
        std::vector<BigInt> raw;
        raw.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          BigInt exponent =
              transform_.RowExponent(start_row + i, values[i]);
          if (exponent.IsZero()) continue;  // E(I)^0 == 1: no-op factor
          raw.push_back(cts[i].value);
          exps->push_back(Mod(exponent, pub_.n()));
        }
        std::vector<BigInt> rows_mont = mont.ToMontgomeryBatch(raw);
        bases->insert(bases->end(),
                      std::make_move_iterator(rows_mont.begin()),
                      std::make_move_iterator(rows_mont.end()));
      });
  accumulator_mont_ = mont.MulMontgomery(accumulator_mont_, partial);
  next_expected_ = start_row + cts.size();
  chunks->Increment();
  rows->Add(cts.size());
  return Status::OK();
}

Result<PaillierCiphertext> FoldEngine::Finish(
    const std::optional<BigInt>& blinding) {
  if (!done()) {
    return Status::FailedPrecondition("fold has uncovered rows");
  }
  // The single conversion out of Montgomery form in the fold's lifetime.
  PaillierCiphertext out{pub_.mont_n2().FromMontgomery(accumulator_mont_)};
  if (blinding.has_value()) {
    return Paillier::AddPlaintext(pub_, out, *blinding);
  }
  return out;
}

}  // namespace ppstats
