// Sparse private selected sum: sublinear communication when the client
// selects m << n rows.
//
// The paper's opening observation about selective private function
// evaluation is that "general solutions can provide efficiency
// improvements whenever the number of data elements involved in the
// computation is significantly fewer than the total number". The linear
// protocol of Figure 1 ships one ciphertext per database row regardless
// of m; this module implements the sparse regime on top of blinded
// two-level PIR:
//
//   for each selected index i_j:
//     server picks a fresh blinding r_j and forms the cell vector
//       c_i = (x_i + r_j) mod M      (the whole database, blinded)
//     client retrieves c_{i_j} by two-level PIR         -> learns x_{i_j}+r_j
//   server reveals R = sum_j r_j mod M
//   client outputs sum_j (retrieved_j) - R  mod M
//
// Privacy:
//   * client privacy — indices travel only inside PIR selectors;
//   * database privacy — each retrieval yields one uniformly blinded
//     value (the two-level fold returns information about exactly one
//     cell), and the blindings only cancel in the final sum, so the
//     client learns the sum and nothing about individual values.
//
// Communication: m * O(sqrt(n)) ciphertexts versus n for the linear
// protocol — the sparse protocol wins when m is below ~sqrt(n).

#ifndef PPSTATS_PIR_SPARSE_SUM_H_
#define PPSTATS_PIR_SPARSE_SUM_H_

#include "pir/pir.h"

namespace ppstats {

/// Configuration for a sparse private sum.
struct SparseSumConfig {
  /// Blinding modulus M (a power of two <= 2^60). The true sum must be
  /// < M for the result to be exact; the default covers sums of 32-bit
  /// values over any database below 2^24 rows.
  uint64_t blind_modulus = uint64_t{1} << 56;
};

/// Result and cost of a sparse private sum.
struct SparseSumResult {
  BigInt total;  ///< the selected sum (mod M)
  TrafficStats client_to_server;
  TrafficStats server_to_client;
  double client_seconds = 0;
  double server_seconds = 0;
};

/// Privately sums db[indices[0]] + ... (duplicates allowed, each
/// occurrence counted). Fails on out-of-range indices, an empty index
/// list, or a non-power-of-two / oversized blinding modulus.
[[nodiscard]] Result<SparseSumResult> RunSparsePrivateSum(
    const PaillierPrivateKey& key, const Database& db,
    const std::vector<size_t>& indices, const SparseSumConfig& config,
    RandomSource& rng);

}  // namespace ppstats

#endif  // PPSTATS_PIR_SPARSE_SUM_H_
