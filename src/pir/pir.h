// Computational Private Information Retrieval over homomorphic
// encryption (Kushilevitz–Ostrovsky 1997 / Lipmaa 2005 construction).
//
// The selected-sum protocol moves one ciphertext per database row
// (linear communication). Canetti et al. — the paper's theoretical
// basis — also give sublinear-communication solutions; this module
// implements the classic homomorphic-PIR building block they rest on:
//
//   * Single-level: the database is an R x C matrix. The client sends C
//     encrypted column selectors; the server returns R ciphertexts, one
//     per row (each is E(M[i][target_col])). Communication O(sqrt(n))
//     ciphertexts for R = C = ceil(sqrt(n)).
//
//   * Two-level: the R row responses (values mod n^2) are themselves
//     selected with a second encrypted selector under a Damgård–Jurik
//     key with s = 2, whose plaintext space Z_{n^2} exactly fits a
//     level-1 ciphertext. The server returns ONE ciphertext mod n^3;
//     the client peels two layers of decryption. This is the recursion
//     trick that drives communication toward O(n^epsilon).
//
// Both variants run the real cryptography with byte-accurate traffic
// accounting, like the rest of the library.

#ifndef PPSTATS_PIR_PIR_H_
#define PPSTATS_PIR_PIR_H_

#include "crypto/damgard_jurik.h"
#include "crypto/paillier.h"
#include "db/database.h"
#include "net/channel.h"

namespace ppstats {

/// Matrix layout of a linear database for PIR.
struct PirLayout {
  size_t rows = 0;
  size_t cols = 0;

  /// Near-square layout covering `n` records.
  static PirLayout Square(size_t n);

  size_t RowOf(size_t index) const { return index / cols; }
  size_t ColOf(size_t index) const { return index % cols; }
};

/// Result and cost of one private retrieval.
struct PirRunResult {
  uint32_t value = 0;             ///< the retrieved record
  TrafficStats client_to_server;  ///< encrypted selectors
  TrafficStats server_to_client;  ///< encrypted response(s)
  double client_seconds = 0;
  double server_seconds = 0;
  PirLayout layout;
};

/// Retrieves db[index] without revealing `index`; O(sqrt(n))
/// ciphertexts in each direction.
[[nodiscard]] Result<PirRunResult> RunSingleLevelPir(const Database& db, size_t index,
                                                     const PaillierPrivateKey& key,
                                                     RandomSource& rng);

/// Two-level recursive retrieval: O(sqrt(n)) upstream, ONE ciphertext
/// downstream. Derives the level-2 Damgård–Jurik key (s=2) from `key`.
[[nodiscard]] Result<PirRunResult> RunTwoLevelPir(const Database& db, size_t index,
                                                  const PaillierPrivateKey& key,
                                                  RandomSource& rng);

/// Raw-cell variants over an arbitrary 64-bit vector (cells need not be
/// 32-bit database values; used by the sparse private-sum protocol,
/// which retrieves blinded cells). The retrieved value is returned as a
/// BigInt; `result.value` is meaningful only when the cell fits 32 bits.
struct PirRawResult {
  BigInt value;
  TrafficStats client_to_server;
  TrafficStats server_to_client;
  double client_seconds = 0;
  double server_seconds = 0;
  PirLayout layout;
};

[[nodiscard]] Result<PirRawResult> RunSingleLevelPirRaw(const std::vector<uint64_t>& cells,
                                                        size_t index,
                                                        const PaillierPrivateKey& key,
                                                        RandomSource& rng);

/// Note: the two-level response reveals exactly one cell to the client
/// (the fold selects a single row inside the encryption), which the
/// sparse-sum protocol relies on for database privacy.
[[nodiscard]] Result<PirRawResult> RunTwoLevelPirRaw(const std::vector<uint64_t>& cells,
                                                     size_t index,
                                                     const PaillierPrivateKey& key,
                                                     RandomSource& rng);

}  // namespace ppstats

#endif  // PPSTATS_PIR_PIR_H_
