#include "pir/pir.h"

#include <cmath>

#include "bigint/modarith.h"
#include "common/thread_pool.h"
#include "core/fold_engine.h"
#include "obs/span.h"

namespace ppstats {

namespace {

// The value at (row, col), or 0 beyond the end of the vector (the
// matrix may overhang the last row).
uint64_t CellValue(const std::vector<uint64_t>& cells,
                   const PirLayout& layout, size_t row, size_t col) {
  size_t index = row * layout.cols + col;
  return index < cells.size() ? cells[index] : 0;
}

std::vector<uint64_t> ToCells(const Database& db) {
  return std::vector<uint64_t>(db.values().begin(), db.values().end());
}

// Server-side row fold v_i = prod_j E(e_j)^{M[i][j]} = E(M[i][c]) for
// every row, via one Pippenger multi-exponentiation per row. The column
// selector is converted to Montgomery form once and shared by all rows;
// independent rows run on the persistent thread pool.
std::vector<PaillierCiphertext> FoldRows(
    const PaillierPublicKey& pub,
    const std::vector<PaillierCiphertext>& selector,
    const std::vector<uint64_t>& cells, const PirLayout& layout) {
  const MontgomeryContext& mont = pub.mont_n2();
  std::vector<BigInt> selector_mont;
  selector_mont.reserve(selector.size());
  for (const PaillierCiphertext& ct : selector) {
    selector_mont.push_back(mont.ToMontgomery(ct.value));
  }
  std::vector<PaillierCiphertext> responses(layout.rows);
  ThreadPool::Shared().Run(layout.rows, [&](size_t i) {
    std::vector<BigInt> exponents;
    exponents.reserve(layout.cols);
    for (size_t j = 0; j < layout.cols; ++j) {
      exponents.push_back(BigInt(CellValue(cells, layout, i, j)));
    }
    responses[i] = PaillierCiphertext{mont.FromMontgomery(
        SlicedMultiExpMontgomery(mont, selector_mont, exponents,
                                 /*worker_threads=*/1))};
  });
  return responses;
}

Result<PirRunResult> Narrow(Result<PirRawResult> raw) {
  if (!raw.ok()) return raw.status();
  PirRunResult out;
  if (!raw->value.FitsUint64() || raw->value.LowUint64() > 0xFFFFFFFFull) {
    return Status::Internal("retrieved record exceeds 32 bits");
  }
  out.value = static_cast<uint32_t>(raw->value.LowUint64());
  out.client_to_server = raw->client_to_server;
  out.server_to_client = raw->server_to_client;
  out.client_seconds = raw->client_seconds;
  out.server_seconds = raw->server_seconds;
  out.layout = raw->layout;
  return out;
}

}  // namespace

PirLayout PirLayout::Square(size_t n) {
  PirLayout layout;
  layout.cols = static_cast<size_t>(std::ceil(std::sqrt(
      static_cast<double>(n > 0 ? n : 1))));
  layout.rows = (n + layout.cols - 1) / layout.cols;
  if (layout.rows == 0) layout.rows = 1;
  return layout;
}

Result<PirRawResult> RunSingleLevelPirRaw(const std::vector<uint64_t>& cells,
                                          size_t index,
                                          const PaillierPrivateKey& key,
                                          RandomSource& rng) {
  if (index >= cells.size()) {
    return Status::InvalidArgument("record index out of range");
  }
  const PaillierPublicKey& pub = key.public_key();
  PirRawResult result;
  result.layout = PirLayout::Square(cells.size());
  const PirLayout& layout = result.layout;

  // --- Client: encrypted column selector e_j = [j == target_col]. -----
  const size_t target_col = layout.ColOf(index);
  const size_t target_row = layout.RowOf(index);
  std::vector<PaillierCiphertext> selector;
  {
    obs::ScopedPhaseTimer timer(&result.client_seconds,
                                obs::kSpanClientEncrypt);
    selector.reserve(layout.cols);
    for (size_t j = 0; j < layout.cols; ++j) {
      PPSTATS_ASSIGN_OR_RETURN(
          PaillierCiphertext ct,
          Paillier::Encrypt(pub, BigInt(j == target_col ? 1 : 0), rng));
      selector.push_back(std::move(ct));
    }
  }
  result.client_to_server.Record(layout.cols * pub.CiphertextBytes());

  // --- Server: per row, v_i = prod_j E(e_j)^{M[i][j]} = E(M[i][c]). ---
  std::vector<PaillierCiphertext> responses;
  {
    obs::ScopedPhaseTimer timer(&result.server_seconds,
                                obs::kSpanServerCompute);
    responses = FoldRows(pub, selector, cells, layout);
  }
  result.server_to_client.Record(layout.rows * pub.CiphertextBytes());

  // --- Client: decrypt only the target row. ---------------------------
  {
    obs::ScopedPhaseTimer timer(&result.client_seconds,
                                obs::kSpanClientDecrypt);
    PPSTATS_ASSIGN_OR_RETURN(result.value,
                             Paillier::Decrypt(key, responses[target_row]));
  }
  return result;
}

Result<PirRawResult> RunTwoLevelPirRaw(const std::vector<uint64_t>& cells,
                                       size_t index,
                                       const PaillierPrivateKey& key,
                                       RandomSource& rng) {
  if (index >= cells.size()) {
    return Status::InvalidArgument("record index out of range");
  }
  const PaillierPublicKey& pub = key.public_key();
  // Level-2 key: Damgård–Jurik with s = 2 over the same modulus, so its
  // plaintext space Z_{n^2} holds a level-1 ciphertext exactly.
  PPSTATS_ASSIGN_OR_RETURN(DjPrivateKey dj_key,
                           DjPrivateKey::FromPaillier(key, 2));
  const DjPublicKey& dj_pub = dj_key.public_key();

  PirRawResult result;
  result.layout = PirLayout::Square(cells.size());
  const PirLayout& layout = result.layout;
  const size_t target_col = layout.ColOf(index);
  const size_t target_row = layout.RowOf(index);

  // --- Client: column selector under level 1, row selector under
  // level 2. ------------------------------------------------------------
  std::vector<PaillierCiphertext> col_selector;
  std::vector<DjCiphertext> row_selector;
  {
    obs::ScopedPhaseTimer timer(&result.client_seconds,
                                obs::kSpanClientEncrypt);
    col_selector.reserve(layout.cols);
    for (size_t j = 0; j < layout.cols; ++j) {
      PPSTATS_ASSIGN_OR_RETURN(
          PaillierCiphertext ct,
          Paillier::Encrypt(pub, BigInt(j == target_col ? 1 : 0), rng));
      col_selector.push_back(std::move(ct));
    }
    row_selector.reserve(layout.rows);
    for (size_t i = 0; i < layout.rows; ++i) {
      PPSTATS_ASSIGN_OR_RETURN(
          DjCiphertext ct,
          DamgardJurik::Encrypt(dj_pub, BigInt(i == target_row ? 1 : 0),
                                rng));
      row_selector.push_back(std::move(ct));
    }
  }
  result.client_to_server.Record(layout.cols * pub.CiphertextBytes());
  result.client_to_server.Record(layout.rows * dj_pub.CiphertextBytes());

  // --- Server: level 1 as before, then fold the row responses into a
  // single level-2 ciphertext: w = prod_i E2(s_i)^{v_i} = E2(v_target).
  // The level-2 combine is itself a multi-exponentiation: bases are the
  // row selector, exponents the level-1 row values (valid level-2
  // plaintexts, since each is in [0, n^2)).
  obs::ScopedPhaseTimer server_timer(&result.server_seconds,
                                     obs::kSpanServerCompute);
  std::vector<PaillierCiphertext> row_values =
      FoldRows(pub, col_selector, cells, layout);
  std::vector<BigInt> row_exponents;
  row_exponents.reserve(layout.rows);
  for (const PaillierCiphertext& v : row_values) {
    row_exponents.push_back(v.value);
  }
  DjCiphertext folded =
      DamgardJurik::WeightedFold(dj_pub, row_selector, row_exponents);
  server_timer.Stop();
  result.server_to_client.Record(dj_pub.CiphertextBytes());

  // --- Client: peel level 2, then level 1. -----------------------------
  {
    obs::ScopedPhaseTimer timer(&result.client_seconds,
                                obs::kSpanClientDecrypt);
    PPSTATS_ASSIGN_OR_RETURN(BigInt inner,
                             DamgardJurik::Decrypt(dj_key, folded));
    PPSTATS_ASSIGN_OR_RETURN(
        result.value, Paillier::Decrypt(key, PaillierCiphertext{inner}));
  }
  return result;
}

Result<PirRunResult> RunSingleLevelPir(const Database& db, size_t index,
                                       const PaillierPrivateKey& key,
                                       RandomSource& rng) {
  return Narrow(RunSingleLevelPirRaw(ToCells(db), index, key, rng));
}

Result<PirRunResult> RunTwoLevelPir(const Database& db, size_t index,
                                    const PaillierPrivateKey& key,
                                    RandomSource& rng) {
  return Narrow(RunTwoLevelPirRaw(ToCells(db), index, key, rng));
}

}  // namespace ppstats
