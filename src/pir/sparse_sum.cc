#include "pir/sparse_sum.h"

#include <bit>

#include "bigint/modarith.h"
#include "net/wire.h"
#include "obs/span.h"

namespace ppstats {

Result<SparseSumResult> RunSparsePrivateSum(
    const PaillierPrivateKey& key, const Database& db,
    const std::vector<size_t>& indices, const SparseSumConfig& config,
    RandomSource& rng) {
  if (indices.empty()) {
    return Status::InvalidArgument("no indices selected");
  }
  if (db.empty()) {
    return Status::InvalidArgument("database is empty");
  }
  const uint64_t m_mod = config.blind_modulus;
  if (!std::has_single_bit(m_mod) || m_mod > (uint64_t{1} << 60)) {
    return Status::InvalidArgument(
        "blinding modulus must be a power of two <= 2^60");
  }
  if (m_mod <= 0xFFFFFFFFull) {
    return Status::InvalidArgument(
        "blinding modulus must exceed the 32-bit value range");
  }
  for (size_t index : indices) {
    if (index >= db.size()) {
      return Status::InvalidArgument("selected index out of range");
    }
  }

  SparseSumResult result;
  BigInt running(0);
  uint64_t blinding_sum = 0;

  std::vector<uint64_t> blinded(db.size());
  for (size_t query = 0; query < indices.size(); ++query) {
    // Server: blind the whole table with a fresh r_j.
    {
      obs::ScopedPhaseTimer timer(&result.server_seconds,
                                  obs::kSpanServerCompute);
      uint64_t r = rng.NextBelow(m_mod);
      blinding_sum = (blinding_sum + r) & (m_mod - 1);
      for (size_t i = 0; i < db.size(); ++i) {
        blinded[i] = (db.value(i) + r) & (m_mod - 1);
      }
    }

    // Client retrieves its blinded cell; the two-level response carries
    // exactly one cell, so nothing else about the blinded table leaks.
    PPSTATS_ASSIGN_OR_RETURN(
        PirRawResult pir,
        RunTwoLevelPirRaw(blinded, indices[query], key, rng));
    result.client_to_server += pir.client_to_server;
    result.server_to_client += pir.server_to_client;
    result.client_seconds += pir.client_seconds;
    result.server_seconds += pir.server_seconds;
    running += pir.value;
  }

  // Server reveals the aggregate blinding (uniform; reveals nothing).
  WireWriter reveal;
  reveal.WriteU64(blinding_sum);
  result.server_to_client.Record(reveal.size());

  // Client unblinds the sum.
  {
    obs::ScopedPhaseTimer timer(&result.client_seconds,
                                obs::kSpanClientDecrypt);
    BigInt m_big(m_mod);
    result.total = Mod(running - BigInt(blinding_sum), m_big);
  }
  return result;
}

}  // namespace ppstats
