#include "sim/pipeline.h"

#include <algorithm>

namespace ppstats {

Result<double> PipelineSchedule::Makespan(
    const std::vector<std::vector<double>>& stage_durations) {
  if (stage_durations.empty()) return 0.0;
  const size_t chunks = stage_durations[0].size();
  for (const auto& stage : stage_durations) {
    if (stage.size() != chunks) {
      return Status::InvalidArgument(
          "all pipeline stages must have the same chunk count");
    }
  }
  if (chunks == 0) return 0.0;

  // finish[s] holds the completion time of the current chunk in stage s.
  std::vector<double> finish(stage_durations.size(), 0.0);
  for (size_t i = 0; i < chunks; ++i) {
    double prev_stage_done = 0.0;
    for (size_t s = 0; s < stage_durations.size(); ++s) {
      double start = std::max(prev_stage_done, finish[s]);
      finish[s] = start + stage_durations[s][i];
      prev_stage_done = finish[s];
    }
  }
  return finish.back();
}

double PipelineSchedule::SequentialTotal(
    const std::vector<std::vector<double>>& stage_durations) {
  double total = 0;
  for (const auto& stage : stage_durations) {
    for (double d : stage) total += d;
  }
  return total;
}

}  // namespace ppstats
