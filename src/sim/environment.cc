#include "sim/environment.h"

namespace ppstats {

ExecutionEnvironment ExecutionEnvironment::ShortDistance2004() {
  return ExecutionEnvironment{
      .name = "short-distance-2004",
      // Calibrated so that ~100,000 encryptions of a 512-bit-key index
      // vector take on the order of 20 minutes, as in the paper's Fig 2.
      .client_cpu_scale = 32.0,
      .server_cpu_scale = 32.0,
      .network = NetworkModel::LanSwitch(),
  };
}

ExecutionEnvironment ExecutionEnvironment::LongDistance2004() {
  return ExecutionEnvironment{
      .name = "long-distance-2004",
      // 500 MHz UltraSparc client: slower still than the cluster nodes
      // (the paper observes computation > communication even at 56 Kbps).
      .client_cpu_scale = 60.0,
      .server_cpu_scale = 30.0,  // 1 GHz Pentium server
      .network = NetworkModel::Modem56k(),
  };
}

ExecutionEnvironment ExecutionEnvironment::Modern() {
  return ExecutionEnvironment{
      .name = "modern",
      .client_cpu_scale = 1.0,
      .server_cpu_scale = 1.0,
      .network = NetworkModel::LanSwitch(),
  };
}

}  // namespace ppstats
