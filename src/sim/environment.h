// Execution environments: CPU-scaling + network presets that map our
// measurements onto the paper's 2004 testbeds.
//
// The paper ran on 2 GHz Pentium-III-class cluster nodes (short distance,
// Figures 2/4/5/7), and on a 500 MHz UltraSparc client talking to a 1 GHz
// Pentium server over dial-up (long distance, Figures 3/6). We measure
// compute time on today's hardware and multiply by a per-host calibration
// factor so the reported magnitudes land in the paper's range; the
// *relative* component breakdown and optimization gains are unaffected by
// the scaling (see DESIGN.md).

#ifndef PPSTATS_SIM_ENVIRONMENT_H_
#define PPSTATS_SIM_ENVIRONMENT_H_

#include <string>

#include "net/network_model.h"

namespace ppstats {

/// A complete experimental environment: two hosts plus the link.
struct ExecutionEnvironment {
  std::string name;
  double client_cpu_scale = 1.0;  ///< measured seconds -> environment seconds
  double server_cpu_scale = 1.0;
  NetworkModel network;

  /// Paper Figures 2/4/5/7/9: cluster nodes, high-performance switch.
  /// The CPU scale calibrates a modern core to the paper's 2 GHz P-III
  /// (~16x slower on modular exponentiation workloads).
  static ExecutionEnvironment ShortDistance2004();

  /// Paper Figures 3/6: 500 MHz UltraSparc client (Chicago), 1 GHz
  /// Pentium server (Hoboken), 56 Kbps dial-up.
  static ExecutionEnvironment LongDistance2004();

  /// Today's hardware, LAN; no scaling.
  static ExecutionEnvironment Modern();
};

}  // namespace ppstats

#endif  // PPSTATS_SIM_ENVIRONMENT_H_
