// Pipeline schedule model for the batching optimization (paper Sec 3.2).
//
// With batching, the client encrypts chunk i+1 while chunk i is in
// flight and chunk i-1 is being processed by the server. Total elapsed
// time is the makespan of a K-stage pipeline where stage s of chunk i
// starts when stage s of chunk i-1 AND stage s-1 of chunk i have both
// finished.

#ifndef PPSTATS_SIM_PIPELINE_H_
#define PPSTATS_SIM_PIPELINE_H_

#include <vector>

#include "common/result.h"

namespace ppstats {

/// Computes pipelined makespans from per-chunk stage durations.
class PipelineSchedule {
 public:
  /// `stage_durations[s][i]` is the duration of stage `s` for chunk `i`.
  /// All stages must have the same chunk count. Returns the pipelined
  /// makespan (seconds).
  [[nodiscard]] static Result<double> Makespan(
      const std::vector<std::vector<double>>& stage_durations);

  /// Sequential (unpipelined) total: the sum of every duration.
  static double SequentialTotal(
      const std::vector<std::vector<double>>& stage_durations);
};

}  // namespace ppstats

#endif  // PPSTATS_SIM_PIPELINE_H_
