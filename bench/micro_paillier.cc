// google-benchmark microbenchmarks for the Paillier cryptosystem: the
// per-operation costs behind every figure in the paper. The client's
// figure-2 encryption time is n x BM_Encrypt; the server's time is
// n x BM_ScalarMultiply32.

#include <benchmark/benchmark.h>

#include "bench/microlib.h"

#include "bigint/modarith.h"
#include "crypto/chacha20_rng.h"
#include "crypto/paillier.h"
#include "crypto/pool.h"

namespace ppstats {
namespace {

const PaillierKeyPair& KeyPair(size_t bits) {
  static PaillierKeyPair* cache[4096] = {};
  if (cache[bits] == nullptr) {
    ChaCha20Rng rng(616161 + bits);
    cache[bits] =
        new PaillierKeyPair(Paillier::GenerateKeyPair(bits, rng).ValueOrDie());
  }
  return *cache[bits];
}

void BM_KeyGeneration(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    ChaCha20Rng rng(seed++);
    benchmark::DoNotOptimize(Paillier::GenerateKeyPair(bits, rng).ValueOrDie());
  }
}
BENCHMARK(BM_KeyGeneration)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_Encrypt(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  const PaillierKeyPair& kp = KeyPair(bits);
  ChaCha20Rng rng(1);
  BigInt m(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::Encrypt(kp.public_key, m, rng).ValueOrDie());
  }
}
BENCHMARK(BM_Encrypt)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_EncryptWithPrecomputedFactor(benchmark::State& state) {
  // The online cost of the paper's Section 3.3 preprocessing:
  // two modular multiplications instead of a full exponentiation.
  const PaillierKeyPair& kp = KeyPair(512);
  ChaCha20Rng rng(2);
  BigInt factor = Paillier::GenerateRandomFactor(kp.public_key, rng);
  BigInt m(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::EncryptWithFactor(kp.public_key, m, factor).ValueOrDie());
  }
}
BENCHMARK(BM_EncryptWithPrecomputedFactor);

void BM_DecryptCrt(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  const PaillierKeyPair& kp = KeyPair(bits);
  ChaCha20Rng rng(3);
  PaillierCiphertext ct =
      Paillier::Encrypt(kp.public_key, BigInt(42), rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Paillier::Decrypt(kp.private_key, ct).ValueOrDie());
  }
}
BENCHMARK(BM_DecryptCrt)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_DecryptDirect(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  const PaillierKeyPair& kp = KeyPair(bits);
  ChaCha20Rng rng(4);
  PaillierCiphertext ct =
      Paillier::Encrypt(kp.public_key, BigInt(42), rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::DecryptDirect(kp.private_key, ct).ValueOrDie());
  }
}
BENCHMARK(BM_DecryptDirect)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_HomomorphicAdd(benchmark::State& state) {
  const PaillierKeyPair& kp = KeyPair(512);
  ChaCha20Rng rng(5);
  PaillierCiphertext a =
      Paillier::Encrypt(kp.public_key, BigInt(1), rng).ValueOrDie();
  PaillierCiphertext b =
      Paillier::Encrypt(kp.public_key, BigInt(2), rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Paillier::Add(kp.public_key, a, b));
  }
}
BENCHMARK(BM_HomomorphicAdd);

void BM_ScalarMultiply32(benchmark::State& state) {
  // One server step of the selected-sum protocol: E(I_i)^{x_i} with a
  // 32-bit database value.
  const PaillierKeyPair& kp = KeyPair(512);
  ChaCha20Rng rng(6);
  PaillierCiphertext ct =
      Paillier::Encrypt(kp.public_key, BigInt(1), rng).ValueOrDie();
  BigInt value(0x9ABCDEF0u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::ScalarMultiply(kp.public_key, ct, value));
  }
}
BENCHMARK(BM_ScalarMultiply32);

void BM_PoolGenerateFactor(benchmark::State& state) {
  // The offline cost the preprocessing optimization pays per element.
  const PaillierKeyPair& kp = KeyPair(512);
  ChaCha20Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::GenerateRandomFactor(kp.public_key, rng));
  }
}
BENCHMARK(BM_PoolGenerateFactor);

void BM_SerializeCiphertext(benchmark::State& state) {
  const PaillierKeyPair& kp = KeyPair(512);
  ChaCha20Rng rng(8);
  PaillierCiphertext ct =
      Paillier::Encrypt(kp.public_key, BigInt(7), rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Paillier::SerializeCiphertext(kp.public_key, ct));
  }
}
BENCHMARK(BM_SerializeCiphertext);

}  // namespace
}  // namespace ppstats

PPSTATS_MICRO_BENCH_MAIN("micro_paillier")
