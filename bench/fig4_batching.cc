// Figure 4: overall runtime with vs without batching of the index vector
// (chunk size 100), short distance.
//
// Paper's finding: pipelining client encryption, transfer, and server
// processing of successive chunks yields roughly a 10% reduction in
// overall runtime (encryption dominates, so the overlap can only hide
// the smaller components).

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();

  std::vector<size_t> sizes = DatabaseSizes();
  std::vector<double> unbatched, batched;
  for (size_t n : sizes) {
    // One measured execution; the two series are the same work under the
    // sequential (no overlap) and pipelined schedules. Using one run for
    // both keeps run-to-run CPU noise out of the comparison.
    MeasuredRun chunked = MeasureSelectedSum(
        keys, n, MeasureOptions{.chunk_size = kPaperChunk, .seed = 4004});
    unbatched.push_back(ToMinutes(chunked.metrics.SequentialSeconds(env)));
    batched.push_back(
        ToMinutes(chunked.metrics.PipelinedSeconds(env).ValueOrDie()));
  }
  PrintComparisonTable(
      "Figure 4: overall runtime with and without batching (chunk=100), "
      "short distance",
      "no optimization (min)", "with batching (min)", sizes, unbatched,
      batched);
  EmitComparisonJson("fig4", "no optimization", "with batching", sizes,
                     unbatched, batched);

  double reduction =
      100.0 * (1.0 - batched.back() / unbatched.back());
  std::printf("runtime reduction at n=%zu: %.1f%% (paper: ~10%%)\n\n",
              sizes.back(), reduction);
  return 0;
}
