// Ablation: multithreaded server computation. The homomorphic product
// is associative, so the server's n scalar-multiplications parallelize
// across cores — the server-side mirror of the paper's multi-client
// parallelization of encryption (Sec 3.5). After preprocessing (Fig 5)
// the server IS the online bottleneck, so this knob directly shortens
// the optimized protocol's critical path.

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  const size_t n = FullScale() ? 20000 : 3000;

  ChaCha20Rng rng(2100);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n);
  SelectionVector sel = gen.RandomSelection(n, n / 2);
  uint64_t truth = db.SelectedSum(sel).ValueOrDie();

  std::printf("Ablation: server worker threads at n=%zu (measured)\n", n);
  std::printf("%10s %16s %10s\n", "threads", "server (s)", "speedup");
  double base = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ChaCha20Rng run_rng(2101 + threads);
    SumClient client(keys.private_key, sel, {}, run_rng);
    CompiledQuery query = CompileQuery(QuerySpec{}, &db).ValueOrDie();
    SumServer server(keys.public_key, query, threads);
    SumRunResult result = RunSelectedSum(client, server).ValueOrDie();
    if (result.sum != BigInt(truth)) {
      std::printf("CORRECTNESS FAILURE at %zu threads\n", threads);
      return 1;
    }
    double seconds = result.metrics.server_compute_s;
    if (threads == 1) base = seconds;
    std::printf("%10zu %16.3f %10.2f\n", threads, seconds,
                base / seconds);
  }
  std::printf(
      "\nexpected shape: near-linear until the core count of the machine; "
      "on a single-core\nrunner the speedup stays ~1x (correctness is the "
      "point of this table there).\n\n");
  return 0;
}
