// Figure 9: performance improvement from secret sharing across multiple
// clients (k = 3), plus a k-sweep ablation.
//
// Paper's finding: three cooperating clients reduce overall execution
// time by a factor of ~2.99 (k-fold minus a small combining overhead).
// The paper measured this with its Java implementation; we reproduce the
// ratio with the C++ stack (the ratio is language-independent).

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();

  // Independent key pairs for up to 8 clients.
  std::vector<const PaillierPrivateKey*> keys;
  std::vector<PaillierKeyPair> storage;
  storage.reserve(8);
  for (uint64_t i = 0; i < 8; ++i) {
    ChaCha20Rng rng(919100 + i);
    storage.push_back(
        Paillier::GenerateKeyPair(kPaperKeyBits, rng).ValueOrDie());
  }
  for (const PaillierKeyPair& kp : storage) keys.push_back(&kp.private_key);

  std::vector<size_t> sizes = DatabaseSizes();
  std::vector<double> single, multi3;
  for (size_t n : sizes) {
    ChaCha20Rng rng(9004 + n);
    WorkloadGenerator gen(rng);
    Database db = gen.UniformDatabase(n);
    SelectionVector sel = gen.RandomSelection(n, n / 2);
    uint64_t truth = db.SelectedSum(sel).ValueOrDie();

    MultiClientRunResult result =
        RunMultiClientSum({keys.begin(), keys.begin() + 3}, db, sel, {},
                          rng)
            .ValueOrDie();
    if (result.total != BigInt(truth)) {
      std::printf("CORRECTNESS FAILURE at n=%zu\n", n);
      return 1;
    }
    single.push_back(ToMinutes(result.SequentialSeconds(env)));
    multi3.push_back(ToMinutes(result.ParallelSeconds(env)));
  }
  PrintComparisonTable(
      "Figure 9: overall runtime without vs with secret sharing (k=3)",
      "single client (min)", "k=3 clients (min)", sizes, single, multi3);
  EmitComparisonJson("fig9", "single client", "k=3 clients", sizes, single,
                     multi3);
  std::printf("speedup at n=%zu: %.2fx (paper: ~2.99x for k=3)\n\n",
              sizes.back(), single.back() / multi3.back());

  // Ablation: k-sweep at the largest size (paper: ~k-fold reduction).
  size_t n = sizes.back();
  ChaCha20Rng rng(9104 + n);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n);
  SelectionVector sel = gen.RandomSelection(n, n / 2);
  std::printf("Ablation: client count sweep at n=%zu\n", n);
  std::printf("%6s %18s %10s\n", "k", "parallel (min)", "speedup");
  for (size_t k = 2; k <= 8; k *= 2) {
    MultiClientRunResult result =
        RunMultiClientSum({keys.begin(), keys.begin() + k}, db, sel, {},
                          rng)
            .ValueOrDie();
    double par = result.ParallelSeconds(env);
    double seq = result.SequentialSeconds(env);
    std::printf("%6zu %18.4f %10.2f\n", k, ToMinutes(par), seq / par);
  }
  std::printf("\n");
  return 0;
}
