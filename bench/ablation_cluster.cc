// Ablation: coordinator scatter-gather throughput vs shard count. One
// logical column of fixed total size is served by 1/2/4/8 ppstats
// shard hosts behind a ShardCoordinator, all over TCP loopback, and
// the table reports whole queries per second through the coordinator.
// The client's index vector is encrypted and framed ONCE outside the
// timing loop and replayed over a raw channel each iteration, so the
// measured path is exactly the fan-out: header round-trip, index
// upload, per-shard slicing, shard folds, homomorphic merge. With the
// total rows fixed, each shard folds 1/N of the column; q/s should
// rise (or at worst hold) as shards are added.
//
// BM_ClusterPartialQuery is the shard-kill point: a 4-shard cluster
// with one shard stopped and the partial-result policy enabled, so
// every query pays the dead-shard dial and answers with a flagged
// PartialResult (tag 11) over the three survivors — the price of a
// degraded-but-answering cluster.
//
// Emits BENCH_ablation_cluster.json under PPSTATS_BENCH_JSON_DIR via
// bench/microlib. Results are checked against the plaintext sum
// outside the timing loop; a mismatch fails the benchmark.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/microlib.h"
#include "cluster/coordinator.h"
#include "common/thread_pool.h"
#include "core/messages.h"
#include "core/service_host.h"
#include "core/session.h"
#include "crypto/chacha20_rng.h"
#include "crypto/key_io.h"
#include "db/column_registry.h"
#include "db/database.h"
#include "net/socket_channel.h"

namespace ppstats {
namespace {

constexpr size_t kTotalRows = 256;
constexpr size_t kKeyBits = 256;

const PaillierKeyPair& SharedKey() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(727272);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(kKeyBits, rng).ValueOrDie());
  }();
  return *kp;
}

/// An in-process cluster on TCP loopback: `shards` shard hosts plus a
/// coordinator host, one logical column "v" of kTotalRows rows.
struct BenchCluster {
  std::vector<uint32_t> values;
  std::vector<std::unique_ptr<ColumnRegistry>> shard_registries;
  std::vector<std::unique_ptr<ServiceHost>> shard_hosts;
  ColumnRegistry map_registry;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<ShardCoordinator> coordinator;
  std::unique_ptr<ServiceHost> host;

  ~BenchCluster() {
    if (host != nullptr) host->Stop();
    for (auto& shard : shard_hosts) {
      if (shard != nullptr) shard->Stop();
    }
  }
};

std::unique_ptr<BenchCluster> StartCluster(size_t shards,
                                           PartialResultPolicy policy) {
  auto cluster = std::make_unique<BenchCluster>();
  const size_t rows_per_shard = kTotalRows / shards;
  std::vector<ShardDescriptor> map;
  for (size_t s = 0; s < shards; ++s) {
    std::vector<uint32_t> slice(rows_per_shard);
    for (size_t r = 0; r < rows_per_shard; ++r) {
      slice[r] = static_cast<uint32_t>(7 * (s * rows_per_shard + r) + 3);
      cluster->values.push_back(slice[r]);
    }
    auto registry = std::make_unique<ColumnRegistry>();
    if (!registry->Register(Database("v", std::move(slice))).ok()) {
      return nullptr;
    }
    ServiceHostOptions options;
    options.engine = ServiceEngine::kThreaded;
    auto host = std::make_unique<ServiceHost>(registry.get(), options);
    if (!host->Start("tcp:127.0.0.1:0").ok()) return nullptr;
    ShardDescriptor shard;
    shard.id = static_cast<uint32_t>(s);
    shard.uri = host->bound_uri();
    shard.begin = s * rows_per_shard;
    shard.end = (s + 1) * rows_per_shard;
    map.push_back(std::move(shard));
    cluster->shard_registries.push_back(std::move(registry));
    cluster->shard_hosts.push_back(std::move(host));
  }
  if (!cluster->map_registry.SetShards("v", std::move(map)).ok()) {
    return nullptr;
  }

  cluster->pool = std::make_unique<ThreadPool>(shards);
  CoordinatorOptions coordinator_options;
  coordinator_options.shard_attempts = 1;
  coordinator_options.shard_io_deadline_ms = 10000;
  coordinator_options.connect_deadline_ms = 2000;
  coordinator_options.partial_policy = policy;
  coordinator_options.pool = cluster->pool.get();
  cluster->coordinator = std::make_unique<ShardCoordinator>(
      &cluster->map_registry, coordinator_options);
  if (!cluster->coordinator->Validate().ok()) return nullptr;

  ServiceHostOptions host_options;
  host_options.engine = ServiceEngine::kThreaded;
  host_options.router_factory = cluster->coordinator->RouterFactory();
  cluster->host =
      std::make_unique<ServiceHost>(&cluster->map_registry, host_options);
  if (!cluster->host->Start("tcp:127.0.0.1:0").ok()) return nullptr;
  return cluster;
}

/// A raw v2 session with every client frame pre-encoded: handshake on
/// construction, then Query() replays the identical header + index
/// frames and reads one response per call.
class ReplayClient {
 public:
  /// Selects every third row of [0, kTotalRows).
  Status Open(const std::string& uri) {
    Result<std::unique_ptr<Channel>> dialed = ConnectChannel(uri);
    if (!dialed.ok()) return dialed.status();
    channel_ = std::move(*dialed);

    ClientHelloMessage hello;
    hello.protocol_version = kSessionProtocolV2;
    hello.public_key_blob = SerializePublicKey(SharedKey().public_key);
    PPSTATS_RETURN_IF_ERROR(channel_->Send(hello.Encode()));
    Result<Bytes> reply = channel_->Receive();
    if (!reply.ok()) return reply.status();
    Result<ServerHelloMessage> server_hello =
        ServerHelloMessage::Decode(*reply);
    if (!server_hello.ok()) return server_hello.status();

    QueryHeaderMessage header;
    header.kind = 1;  // kSum
    header.column = "v";
    header_frame_ = header.Encode();

    ChaCha20Rng rng(99);
    IndexBatchMessage batch;
    batch.start_index = 0;
    batch.ciphertexts.reserve(kTotalRows);
    for (size_t i = 0; i < kTotalRows; ++i) {
      const bool selected = i % 3 == 0;
      Result<PaillierCiphertext> bit = Paillier::Encrypt(
          SharedKey().public_key, BigInt(selected ? 1 : 0), rng);
      if (!bit.ok()) return bit.status();
      batch.ciphertexts.push_back(std::move(*bit));
    }
    index_frame_ = batch.Encode(SharedKey().public_key);
    return Status::OK();
  }

  /// One full query; returns the raw response frame.
  Result<Bytes> Query() {
    PPSTATS_RETURN_IF_ERROR(channel_->Send(header_frame_));
    Result<Bytes> accept = channel_->Receive();
    if (!accept.ok()) return accept.status();
    Result<MessageType> type = PeekMessageType(*accept);
    if (!type.ok()) return type.status();
    if (*type == MessageType::kError) return StatusFromErrorFrame(*accept);
    PPSTATS_RETURN_IF_ERROR(channel_->Send(index_frame_));
    return channel_->Receive();
  }

  uint64_t ExpectedSum(const std::vector<uint32_t>& values) const {
    uint64_t sum = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      if (i % 3 == 0) sum += values[i];
    }
    return sum;
  }

 private:
  std::unique_ptr<Channel> channel_;
  Bytes header_frame_;
  Bytes index_frame_;
};

void BM_ClusterQuery(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  auto cluster = StartCluster(shards, PartialResultPolicy::kFail);
  if (cluster == nullptr) {
    state.SkipWithError("cluster failed to start");
    return;
  }
  ReplayClient client;
  Status opened = client.Open(cluster->host->bound_uri());
  if (!opened.ok()) {
    state.SkipWithError(opened.ToString().c_str());
    return;
  }

  Bytes last_response;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    Result<Bytes> response = client.Query();
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    last_response = std::move(*response);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Correctness, outside the timing loop.
  Result<SumResponseMessage> sum =
      SumResponseMessage::Decode(SharedKey().public_key, last_response);
  if (!sum.ok()) {
    state.SkipWithError(sum.status().ToString().c_str());
    return;
  }
  Result<BigInt> total = Paillier::Decrypt(SharedKey().private_key, sum->sum);
  if (!total.ok() || *total != BigInt(client.ExpectedSum(cluster->values))) {
    state.SkipWithError("merged sum does not match the plaintext sum");
    return;
  }
  // Wall-clock rate: the loop blocks on sockets, so CPU-time rates
  // would flatter the coordinator enormously.
  state.counters["queries_per_s"] =
      static_cast<double>(state.iterations()) / wall_s;
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ClusterQuery)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterPartialQuery(benchmark::State& state) {
  auto cluster = StartCluster(4, PartialResultPolicy::kPartial);
  if (cluster == nullptr) {
    state.SkipWithError("cluster failed to start");
    return;
  }
  cluster->shard_hosts[3]->Stop();  // the shard-kill point
  ReplayClient client;
  Status opened = client.Open(cluster->host->bound_uri());
  if (!opened.ok()) {
    state.SkipWithError(opened.ToString().c_str());
    return;
  }

  Bytes last_response;
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    Result<Bytes> response = client.Query();
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    last_response = std::move(*response);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  Result<MessageType> type = PeekMessageType(last_response);
  if (!type.ok() || *type != MessageType::kPartialResult) {
    state.SkipWithError("expected a flagged PartialResult frame");
    return;
  }
  Result<PartialResultMessage> partial =
      PartialResultMessage::Decode(SharedKey().public_key, last_response);
  if (!partial.ok() || partial->shards_responded != 3 ||
      partial->rows_covered != kTotalRows / 4 * 3) {
    state.SkipWithError("partial coverage is wrong");
    return;
  }
  std::vector<uint32_t> covered(cluster->values.begin(),
                                cluster->values.begin() + partial->rows_covered);
  Result<BigInt> total =
      Paillier::Decrypt(SharedKey().private_key, partial->sum);
  if (!total.ok() || *total != BigInt(client.ExpectedSum(covered))) {
    state.SkipWithError("partial sum does not match the surviving shards");
    return;
  }
  state.counters["queries_per_s"] =
      static_cast<double>(state.iterations()) / wall_s;
}
BENCHMARK(BM_ClusterPartialQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ppstats

PPSTATS_MICRO_BENCH_MAIN("ablation_cluster")
