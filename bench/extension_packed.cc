// Extension bench: packed multi-query amortization.
//
// The paper answers one statistic per protocol pass. Packing B queries
// into Damgård–Jurik plaintext slots answers B selected sums with ONE
// pass — same index-vector traffic, same server sweep. This bench
// measures the amortized cost per query against B separate Paillier
// runs (e.g. a B-bucket private histogram).

#include "bench/figlib.h"
#include "core/packed_sum.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const size_t n = FullScale() ? 5000 : 600;
  ChaCha20Rng key_rng(1900);
  // s = 2 over a 512-bit modulus: 1023 plaintext bits = up to 18 slots
  // of 56 bits.
  DjKeyPair dj = DamgardJurik::GenerateKeyPair(512, 2, key_rng).ValueOrDie();
  const PaillierKeyPair& paillier = BenchKeyPair();

  ChaCha20Rng rng(1901);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n);

  std::printf("Extension: packed multi-query (n=%zu, 512-bit modulus, "
              "s=2)\n", n);
  std::printf("%4s %16s %18s %16s %14s\n", "B", "packed total (s)",
              "separate total (s)", "amortized/query", "speedup");
  for (size_t b : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<SelectionVector> queries;
    for (size_t q = 0; q < b; ++q) {
      queries.push_back(gen.RandomSelection(n, n / 2));
    }

    PackedSumResult packed =
        RunPackedMultiSum(dj.private_key, db, queries, {}, rng)
            .ValueOrDie();
    double packed_total = packed.client_encrypt_s + packed.server_compute_s +
                          packed.client_decrypt_s;
    // Verify against plaintext.
    for (size_t q = 0; q < b; ++q) {
      if (packed.sums[q] != BigInt(db.SelectedSum(queries[q]).ValueOrDie())) {
        std::printf("CORRECTNESS FAILURE at B=%zu\n", b);
        return 1;
      }
    }

    // Separate runs under plain Paillier.
    double separate_total = 0;
    for (size_t q = 0; q < b; ++q) {
      MeasuredRun run = MeasureSelectedSum(paillier, n,
                                           MeasureOptions{.seed = 1902 + q});
      separate_total += run.metrics.client_encrypt_s +
                        run.metrics.server_compute_s +
                        run.metrics.client_decrypt_s;
    }

    std::printf("%4zu %16.3f %18.3f %16.3f %13.1fx\n", b, packed_total,
                separate_total, packed_total / b,
                separate_total / packed_total);
  }
  std::printf(
      "\nexpected shape: packed cost is flat in B (one pass) while separate "
      "cost grows linearly;\ns=2 arithmetic costs ~4-5x Paillier per op, so "
      "the crossover lands around B=4 and the\nspeedup approaches that "
      "ratio's reciprocal of B for large batches.\n\n");
  return 0;
}
