// Extension bench: sublinear-communication private retrieval.
//
// The paper's theoretical basis (Canetti et al.) also offers
// sublinear-communication SPFE; homomorphic PIR is its building block.
// This bench shows the communication crossover between the linear
// selected-sum protocol (restricted to retrieving one record), naive
// full transfer, and single-/two-level PIR.

#include "bench/figlib.h"
#include "pir/pir.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  std::vector<size_t> sizes = FullScale()
                                  ? std::vector<size_t>{100, 400, 1600, 6400,
                                                        25600, 102400}
                                  : std::vector<size_t>{100, 400, 1600, 6400};

  std::printf("Extension: private single-record retrieval, communication "
              "(KB) and time (s, measured)\n");
  std::printf("%8s %10s %12s %12s %12s %12s %12s\n", "n", "naive KB",
              "linear KB", "pir1 KB", "pir2 KB", "pir1 s", "pir2 s");
  for (size_t n : sizes) {
    ChaCha20Rng rng(1700 + n);
    WorkloadGenerator gen(rng);
    Database db = gen.UniformDatabase(n);
    size_t target = n / 2;

    // Naive: ship the whole table (4 bytes/record).
    double naive_kb = n * 4.0 / 1024;

    // Linear homomorphic protocol used as 1-of-n retrieval: one
    // ciphertext per row upstream, one back.
    size_t ct = keys.public_key.CiphertextBytes();
    double linear_kb = (n * ct + ct) / 1024.0;

    PirRunResult pir1 =
        RunSingleLevelPir(db, target, keys.private_key, rng).ValueOrDie();
    PirRunResult pir2 =
        RunTwoLevelPir(db, target, keys.private_key, rng).ValueOrDie();
    if (pir1.value != db.value(target) || pir2.value != db.value(target)) {
      std::printf("CORRECTNESS FAILURE at n=%zu\n", n);
      return 1;
    }
    double pir1_kb = (pir1.client_to_server.bytes +
                      pir1.server_to_client.bytes) / 1024.0;
    double pir2_kb = (pir2.client_to_server.bytes +
                      pir2.server_to_client.bytes) / 1024.0;
    std::printf("%8zu %10.1f %12.1f %12.1f %12.1f %12.3f %12.3f\n", n,
                naive_kb, linear_kb, pir1_kb, pir2_kb,
                pir1.client_seconds + pir1.server_seconds,
                pir2.client_seconds + pir2.server_seconds);
  }
  std::printf(
      "\nexpected shape: PIR communication grows with sqrt(n) and crosses "
      "below the naive\ntransfer once 4n bytes exceeds ~2*sqrt(n) "
      "ciphertexts; the linear protocol is never\ncompetitive for "
      "retrieval — its strength is aggregation.\n\n");
  return 0;
}
