#include "bench/figlib.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "obs/export.h"
#include "obs/span.h"

namespace ppstats::bench {

namespace {

/// Destination directory for BENCH_<fig>.json files, or nullptr when
/// machine-readable emission is off.
const char* BenchJsonDir() { return std::getenv("PPSTATS_BENCH_JSON_DIR"); }

void AppendFormat(std::string* out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  *out += buf;
}

}  // namespace

bool FullScale() {
  const char* env = std::getenv("PPSTATS_FULL");
  return env != nullptr && env[0] == '1';
}

std::vector<size_t> DatabaseSizes() {
  if (FullScale()) {
    return {1000, 5000, 10000, 25000, 50000, 75000, 100000};
  }
  return {250, 500, 1000, 2000};
}

const PaillierKeyPair& BenchKeyPair(size_t bits) {
  static PaillierKeyPair* pairs[4096] = {};
  if (bits >= 4096) std::abort();
  if (pairs[bits] == nullptr) {
    ChaCha20Rng rng(515151 + bits);
    pairs[bits] = new PaillierKeyPair(
        Paillier::GenerateKeyPair(bits, rng).ValueOrDie());
  }
  return *pairs[bits];
}

MeasuredRun MeasureSelectedSum(const PaillierKeyPair& keys, size_t n,
                               const MeasureOptions& options) {
  ChaCha20Rng rng(options.seed + n);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n);  // 32-bit values, as in the paper
  SelectionVector selection = gen.RandomSelection(n, n / 2);

  MeasuredRun out;
  out.n = n;
  out.expected_sum = db.SelectedSum(selection).ValueOrDie();

  EncryptionPool pool(keys.public_key);
  SumClientOptions client_options;
  client_options.chunk_size = options.chunk_size;
  if (options.preprocess_indices) {
    // Offline phase (paper Sec 3.3): the client encrypts 0s and 1s in
    // advance; the online phase just reads them back.
    Stopwatch offline;
    size_t ones = 0;
    for (bool s : selection) ones += s ? 1 : 0;
    pool.Generate(BigInt(0), n - ones, rng).IgnoreError();
    pool.Generate(BigInt(1), ones, rng).IgnoreError();
    out.offline_preprocess_s = offline.ElapsedSeconds();
    client_options.encryption_pool = &pool;
  }

  SumClient client(keys.private_key, selection, client_options, rng);
  SumServer server(keys.public_key, &db);
  SumRunResult run = RunSelectedSum(client, server).ValueOrDie();
  out.correct = run.sum == BigInt(out.expected_sum);
  out.metrics = std::move(run.metrics);
  return out;
}

void PrintComponentsTable(const std::string& title,
                          const ExecutionEnvironment& env,
                          const std::vector<MeasuredRun>& runs) {
  std::printf("%s\n", title.c_str());
  std::printf("environment: %s (client x%.0f, server x%.0f, %s)\n",
              env.name.c_str(), env.client_cpu_scale, env.server_cpu_scale,
              env.network.name.c_str());
  std::printf("%10s %14s %14s %14s %14s %12s %8s\n", "n",
              "enc (min)", "server (min)", "comm (min)", "dec (min)",
              "total (min)", "correct");
  for (const MeasuredRun& run : runs) {
    ComponentBreakdown c = run.metrics.Components(env);
    std::printf("%10zu %14.4f %14.4f %14.4f %14.4f %12.4f %8s\n", run.n,
                ToMinutes(c.client_encrypt_s), ToMinutes(c.server_compute_s),
                ToMinutes(c.communication_s), ToMinutes(c.client_decrypt_s),
                ToMinutes(c.Total()), run.correct ? "yes" : "NO");
    // The other three components were recorded as spans while the run
    // executed (ScopedPhaseTimer inside SumClient/SumServer); the
    // in-process harness has no wire, so the modeled communication time
    // is recorded here — the only place the network model is applied.
    obs::RecordSpanSeconds(obs::kSpanCommunication, c.communication_s);
  }
  std::printf("\n");
}

void PrintComparisonTable(const std::string& title,
                          const std::string& series_a,
                          const std::string& series_b,
                          const std::vector<size_t>& sizes,
                          const std::vector<double>& a_minutes,
                          const std::vector<double>& b_minutes) {
  std::printf("%s\n", title.c_str());
  std::printf("%10s %22s %22s %10s\n", "n", series_a.c_str(),
              series_b.c_str(), "ratio");
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10zu %22.4f %22.4f %10.2f\n", sizes[i], a_minutes[i],
                b_minutes[i],
                b_minutes[i] > 0 ? a_minutes[i] / b_minutes[i] : 0.0);
  }
  std::printf("\n");
}

void EmitComponentsJson(const std::string& fig,
                        const ExecutionEnvironment& env,
                        const std::vector<MeasuredRun>& runs) {
  const char* dir = BenchJsonDir();
  if (dir == nullptr) return;
  std::string json = "{\n";
  AppendFormat(&json, "  \"figure\": \"%s\",\n", fig.c_str());
  AppendFormat(&json, "  \"environment\": \"%s\",\n", env.name.c_str());
  json += "  \"unit\": \"minutes\",\n  \"series\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    ComponentBreakdown c = runs[i].metrics.Components(env);
    AppendFormat(&json,
                 "    {\"n\": %zu, \"client_encrypt\": %.6f, "
                 "\"server_compute\": %.6f, \"communication\": %.6f, "
                 "\"client_decrypt\": %.6f, \"total\": %.6f, "
                 "\"correct\": %s}%s\n",
                 runs[i].n, ToMinutes(c.client_encrypt_s),
                 ToMinutes(c.server_compute_s), ToMinutes(c.communication_s),
                 ToMinutes(c.client_decrypt_s), ToMinutes(c.Total()),
                 runs[i].correct ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  json += "  ]\n}\n";
  (void)obs::WriteFileAtomic(std::string(dir) + "/BENCH_" + fig + ".json",
                             json);
}

void EmitComparisonJson(const std::string& fig, const std::string& series_a,
                        const std::string& series_b,
                        const std::vector<size_t>& sizes,
                        const std::vector<double>& a_minutes,
                        const std::vector<double>& b_minutes) {
  const char* dir = BenchJsonDir();
  if (dir == nullptr) return;
  std::string json = "{\n";
  AppendFormat(&json, "  \"figure\": \"%s\",\n", fig.c_str());
  AppendFormat(&json, "  \"series_a\": \"%s\",\n", series_a.c_str());
  AppendFormat(&json, "  \"series_b\": \"%s\",\n", series_b.c_str());
  json += "  \"unit\": \"minutes\",\n  \"points\": [\n";
  for (size_t i = 0; i < sizes.size(); ++i) {
    AppendFormat(&json,
                 "    {\"n\": %zu, \"a\": %.6f, \"b\": %.6f}%s\n", sizes[i],
                 a_minutes[i], b_minutes[i],
                 i + 1 < sizes.size() ? "," : "");
  }
  json += "  ]\n}\n";
  (void)obs::WriteFileAtomic(std::string(dir) + "/BENCH_" + fig + ".json",
                             json);
}

}  // namespace ppstats::bench
