// Ablation: preprocessing pool coverage. The paper's Section 3.3 assumes
// the client has precomputed enough encryptions; this sweep shows how
// the online time degrades when only a fraction of the index vector can
// be served from the pool (the PDA ran out of storage).

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();
  const size_t n = FullScale() ? 5000 : 800;

  std::printf("Ablation: pool coverage sweep at n=%zu, short distance\n", n);
  std::printf("%12s %18s %14s %10s\n", "coverage", "online enc (min)",
              "total (min)", "misses");
  for (double coverage : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ChaCha20Rng rng(13000 + static_cast<uint64_t>(coverage * 100));
    WorkloadGenerator gen(rng);
    Database db = gen.UniformDatabase(n);
    SelectionVector sel = gen.RandomSelection(n, n / 2);
    uint64_t truth = db.SelectedSum(sel).ValueOrDie();

    EncryptionPool pool(keys.public_key);
    size_t pooled = static_cast<size_t>(n * coverage);
    // Fill proportionally with 0s and 1s (half the rows are selected).
    pool.Generate(BigInt(0), pooled / 2 + pooled % 2, rng).IgnoreError();
    pool.Generate(BigInt(1), pooled / 2, rng).IgnoreError();

    SumClientOptions options;
    options.encryption_pool = &pool;
    SumClient client(keys.private_key, sel, options, rng);
    SumServer server(keys.public_key, &db);
    SumRunResult run = RunSelectedSum(client, server).ValueOrDie();
    if (run.sum != BigInt(truth)) {
      std::printf("CORRECTNESS FAILURE at coverage %.2f\n", coverage);
      return 1;
    }
    ComponentBreakdown c = run.metrics.Components(env);
    std::printf("%11.0f%% %18.4f %14.4f %10zu\n", coverage * 100,
                ToMinutes(c.client_encrypt_s), ToMinutes(c.Total()),
                pool.misses());
  }
  std::printf(
      "\nexpected shape: online time falls linearly with coverage; at 100%% "
      "the paper's ~82%% reduction appears.\n\n");
  return 0;
}
