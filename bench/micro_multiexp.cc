// google-benchmark microbenchmarks for the batched multi-exponentiation
// kernel behind the server's homomorphic fold: naive per-row
// ScalarMultiply + Add ladder vs Straus vs Pippenger vs the threaded
// Pippenger split used by SumServer with worker slices.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/microlib.h"
#include "bigint/modarith.h"
#include "bigint/mont_backend.h"
#include "bigint/montgomery.h"
#include "common/thread_pool.h"
#include "crypto/chacha20_rng.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ppstats {
namespace {

BigInt RandomOdd(ChaCha20Rng& rng, size_t bits) {
  // Top bit pinned so the modulus is exactly `bits` bits: the limb
  // count determines which Montgomery backends are eligible, and a
  // carry past 2^bits would silently bump it past the fixed widths.
  BigInt v = (BigInt(1) << (bits - 1)) + RandomBits(rng, bits - 1);
  if (v.IsEven()) v += 1;
  return v;
}

struct Fixture {
  MontgomeryContext ctx;
  std::vector<BigInt> bases;
  std::vector<BigInt> bases_mont;
  std::vector<BigInt> exps;

  Fixture(size_t k, size_t mod_bits, size_t exp_bits, uint64_t seed,
          MontBackendKind backend = MontBackendKind::kAuto)
      : ctx(
            [&] {
              ChaCha20Rng rng(seed);
              return RandomOdd(rng, mod_bits);
            }(),
            backend) {
    ChaCha20Rng rng(seed + 1);
    bases.reserve(k);
    bases_mont.reserve(k);
    exps.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      bases.push_back(RandomBelow(rng, ctx.modulus()));
      bases_mont.push_back(ctx.ToMontgomery(bases.back()));
      exps.push_back(RandomBits(rng, exp_bits));
    }
  }
};

// The pre-kernel server loop: one modular exponentiation per row, one
// modular multiplication to fold it into the accumulator.
void BM_FoldNaive(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1024, 32, 11);
  for (auto _ : state) {
    BigInt acc(1);
    for (size_t i = 0; i < f.bases.size(); ++i) {
      acc = MulMod(acc, f.ctx.Exp(f.bases[i], f.exps[i]), f.ctx.modulus());
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FoldNaive)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_FoldStraus(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1024, 32, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx.MultiExpMontgomery(
        f.bases_mont, f.exps, MultiExpSchedule::kStraus));
  }
}
BENCHMARK(BM_FoldStraus)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_FoldPippenger(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1024, 32, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx.MultiExpMontgomery(
        f.bases_mont, f.exps, MultiExpSchedule::kPippenger));
  }
}
BENCHMARK(BM_FoldPippenger)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// The same kernel under the per-chunk instrumentation FoldEngine adds:
// one span (two clock reads + a histogram record) and two counter
// increments per fold. Compare against BM_FoldPippenger — the delta is
// the observability tax, budgeted at <1%.
void BM_FoldPippengerInstrumented(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1024, 32, 11);
  obs::SetEnabled(true);
  obs::Counter* const chunks =
      obs::MetricRegistry::Global().GetCounter("bench.fold.chunks");
  obs::Counter* const rows =
      obs::MetricRegistry::Global().GetCounter("bench.fold.rows");
  for (auto _ : state) {
    obs::ObsSpan span(obs::kSpanFold);
    benchmark::DoNotOptimize(f.ctx.MultiExpMontgomery(
        f.bases_mont, f.exps, MultiExpSchedule::kPippenger));
    chunks->Increment();
    rows->Add(f.bases.size());
  }
}
BENCHMARK(BM_FoldPippengerInstrumented)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// And with obs::SetEnabled(false): spans go inert (no clock reads);
// counters still tick. This is the cost a deployment that disables
// instrumentation pays.
void BM_FoldPippengerObsDisabled(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1024, 32, 11);
  obs::SetEnabled(false);
  obs::Counter* const chunks =
      obs::MetricRegistry::Global().GetCounter("bench.fold.chunks");
  obs::Counter* const rows =
      obs::MetricRegistry::Global().GetCounter("bench.fold.rows");
  for (auto _ : state) {
    obs::ObsSpan span(obs::kSpanFold);
    benchmark::DoNotOptimize(f.ctx.MultiExpMontgomery(
        f.bases_mont, f.exps, MultiExpSchedule::kPippenger));
    chunks->Increment();
    rows->Add(f.bases.size());
  }
  obs::SetEnabled(true);
}
BENCHMARK(BM_FoldPippengerObsDisabled)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// SumServer's threaded shape: slice the batch over the shared pool, one
// Pippenger call per slice, then multiply the partials together.
void BM_FoldPippengerThreaded(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Fixture f(k, 1024, 32, 11);
  const size_t threads = ThreadPool::Shared().thread_count();
  const size_t stride = (k + threads - 1) / threads;
  for (auto _ : state) {
    std::vector<BigInt> partials(threads);
    ThreadPool::Shared().Run(threads, [&](size_t t) {
      const size_t begin = std::min(t * stride, k);
      const size_t end = std::min(begin + stride, k);
      std::vector<BigInt> b(f.bases_mont.begin() + begin,
                            f.bases_mont.begin() + end);
      std::vector<BigInt> e(f.exps.begin() + begin, f.exps.begin() + end);
      partials[t] = f.ctx.MultiExpMontgomery(b, e, MultiExpSchedule::kPippenger);
    });
    BigInt acc = f.ctx.OneMontgomery();
    for (const BigInt& p : partials) acc = f.ctx.MulMontgomery(acc, p);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FoldPippengerThreaded)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Wider exponents: the two-level PIR combine regime, where the
// exponents are full level-1 ciphertexts rather than 32-bit values.
void BM_FoldAutoWideExponents(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1024, 1024, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx.MultiExpMontgomery(f.bases_mont, f.exps));
  }
}
BENCHMARK(BM_FoldAutoWideExponents)->Arg(10)->Arg(32)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// 2048-bit operands (a 1024-bit Paillier key's mod-n^2 fold) — the
// ISSUE 6 acceptance row is BM_Fold2048Pippenger/1000 against the
// pre-backend baseline. The per-backend variants request a kernel
// explicitly; the label records what the dispatcher resolved, so on a
// host without ADX the row is visibly the fallback.

void RunFold2048(benchmark::State& state, MontBackendKind kind) {
  Fixture f(static_cast<size_t>(state.range(0)), 2048, 32, 17, kind);
  state.SetLabel(f.ctx.backend_name());
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx.MultiExpMontgomery(
        f.bases_mont, f.exps, MultiExpSchedule::kPippenger));
  }
}

void BM_Fold2048Pippenger(benchmark::State& state) {
  RunFold2048(state, MontBackendKind::kAuto);
}
BENCHMARK(BM_Fold2048Pippenger)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Fold2048BackendGeneric(benchmark::State& state) {
  RunFold2048(state, MontBackendKind::kGeneric);
}
BENCHMARK(BM_Fold2048BackendGeneric)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Fold2048BackendFixed(benchmark::State& state) {
  RunFold2048(state, MontBackendKind::kFixed);
}
BENCHMARK(BM_Fold2048BackendFixed)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Fold2048BackendAdx(benchmark::State& state) {
  RunFold2048(state, MontBackendKind::kAdx);
}
BENCHMARK(BM_Fold2048BackendAdx)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ppstats

PPSTATS_MICRO_BENCH_MAIN("micro_multiexp")
