// Figure 7: performance gain from combining preprocessing (Sec 3.3) and
// batching (Sec 3.2), short distance.
//
// Paper's finding: the combination reduces overall online runtime by
// about 94% relative to the unoptimized protocol.

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();

  std::vector<size_t> sizes = DatabaseSizes();
  std::vector<double> unoptimized, combined;
  for (size_t n : sizes) {
    MeasuredRun plain = MeasureSelectedSum(keys, n, MeasureOptions{.seed = 7004});
    MeasuredRun opt = MeasureSelectedSum(
        keys, n,
        MeasureOptions{.chunk_size = kPaperChunk,
                       .preprocess_indices = true,
                       .seed = 7004});
    unoptimized.push_back(ToMinutes(plain.metrics.SequentialSeconds(env)));
    combined.push_back(
        ToMinutes(opt.metrics.PipelinedSeconds(env).ValueOrDie()));
  }
  PrintComparisonTable(
      "Figure 7: unoptimized vs combined preprocessing+batching, short "
      "distance (online phase)",
      "no optimization (min)", "combined (min)", sizes, unoptimized,
      combined);
  EmitComparisonJson("fig7", "no optimization", "combined", sizes,
                     unoptimized, combined);

  double reduction = 100.0 * (1.0 - combined.back() / unoptimized.back());
  std::printf("online runtime reduction at n=%zu: %.1f%% (paper: ~94%%)\n\n",
              sizes.back(), reduction);
  return 0;
}
