// Per-backend microbenchmarks for the Montgomery multiplication kernels
// (bigint/mont_backend.h): one MulMontgomery / Sqr per iteration at the
// operand widths the protocol actually runs — 1024-bit (512-bit keys,
// mod n^2), 2048-bit (1024-bit keys), 4096-bit (2048-bit keys).
//
// Each benchmark *requests* a backend; the label shows what the
// dispatcher resolved, so on hosts without ADX the "Adx" rows are
// visibly the fallback rather than silently mislabeled.

#include <benchmark/benchmark.h>

#include "bench/microlib.h"
#include "bigint/modarith.h"
#include "bigint/mont_backend.h"
#include "bigint/montgomery.h"
#include "crypto/chacha20_rng.h"

namespace ppstats {
namespace {

// Exactly `bits` bits (top bit pinned), odd — so the limb count is
// bits/64 and the width-dispatched backends actually engage.
BigInt ExactBitsOdd(ChaCha20Rng& rng, size_t bits) {
  BigInt v = (BigInt(1) << (bits - 1)) + RandomBits(rng, bits - 1);
  if (v.IsEven()) v += 1;
  return v;
}

void RunMontMul(benchmark::State& state, MontBackendKind kind) {
  const size_t bits = static_cast<size_t>(state.range(0));
  ChaCha20Rng rng(7 + bits);
  const BigInt m = ExactBitsOdd(rng, bits);
  MontgomeryContext ctx(m, kind);
  state.SetLabel(ctx.backend_name());
  const BigInt am = ctx.ToMontgomery(RandomBelow(rng, m));
  const BigInt bm = ctx.ToMontgomery(RandomBelow(rng, m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.MulMontgomery(am, bm));
  }
}

void RunMontSqr(benchmark::State& state, MontBackendKind kind) {
  const size_t bits = static_cast<size_t>(state.range(0));
  ChaCha20Rng rng(9 + bits);
  const BigInt m = ExactBitsOdd(rng, bits);
  MontgomeryContext ctx(m, kind);
  state.SetLabel(ctx.backend_name());
  const BigInt am = ctx.ToMontgomery(RandomBelow(rng, m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Sqr(am));
  }
}

void BM_MontMulGeneric(benchmark::State& state) {
  RunMontMul(state, MontBackendKind::kGeneric);
}
BENCHMARK(BM_MontMulGeneric)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontMulFixed(benchmark::State& state) {
  RunMontMul(state, MontBackendKind::kFixed);
}
BENCHMARK(BM_MontMulFixed)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontMulAdx(benchmark::State& state) {
  RunMontMul(state, MontBackendKind::kAdx);
}
BENCHMARK(BM_MontMulAdx)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontSqrGeneric(benchmark::State& state) {
  RunMontSqr(state, MontBackendKind::kGeneric);
}
BENCHMARK(BM_MontSqrGeneric)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontSqrFixed(benchmark::State& state) {
  RunMontSqr(state, MontBackendKind::kFixed);
}
BENCHMARK(BM_MontSqrFixed)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_MontSqrAdx(benchmark::State& state) {
  RunMontSqr(state, MontBackendKind::kAdx);
}
BENCHMARK(BM_MontSqrAdx)->Arg(1024)->Arg(2048)->Arg(4096);

// The batched entry point the fold engine uses for its per-row
// ToMontgomery conversions; rows/s is the interesting figure.
void BM_ToMontgomeryBatch(benchmark::State& state) {
  ChaCha20Rng rng(13);
  const BigInt m = ExactBitsOdd(rng, 2048);
  MontgomeryContext ctx(m);
  state.SetLabel(ctx.backend_name());
  std::vector<BigInt> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(RandomBelow(rng, m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ToMontgomeryBatch(xs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ToMontgomeryBatch);

}  // namespace
}  // namespace ppstats

PPSTATS_MICRO_BENCH_MAIN("micro_montmul")
