// Shared harness for the per-figure benchmark binaries.
//
// Every binary reproduces one figure of the paper's evaluation: it runs
// the real protocol over synthetic workloads, maps measured compute +
// byte-accurate traffic onto the paper's 2004 execution environments,
// and prints the figure's series as a table (minutes, like the paper's
// y-axes).
//
// Scale control:
//   PPSTATS_FULL=1   run the paper's database sizes (1,000 .. 100,000)
//   default          a scaled-down sweep so `for b in bench/*; do $b; done`
//                    finishes in seconds; shapes are identical because
//                    every component is linear in n.

#ifndef PPSTATS_BENCH_FIGLIB_H_
#define PPSTATS_BENCH_FIGLIB_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/multiclient.h"
#include "core/runner.h"
#include "core/statistics.h"
#include "crypto/chacha20_rng.h"
#include "crypto/pool.h"
#include "db/workload.h"

namespace ppstats::bench {

/// Key size used throughout the paper's experiments.
inline constexpr size_t kPaperKeyBits = 512;

/// The paper's batching chunk size (Section 3.2).
inline constexpr size_t kPaperChunk = 100;

/// Database sizes to sweep. Paper scale when PPSTATS_FULL=1.
std::vector<size_t> DatabaseSizes();

/// True when PPSTATS_FULL=1.
bool FullScale();

/// One protocol execution (fresh workload per n, seeded deterministically).
struct MeasuredRun {
  size_t n = 0;
  uint64_t expected_sum = 0;
  bool correct = false;
  RunMetrics metrics;
  double offline_preprocess_s = 0;  ///< pool fill time (0 if no pool)
};

/// Options for MeasureSelectedSum.
struct MeasureOptions {
  size_t chunk_size = 0;
  bool preprocess_indices = false;  ///< fill an EncryptionPool offline
  uint64_t seed = 2004;
};

/// Runs the selected-sum protocol once at size n with half the rows
/// selected; verifies correctness against the plaintext sum.
MeasuredRun MeasureSelectedSum(const PaillierKeyPair& keys, size_t n,
                               const MeasureOptions& options);

/// Key pair shared by a benchmark binary (seeded; generated once).
const PaillierKeyPair& BenchKeyPair(size_t bits = kPaperKeyBits);

/// Prints the standard four-component table of Figures 2/3/5/6.
void PrintComponentsTable(const std::string& title,
                          const ExecutionEnvironment& env,
                          const std::vector<MeasuredRun>& runs);

/// Prints a two-series overall-runtime comparison (Figures 4/7/9).
void PrintComparisonTable(const std::string& title,
                          const std::string& series_a,
                          const std::string& series_b,
                          const std::vector<size_t>& sizes,
                          const std::vector<double>& a_minutes,
                          const std::vector<double>& b_minutes);

/// When the PPSTATS_BENCH_JSON_DIR environment variable is set, writes
/// the same series PrintComponentsTable printed to
/// <dir>/BENCH_<fig>.json (atomic write; one JSON document). No-op
/// otherwise. Values are minutes, matching the text table.
void EmitComponentsJson(const std::string& fig,
                        const ExecutionEnvironment& env,
                        const std::vector<MeasuredRun>& runs);

/// Machine-readable counterpart of PrintComparisonTable, same gating and
/// destination as EmitComponentsJson.
void EmitComparisonJson(const std::string& fig, const std::string& series_a,
                        const std::string& series_b,
                        const std::vector<size_t>& sizes,
                        const std::vector<double>& a_minutes,
                        const std::vector<double>& b_minutes);

inline double ToMinutes(double seconds) { return seconds / 60.0; }

}  // namespace ppstats::bench

#endif  // PPSTATS_BENCH_FIGLIB_H_
