// Figure 6: components of overall runtime after preprocessing the index
// vector, long distance (56 Kbps dial-up).
//
// Paper's finding: with client encryption removed from the online path,
// the modem's communication delay becomes the significant factor.

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  ExecutionEnvironment env = ExecutionEnvironment::LongDistance2004();

  std::vector<MeasuredRun> runs;
  for (size_t n : DatabaseSizes()) {
    runs.push_back(MeasureSelectedSum(
        keys, n,
        MeasureOptions{.preprocess_indices = true, .seed = 6004}));
  }
  PrintComponentsTable(
      "Figure 6: runtime components after index-vector preprocessing, "
      "long distance (online phase only)",
      env, runs);
  EmitComponentsJson("fig6", env, runs);

  const MeasuredRun& biggest = runs.back();
  ComponentBreakdown c = biggest.metrics.Components(env);
  std::printf(
      "communication share of online runtime at n=%zu: %.1f%% "
      "(paper: dominant)\n\n",
      biggest.n, 100.0 * c.communication_s / c.Total());
  return 0;
}
