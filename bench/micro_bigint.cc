// google-benchmark microbenchmarks for the big-integer substrate: the
// primitive costs every protocol number in the paper decomposes into.

#include <benchmark/benchmark.h>

#include "bench/microlib.h"

#include "bigint/modarith.h"
#include "bigint/montgomery.h"
#include "crypto/chacha20_rng.h"

namespace ppstats {
namespace {

BigInt RandomOdd(ChaCha20Rng& rng, size_t bits) {
  BigInt v = RandomBits(rng, bits) + (BigInt(1) << (bits - 1));
  if (v.IsEven()) v += 1;
  return v;
}

void BM_Multiply(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  ChaCha20Rng rng(bits);
  BigInt a = RandomBits(rng, bits);
  BigInt b = RandomBits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_Multiply)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_DivRem(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  ChaCha20Rng rng(bits + 1);
  BigInt a = RandomBits(rng, 2 * bits);
  BigInt b = RandomBits(rng, bits) + (BigInt(1) << (bits - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a % b);
  }
}
BENCHMARK(BM_DivRem)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModExpMontgomery(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  ChaCha20Rng rng(bits + 2);
  BigInt m = RandomOdd(rng, bits);
  MontgomeryContext ctx(m);
  BigInt base = RandomBelow(rng, m);
  BigInt exp = RandomBits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Exp(base, exp));
  }
}
BENCHMARK(BM_ModExpMontgomery)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModExpPlain(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  ChaCha20Rng rng(bits + 3);
  BigInt m = RandomOdd(rng, bits);
  BigInt base = RandomBelow(rng, m);
  BigInt exp = RandomBits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModExpPlain(base, exp, m));
  }
}
BENCHMARK(BM_ModExpPlain)->Arg(512)->Arg(1024);

void BM_ModExpShortExponent(benchmark::State& state) {
  // The server's workload: 32-bit exponents on a 1024-bit modulus.
  ChaCha20Rng rng(77);
  BigInt m = RandomOdd(rng, 1024);
  MontgomeryContext ctx(m);
  BigInt base = RandomBelow(rng, m);
  BigInt exp = RandomBits(rng, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Exp(base, exp));
  }
}
BENCHMARK(BM_ModExpShortExponent);

void BM_ModInverse(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  ChaCha20Rng rng(bits + 4);
  BigInt m = RandomOdd(rng, bits);
  BigInt a = RandomUnit(rng, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModInverse(a, m).ValueOrDie());
  }
}
BENCHMARK(BM_ModInverse)->Arg(512)->Arg(1024);

void BM_DecimalConversion(benchmark::State& state) {
  ChaCha20Rng rng(5);
  BigInt v = RandomBits(rng, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.ToDecimal());
  }
}
BENCHMARK(BM_DecimalConversion);

}  // namespace
}  // namespace ppstats

PPSTATS_MICRO_BENCH_MAIN("micro_bigint")
