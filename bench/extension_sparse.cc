// Extension bench: the sparse regime. The paper's SPFE framing promises
// "efficiency improvements whenever the number of data elements involved
// in the computation is significantly fewer than the total number". The
// linear protocol of Figure 1 cannot exploit sparsity; the blinded-PIR
// sparse protocol can. This bench locates the communication crossover.

#include "bench/figlib.h"
#include "pir/sparse_sum.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  const size_t n = FullScale() ? 10000 : 1600;
  size_t ct = keys.public_key.CiphertextBytes();

  ChaCha20Rng rng(2000);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n);

  // Linear protocol cost is independent of m.
  double linear_kb = (static_cast<double>(n) * ct + ct) / 1024.0;

  std::printf("Extension: sparse private sum vs linear protocol, n=%zu\n",
              n);
  std::printf("%6s %16s %16s %12s %10s\n", "m", "sparse KB", "linear KB",
              "winner", "correct");
  for (size_t m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::vector<size_t> indices;
    uint64_t truth = 0;
    for (size_t j = 0; j < m; ++j) {
      size_t idx = static_cast<size_t>(rng.NextBelow(n));
      indices.push_back(idx);
      truth += db.value(idx);
    }
    SparseSumResult sparse =
        RunSparsePrivateSum(keys.private_key, db, indices, {}, rng)
            .ValueOrDie();
    double sparse_kb = (sparse.client_to_server.bytes +
                        sparse.server_to_client.bytes) / 1024.0;
    bool correct = sparse.total == BigInt(truth);
    std::printf("%6zu %16.1f %16.1f %12s %10s\n", m, sparse_kb, linear_kb,
                sparse_kb < linear_kb ? "sparse" : "linear",
                correct ? "yes" : "NO");
    if (!correct) return 1;
  }
  std::printf(
      "\nexpected shape: sparse communication is ~m * 5*sqrt(n) "
      "ciphertext-widths; the linear\nprotocol is flat at n+1. The "
      "crossover sits near m = sqrt(n)/5 — exactly the\n\"m significantly "
      "fewer than n\" regime the SPFE paper targets.\n\n");
  return 0;
}
