// Ablation: implementation maturity. The paper reports its Java
// implementation running ~5x slower than the C++/OpenSSL one. We cannot
// rerun Java, but the equivalent spread appears between a naive
// square-and-multiply big-integer stack and the optimized
// Montgomery/fixed-window/CRT stack: same algorithm, different
// engineering, multiplicative runtime gap.

#include <cstdio>

#include "bench/figlib.h"
#include "bigint/modarith.h"
#include "common/stopwatch.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  const PaillierPublicKey& pub = keys.public_key;
  ChaCha20Rng rng(14000);

  const int reps = FullScale() ? 50 : 15;
  BigInt base = RandomBelow(rng, pub.n_squared());
  const BigInt& exp = pub.n();
  const BigInt& mod = pub.n_squared();

  Stopwatch fast_timer;
  for (int i = 0; i < reps; ++i) {
    BigInt r = pub.mont_n2().Exp(base, exp);
    (void)r;
  }
  double fast = fast_timer.ElapsedSeconds() / reps;

  Stopwatch slow_timer;
  for (int i = 0; i < reps; ++i) {
    BigInt r = ModExpPlain(base, exp, mod);
    (void)r;
  }
  double slow = slow_timer.ElapsedSeconds() / reps;

  // CRT vs direct decryption.
  PaillierCiphertext ct =
      Paillier::Encrypt(pub, BigInt(123456), rng).ValueOrDie();
  Stopwatch crt_timer;
  for (int i = 0; i < reps; ++i) {
    (void)Paillier::Decrypt(keys.private_key, ct).ValueOrDie();
  }
  double crt = crt_timer.ElapsedSeconds() / reps;
  Stopwatch direct_timer;
  for (int i = 0; i < reps; ++i) {
    (void)Paillier::DecryptDirect(keys.private_key, ct).ValueOrDie();
  }
  double direct = direct_timer.ElapsedSeconds() / reps;

  std::printf("Ablation: implementation maturity (512-bit keys)\n");
  std::printf("%-44s %12s\n", "configuration", "per-op (ms)");
  std::printf("%-44s %12.3f\n",
              "encryption modexp, Montgomery fixed-window", fast * 1e3);
  std::printf("%-44s %12.3f\n",
              "encryption modexp, naive square-and-multiply", slow * 1e3);
  std::printf("%-44s %12.3f\n", "decryption, CRT", crt * 1e3);
  std::printf("%-44s %12.3f\n", "decryption, direct", direct * 1e3);
  std::printf(
      "\nnaive/optimized encryption ratio: %.1fx (paper's Java/C++ gap: "
      "~5x)\nCRT decryption speedup: %.1fx\n\n",
      slow / fast, direct / crt);
  return 0;
}
