// Extension bench: base OT vs IKNP OT extension.
//
// The Yao baseline needs one oblivious transfer per evaluator input bit
// (one per database row for the selected-sum circuit). Base OT pays two
// 1024-bit exponentiations per transfer; the IKNP extension pays 128
// base OTs once and then only symmetric crypto per transfer. This bench
// locates the crossover and the asymptotic speedup.

#include "bench/figlib.h"
#include "common/stopwatch.h"
#include "yao/ot_extension.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  ChaCha20Rng rng(2200);
  std::vector<size_t> sizes =
      FullScale() ? std::vector<size_t>{128, 512, 2048, 8192, 32768}
                  : std::vector<size_t>{128, 512, 2048};

  std::printf("Extension: base OT vs IKNP extension (per batch)\n");
  std::printf("%8s %14s %14s %12s %14s %14s\n", "m", "base (s)", "iknp (s)",
              "speedup", "base KB", "iknp KB");
  for (size_t m : sizes) {
    std::vector<std::pair<Label, Label>> messages;
    std::vector<bool> choices;
    for (size_t i = 0; i < m; ++i) {
      messages.emplace_back(Label::Random(rng), Label::Random(rng));
      choices.push_back(i % 3 == 0);
    }

    Stopwatch base_timer;
    OtBatchResult base =
        RunBatchObliviousTransfer(messages, choices, rng).ValueOrDie();
    double base_s = base_timer.ElapsedSeconds();

    Stopwatch ext_timer;
    OtBatchResult ext =
        RunIknpObliviousTransfer(messages, choices, rng).ValueOrDie();
    double ext_s = ext_timer.ElapsedSeconds();

    for (size_t i = 0; i < m; ++i) {
      const Label& expected =
          choices[i] ? messages[i].second : messages[i].first;
      if (base.received[i] != expected || ext.received[i] != expected) {
        std::printf("CORRECTNESS FAILURE at m=%zu i=%zu\n", m, i);
        return 1;
      }
    }

    double base_kb = (base.receiver_to_sender.bytes +
                      base.sender_to_receiver.bytes) / 1024.0;
    double ext_kb = (ext.receiver_to_sender.bytes +
                     ext.sender_to_receiver.bytes) / 1024.0;
    std::printf("%8zu %14.3f %14.3f %12.1f %14.1f %14.1f\n", m, base_s,
                ext_s, base_s / ext_s, base_kb, ext_kb);
  }
  std::printf(
      "\nexpected shape: base OT scales linearly in m; IKNP is flat-ish "
      "(128 base OTs +\nsymmetric work), so the speedup grows with m — "
      "crossing 1x right around m = 128.\n\n");
  return 0;
}
