// Baseline comparison (paper Section 2): general secure two-party
// computation (Yao garbled circuits, as in Fairplay [14]) vs the
// homomorphic selected-sum protocol, on the same task.
//
// The paper cites Fairplay needing >= 15 minutes for a database of only
// 100 elements, against ~seconds of per-element homomorphic work. We run
// both our real implementations and compare total time and traffic under
// the 2004 short-distance environment.

#include "bench/figlib.h"
#include "yao/selected_sum_circuit.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();

  std::vector<size_t> sizes = FullScale()
                                  ? std::vector<size_t>{10, 25, 50, 100, 200}
                                  : std::vector<size_t>{10, 25, 50, 100};
  std::printf(
      "General SMC (Yao/Fairplay-style) vs homomorphic selected sum\n");
  std::printf("%6s %14s %14s %12s %14s %14s %10s\n", "n", "yao (min)",
              "homom. (min)", "yao KB", "yao-halfgt KB", "homom. KB",
              "correct");
  for (size_t n : sizes) {
    ChaCha20Rng rng(1404 + n);
    WorkloadGenerator gen(rng);
    Database db = gen.UniformDatabase(n);
    SelectionVector sel = gen.RandomSelection(n, n / 2);
    uint64_t truth = db.SelectedSum(sel).ValueOrDie();

    YaoRunResult yao = RunYaoSelectedSum(db, sel, rng).ValueOrDie();
    YaoRunResult yao_hg =
        RunYaoSelectedSum(db, sel, rng, 0, GarbleScheme::kHalfGates)
            .ValueOrDie();
    MeasuredRun hom = MeasureSelectedSum(keys, n, MeasureOptions{.seed = 1404});

    double yao_minutes = ToMinutes(yao.TotalSeconds(env));
    double hom_minutes = ToMinutes(hom.metrics.SequentialSeconds(env));
    double yao_kb =
        (yao.server_to_client.bytes + yao.client_to_server.bytes) / 1024.0;
    double hg_kb = (yao_hg.server_to_client.bytes +
                    yao_hg.client_to_server.bytes) / 1024.0;
    double hom_kb = (hom.metrics.client_to_server.bytes +
                     hom.metrics.server_to_client.bytes) /
                    1024.0;
    bool correct = yao.sum == truth && yao_hg.sum == truth && hom.correct;
    std::printf("%6zu %14.4f %14.4f %12.1f %14.1f %14.1f %10s\n", n,
                yao_minutes, hom_minutes, yao_kb, hg_kb, hom_kb,
                correct ? "yes" : "NO");
  }
  std::printf(
      "\npaper's claim: Fairplay-style SMC needs >= 15 min at n=100 on 2004 "
      "hardware;\nnote the communication gap (garbled tables + OT vs one "
      "ciphertext per row).\n\n");
  return 0;
}
