// Ablation: how the protocol's components scale with the Paillier key
// size. The paper fixed 512-bit keys (2004-era); this sweep shows what
// the same experiment costs at today's key sizes — the core reason the
// paper's "computation dominates" conclusion still holds.

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const size_t n = FullScale() ? 2000 : 500;
  std::printf("Ablation: key size sweep at n=%zu (measured, modern CPU)\n",
              n);
  std::printf("%10s %14s %14s %14s %16s\n", "key bits", "enc (s)",
              "server (s)", "dec (s)", "bytes/ciphertext");
  for (size_t bits : {256u, 512u, 1024u, 2048u}) {
    const PaillierKeyPair& keys = BenchKeyPair(bits);
    MeasuredRun run =
        MeasureSelectedSum(keys, n, MeasureOptions{.seed = 11000 + bits});
    if (!run.correct) {
      std::printf("CORRECTNESS FAILURE at %zu bits\n", bits);
      return 1;
    }
    std::printf("%10zu %14.3f %14.3f %14.5f %16zu\n", bits,
                run.metrics.client_encrypt_s, run.metrics.server_compute_s,
                run.metrics.client_decrypt_s,
                keys.public_key.CiphertextBytes());
  }
  std::printf(
      "\nexpected shape: encryption cost grows ~cubically with key size "
      "(modexp on 2x-wide moduli);\nclient encryption dominates at every "
      "size, as in the paper.\n\n");
  return 0;
}
