#include "bench/microlib.h"

#include <benchmark/benchmark.h>

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/export.h"

namespace ppstats::bench {

namespace {

struct CapturedRun {
  std::string name;
  std::string label;
  double real_ns = 0;
  double cpu_ns = 0;
  uint64_t iterations = 0;
};

void AppendFormat(std::string* out, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  *out += buf;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// The normal console table, plus a capture of every successful
/// per-benchmark run (aggregates and errored runs are skipped) for the
/// JSON emission after the suite finishes.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type != Run::RT_Iteration) continue;
      CapturedRun captured;
      captured.name = run.benchmark_name();
      captured.label = run.report_label;
      captured.iterations = static_cast<uint64_t>(run.iterations);
      if (run.iterations > 0) {
        const double iters = static_cast<double>(run.iterations);
        captured.real_ns = run.real_accumulated_time * 1e9 / iters;
        captured.cpu_ns = run.cpu_accumulated_time * 1e9 / iters;
      }
      captured_.push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<CapturedRun>& captured() const { return captured_; }

 private:
  std::vector<CapturedRun> captured_;
};

void EmitSuiteJson(const char* suite, const std::vector<CapturedRun>& runs) {
  const char* dir = std::getenv("PPSTATS_BENCH_JSON_DIR");
  if (dir == nullptr) return;
  std::string json = "{\n";
  AppendFormat(&json, "  \"suite\": \"%s\",\n", suite);
  json += "  \"unit\": \"nanoseconds\",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    AppendFormat(&json,
                 "    {\"name\": \"%s\", \"label\": \"%s\", "
                 "\"real_ns\": %.3f, \"cpu_ns\": %.3f, "
                 "\"iterations\": %llu}%s\n",
                 JsonEscape(runs[i].name).c_str(),
                 JsonEscape(runs[i].label).c_str(), runs[i].real_ns,
                 runs[i].cpu_ns,
                 static_cast<unsigned long long>(runs[i].iterations),
                 i + 1 < runs.size() ? "," : "");
  }
  json += "  ]\n}\n";
  (void)obs::WriteFileAtomic(
      std::string(dir) + "/BENCH_" + suite + ".json", json);
}

}  // namespace

int RunMicroSuite(int argc, char** argv, const char* suite) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  EmitSuiteJson(suite, reporter.captured());
  benchmark::Shutdown();
  return 0;
}

}  // namespace ppstats::bench
