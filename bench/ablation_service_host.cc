// Ablation: multi-session service throughput. The paper measures one
// client against one server; a deployment serves many analysts at once.
// This table drives the concurrent ServiceHost (accept thread + one
// session thread per client, folds on the shared ThreadPool) with 1..8
// simultaneous clients running mixed-kind queries over one connection
// each, and reports aggregate queries/sec. Near-flat scaling up to the
// core count means session isolation adds no serialization beyond the
// shared fold pool; each query's result is checked against plaintext.
//
// --chaos switches to the robustness variant: ~1% of frames on each
// side of the wire are faulted (delay/truncate/garble/drop/disconnect,
// seeded), sessions run behind I/O deadlines, and clients redial with
// exponential backoff. The table then reports goodput — queries that
// still completed correctly per second — plus the fault and retry
// counts, quantifying what the robustness layer costs under a noisy
// transport.
//
// --engine=threaded|reactor selects the ServiceHost engine (default
// threaded): thread-per-session, or the epoll reactor with folds on the
// shared work-stealing pool. Comparing the two tables isolates what the
// event-driven engine costs (or saves) at each client count. The
// fault-free table runs over both transports (unix socket and TCP
// loopback), isolating what TCP framing/loopback costs against the same
// workload.
//
// The reactor run appends a second table: 32 pipelining clients (all
// request frames pre-encrypted and blasted without reading, responses
// drained afterwards, decrypt deferred past the timer) against a server
// with a minimal SO_SNDBUF, so the per-session outbox genuinely
// accumulates frames. The axis compares the gathered-writev outbox
// against one send() per frame on the identical byte stream.
//
// When PPSTATS_BENCH_JSON_DIR is set the fault-free tables are written
// to <dir>/BENCH_ablation_service_host_<engine>.json.

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/figlib.h"
#include "core/messages.h"
#include "core/selected_sum.h"
#include "core/service_host.h"
#include "crypto/key_io.h"
#include "net/fault_injection.h"
#include "net/socket_channel.h"
#include "obs/export.h"

namespace {

int RunChaosMode(ppstats::ServiceEngine engine, const char* engine_name);

/// One row of the 32-client outbox axis (reactor engine only).
struct OutboxRow {
  const char* outbox;
  size_t clients;
  size_t queries;
  double wall_s;
  double qps;
  bool correct;
  uint64_t writev_calls;
  uint64_t writev_frames;
};

std::vector<OutboxRow> RunOutboxTable();

}  // namespace

int main(int argc, char** argv) {
  using namespace ppstats;
  using namespace ppstats::bench;

  bool chaos = false;
  ServiceEngine engine = ServiceEngine::kThreaded;
  const char* engine_name = "threaded";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--chaos")) {
      chaos = true;
    } else if (!std::strcmp(argv[i], "--engine=reactor") ||
               (!std::strcmp(argv[i], "--engine") && i + 1 < argc &&
                !std::strcmp(argv[i + 1], "reactor") && ++i)) {
      engine = ServiceEngine::kReactor;
      engine_name = "reactor";
    } else if (!std::strcmp(argv[i], "--engine=threaded") ||
               (!std::strcmp(argv[i], "--engine") && i + 1 < argc &&
                !std::strcmp(argv[i + 1], "threaded") && ++i)) {
      engine = ServiceEngine::kThreaded;
      engine_name = "threaded";
    } else {
      std::fprintf(stderr,
                   "usage: ablation_service_host [--chaos] "
                   "[--engine=threaded|reactor]\n");
      return 2;
    }
  }
  if (chaos) return RunChaosMode(engine, engine_name);

  const size_t n = FullScale() ? 10000 : 2000;
  const size_t queries_per_client = 4;

  ChaCha20Rng rng(3100);
  WorkloadGenerator gen(rng);
  Database age("age", gen.UniformDatabase(n, 1000).values());
  Database income("income", gen.UniformDatabase(n, 1000).values());
  ColumnRegistry registry;
  if (!registry.Register(age).ok() || !registry.Register(income).ok()) {
    std::printf("registry setup failed\n");
    return 1;
  }

  std::printf("Ablation: concurrent sessions at n=%zu, %zu queries/client, "
              "engine=%s (measured)\n",
              n, queries_per_client, engine_name);
  std::printf("%10s %10s %12s %14s %12s %10s\n", "transport", "clients",
              "queries", "wall (s)", "queries/s", "correct");

  struct Row {
    const char* transport;
    size_t clients;
    size_t queries;
    double wall_s;
    double qps;
    bool correct;
  };
  std::vector<Row> rows;

  for (const char* transport : {"unix", "tcp"}) {
    const bool is_tcp = std::strcmp(transport, "unix") != 0;
    for (size_t clients : {1u, 2u, 4u, 8u}) {
      ServiceHostOptions options;
      options.default_column = "age";
      options.engine = engine;
      options.reactor_threads = 2;
      ServiceHost host(&registry, options);
      // Port 0 binds an ephemeral port; bound_uri() is what clients dial.
      std::string uri = is_tcp ? std::string("tcp:127.0.0.1:0")
                               : std::string("unix:/tmp/ppstats_svc_bench.sock");
      if (!host.Start(uri).ok()) {
        std::printf("host start failed\n");
        return 1;
      }
      std::string bound = host.bound_uri();

      std::vector<PaillierKeyPair> client_keys;
      for (size_t c = 0; c < clients; ++c) {
        ChaCha20Rng key_rng(3200 + c);
        client_keys.push_back(
            Paillier::GenerateKeyPair(256, key_rng).ValueOrDie());
      }

      std::atomic<int> wrong{0};
      Stopwatch timer;
      std::vector<std::thread> workers;
      for (size_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          ChaCha20Rng client_rng(3300 + c);
          WorkloadGenerator client_gen(client_rng);
          auto channel = ConnectChannel(bound);
          if (!channel.ok()) {
            ++wrong;
            return;
          }
          QuerySession session(client_keys[c].private_key, client_rng, {});
          if (!session.Connect(**channel).ok()) {
            ++wrong;
            return;
          }
          for (size_t q = 0; q < queries_per_client; ++q) {
            SelectionVector sel = client_gen.RandomSelection(n, n / 4);
            QuerySpec spec;
            BigInt expected;
            if (q % 2 == 0) {
              expected = BigInt(age.SelectedSum(sel).ValueOrDie());
            } else {
              spec.kind = StatisticKind::kSumOfSquares;
              spec.column = "income";
              expected = BigInt(income.SelectedSumOfSquares(sel).ValueOrDie());
            }
            Result<BigInt> got = session.RunQuery(spec, sel);
            if (!got.ok() || *got != expected) ++wrong;
          }
          session.Finish().IgnoreError();
        });
      }
      for (std::thread& t : workers) t.join();
      double wall = timer.ElapsedSeconds();
      host.Stop();

      size_t total = clients * queries_per_client;
      std::printf("%10s %10zu %12zu %14.3f %12.2f %10s\n", transport, clients,
                  total, wall, total / wall, wrong.load() == 0 ? "yes" : "NO");
      rows.push_back(
          {transport, clients, total, wall, total / wall, wrong.load() == 0});
    }
  }
  std::printf(
      "\nexpected shape: aggregate throughput grows with client count until "
      "the cores\nsaturate, then flattens; tcp loopback tracks unix within "
      "framing overhead;\n'correct yes' on every row is the invariant.\n\n");

  // The outbox flush axis only exists on the reactor engine (the
  // threaded engine writes each frame synchronously from its session
  // thread).
  std::vector<OutboxRow> outbox_rows;
  if (engine == ServiceEngine::kReactor) outbox_rows = RunOutboxTable();

  if (const char* dir = std::getenv("PPSTATS_BENCH_JSON_DIR")) {
    std::string json = "{\n";
    json += "  \"figure\": \"ablation_service_host\",\n";
    json += std::string("  \"engine\": \"") + engine_name + "\",\n";
    json += "  \"unit\": \"queries_per_second\",\n  \"points\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      char line[200];
      std::snprintf(line, sizeof(line),
                    "    {\"transport\": \"%s\", \"clients\": %zu, "
                    "\"queries\": %zu, "
                    "\"wall_s\": %.6f, \"qps\": %.2f, \"correct\": %s}%s\n",
                    rows[i].transport, rows[i].clients, rows[i].queries,
                    rows[i].wall_s, rows[i].qps,
                    rows[i].correct ? "true" : "false",
                    i + 1 < rows.size() ? "," : "");
      json += line;
    }
    json += "  ]";
    if (!outbox_rows.empty()) {
      json += ",\n  \"outbox32\": [\n";
      for (size_t i = 0; i < outbox_rows.size(); ++i) {
        char line[240];
        std::snprintf(
            line, sizeof(line),
            "    {\"outbox\": \"%s\", \"clients\": %zu, \"queries\": %zu, "
            "\"wall_s\": %.6f, \"qps\": %.2f, \"correct\": %s, "
            "\"writev_calls\": %llu, \"writev_frames\": %llu}%s\n",
            outbox_rows[i].outbox, outbox_rows[i].clients,
            outbox_rows[i].queries, outbox_rows[i].wall_s, outbox_rows[i].qps,
            outbox_rows[i].correct ? "true" : "false",
            static_cast<unsigned long long>(outbox_rows[i].writev_calls),
            static_cast<unsigned long long>(outbox_rows[i].writev_frames),
            i + 1 < outbox_rows.size() ? "," : "");
        json += line;
      }
      json += "  ]";
    }
    json += "\n}\n";
    (void)obs::WriteFileAtomic(std::string(dir) +
                                   "/BENCH_ablation_service_host_" +
                                   engine_name + ".json",
                               json);
  }
  return 0;
}

namespace {

/// Appends `frame` with the wire's 4-byte big-endian length prefix
/// (net/socket_channel framing), for pre-encoded pipelined uploads.
void AppendFrame(ppstats::Bytes* out, const ppstats::Bytes& frame) {
  const uint32_t len = static_cast<uint32_t>(frame.size());
  out->push_back(static_cast<uint8_t>(len >> 24));
  out->push_back(static_cast<uint8_t>(len >> 16));
  out->push_back(static_cast<uint8_t>(len >> 8));
  out->push_back(static_cast<uint8_t>(len));
  out->insert(out->end(), frame.begin(), frame.end());
}

/// Reads the 4-byte big-endian length prefix at `off`.
uint32_t FrameLenAt(const ppstats::Bytes& buf, size_t off) {
  return (static_cast<uint32_t>(buf[off]) << 24) |
         (static_cast<uint32_t>(buf[off + 1]) << 16) |
         (static_cast<uint32_t>(buf[off + 2]) << 8) |
         static_cast<uint32_t>(buf[off + 3]);
}

// 32 pipelining clients against a server with a minimal SO_SNDBUF, so
// the per-session outbox genuinely holds multiple frames when the
// reactor flushes. Each client's entire upload (hello + per-query
// header and index chunk + goodbye) is encrypted and framed before the
// timer starts, then blasted without reading; responses are drained
// into stored frames during the timed phase and only decrypted and
// checked afterwards. The identical byte stream runs against both
// outbox modes, so the axis isolates gathered writev vs one send() per
// frame on the server's flush path.
std::vector<OutboxRow> RunOutboxTable() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const size_t kClients = 32;
  const size_t kQueries = 160;  // response bytes must exceed the
                                // ~9KB of combined kernel buffers
  const size_t kRows = 16;

  ChaCha20Rng rng(5100);
  WorkloadGenerator gen(rng);
  Database age("age", gen.UniformDatabase(kRows, 1000).values());
  ColumnRegistry registry;
  if (!registry.Register(age).ok()) {
    std::printf("outbox registry setup failed\n");
    return {};
  }

  // One shared key: the axis measures the server's flush path, not
  // client-side crypto, and one keypair keeps the untimed prep cheap.
  ChaCha20Rng key_rng(5200);
  PaillierKeyPair key = Paillier::GenerateKeyPair(256, key_rng).ValueOrDie();
  const PaillierPublicKey& pub = key.private_key.public_key();

  std::vector<Bytes> uploads(kClients);
  std::vector<std::vector<BigInt>> expected(kClients);
  std::atomic<int> prep_failed{0};
  {
    std::vector<std::thread> prep;
    for (size_t c = 0; c < kClients; ++c) {
      prep.emplace_back([&, c] {
        ChaCha20Rng client_rng(5300 + c);
        WorkloadGenerator client_gen(client_rng);
        ClientHelloMessage hello;
        hello.protocol_version = kSessionProtocolVersion;
        hello.public_key_blob = SerializePublicKey(pub);
        AppendFrame(&uploads[c], hello.Encode());
        for (size_t q = 0; q < kQueries; ++q) {
          SelectionVector sel = client_gen.RandomSelection(kRows, kRows / 2);
          expected[c].push_back(BigInt(age.SelectedSum(sel).ValueOrDie()));
          QueryHeaderMessage header;
          header.kind = static_cast<uint8_t>(StatisticKind::kSum);
          AppendFrame(&uploads[c], header.Encode());
          SumClient client(key.private_key, sel, {}, client_rng);
          while (!client.RequestsDone()) {
            Result<Bytes> request = client.NextRequest();
            if (!request.ok()) {
              ++prep_failed;
              return;
            }
            AppendFrame(&uploads[c], *request);
          }
        }
        AppendFrame(&uploads[c], GoodbyeMessage{}.Encode());
      });
    }
    for (std::thread& t : prep) t.join();
  }
  if (prep_failed.load() != 0) {
    std::printf("outbox upload prep failed\n");
    return {};
  }

  std::printf("Outbox flush: %zu pipelining clients, %zu queries each, "
              "server SO_SNDBUF=4096, engine=reactor (measured)\n",
              kClients, kQueries);
  std::printf("%10s %10s %12s %14s %12s %10s %14s %14s\n", "outbox", "clients",
              "queries", "wall (s)", "queries/s", "correct", "writev calls",
              "writev frames");

  std::vector<OutboxRow> out;
  const std::string path = "/tmp/ppstats_svc_outbox.sock";
  bool failed = false;
  // One timed run of one outbox mode against a fresh host.
  auto run_trial = [&](bool writev) -> OutboxRow {
    ServiceHostOptions options;
    options.default_column = "age";
    options.engine = ServiceEngine::kReactor;
    options.reactor_threads = 2;
    options.outbox_writev = writev;
    options.so_sndbuf = 4096;
    ServiceHost host(&registry, options);
    if (!host.Start("unix:" + path).ok()) {
      std::printf("outbox host start failed\n");
      failed = true;
      return {};
    }

    std::vector<std::vector<Bytes>> responses(kClients);
    std::vector<int> fds(kClients, -1);
    std::atomic<int> wrong{0};

    // Fill phase (untimed): every client blasts its whole upload
    // without reading a byte back.
    std::vector<std::thread> senders;
    for (size_t c = 0; c < kClients; ++c) {
      senders.emplace_back([&, c] {
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
          ++wrong;
          return;
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
          ::close(fd);
          ++wrong;
          return;
        }
        const Bytes& blob = uploads[c];
        size_t sent = 0;
        while (sent < blob.size()) {
          ssize_t n = ::send(fd, blob.data() + sent, blob.size() - sent,
                             MSG_NOSIGNAL);
          if (n <= 0) {
            ::close(fd);
            ++wrong;
            return;
          }
          sent += static_cast<size_t>(n);
        }
        fds[c] = fd;
      });
    }
    for (std::thread& t : senders) t.join();
    // With nobody reading, the server answers every query into the
    // small SO_SNDBUF and queues the rest in each session's outbox;
    // the sleep lets the folds finish so the timed phase below
    // measures the flush path alone.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Drain phase (timed): clients read everything back in bulk (64KB
    // recvs; frame boundaries only counted, decoding deferred), so the
    // measured work is the server's flush path — its outboxes emptying
    // through the tiny send buffer — not client-side per-frame reads.
    std::vector<Bytes> raw(kClients);
    Stopwatch timer;
    std::vector<std::thread> drainers;
    for (size_t c = 0; c < kClients; ++c) {
      drainers.emplace_back([&, c] {
        if (fds[c] < 0) return;
        const int fd = fds[c];
        timeval recv_timeout{30, 0};
        (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
                           sizeof(recv_timeout));
        Bytes& buf = raw[c];
        buf.reserve(64 * 1024);
        // ServerHello, then per query QueryAccept + SumResponse.
        const size_t want = 1 + 2 * kQueries;
        size_t frames_seen = 0;
        size_t scan = 0;
        uint8_t chunk[65536];
        while (frames_seen < want) {
          ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
          if (n <= 0) {
            ++wrong;
            break;
          }
          buf.insert(buf.end(), chunk, chunk + n);
          while (buf.size() - scan >= 4) {
            const uint32_t len = FrameLenAt(buf, scan);
            if (buf.size() - scan - 4 < len) break;
            scan += 4 + len;
            ++frames_seen;
          }
        }
        ::close(fd);
      });
    }
    for (std::thread& t : drainers) t.join();
    double wall = timer.ElapsedSeconds();
    host.Stop();

    // Split the drained byte streams back into frames (untimed).
    for (size_t c = 0; c < kClients; ++c) {
      const Bytes& buf = raw[c];
      responses[c].reserve(1 + 2 * kQueries);
      size_t off = 0;
      while (buf.size() - off >= 4) {
        const uint32_t len = FrameLenAt(buf, off);
        if (buf.size() - off - 4 < len) break;
        responses[c].emplace_back(buf.begin() + off + 4,
                                  buf.begin() + off + 4 + len);
        off += 4 + len;
      }
    }
    obs::MetricsSnapshot snapshot = host.SnapshotMetrics();
    uint64_t writev_calls = snapshot.CounterValue("net.writev_calls");
    uint64_t writev_frames = snapshot.CounterValue("net.writev_frames");

    // Deferred verification: decode and decrypt outside the timer.
    bool correct = wrong.load() == 0;
    for (size_t c = 0; correct && c < kClients; ++c) {
      const std::vector<Bytes>& frames = responses[c];
      if (frames.size() != 1 + 2 * kQueries) {
        correct = false;
        break;
      }
      Result<ServerHelloMessage> hello = ServerHelloMessage::Decode(frames[0]);
      if (!hello.ok() || hello->database_size != kRows) {
        correct = false;
        break;
      }
      for (size_t q = 0; q < kQueries; ++q) {
        Result<QueryAcceptMessage> accept =
            QueryAcceptMessage::Decode(frames[1 + 2 * q]);
        Result<SumResponseMessage> response =
            SumResponseMessage::Decode(pub, frames[2 + 2 * q]);
        if (!accept.ok() || accept->rows != kRows || !response.ok()) {
          correct = false;
          break;
        }
        Result<BigInt> value = Paillier::Decrypt(key.private_key,
                                                 response->sum);
        if (!value.ok() || *value != expected[c][q]) {
          correct = false;
          break;
        }
      }
    }

    const char* mode = writev ? "writev" : "send";
    size_t total = kClients * kQueries;
    return OutboxRow{mode,         kClients, total,        wall,
                     total / wall, correct,  writev_calls, writev_frames};
  };

  // The syscall savings under test are a few ms against ~15 ms of
  // scheduler noise per trial, so each mode reports its best of three
  // runs; an incorrect run disqualifies the mode outright.
  const int kTrials = 3;
  for (bool writev : {false, true}) {
    OutboxRow best{};
    for (int trial = 0; trial < kTrials; ++trial) {
      OutboxRow row = run_trial(writev);
      if (failed) return out;
      if (trial == 0 || !row.correct ||
          (best.correct && row.qps > best.qps)) {
        best = row;
      }
      if (!row.correct) break;
    }
    std::printf("%10s %10zu %12zu %14.3f %12.2f %10s %14llu %14llu\n",
                best.outbox, best.clients, best.queries, best.wall_s, best.qps,
                best.correct ? "yes" : "NO",
                static_cast<unsigned long long>(best.writev_calls),
                static_cast<unsigned long long>(best.writev_frames));
    out.push_back(best);
  }
  std::printf(
      "\nexpected shape: both rows correct; the writev row matches or beats "
      "send\n(fewer syscalls per flush) and its frame counter shows multiple "
      "frames per\ngathered call.\n\n");
  return out;
}

int RunChaosMode(ppstats::ServiceEngine engine, const char* engine_name) {
  using namespace ppstats;
  using namespace ppstats::bench;

  const size_t n = FullScale() ? 4000 : 1000;
  const size_t queries_per_client = 4;

  ChaCha20Rng rng(3100);
  WorkloadGenerator gen(rng);
  Database age("age", gen.UniformDatabase(n, 1000).values());
  ColumnRegistry registry;
  if (!registry.Register(age).ok()) {
    std::printf("registry setup failed\n");
    return 1;
  }

  FaultInjectionOptions faults;  // defaults: ~1% per frame, all kinds
  faults.delay_ms = 20;

  std::printf("Ablation: goodput under ~1%% injected faults per frame, "
              "both directions, n=%zu, engine=%s (measured)\n", n,
              engine_name);
  std::printf("%10s %12s %10s %14s %12s %10s %10s\n", "clients", "queries",
              "ok", "wall (s)", "goodput q/s", "faults", "redials");

  for (size_t clients : {1u, 2u, 4u, 8u}) {
    ServiceHostOptions options;
    options.default_column = "age";
    options.engine = engine;
    options.reactor_threads = 2;
    options.io_deadline_ms = 5000;
    options.fault_injection = faults;
    options.fault_seed = 4100 + clients;
    ServiceHost host(&registry, options);
    std::string path = "/tmp/ppstats_svc_bench.sock";
    if (!host.Start(path).ok()) {
      std::printf("host start failed\n");
      return 1;
    }

    std::vector<PaillierKeyPair> client_keys;
    for (size_t c = 0; c < clients; ++c) {
      ChaCha20Rng key_rng(3200 + c);
      client_keys.push_back(
          Paillier::GenerateKeyPair(256, key_rng).ValueOrDie());
    }

    std::atomic<size_t> ok_queries{0};
    std::atomic<uint64_t> faults_injected{0};
    std::atomic<uint64_t> redials{0};
    Stopwatch timer;
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        ChaCha20Rng client_rng(3300 + c);
        ChaCha20Rng fault_rng(4200 + c);
        WorkloadGenerator client_gen(client_rng);
        // Each dial wraps the fresh socket in the client-side fault
        // layer; the wrapper pointer stays valid inside the session.
        FaultInjectingChannel* wrapper = nullptr;
        ChannelFactory dial =
            [&]() -> Result<std::unique_ptr<Channel>> {
          auto socket = ConnectUnixSocket(path);
          if (!socket.ok()) return socket.status();
          (*socket)->set_read_deadline(std::chrono::milliseconds(10000));
          (*socket)->set_write_deadline(std::chrono::milliseconds(10000));
          auto faulty = std::make_unique<FaultInjectingChannel>(
              std::move(*socket), faults, fault_rng);
          wrapper = faulty.get();
          return std::unique_ptr<Channel>(std::move(faulty));
        };
        QuerySession session(client_keys[c].private_key, client_rng, {});
        RetryOptions retry;
        retry.max_attempts = 3;
        retry.initial_backoff_ms = 5;
        Status connected = session.ConnectWithRetry(dial, retry);
        redials += session.retry_metrics().retryable_failures;
        // On failure every dialed channel is already destroyed (only a
        // successful connect keeps one), so `wrapper` is only valid —
        // and only read — when the session owns the final channel.
        if (!connected.ok()) return;  // zero goodput for this client
        for (size_t q = 0; q < queries_per_client; ++q) {
          SelectionVector sel = client_gen.RandomSelection(n, n / 4);
          BigInt expected(age.SelectedSum(sel).ValueOrDie());
          Result<BigInt> got = session.RunQuery(QuerySpec{}, sel);
          if (got.ok() && *got == expected) ++ok_queries;
          if (!got.ok()) break;  // transport died; session is unusable
        }
        session.Finish().IgnoreError();
        if (wrapper != nullptr) faults_injected += wrapper->counters().faults();
      });
    }
    for (std::thread& t : workers) t.join();
    double wall = timer.ElapsedSeconds();
    host.Stop();

    size_t total = clients * queries_per_client;
    std::printf("%10zu %12zu %10zu %14.3f %12.2f %10llu %10llu\n", clients,
                total, ok_queries.load(), wall, ok_queries.load() / wall,
                static_cast<unsigned long long>(faults_injected.load()),
                static_cast<unsigned long long>(redials.load()));
  }
  std::printf(
      "\nexpected shape: goodput tracks the fault-free table within the "
      "injected fault\nrate; every loss is a typed, bounded failure (deadline "
      "or redial), never a hang.\n\n");
  return 0;
}

}  // namespace
