// Ablation: multi-session service throughput. The paper measures one
// client against one server; a deployment serves many analysts at once.
// This table drives the concurrent ServiceHost (accept thread + one
// session thread per client, folds on the shared ThreadPool) with 1..8
// simultaneous clients running mixed-kind queries over one connection
// each, and reports aggregate queries/sec. Near-flat scaling up to the
// core count means session isolation adds no serialization beyond the
// shared fold pool; each query's result is checked against plaintext.

#include <atomic>
#include <thread>

#include "bench/figlib.h"
#include "core/service_host.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const size_t n = FullScale() ? 10000 : 2000;
  const size_t queries_per_client = 4;

  ChaCha20Rng rng(3100);
  WorkloadGenerator gen(rng);
  Database age("age", gen.UniformDatabase(n, 1000).values());
  Database income("income", gen.UniformDatabase(n, 1000).values());
  ColumnRegistry registry;
  if (!registry.Register(age).ok() || !registry.Register(income).ok()) {
    std::printf("registry setup failed\n");
    return 1;
  }

  std::printf("Ablation: concurrent sessions at n=%zu, %zu queries/client "
              "(measured)\n",
              n, queries_per_client);
  std::printf("%10s %12s %14s %12s %10s\n", "clients", "queries", "wall (s)",
              "queries/s", "correct");

  for (size_t clients : {1u, 2u, 4u, 8u}) {
    ServiceHostOptions options;
    options.default_column = "age";
    ServiceHost host(&registry, options);
    std::string path = "/tmp/ppstats_svc_bench.sock";
    if (!host.Start(path).ok()) {
      std::printf("host start failed\n");
      return 1;
    }

    std::vector<PaillierKeyPair> client_keys;
    for (size_t c = 0; c < clients; ++c) {
      ChaCha20Rng key_rng(3200 + c);
      client_keys.push_back(
          Paillier::GenerateKeyPair(256, key_rng).ValueOrDie());
    }

    std::atomic<int> wrong{0};
    Stopwatch timer;
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        ChaCha20Rng client_rng(3300 + c);
        WorkloadGenerator client_gen(client_rng);
        auto channel = ConnectUnixSocket(path);
        if (!channel.ok()) {
          ++wrong;
          return;
        }
        QuerySession session(client_keys[c].private_key, client_rng, {});
        if (!session.Connect(**channel).ok()) {
          ++wrong;
          return;
        }
        for (size_t q = 0; q < queries_per_client; ++q) {
          SelectionVector sel = client_gen.RandomSelection(n, n / 4);
          QuerySpec spec;
          BigInt expected;
          if (q % 2 == 0) {
            expected = BigInt(age.SelectedSum(sel).ValueOrDie());
          } else {
            spec.kind = StatisticKind::kSumOfSquares;
            spec.column = "income";
            expected = BigInt(income.SelectedSumOfSquares(sel).ValueOrDie());
          }
          Result<BigInt> got = session.RunQuery(spec, sel);
          if (!got.ok() || *got != expected) ++wrong;
        }
        (void)session.Finish();
      });
    }
    for (std::thread& t : workers) t.join();
    double wall = timer.ElapsedSeconds();
    host.Stop();

    size_t total = clients * queries_per_client;
    std::printf("%10zu %12zu %14.3f %12.2f %10s\n", clients, total, wall,
                total / wall, wrong.load() == 0 ? "yes" : "NO");
  }
  std::printf(
      "\nexpected shape: aggregate throughput grows with client count until "
      "the cores\nsaturate, then flattens; 'correct yes' on every row is the "
      "invariant.\n\n");
  return 0;
}
