// Ablation: multi-session service throughput. The paper measures one
// client against one server; a deployment serves many analysts at once.
// This table drives the concurrent ServiceHost (accept thread + one
// session thread per client, folds on the shared ThreadPool) with 1..8
// simultaneous clients running mixed-kind queries over one connection
// each, and reports aggregate queries/sec. Near-flat scaling up to the
// core count means session isolation adds no serialization beyond the
// shared fold pool; each query's result is checked against plaintext.
//
// --chaos switches to the robustness variant: ~1% of frames on each
// side of the wire are faulted (delay/truncate/garble/drop/disconnect,
// seeded), sessions run behind I/O deadlines, and clients redial with
// exponential backoff. The table then reports goodput — queries that
// still completed correctly per second — plus the fault and retry
// counts, quantifying what the robustness layer costs under a noisy
// transport.
//
// --engine=threaded|reactor selects the ServiceHost engine (default
// threaded): thread-per-session, or the epoll reactor with folds on the
// shared work-stealing pool. Comparing the two tables isolates what the
// event-driven engine costs (or saves) at each client count. When
// PPSTATS_BENCH_JSON_DIR is set the fault-free table is also written to
// <dir>/BENCH_ablation_service_host_<engine>.json.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "bench/figlib.h"
#include "core/service_host.h"
#include "net/fault_injection.h"
#include "obs/export.h"

namespace {

int RunChaosMode(ppstats::ServiceEngine engine, const char* engine_name);

}  // namespace

int main(int argc, char** argv) {
  using namespace ppstats;
  using namespace ppstats::bench;

  bool chaos = false;
  ServiceEngine engine = ServiceEngine::kThreaded;
  const char* engine_name = "threaded";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--chaos")) {
      chaos = true;
    } else if (!std::strcmp(argv[i], "--engine=reactor") ||
               (!std::strcmp(argv[i], "--engine") && i + 1 < argc &&
                !std::strcmp(argv[i + 1], "reactor") && ++i)) {
      engine = ServiceEngine::kReactor;
      engine_name = "reactor";
    } else if (!std::strcmp(argv[i], "--engine=threaded") ||
               (!std::strcmp(argv[i], "--engine") && i + 1 < argc &&
                !std::strcmp(argv[i + 1], "threaded") && ++i)) {
      engine = ServiceEngine::kThreaded;
      engine_name = "threaded";
    } else {
      std::fprintf(stderr,
                   "usage: ablation_service_host [--chaos] "
                   "[--engine=threaded|reactor]\n");
      return 2;
    }
  }
  if (chaos) return RunChaosMode(engine, engine_name);

  const size_t n = FullScale() ? 10000 : 2000;
  const size_t queries_per_client = 4;

  ChaCha20Rng rng(3100);
  WorkloadGenerator gen(rng);
  Database age("age", gen.UniformDatabase(n, 1000).values());
  Database income("income", gen.UniformDatabase(n, 1000).values());
  ColumnRegistry registry;
  if (!registry.Register(age).ok() || !registry.Register(income).ok()) {
    std::printf("registry setup failed\n");
    return 1;
  }

  std::printf("Ablation: concurrent sessions at n=%zu, %zu queries/client, "
              "engine=%s (measured)\n",
              n, queries_per_client, engine_name);
  std::printf("%10s %12s %14s %12s %10s\n", "clients", "queries", "wall (s)",
              "queries/s", "correct");

  struct Row {
    size_t clients;
    size_t queries;
    double wall_s;
    double qps;
    bool correct;
  };
  std::vector<Row> rows;

  for (size_t clients : {1u, 2u, 4u, 8u}) {
    ServiceHostOptions options;
    options.default_column = "age";
    options.engine = engine;
    options.reactor_threads = 2;
    ServiceHost host(&registry, options);
    std::string path = "/tmp/ppstats_svc_bench.sock";
    if (!host.Start(path).ok()) {
      std::printf("host start failed\n");
      return 1;
    }

    std::vector<PaillierKeyPair> client_keys;
    for (size_t c = 0; c < clients; ++c) {
      ChaCha20Rng key_rng(3200 + c);
      client_keys.push_back(
          Paillier::GenerateKeyPair(256, key_rng).ValueOrDie());
    }

    std::atomic<int> wrong{0};
    Stopwatch timer;
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        ChaCha20Rng client_rng(3300 + c);
        WorkloadGenerator client_gen(client_rng);
        auto channel = ConnectUnixSocket(path);
        if (!channel.ok()) {
          ++wrong;
          return;
        }
        QuerySession session(client_keys[c].private_key, client_rng, {});
        if (!session.Connect(**channel).ok()) {
          ++wrong;
          return;
        }
        for (size_t q = 0; q < queries_per_client; ++q) {
          SelectionVector sel = client_gen.RandomSelection(n, n / 4);
          QuerySpec spec;
          BigInt expected;
          if (q % 2 == 0) {
            expected = BigInt(age.SelectedSum(sel).ValueOrDie());
          } else {
            spec.kind = StatisticKind::kSumOfSquares;
            spec.column = "income";
            expected = BigInt(income.SelectedSumOfSquares(sel).ValueOrDie());
          }
          Result<BigInt> got = session.RunQuery(spec, sel);
          if (!got.ok() || *got != expected) ++wrong;
        }
        session.Finish().IgnoreError();
      });
    }
    for (std::thread& t : workers) t.join();
    double wall = timer.ElapsedSeconds();
    host.Stop();

    size_t total = clients * queries_per_client;
    std::printf("%10zu %12zu %14.3f %12.2f %10s\n", clients, total, wall,
                total / wall, wrong.load() == 0 ? "yes" : "NO");
    rows.push_back({clients, total, wall, total / wall, wrong.load() == 0});
  }
  std::printf(
      "\nexpected shape: aggregate throughput grows with client count until "
      "the cores\nsaturate, then flattens; 'correct yes' on every row is the "
      "invariant.\n\n");

  if (const char* dir = std::getenv("PPSTATS_BENCH_JSON_DIR")) {
    std::string json = "{\n";
    json += "  \"figure\": \"ablation_service_host\",\n";
    json += std::string("  \"engine\": \"") + engine_name + "\",\n";
    json += "  \"unit\": \"queries_per_second\",\n  \"points\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "    {\"clients\": %zu, \"queries\": %zu, "
                    "\"wall_s\": %.6f, \"qps\": %.2f, \"correct\": %s}%s\n",
                    rows[i].clients, rows[i].queries, rows[i].wall_s,
                    rows[i].qps, rows[i].correct ? "true" : "false",
                    i + 1 < rows.size() ? "," : "");
      json += line;
    }
    json += "  ]\n}\n";
    (void)obs::WriteFileAtomic(std::string(dir) +
                                   "/BENCH_ablation_service_host_" +
                                   engine_name + ".json",
                               json);
  }
  return 0;
}

namespace {

int RunChaosMode(ppstats::ServiceEngine engine, const char* engine_name) {
  using namespace ppstats;
  using namespace ppstats::bench;

  const size_t n = FullScale() ? 4000 : 1000;
  const size_t queries_per_client = 4;

  ChaCha20Rng rng(3100);
  WorkloadGenerator gen(rng);
  Database age("age", gen.UniformDatabase(n, 1000).values());
  ColumnRegistry registry;
  if (!registry.Register(age).ok()) {
    std::printf("registry setup failed\n");
    return 1;
  }

  FaultInjectionOptions faults;  // defaults: ~1% per frame, all kinds
  faults.delay_ms = 20;

  std::printf("Ablation: goodput under ~1%% injected faults per frame, "
              "both directions, n=%zu, engine=%s (measured)\n", n,
              engine_name);
  std::printf("%10s %12s %10s %14s %12s %10s %10s\n", "clients", "queries",
              "ok", "wall (s)", "goodput q/s", "faults", "redials");

  for (size_t clients : {1u, 2u, 4u, 8u}) {
    ServiceHostOptions options;
    options.default_column = "age";
    options.engine = engine;
    options.reactor_threads = 2;
    options.io_deadline_ms = 5000;
    options.fault_injection = faults;
    options.fault_seed = 4100 + clients;
    ServiceHost host(&registry, options);
    std::string path = "/tmp/ppstats_svc_bench.sock";
    if (!host.Start(path).ok()) {
      std::printf("host start failed\n");
      return 1;
    }

    std::vector<PaillierKeyPair> client_keys;
    for (size_t c = 0; c < clients; ++c) {
      ChaCha20Rng key_rng(3200 + c);
      client_keys.push_back(
          Paillier::GenerateKeyPair(256, key_rng).ValueOrDie());
    }

    std::atomic<size_t> ok_queries{0};
    std::atomic<uint64_t> faults_injected{0};
    std::atomic<uint64_t> redials{0};
    Stopwatch timer;
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        ChaCha20Rng client_rng(3300 + c);
        ChaCha20Rng fault_rng(4200 + c);
        WorkloadGenerator client_gen(client_rng);
        // Each dial wraps the fresh socket in the client-side fault
        // layer; the wrapper pointer stays valid inside the session.
        FaultInjectingChannel* wrapper = nullptr;
        ChannelFactory dial =
            [&]() -> Result<std::unique_ptr<Channel>> {
          auto socket = ConnectUnixSocket(path);
          if (!socket.ok()) return socket.status();
          (*socket)->set_read_deadline(std::chrono::milliseconds(10000));
          (*socket)->set_write_deadline(std::chrono::milliseconds(10000));
          auto faulty = std::make_unique<FaultInjectingChannel>(
              std::move(*socket), faults, fault_rng);
          wrapper = faulty.get();
          return std::unique_ptr<Channel>(std::move(faulty));
        };
        QuerySession session(client_keys[c].private_key, client_rng, {});
        RetryOptions retry;
        retry.max_attempts = 3;
        retry.initial_backoff_ms = 5;
        Status connected = session.ConnectWithRetry(dial, retry);
        redials += session.retry_metrics().retryable_failures;
        // On failure every dialed channel is already destroyed (only a
        // successful connect keeps one), so `wrapper` is only valid —
        // and only read — when the session owns the final channel.
        if (!connected.ok()) return;  // zero goodput for this client
        for (size_t q = 0; q < queries_per_client; ++q) {
          SelectionVector sel = client_gen.RandomSelection(n, n / 4);
          BigInt expected(age.SelectedSum(sel).ValueOrDie());
          Result<BigInt> got = session.RunQuery(QuerySpec{}, sel);
          if (got.ok() && *got == expected) ++ok_queries;
          if (!got.ok()) break;  // transport died; session is unusable
        }
        session.Finish().IgnoreError();
        if (wrapper != nullptr) faults_injected += wrapper->counters().faults();
      });
    }
    for (std::thread& t : workers) t.join();
    double wall = timer.ElapsedSeconds();
    host.Stop();

    size_t total = clients * queries_per_client;
    std::printf("%10zu %12zu %10zu %14.3f %12.2f %10llu %10llu\n", clients,
                total, ok_queries.load(), wall, ok_queries.load() / wall,
                static_cast<unsigned long long>(faults_injected.load()),
                static_cast<unsigned long long>(redials.load()));
  }
  std::printf(
      "\nexpected shape: goodput tracks the fault-free table within the "
      "injected fault\nrate; every loss is a typed, bounded failure (deadline "
      "or redial), never a hang.\n\n");
  return 0;
}

}  // namespace
