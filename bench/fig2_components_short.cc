// Figure 2: components of overall runtime without any optimizations,
// short distance (cluster nodes behind the HPC switch).
//
// Paper's finding: client encryption dominates; server computation is
// significantly less; communication is small on the LAN; decryption is a
// constant. ~20 minutes total for 100,000 elements with 512-bit keys.

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  std::vector<MeasuredRun> runs;
  for (size_t n : DatabaseSizes()) {
    runs.push_back(MeasureSelectedSum(keys, n, MeasureOptions{}));
  }
  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();
  PrintComponentsTable(
      "Figure 2: runtime components, no optimizations, short distance", env,
      runs);
  EmitComponentsJson("fig2", env, runs);
  return 0;
}
