// Ablation: batching chunk size. The paper fixed the chunk at 100
// elements and observed ~10%; the optimal chunk balances pipeline
// overlap against per-message overhead (paper Sec 3.2 discusses the
// trade-off qualitatively).

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();
  const size_t n = FullScale() ? 10000 : 1000;

  MeasuredRun plain =
      MeasureSelectedSum(keys, n, MeasureOptions{.seed = 12000});
  double base = plain.metrics.SequentialSeconds(env);

  std::printf("Ablation: chunk size sweep at n=%zu, short distance\n", n);
  std::printf("%10s %18s %14s\n", "chunk", "pipelined (min)", "gain vs none");
  for (size_t chunk : {10u, 25u, 50u, 100u, 250u, 500u}) {
    if (chunk > n) break;
    MeasuredRun run = MeasureSelectedSum(
        keys, n, MeasureOptions{.chunk_size = chunk, .seed = 12000});
    double pipelined = run.metrics.PipelinedSeconds(env).ValueOrDie();
    std::printf("%10zu %18.4f %13.1f%%\n", chunk, ToMinutes(pipelined),
                100.0 * (1.0 - pipelined / base));
  }
  std::printf("unoptimized baseline: %.4f min\n\n", ToMinutes(base));
  return 0;
}
