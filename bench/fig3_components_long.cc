// Figure 3: components of overall runtime without any optimizations,
// long distance (500 MHz UltraSparc client in Chicago, 1 GHz Pentium
// server in Hoboken, 56 Kbps dial-up).
//
// Paper's finding: communication becomes a substantial component over
// the modem, but computation still dominates.

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  std::vector<MeasuredRun> runs;
  for (size_t n : DatabaseSizes()) {
    runs.push_back(MeasureSelectedSum(keys, n, MeasureOptions{.seed = 3004}));
  }
  ExecutionEnvironment env = ExecutionEnvironment::LongDistance2004();
  PrintComponentsTable(
      "Figure 3: runtime components, no optimizations, long distance",
      env, runs);
  EmitComponentsJson("fig3", env, runs);

  // The paper's headline check: computation remains the bottleneck even
  // over the 56 Kbps link.
  const MeasuredRun& biggest = runs.back();
  ComponentBreakdown c = biggest.metrics.Components(env);
  double compute = c.client_encrypt_s + c.server_compute_s;
  std::printf("computation/communication at n=%zu: %.2f (paper: > 1)\n\n",
              biggest.n, compute / c.communication_s);
  return 0;
}
