// Extension bench: Damgård–Jurik parameter sweep.
//
// The paper fixes Paillier (s = 1). Larger s shrinks ciphertext
// expansion — the knob a bandwidth-bound deployment (the paper's 56 Kbps
// scenario) would turn — at the price of slower arithmetic on n^{s+1}.

#include "bench/figlib.h"
#include "common/stopwatch.h"
#include "bigint/modarith.h"
#include "crypto/damgard_jurik.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  ChaCha20Rng rng(1800);
  const int reps = FullScale() ? 30 : 10;

  std::printf("Extension: Damgård–Jurik s sweep (512-bit modulus)\n");
  std::printf("%4s %16s %16s %14s %14s %12s\n", "s", "plaintext bits",
              "ciphertext bits", "expansion", "enc (ms)", "dec (ms)");
  for (size_t s : {1u, 2u, 3u, 5u, 7u}) {
    DjKeyPair kp = DamgardJurik::GenerateKeyPair(512, s, rng).ValueOrDie();
    const DjPublicKey& pub = kp.public_key;

    BigInt m = RandomBelow(rng, pub.n_s());
    Stopwatch enc_timer;
    DjCiphertext ct;
    for (int i = 0; i < reps; ++i) {
      ct = DamgardJurik::Encrypt(pub, m, rng).ValueOrDie();
    }
    double enc_ms = enc_timer.ElapsedSeconds() / reps * 1e3;

    Stopwatch dec_timer;
    BigInt dec;
    for (int i = 0; i < reps; ++i) {
      dec = DamgardJurik::Decrypt(kp.private_key, ct).ValueOrDie();
    }
    double dec_ms = dec_timer.ElapsedSeconds() / reps * 1e3;
    if (dec != m) {
      std::printf("CORRECTNESS FAILURE at s=%zu\n", s);
      return 1;
    }

    double expansion = static_cast<double>(pub.n_s1().BitLength()) /
                       pub.n_s().BitLength();
    std::printf("%4zu %16zu %16zu %14.3f %14.3f %12.3f\n", s,
                pub.n_s().BitLength(), pub.n_s1().BitLength(), expansion,
                enc_ms, dec_ms);
  }
  std::printf(
      "\nexpected shape: expansion falls as (s+1)/s toward 1; per-"
      "ciphertext cost grows\nroughly cubically in s, but cost per "
      "plaintext *bit* favors moderate s — the\nbandwidth-starved modem "
      "scenario of Figure 6 would choose s > 1.\n\n");
  return 0;
}
