// Shared main() for the google-benchmark micro suites.
//
// BENCHMARK_MAIN() prints a console table and stops there; the repo's
// bench trajectory wants one JSON document per suite per run, under the
// same env contract as the figure benches (figlib's EmitComponentsJson):
// when PPSTATS_BENCH_JSON_DIR is set, <dir>/BENCH_<suite>.json is
// written atomically with every benchmark's per-iteration timings.
// Console output is unchanged either way.

#ifndef PPSTATS_BENCH_MICROLIB_H_
#define PPSTATS_BENCH_MICROLIB_H_

namespace ppstats::bench {

/// Runs all registered google-benchmark benchmarks (honoring the usual
/// --benchmark_* flags, so CI can run a filtered short mode) and emits
/// BENCH_<suite>.json when PPSTATS_BENCH_JSON_DIR is set. Returns the
/// process exit code.
int RunMicroSuite(int argc, char** argv, const char* suite);

}  // namespace ppstats::bench

/// Drop-in replacement for BENCHMARK_MAIN() in micro suites; `suite`
/// names the emitted JSON document.
#define PPSTATS_MICRO_BENCH_MAIN(suite)                      \
  int main(int argc, char** argv) {                          \
    return ppstats::bench::RunMicroSuite(argc, argv, suite); \
  }

#endif  // PPSTATS_BENCH_MICROLIB_H_
