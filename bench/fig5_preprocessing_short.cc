// Figure 5: components of overall runtime after preprocessing the index
// vector (precomputed encryptions of 0 and 1), short distance.
//
// Paper's finding: the client's online processing time collapses (it
// just reads stored encryptions); the server's computation becomes the
// dominant factor; overall online runtime drops by ~82%.

#include "bench/figlib.h"

int main() {
  using namespace ppstats;
  using namespace ppstats::bench;

  const PaillierKeyPair& keys = BenchKeyPair();
  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();

  std::vector<MeasuredRun> plain_runs, preprocessed_runs;
  for (size_t n : DatabaseSizes()) {
    plain_runs.push_back(
        MeasureSelectedSum(keys, n, MeasureOptions{.seed = 5004}));
    preprocessed_runs.push_back(MeasureSelectedSum(
        keys, n,
        MeasureOptions{.preprocess_indices = true, .seed = 5004}));
  }
  PrintComponentsTable(
      "Figure 5: runtime components after index-vector preprocessing, "
      "short distance (online phase only)",
      env, preprocessed_runs);
  EmitComponentsJson("fig5", env, preprocessed_runs);

  const MeasuredRun& big_plain = plain_runs.back();
  const MeasuredRun& big_pre = preprocessed_runs.back();
  double plain_total = big_plain.metrics.SequentialSeconds(env);
  double pre_total = big_pre.metrics.SequentialSeconds(env);
  std::printf(
      "online runtime reduction at n=%zu: %.1f%% (paper: ~82%%)\n",
      big_pre.n, 100.0 * (1.0 - pre_total / plain_total));
  std::printf(
      "offline preprocessing cost at n=%zu: %.2f min (amortizable; "
      "suits the paper's PDA scenario)\n\n",
      big_pre.n,
      ToMinutes(big_pre.offline_preprocess_s * env.client_cpu_scale));
  return 0;
}
