// Quickstart: privately compute the sum of selected rows of a remote
// database in ~20 lines of API.
//
//   build/examples/quickstart
//
// The server never learns which rows were selected; the client never
// learns anything but the sum.

#include <cstdio>

#include "core/statistics.h"
#include "crypto/chacha20_rng.h"
#include "db/database.h"

int main() {
  using namespace ppstats;

  // Deterministic randomness so the example is reproducible.
  ChaCha20Rng rng(/*seed=*/1);

  // 1. The client generates a Paillier key pair (512-bit, as in the paper).
  PaillierKeyPair keys = Paillier::GenerateKeyPair(512, rng).ValueOrDie();

  // 2. The server holds a database of numbers.
  Database db("monthly-kwh", {312, 284, 471, 198, 305, 422, 267, 390});

  // 3. The client wants the sum of rows 1, 3, and 6 — without telling
  //    the server which rows.
  SelectionVector selection = {false, true, false, true,
                               false, false, true, false};

  // 4. Run the protocol.
  Result<PrivateSumResult> result =
      PrivateSelectedSum(keys.private_key, db, selection, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "protocol failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("private selected sum: %s (expected 284+198+267 = 749)\n",
              result->sum.ToDecimal().c_str());
  std::printf("traffic: %llu bytes to server, %llu bytes back\n",
              static_cast<unsigned long long>(
                  result->metrics.client_to_server.bytes),
              static_cast<unsigned long long>(
                  result->metrics.server_to_client.bytes));
  return 0;
}
