// Scenario: the paper's Section 3.3 mobile client. A PDA-class device
// with weak CPU but decent storage precomputes encryptions overnight
// (while docked), then answers survey queries over a slow link with
// near-zero online computation.
//
//   build/examples/mobile_pda_survey

#include <cstdio>

#include "common/stopwatch.h"
#include "core/runner.h"
#include "crypto/chacha20_rng.h"
#include "crypto/pool.h"
#include "db/workload.h"

int main() {
  using namespace ppstats;

  ChaCha20Rng rng(77);
  const size_t n = 1500;

  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n, 100000);  // a survey-results table
  SelectionVector selection = gen.RandomSelection(n, 400);
  uint64_t expected = db.SelectedSum(selection).ValueOrDie();

  PaillierKeyPair keys = Paillier::GenerateKeyPair(512, rng).ValueOrDie();

  // --- Overnight (docked): precompute encryptions of 0 and 1. ---------
  Stopwatch offline_timer;
  EncryptionPool pool(keys.public_key);
  size_t ones = 0;
  for (bool s : selection) ones += s ? 1 : 0;
  if (!pool.Generate(BigInt(0), n - ones, rng).ok() ||
      !pool.Generate(BigInt(1), ones, rng).ok()) {
    std::fprintf(stderr, "pool generation failed\n");
    return 1;
  }
  double offline_s = offline_timer.ElapsedSeconds();

  // --- In the field: run the query from the pool. ---------------------
  SumClientOptions options;
  options.encryption_pool = &pool;
  options.chunk_size = 100;
  SumClient client(keys.private_key, selection, options, rng);
  SumServer server(keys.public_key, &db);
  Result<SumRunResult> run = RunSelectedSum(client, server);
  if (!run.ok()) {
    std::fprintf(stderr, "protocol failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  // Report under the paper's long-distance environment: a weak client on
  // a 56 Kbps uplink.
  ExecutionEnvironment env = ExecutionEnvironment::LongDistance2004();
  ComponentBreakdown c = run->metrics.Components(env);

  std::printf("query result: %s (expected %llu) — %s\n",
              run->sum.ToDecimal().c_str(),
              static_cast<unsigned long long>(expected),
              run->sum == BigInt(expected) ? "correct" : "WRONG");
  std::printf("\nPDA-era (2004, 56 Kbps) time budget for n=%zu:\n", n);
  std::printf("  offline precompute (docked): %8.1f s\n",
              offline_s * env.client_cpu_scale);
  std::printf("  online: client table reads   %8.2f s\n",
              c.client_encrypt_s);
  std::printf("  online: modem transfer       %8.2f s\n",
              c.communication_s);
  std::printf("  online: server computation   %8.2f s\n",
              c.server_compute_s);
  std::printf("  online: decrypt result       %8.3f s\n",
              c.client_decrypt_s);
  std::printf("\npool after query: %zu unused encryptions, %zu misses\n",
              pool.available(BigInt(0)) + pool.available(BigInt(1)),
              pool.misses());
  return 0;
}
