// Scenario: a researcher computes cohort statistics over a hospital's
// database. The hospital must not learn which patients are in the
// researcher's cohort (that would reveal the study's inclusion
// criteria); the researcher must learn only aggregates, not individual
// records. This is the kind of privacy-preserving data mining workload
// the paper's introduction motivates.
//
//   build/examples/private_medical_stats

#include <cmath>
#include <cstdio>

#include "core/statistics.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"

int main() {
  using namespace ppstats;

  ChaCha20Rng rng(2024);

  // The hospital's database: systolic blood pressure readings for 2,000
  // patients (synthetic, skewed like real clinical measurements).
  WorkloadGenerator gen(rng);
  Database readings = gen.UniformDatabase(2000, 80);  // offsets over 100
  std::vector<uint32_t> values = readings.values();
  for (auto& v : values) v += 100;  // 100..180 mmHg
  Database db("systolic-bp", std::move(values));

  // The researcher's cohort: ~15% of patients matched the (secret)
  // inclusion criteria.
  SelectionVector cohort = gen.BernoulliSelection(db.size(), 0.15);

  // 1,024-bit keys: a stronger-than-paper setting a real deployment
  // would use today.
  PaillierKeyPair keys = Paillier::GenerateKeyPair(1024, rng).ValueOrDie();

  // Mean and variance need two protocol runs (sum, sum of squares); the
  // library batches the index vector in chunks of 100 (paper Sec 3.2).
  SumClientOptions options;
  options.chunk_size = 100;
  Result<PrivateVarianceResult> stats =
      PrivateVariance(keys.private_key, db, cohort, rng, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("cohort size:        %zu patients (known to researcher)\n",
              stats->count);
  std::printf("cohort mean BP:     %.1f mmHg\n", stats->mean);
  std::printf("cohort variance:    %.1f (std dev %.1f mmHg)\n",
              stats->variance, std::sqrt(stats->variance));
  std::printf("\nwhat each side saw:\n");
  std::printf("  hospital: %llu encrypted index vectors, zero plaintext bits"
              " about the cohort\n",
              static_cast<unsigned long long>(
                  stats->metrics.client_to_server.messages));
  std::printf("  researcher: 2 ciphertexts (sum, sum of squares), nothing "
              "about non-cohort patients\n");
  std::printf("  wire total: %.1f KB\n",
              (stats->metrics.client_to_server.bytes +
               stats->metrics.server_to_client.bytes) /
                  1024.0);
  return 0;
}
