// Scenario: choosing a protocol. Runs the same selected-sum task four
// ways — the two trivial non-private baselines, the paper's homomorphic
// protocol, and a general-SMC (Yao garbled circuit) implementation — and
// prints what each costs and what each leaks. This is the paper's
// Section 2 argument in executable form.
//
//   build/examples/yao_vs_homomorphic

#include <cstdio>

#include "core/statistics.h"
#include "core/trivial_baselines.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"
#include "yao/selected_sum_circuit.h"

int main() {
  using namespace ppstats;

  ChaCha20Rng rng(55);
  const size_t n = 100;  // the size the paper quotes for Fairplay

  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n, 1000000);
  SelectionVector selection = gen.RandomSelection(n, 40);
  uint64_t expected = db.SelectedSum(selection).ValueOrDie();

  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();
  std::printf("selected sum over %zu rows (expected %llu), 2004 hardware\n\n",
              n, static_cast<unsigned long long>(expected));
  std::printf("%-22s %12s %12s %9s  %s\n", "protocol", "time (s)",
              "wire (KB)", "correct", "who learns what");

  // 1. Trivial: client sends indices in the clear.
  BaselineRunResult idx = RunNonPrivateIndexSum(db, selection).ValueOrDie();
  std::printf("%-22s %12.4f %12.2f %9s  %s\n", "index-send (no priv)",
              idx.TotalSeconds(env),
              (idx.client_to_server.bytes + idx.server_to_client.bytes) /
                  1024.0,
              idx.sum == expected ? "yes" : "NO",
              "server learns the selection");

  // 2. Trivial: server ships the database.
  BaselineRunResult full = RunFullTransferSum(db, selection).ValueOrDie();
  std::printf("%-22s %12.4f %12.2f %9s  %s\n", "full-transfer (no priv)",
              full.TotalSeconds(env),
              (full.client_to_server.bytes + full.server_to_client.bytes) /
                  1024.0,
              full.sum == expected ? "yes" : "NO",
              "client learns the whole database");

  // 3. The paper's protocol: homomorphic selected sum.
  PaillierKeyPair keys = Paillier::GenerateKeyPair(512, rng).ValueOrDie();
  PrivateSumResult hom =
      PrivateSelectedSum(keys.private_key, db, selection, rng).ValueOrDie();
  std::printf("%-22s %12.4f %12.2f %9s  %s\n", "homomorphic (private)",
              hom.metrics.SequentialSeconds(env),
              (hom.metrics.client_to_server.bytes +
               hom.metrics.server_to_client.bytes) /
                  1024.0,
              hom.sum == BigInt(expected) ? "yes" : "NO",
              "nobody learns anything extra");

  // 4. General SMC: Yao garbled circuits with real OT.
  YaoRunResult yao = RunYaoSelectedSum(db, selection, rng).ValueOrDie();
  std::printf("%-22s %12.4f %12.2f %9s  %s\n", "yao GC (private)",
              yao.TotalSeconds(env),
              (yao.server_to_client.bytes + yao.client_to_server.bytes) /
                  1024.0,
              yao.sum == expected ? "yes" : "NO",
              "nobody learns anything extra");

  std::printf(
      "\ncircuit: %zu gates (%zu AND); the paper cites >= 15 min for "
      "Fairplay at this size.\nprivacy costs compute; generality costs "
      "bandwidth — the homomorphic protocol is the sweet spot.\n",
      yao.total_gates, yao.and_gates);
  return 0;
}
