// Scenario: the paper's Section 3.5 multi-client protocol. Three
// consortium members split the encryption work of one large private
// query three ways; the server blinds each partial sum so that no member
// learns another partition's subtotal, and the blinding cancels only
// when all partials are combined.
//
//   build/examples/multiclient_consortium

#include <cstdio>

#include "core/multiclient.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"

int main() {
  using namespace ppstats;

  ChaCha20Rng rng(33);
  const size_t n = 3000;
  const size_t k = 3;

  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n, 50000);
  SelectionVector selection = gen.RandomSelection(n, 1200);
  uint64_t expected = db.SelectedSum(selection).ValueOrDie();

  // Each consortium member has its own key pair.
  std::vector<PaillierKeyPair> key_storage;
  std::vector<const PaillierPrivateKey*> keys;
  for (size_t i = 0; i < k; ++i) {
    ChaCha20Rng key_rng(1000 + i);
    key_storage.push_back(
        Paillier::GenerateKeyPair(512, key_rng).ValueOrDie());
  }
  for (const PaillierKeyPair& kp : key_storage) {
    keys.push_back(&kp.private_key);
  }

  MultiClientConfig config;
  config.chunk_size = 100;
  Result<MultiClientRunResult> result =
      RunMultiClientSum(keys, db, selection, config, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "protocol failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();
  double parallel = result->ParallelSeconds(env);
  double single = result->SequentialSeconds(env);

  std::printf("consortium query over %zu rows, %zu members\n", n, k);
  std::printf("result: %s (expected %llu) — %s\n",
              result->total.ToDecimal().c_str(),
              static_cast<unsigned long long>(expected),
              result->total == BigInt(expected) ? "correct" : "WRONG");
  std::printf("\n2004-hardware time budget:\n");
  std::printf("  one client doing everything: %7.1f min\n", single / 60);
  std::printf("  %zu clients in parallel:       %7.1f min (%.2fx speedup)\n",
              k, parallel / 60, single / parallel);
  std::printf("\nphase 2 combining overhead: %llu ring messages, %llu bytes\n",
              static_cast<unsigned long long>(result->ring_traffic.messages),
              static_cast<unsigned long long>(result->ring_traffic.bytes));
  std::printf(
      "privacy: each member decrypted only a server-blinded partial sum;\n"
      "subtotals stay hidden until the ring combines all %zu partials.\n", k);
  return 0;
}
