// Scenario: private record lookup. A credit bureau holds a score table;
// a bank needs one customer's score but must not reveal *which*
// customer it is investigating (that alone is market-moving
// information). Computational PIR retrieves the record with sublinear
// communication — the direction the paper's underlying theory (selective
// private function evaluation) points for large databases.
//
//   build/examples/private_lookup

#include <cstdio>

#include "crypto/chacha20_rng.h"
#include "db/workload.h"
#include "pir/pir.h"

int main() {
  using namespace ppstats;

  ChaCha20Rng rng(88);
  const size_t n = 10000;

  WorkloadGenerator gen(rng);
  Database scores_raw = gen.UniformDatabase(n, 550);
  std::vector<uint32_t> values = scores_raw.values();
  for (auto& v : values) v += 300;  // 300..850
  Database db("credit-scores", std::move(values));

  const size_t customer = 4711;
  PaillierKeyPair keys = Paillier::GenerateKeyPair(512, rng).ValueOrDie();

  Result<PirRunResult> single =
      RunSingleLevelPir(db, customer, keys.private_key, rng);
  Result<PirRunResult> two =
      RunTwoLevelPir(db, customer, keys.private_key, rng);
  if (!single.ok() || !two.ok()) {
    std::fprintf(stderr, "PIR failed\n");
    return 1;
  }

  std::printf("customer #%zu score: %u (table says %u) — %s\n", customer,
              single->value, db.value(customer),
              single->value == db.value(customer) ? "correct" : "WRONG");
  std::printf("\ncommunication for one private lookup over %zu records:\n",
              n);
  std::printf("  ship whole table:       %8.1f KB (leaks everything)\n",
              n * 4.0 / 1024);
  std::printf("  single-level PIR:       %8.1f KB  (%zux%zu matrix)\n",
              (single->client_to_server.bytes +
               single->server_to_client.bytes) / 1024.0,
              single->layout.rows, single->layout.cols);
  std::printf("  two-level PIR:          %8.1f KB  (response: ONE "
              "ciphertext)\n",
              (two->client_to_server.bytes + two->server_to_client.bytes) /
                  1024.0);
  std::printf("\nthe bureau never learns which record was touched; the bank "
              "learns only one score.\n");
  return 0;
}
