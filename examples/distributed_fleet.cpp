// Scenario: one analyst, several data holders. A retail chain's regional
// warehouses each hold their own sales table; an analyst computes a
// fleet-wide selected sum. No warehouse learns which rows the analyst
// chose, the analyst learns no per-warehouse subtotal (the warehouses
// blind their partial sums with shares of zero), and nothing but the
// grand total leaves the protocol.
//
//   build/examples/distributed_fleet

#include <cstdio>

#include "core/distributed.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"

int main() {
  using namespace ppstats;

  ChaCha20Rng rng(99);

  // Four warehouses with differently-sized tables.
  WorkloadGenerator gen(rng);
  std::vector<Database> warehouses;
  warehouses.push_back(gen.UniformDatabase(800, 5000));
  warehouses.push_back(gen.UniformDatabase(1200, 5000));
  warehouses.push_back(gen.UniformDatabase(500, 5000));
  warehouses.push_back(gen.UniformDatabase(1500, 5000));
  std::vector<const Database*> fleet;
  size_t total_rows = 0;
  for (const Database& w : warehouses) {
    fleet.push_back(&w);
    total_rows += w.size();
  }

  // The analyst's secret selection over the concatenated logical table.
  SelectionVector selection = gen.RandomSelection(total_rows, total_rows / 3);

  // Ground truth for the demo.
  uint64_t expected = 0;
  {
    size_t offset = 0;
    for (const Database& w : warehouses) {
      for (size_t i = 0; i < w.size(); ++i) {
        if (selection[offset + i]) expected += w.value(i);
      }
      offset += w.size();
    }
  }

  PaillierKeyPair keys = Paillier::GenerateKeyPair(512, rng).ValueOrDie();
  DistributedConfig config;
  config.chunk_size = 100;

  Result<DistributedRunResult> result =
      RunDistributedSum(keys.private_key, fleet, selection, config, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  ExecutionEnvironment env = ExecutionEnvironment::ShortDistance2004();
  std::printf("fleet-wide selected sum over %zu warehouses (%zu rows)\n",
              fleet.size(), total_rows);
  std::printf("result: %s (expected %llu) — %s\n",
              result->total.ToDecimal().c_str(),
              static_cast<unsigned long long>(expected),
              result->total == BigInt(expected) ? "correct" : "WRONG");
  std::printf("\nper-warehouse traffic (the analyst's encryption work is "
              "shared across all):\n");
  for (size_t i = 0; i < result->server_metrics.size(); ++i) {
    const RunMetrics& m = result->server_metrics[i];
    std::printf("  warehouse %zu: %8.1f KB up, %5.1f KB down\n", i + 1,
                m.client_to_server.bytes / 1024.0,
                m.server_to_client.bytes / 1024.0);
  }
  std::printf("\n2004-hardware elapsed: %.1f min sequential, %.1f min with "
              "servers overlapped\n",
              result->SequentialSeconds(env) / 60,
              result->ParallelSeconds(env) / 60);
  std::printf("privacy: warehouse subtotals were blinded with shares of "
              "zero; only the grand total decrypts.\n");
  return 0;
}
