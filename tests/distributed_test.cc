#include "core/distributed.h"

#include <gtest/gtest.h>

#include "crypto/chacha20_rng.h"
#include "db/workload.h"

namespace ppstats {
namespace {

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(1313);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

// Splits one logical database into `parts` horizontal partitions.
std::vector<Database> Split(const Database& db, size_t parts) {
  std::vector<Database> out;
  size_t base = db.size() / parts;
  size_t extra = db.size() % parts;
  size_t offset = 0;
  for (size_t i = 0; i < parts; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    std::vector<uint32_t> values(db.values().begin() + offset,
                                 db.values().begin() + offset + len);
    out.emplace_back("part", std::move(values));
    offset += len;
  }
  return out;
}

class DistributedSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(DistributedSweepTest, TotalMatchesPlaintext) {
  auto [servers, n] = GetParam();
  ChaCha20Rng rng(servers * 1000 + n);
  WorkloadGenerator gen(rng);
  Database logical = gen.UniformDatabase(n, 10000);
  SelectionVector sel = gen.RandomSelection(n, n / 2);
  uint64_t truth = logical.SelectedSum(sel).ValueOrDie();

  std::vector<Database> parts = Split(logical, servers);
  std::vector<const Database*> ptrs;
  for (const Database& p : parts) ptrs.push_back(&p);

  DistributedRunResult result =
      RunDistributedSum(SharedKeyPair().private_key, ptrs, sel, {}, rng)
          .ValueOrDie();
  EXPECT_EQ(result.total, BigInt(truth));
  EXPECT_EQ(result.server_metrics.size(), servers);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedSweepTest,
    ::testing::Values(std::make_tuple(1, 10), std::make_tuple(2, 20),
                      std::make_tuple(3, 31), std::make_tuple(5, 47)));

TEST(DistributedTest, UnblindedModeAlsoCorrect) {
  ChaCha20Rng rng(1);
  WorkloadGenerator gen(rng);
  Database logical = gen.UniformDatabase(24, 100);
  SelectionVector sel = gen.RandomSelection(24, 9);
  uint64_t truth = logical.SelectedSum(sel).ValueOrDie();
  std::vector<Database> parts = Split(logical, 3);
  std::vector<const Database*> ptrs;
  for (const Database& p : parts) ptrs.push_back(&p);
  DistributedConfig config;
  config.blind_partials = false;
  DistributedRunResult result =
      RunDistributedSum(SharedKeyPair().private_key, ptrs, sel, config, rng)
          .ValueOrDie();
  EXPECT_EQ(result.total, BigInt(truth));
}

TEST(DistributedTest, BlindedPartialsHideSubtotals) {
  // With blinding on, the per-server decrypted values must not equal the
  // per-partition plaintext subtotals (with overwhelming probability).
  ChaCha20Rng rng(2);
  Database a("a", {100, 200});
  Database b("b", {300, 400});
  SelectionVector sel = {true, true, true, true};
  // Run with blinding; total is exact, but individual partials differ.
  DistributedRunResult blinded =
      RunDistributedSum(SharedKeyPair().private_key, {&a, &b}, sel, {}, rng)
          .ValueOrDie();
  EXPECT_EQ(blinded.total, BigInt(1000));
}

TEST(DistributedTest, ValidatesInputs) {
  ChaCha20Rng rng(3);
  Database a("a", {1, 2});
  Database empty("e", {});
  SelectionVector sel(2, true);
  EXPECT_FALSE(
      RunDistributedSum(SharedKeyPair().private_key, {}, sel, {}, rng).ok());
  EXPECT_FALSE(RunDistributedSum(SharedKeyPair().private_key, {&a, &empty},
                                 sel, {}, rng)
                   .ok());
  SelectionVector wrong(3, true);
  EXPECT_FALSE(
      RunDistributedSum(SharedKeyPair().private_key, {&a}, wrong, {}, rng)
          .ok());
  DistributedConfig big_m;
  big_m.blind_modulus = BigInt(1) << 300;
  EXPECT_FALSE(
      RunDistributedSum(SharedKeyPair().private_key, {&a}, sel, big_m, rng)
          .ok());
}

TEST(DistributedTest, ParallelBeatsSequentialWithManyServers) {
  ChaCha20Rng rng(4);
  WorkloadGenerator gen(rng);
  Database logical = gen.UniformDatabase(60, 1000);
  SelectionVector sel = gen.RandomSelection(60, 30);
  std::vector<Database> parts = Split(logical, 4);
  std::vector<const Database*> ptrs;
  for (const Database& p : parts) ptrs.push_back(&p);
  DistributedRunResult result =
      RunDistributedSum(SharedKeyPair().private_key, ptrs, sel, {}, rng)
          .ValueOrDie();
  ExecutionEnvironment env = ExecutionEnvironment::LongDistance2004();
  // Client encryption still dominates, but overlapping the four servers'
  // compute + modem transfers must help.
  EXPECT_LT(result.ParallelSeconds(env), result.SequentialSeconds(env));
}

TEST(DistributedTest, SingleServerEqualsPlainProtocol) {
  ChaCha20Rng rng(5);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(15, 100);
  SelectionVector sel = gen.RandomSelection(15, 6);
  uint64_t truth = db.SelectedSum(sel).ValueOrDie();
  DistributedRunResult result =
      RunDistributedSum(SharedKeyPair().private_key, {&db}, sel, {}, rng)
          .ValueOrDie();
  EXPECT_EQ(result.total, BigInt(truth));
}

}  // namespace
}  // namespace ppstats
