#include "net/network_model.h"

#include <gtest/gtest.h>

namespace ppstats {
namespace {

TEST(NetworkModelTest, ZeroTrafficIsFree) {
  EXPECT_EQ(NetworkModel::LanSwitch().TransferSeconds(0, 0), 0.0);
  EXPECT_EQ(NetworkModel::Modem56k().TransferSeconds(0, 0), 0.0);
}

TEST(NetworkModelTest, SerializationTimeMatchesBandwidth) {
  NetworkModel m{.name = "test",
                 .bandwidth_bps = 8000,  // 1000 bytes/s
                 .one_way_latency_s = 0,
                 .per_message_overhead_s = 0,
                 .per_message_header_bytes = 0};
  EXPECT_NEAR(m.TransferSeconds(1000, 1), 1.0, 1e-9);
  EXPECT_NEAR(m.TransferSeconds(2500, 1), 2.5, 1e-9);
}

TEST(NetworkModelTest, HeadersChargePerMessage) {
  NetworkModel m{.name = "test",
                 .bandwidth_bps = 8000,
                 .one_way_latency_s = 0,
                 .per_message_overhead_s = 0,
                 .per_message_header_bytes = 100};
  // 10 messages add 1000 header bytes = 1 extra second.
  EXPECT_NEAR(m.TransferSeconds(1000, 10), 2.0, 1e-9);
}

TEST(NetworkModelTest, LatencyAddsOncePerStream) {
  NetworkModel m{.name = "test",
                 .bandwidth_bps = 0,  // infinite
                 .one_way_latency_s = 0.5,
                 .per_message_overhead_s = 0.1,
                 .per_message_header_bytes = 0};
  EXPECT_NEAR(m.TransferSeconds(12345, 1), 0.6, 1e-9);
  EXPECT_NEAR(m.TransferSeconds(12345, 3), 0.8, 1e-9);
}

TEST(NetworkModelTest, ModemIsFarSlowerThanLan) {
  uint64_t bytes = 12'800'000;  // 100k ciphertexts of 128 B
  double lan = NetworkModel::LanSwitch().TransferSeconds(bytes, 1000);
  double modem = NetworkModel::Modem56k().TransferSeconds(bytes, 1000);
  EXPECT_GT(modem, lan * 1000);
  // 56 kbps should need roughly bytes*8/56000 seconds.
  EXPECT_NEAR(modem, bytes * 8.0 / 56e3, modem * 0.05);
}

TEST(NetworkModelTest, TrafficStatsOverload) {
  TrafficStats stats{4, 4000};
  NetworkModel m = NetworkModel::LanSwitch();
  EXPECT_EQ(m.TransferSeconds(stats), m.TransferSeconds(4000, 4));
}

TEST(NetworkModelTest, IdealLinkIsInstant) {
  EXPECT_EQ(NetworkModel::Ideal().TransferSeconds(1 << 30, 1000), 0.0);
}

TEST(NetworkModelTest, PresetNames) {
  EXPECT_EQ(NetworkModel::LanSwitch().name, "lan-switch");
  EXPECT_EQ(NetworkModel::Modem56k().name, "modem-56k");
}

}  // namespace
}  // namespace ppstats
