#include "db/database.h"

#include <gtest/gtest.h>

namespace ppstats {
namespace {

TEST(DatabaseTest, BasicAccessors) {
  Database db("salaries", {10, 20, 30});
  EXPECT_EQ(db.name(), "salaries");
  EXPECT_EQ(db.size(), 3u);
  EXPECT_FALSE(db.empty());
  EXPECT_EQ(db.value(1), 20u);
  EXPECT_EQ(db.values(), (std::vector<uint32_t>{10, 20, 30}));
}

TEST(DatabaseTest, EmptyDatabase) {
  Database db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.SelectedSum({}).ValueOrDie(), 0u);
}

TEST(DatabaseTest, SelectedSum) {
  Database db("d", {1, 2, 4, 8, 16});
  EXPECT_EQ(db.SelectedSum({true, false, true, false, true}).ValueOrDie(),
            21u);
  EXPECT_EQ(db.SelectedSum({false, false, false, false, false}).ValueOrDie(),
            0u);
  EXPECT_EQ(db.SelectedSum({true, true, true, true, true}).ValueOrDie(), 31u);
}

TEST(DatabaseTest, SelectedSumRejectsLengthMismatch) {
  Database db("d", {1, 2, 3});
  EXPECT_FALSE(db.SelectedSum({true}).ok());
  EXPECT_FALSE(db.SelectedSum({true, true, true, true}).ok());
}

TEST(DatabaseTest, WeightedSum) {
  Database db("d", {10, 20, 30});
  EXPECT_EQ(db.WeightedSum({1, 0, 2}).ValueOrDie(), 70u);
  EXPECT_EQ(db.WeightedSum({0, 0, 0}).ValueOrDie(), 0u);
  EXPECT_FALSE(db.WeightedSum({1, 2}).ok());
}

TEST(DatabaseTest, SelectedSumOfSquares) {
  Database db("d", {3, 4, 5});
  EXPECT_EQ(db.SelectedSumOfSquares({true, true, false}).ValueOrDie(), 25u);
  EXPECT_EQ(db.SelectedSumOfSquares({true, true, true}).ValueOrDie(), 50u);
  EXPECT_FALSE(db.SelectedSumOfSquares({true}).ok());
}

TEST(DatabaseTest, SumOfSquaresHandlesLargeValues) {
  // (2^32-1)^2 per element must not overflow uint64 for small counts.
  uint32_t big = 0xFFFFFFFFu;
  Database db("d", {big, big});
  uint64_t sq = static_cast<uint64_t>(big) * big;
  EXPECT_EQ(db.SelectedSumOfSquares({true, true}).ValueOrDie(), 2 * sq);
}

}  // namespace
}  // namespace ppstats
