// Cluster subsystem tests: shard maps, zero-share blinding, the wire
// extensions, and in-process coordinator fan-out over real sockets
// against real shard ServiceHosts (both engines).

#include "cluster/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bigint/modarith.h"
#include "common/thread_pool.h"
#include "core/distributed.h"
#include "core/messages.h"
#include "core/service_host.h"
#include "core/session.h"
#include "crypto/chacha20_rng.h"
#include "crypto/key_io.h"
#include "crypto/paillier.h"
#include "crypto/zero_share.h"
#include "db/column_registry.h"
#include "db/database.h"

namespace ppstats {
namespace {

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(4242);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

ShardDescriptor MakeShard(uint32_t id, const std::string& uri, uint64_t begin,
                          uint64_t end) {
  ShardDescriptor shard;
  shard.id = id;
  shard.uri = uri;
  shard.begin = begin;
  shard.end = end;
  return shard;
}

// ---------------------------------------------------------------------------
// Shard maps in the ColumnRegistry.

TEST(ClusterShardMapTest, RegistersAndResolvesAContiguousMap) {
  ColumnRegistry registry;
  ASSERT_TRUE(registry
                  .SetShards("v", {MakeShard(0, "unix:/a", 0, 10),
                                   MakeShard(1, "unix:/b", 10, 30)})
                  .ok());
  const std::vector<ShardDescriptor>* shards = registry.FindShards("v");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->size(), 2u);
  EXPECT_EQ(registry.ShardedRows("v"), 30u);
  EXPECT_EQ(registry.ShardedColumnNames(),
            std::vector<std::string>{"v"});
  EXPECT_EQ(registry.FindShards("nope"), nullptr);
}

TEST(ClusterShardMapTest, SortsShardsByRowRange) {
  ColumnRegistry registry;
  ASSERT_TRUE(registry
                  .SetShards("v", {MakeShard(1, "unix:/b", 10, 30),
                                   MakeShard(0, "unix:/a", 0, 10)})
                  .ok());
  const std::vector<ShardDescriptor>* shards = registry.FindShards("v");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->front().begin, 0u);
  EXPECT_EQ(shards->back().end, 30u);
}

TEST(ClusterShardMapTest, RejectsMalformedMaps) {
  ColumnRegistry registry;
  // Gap between shards.
  EXPECT_FALSE(registry
                   .SetShards("gap", {MakeShard(0, "unix:/a", 0, 10),
                                      MakeShard(1, "unix:/b", 11, 20)})
                   .ok());
  // Overlapping shards.
  EXPECT_FALSE(registry
                   .SetShards("overlap", {MakeShard(0, "unix:/a", 0, 10),
                                          MakeShard(1, "unix:/b", 9, 20)})
                   .ok());
  // Map not starting at row 0.
  EXPECT_FALSE(
      registry.SetShards("offset", {MakeShard(0, "unix:/a", 5, 10)}).ok());
  // Empty row range.
  EXPECT_FALSE(
      registry.SetShards("empty", {MakeShard(0, "unix:/a", 3, 3)}).ok());
  // Missing endpoint.
  EXPECT_FALSE(registry.SetShards("nouri", {MakeShard(0, "", 0, 10)}).ok());
  // Duplicate shard ids and duplicate endpoints.
  EXPECT_FALSE(registry
                   .SetShards("dupid", {MakeShard(0, "unix:/a", 0, 10),
                                        MakeShard(0, "unix:/b", 10, 20)})
                   .ok());
  EXPECT_FALSE(registry
                   .SetShards("dupuri", {MakeShard(0, "unix:/a", 0, 10),
                                         MakeShard(1, "unix:/a", 10, 20)})
                   .ok());
  // Empty map / empty name / double registration.
  EXPECT_FALSE(registry.SetShards("none", {}).ok());
  EXPECT_FALSE(registry.SetShards("", {MakeShard(0, "unix:/a", 0, 1)}).ok());
  ASSERT_TRUE(
      registry.SetShards("twice", {MakeShard(0, "unix:/a", 0, 1)}).ok());
  EXPECT_FALSE(
      registry.SetShards("twice", {MakeShard(0, "unix:/a", 0, 1)}).ok());
}

TEST(ClusterShardMapTest, LocalColumnOfSameNameMustMatchShardedRows) {
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(Database("v", {1, 2, 3})).ok());
  EXPECT_FALSE(
      registry.SetShards("v", {MakeShard(0, "unix:/a", 0, 2)}).ok());
  EXPECT_TRUE(
      registry.SetShards("v", {MakeShard(0, "unix:/a", 0, 3)}).ok());
}

// ---------------------------------------------------------------------------
// Pairwise zero shares.

TEST(ClusterBlindingTest, SharesSumToZeroModM) {
  const Bytes seed = {1, 2, 3, 4};
  const BigInt modulus = BigInt(1) << 64;
  for (uint32_t count : {2u, 3u, 5u, 8u}) {
    BigInt sum(0);
    for (uint32_t i = 0; i < count; ++i) {
      Result<BigInt> share =
          DeriveZeroShare(seed, i, count, /*nonce=*/99, modulus);
      ASSERT_TRUE(share.ok()) << share.status().ToString();
      EXPECT_GE(*share, BigInt(0));
      EXPECT_LT(*share, modulus);
      sum = AddMod(sum, *share, modulus);
    }
    EXPECT_EQ(sum, BigInt(0)) << count << " parties";
  }
}

TEST(ClusterBlindingTest, SharesAreDeterministicPerSeedAndNonce) {
  const Bytes seed = {9, 9, 9};
  const BigInt modulus = BigInt(1) << 64;
  Result<BigInt> a = DeriveZeroShare(seed, 0, 4, 7, modulus);
  Result<BigInt> b = DeriveZeroShare(seed, 0, 4, 7, modulus);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);

  // A different nonce (fresh query) or seed must re-randomize: a reused
  // share would let the coordinator difference out a shard's partial.
  const Bytes different_seed = {8, 8, 8};
  Result<BigInt> other_nonce = DeriveZeroShare(seed, 0, 4, 8, modulus);
  Result<BigInt> other_seed = DeriveZeroShare(different_seed, 0, 4, 7, modulus);
  ASSERT_TRUE(other_nonce.ok() && other_seed.ok());
  EXPECT_NE(*a, *other_nonce);
  EXPECT_NE(*a, *other_seed);
}

TEST(ClusterBlindingTest, RejectsDegenerateInputs) {
  const BigInt modulus = BigInt(1) << 64;
  const Bytes seed = {1};
  EXPECT_FALSE(DeriveZeroShare(seed, 4, 4, 0, modulus).ok());  // index range
  EXPECT_FALSE(DeriveZeroShare(seed, 0, 0, 0, modulus).ok());  // zero parties
  EXPECT_FALSE(DeriveZeroShare(Bytes{}, 0, 2, 0, modulus).ok());  // empty seed
  EXPECT_FALSE(DeriveZeroShare(seed, 0, 2, 0, BigInt(1)).ok());  // modulus < 2
}

TEST(ClusterBlindingTest, SoleShardShareIsZero) {
  const Bytes seed = {1, 2};
  Result<BigInt> share = DeriveZeroShare(seed, 0, 1, 3, BigInt(1) << 64);
  ASSERT_TRUE(share.ok());
  EXPECT_EQ(*share, BigInt(0));
}

// ---------------------------------------------------------------------------
// Wire extensions.

TEST(ClusterMessagesTest, QueryHeaderBlindExtensionRoundTrips) {
  QueryHeaderMessage header;
  header.kind = 1;
  header.column = "v";
  header.blind_partial = true;
  header.blind_nonce = 0xDEADBEEFCAFEull;
  Result<QueryHeaderMessage> decoded =
      QueryHeaderMessage::Decode(header.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->blind_partial);
  EXPECT_EQ(decoded->blind_nonce, header.blind_nonce);

  // A plain header (no extension block) still decodes, blind off: the
  // wire stays compatible with pre-cluster encoders.
  QueryHeaderMessage plain;
  plain.kind = 1;
  plain.column = "v";
  Result<QueryHeaderMessage> plain_decoded =
      QueryHeaderMessage::Decode(plain.Encode());
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_FALSE(plain_decoded->blind_partial);
  EXPECT_EQ(plain_decoded->blind_nonce, 0u);
}

TEST(ClusterMessagesTest, PartialResultRoundTripsAndValidates) {
  const PaillierKeyPair& kp = SharedKeyPair();
  ChaCha20Rng rng(3);
  PartialResultMessage partial;
  partial.sum =
      Paillier::Encrypt(kp.public_key, BigInt(17), rng).ValueOrDie();
  partial.shards_total = 4;
  partial.shards_responded = 3;
  partial.rows_covered = 75;
  Bytes frame = partial.Encode(kp.public_key);
  Result<MessageType> type = PeekMessageType(frame);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MessageType::kPartialResult);

  Result<PartialResultMessage> decoded =
      PartialResultMessage::Decode(kp.public_key, frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shards_total, 4u);
  EXPECT_EQ(decoded->shards_responded, 3u);
  EXPECT_EQ(decoded->rows_covered, 75u);
  Result<BigInt> value = Paillier::Decrypt(kp.private_key, decoded->sum);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, BigInt(17));

  // Implausible shard counts are rejected at decode.
  PartialResultMessage bogus = partial;
  bogus.shards_responded = 9;
  EXPECT_FALSE(
      PartialResultMessage::Decode(kp.public_key, bogus.Encode(kp.public_key))
          .ok());
  bogus.shards_responded = 0;
  EXPECT_FALSE(
      PartialResultMessage::Decode(kp.public_key, bogus.Encode(kp.public_key))
          .ok());
}

// ---------------------------------------------------------------------------
// Coordinator validation.

TEST(ClusterCoordinatorTest, ValidateCatchesMisconfiguration) {
  ColumnRegistry empty;
  EXPECT_FALSE(ShardCoordinator(&empty, {}).Validate().ok());
  EXPECT_FALSE(ShardCoordinator(nullptr, {}).Validate().ok());

  ColumnRegistry registry;
  ASSERT_TRUE(
      registry.SetShards("v", {MakeShard(0, "unix:/a", 0, 10)}).ok());
  EXPECT_TRUE(ShardCoordinator(&registry, {}).Validate().ok());

  CoordinatorOptions bad_default;
  bad_default.default_column = "nope";
  EXPECT_FALSE(ShardCoordinator(&registry, bad_default).Validate().ok());

  CoordinatorOptions no_attempts;
  no_attempts.shard_attempts = 0;
  EXPECT_FALSE(ShardCoordinator(&registry, no_attempts).Validate().ok());

  CoordinatorOptions blind_no_seed;
  blind_no_seed.blind_partials = true;
  EXPECT_FALSE(ShardCoordinator(&registry, blind_no_seed).Validate().ok());

  // Blinded partials are incompatible with the partial-result policy:
  // a missing shard's zero-share would leave the merged sum garbage.
  CoordinatorOptions blind_partial_policy;
  blind_partial_policy.blind_partials = true;
  blind_partial_policy.blind_seed = {1, 2, 3};
  blind_partial_policy.partial_policy = PartialResultPolicy::kPartial;
  EXPECT_FALSE(
      ShardCoordinator(&registry, blind_partial_policy).Validate().ok());
  blind_partial_policy.partial_policy = PartialResultPolicy::kFail;
  EXPECT_TRUE(
      ShardCoordinator(&registry, blind_partial_policy).Validate().ok());
}

// ---------------------------------------------------------------------------
// In-process cluster: real shard ServiceHosts + a coordinator host.

struct TestCluster {
  std::vector<uint32_t> values;  ///< the logical column, concatenated
  std::vector<std::unique_ptr<ColumnRegistry>> shard_registries;
  std::vector<std::unique_ptr<ServiceHost>> shard_hosts;
  ColumnRegistry map_registry;
  std::unique_ptr<ThreadPool> pool;  ///< fan-out legs, kept off Shared()
  std::unique_ptr<ShardCoordinator> coordinator;
  std::unique_ptr<ServiceHost> coordinator_host;

  ~TestCluster() {
    if (coordinator_host != nullptr) coordinator_host->Stop();
    for (auto& host : shard_hosts) {
      if (host != nullptr) host->Stop();
    }
  }
};

struct TestClusterConfig {
  size_t shards = 4;
  size_t rows_per_shard = 8;
  ServiceEngine engine = ServiceEngine::kThreaded;
  bool blind = false;
  PartialResultPolicy policy = PartialResultPolicy::kFail;
  size_t shard_attempts = 1;
  uint32_t shard_io_deadline_ms = 5000;
};

std::unique_ptr<TestCluster> StartCluster(const std::string& tag,
                                          const TestClusterConfig& config) {
  auto cluster = std::make_unique<TestCluster>();
  const Bytes blind_seed = {7, 7, 7, 7};
  const BigInt blind_modulus = BigInt(1) << 64;
  std::vector<ShardDescriptor> shards;
  for (size_t i = 0; i < config.shards; ++i) {
    std::vector<uint32_t> slice(config.rows_per_shard);
    for (size_t r = 0; r < slice.size(); ++r) {
      slice[r] = static_cast<uint32_t>(10 * (i * config.rows_per_shard + r) + 1);
      cluster->values.push_back(slice[r]);
    }
    auto registry = std::make_unique<ColumnRegistry>();
    EXPECT_TRUE(registry->Register(Database("v", slice)).ok());
    ServiceHostOptions options;
    // Shard hosts stay threaded: the reactor engine folds on the
    // process-wide shared pool, and on a 1-core box the coordinator's
    // blocking fan-out (also a shared-pool task under the reactor
    // engine) would starve co-located reactor shards of that worker.
    // The engine parameter exercises the coordinator host, which is
    // the code path this suite adds; shard hosts are ordinary servers
    // covered by ServiceHostTest and, cross-process, by the e2e test.
    options.engine = ServiceEngine::kThreaded;
    if (config.blind) {
      ShardBlindConfig blind;
      blind.shard_index = static_cast<uint32_t>(i);
      blind.shard_count = static_cast<uint32_t>(config.shards);
      blind.seed = blind_seed;
      blind.modulus = blind_modulus;
      options.shard_blind = blind;
    }
    auto host = std::make_unique<ServiceHost>(registry.get(), options);
    const std::string path = std::string(::testing::TempDir()) + "/cl_" +
                             tag + "_s" + std::to_string(i) + ".sock";
    EXPECT_TRUE(host->Start("unix:" + path).ok());
    shards.push_back(MakeShard(static_cast<uint32_t>(i), host->bound_uri(),
                               i * config.rows_per_shard,
                               (i + 1) * config.rows_per_shard));
    cluster->shard_registries.push_back(std::move(registry));
    cluster->shard_hosts.push_back(std::move(host));
  }
  EXPECT_TRUE(cluster->map_registry.SetShards("v", std::move(shards)).ok());

  // A dedicated fan-out pool: legs do blocking upstream I/O, and on a
  // small machine parking them on Shared() could starve the shard
  // hosts' own fold tasks mid-test.
  cluster->pool = std::make_unique<ThreadPool>(config.shards);
  CoordinatorOptions coordinator_options;
  coordinator_options.shard_attempts = config.shard_attempts;
  coordinator_options.shard_io_deadline_ms = config.shard_io_deadline_ms;
  coordinator_options.retry.initial_backoff_ms = 1;
  coordinator_options.retry.max_backoff_ms = 5;
  coordinator_options.partial_policy = config.policy;
  coordinator_options.pool = cluster->pool.get();
  if (config.blind) {
    coordinator_options.blind_partials = true;
    coordinator_options.blind_seed = blind_seed;
    coordinator_options.blind_modulus = blind_modulus;
  }
  cluster->coordinator = std::make_unique<ShardCoordinator>(
      &cluster->map_registry, coordinator_options);
  EXPECT_TRUE(cluster->coordinator->Validate().ok());

  ServiceHostOptions host_options;
  host_options.engine = config.engine;
  host_options.router_factory = cluster->coordinator->RouterFactory();
  cluster->coordinator_host = std::make_unique<ServiceHost>(
      &cluster->map_registry, host_options);
  const std::string path =
      std::string(::testing::TempDir()) + "/cl_" + tag + "_coord.sock";
  EXPECT_TRUE(cluster->coordinator_host->Start("unix:" + path).ok());
  return cluster;
}

uint64_t ExpectedSum(const std::vector<uint32_t>& values,
                     const SelectionVector& selection) {
  uint64_t sum = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (selection[i]) sum += values[i];
  }
  return sum;
}

class ClusterServiceTest : public ::testing::TestWithParam<ServiceEngine> {};

INSTANTIATE_TEST_SUITE_P(
    Engines, ClusterServiceTest,
    ::testing::Values(ServiceEngine::kThreaded, ServiceEngine::kReactor),
    [](const ::testing::TestParamInfo<ServiceEngine>& info) {
      return info.param == ServiceEngine::kReactor ? "Reactor" : "Threaded";
    });

TEST_P(ClusterServiceTest, FansOutAndMergesAcrossFourShards) {
  TestClusterConfig config;
  config.engine = GetParam();
  auto cluster = StartCluster(
      GetParam() == ServiceEngine::kReactor ? "fan_r" : "fan_t", config);
  const size_t rows = cluster->values.size();

  ChaCha20Rng rng(11);
  QuerySession session(SharedKeyPair().private_key, rng);
  RetryOptions retry;
  ASSERT_TRUE(
      session.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
          .ok());
  EXPECT_EQ(session.negotiated_version(), kSessionProtocolV2);
  EXPECT_EQ(session.server_rows(), rows);

  // Selections crossing every shard boundary, plus a single-shard one.
  SelectionVector all(rows, true);
  SelectionVector alternating(rows, false);
  for (size_t i = 0; i < rows; i += 2) alternating[i] = true;
  SelectionVector one_shard(rows, false);
  for (size_t i = 8; i < 16; ++i) one_shard[i] = true;
  for (const SelectionVector& selection : {all, alternating, one_shard}) {
    QuerySpec spec;
    spec.column = "v";
    Result<BigInt> total = session.RunQuery(spec, selection);
    ASSERT_TRUE(total.ok()) << total.status().ToString();
    EXPECT_EQ(*total, BigInt(ExpectedSum(cluster->values, selection)));
    EXPECT_FALSE(session.last_partial().has_value());
  }

  // Named statistics fan out too: sum of squares over all rows.
  QuerySpec sumsq;
  sumsq.kind = StatisticKind::kSumOfSquares;
  sumsq.column = "v";
  Result<BigInt> squares = session.RunQuery(sumsq, all);
  ASSERT_TRUE(squares.ok()) << squares.status().ToString();
  BigInt expected_squares(0);
  for (uint64_t v : cluster->values) {
    expected_squares = expected_squares + BigInt(v) * BigInt(v);
  }
  EXPECT_EQ(*squares, expected_squares);
  EXPECT_TRUE(session.Finish().ok());
}

TEST_P(ClusterServiceTest, BlindedPartialsStillMergeToTheTrueSum) {
  TestClusterConfig config;
  config.engine = GetParam();
  config.blind = true;
  auto cluster = StartCluster(
      GetParam() == ServiceEngine::kReactor ? "blind_r" : "blind_t", config);
  const size_t rows = cluster->values.size();

  ChaCha20Rng rng(12);
  ClientSessionOptions options;
  options.result_modulus = BigInt(1) << 64;  // zero-shares cancel mod M
  QuerySession session(SharedKeyPair().private_key, rng, options);
  RetryOptions retry;
  ASSERT_TRUE(
      session.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
          .ok());
  SelectionVector selection(rows, false);
  for (size_t i = 0; i < rows; i += 3) selection[i] = true;
  QuerySpec spec;
  spec.column = "v";
  for (int repeat = 0; repeat < 2; ++repeat) {  // fresh nonce per query
    Result<BigInt> total = session.RunQuery(spec, selection);
    ASSERT_TRUE(total.ok()) << total.status().ToString();
    EXPECT_EQ(*total, BigInt(ExpectedSum(cluster->values, selection)));
  }
  EXPECT_TRUE(session.Finish().ok());
}

TEST_P(ClusterServiceTest, RejectsUnknownColumns) {
  TestClusterConfig config;
  config.shards = 2;
  config.engine = GetParam();
  auto cluster = StartCluster(
      GetParam() == ServiceEngine::kReactor ? "rej_r" : "rej_t", config);
  const size_t rows = cluster->values.size();

  ChaCha20Rng rng(13);
  QuerySession session(SharedKeyPair().private_key, rng);
  RetryOptions retry;
  ASSERT_TRUE(
      session.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
          .ok());
  QuerySpec unknown;
  unknown.column = "nope";
  SelectionVector selection(rows, true);
  Result<BigInt> result = session.RunQuery(unknown, selection);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("unknown column"),
            std::string::npos);
}

TEST_P(ClusterServiceTest, V1ClientsGetTheDefaultColumnFanOut) {
  TestClusterConfig config;
  config.shards = 2;
  config.engine = GetParam();
  auto cluster = StartCluster(
      GetParam() == ServiceEngine::kReactor ? "v1_r" : "v1_t", config);
  const size_t rows = cluster->values.size();

  SelectionVector selection(rows, false);
  selection[0] = selection[rows - 1] = true;
  ChaCha20Rng rng(14);
  ClientSession session(SharedKeyPair().private_key, selection, {}, rng);
  RetryOptions retry;
  Result<BigInt> total =
      session.RunWithRetry(cluster->coordinator_host->bound_uri(), retry);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(*total, BigInt(ExpectedSum(cluster->values, selection)));
}

// ---------------------------------------------------------------------------
// Differential: the networked coordinator must agree bit-for-bit with
// the in-process distributed protocol over the same partitions.

TEST(ClusterDifferentialTest, MatchesRunDistributedSum) {
  TestClusterConfig config;
  config.shards = 3;
  config.rows_per_shard = 5;
  auto cluster = StartCluster("diff", config);
  const size_t rows = cluster->values.size();

  SelectionVector selection(rows, false);
  for (size_t i = 0; i < rows; i += 2) selection[i] = true;

  // In-process reference: the same partitions as plain Databases.
  std::vector<Database> partitions;
  for (size_t i = 0; i < config.shards; ++i) {
    std::vector<uint32_t> slice(
        cluster->values.begin() + i * config.rows_per_shard,
        cluster->values.begin() + (i + 1) * config.rows_per_shard);
    partitions.emplace_back("v", slice);
  }
  std::vector<const Database*> servers;
  for (const Database& db : partitions) servers.push_back(&db);
  DistributedConfig dist_config;
  dist_config.blind_partials = false;
  ChaCha20Rng dist_rng(21);
  Result<DistributedRunResult> reference = RunDistributedSum(
      SharedKeyPair().private_key, servers, selection, dist_config,
      dist_rng);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  ChaCha20Rng rng(22);
  QuerySession session(SharedKeyPair().private_key, rng);
  RetryOptions retry;
  ASSERT_TRUE(
      session.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
          .ok());
  QuerySpec spec;
  spec.column = "v";
  Result<BigInt> total = session.RunQuery(spec, selection);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(*total, reference->total);
  EXPECT_TRUE(session.Finish().ok());
}

TEST(ClusterDifferentialTest, BlindedPathMatchesBlindedDistributedSum) {
  TestClusterConfig config;
  config.shards = 3;
  config.rows_per_shard = 5;
  config.blind = true;
  auto cluster = StartCluster("diffb", config);
  const size_t rows = cluster->values.size();

  SelectionVector selection(rows, false);
  for (size_t i = 1; i < rows; i += 2) selection[i] = true;

  std::vector<Database> partitions;
  for (size_t i = 0; i < config.shards; ++i) {
    std::vector<uint32_t> slice(
        cluster->values.begin() + i * config.rows_per_shard,
        cluster->values.begin() + (i + 1) * config.rows_per_shard);
    partitions.emplace_back("v", slice);
  }
  std::vector<const Database*> servers;
  for (const Database& db : partitions) servers.push_back(&db);
  DistributedConfig dist_config;
  dist_config.blind_partials = true;
  dist_config.blind_modulus = BigInt(1) << 64;
  ChaCha20Rng dist_rng(31);
  Result<DistributedRunResult> reference = RunDistributedSum(
      SharedKeyPair().private_key, servers, selection, dist_config,
      dist_rng);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  ChaCha20Rng rng(32);
  ClientSessionOptions options;
  options.result_modulus = BigInt(1) << 64;
  QuerySession session(SharedKeyPair().private_key, rng, options);
  RetryOptions retry;
  ASSERT_TRUE(
      session.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
          .ok());
  QuerySpec spec;
  spec.column = "v";
  Result<BigInt> total = session.RunQuery(spec, selection);
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  // Both stacks blind differently, but the recovered totals must agree
  // bit-for-bit: the zero-shares cancel mod M on each side.
  EXPECT_EQ(*total, reference->total);
  EXPECT_TRUE(session.Finish().ok());
}

// ---------------------------------------------------------------------------
// Failure policies with a dead shard.

TEST(ClusterPolicyTest, FailPolicyPropagatesTheShardFailure) {
  TestClusterConfig config;
  config.shards = 2;
  config.policy = PartialResultPolicy::kFail;
  auto cluster = StartCluster("polfail", config);
  const size_t rows = cluster->values.size();
  cluster->shard_hosts[1]->Stop();  // dead shard: dialing now fails

  ChaCha20Rng rng(41);
  QuerySession session(SharedKeyPair().private_key, rng);
  RetryOptions retry;
  ASSERT_TRUE(
      session.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
          .ok());
  QuerySpec spec;
  spec.column = "v";
  SelectionVector selection(rows, true);
  Result<BigInt> total = session.RunQuery(spec, selection);
  EXPECT_FALSE(total.ok());
  EXPECT_NE(total.status().ToString().find("shard"), std::string::npos);
}

TEST(ClusterPolicyTest, PartialPolicyServesFlaggedCoverage) {
  TestClusterConfig config;
  config.shards = 2;
  config.policy = PartialResultPolicy::kPartial;
  auto cluster = StartCluster("polpart", config);
  const size_t rows = cluster->values.size();
  cluster->shard_hosts[1]->Stop();

  // Without opt-in the flagged partial must fail the query, not pass
  // silently for a complete answer.
  {
    ChaCha20Rng rng(42);
    QuerySession strict(SharedKeyPair().private_key, rng);
    RetryOptions retry;
    ASSERT_TRUE(
        strict.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
            .ok());
    QuerySpec spec;
    spec.column = "v";
    SelectionVector selection(rows, true);
    Result<BigInt> total = strict.RunQuery(spec, selection);
    EXPECT_FALSE(total.ok());
    EXPECT_NE(total.status().ToString().find("partial"), std::string::npos);
  }

  ChaCha20Rng rng(43);
  ClientSessionOptions options;
  options.accept_partial = true;
  QuerySession session(SharedKeyPair().private_key, rng, options);
  RetryOptions retry;
  ASSERT_TRUE(
      session.ConnectWithRetry(cluster->coordinator_host->bound_uri(), retry)
          .ok());
  QuerySpec spec;
  spec.column = "v";
  SelectionVector selection(rows, true);
  Result<BigInt> total = session.RunQuery(spec, selection);
  ASSERT_TRUE(total.ok()) << total.status().ToString();

  // The answer covers exactly shard 0's rows and says so.
  SelectionVector shard0_only(rows, false);
  for (size_t i = 0; i < rows / 2; ++i) shard0_only[i] = true;
  EXPECT_EQ(*total, BigInt(ExpectedSum(cluster->values, shard0_only)));
  ASSERT_TRUE(session.last_partial().has_value());
  EXPECT_EQ(session.last_partial()->shards_total, 2u);
  EXPECT_EQ(session.last_partial()->shards_responded, 1u);
  EXPECT_EQ(session.last_partial()->rows_covered, rows / 2);

  // The shard is still gone, so the next query on the same session is
  // partial again (fresh fan-out per query, no stale cached success).
  cluster->shard_hosts[1].reset();
  Result<BigInt> partial_again = session.RunQuery(spec, selection);
  EXPECT_TRUE(partial_again.ok());
  EXPECT_TRUE(session.last_partial().has_value());
  EXPECT_TRUE(session.Finish().ok());
}

}  // namespace
}  // namespace ppstats
