#include "net/wire.h"

#include <gtest/gtest.h>

namespace ppstats {
namespace {

TEST(WireTest, ScalarsRoundTrip) {
  WireWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  Bytes buf = w.Take();
  EXPECT_EQ(buf.size(), 1u + 4u + 8u);

  WireReader r(buf);
  EXPECT_EQ(r.ReadU8().ValueOrDie(), 0xAB);
  EXPECT_EQ(r.ReadU32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().ValueOrDie(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireTest, IntegersAreBigEndian) {
  WireWriter w;
  w.WriteU32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4}));
}

TEST(WireTest, LengthPrefixedBytesRoundTrip) {
  WireWriter w;
  w.WriteBytes(Bytes{9, 8, 7});
  w.WriteBytes(Bytes{});
  Bytes buf = w.Take();
  WireReader r(buf);
  EXPECT_EQ(r.ReadBytes().ValueOrDie(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.ReadBytes().ValueOrDie().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, BigIntRoundTrip) {
  BigInt v = BigInt::FromDecimal("123456789012345678901234567890")
                 .ValueOrDie();
  WireWriter w;
  w.WriteBigInt(v);
  w.WriteBigInt(BigInt(0));
  WireReader r(w.bytes());
  EXPECT_EQ(r.ReadBigInt().ValueOrDie(), v);
  EXPECT_TRUE(r.ReadBigInt().ValueOrDie().IsZero());
}

TEST(WireTest, FixedBigIntRoundTrip) {
  BigInt v(0xCAFE);
  WireWriter w;
  ASSERT_TRUE(w.WriteFixedBigInt(v, 16).ok());
  EXPECT_EQ(w.size(), 16u);
  WireReader r(w.bytes());
  EXPECT_EQ(r.ReadFixedBigInt(16).ValueOrDie(), v);
}

TEST(WireTest, FixedBigIntRejectsOverflowAndNegative) {
  WireWriter w;
  EXPECT_FALSE(w.WriteFixedBigInt(BigInt(1) << 64, 8).ok());
  EXPECT_FALSE(w.WriteFixedBigInt(BigInt(-1), 8).ok());
  EXPECT_TRUE(w.WriteFixedBigInt((BigInt(1) << 64) - BigInt(1), 8).ok());
}

TEST(WireTest, ReaderRejectsTruncatedInput) {
  Bytes short_buf = {1, 2};
  WireReader r(short_buf);
  EXPECT_FALSE(r.ReadU32().ok());
  WireReader r2(short_buf);
  EXPECT_FALSE(r2.ReadU64().ok());
  WireReader r3(short_buf);
  EXPECT_FALSE(r3.ReadBytes().ok());  // length prefix itself truncated
}

TEST(WireTest, ReaderRejectsLyingLengthPrefix) {
  WireWriter w;
  w.WriteU32(100);  // claims 100 bytes follow
  w.WriteU8(1);
  WireReader r(w.bytes());
  EXPECT_FALSE(r.ReadBytes().ok());
}

TEST(WireTest, ExpectEndFailsOnTrailingBytes) {
  Bytes buf = {1, 2, 3};
  WireReader r(buf);
  ASSERT_TRUE(r.ReadU8().ok());
  EXPECT_FALSE(r.ExpectEnd().ok());
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(WireTest, EmptyBufferBehaves) {
  WireReader r(BytesView{});
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
  EXPECT_FALSE(r.ReadU8().ok());
}

}  // namespace
}  // namespace ppstats
