#include "core/messages.h"

#include <gtest/gtest.h>

#include "crypto/chacha20_rng.h"

namespace ppstats {
namespace {

class MessagesTest : public ::testing::Test {
 protected:
  static const PaillierKeyPair& KeyPair() {
    static const PaillierKeyPair* kp = [] {
      ChaCha20Rng rng(333);
      return new PaillierKeyPair(
          Paillier::GenerateKeyPair(256, rng).ValueOrDie());
    }();
    return *kp;
  }

  ChaCha20Rng rng_{5};
};

TEST_F(MessagesTest, IndexBatchRoundTrip) {
  const PaillierPublicKey& pub = KeyPair().public_key;
  IndexBatchMessage msg;
  msg.start_index = 1234;
  for (uint64_t m : {0ULL, 1ULL, 1ULL, 0ULL}) {
    msg.ciphertexts.push_back(
        Paillier::Encrypt(pub, BigInt(m), rng_).ValueOrDie());
  }
  Bytes frame = msg.Encode(pub);
  EXPECT_EQ(PeekMessageType(frame).ValueOrDie(), MessageType::kIndexBatch);

  IndexBatchMessage decoded = IndexBatchMessage::Decode(pub, frame)
                                  .ValueOrDie();
  EXPECT_EQ(decoded.start_index, 1234u);
  ASSERT_EQ(decoded.ciphertexts.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(decoded.ciphertexts[i], msg.ciphertexts[i]);
  }
}

TEST_F(MessagesTest, IndexBatchFrameSizeIsFixedWidth) {
  const PaillierPublicKey& pub = KeyPair().public_key;
  IndexBatchMessage msg;
  msg.start_index = 0;
  msg.ciphertexts.push_back(
      Paillier::Encrypt(pub, BigInt(1), rng_).ValueOrDie());
  msg.ciphertexts.push_back(
      Paillier::Encrypt(pub, BigInt(0), rng_).ValueOrDie());
  Bytes frame = msg.Encode(pub);
  // tag + start + count + 2 fixed-width ciphertexts
  EXPECT_EQ(frame.size(), 1 + 8 + 4 + 2 * pub.CiphertextBytes());
}

TEST_F(MessagesTest, SumResponseRoundTrip) {
  const PaillierPublicKey& pub = KeyPair().public_key;
  SumResponseMessage msg;
  msg.sum = Paillier::Encrypt(pub, BigInt(999), rng_).ValueOrDie();
  Bytes frame = msg.Encode(pub);
  EXPECT_EQ(PeekMessageType(frame).ValueOrDie(), MessageType::kSumResponse);
  SumResponseMessage decoded =
      SumResponseMessage::Decode(pub, frame).ValueOrDie();
  EXPECT_EQ(decoded.sum, msg.sum);
}

TEST_F(MessagesTest, DecodeRejectsWrongType) {
  const PaillierPublicKey& pub = KeyPair().public_key;
  SumResponseMessage msg;
  msg.sum = Paillier::Encrypt(pub, BigInt(1), rng_).ValueOrDie();
  Bytes frame = msg.Encode(pub);
  EXPECT_FALSE(IndexBatchMessage::Decode(pub, frame).ok());
}

TEST_F(MessagesTest, DecodeRejectsTruncatedFrame) {
  const PaillierPublicKey& pub = KeyPair().public_key;
  IndexBatchMessage msg;
  msg.start_index = 0;
  msg.ciphertexts.push_back(
      Paillier::Encrypt(pub, BigInt(1), rng_).ValueOrDie());
  Bytes frame = msg.Encode(pub);
  frame.resize(frame.size() - 10);
  EXPECT_FALSE(IndexBatchMessage::Decode(pub, frame).ok());
}

TEST_F(MessagesTest, DecodeRejectsTrailingGarbage) {
  const PaillierPublicKey& pub = KeyPair().public_key;
  SumResponseMessage msg;
  msg.sum = Paillier::Encrypt(pub, BigInt(1), rng_).ValueOrDie();
  Bytes frame = msg.Encode(pub);
  frame.push_back(0);
  EXPECT_FALSE(SumResponseMessage::Decode(pub, frame).ok());
}

TEST_F(MessagesTest, DecodeRejectsCiphertextAboveNSquared) {
  const PaillierPublicKey& pub = KeyPair().public_key;
  SumResponseMessage msg;
  msg.sum.value = pub.n_squared();  // out of range by one
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(MessageType::kSumResponse));
  ASSERT_TRUE(w.WriteFixedBigInt(msg.sum.value, pub.CiphertextBytes()).ok());
  EXPECT_FALSE(SumResponseMessage::Decode(pub, w.bytes()).ok());
}

TEST_F(MessagesTest, PeekRejectsEmptyAndUnknown) {
  EXPECT_FALSE(PeekMessageType(Bytes{}).ok());
  EXPECT_FALSE(PeekMessageType(Bytes{0}).ok());
  EXPECT_FALSE(PeekMessageType(Bytes{99}).ok());
}

TEST_F(MessagesTest, RingPartialRoundTrip) {
  RingPartialMessage msg{BigInt::FromDecimal("123456789123456789123")
                             .ValueOrDie()};
  Bytes frame = msg.Encode();
  EXPECT_EQ(PeekMessageType(frame).ValueOrDie(), MessageType::kRingPartial);
  EXPECT_EQ(RingPartialMessage::Decode(frame).ValueOrDie().running_sum,
            msg.running_sum);
}

TEST_F(MessagesTest, RingBroadcastRoundTrip) {
  RingBroadcastMessage msg{BigInt(424242)};
  Bytes frame = msg.Encode();
  EXPECT_EQ(PeekMessageType(frame).ValueOrDie(),
            MessageType::kRingBroadcast);
  EXPECT_EQ(RingBroadcastMessage::Decode(frame).ValueOrDie().total,
            msg.total);
}

}  // namespace
}  // namespace ppstats
