// Chaos matrix for the robustness layer: every transport fault, in
// every protocol phase, on either side of the wire, must end in a
// typed Status on both ends — never a hang, never a crash, never a
// host that stops accepting. Faults come from seeded ChaCha20 RNGs, so
// each scenario is reproducible bit for bit.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <thread>

#include "core/service_host.h"
#include "core/session.h"
#include "crypto/chacha20_rng.h"
#include "net/fault_injection.h"

namespace ppstats {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;
using std::chrono::steady_clock;

// Sanitizer instrumentation slows the crypto between frames by an
// order of magnitude; scale every deadline accordingly so the timing
// assertions keep testing the eviction logic, not the sanitizer
// overhead.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PPSTATS_SANITIZER_SLOWDOWN 1
#endif
#endif
#if !defined(PPSTATS_SANITIZER_SLOWDOWN) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define PPSTATS_SANITIZER_SLOWDOWN 1
#endif
#if defined(PPSTATS_SANITIZER_SLOWDOWN)
constexpr uint32_t kTimeScale = 10;
#else
constexpr uint32_t kTimeScale = 1;
#endif

// Short server-side deadline so dropped/stalled frames evict quickly; a
// longer client-side one so the client outlives the eviction and reads
// the server's parting Error frame.
constexpr uint32_t kServerDeadlineMs = 150 * kTimeScale;
constexpr milliseconds kClientDeadline(2000 * kTimeScale);
constexpr size_t kRows = 12;
constexpr size_t kChunk = 4;  // 3 IndexBatch frames per query

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(8080);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

// The whole matrix runs once per engine: chaos seeds must reproduce the
// same typed outcomes under the blocking and the reactor host.
class ServiceChaosTest : public ::testing::TestWithParam<ServiceEngine> {
 protected:
  ServiceHostOptions BaseOptions() const {
    ServiceHostOptions options;
    options.engine = GetParam();
    return options;
  }

  std::string SocketPath(const std::string& name) const {
    const char* suffix =
        GetParam() == ServiceEngine::kReactor ? "_r" : "_t";
    return std::string(::testing::TempDir()) + "/" + name + suffix + ".sock";
  }
};

INSTANTIATE_TEST_SUITE_P(
    Engines, ServiceChaosTest,
    ::testing::Values(ServiceEngine::kThreaded, ServiceEngine::kReactor),
    [](const ::testing::TestParamInfo<ServiceEngine>& info) {
      return info.param == ServiceEngine::kReactor ? "Reactor" : "Threaded";
    });

bool WaitFor(const std::function<bool()>& pred,
             milliseconds timeout = seconds(10 * kTimeScale)) {
  auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return pred();
}

size_t CountProcessThreads() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

// Every way a chaos session may legitimately end. A hang trips the
// channel deadlines, a crash fails the test outright; anything decoded
// here is a clean, typed outcome.
bool IsTypedOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kCryptoError:
    case StatusCode::kProtocolError:
    case StatusCode::kSerializationError:
    case StatusCode::kNotFound:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
    case StatusCode::kDeadlineExceeded:
      return true;
  }
  return false;
}

Database TestColumn() {
  std::vector<uint32_t> values(kRows);
  for (size_t i = 0; i < kRows; ++i) values[i] = static_cast<uint32_t>(10 + i);
  return Database("col", values);
}

// One full client run (hello, one sum query, goodbye) with deadlines
// armed and optional client-side fault injection. Returns the first
// non-OK status the protocol produced, or OK.
Status RunChaosClient(const std::string& path,
                      const std::optional<FaultInjectionOptions>& faults,
                      uint64_t seed,
                      FaultCounters* injected = nullptr) {
  Result<std::unique_ptr<Channel>> dialed = ConnectUnixSocket(path);
  if (!dialed.ok()) return dialed.status();
  (*dialed)->set_read_deadline(kClientDeadline);
  (*dialed)->set_write_deadline(kClientDeadline);

  ChaCha20Rng fault_rng(seed);
  std::optional<FaultInjectingChannel> faulty;
  Channel* channel = dialed->get();
  if (faults.has_value()) {
    faulty.emplace(std::move(*dialed), *faults, fault_rng);
    channel = &*faulty;
  }

  ChaCha20Rng rng(seed + 9000);
  QuerySession session(SharedKeyPair().private_key, rng, {kChunk});
  Status status = session.Connect(*channel);
  if (status.ok()) {
    SelectionVector sel(kRows, false);
    for (size_t i = seed % 3; i < kRows; i += 2) sel[i] = true;
    status = session.RunQuery(QuerySpec{}, sel).status();
  }
  if (status.ok()) status = session.Finish();
  if (injected != nullptr && faulty.has_value()) {
    *injected = faulty->counters();
  }
  return status;
}

// A fault-free client that must succeed end to end — the proof that the
// host is still healthy after a chaos scenario.
void ExpectCleanClientServed(const std::string& path, uint64_t seed) {
  Status status = RunChaosClient(path, std::nullopt, seed);
  EXPECT_TRUE(status.ok()) << "clean client after chaos: "
                           << status.ToString();
}

// One-shot fault of `kind` at 0-indexed frame `phase` of the sender.
FaultInjectionOptions FaultAtPhase(FaultKind kind, uint64_t phase) {
  FaultInjectionOptions options;
  options.fault_rate = 1.0;
  options.max_faults = 1;
  options.skip_frames = phase;
  // A delay longer than the server's deadline turns kDelay into a
  // deadline-expiry probe for that phase.
  options.delay_ms = 3 * kServerDeadlineMs;
  options.delay = kind == FaultKind::kDelay;
  options.truncate = kind == FaultKind::kTruncate;
  options.garble = kind == FaultKind::kGarble;
  options.drop = kind == FaultKind::kDrop;
  options.disconnect = kind == FaultKind::kDisconnect;
  return options;
}

constexpr FaultKind kAllKinds[] = {FaultKind::kDelay, FaultKind::kTruncate,
                                   FaultKind::kGarble, FaultKind::kDrop,
                                   FaultKind::kDisconnect};

TEST_P(ServiceChaosTest, ClientSideFaultMatrix) {
  // Fault every client frame class — ClientHello (0), QueryHeader (1),
  // chunk stream (2, 3) — with every fault kind, against one host that
  // must keep serving clean clients throughout.
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(TestColumn()).ok());
  ServiceHostOptions options = BaseOptions();
  options.io_deadline_ms = kServerDeadlineMs;
  ServiceHost host(&registry, options);
  std::string path = SocketPath("chaos_client_matrix");
  ASSERT_TRUE(host.Start(path).ok());

  uint64_t seed = 100;
  uint64_t chaos_runs = 0;
  for (FaultKind kind : kAllKinds) {
    for (uint64_t phase : {0u, 1u, 2u, 3u}) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                   " phase=" + std::to_string(phase));
      FaultCounters injected;
      Status status =
          RunChaosClient(path, FaultAtPhase(kind, phase), ++seed, &injected);
      EXPECT_TRUE(IsTypedOutcome(status)) << status.ToString();
      EXPECT_EQ(injected.faults(), 1u);
      ++chaos_runs;
      ASSERT_TRUE(WaitFor([&] { return host.active_sessions() == 0; }));
      ExpectCleanClientServed(path, 10000 + seed);
    }
  }
  EXPECT_TRUE(host.running());
  host.Stop();
  ServiceHost::Stats stats = host.stats();
  // Every chaos connect plus every clean verifier was accepted, and all
  // the clean ones ended ok.
  EXPECT_EQ(stats.sessions_accepted, 2 * chaos_runs);
  EXPECT_GE(stats.sessions_ok, chaos_runs);
}

TEST_P(ServiceChaosTest, ServerSideFaultMatrix) {
  // Fault every server frame class — ServerHello (0), QueryAccept (1),
  // SumResponse (2) — with every fault kind, via the host's built-in
  // injection hook. Each scenario needs its own host configuration.
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(TestColumn()).ok());
  uint64_t seed = 500;
  for (FaultKind kind : kAllKinds) {
    for (uint64_t phase : {0u, 1u, 2u}) {
      SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                   " phase=" + std::to_string(phase));
      ServiceHostOptions options = BaseOptions();
      options.io_deadline_ms = kServerDeadlineMs;
      options.fault_injection = FaultAtPhase(kind, phase);
      options.fault_seed = ++seed;
      ServiceHost host(&registry, options);
      std::string path = SocketPath("chaos_server_matrix");
      ASSERT_TRUE(host.Start(path).ok());

      Status status = RunChaosClient(path, std::nullopt, seed);
      EXPECT_TRUE(IsTypedOutcome(status)) << status.ToString();
      ASSERT_TRUE(WaitFor([&] { return host.active_sessions() == 0; }));
      EXPECT_TRUE(host.running());
      host.Stop();
      EXPECT_EQ(host.stats().sessions_accepted, 1u);
    }
  }
}

TEST_P(ServiceChaosTest, SixteenSeedRandomSweep) {
  // Random faults (all kinds, 20% per frame) across a fixed sweep of 16
  // seeds: every run must terminate typed and leave the host serving.
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(TestColumn()).ok());
  ServiceHostOptions options = BaseOptions();
  options.io_deadline_ms = kServerDeadlineMs;
  ServiceHost host(&registry, options);
  std::string path = SocketPath("chaos_sweep");
  ASSERT_TRUE(host.Start(path).ok());

  for (uint64_t s = 0; s < 16; ++s) {
    SCOPED_TRACE("seed=" + std::to_string(s));
    FaultInjectionOptions faults;
    faults.fault_rate = 0.2;
    faults.delay_ms = 30;  // shorter than the deadline: delays alone pass
    Status status = RunChaosClient(path, faults, s);
    EXPECT_TRUE(IsTypedOutcome(status)) << status.ToString();
    ASSERT_TRUE(WaitFor([&] { return host.active_sessions() == 0; }));
  }
  ExpectCleanClientServed(path, 424242);
  EXPECT_TRUE(host.running());
  host.Stop();
  EXPECT_EQ(host.stats().sessions_accepted, 17u);
}

TEST_P(ServiceChaosTest, TruncatedHeaderThenSilenceIsEvicted) {
  // A raw peer that sends a length header promising a frame it never
  // delivers must be evicted by the I/O deadline, with the typed Error
  // frame on the wire, and the host must keep accepting.
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(TestColumn()).ok());
  ServiceHostOptions options = BaseOptions();
  options.io_deadline_ms = kServerDeadlineMs;
  ServiceHost host(&registry, options);
  std::string path = SocketPath("chaos_header");
  ASSERT_TRUE(host.Start(path).ok());

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const uint8_t header[4] = {0, 0, 3, 0xE8};  // "1000 bytes follow" — no
  ASSERT_EQ(::send(fd, header, sizeof(header), 0), 4);

  // The eviction Error frame arrives once the server's deadline fires.
  auto evicted = WrapSocket(fd);
  evicted->set_read_deadline(kClientDeadline);
  Result<Bytes> frame = evicted->Receive();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(WaitFor([&] { return host.active_sessions() == 0; }));

  ExpectCleanClientServed(path, 77);
  host.Stop();
  EXPECT_EQ(host.stats().sessions_evicted, 1u);
}

TEST_P(ServiceChaosTest, ThirtyTwoConcurrentClientsUnderOnePercentFaults) {
  // The acceptance run: 32 concurrent clients, faults injected on both
  // sides of the wire at ~1% per frame. Every client must terminate
  // with a typed status, no session thread may leak, and the host must
  // serve a clean client afterwards.
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(TestColumn()).ok());
  ServiceHostOptions options = BaseOptions();
  options.io_deadline_ms = 500 * kTimeScale;
  options.worker_threads = 2;
  FaultInjectionOptions server_faults;  // defaults: 1% rate, all kinds
  server_faults.delay_ms = 20;
  options.fault_injection = server_faults;
  options.fault_seed = 7700;
  ServiceHost host(&registry, options);
  std::string path = SocketPath("chaos_32");
  ASSERT_TRUE(host.Start(path).ok());

  // One warm-up session spins up the shared fold ThreadPool, whose
  // threads persist by design; only then is the thread count a valid
  // leak baseline for the storm.
  Status warmup = RunChaosClient(path, std::nullopt, 1);
  EXPECT_TRUE(IsTypedOutcome(warmup)) << warmup.ToString();
  ASSERT_TRUE(WaitFor([&] { return host.active_sessions() == 0; }));
  size_t baseline = CountProcessThreads();

  constexpr int kClients = 32;
  std::vector<Status> outcomes(kClients, Status::OK());
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      FaultInjectionOptions client_faults;  // 1% on the client side too
      client_faults.delay_ms = 20;
      outcomes[static_cast<size_t>(c)] =
          RunChaosClient(path, client_faults, 2000 + c);
    });
  }
  for (std::thread& t : clients) t.join();

  size_t ok_count = 0;
  for (int c = 0; c < kClients; ++c) {
    const Status& status = outcomes[static_cast<size_t>(c)];
    EXPECT_TRUE(IsTypedOutcome(status))
        << "client " << c << ": " << status.ToString();
    if (status.ok()) ++ok_count;
  }
  // At 1% per frame most sessions sail through untouched.
  EXPECT_GT(ok_count, kClients / 2);

  // Zero leaked threads: the reaper returns the process to its
  // pre-storm thread count without a Stop().
  EXPECT_TRUE(WaitFor([&] { return host.active_sessions() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return CountProcessThreads() <= baseline; }));
  EXPECT_TRUE(host.running());

  // The host must still accept and serve. This session, like all the
  // others, runs behind the server-side injection layer, so require a
  // typed outcome plus the accept itself rather than strict success.
  Status after = RunChaosClient(path, std::nullopt, 999);
  EXPECT_TRUE(IsTypedOutcome(after)) << after.ToString();
  host.Stop();
  ServiceHost::Stats stats = host.stats();
  EXPECT_EQ(stats.sessions_accepted, static_cast<uint64_t>(kClients) + 2);
  // Every accepted session resolved one way or the other — none hang.
  EXPECT_EQ(stats.sessions_ok + stats.sessions_failed,
            stats.sessions_accepted);
}

}  // namespace
}  // namespace ppstats
