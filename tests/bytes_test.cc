#include "common/bytes.h"

#include <gtest/gtest.h>

namespace ppstats {
namespace {

TEST(HexTest, EncodesLowercase) {
  Bytes b = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(ToHex(b), "deadbeef");
}

TEST(HexTest, EmptyRoundTrip) {
  EXPECT_EQ(ToHex({}), "");
  Result<Bytes> r = FromHex("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(HexTest, DecodesMixedCase) {
  Result<Bytes> r = FromHex("DeAdBeEf");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_FALSE(FromHex("abc").ok());
}

TEST(HexTest, RejectsNonHexCharacters) {
  EXPECT_FALSE(FromHex("zz").ok());
  EXPECT_FALSE(FromHex("0g").ok());
}

TEST(HexTest, RoundTripsAllByteValues) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[i] = static_cast<uint8_t>(i);
  Result<Bytes> r = FromHex(ToHex(all));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, all);
}

TEST(ConstantTimeEqualTest, EqualAndUnequal) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
}

TEST(ConstantTimeEqualTest, DifferentLengths) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2};
  EXPECT_FALSE(ConstantTimeEqual(a, b));
}

TEST(ConstantTimeEqualTest, EmptyBuffersAreEqual) {
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

}  // namespace
}  // namespace ppstats
