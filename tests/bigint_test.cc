#include "bigint/bigint.h"

#include <gtest/gtest.h>

#include "crypto/chacha20_rng.h"

namespace ppstats {
namespace {

BigInt Dec(const char* s) { return BigInt::FromDecimal(s).ValueOrDie(); }

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDecimal(), "0");
}

TEST(BigIntTest, ConstructFromIntegers) {
  EXPECT_EQ(BigInt(0).ToDecimal(), "0");
  EXPECT_EQ(BigInt(1).ToDecimal(), "1");
  EXPECT_EQ(BigInt(-1).ToDecimal(), "-1");
  EXPECT_EQ(BigInt(uint64_t{18446744073709551615ULL}).ToDecimal(),
            "18446744073709551615");
  EXPECT_EQ(BigInt(int64_t{-9223372036854775807LL - 1}).ToDecimal(),
            "-9223372036854775808");
  EXPECT_EQ(BigInt(uint32_t{7}).ToDecimal(), "7");
  EXPECT_EQ(BigInt(int16_t{-3}).ToDecimal(), "-3");
}

TEST(BigIntTest, DecimalRoundTrip) {
  const char* cases[] = {
      "0",
      "1",
      "-1",
      "18446744073709551616",  // 2^64
      "340282366920938463463374607431768211456",  // 2^128
      "-99999999999999999999999999999999999999",
      "123456789012345678901234567890123456789012345678901234567890",
  };
  for (const char* s : cases) {
    EXPECT_EQ(Dec(s).ToDecimal(), s) << s;
  }
}

TEST(BigIntTest, DecimalParseErrors) {
  EXPECT_FALSE(BigInt::FromDecimal("").ok());
  EXPECT_FALSE(BigInt::FromDecimal("-").ok());
  EXPECT_FALSE(BigInt::FromDecimal("12a3").ok());
  EXPECT_FALSE(BigInt::FromDecimal(" 12").ok());
}

TEST(BigIntTest, HexRoundTrip) {
  EXPECT_EQ(BigInt::FromHexString("ff").ValueOrDie().ToDecimal(), "255");
  EXPECT_EQ(BigInt::FromHexString("0xFF").ValueOrDie().ToDecimal(), "255");
  EXPECT_EQ(BigInt::FromHexString("-0x10").ValueOrDie().ToDecimal(), "-16");
  BigInt big = Dec("340282366920938463463374607431768211455");  // 2^128-1
  EXPECT_EQ(big.ToHexString(), "ffffffffffffffffffffffffffffffff");
  EXPECT_EQ(BigInt::FromHexString(big.ToHexString()).ValueOrDie(), big);
}

TEST(BigIntTest, HexParseErrors) {
  EXPECT_FALSE(BigInt::FromHexString("").ok());
  EXPECT_FALSE(BigInt::FromHexString("0x").ok());
  EXPECT_FALSE(BigInt::FromHexString("xyz").ok());
}

TEST(BigIntTest, BytesRoundTrip) {
  BigInt v = Dec("1234567890123456789012345678901234567890");
  Bytes b = v.ToBytes();
  EXPECT_EQ(BigInt::FromBytes(b), v);
  // Padding does not change the value.
  Bytes padded = v.ToBytes(64);
  EXPECT_EQ(padded.size(), 64u);
  EXPECT_EQ(BigInt::FromBytes(padded), v);
}

TEST(BigIntTest, ZeroSerializesToOneByte) {
  EXPECT_EQ(BigInt(0).ToBytes(), Bytes{0});
  EXPECT_TRUE(BigInt::FromBytes(Bytes{0, 0, 0}).IsZero());
  EXPECT_TRUE(BigInt::FromBytes({}).IsZero());
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ(BigInt(2) + BigInt(3), BigInt(5));
  EXPECT_EQ(BigInt(-2) + BigInt(3), BigInt(1));
  EXPECT_EQ(BigInt(2) + BigInt(-3), BigInt(-1));
  EXPECT_EQ(BigInt(-2) + BigInt(-3), BigInt(-5));
  EXPECT_EQ(BigInt(5) + BigInt(-5), BigInt(0));
}

TEST(BigIntTest, CarryPropagatesAcrossLimbs) {
  BigInt max64(uint64_t{0xFFFFFFFFFFFFFFFFULL});
  EXPECT_EQ((max64 + BigInt(1)).ToDecimal(), "18446744073709551616");
  BigInt two128 = Dec("340282366920938463463374607431768211456");
  EXPECT_EQ(two128 - BigInt(1) + BigInt(1), two128);
}

TEST(BigIntTest, SubtractionBorrow) {
  BigInt two64 = Dec("18446744073709551616");
  EXPECT_EQ((two64 - BigInt(1)).ToDecimal(), "18446744073709551615");
  EXPECT_EQ(BigInt(3) - BigInt(10), BigInt(-7));
}

TEST(BigIntTest, MultiplicationBasics) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ(BigInt(-6) * BigInt(7), BigInt(-42));
  EXPECT_EQ(BigInt(-6) * BigInt(-7), BigInt(42));
  EXPECT_TRUE((BigInt(0) * BigInt(12345)).IsZero());
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigInt max64(uint64_t{0xFFFFFFFFFFFFFFFFULL});
  EXPECT_EQ((max64 * max64).ToDecimal(),
            "340282366920938463426481119284349108225");
}

TEST(BigIntTest, DivisionBasics) {
  EXPECT_EQ(BigInt(42) / BigInt(7), BigInt(6));
  EXPECT_EQ(BigInt(43) % BigInt(7), BigInt(1));
  // Truncated (C) semantics.
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
}

TEST(BigIntTest, DivisionByZeroFails) {
  EXPECT_FALSE(BigInt::DivRem(BigInt(1), BigInt(0)).ok());
}

TEST(BigIntTest, DividendSmallerThanDivisor) {
  auto [q, r] = BigInt::DivRem(BigInt(3), Dec("99999999999999999999"))
                    .ValueOrDie();
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r, BigInt(3));
}

TEST(BigIntTest, KnuthAddBackCase) {
  // A division crafted to stress qhat correction: divisor with a high
  // limb just below 2^63 and dividend that triggers decrements.
  BigInt num = BigInt::FromHexString(
                   "7fffffffffffffff8000000000000000"
                   "00000000000000000000000000000000")
                   .ValueOrDie();
  BigInt den = BigInt::FromHexString("80000000000000000000000000000001")
                   .ValueOrDie();
  auto [q, r] = BigInt::DivRem(num, den).ValueOrDie();
  EXPECT_EQ(q * den + r, num);
  EXPECT_LT(r, den);
}

TEST(BigIntTest, ShiftLeftRight) {
  EXPECT_EQ(BigInt(1) << 64, Dec("18446744073709551616"));
  EXPECT_EQ(BigInt(1) << 128, Dec("340282366920938463463374607431768211456"));
  EXPECT_EQ(Dec("18446744073709551616") >> 64, BigInt(1));
  EXPECT_EQ((BigInt(0xFF) << 4).ToHexString(), "ff0");
  EXPECT_EQ(BigInt(0xFF) >> 4, BigInt(0xF));
  EXPECT_TRUE((BigInt(1) >> 1).IsZero());
  EXPECT_TRUE((BigInt(12345) >> 200).IsZero());
}

TEST(BigIntTest, ShiftPreservesSignAndCanonicalizesZero) {
  EXPECT_EQ(BigInt(-4) << 2, BigInt(-16));
  EXPECT_EQ(BigInt(-16) >> 2, BigInt(-4));
  BigInt z = BigInt(-1) >> 5;  // magnitude underflows to zero
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
}

TEST(BigIntTest, ComparisonOrdering) {
  EXPECT_LT(BigInt(-5), BigInt(-4));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), Dec("18446744073709551616"));
  EXPECT_GT(Dec("18446744073709551616"), Dec("18446744073709551615"));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, BitLengthAndBit) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ((BigInt(1) << 100).BitLength(), 101u);
  BigInt v = BigInt(0b1010);
  EXPECT_FALSE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(64));
}

TEST(BigIntTest, OddEven) {
  EXPECT_TRUE(BigInt(3).IsOdd());
  EXPECT_TRUE(BigInt(4).IsEven());
  EXPECT_TRUE(BigInt(0).IsEven());
}

TEST(BigIntTest, AbsAndNegate) {
  EXPECT_EQ((-BigInt(5)).ToDecimal(), "-5");
  EXPECT_EQ((-BigInt(-5)).ToDecimal(), "5");
  EXPECT_EQ(BigInt(-5).Abs(), BigInt(5));
  EXPECT_TRUE((-BigInt(0)).IsZero());
  EXPECT_FALSE((-BigInt(0)).IsNegative());
}

// ---- property sweeps -------------------------------------------------

class BigIntPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BigIntPropertyTest, DivRemInvariant) {
  const size_t bits = GetParam();
  ChaCha20Rng rng(1000 + bits);
  for (int iter = 0; iter < 50; ++iter) {
    Bytes a_bytes((bits + 7) / 8), b_bytes(bits / 16 + 1);
    rng.Fill(a_bytes);
    rng.Fill(b_bytes);
    BigInt a = BigInt::FromBytes(a_bytes);
    BigInt b = BigInt::FromBytes(b_bytes);
    if (b.IsZero()) b = BigInt(1);
    auto [q, r] = BigInt::DivRem(a, b).ValueOrDie();
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(BigInt::CompareMagnitude(r, b), 0);
  }
}

TEST_P(BigIntPropertyTest, AdditionCommutesAndAssociates) {
  const size_t bits = GetParam();
  ChaCha20Rng rng(2000 + bits);
  for (int iter = 0; iter < 30; ++iter) {
    Bytes buf((bits + 7) / 8);
    rng.Fill(buf);
    BigInt a = BigInt::FromBytes(buf);
    rng.Fill(buf);
    BigInt b = BigInt::FromBytes(buf);
    rng.Fill(buf);
    BigInt c = BigInt::FromBytes(buf);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + BigInt(0), a);
    EXPECT_EQ(a - a, BigInt(0));
  }
}

TEST_P(BigIntPropertyTest, MultiplicationDistributes) {
  const size_t bits = GetParam();
  ChaCha20Rng rng(3000 + bits);
  for (int iter = 0; iter < 30; ++iter) {
    Bytes buf((bits + 7) / 8);
    rng.Fill(buf);
    BigInt a = BigInt::FromBytes(buf);
    rng.Fill(buf);
    BigInt b = BigInt::FromBytes(buf);
    rng.Fill(buf);
    BigInt c = BigInt::FromBytes(buf);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * BigInt(1), a);
    EXPECT_TRUE((a * BigInt(0)).IsZero());
  }
}

TEST_P(BigIntPropertyTest, StringRoundTrip) {
  const size_t bits = GetParam();
  ChaCha20Rng rng(4000 + bits);
  for (int iter = 0; iter < 10; ++iter) {
    Bytes buf((bits + 7) / 8);
    rng.Fill(buf);
    BigInt a = BigInt::FromBytes(buf);
    EXPECT_EQ(BigInt::FromDecimal(a.ToDecimal()).ValueOrDie(), a);
    EXPECT_EQ(BigInt::FromHexString(a.ToHexString()).ValueOrDie(), a);
    EXPECT_EQ(BigInt::FromBytes(a.ToBytes()), a);
  }
}

TEST_P(BigIntPropertyTest, ShiftsMatchMultiplication) {
  const size_t bits = GetParam();
  ChaCha20Rng rng(5000 + bits);
  for (size_t shift : {1u, 13u, 63u, 64u, 65u, 130u}) {
    Bytes buf((bits + 7) / 8);
    rng.Fill(buf);
    BigInt a = BigInt::FromBytes(buf);
    EXPECT_EQ(a << shift, a * (BigInt(1) << shift));
    EXPECT_EQ((a << shift) >> shift, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigIntPropertyTest,
                         ::testing::Values(8, 64, 65, 128, 256, 1024, 2048));

// Karatsuba kicks in above 24 limbs (1536 bits): cross-check against the
// distributive law on operands straddling the threshold.
TEST(BigIntTest, KaratsubaMatchesSchoolbookIdentity) {
  ChaCha20Rng rng(99);
  for (size_t bits : {1500u, 1536u, 2048u, 4096u, 8192u}) {
    Bytes buf(bits / 8);
    rng.Fill(buf);
    BigInt a = BigInt::FromBytes(buf);
    rng.Fill(buf);
    BigInt b = BigInt::FromBytes(buf);
    // (a+1)*b - b == a*b exercises both mul paths and add/sub.
    EXPECT_EQ((a + BigInt(1)) * b - b, a * b);
    // Squaring identity: (a+b)^2 = a^2 + 2ab + b^2.
    EXPECT_EQ((a + b) * (a + b),
              a * a + (a * b << 1) + b * b);
  }
}

TEST(BigIntTest, LowUint64AndFits) {
  EXPECT_EQ(BigInt(12345).LowUint64(), 12345u);
  EXPECT_TRUE(BigInt(12345).FitsUint64());
  BigInt big = Dec("18446744073709551616");
  EXPECT_FALSE(big.FitsUint64());
  EXPECT_EQ(big.LowUint64(), 0u);
  EXPECT_EQ(BigInt(0).LowUint64(), 0u);
}

TEST(BigIntTest, SelfAssignmentOperatorsAreSafe) {
  BigInt a(12345);
  a += a;
  EXPECT_EQ(a, BigInt(24690));
  a -= a;
  EXPECT_TRUE(a.IsZero());
  BigInt b(7);
  b *= b;
  EXPECT_EQ(b, BigInt(49));
}

TEST(BigIntTest, DivisionBySelfAndByOne) {
  BigInt v = Dec("123456789123456789123456789");
  EXPECT_EQ(v / v, BigInt(1));
  EXPECT_TRUE((v % v).IsZero());
  EXPECT_EQ(v / BigInt(1), v);
  EXPECT_TRUE((v % BigInt(1)).IsZero());
}

TEST(BigIntTest, PowersOfTwoBoundaries) {
  // Values straddling limb boundaries behave across all operations.
  for (size_t bits : {63u, 64u, 65u, 127u, 128u, 129u}) {
    BigInt p = BigInt(1) << bits;
    EXPECT_EQ(p.BitLength(), bits + 1) << bits;
    EXPECT_EQ((p - BigInt(1)).BitLength(), bits) << bits;
    EXPECT_EQ(p / (BigInt(1) << (bits - 1)), BigInt(2)) << bits;
    EXPECT_TRUE((p % (BigInt(1) << (bits - 1))).IsZero()) << bits;
  }
}

TEST(BigIntTest, FromLimbsNormalizes) {
  BigInt v = BigInt::FromLimbs({5, 0, 0});
  EXPECT_EQ(v, BigInt(5));
  EXPECT_EQ(v.LimbCount(), 1u);
  EXPECT_TRUE(BigInt::FromLimbs({}).IsZero());
}

}  // namespace
}  // namespace ppstats
