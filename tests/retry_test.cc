#include "net/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/session.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"
#include "net/channel.h"
#include "net/socket_channel.h"

namespace ppstats {
namespace {

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(9090);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

TEST(RetryTest, BackoffGrowsExponentiallyToCap) {
  ChaCha20Rng rng(1);
  RetryOptions options;
  options.initial_backoff_ms = 10;
  options.max_backoff_ms = 50;
  options.jitter = 0.0;  // deterministic: exactly the exponential series
  EXPECT_EQ(RetryBackoffMs(1, options, rng), 10u);
  EXPECT_EQ(RetryBackoffMs(2, options, rng), 20u);
  EXPECT_EQ(RetryBackoffMs(3, options, rng), 40u);
  EXPECT_EQ(RetryBackoffMs(4, options, rng), 50u);  // capped
  EXPECT_EQ(RetryBackoffMs(9, options, rng), 50u);
}

TEST(RetryTest, JitterStaysWithinWindow) {
  ChaCha20Rng rng(2);
  RetryOptions options;
  options.initial_backoff_ms = 100;
  options.max_backoff_ms = 100;
  options.jitter = 0.5;
  // backoff = 100: fixed part 50, jitter window [0, 50].
  for (int i = 0; i < 100; ++i) {
    uint32_t ms = RetryBackoffMs(1, options, rng);
    EXPECT_GE(ms, 50u);
    EXPECT_LE(ms, 100u);
  }
  // Full jitter spans [0, backoff].
  options.jitter = 1.0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(RetryBackoffMs(1, options, rng), 100u);
  }
}

TEST(RetryTest, RetryableClassification) {
  EXPECT_TRUE(IsRetryableStatus(Status::ProtocolError("link died")));
  EXPECT_TRUE(IsRetryableStatus(Status::SerializationError("garbled")));
  EXPECT_TRUE(IsRetryableStatus(Status::DeadlineExceeded("stalled")));
  EXPECT_TRUE(IsRetryableStatus(Status::ResourceExhausted("capacity")));
  EXPECT_TRUE(IsRetryableStatus(Status::Internal("connect failed")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad arity")));
  EXPECT_FALSE(IsRetryableStatus(Status::FailedPrecondition("no column")));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("unknown column")));
  EXPECT_FALSE(IsRetryableStatus(Status::CryptoError("no inverse")));
}

// A dial factory that fails `failures` times before handing out a pipe
// to a freshly spawned server thread.
struct FlakyDialer {
  const Database* db = nullptr;
  size_t failures = 0;
  size_t dials = 0;
  std::vector<std::thread> servers;

  Result<std::unique_ptr<Channel>> operator()() {
    ++dials;
    if (dials <= failures) {
      return Status::Internal("connection refused");
    }
    auto [client_end, server_end] = DuplexPipe::Create();
    servers.emplace_back(
        [this, ch = std::move(server_end)]() mutable {
          ServerSession session(db);
          session.Serve(*ch).IgnoreError();
        });
    return std::move(client_end);
  }

  ~FlakyDialer() {
    for (std::thread& t : servers) t.join();
  }
};

TEST(RetryTest, QuerySessionConnectRetriesThenSucceeds) {
  Database db("d", {5, 6, 7, 8});
  FlakyDialer dialer;
  dialer.db = &db;
  dialer.failures = 2;
  ChaCha20Rng rng(3);
  QuerySession session(SharedKeyPair().private_key, rng);
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_ms = 1;  // keep the test fast
  retry.max_backoff_ms = 2;
  ASSERT_TRUE(session
                  .ConnectWithRetry([&dialer] { return dialer(); }, retry)
                  .ok());
  EXPECT_EQ(session.retry_metrics().attempts, 3u);
  EXPECT_EQ(session.retry_metrics().retryable_failures, 2u);
  EXPECT_EQ(dialer.dials, 3u);
  // The owned channel serves a real query end to end.
  SelectionVector sel = {true, false, true, false};
  EXPECT_EQ(session.RunQuery(QuerySpec{}, sel).ValueOrDie(), BigInt(12));
  ASSERT_TRUE(session.Finish().ok());
}

TEST(RetryTest, ConnectGivesUpAfterMaxAttempts) {
  ChaCha20Rng rng(4);
  QuerySession session(SharedKeyPair().private_key, rng);
  size_t dials = 0;
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 1;
  retry.max_backoff_ms = 2;
  Status status = session.ConnectWithRetry(
      [&dials]() -> Result<std::unique_ptr<Channel>> {
        ++dials;
        return Status::Internal("connection refused");
      },
      retry);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(dials, 3u);
  EXPECT_EQ(session.retry_metrics().attempts, 3u);
  EXPECT_EQ(session.retry_metrics().retryable_failures, 3u);
}

TEST(RetryTest, NonRetryableFailureStopsImmediately) {
  ChaCha20Rng rng(5);
  QuerySession session(SharedKeyPair().private_key, rng);
  size_t dials = 0;
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 1;
  Status status = session.ConnectWithRetry(
      [&dials]() -> Result<std::unique_ptr<Channel>> {
        ++dials;
        return Status::NotFound("no such socket path");
      },
      retry);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(dials, 1u);  // semantic failures are not retried
}

TEST(RetryTest, ConnectDeadlineBoundsABlackholedEndpoint) {
  // A host that silently drops SYNs blocks a plain connect() on the
  // kernel's own timeout — minutes — starving the backoff loop. The
  // per-attempt connect deadline turns that into a prompt retryable
  // DeadlineExceeded. Simulated locally: a listener that never accepts
  // and whose tiny backlog we fill, so further SYNs are dropped on the
  // floor (Linux leaves the dialer in SYN-SENT rather than refusing).
  Result<SocketListener> listener =
      SocketListener::Bind(std::string("tcp:127.0.0.1:0"), /*backlog=*/1);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ChannelFactory dial = UriDialer(listener->endpoint().ToUri(),
                                  /*io_deadline_ms=*/0,
                                  /*connect_deadline_ms=*/100);
  std::vector<std::unique_ptr<Channel>> queued;  // keeps the backlog full
  Status blackholed = Status::OK();
  auto overall_start = std::chrono::steady_clock::now();
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    Result<std::unique_ptr<Channel>> channel = dial();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    // Every attempt — queued or dropped — must come back promptly.
    ASSERT_LT(elapsed, std::chrono::seconds(30));
    if (!channel.ok()) {
      blackholed = channel.status();
      break;
    }
    queued.push_back(std::move(*channel));
  }
  ASSERT_FALSE(blackholed.ok()) << "backlog never filled";
  EXPECT_EQ(blackholed.code(), StatusCode::kDeadlineExceeded)
      << blackholed.ToString();
  EXPECT_TRUE(IsRetryableStatus(blackholed));
  // The whole probe stayed near the 100 ms budget, not a kernel timeout.
  EXPECT_LT(std::chrono::steady_clock::now() - overall_start,
            std::chrono::seconds(30));
}

TEST(RetryTest, ConnectDeadlineStillDialsALiveListener) {
  // The non-blocking connect path must not break ordinary dials.
  Result<SocketListener> listener =
      SocketListener::Bind(std::string("tcp:127.0.0.1:0"));
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ChannelFactory dial = UriDialer(listener->endpoint().ToUri(),
                                  /*io_deadline_ms=*/0,
                                  /*connect_deadline_ms=*/2000);
  Result<std::unique_ptr<Channel>> channel = dial();
  EXPECT_TRUE(channel.ok()) << channel.status().ToString();
}

TEST(RetryTest, ClientSessionRunWithRetry) {
  // A v1 query is a pure read, so the whole run replays safely after a
  // dead transport.
  ChaCha20Rng rng(6);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(20, 100);
  SelectionVector sel = gen.RandomSelection(20, 8);
  uint64_t truth = db.SelectedSum(sel).ValueOrDie();

  FlakyDialer dialer;
  dialer.db = &db;
  dialer.failures = 1;
  ChaCha20Rng client_rng(7);
  ClientSession client(SharedKeyPair().private_key, sel, {5}, client_rng);
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 1;
  retry.max_backoff_ms = 2;
  Result<BigInt> sum =
      client.RunWithRetry([&dialer] { return dialer(); }, retry);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, BigInt(truth));
  EXPECT_EQ(client.retry_metrics().attempts, 2u);
  // Still single-shot overall.
  EXPECT_EQ(client.RunWithRetry([&dialer] { return dialer(); }, retry)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ppstats
