#include "sim/pipeline.h"

#include <gtest/gtest.h>

namespace ppstats {
namespace {

TEST(PipelineTest, EmptyScheduleIsZero) {
  EXPECT_EQ(PipelineSchedule::Makespan({}).ValueOrDie(), 0.0);
  EXPECT_EQ(PipelineSchedule::Makespan({{}, {}}).ValueOrDie(), 0.0);
}

TEST(PipelineTest, SingleChunkIsSequential) {
  auto makespan =
      PipelineSchedule::Makespan({{1.0}, {2.0}, {3.0}}).ValueOrDie();
  EXPECT_NEAR(makespan, 6.0, 1e-12);
}

TEST(PipelineTest, SingleStageIsSumOfChunks) {
  auto makespan = PipelineSchedule::Makespan({{1.0, 2.0, 3.0}}).ValueOrDie();
  EXPECT_NEAR(makespan, 6.0, 1e-12);
}

TEST(PipelineTest, BalancedStagesOverlapFully) {
  // 3 stages x 4 chunks of 1s each: makespan = (stages - 1) + chunks.
  std::vector<std::vector<double>> stages(3, std::vector<double>(4, 1.0));
  EXPECT_NEAR(PipelineSchedule::Makespan(stages).ValueOrDie(), 6.0, 1e-12);
  EXPECT_NEAR(PipelineSchedule::SequentialTotal(stages), 12.0, 1e-12);
}

TEST(PipelineTest, BottleneckStageDominates) {
  // Stage 1 is 10x slower: makespan ~= fill + n * bottleneck.
  std::vector<std::vector<double>> stages = {
      std::vector<double>(10, 0.1),
      std::vector<double>(10, 1.0),
      std::vector<double>(10, 0.1),
  };
  double makespan = PipelineSchedule::Makespan(stages).ValueOrDie();
  EXPECT_NEAR(makespan, 0.1 + 10 * 1.0 + 0.1, 1e-9);
}

TEST(PipelineTest, MakespanBoundedBySequentialAndByStageSums) {
  std::vector<std::vector<double>> stages = {
      {0.5, 1.0, 0.2, 0.9},
      {0.3, 0.3, 1.5, 0.1},
      {0.2, 0.8, 0.8, 0.4},
  };
  double makespan = PipelineSchedule::Makespan(stages).ValueOrDie();
  double sequential = PipelineSchedule::SequentialTotal(stages);
  EXPECT_LE(makespan, sequential + 1e-12);
  for (const auto& stage : stages) {
    double sum = 0;
    for (double d : stage) sum += d;
    EXPECT_GE(makespan, sum - 1e-12);  // every stage is a lower bound
  }
}

TEST(PipelineTest, RejectsMismatchedChunkCounts) {
  EXPECT_FALSE(PipelineSchedule::Makespan({{1.0, 2.0}, {1.0}}).ok());
}

TEST(PipelineTest, ZeroDurationStagesAreFree) {
  std::vector<std::vector<double>> stages = {
      {1.0, 1.0},
      {0.0, 0.0},
      {2.0, 2.0},
  };
  // enc: finishes at 1, 2; proc chunk0 starts at 1 ends 3; chunk1 starts
  // max(2, 3) = 3 ends 5.
  EXPECT_NEAR(PipelineSchedule::Makespan(stages).ValueOrDie(), 5.0, 1e-12);
}

}  // namespace
}  // namespace ppstats
