#include "core/fold_engine.h"

#include <gtest/gtest.h>

#include "core/streaming_server.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"

namespace ppstats {
namespace {

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(4242);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

std::vector<PaillierCiphertext> EncryptWeights(const WeightVector& weights,
                                               RandomSource& rng) {
  std::vector<PaillierCiphertext> cts;
  cts.reserve(weights.size());
  for (uint64_t w : weights) {
    cts.push_back(Paillier::Encrypt(SharedKeyPair().public_key, BigInt(w), rng)
                      .ValueOrDie());
  }
  return cts;
}

TEST(RowSourceTest, ColumnRowSourceReadsRanges) {
  Database db("d", {10, 20, 30, 40, 50});
  ColumnRowSource source(&db);
  EXPECT_EQ(source.size(), 5u);
  std::vector<uint64_t> out(3);
  ASSERT_TRUE(source.ReadRows(1, out).ok());
  EXPECT_EQ(out, (std::vector<uint64_t>{20, 30, 40}));
  EXPECT_EQ(source.peak_resident_rows(), 0u);  // in-memory: not tracked
}

TEST(RowSourceTest, FileRowSourceRoundTripsAndTracksResidency) {
  Database db("d", {7, 8, 9, 10, 11, 12});
  std::string path =
      std::string(::testing::TempDir()) + "/fold_engine_col.bin";
  ASSERT_TRUE(WriteColumnFile(db, path).ok());

  auto source = FileRowSource::Open(path).ValueOrDie();
  EXPECT_EQ(source->size(), 6u);
  std::vector<uint64_t> out(2);
  ASSERT_TRUE(source->ReadRows(4, out).ok());
  EXPECT_EQ(out, (std::vector<uint64_t>{11, 12}));
  std::vector<uint64_t> bigger(4);
  ASSERT_TRUE(source->ReadRows(0, bigger).ok());
  EXPECT_EQ(bigger, (std::vector<uint64_t>{7, 8, 9, 10}));
  EXPECT_EQ(source->peak_resident_rows(), 4u);
}

TEST(RowSourceTest, FileRowSourceRejectsMissingOrTruncatedFiles) {
  EXPECT_FALSE(FileRowSource::Open("/no/such/file.bin").ok());

  std::string path = std::string(::testing::TempDir()) + "/truncated_col.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.put(1);  // shorter than the 4-byte header
  }
  EXPECT_FALSE(FileRowSource::Open(path).ok());
}

TEST(FoldEngineTest, MatchesNaiveWeightedFoldBitForBit) {
  // The refactor's core claim: for every transform and thread count the
  // engine's ciphertext equals the naive exponentiate-and-multiply fold
  // exactly, not just after decryption.
  ChaCha20Rng rng(1);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(33, 1000);
  WeightVector weights(33);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = (i % 3 == 0) ? 0 : i + 1;  // include zero weights
  }
  std::vector<PaillierCiphertext> cts = EncryptWeights(weights, rng);

  // Both sides fold base E(w_i) with exponent x_i (the row value).
  std::vector<BigInt> row_exponents;
  for (size_t i = 0; i < cts.size(); ++i) {
    row_exponents.push_back(BigInt(db.value(i)));
  }
  PaillierCiphertext reference =
      Paillier::WeightedFold(SharedKeyPair().public_key, cts, row_exponents);

  for (size_t threads : {1u, 2u, 5u}) {
    for (size_t chunk : {33u, 7u, 1u}) {
      FoldEngine engine(SharedKeyPair().public_key,
                        std::make_unique<ColumnRowSource>(&db),
                        ExponentTransform::Identity(), 0, db.size(), threads);
      for (size_t start = 0; start < cts.size(); start += chunk) {
        size_t len = std::min(chunk, cts.size() - start);
        ASSERT_TRUE(
            engine
                .FoldChunk(start, std::span<const PaillierCiphertext>(
                                      cts.data() + start, len))
                .ok());
      }
      ASSERT_TRUE(engine.done());
      PaillierCiphertext result = engine.Finish(std::nullopt).ValueOrDie();
      EXPECT_EQ(result, reference)
          << "threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST(FoldEngineTest, TransformsAndBlindingDecryptCorrectly) {
  ChaCha20Rng rng(2);
  Database db("d", {3, 4, 5, 6});
  Database other("o", {10, 20, 30, 40});
  WeightVector weights = {1, 0, 1, 1};
  std::vector<PaillierCiphertext> cts = EncryptWeights(weights, rng);

  struct Case {
    ExponentTransform transform;
    std::optional<BigInt> blinding;
    BigInt expected;
  };
  std::vector<Case> cases = {
      {ExponentTransform::Identity(), std::nullopt, BigInt(3 + 5 + 6)},
      {ExponentTransform::Square(), std::nullopt, BigInt(9 + 25 + 36)},
      {ExponentTransform::ProductWith(&other), std::nullopt,
       BigInt(30 + 150 + 240)},
      {ExponentTransform::Identity(), BigInt(1000), BigInt(14 + 1000)},
  };
  for (const Case& c : cases) {
    FoldEngine engine(SharedKeyPair().public_key,
                      std::make_unique<ColumnRowSource>(&db), c.transform, 0,
                      db.size());
    ASSERT_TRUE(engine.FoldChunk(0, cts).ok());
    PaillierCiphertext result = engine.Finish(c.blinding).ValueOrDie();
    EXPECT_EQ(Paillier::Decrypt(SharedKeyPair().private_key, result)
                  .ValueOrDie(),
              c.expected);
  }
}

TEST(FoldEngineTest, PartitionFoldsOnlyItsRows) {
  ChaCha20Rng rng(3);
  Database db("d", {1, 2, 4, 8, 16});
  WeightVector local = {1, 1};  // rows 2 and 3
  std::vector<PaillierCiphertext> cts = EncryptWeights(local, rng);

  FoldEngine engine(SharedKeyPair().public_key,
                    std::make_unique<ColumnRowSource>(&db),
                    ExponentTransform::Identity(), 2, 4);
  ASSERT_TRUE(engine.FoldChunk(2, cts).ok());
  ASSERT_TRUE(engine.done());
  PaillierCiphertext result = engine.Finish(std::nullopt).ValueOrDie();
  EXPECT_EQ(
      Paillier::Decrypt(SharedKeyPair().private_key, result).ValueOrDie(),
      BigInt(4 + 8));
}

TEST(FoldEngineTest, RejectsOutOfOrderGapsAndOverruns) {
  ChaCha20Rng rng(4);
  Database db("d", {1, 2, 3, 4});
  WeightVector weights = {1, 1, 1, 1};
  std::vector<PaillierCiphertext> cts = EncryptWeights(weights, rng);
  std::span<const PaillierCiphertext> all(cts);

  FoldEngine engine(SharedKeyPair().public_key,
                    std::make_unique<ColumnRowSource>(&db),
                    ExponentTransform::Identity(), 0, db.size());
  // Premature finish.
  EXPECT_FALSE(engine.Finish(std::nullopt).ok());
  // Gap: starts at row 1 instead of 0.
  EXPECT_EQ(engine.FoldChunk(1, all.subspan(1)).code(),
            StatusCode::kProtocolError);
  // Overrun: 4 ciphertexts starting at row 2.
  ASSERT_TRUE(engine.FoldChunk(0, all.subspan(0, 2)).ok());
  EXPECT_EQ(engine.FoldChunk(2, all).code(), StatusCode::kProtocolError);
  // Correct completion still works after rejected chunks.
  ASSERT_TRUE(engine.FoldChunk(2, all.subspan(2)).ok());
  ASSERT_TRUE(engine.done());
  // Extra chunk after completion.
  EXPECT_EQ(engine.FoldChunk(4, all.subspan(0, 0)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.Finish(std::nullopt).ok());
}

TEST(FoldEngineTest, FileBackedEngineMatchesInMemory) {
  ChaCha20Rng rng(5);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(20, 500);
  WeightVector weights(20, 1);
  std::vector<PaillierCiphertext> cts = EncryptWeights(weights, rng);
  std::string path =
      std::string(::testing::TempDir()) + "/fold_engine_match.bin";
  ASSERT_TRUE(WriteColumnFile(db, path).ok());

  FoldEngine memory_engine(SharedKeyPair().public_key,
                           std::make_unique<ColumnRowSource>(&db),
                           ExponentTransform::Identity(), 0, db.size());
  auto file_rows = FileRowSource::Open(path).ValueOrDie();
  FoldEngine file_engine(SharedKeyPair().public_key, std::move(file_rows),
                         ExponentTransform::Identity(), 0, db.size());
  ASSERT_TRUE(memory_engine.FoldChunk(0, cts).ok());
  ASSERT_TRUE(file_engine.FoldChunk(0, cts).ok());
  EXPECT_EQ(memory_engine.Finish(std::nullopt).ValueOrDie(),
            file_engine.Finish(std::nullopt).ValueOrDie());
}

}  // namespace
}  // namespace ppstats
