#include "core/session.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <thread>

#include "core/messages.h"
#include "crypto/key_io.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"
#include "net/socket_channel.h"

namespace ppstats {
namespace {

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(1616);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

// Runs one full session: server on a thread, client on this one.
Result<BigInt> RunSession(const Database& db, const SelectionVector& sel,
                          size_t chunk, uint64_t seed) {
  auto [client_end, server_end] = DuplexPipe::Create();
  Status server_status = Status::OK();
  std::thread server_thread([&db, &server_end, &server_status] {
    ServerSession session(&db);
    server_status = session.Serve(*server_end);
  });
  ChaCha20Rng rng(seed);
  ClientSession client(SharedKeyPair().private_key, sel, {chunk}, rng);
  Result<BigInt> sum = client.Run(*client_end);
  server_thread.join();
  if (sum.ok() && !server_status.ok()) return server_status;
  return sum;
}

TEST(SessionTest, HandshakeAndQuerySucceed) {
  ChaCha20Rng rng(1);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(40, 10000);
  SelectionVector sel = gen.RandomSelection(40, 17);
  uint64_t truth = db.SelectedSum(sel).ValueOrDie();
  BigInt sum = RunSession(db, sel, 10, 42).ValueOrDie();
  EXPECT_EQ(sum, BigInt(truth));
}

TEST(SessionTest, WorksOverRealSockets) {
  ChaCha20Rng rng(2);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(30, 1000);
  SelectionVector sel = gen.RandomSelection(30, 12);
  uint64_t truth = db.SelectedSum(sel).ValueOrDie();

  auto pair = CreateSocketChannelPair().ValueOrDie();
  Status server_status = Status::OK();
  std::thread server_thread([&db, &pair, &server_status] {
    ServerSession session(&db);
    server_status = session.Serve(*pair.second);
  });
  ChaCha20Rng client_rng(43);
  ClientSession client(SharedKeyPair().private_key, sel, {7}, client_rng);
  Result<BigInt> sum = client.Run(*pair.first);
  server_thread.join();
  ASSERT_TRUE(server_status.ok()) << server_status;
  EXPECT_EQ(*sum, BigInt(truth));
}

TEST(SessionTest, SelectionSizeMismatchAbortsBothSides) {
  ChaCha20Rng rng(3);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(20, 100);
  SelectionVector wrong = gen.RandomSelection(25, 5);  // 25 != 20
  Result<BigInt> sum = RunSession(db, wrong, 0, 44);
  EXPECT_FALSE(sum.ok());
  EXPECT_EQ(sum.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, ServerRejectsUnknownVersion) {
  Database db("d", {1, 2, 3});
  auto [client_end, server_end] = DuplexPipe::Create();
  Status server_status = Status::OK();
  std::thread server_thread([&db, &server_end, &server_status] {
    ServerSession session(&db);
    server_status = session.Serve(*server_end);
  });

  ClientHelloMessage hello;
  hello.protocol_version = 99;
  hello.public_key_blob = SerializePublicKey(SharedKeyPair().public_key);
  ASSERT_TRUE(client_end->Send(hello.Encode()).ok());
  Bytes reply = client_end->Receive().ValueOrDie();
  EXPECT_EQ(PeekMessageType(reply).ValueOrDie(), MessageType::kError);
  server_thread.join();
  EXPECT_FALSE(server_status.ok());
}

TEST(SessionTest, ServerRejectsGarbagePublicKey) {
  Database db("d", {1, 2, 3});
  auto [client_end, server_end] = DuplexPipe::Create();
  Status server_status = Status::OK();
  std::thread server_thread([&db, &server_end, &server_status] {
    ServerSession session(&db);
    server_status = session.Serve(*server_end);
  });

  ClientHelloMessage hello;
  hello.protocol_version = kSessionProtocolVersion;
  hello.public_key_blob = Bytes{1, 2, 3, 4};
  ASSERT_TRUE(client_end->Send(hello.Encode()).ok());
  Bytes reply = client_end->Receive().ValueOrDie();
  EXPECT_EQ(PeekMessageType(reply).ValueOrDie(), MessageType::kError);
  server_thread.join();
  EXPECT_FALSE(server_status.ok());
}

TEST(SessionTest, ServerRejectsNonHelloOpening) {
  Database db("d", {1, 2, 3});
  auto [client_end, server_end] = DuplexPipe::Create();
  Status server_status = Status::OK();
  std::thread server_thread([&db, &server_end, &server_status] {
    ServerSession session(&db);
    server_status = session.Serve(*server_end);
  });
  RingPartialMessage wrong{BigInt(5)};
  ASSERT_TRUE(client_end->Send(wrong.Encode()).ok());
  Bytes reply = client_end->Receive().ValueOrDie();
  EXPECT_EQ(PeekMessageType(reply).ValueOrDie(), MessageType::kError);
  server_thread.join();
  EXPECT_FALSE(server_status.ok());
}

TEST(SessionTest, ClientSessionIsSingleShot) {
  Database db("d", {1, 2, 3});
  SelectionVector sel = {true, false, true};
  auto [client_end, server_end] = DuplexPipe::Create();
  std::thread server_thread([&db, &server_end] {
    ServerSession session(&db);
    session.Serve(*server_end).IgnoreError();
  });
  ChaCha20Rng rng(77);
  ClientSession client(SharedKeyPair().private_key, sel, {}, rng);
  ASSERT_TRUE(client.Run(*client_end).ok());
  server_thread.join();
  Result<BigInt> again = client.Run(*client_end);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, QuerySessionRunsManyQueriesOverOneConnection) {
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(Database("age", {30, 40, 50, 60})).ok());
  ASSERT_TRUE(registry.Register(Database("income", {10, 20, 30, 40})).ok());
  auto [client_end, server_end] = DuplexPipe::Create();
  Status server_status = Status::OK();
  SessionMetrics metrics;
  std::thread server_thread([&] {
    ServerSessionOptions options;
    options.default_column = registry.Find("age");
    ServerSession session(&registry, options);
    server_status = session.Serve(*server_end);
    metrics = session.metrics();
  });

  ChaCha20Rng rng(88);
  QuerySession session(SharedKeyPair().private_key, rng);
  ASSERT_TRUE(session.Connect(*client_end).ok());
  EXPECT_EQ(session.negotiated_version(), kSessionProtocolV2);
  EXPECT_EQ(session.server_rows(), 4u);

  SelectionVector sel = {true, false, true, false};
  QuerySpec sum_spec;  // empty column name = the server's default
  EXPECT_EQ(session.RunQuery(sum_spec, sel).ValueOrDie(), BigInt(30 + 50));

  QuerySpec sq_spec;
  sq_spec.kind = StatisticKind::kSumOfSquares;
  sq_spec.column = "income";
  EXPECT_EQ(session.RunQuery(sq_spec, sel).ValueOrDie(), BigInt(100 + 900));

  QuerySpec prod_spec;
  prod_spec.kind = StatisticKind::kProduct;
  prod_spec.column = "age";
  prod_spec.column2 = "income";
  EXPECT_EQ(session.RunQuery(prod_spec, sel).ValueOrDie(),
            BigInt(30 * 10 + 50 * 30));

  ASSERT_TRUE(session.Finish().ok());
  server_thread.join();
  EXPECT_TRUE(server_status.ok()) << server_status;
  EXPECT_EQ(metrics.queries, 3u);
  EXPECT_EQ(metrics.negotiated_version, kSessionProtocolV2);
}

TEST(SessionTest, UnknownColumnAbortsSession) {
  ColumnRegistry registry;
  ASSERT_TRUE(registry.Register(Database("age", {1, 2})).ok());
  auto [client_end, server_end] = DuplexPipe::Create();
  Status server_status = Status::OK();
  std::thread server_thread([&] {
    ServerSession session(&registry, {});
    server_status = session.Serve(*server_end);
  });

  ChaCha20Rng rng(89);
  QuerySession session(SharedKeyPair().private_key, rng);
  ASSERT_TRUE(session.Connect(*client_end).ok());
  QuerySpec spec;
  spec.column = "nope";
  Result<BigInt> sum = session.RunQuery(spec, SelectionVector{true, false});
  EXPECT_FALSE(sum.ok());
  EXPECT_EQ(sum.status().code(), StatusCode::kNotFound);
  server_thread.join();
  EXPECT_FALSE(server_status.ok());
}

TEST(SessionTest, UnknownStatisticKindAbortsSession) {
  Database db("d", {1, 2, 3});
  auto [client_end, server_end] = DuplexPipe::Create();
  Status server_status = Status::OK();
  std::thread server_thread([&db, &server_end, &server_status] {
    ServerSession session(&db);
    server_status = session.Serve(*server_end);
  });

  ClientHelloMessage hello;
  hello.protocol_version = kSessionProtocolV2;
  hello.public_key_blob = SerializePublicKey(SharedKeyPair().public_key);
  ASSERT_TRUE(client_end->Send(hello.Encode()).ok());
  ASSERT_TRUE(client_end->Receive().ok());  // ServerHello

  QueryHeaderMessage header;
  header.kind = 99;  // not a StatisticKind
  ASSERT_TRUE(client_end->Send(header.Encode()).ok());
  Bytes reply = client_end->Receive().ValueOrDie();
  EXPECT_EQ(PeekMessageType(reply).ValueOrDie(), MessageType::kError);
  server_thread.join();
  EXPECT_FALSE(server_status.ok());
}

TEST(SessionTest, QuerySessionFallsBackToV1Semantics) {
  Database db("d", {5, 6, 7});
  auto [client_end, server_end] = DuplexPipe::Create();
  std::thread server_thread([&db, &server_end] {
    // Simulates an old v1-only server: replies with version 1 and serves
    // a single plain sum over its database.
    ClientHelloMessage hello =
        ClientHelloMessage::Decode(server_end->Receive().ValueOrDie())
            .ValueOrDie();
    PaillierPublicKey pub =
        DeserializePublicKey(hello.public_key_blob).ValueOrDie();
    ServerHelloMessage reply;
    reply.protocol_version = kSessionProtocolV1;
    reply.database_size = db.size();
    ASSERT_TRUE(server_end->Send(reply.Encode()).ok());
    SumServer server(pub, &db);
    while (!server.Finished()) {
      Bytes frame = server_end->Receive().ValueOrDie();
      auto response = server.HandleRequest(frame).ValueOrDie();
      if (response.has_value()) {
        ASSERT_TRUE(server_end->Send(*response).ok());
      }
    }
  });

  ChaCha20Rng rng(90);
  QuerySession session(SharedKeyPair().private_key, rng);
  ASSERT_TRUE(session.Connect(*client_end).ok());
  EXPECT_EQ(session.negotiated_version(), kSessionProtocolV1);
  EXPECT_EQ(session.server_rows(), 3u);

  // v1 cannot serve named columns or other statistic kinds.
  QuerySpec sq_spec;
  sq_spec.kind = StatisticKind::kSumOfSquares;
  SelectionVector sel = {true, true, false};
  EXPECT_EQ(session.RunQuery(sq_spec, sel).status().code(),
            StatusCode::kFailedPrecondition);

  EXPECT_EQ(session.RunQuery(QuerySpec{}, sel).ValueOrDie(), BigInt(11));
  server_thread.join();

  // One query per v1 session.
  EXPECT_EQ(session.RunQuery(QuerySpec{}, sel).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(session.Finish().ok());
}

TEST(SessionTest, SequentialSessionsOnFreshChannels) {
  ChaCha20Rng rng(4);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(15, 500);
  for (uint64_t q = 0; q < 3; ++q) {
    ChaCha20Rng sel_rng(50 + q);
    WorkloadGenerator sel_gen(sel_rng);
    SelectionVector sel = sel_gen.RandomSelection(15, 5);
    uint64_t truth = db.SelectedSum(sel).ValueOrDie();
    EXPECT_EQ(RunSession(db, sel, 4, 100 + q).ValueOrDie(), BigInt(truth));
  }
}

TEST(SocketChannelTest, LargeMessagesSurviveFraming) {
  auto pair = CreateSocketChannelPair().ValueOrDie();
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  std::thread sender([&pair, &big] {
    ASSERT_TRUE(pair.first->Send(big).ok());
    ASSERT_TRUE(pair.first->Send(Bytes{1}).ok());
  });
  EXPECT_EQ(pair.second->Receive().ValueOrDie(), big);
  EXPECT_EQ(pair.second->Receive().ValueOrDie(), Bytes{1});
  sender.join();
}

TEST(SocketChannelTest, CloseSurfacesAsProtocolError) {
  auto pair = CreateSocketChannelPair().ValueOrDie();
  pair.first.reset();
  Result<Bytes> r = pair.second->Receive();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kProtocolError);
}

TEST(SocketChannelTest, ListenerAcceptsAndServes) {
  std::string path = std::string(::testing::TempDir()) + "/ppstats_lt.sock";
  SocketListener listener = SocketListener::Bind(path).ValueOrDie();

  Database db("d", {5, 6, 7, 8});
  Status server_status = Status::OK();
  std::thread server_thread([&listener, &db, &server_status] {
    auto channel = listener.Accept();
    if (!channel.ok()) {
      server_status = channel.status();
      return;
    }
    ServerSession session(&db);
    server_status = session.Serve(**channel);
  });

  auto channel = ConnectUnixSocket(path).ValueOrDie();
  ChaCha20Rng rng(7);
  SelectionVector sel = {true, false, true, false};
  ClientSession client(SharedKeyPair().private_key, sel, {}, rng);
  Result<BigInt> sum = client.Run(*channel);
  server_thread.join();
  ASSERT_TRUE(server_status.ok()) << server_status;
  EXPECT_EQ(*sum, BigInt(12));
}

TEST(SocketChannelTest, ListenerRejectsOverlongPath) {
  std::string path(200, 'x');
  EXPECT_FALSE(SocketListener::Bind("/tmp/" + path).ok());
  EXPECT_FALSE(ConnectUnixSocket("/tmp/" + path).ok());
}

TEST(SocketChannelTest, ConnectToMissingSocketFails) {
  Result<std::unique_ptr<Channel>> r =
      ConnectUnixSocket("/tmp/ppstats-no-such-socket-xyz.sock");
  EXPECT_FALSE(r.ok());
}

TEST(SocketChannelTest, OversizedFrameRejectedBySender) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto a = WrapSocket(fds[0], /*max_message_bytes=*/16);
  auto b = WrapSocket(fds[1], /*max_message_bytes=*/16);
  EXPECT_FALSE(a->Send(Bytes(17)).ok());
  EXPECT_TRUE(a->Send(Bytes(16)).ok());
  EXPECT_EQ(b->Receive().ValueOrDie().size(), 16u);
}

}  // namespace
}  // namespace ppstats
