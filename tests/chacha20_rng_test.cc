#include "crypto/chacha20_rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bytes.h"

namespace ppstats {
namespace {

TEST(ChaCha20RngTest, MatchesRfc8439BlockFunction) {
  // RFC 8439 section 2.3.2 test vector: key 00..1f, nonce
  // 00:00:00:09:00:00:00:4a:00:00:00:00, block counter 1. Our stream
  // starts at counter 0, so the RFC block is bytes [64, 128).
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<uint8_t>(i);
  std::array<uint8_t, 12> nonce{0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20Rng rng(key, nonce);
  Bytes stream(128);
  rng.Fill(stream);
  Bytes expected =
      FromHex(
          "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
          "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
          .ValueOrDie();
  EXPECT_EQ(Bytes(stream.begin() + 64, stream.end()), expected);
  EXPECT_EQ(rng.blocks_generated(), 2u);
}

TEST(ChaCha20RngTest, DeterministicUnderSeed) {
  ChaCha20Rng a(123);
  ChaCha20Rng b(123);
  Bytes buf_a(1000), buf_b(1000);
  a.Fill(buf_a);
  b.Fill(buf_b);
  EXPECT_EQ(buf_a, buf_b);
}

TEST(ChaCha20RngTest, DifferentSeedsDiverge) {
  ChaCha20Rng a(1);
  ChaCha20Rng b(2);
  Bytes buf_a(64), buf_b(64);
  a.Fill(buf_a);
  b.Fill(buf_b);
  EXPECT_NE(buf_a, buf_b);
}

TEST(ChaCha20RngTest, SplitFillsMatchOneBigFill) {
  ChaCha20Rng a(55);
  ChaCha20Rng b(55);
  Bytes big(300);
  a.Fill(big);
  Bytes parts(300);
  size_t sizes[] = {1, 63, 64, 65, 107};
  size_t pos = 0;
  for (size_t s : sizes) {
    b.Fill(std::span<uint8_t>(parts.data() + pos, s));
    pos += s;
  }
  ASSERT_EQ(pos, 300u);
  EXPECT_EQ(big, parts);
}

TEST(ChaCha20RngTest, NextUint64Uniformish) {
  ChaCha20Rng rng(77);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextUint64());
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in 1000 draws
}

TEST(ChaCha20RngTest, NextBelowRespectsBound) {
  ChaCha20Rng rng(78);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(ChaCha20RngTest, NextBelowCoversRange) {
  ChaCha20Rng rng(79);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBelow(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ChaCha20RngTest, ByteDistributionIsBalanced) {
  ChaCha20Rng rng(80);
  Bytes buf(1 << 16);
  rng.Fill(buf);
  size_t ones = 0;
  for (uint8_t b : buf) ones += std::popcount(b);
  double frac = static_cast<double>(ones) / (buf.size() * 8);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace ppstats
