// End-to-end cluster test over real processes: ppstats_coordinator in
// front of real ppstats_server shards, queried with ppstats_client, all
// speaking over sockets. Verifies the merged result is bit-for-bit the
// single-server answer, and the failure policies when a shard is
// SIGKILLed between queries.
//
// The tool binaries live next to each other in PPSTATS_TOOLS_BIN_DIR
// (a compile definition from tests/CMakeLists.txt).

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace {

std::string ToolPath(const std::string& name) {
  return std::string(PPSTATS_TOOLS_BIN_DIR) + "/" + name;
}

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = std::string(::testing::TempDir()) + "/cluster_e2e_" +
                    tag + "_" + std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  EXPECT_EQ(mkdir(dir.c_str(), 0700), 0) << strerror(errno);
  return dir;
}

void WriteValuesFile(const std::string& path,
                     const std::vector<uint32_t>& values) {
  std::ofstream out(path, std::ios::trunc);
  for (uint32_t v : values) out << v << "\n";
  ASSERT_TRUE(out.good()) << path;
}

/// A spawned tool with its stdout captured through a pipe.
class ChildProcess {
 public:
  ChildProcess() = default;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ~ChildProcess() { Terminate(SIGTERM); }

  bool Spawn(const std::vector<std::string>& argv) {
    int fds[2];
    if (pipe(fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) {
      close(fds[0]);
      close(fds[1]);
      return false;
    }
    if (pid_ == 0) {
      close(fds[0]);
      dup2(fds[1], STDOUT_FILENO);
      dup2(fds[1], STDERR_FILENO);
      close(fds[1]);
      std::vector<char*> args;
      args.reserve(argv.size() + 1);
      for (const std::string& arg : argv) {
        args.push_back(const_cast<char*>(arg.c_str()));
      }
      args.push_back(nullptr);
      execv(args[0], args.data());
      _exit(127);
    }
    close(fds[1]);
    stdout_fd_ = fds[0];
    fcntl(stdout_fd_, F_SETFL, O_NONBLOCK);
    return true;
  }

  /// Accumulates the child's output until a line starting with `prefix`
  /// appears; returns the rest of that line, or "" on timeout/exit.
  std::string WaitForLine(const std::string& prefix, int timeout_ms = 15000) {
    while (true) {
      size_t line_start = 0;
      for (size_t i = 0; i < output_.size(); ++i) {
        if (output_[i] != '\n') continue;
        std::string line = output_.substr(line_start, i - line_start);
        line_start = i + 1;
        if (line.rfind(prefix, 0) == 0) return line.substr(prefix.size());
      }
      struct pollfd pfd = {stdout_fd_, POLLIN, 0};
      int ready = poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return "";
      char buf[4096];
      ssize_t got = read(stdout_fd_, buf, sizeof(buf));
      if (got <= 0) return "";
      output_.append(buf, static_cast<size_t>(got));
    }
  }

  /// Drains remaining output and reaps the child; returns its exit code
  /// (or -signal when killed).
  int Wait() {
    if (pid_ < 0) return -1;
    while (true) {
      char buf[4096];
      struct pollfd pfd = {stdout_fd_, POLLIN, 0};
      if (poll(&pfd, 1, 15000) <= 0) break;
      ssize_t got = read(stdout_fd_, buf, sizeof(buf));
      if (got <= 0) break;
      output_.append(buf, static_cast<size_t>(got));
    }
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    close(stdout_fd_);
    stdout_fd_ = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return -WTERMSIG(status);
    return -1;
  }

  void Terminate(int signo) {
    if (pid_ < 0) return;
    kill(pid_, signo);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    if (stdout_fd_ >= 0) {
      close(stdout_fd_);
      stdout_fd_ = -1;
    }
  }

  void Kill() { Terminate(SIGKILL); }

  pid_t pid() const { return pid_; }
  const std::string& output() const { return output_; }

 private:
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::string output_;
};

/// Runs ppstats_client to completion; returns its exit code and output.
int RunClient(const std::vector<std::string>& extra_args,
              const std::string& key_path, const std::string& uri,
              size_t rows, const std::vector<std::string>& selects,
              std::string* output) {
  std::vector<std::string> argv = {ToolPath("ppstats_client"),
                                   "--key",     key_path,
                                   "--connect", uri,
                                   "--rows",    std::to_string(rows),
                                   "--seed",    "99"};
  for (const std::string& select : selects) {
    argv.push_back("--select");
    argv.push_back(select);
  }
  argv.insert(argv.end(), extra_args.begin(), extra_args.end());
  ChildProcess client;
  if (!client.Spawn(argv)) return -1;
  int code = client.Wait();
  *output = client.output();
  return code;
}

class ClusterE2eTest : public ::testing::Test {
 protected:
  /// keygen + per-shard value files; values[i] = 3i + 1 over `rows`.
  void SetUpCluster(const std::string& tag, size_t shards,
                    size_t rows_per_shard) {
    dir_ = UniqueDir(tag);
    rows_ = shards * rows_per_shard;
    std::vector<uint32_t> all;
    for (size_t i = 0; i < rows_; ++i) {
      all.push_back(static_cast<uint32_t>(3 * i + 1));
    }
    WriteValuesFile(dir_ + "/all.txt", all);
    for (size_t s = 0; s < shards; ++s) {
      WriteValuesFile(
          dir_ + "/shard" + std::to_string(s) + ".txt",
          std::vector<uint32_t>(all.begin() + s * rows_per_shard,
                                all.begin() + (s + 1) * rows_per_shard));
    }

    ChildProcess keygen;
    ASSERT_TRUE(keygen.Spawn({ToolPath("ppstats_keygen"), "--bits", "256",
                              "--out", dir_ + "/key", "--seed", "7"}));
    ASSERT_EQ(keygen.Wait(), 0) << keygen.output();
    key_path_ = dir_ + "/key.priv";

    shard_uris_.clear();
    shard_servers_.clear();
    for (size_t s = 0; s < shards; ++s) {
      auto server = std::make_unique<ChildProcess>();
      ASSERT_TRUE(server->Spawn(
          {ToolPath("ppstats_server"), "--db",
           "v=" + dir_ + "/shard" + std::to_string(s) + ".txt", "--listen",
           "tcp:127.0.0.1:0"}));
      std::string uri = server->WaitForLine("listening on ");
      ASSERT_FALSE(uri.empty()) << "shard " << s << " never came up:\n"
                                << server->output();
      shard_uris_.push_back(uri);
      shard_servers_.push_back(std::move(server));
    }
  }

  std::vector<std::string> MapArgs(size_t rows_per_shard) const {
    std::vector<std::string> args;
    for (size_t s = 0; s < shard_uris_.size(); ++s) {
      args.push_back("--map");
      args.push_back("v=" + std::to_string(s * rows_per_shard) + "-" +
                     std::to_string((s + 1) * rows_per_shard) + "@" +
                     shard_uris_[s]);
    }
    return args;
  }

  std::string StartCoordinator(ChildProcess* coordinator,
                               std::vector<std::string> extra_args,
                               size_t rows_per_shard) {
    std::vector<std::string> argv = {ToolPath("ppstats_coordinator"),
                                     "--listen", "tcp:127.0.0.1:0"};
    std::vector<std::string> maps = MapArgs(rows_per_shard);
    argv.insert(argv.end(), maps.begin(), maps.end());
    argv.insert(argv.end(), extra_args.begin(), extra_args.end());
    EXPECT_TRUE(coordinator->Spawn(argv));
    return coordinator->WaitForLine("listening on ");
  }

  std::string dir_;
  std::string key_path_;
  size_t rows_ = 0;
  std::vector<std::string> shard_uris_;
  std::vector<std::unique_ptr<ChildProcess>> shard_servers_;
};

TEST_F(ClusterE2eTest, MergedResultMatchesSingleServerBitForBit) {
  const size_t kShards = 4, kRowsPerShard = 6;
  SetUpCluster("merge", kShards, kRowsPerShard);

  ChildProcess single;
  ASSERT_TRUE(single.Spawn({ToolPath("ppstats_server"), "--db",
                            "v=" + dir_ + "/all.txt", "--listen",
                            "tcp:127.0.0.1:0"}));
  std::string single_uri = single.WaitForLine("listening on ");
  ASSERT_FALSE(single_uri.empty()) << single.output();

  ChildProcess coordinator;
  std::string coordinator_uri =
      StartCoordinator(&coordinator, {}, kRowsPerShard);
  ASSERT_FALSE(coordinator_uri.empty()) << coordinator.output();

  // Selections crossing shard boundaries, within one shard, and total.
  std::vector<std::string> selects = {"0,5,6,11,23", "2,3,4",
                                      "0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,"
                                      "16,17,18,19,20,21,22,23"};
  std::string single_out, cluster_out;
  ASSERT_EQ(RunClient({"--column", "v"}, key_path_, single_uri, rows_,
                      selects, &single_out),
            0)
      << single_out;
  ASSERT_EQ(RunClient({"--column", "v"}, key_path_, coordinator_uri, rows_,
                      selects, &cluster_out),
            0)
      << cluster_out;
  EXPECT_EQ(cluster_out, single_out);
  // Sanity anchor: sum over all 24 rows of 3i+1 = 3*276 + 24.
  EXPECT_NE(single_out.find("852"), std::string::npos) << single_out;
}

TEST_F(ClusterE2eTest, ShardKillHonorsBothFailurePolicies) {
  const size_t kShards = 2, kRowsPerShard = 4;
  SetUpCluster("kill", kShards, kRowsPerShard);

  ChildProcess fail_coordinator;
  std::string fail_uri = StartCoordinator(
      &fail_coordinator,
      {"--partial", "fail", "--shard-attempts", "1", "--connect-deadline-ms",
       "2000", "--shard-io-deadline-ms", "5000"},
      kRowsPerShard);
  ASSERT_FALSE(fail_uri.empty()) << fail_coordinator.output();
  ChildProcess partial_coordinator;
  std::string partial_uri = StartCoordinator(
      &partial_coordinator,
      {"--partial", "partial", "--shard-attempts", "1",
       "--connect-deadline-ms", "2000", "--shard-io-deadline-ms", "5000"},
      kRowsPerShard);
  ASSERT_FALSE(partial_uri.empty()) << partial_coordinator.output();

  // Both answer while the cluster is healthy.
  std::string out;
  ASSERT_EQ(RunClient({"--column", "v"}, key_path_, fail_uri, rows_,
                      {"0,1,2,3,4,5,6,7"}, &out),
            0)
      << out;
  EXPECT_NE(out.find("92\n"), std::string::npos) << out;  // sum of 3i+1, i<8

  // SIGKILL the second shard mid-deployment.
  shard_servers_[1]->Kill();

  // fail policy: the query errors out, mentioning the failed shard.
  EXPECT_NE(RunClient({"--column", "v"}, key_path_, fail_uri, rows_,
                      {"0,1,2,3,4,5,6,7"}, &out),
            0)
      << out;
  EXPECT_NE(out.find("shard"), std::string::npos) << out;

  // partial policy without opt-in: the client refuses the flagged frame.
  EXPECT_NE(RunClient({"--column", "v"}, key_path_, partial_uri, rows_,
                      {"0,1,2,3,4,5,6,7"}, &out),
            0)
      << out;
  EXPECT_NE(out.find("partial"), std::string::npos) << out;

  // partial policy with --accept-partial: the surviving shard's rows
  // are summed and the flagged coverage is reported.
  ASSERT_EQ(RunClient({"--column", "v", "--accept-partial"}, key_path_,
                      partial_uri, rows_, {"0,1,2,3,4,5,6,7"}, &out),
            0)
      << out;
  EXPECT_NE(out.find("22\n"), std::string::npos) << out;  // rows 0-3 only
  EXPECT_NE(out.find("partial result: 1/2 shards, 4 rows covered"),
            std::string::npos)
      << out;
}

}  // namespace
