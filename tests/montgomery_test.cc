#include "bigint/montgomery.h"

#include <gtest/gtest.h>

#include "bigint/modarith.h"
#include "crypto/chacha20_rng.h"

namespace ppstats {
namespace {

TEST(MontgomeryTest, RoundTripSmallModulus) {
  MontgomeryContext ctx(BigInt(97));
  for (uint64_t v = 0; v < 97; ++v) {
    BigInt x(v);
    EXPECT_EQ(ctx.FromMontgomery(ctx.ToMontgomery(x)), x) << v;
  }
}

TEST(MontgomeryTest, MulMatchesMulMod) {
  ChaCha20Rng rng(21);
  for (size_t bits : {64u, 128u, 512u, 1024u}) {
    BigInt m = RandomBits(rng, bits) + BigInt(3);
    if (m.IsEven()) m += 1;
    MontgomeryContext ctx(m);
    for (int iter = 0; iter < 20; ++iter) {
      BigInt a = RandomBelow(rng, m);
      BigInt b = RandomBelow(rng, m);
      BigInt am = ctx.ToMontgomery(a);
      BigInt bm = ctx.ToMontgomery(b);
      BigInt prod = ctx.FromMontgomery(ctx.MulMontgomery(am, bm));
      EXPECT_EQ(prod, MulMod(a, b, m));
    }
  }
}

TEST(MontgomeryTest, ExpEdgeCases) {
  MontgomeryContext ctx(BigInt(101));
  EXPECT_EQ(ctx.Exp(BigInt(5), BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx.Exp(BigInt(5), BigInt(1)), BigInt(5));
  EXPECT_EQ(ctx.Exp(BigInt(0), BigInt(5)), BigInt(0));
  EXPECT_EQ(ctx.Exp(BigInt(100), BigInt(2)), BigInt(1));  // (-1)^2
  EXPECT_EQ(ctx.Exp(BigInt(2), BigInt(100)), BigInt(1));  // Fermat
}

TEST(MontgomeryTest, ExpHandlesBaseAboveModulus) {
  MontgomeryContext ctx(BigInt(101));
  EXPECT_EQ(ctx.Exp(BigInt(205), BigInt(3)), ModExpPlain(BigInt(3), BigInt(3), BigInt(101)));
}

class MontgomeryExpTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(MontgomeryExpTest, AgreesWithPlainExponentiation) {
  auto [mod_bits, exp_bits] = GetParam();
  ChaCha20Rng rng(22 + mod_bits + exp_bits);
  BigInt m = RandomBits(rng, mod_bits) + BigInt(3);
  if (m.IsEven()) m += 1;
  MontgomeryContext ctx(m);
  for (int iter = 0; iter < 8; ++iter) {
    BigInt base = RandomBelow(rng, m);
    BigInt exp = RandomBits(rng, exp_bits);
    EXPECT_EQ(ctx.Exp(base, exp), ModExpPlain(base, exp, m));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MontgomeryExpTest,
    ::testing::Values(std::make_pair(64, 32), std::make_pair(128, 128),
                      std::make_pair(512, 32), std::make_pair(512, 512),
                      std::make_pair(1024, 64), std::make_pair(1024, 1024),
                      std::make_pair(2048, 64)));

TEST(MontgomeryTest, WindowBoundariesExercised) {
  // Exponents around multiples of the 4-bit window width.
  ChaCha20Rng rng(23);
  BigInt m = RandomBits(rng, 256) + BigInt(3);
  if (m.IsEven()) m += 1;
  MontgomeryContext ctx(m);
  BigInt base = RandomBelow(rng, m);
  for (uint64_t e : {1ULL, 15ULL, 16ULL, 17ULL, 255ULL, 256ULL, 257ULL,
                     65535ULL, 65536ULL}) {
    EXPECT_EQ(ctx.Exp(base, BigInt(e)), ModExpPlain(base, BigInt(e), m))
        << e;
  }
}

TEST(MontgomeryTest, SqrMatchesMulMod) {
  ChaCha20Rng rng(31);
  for (size_t bits : {64u, 128u, 512u, 1024u, 2048u}) {
    BigInt m = RandomBits(rng, bits) + BigInt(3);
    if (m.IsEven()) m += 1;
    MontgomeryContext ctx(m);
    for (int iter = 0; iter < 10; ++iter) {
      BigInt a = RandomBelow(rng, m);
      BigInt am = ctx.ToMontgomery(a);
      EXPECT_EQ(ctx.FromMontgomery(ctx.Sqr(am)), MulMod(a, a, m));
      EXPECT_EQ(ctx.Sqr(am), ctx.MulMontgomery(am, am));
    }
  }
}

TEST(MontgomeryTest, SqrEdgeValues) {
  MontgomeryContext ctx(BigInt(101));
  EXPECT_EQ(ctx.FromMontgomery(ctx.Sqr(ctx.ToMontgomery(BigInt(0)))),
            BigInt(0));
  EXPECT_EQ(ctx.FromMontgomery(ctx.Sqr(ctx.ToMontgomery(BigInt(1)))),
            BigInt(1));
  EXPECT_EQ(ctx.FromMontgomery(ctx.Sqr(ctx.ToMontgomery(BigInt(100)))),
            BigInt(1));  // (-1)^2
}

TEST(MontgomeryTest, OneMontgomeryIsIdentity) {
  ChaCha20Rng rng(32);
  BigInt m = RandomBits(rng, 256) + BigInt(3);
  if (m.IsEven()) m += 1;
  MontgomeryContext ctx(m);
  EXPECT_EQ(ctx.FromMontgomery(ctx.OneMontgomery()), BigInt(1));
  BigInt a = ctx.ToMontgomery(RandomBelow(rng, m));
  EXPECT_EQ(ctx.MulMontgomery(a, ctx.OneMontgomery()), a);
}

TEST(MontgomeryTest, ExpSmallExponentBoundary) {
  // Exp switches from plain square-and-multiply to the 4-bit window at
  // 48-bit exponents; check widths straddling the boundary agree with
  // the reference ladder.
  ChaCha20Rng rng(33);
  BigInt m = RandomBits(rng, 512) + BigInt(3);
  if (m.IsEven()) m += 1;
  MontgomeryContext ctx(m);
  BigInt base = RandomBelow(rng, m);
  for (size_t exp_bits : {1u, 2u, 3u, 31u, 32u, 47u, 48u, 49u, 50u, 64u}) {
    BigInt exp = (BigInt(1) << (exp_bits - 1)) + RandomBits(rng, exp_bits - 1);
    ASSERT_EQ(exp.BitLength(), exp_bits);
    EXPECT_EQ(ctx.Exp(base, exp), ModExpPlain(base, exp, m)) << exp_bits;
  }
}

TEST(MontgomeryTest, ExpGroupOrder) {
  // 2^61 - 1 is a Mersenne prime, so base^(p-1) = 1 and base^p = base.
  const BigInt p = (BigInt(1) << 61) - BigInt(1);
  MontgomeryContext ctx(p);
  ChaCha20Rng rng(34);
  for (int iter = 0; iter < 4; ++iter) {
    BigInt base = RandomBelow(rng, p);
    if (base.IsZero()) base = BigInt(2);
    EXPECT_EQ(ctx.Exp(base, p - BigInt(1)), BigInt(1));
    EXPECT_EQ(ctx.Exp(base, p), base);
  }
}

TEST(MontgomeryTest, ModulusAccessor) {
  BigInt m(12345677);  // odd
  MontgomeryContext ctx(m);
  EXPECT_EQ(ctx.modulus(), m);
}

}  // namespace
}  // namespace ppstats
