#include "yao/selected_sum_circuit.h"

#include <gtest/gtest.h>

#include "crypto/chacha20_rng.h"
#include "db/workload.h"
#include "yao/garble.h"

namespace ppstats {
namespace {

TEST(SelectedSumCircuitTest, SpecComputesSumWidth) {
  SelectedSumCircuitSpec spec;
  spec.num_values = 100;
  spec.value_bits = 32;
  EXPECT_EQ(spec.EffectiveSumBits(), 32u + 7u + 1u);  // ceil(log2 100) = 7
  spec.sum_bits = 48;
  EXPECT_EQ(spec.EffectiveSumBits(), 48u);
  SelectedSumCircuitSpec one;
  one.num_values = 1;
  EXPECT_EQ(one.EffectiveSumBits(), 33u);
}

TEST(SelectedSumCircuitTest, PlainEvaluationMatchesArithmetic) {
  ChaCha20Rng rng(1);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(12, 1000);
  SelectedSumCircuitSpec spec;
  spec.num_values = 12;
  Circuit circuit = BuildSelectedSumCircuit(spec);

  for (uint64_t seed = 0; seed < 5; ++seed) {
    ChaCha20Rng sel_rng(100 + seed);
    WorkloadGenerator sel_gen(sel_rng);
    SelectionVector sel = sel_gen.RandomSelection(12, 6);
    uint64_t truth = db.SelectedSum(sel).ValueOrDie();
    auto out = EvaluateCircuit(circuit, EncodeDatabaseBits(db, spec),
                               std::vector<bool>(sel.begin(), sel.end()))
                   .ValueOrDie();
    EXPECT_EQ(DecodeSumBits(out), truth);
  }
}

TEST(SelectedSumCircuitTest, InputArities) {
  SelectedSumCircuitSpec spec;
  spec.num_values = 5;
  spec.value_bits = 8;
  Circuit circuit = BuildSelectedSumCircuit(spec);
  EXPECT_EQ(circuit.garbler_inputs.size(), 40u);
  EXPECT_EQ(circuit.evaluator_inputs.size(), 5u);
  EXPECT_EQ(circuit.outputs.size(), spec.EffectiveSumBits());
}

TEST(SelectedSumCircuitTest, GateCountGrowsLinearly) {
  SelectedSumCircuitSpec small;
  small.num_values = 10;
  SelectedSumCircuitSpec large;
  large.num_values = 100;
  size_t small_gates = BuildSelectedSumCircuit(small).gates.size();
  size_t large_gates = BuildSelectedSumCircuit(large).gates.size();
  double ratio = static_cast<double>(large_gates) / small_gates;
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(SelectedSumCircuitTest, EncodeDecodeHelpers) {
  Database db("d", {0x0F, 0xF0});
  SelectedSumCircuitSpec spec;
  spec.num_values = 2;
  spec.value_bits = 8;
  std::vector<bool> bits = EncodeDatabaseBits(db, spec);
  ASSERT_EQ(bits.size(), 16u);
  // LSB-first per value.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bits[i]);
  for (int i = 4; i < 8; ++i) EXPECT_FALSE(bits[i]);
  EXPECT_EQ(DecodeSumBits({true, false, true}), 5u);
  EXPECT_EQ(DecodeSumBits({}), 0u);
}

class YaoEndToEndTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(YaoEndToEndTest, MatchesPlaintextSum) {
  auto [n, m] = GetParam();
  ChaCha20Rng rng(200 + n + m);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(n, 0xFFFFFFFFu);
  SelectionVector sel = gen.RandomSelection(n, m);
  uint64_t truth = db.SelectedSum(sel).ValueOrDie();
  YaoRunResult result = RunYaoSelectedSum(db, sel, rng).ValueOrDie();
  EXPECT_EQ(result.sum, truth);
  EXPECT_GT(result.and_gates, 0u);
  EXPECT_GT(result.server_to_client.bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, YaoEndToEndTest,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(2, 1),
                                           std::make_pair(5, 0),
                                           std::make_pair(8, 8),
                                           std::make_pair(16, 7),
                                           std::make_pair(33, 20)));

TEST(YaoEndToEndTest, HalfGatesSchemeMatchesAndShrinksTraffic) {
  ChaCha20Rng rng(6);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(12, 100000);
  SelectionVector sel = gen.RandomSelection(12, 6);
  uint64_t truth = db.SelectedSum(sel).ValueOrDie();

  YaoRunResult classic = RunYaoSelectedSum(db, sel, rng).ValueOrDie();
  YaoRunResult half =
      RunYaoSelectedSum(db, sel, rng, 0, GarbleScheme::kHalfGates)
          .ValueOrDie();
  EXPECT_EQ(classic.sum, truth);
  EXPECT_EQ(half.sum, truth);
  // Garbled material shrinks; OT + garbler labels stay the same, so the
  // total server->client traffic must drop measurably.
  EXPECT_LT(half.server_to_client.bytes, classic.server_to_client.bytes);
}

TEST(YaoEndToEndTest, SelectionCanCoverPrefixOfDatabase) {
  ChaCha20Rng rng(3);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(50, 1000);
  SelectionVector sel(10, true);  // only the first 10 rows
  uint64_t truth = 0;
  for (int i = 0; i < 10; ++i) truth += db.value(i);
  YaoRunResult result = RunYaoSelectedSum(db, sel, rng).ValueOrDie();
  EXPECT_EQ(result.sum, truth);
}

TEST(YaoEndToEndTest, RejectsBadSelectionSize) {
  ChaCha20Rng rng(4);
  Database db("d", {1, 2});
  EXPECT_FALSE(RunYaoSelectedSum(db, SelectionVector{}, rng).ok());
  EXPECT_FALSE(RunYaoSelectedSum(db, SelectionVector(3, true), rng).ok());
}

TEST(YaoEndToEndTest, CommunicationDwarfsHomomorphicProtocol) {
  // The paper's Section 2 argument: general SMC moves vastly more data.
  // 20 elements: GC baseline ships hundreds of KB; the homomorphic
  // protocol would ship 20 ciphertexts (~2.6 KB at 512-bit keys).
  ChaCha20Rng rng(5);
  WorkloadGenerator gen(rng);
  Database db = gen.UniformDatabase(20, 1000);
  SelectionVector sel = gen.RandomSelection(20, 10);
  YaoRunResult result = RunYaoSelectedSum(db, sel, rng).ValueOrDie();
  EXPECT_GT(result.server_to_client.bytes, 100000u);
}

}  // namespace
}  // namespace ppstats
