// Differential tests for the pluggable Montgomery backends
// (bigint/mont_backend.h): every available kernel must produce
// bit-identical canonical residues — against each other, against the
// plain MulMod/ModExpPlain reference arithmetic, and on the carry-edge
// operands (m-1, values forcing the final conditional subtraction)
// where CIOS implementations historically break.

#include "bigint/mont_backend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "bigint/modarith.h"
#include "bigint/montgomery.h"
#include "crypto/chacha20_rng.h"
#include "obs/metrics.h"

namespace ppstats {
namespace {

// Exactly `bits` bits (top bit pinned), odd, so the limb count is
// bits/64 and width-dispatched backends engage.
BigInt ExactBitsOdd(ChaCha20Rng& rng, size_t bits) {
  BigInt v = (BigInt(1) << (bits - 1)) + RandomBits(rng, bits - 1);
  if (v.IsEven()) v += 1;
  return v;
}

size_t LimbsForBits(size_t bits) { return (bits + 63) / 64; }

// Every backend kind this host can serve at the given width; always
// starts with generic (the reference).
std::vector<MontBackendKind> AvailableKinds(size_t n_limbs) {
  std::vector<MontBackendKind> kinds{MontBackendKind::kGeneric};
  if (MontBackendSupports(MontBackendKind::kFixed, n_limbs)) {
    kinds.push_back(MontBackendKind::kFixed);
  }
  if (MontBackendSupports(MontBackendKind::kAdx, n_limbs)) {
    kinds.push_back(MontBackendKind::kAdx);
  }
  return kinds;
}

// Scoped PPSTATS_FORCE_BACKEND override (nullptr unsets, so tests of
// the auto path stay valid when the suite itself runs under a forced
// backend, as CI does) restoring the previous value even when an
// assertion fails mid-test.
class ScopedForceBackend {
 public:
  explicit ScopedForceBackend(const char* value) {
    const char* old = std::getenv("PPSTATS_FORCE_BACKEND");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      setenv("PPSTATS_FORCE_BACKEND", value, 1);
    } else {
      unsetenv("PPSTATS_FORCE_BACKEND");
    }
  }
  ~ScopedForceBackend() {
    if (had_old_) {
      setenv("PPSTATS_FORCE_BACKEND", old_.c_str(), 1);
    } else {
      unsetenv("PPSTATS_FORCE_BACKEND");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(MontBackendTest, KindNamesAreStable) {
  EXPECT_STREQ(MontBackendKindName(MontBackendKind::kAuto), "auto");
  EXPECT_STREQ(MontBackendKindName(MontBackendKind::kGeneric), "generic");
  EXPECT_STREQ(MontBackendKindName(MontBackendKind::kFixed), "fixed");
  EXPECT_STREQ(MontBackendKindName(MontBackendKind::kAdx), "adx");
}

TEST(MontBackendTest, DispatcherPicksBestSupportedKind) {
  ScopedForceBackend no_force(nullptr);
  ChaCha20Rng rng(101);
  for (size_t bits : {2048u, 4096u}) {
    const size_t n = LimbsForBits(bits);
    MontgomeryContext ctx(ExactBitsOdd(rng, bits));
    // The resolved kind must be supported, and must be the first
    // supported entry of the dispatch order adx > fixed > generic.
    EXPECT_TRUE(MontBackendSupports(ctx.backend_kind(), n));
    if (MontBackendSupports(MontBackendKind::kAdx, n)) {
      EXPECT_EQ(ctx.backend_kind(), MontBackendKind::kAdx);
    } else if (MontBackendSupports(MontBackendKind::kFixed, n)) {
      EXPECT_EQ(ctx.backend_kind(), MontBackendKind::kFixed);
    } else {
      EXPECT_EQ(ctx.backend_kind(), MontBackendKind::kGeneric);
    }
  }
}

TEST(MontBackendTest, EnvOverrideForcesBackend) {
  ChaCha20Rng rng(102);
  const BigInt m = ExactBitsOdd(rng, 2048);
  {
    ScopedForceBackend force("generic");
    MontgomeryContext ctx(m);
    EXPECT_EQ(ctx.backend_kind(), MontBackendKind::kGeneric);
    EXPECT_STREQ(ctx.backend_name(), "generic");
  }
  {
    // "intrinsics" is an alias for adx; on hosts without ADX the
    // request falls back down the dispatch order instead of failing.
    ScopedForceBackend force("intrinsics");
    MontgomeryContext ctx(m);
    EXPECT_EQ(ctx.backend_kind(),
              SelectMontBackend(LimbsForBits(2048), MontBackendKind::kAdx).kind);
  }
  {
    // Unknown values mean "don't force": auto dispatch.
    ScopedForceBackend force("bogus");
    MontgomeryContext forced(m);
    MontgomeryContext plain(m);
    EXPECT_EQ(forced.backend_kind(), plain.backend_kind());
  }
}

TEST(MontBackendTest, ForcedKindFallsBackWhenUnsupported) {
  ChaCha20Rng rng(103);
  // 320 bits = 5 limbs: not a fixed width, not a multiple of 4, so both
  // fast kinds must degrade to generic rather than fail.
  const BigInt m = ExactBitsOdd(rng, 320);
  EXPECT_EQ(MontgomeryContext(m, MontBackendKind::kFixed).backend_kind(),
            MontBackendKind::kGeneric);
  EXPECT_EQ(MontgomeryContext(m, MontBackendKind::kAdx).backend_kind(),
            MontBackendKind::kGeneric);
}

TEST(MontBackendTest, MulMatchesReferenceAcrossBackends) {
  ChaCha20Rng rng(104);
  for (size_t bits : {2048u, 4096u}) {
    const BigInt m = ExactBitsOdd(rng, bits);
    std::vector<MontgomeryContext> ctxs;
    for (MontBackendKind kind : AvailableKinds(LimbsForBits(bits))) {
      ctxs.emplace_back(m, kind);
      ASSERT_EQ(ctxs.back().backend_kind(), kind);
    }
    for (int iter = 0; iter < 12; ++iter) {
      const BigInt a = RandomBelow(rng, m);
      const BigInt b = RandomBelow(rng, m);
      const BigInt expected = MulMod(a, b, m);
      for (const MontgomeryContext& ctx : ctxs) {
        const BigInt am = ctx.ToMontgomery(a);
        const BigInt bm = ctx.ToMontgomery(b);
        EXPECT_EQ(ctx.FromMontgomery(ctx.MulMontgomery(am, bm)), expected)
            << bits << " bits, backend " << ctx.backend_name();
      }
    }
  }
}

TEST(MontBackendTest, CarryEdgeOperands) {
  ChaCha20Rng rng(105);
  for (size_t bits : {2048u, 4096u}) {
    // A modulus just below 2^bits makes m-1 all-ones in nearly every
    // limb — the worst case for the kernels' carry chains — and
    // products of near-m operands exercise the final conditional
    // subtraction.
    const BigInt near_top = (BigInt(1) << bits) - BigInt(159);
    for (const BigInt& m : {near_top, ExactBitsOdd(rng, bits)}) {
      ASSERT_TRUE(m.IsOdd());
      std::vector<BigInt> edges = {BigInt(0), BigInt(1), BigInt(2),
                                   m - BigInt(1), m - BigInt(2), m >> 1,
                                   RandomBelow(rng, m)};
      for (MontBackendKind kind : AvailableKinds(LimbsForBits(bits))) {
        MontgomeryContext ctx(m, kind);
        for (const BigInt& a : edges) {
          for (const BigInt& b : edges) {
            const BigInt am = ctx.ToMontgomery(a);
            const BigInt bm = ctx.ToMontgomery(b);
            EXPECT_EQ(ctx.FromMontgomery(ctx.MulMontgomery(am, bm)),
                      MulMod(a, b, m))
                << bits << " bits, backend " << ctx.backend_name();
          }
          EXPECT_EQ(ctx.FromMontgomery(ctx.Sqr(ctx.ToMontgomery(a))),
                    MulMod(a, a, m))
              << bits << " bits, backend " << ctx.backend_name();
        }
      }
    }
  }
}

TEST(MontBackendTest, SqrMatchesMulAcrossBackends) {
  ChaCha20Rng rng(106);
  for (size_t bits : {2048u, 4096u}) {
    const BigInt m = ExactBitsOdd(rng, bits);
    for (MontBackendKind kind : AvailableKinds(LimbsForBits(bits))) {
      MontgomeryContext ctx(m, kind);
      for (int iter = 0; iter < 8; ++iter) {
        const BigInt a = RandomBelow(rng, m);
        const BigInt am = ctx.ToMontgomery(a);
        EXPECT_EQ(ctx.Sqr(am), ctx.MulMontgomery(am, am))
            << bits << " bits, backend " << ctx.backend_name();
        EXPECT_EQ(ctx.FromMontgomery(ctx.Sqr(am)), MulMod(a, a, m))
            << bits << " bits, backend " << ctx.backend_name();
      }
    }
  }
}

TEST(MontBackendTest, ExpMatchesPlainExponentiationPerBackend) {
  ChaCha20Rng rng(107);
  for (size_t bits : {2048u, 4096u}) {
    const BigInt m = ExactBitsOdd(rng, bits);
    const BigInt base = RandomBelow(rng, m);
    // One short exponent (ScalarMultiply's square-and-multiply regime)
    // and one past the window threshold, per backend.
    for (size_t exp_bits : {32u, 64u}) {
      const BigInt exp = RandomBits(rng, exp_bits) + BigInt(3);
      const BigInt expected = ModExpPlain(base, exp, m);
      for (MontBackendKind kind : AvailableKinds(LimbsForBits(bits))) {
        MontgomeryContext ctx(m, kind);
        EXPECT_EQ(ctx.Exp(base, exp), expected)
            << bits << " bits, backend " << ctx.backend_name();
      }
    }
  }
}

TEST(MontBackendTest, SeededFuzzSweepPerBackend) {
  // Every fixed width in the dispatch table (4..64 limbs), a few seeded
  // random operand pairs each, all backends against MulMod.
  ChaCha20Rng rng(108);
  for (size_t bits : {256u, 512u, 1024u, 1536u, 2048u, 3072u, 4096u}) {
    const BigInt m = ExactBitsOdd(rng, bits);
    for (MontBackendKind kind : AvailableKinds(LimbsForBits(bits))) {
      MontgomeryContext ctx(m, kind);
      ASSERT_EQ(ctx.backend_kind(), kind);
      for (int iter = 0; iter < 4; ++iter) {
        const BigInt a = RandomBelow(rng, m);
        const BigInt b = RandomBelow(rng, m);
        const BigInt am = ctx.ToMontgomery(a);
        const BigInt bm = ctx.ToMontgomery(b);
        EXPECT_EQ(ctx.FromMontgomery(ctx.MulMontgomery(am, bm)),
                  MulMod(a, b, m))
            << bits << " bits, backend " << ctx.backend_name();
      }
    }
  }
}

TEST(MontBackendTest, ToMontgomeryBatchMatchesSingles) {
  ChaCha20Rng rng(109);
  const BigInt m = ExactBitsOdd(rng, 2048);
  for (MontBackendKind kind : AvailableKinds(LimbsForBits(2048))) {
    MontgomeryContext ctx(m, kind);
    for (size_t count : {0u, 1u, 2u, 3u, 7u}) {
      std::vector<BigInt> xs;
      for (size_t i = 0; i < count; ++i) xs.push_back(RandomBelow(rng, m));
      const std::vector<BigInt> batch = ctx.ToMontgomeryBatch(xs);
      ASSERT_EQ(batch.size(), count);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(batch[i], ctx.ToMontgomery(xs[i]))
            << "count " << count << ", backend " << ctx.backend_name();
      }
    }
  }
}

TEST(MontBackendTest, MultiExpAgreesAcrossBackendsAndSchedules) {
  ChaCha20Rng rng(110);
  const BigInt m = ExactBitsOdd(rng, 2048);
  constexpr size_t kRows = 30;
  std::vector<BigInt> bases;
  std::vector<BigInt> exps;
  for (size_t i = 0; i < kRows; ++i) {
    bases.push_back(RandomBelow(rng, m));
    // Include zero exponents so the skip path stays covered.
    exps.push_back(i % 7 == 0 ? BigInt(0) : RandomBits(rng, 32));
  }
  // Naive reference fold.
  BigInt expected(1);
  MontgomeryContext ref(m, MontBackendKind::kGeneric);
  for (size_t i = 0; i < kRows; ++i) {
    expected = MulMod(expected, ref.Exp(bases[i], exps[i]), m);
  }
  for (MontBackendKind kind : AvailableKinds(LimbsForBits(2048))) {
    MontgomeryContext ctx(m, kind);
    for (MultiExpSchedule schedule :
         {MultiExpSchedule::kAuto, MultiExpSchedule::kStraus,
          MultiExpSchedule::kPippenger}) {
      EXPECT_EQ(ctx.MultiExp(bases, exps, schedule), expected)
          << "backend " << ctx.backend_name();
    }
  }
}

TEST(MontBackendTest, OpCountersTick) {
  ChaCha20Rng rng(111);
  const BigInt m = ExactBitsOdd(rng, 2048);
  MontgomeryContext ctx(m, MontBackendKind::kGeneric);
  obs::Counter* mul_ops =
      obs::MetricRegistry::Global().GetCounter("mont.mul_ops.generic");
  obs::Counter* sqr_ops =
      obs::MetricRegistry::Global().GetCounter("mont.sqr_ops.generic");
  const uint64_t muls_before = mul_ops->Value();
  const uint64_t sqrs_before = sqr_ops->Value();
  const BigInt am = ctx.ToMontgomery(RandomBelow(rng, m));
  (void)ctx.MulMontgomery(am, am);
  (void)ctx.Sqr(am);
  (void)ctx.ToMontgomeryBatch(std::vector<BigInt>{am, am, am});
  // ToMontgomery + MulMontgomery + 3 batched conversions >= 5 muls.
  EXPECT_GE(mul_ops->Value(), muls_before + 5);
  EXPECT_GE(sqr_ops->Value(), sqrs_before + 1);
}

}  // namespace
}  // namespace ppstats
