// Cross-validation of the bigint layer against an independent reference
// implementation (CPython arbitrary-precision integers). The vectors in
// testdata/bigint_vectors.inc were produced by
// tools/gen_bigint_vectors.py; regenerating them requires only Python.

#include <gtest/gtest.h>

#include "bigint/modarith.h"
#include "bigint/montgomery.h"

namespace ppstats {
namespace {

struct MulDivVector {
  const char* a;
  const char* b;
  const char* sum;
  const char* product;
  const char* quotient;
  const char* remainder;
};

struct ModExpVector {
  const char* base;
  const char* exp;
  const char* mod;
  const char* result;
};

struct ModInvVector {
  const char* a;
  const char* m;
  const char* inverse;
};

struct GcdVector {
  const char* a;
  const char* b;
  const char* gcd;
};

#include "testdata/bigint_vectors.inc"

BigInt Hex(const char* s) { return BigInt::FromHexString(s).ValueOrDie(); }

TEST(BigIntVectorsTest, AddMulDivRemMatchPython) {
  for (const MulDivVector& v : kMulDivVectors) {
    BigInt a = Hex(v.a);
    BigInt b = Hex(v.b);
    EXPECT_EQ(a + b, Hex(v.sum)) << v.a;
    EXPECT_EQ(a * b, Hex(v.product)) << v.a;
    auto [q, r] = BigInt::DivRem(a, b).ValueOrDie();
    EXPECT_EQ(q, Hex(v.quotient)) << v.a;
    EXPECT_EQ(r, Hex(v.remainder)) << v.a;
  }
}

TEST(BigIntVectorsTest, ModExpMatchesPython) {
  for (const ModExpVector& v : kModExpVectors) {
    BigInt result = ModExp(Hex(v.base), Hex(v.exp), Hex(v.mod));
    EXPECT_EQ(result, Hex(v.result)) << v.base;
  }
}

TEST(BigIntVectorsTest, MontgomeryExpMatchesPython) {
  for (const ModExpVector& v : kModExpVectors) {
    BigInt mod = Hex(v.mod);
    if (mod.IsEven()) continue;
    MontgomeryContext ctx(mod);
    EXPECT_EQ(ctx.Exp(Hex(v.base), Hex(v.exp)), Hex(v.result)) << v.base;
  }
}

TEST(BigIntVectorsTest, ModInverseMatchesPython) {
  for (const ModInvVector& v : kModInvVectors) {
    BigInt inv = ModInverse(Hex(v.a), Hex(v.m)).ValueOrDie();
    EXPECT_EQ(inv, Hex(v.inverse)) << v.a;
  }
}

TEST(BigIntVectorsTest, GcdMatchesPython) {
  for (const GcdVector& v : kGcdVectors) {
    EXPECT_EQ(Gcd(Hex(v.a), Hex(v.b)), Hex(v.gcd)) << v.a;
  }
}

}  // namespace
}  // namespace ppstats
