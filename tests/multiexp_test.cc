#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "bigint/modarith.h"
#include "bigint/montgomery.h"
#include "crypto/chacha20_rng.h"
#include "crypto/damgard_jurik.h"
#include "crypto/paillier.h"

namespace ppstats {
namespace {

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(808);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

const DjPrivateKey& SharedDjKey() {
  static const DjPrivateKey* key = [] {
    return new DjPrivateKey(
        DjPrivateKey::FromPaillier(SharedKeyPair().private_key, 2)
            .ValueOrDie());
  }();
  return *key;
}

// prod_i bases[i]^exps[i] mod m the slow, obviously-correct way.
BigInt NaiveFold(const std::vector<BigInt>& bases,
                 const std::vector<BigInt>& exps, const BigInt& m) {
  BigInt acc(1);
  for (size_t i = 0; i < bases.size(); ++i) {
    acc = MulMod(acc, ModExpPlain(bases[i], exps[i], m), m);
  }
  return acc;
}

// (batch size, exponent bits) sweep over both ciphertext moduli and both
// kernel schedules.
class MultiExpDifferentialTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(MultiExpDifferentialTest, MatchesNaiveFold) {
  auto [k, exp_bits] = GetParam();
  const BigInt& paillier_mod = SharedKeyPair().public_key.n_squared();
  const BigInt& dj_mod = SharedDjKey().public_key().n_s1();
  for (const BigInt* mod : {&paillier_mod, &dj_mod}) {
    ChaCha20Rng rng(500 + k * 13 + exp_bits * 7 + mod->BitLength());
    MontgomeryContext ctx(*mod);
    std::vector<BigInt> bases;
    std::vector<BigInt> exps;
    bases.reserve(k);
    exps.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      bases.push_back(RandomBelow(rng, *mod));
      exps.push_back(RandomBits(rng, exp_bits));
    }
    const BigInt expected = NaiveFold(bases, exps, *mod);
    EXPECT_EQ(ctx.MultiExp(bases, exps), expected)
        << "auto, k=" << k << " bits=" << exp_bits;
    EXPECT_EQ(ctx.MultiExp(bases, exps, MultiExpSchedule::kStraus), expected)
        << "straus, k=" << k << " bits=" << exp_bits;
    EXPECT_EQ(ctx.MultiExp(bases, exps, MultiExpSchedule::kPippenger),
              expected)
        << "pippenger, k=" << k << " bits=" << exp_bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiExpDifferentialTest,
    ::testing::Values(std::make_pair(1, 32), std::make_pair(2, 1),
                      std::make_pair(2, 64), std::make_pair(17, 16),
                      std::make_pair(17, 128), std::make_pair(100, 32),
                      std::make_pair(100, 1), std::make_pair(1000, 32)));

TEST(MultiExpTest, EmptyBatchIsOne) {
  MontgomeryContext ctx(SharedKeyPair().public_key.n_squared());
  EXPECT_EQ(ctx.MultiExp({}, {}), BigInt(1));
}

TEST(MultiExpTest, ZeroExponentsAreSkipped) {
  const BigInt& m = SharedKeyPair().public_key.n_squared();
  ChaCha20Rng rng(42);
  MontgomeryContext ctx(m);
  std::vector<BigInt> bases = {RandomBelow(rng, m), RandomBelow(rng, m),
                               RandomBelow(rng, m)};
  std::vector<BigInt> exps = {BigInt(0), BigInt(7), BigInt(0)};
  EXPECT_EQ(ctx.MultiExp(bases, exps), ModExpPlain(bases[1], exps[1], m));
  // All-zero exponents: the fold is empty, so the identity.
  std::vector<BigInt> zeros(3, BigInt(0));
  EXPECT_EQ(ctx.MultiExp(bases, zeros), BigInt(1));
}

TEST(MultiExpTest, ReducesBasesAboveModulus) {
  const BigInt m(101);
  MontgomeryContext ctx(m);
  std::vector<BigInt> bases = {BigInt(205)};  // == 3 mod 101
  std::vector<BigInt> exps = {BigInt(5)};
  EXPECT_EQ(ctx.MultiExp(bases, exps),
            ModExpPlain(BigInt(3), BigInt(5), m));
}

TEST(MultiExpTest, MontgomeryFormVariantMatches) {
  const BigInt& m = SharedKeyPair().public_key.n_squared();
  ChaCha20Rng rng(43);
  MontgomeryContext ctx(m);
  std::vector<BigInt> bases;
  std::vector<BigInt> bases_mont;
  std::vector<BigInt> exps;
  for (size_t i = 0; i < 10; ++i) {
    bases.push_back(RandomBelow(rng, m));
    bases_mont.push_back(ctx.ToMontgomery(bases.back()));
    exps.push_back(RandomBits(rng, 64));
  }
  EXPECT_EQ(ctx.FromMontgomery(ctx.MultiExpMontgomery(bases_mont, exps)),
            NaiveFold(bases, exps, m));
}

TEST(MultiExpTest, PaillierWeightedFoldMatchesScalarMultiplyLadder) {
  const PaillierPublicKey& pub = SharedKeyPair().public_key;
  ChaCha20Rng rng(44);
  std::vector<PaillierCiphertext> cts;
  std::vector<BigInt> weights;
  for (size_t i = 0; i < 23; ++i) {
    cts.push_back(
        Paillier::Encrypt(pub, BigInt(i * 31 + 1), rng).ValueOrDie());
    weights.push_back(RandomBits(rng, 32));
  }
  PaillierCiphertext ladder =
      Paillier::ScalarMultiply(pub, cts[0], weights[0]);
  for (size_t i = 1; i < cts.size(); ++i) {
    ladder = Paillier::Add(pub, ladder,
                           Paillier::ScalarMultiply(pub, cts[i], weights[i]));
  }
  PaillierCiphertext folded = Paillier::WeightedFold(pub, cts, weights);
  // Bit-identical ciphertexts, not just equal plaintexts.
  EXPECT_EQ(folded.value, ladder.value);
}

TEST(MultiExpTest, DjWeightedFoldMatchesScalarMultiplyLadder) {
  const DjPublicKey& pub = SharedDjKey().public_key();
  ChaCha20Rng rng(45);
  std::vector<DjCiphertext> cts;
  std::vector<BigInt> weights;
  for (size_t i = 0; i < 9; ++i) {
    cts.push_back(
        DamgardJurik::Encrypt(pub, BigInt(i + 1), rng).ValueOrDie());
    // Two-level PIR exponents are full level-1 ciphertexts: n^2 wide.
    weights.push_back(RandomBelow(rng, SharedKeyPair().public_key.n_squared()));
  }
  DjCiphertext ladder = DamgardJurik::ScalarMultiply(pub, cts[0], weights[0]);
  for (size_t i = 1; i < cts.size(); ++i) {
    ladder = DamgardJurik::Add(
        pub, ladder, DamgardJurik::ScalarMultiply(pub, cts[i], weights[i]));
  }
  DjCiphertext folded = DamgardJurik::WeightedFold(pub, cts, weights);
  EXPECT_EQ(folded.value, ladder.value);
}

TEST(MultiExpTest, WeightedFoldDecryptsToWeightedSum) {
  const PaillierPublicKey& pub = SharedKeyPair().public_key;
  ChaCha20Rng rng(46);
  std::vector<PaillierCiphertext> cts;
  std::vector<BigInt> weights;
  BigInt expected(0);
  for (uint64_t i = 0; i < 17; ++i) {
    const uint64_t m = i * i + 1;
    const uint64_t w = 3 * i + 2;
    cts.push_back(Paillier::Encrypt(pub, BigInt(m), rng).ValueOrDie());
    weights.push_back(BigInt(w));
    expected += BigInt(m) * BigInt(w);
  }
  PaillierCiphertext folded = Paillier::WeightedFold(pub, cts, weights);
  EXPECT_EQ(Paillier::Decrypt(SharedKeyPair().private_key, folded)
                .ValueOrDie(),
            expected);
}

}  // namespace
}  // namespace ppstats
