#include "crypto/key_io.h"

#include <gtest/gtest.h>

#include "crypto/chacha20_rng.h"

namespace ppstats {
namespace {

const PaillierKeyPair& SharedKeyPair() {
  static const PaillierKeyPair* kp = [] {
    ChaCha20Rng rng(1414);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return *kp;
}

TEST(KeyIoTest, PublicKeyRoundTrip) {
  Bytes blob = SerializePublicKey(SharedKeyPair().public_key);
  PaillierPublicKey back = DeserializePublicKey(blob).ValueOrDie();
  EXPECT_EQ(back.n(), SharedKeyPair().public_key.n());
  EXPECT_EQ(back.modulus_bits(), SharedKeyPair().public_key.modulus_bits());
  EXPECT_EQ(back.n_squared(), SharedKeyPair().public_key.n_squared());
}

TEST(KeyIoTest, PrivateKeyRoundTripAndStillDecrypts) {
  ChaCha20Rng rng(1);
  Bytes blob = SerializePrivateKey(SharedKeyPair().private_key);
  PaillierPrivateKey back = DeserializePrivateKey(blob).ValueOrDie();
  EXPECT_EQ(back.p(), SharedKeyPair().private_key.p());
  EXPECT_EQ(back.q(), SharedKeyPair().private_key.q());

  // A ciphertext made under the original key decrypts under the
  // deserialized one.
  PaillierCiphertext ct =
      Paillier::Encrypt(SharedKeyPair().public_key, BigInt(9876), rng)
          .ValueOrDie();
  EXPECT_EQ(Paillier::Decrypt(back, ct).ValueOrDie(), BigInt(9876));
}

TEST(KeyIoTest, CrossDeserializationRejected) {
  Bytes pub_blob = SerializePublicKey(SharedKeyPair().public_key);
  Bytes priv_blob = SerializePrivateKey(SharedKeyPair().private_key);
  EXPECT_FALSE(DeserializePrivateKey(pub_blob).ok());
  EXPECT_FALSE(DeserializePublicKey(priv_blob).ok());
}

TEST(KeyIoTest, RejectsTamperedBits) {
  Bytes blob = SerializePublicKey(SharedKeyPair().public_key);
  Bytes wrong_bits = blob;
  wrong_bits[3] ^= 0x01;  // flip a bit in the modulus_bits field
  EXPECT_FALSE(DeserializePublicKey(wrong_bits).ok());
}

TEST(KeyIoTest, RejectsTruncationAndTrailingBytes) {
  Bytes blob = SerializePublicKey(SharedKeyPair().public_key);
  Bytes truncated(blob.begin(), blob.end() - 3);
  EXPECT_FALSE(DeserializePublicKey(truncated).ok());
  Bytes padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(DeserializePublicKey(padded).ok());
}

TEST(KeyIoTest, RejectsUnknownVersion) {
  Bytes blob = SerializePublicKey(SharedKeyPair().public_key);
  blob[1] = 99;
  EXPECT_FALSE(DeserializePublicKey(blob).ok());
}

TEST(KeyIoTest, RejectsCorruptPrimes) {
  Bytes blob = SerializePrivateKey(SharedKeyPair().private_key);
  // Corrupt the low byte of q (the last BigInt payload byte): p*q no
  // longer has the claimed bit structure or q becomes even/composite in
  // a way FromPrimes rejects, or the bit-length check fires.
  blob[blob.size() - 1] ^= 0xFF;
  Result<PaillierPrivateKey> r = DeserializePrivateKey(blob);
  if (r.ok()) {
    // If it happened to parse, it must at least be a *different* key.
    EXPECT_NE(r->q(), SharedKeyPair().private_key.q());
  }
}

TEST(KeyIoTest, GarbageNeverCrashes) {
  ChaCha20Rng rng(2);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes garbage(iter % 40);
    rng.Fill(garbage);
    DeserializePublicKey(garbage).IgnoreError();
    DeserializePrivateKey(garbage).IgnoreError();
  }
  SUCCEED();
}

}  // namespace
}  // namespace ppstats
