// Randomized configuration-matrix test: the selected-sum protocol must
// be correct under every combination of knobs the library exposes —
// chunking, preprocessing pools, server threads, value transforms, key
// sizes — including interactions between them. Each case is seeded, so
// failures reproduce exactly.

#include <gtest/gtest.h>

#include "core/runner.h"
#include "crypto/chacha20_rng.h"
#include "db/workload.h"

namespace ppstats {
namespace {

const PaillierKeyPair& KeyFor(size_t bits) {
  static const PaillierKeyPair* k128 = [] {
    ChaCha20Rng rng(2525);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(128, rng).ValueOrDie());
  }();
  static const PaillierKeyPair* k256 = [] {
    ChaCha20Rng rng(2526);
    return new PaillierKeyPair(
        Paillier::GenerateKeyPair(256, rng).ValueOrDie());
  }();
  return bits == 128 ? *k128 : *k256;
}

struct MatrixCase {
  uint64_t seed;
  size_t key_bits;
  size_t n;
  size_t chunk;
  bool use_encryption_pool;
  bool use_randomness_pool;
  size_t threads;
  bool square;
};

class ProtocolMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ProtocolMatrixTest, SumIsCorrect) {
  const MatrixCase& c = GetParam();
  const PaillierKeyPair& keys = KeyFor(c.key_bits);
  ChaCha20Rng rng(c.seed);
  WorkloadGenerator gen(rng);
  // Small values when squaring so sums stay well inside the plaintext
  // space of a 128-bit key.
  Database db = gen.UniformDatabase(c.n, c.square ? 1000 : 100000);
  SelectionVector sel =
      gen.RandomSelection(c.n, rng.NextBelow(c.n) + 1);

  uint64_t truth = c.square
                       ? db.SelectedSumOfSquares(sel).ValueOrDie()
                       : db.SelectedSum(sel).ValueOrDie();

  EncryptionPool enc_pool(keys.public_key);
  RandomnessPool rand_pool(keys.public_key);
  SumClientOptions client_options;
  client_options.chunk_size = c.chunk;
  if (c.use_encryption_pool) {
    ASSERT_TRUE(enc_pool.Generate(BigInt(0), c.n, rng).ok());
    ASSERT_TRUE(enc_pool.Generate(BigInt(1), c.n, rng).ok());
    client_options.encryption_pool = &enc_pool;
  } else if (c.use_randomness_pool) {
    rand_pool.Generate(c.n, rng);
    client_options.randomness_pool = &rand_pool;
  }

  SumClient client(keys.private_key, sel, client_options, rng);
  QuerySpec spec;
  if (c.square) spec.kind = StatisticKind::kSumOfSquares;
  CompiledQuery query = CompileQuery(spec, &db).ValueOrDie();
  SumServer server(keys.public_key, query, c.threads);
  SumRunResult result = RunSelectedSum(client, server).ValueOrDie();
  EXPECT_EQ(result.sum, BigInt(truth))
      << "seed=" << c.seed << " n=" << c.n << " chunk=" << c.chunk;
}

std::vector<MatrixCase> BuildMatrix() {
  std::vector<MatrixCase> cases;
  uint64_t seed = 1;
  for (size_t key_bits : {128u, 256u}) {
    for (size_t n : {1u, 7u, 33u, 64u}) {
      for (size_t chunk : {0u, 1u, 5u, 64u}) {
        for (int pool = 0; pool < 3; ++pool) {
          for (size_t threads : {1u, 3u}) {
            // Keep the matrix tractable: squaring only on one diagonal.
            bool square = (seed % 5 == 0);
            cases.push_back(MatrixCase{seed++, key_bits, n, chunk,
                                       pool == 1, pool == 2, threads,
                                       square});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ProtocolMatrixTest,
                         ::testing::ValuesIn(BuildMatrix()));

}  // namespace
}  // namespace ppstats
